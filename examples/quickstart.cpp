/**
 * @file
 * Quickstart: solve one box-constrained MPC problem with TinyMPC,
 * then time the same solve on three architecture models (Rocket
 * scalar, Saturn vector, Gemmini systolic).
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "cpu/inorder.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "quad/linearize.hh"
#include "systolic/gemmini.hh"
#include "tinympc/solver.hh"
#include "vector/saturn.hh"

using namespace rtoc;

int
main()
{
    // 1. Build the control problem: a CrazyFlie hovering at 1 m,
    //    asked to move to (0.5, 0.5, 1.5).
    quad::DroneParams drone = quad::DroneParams::crazyflie();
    tinympc::Workspace ws = quad::buildQuadWorkspace(drone, 0.02, 10);
    ws.setReferenceAll(quad::hoverReference({0.5, 0.5, 1.5}));
    float x0[12] = {0, 0, 1.0f, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    ws.setInitialState(x0);

    // 2. Solve functionally (no emission).
    matlib::ScalarBackend func(matlib::ScalarFlavor::Optimized);
    tinympc::Solver solver(ws, func, tinympc::MappingStyle::Library);
    tinympc::SolveResult res = solver.solve();
    std::printf("solved in %d ADMM iterations (converged: %s)\n",
                res.iterations, res.converged ? "yes" : "no");
    matlib::Mat u0 = solver.firstInput();
    std::printf("first input (motor thrust deltas, N): "
                "[%+.4f %+.4f %+.4f %+.4f]\n",
                u0[0], u0[1], u0[2], u0[3]);

    // 3. Time the same solve on three architectures.
    auto time_on = [&](matlib::Backend &backend,
                       tinympc::MappingStyle style,
                       const cpu::CoreModel &model) {
        tinympc::Workspace w2 = quad::buildQuadWorkspace(drone, 0.02, 10);
        w2.setReferenceAll(quad::hoverReference({0.5, 0.5, 1.5}));
        w2.setInitialState(x0);
        isa::Program prog;
        backend.setProgram(&prog);
        tinympc::Solver s2(w2, backend, style);
        s2.setup();
        s2.solve();
        backend.setProgram(nullptr);
        auto r = model.run(prog);
        std::printf("%-28s %8llu cycles  (%.2f ms at 100 MHz)\n",
                    model.name().c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<double>(r.cycles) / 100e6 * 1e3);
    };

    matlib::ScalarBackend eigen(matlib::ScalarFlavor::Optimized);
    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    time_on(eigen, tinympc::MappingStyle::Library, rocket);

    matlib::RvvBackend rvv(512, matlib::RvvMapping::handOptimized());
    vector::SaturnModel saturn(vector::SaturnConfig::make(512, 256, true));
    time_on(rvv, tinympc::MappingStyle::Fused, saturn);

    matlib::GemminiBackend gem(matlib::GemminiMapping::fullyOptimized());
    systolic::GemminiModel gemmini(systolic::GemminiConfig::os4x4());
    time_on(gem, tinympc::MappingStyle::Library, gemmini);

    return 0;
}
