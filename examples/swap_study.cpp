/**
 * @file
 * SWaP (size/weight/power) study across drone morphologies (§5.4):
 * for each Table-1 variant, find the slowest SoC frequency at which
 * the vector implementation completes an easy mission, and report the
 * resulting power split. Shows why Hawk wants a fast SoC and Heron a
 * low-power one.
 *
 * Build & run:  ./build/examples/swap_study
 */

#include <cstdio>

#include "hil/episode.hh"
#include "hil/sweep.hh"
#include "hil/timing.hh"

using namespace rtoc;

int
main()
{
    std::printf("%-10s %-9s %-12s %-12s %-12s\n", "drone", "min MHz",
                "rotor W", "SoC W", "SoC share");
    for (auto drone : {quad::DroneParams::crazyflie(),
                       quad::DroneParams::hawk(),
                       quad::DroneParams::heron()}) {
        hil::ControllerTiming tv =
            hil::vectorControllerTiming(drone, 0.02, 10);

        double min_freq = 0;
        hil::EpisodeResult best;
        for (double f : {50e6, 75e6, 100e6, 150e6, 250e6, 500e6}) {
            hil::HilConfig cfg;
            cfg.timing = tv;
            cfg.socFreqHz = f;
            cfg.power = soc::PowerParams::vectorCore();
            // The 3 probe episodes per frequency fan out; the
            // frequency scan itself stays sequential (it stops at the
            // first success).
            hil::SweepRunner sweep;
            auto episodes = sweep.runEpisodes(
                drone, quad::Difficulty::Easy, 3, cfg);
            int ok = 0;
            for (const auto &er : episodes)
                ok += er.success;
            hil::EpisodeResult last = episodes.back();
            if (ok == 3) {
                min_freq = f;
                best = last;
                break;
            }
        }
        if (min_freq == 0) {
            std::printf("%-10s unable to complete easy missions\n",
                        drone.name.c_str());
            continue;
        }
        double total = best.avgRotorPowerW + best.avgSocPowerW;
        std::printf("%-10s %-9.0f %-12.2f %-12.3f %.2f%%\n",
                    drone.name.c_str(), min_freq / 1e6,
                    best.avgRotorPowerW, best.avgSocPowerW,
                    100.0 * best.avgSocPowerW / total);
    }
    std::printf("\nInterpretation: the efficient Heron flies at the "
                "lowest frequency and its compute is a vanishing power "
                "share; the powerful Hawk tolerates (and §5.4 shows "
                "benefits from) much faster clocks.\n");
    return 0;
}
