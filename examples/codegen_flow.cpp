/**
 * @file
 * The §4.3 code-generation flow as a user would drive it: build the
 * ADMM statement graph, run the schedule passes, inspect what they
 * did, and compare the emitted streams on a Saturn model.
 *
 * Build & run:  ./build/examples/codegen_flow
 */

#include <cstdio>

#include "codegen/graph.hh"
#include "cpu/inorder.hh"
#include "vector/saturn.hh"

using namespace rtoc;

int
main()
{
    // 1. Front end: one TinyMPC ADMM iteration as a tensor graph.
    codegen::Graph g = codegen::Graph::admmIteration(12, 4, 10);
    std::printf("graph: %zu statements over %zu tensors\n",
                g.stmts.size(), g.tensors.size());

    // 2. Schedule passes.
    int unrolled = codegen::unrollPass(g);
    int groups = codegen::fusionPass(g, 16);
    std::printf("unroll pass: %d GEMV statements unrolled\n", unrolled);
    std::printf("fusion pass: %d fusion groups formed\n", groups);

    int fused_stmts = 0;
    for (const auto &s : g.stmts)
        if (s.fuseGroup >= 0)
            ++fused_stmts;
    std::printf("  %d/%zu statements inside fusion regions\n",
                fused_stmts, g.stmts.size());

    // 3. Emit three ways and time on the hardware models.
    codegen::CodegenOptions scalar_opts{false, 512, 1, false, false};
    codegen::CodegenOptions plain_opts{true, 512, 1, false, false};
    codegen::CodegenOptions sched_opts{true, 512, 1, true, true};

    isa::Program ps = codegen::emit(g, scalar_opts);
    isa::Program pv = codegen::emit(g, plain_opts);
    isa::Program po = codegen::emit(g, sched_opts);

    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    vector::SaturnModel saturn(
        vector::SaturnConfig::make(512, 256, false));

    uint64_t cs = rocket.run(ps).cycles;
    uint64_t cv = saturn.run(pv).cycles;
    uint64_t co = saturn.run(po).cycles;
    std::printf("\nper-iteration cycles:\n");
    std::printf("  scalar matlib on Rocket:      %8llu\n",
                static_cast<unsigned long long>(cs));
    std::printf("  vectorized, unscheduled:      %8llu  (%.1fx)\n",
                static_cast<unsigned long long>(cv),
                static_cast<double>(cs) / cv);
    std::printf("  vectorized, unrolled + fused: %8llu  (%.1fx)\n",
                static_cast<unsigned long long>(co),
                static_cast<double>(cs) / co);
    return cs > cv && cv > co ? 0 : 1;
}
