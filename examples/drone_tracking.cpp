/**
 * @file
 * Closed-loop drone waypoint tracking (the paper's §5.2 scenario):
 * fly one medium-difficulty mission with a 100 MHz vector SoC and
 * print the flight log — waypoint reveals, solve latencies, position
 * trace, and the power summary.
 *
 * Build & run:  ./build/examples/drone_tracking
 */

#include <cstdio>

#include "hil/episode.hh"
#include "hil/timing.hh"

using namespace rtoc;

int
main()
{
    quad::DroneParams drone = quad::DroneParams::crazyflie();
    quad::Scenario sc = quad::makeScenario(quad::Difficulty::Medium, 0);

    std::printf("mission: %zu waypoints, %.1f s apart, time limit "
                "%.1f s\n", sc.waypoints.size(), sc.intervalS,
                sc.timeLimitS());

    hil::HilConfig cfg;
    cfg.socFreqHz = 100e6;
    cfg.timing = hil::vectorControllerTiming(drone, 0.02, 10);
    cfg.power = soc::PowerParams::vectorCore();

    std::printf("controller: %s on %s, %.0f cycles/iteration\n",
                cfg.timing.mappingName.c_str(),
                cfg.timing.archName.c_str(), cfg.timing.cyclesPerIter);

    hil::EpisodeResult er = hil::runEpisode(drone, sc, cfg);

    auto solve = er.solveTimesS.summarize();
    auto iters = er.iterations.summarize();
    std::printf("\nresult: %s (%d/%zu waypoints visited, %.2f s)\n",
                er.success ? "SUCCESS" : "FAILURE", er.waypointsReached,
                sc.waypoints.size(), er.missionTimeS);
    std::printf("solves: %zu, median %.2f ms (IQR %.2f-%.2f), median "
                "%.0f ADMM iterations\n", solve.count,
                solve.median * 1e3, solve.p25 * 1e3, solve.p75 * 1e3,
                iters.median);
    std::printf("power: rotors %.2f W, SoC %.3f W (%.1f%% of total), "
                "compute utilization %.1f%%\n", er.avgRotorPowerW,
                er.avgSocPowerW,
                100.0 * er.avgSocPowerW /
                    (er.avgRotorPowerW + er.avgSocPowerW),
                100.0 * er.computeUtilization);
    std::printf("energy: rotors %.1f J, SoC %.2f J\n", er.rotorEnergyJ,
                er.socEnergyJ);
    return er.success ? 0 : 1;
}
