/**
 * @file
 * Tour of the plant zoo: enumerate every scenario spec in the
 * ScenarioRegistry, fly one episode of each on the hand-optimized
 * vector controller at 100 MHz, and print the outcome — the smallest
 * end-to-end demonstration that the HIL stack is plant-agnostic.
 *
 * Build: cmake --build build --target plant_zoo
 * Run:   ./build/examples/plant_zoo
 */

#include <cstdio>

#include "common/table.hh"
#include "hil/episode.hh"
#include "hil/timing.hh"
#include "plant/registry.hh"

using namespace rtoc;

int
main()
{
    Table t("Plant zoo: one episode per registered scenario "
            "(vector MPC @ 100 MHz)",
            {"scenario", "shape", "result", "waypoints", "mission s",
             "solve ms (med)", "actuation W"});

    for (const plant::ScenarioSpec &spec :
         plant::ScenarioRegistry::global().specs()) {
        std::unique_ptr<plant::Plant> plant = spec.makePlant();

        hil::HilConfig cfg;
        cfg.socFreqHz = 100e6;
        cfg.timing = hil::vectorControllerTiming(*plant, 0.02, 10);
        cfg.power = soc::PowerParams::vectorCore();

        plant::Scenario sc = spec.makeScenario(0);
        hil::EpisodeResult er = hil::runEpisode(*plant, sc, cfg);

        t.addRow({spec.id,
                  Table::num(static_cast<uint64_t>(plant->nx())) + "x" +
                      Table::num(static_cast<uint64_t>(plant->nu())),
                  er.success ? "success"
                             : (er.crashed ? "CRASHED" : "timeout"),
                  Table::num(static_cast<uint64_t>(er.waypointsReached)) +
                      "/" +
                      Table::num(static_cast<uint64_t>(
                          sc.waypoints.size())),
                  Table::num(er.missionTimeS, 2),
                  Table::num(er.solveTimesS.summarize().median * 1e3, 3),
                  Table::num(er.avgRotorPowerW, 2)});
    }
    t.print();

    std::printf("\nEvery scenario runs through the same episode "
                "runner, sweep engine and trace-cached solve pipeline "
                "the quadrotor figures use; new plants only implement "
                "the Plant interface.\n");
    return 0;
}
