/**
 * @file
 * Tests for the unified observability layer: trace-span JSON validity
 * and correct nesting under a 4-thread work-stealing pool, registry
 * snapshot/diff round-trips, the threaded counter stress test, run
 * manifests capturing RTOC_* env knobs, region profiles summing to
 * the total attributed cycles, and the golden-output contract — the
 * same computation is bit-exact with tracing off and on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/thread_pool.hh"
#include "hil/timing.hh"
#include "obs/region_profile.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "plant/quad_plant.hh"

namespace rtoc {
namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON parser: enough to validate a trace
// file and walk its events without external dependencies.
// ---------------------------------------------------------------------

struct Json
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool has(const std::string &k) const { return obj.count(k) > 0; }
    const Json &at(const std::string &k) const { return obj.at(k); }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text)
        : p_(text.c_str()), end_(text.c_str() + text.size())
    {
    }

    /** Parse one complete document; ok() reports success. */
    Json
    parse()
    {
        Json v = value();
        skipWs();
        if (p_ != end_)
            ok_ = false;
        return v;
    }

    bool ok() const { return ok_; }

  private:
    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r')) {
            ++p_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p_ == end_ || *p_ != c) {
            ok_ = false;
            return false;
        }
        ++p_;
        return true;
    }

    Json
    value()
    {
        skipWs();
        if (p_ == end_) {
            ok_ = false;
            return {};
        }
        switch (*p_) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return stringValue();
        case 't':
        case 'f':
            return boolean();
        case 'n':
            return null();
        default:
            return number();
        }
    }

    Json
    object()
    {
        Json v;
        v.kind = Json::Obj;
        consume('{');
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return v;
        }
        while (ok_) {
            Json key = stringValue();
            if (!ok_ || !consume(':'))
                break;
            v.obj[key.str] = value();
            skipWs();
            if (p_ != end_ && *p_ == ',') {
                ++p_;
                skipWs();
                continue;
            }
            consume('}');
            break;
        }
        return v;
    }

    Json
    array()
    {
        Json v;
        v.kind = Json::Arr;
        consume('[');
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return v;
        }
        while (ok_) {
            v.arr.push_back(value());
            skipWs();
            if (p_ != end_ && *p_ == ',') {
                ++p_;
                continue;
            }
            consume(']');
            break;
        }
        return v;
    }

    Json
    stringValue()
    {
        Json v;
        v.kind = Json::Str;
        if (!consume('"'))
            return v;
        while (p_ != end_ && *p_ != '"') {
            if (*p_ == '\\') {
                ++p_;
                if (p_ == end_)
                    break;
                switch (*p_) {
                case '"': v.str += '"'; break;
                case '\\': v.str += '\\'; break;
                case '/': v.str += '/'; break;
                case 'n': v.str += '\n'; break;
                case 't': v.str += '\t'; break;
                case 'r': v.str += '\r'; break;
                case 'b': v.str += '\b'; break;
                case 'f': v.str += '\f'; break;
                case 'u':
                    // Escaped control char; decode as one byte (the
                    // writer only emits \u00XX).
                    if (end_ - p_ >= 5) {
                        v.str += static_cast<char>(
                            std::strtol(std::string(p_ + 1, p_ + 5).c_str(),
                                        nullptr, 16));
                        p_ += 4;
                    } else {
                        ok_ = false;
                    }
                    break;
                default: ok_ = false; break;
                }
                ++p_;
            } else {
                v.str += *p_++;
            }
        }
        if (p_ == end_)
            ok_ = false;
        else
            ++p_; // closing quote
        return v;
    }

    Json
    boolean()
    {
        Json v;
        v.kind = Json::Bool;
        if (end_ - p_ >= 4 && std::strncmp(p_, "true", 4) == 0) {
            v.b = true;
            p_ += 4;
        } else if (end_ - p_ >= 5 && std::strncmp(p_, "false", 5) == 0) {
            v.b = false;
            p_ += 5;
        } else {
            ok_ = false;
        }
        return v;
    }

    Json
    null()
    {
        Json v;
        if (end_ - p_ >= 4 && std::strncmp(p_, "null", 4) == 0)
            p_ += 4;
        else
            ok_ = false;
        return v;
    }

    Json
    number()
    {
        Json v;
        v.kind = Json::Num;
        char *next = nullptr;
        v.num = std::strtod(p_, &next);
        if (next == p_)
            ok_ = false;
        p_ = next;
        return v;
    }

    const char *p_;
    const char *end_;
    bool ok_ = true;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tempPath(const char *stem)
{
    char tmpl[128];
    std::snprintf(tmpl, sizeof(tmpl), "/tmp/rtoc-obs-%s-XXXXXX", stem);
    int fd = mkstemp(tmpl);
    EXPECT_GE(fd, 0);
    if (fd >= 0)
        close(fd);
    return tmpl;
}

// ---------------------------------------------------------------------
// StatId interning + StatGroup fast path
// ---------------------------------------------------------------------

TEST(ObsStats, InternRoundTrip)
{
    StatId a = internStat("test.obs.intern_a");
    StatId b = internStat("test.obs.intern_b");
    EXPECT_NE(a, b);
    EXPECT_EQ(a, internStat("test.obs.intern_a"));
    EXPECT_EQ(statName(a), "test.obs.intern_a");
    EXPECT_EQ(statName(b), "test.obs.intern_b");
    EXPECT_GE(internedStatCount(), size_t(2));
}

TEST(ObsStats, StatGroupDualApiSharesStore)
{
    StatGroup g;
    StatId id = internStat("test.obs.group_counter");
    g.inc(id, 5);
    g.inc("test.obs.group_counter", 2);
    EXPECT_EQ(g.get(id), 7u);
    EXPECT_EQ(g.get("test.obs.group_counter"), 7u);
    EXPECT_TRUE(g.has(id));
    EXPECT_TRUE(g.has("test.obs.group_counter"));

    g.set(id, 100);
    EXPECT_EQ(g.counters().at("test.obs.group_counter"), 100u);

    // Untouched ids read as zero and are absent from the view.
    StatId other = internStat("test.obs.group_untouched");
    EXPECT_EQ(g.get(other), 0u);
    EXPECT_FALSE(g.has(other));
    EXPECT_EQ(g.counters().count("test.obs.group_untouched"), size_t(0));
}

// ---------------------------------------------------------------------
// Registry: snapshot/diff, unstable exclusion, threaded stress
// ---------------------------------------------------------------------

TEST(ObsRegistry, SnapshotDiffRoundTrip)
{
    obs::Registry &reg = obs::Registry::global();
    StatId a = reg.counter("test.obs.reg_a");
    StatId b = reg.counter("test.obs.reg_b");

    obs::Snapshot before = reg.snapshot();
    reg.inc(a, 3);
    reg.inc(a);
    reg.inc(b, 10);
    obs::Snapshot after = reg.snapshot();

    std::map<std::string, uint64_t> d = after.diff(before);
    EXPECT_EQ(d.at("test.obs.reg_a"), 4u);
    EXPECT_EQ(d.at("test.obs.reg_b"), 10u);

    // Zero deltas are kept: every registered name appears in a diff.
    StatId idle = reg.counter("test.obs.reg_idle");
    (void)idle;
    obs::Snapshot again = reg.snapshot();
    EXPECT_EQ(again.diff(after).at("test.obs.reg_idle"), 0u);
    EXPECT_EQ(again.diff(after).at("test.obs.reg_a"), 0u);
}

TEST(ObsRegistry, UnstableCountersExcludedFromJson)
{
    obs::Registry &reg = obs::Registry::global();
    StatId stable = reg.counter("test.obs.json_stable");
    StatId unstable = reg.counter("test.obs.json_unstable", true);
    reg.inc(stable, 7);
    reg.inc(unstable, 9);

    // Snapshots see both...
    obs::Snapshot snap = reg.snapshot();
    EXPECT_GE(snap.get("test.obs.json_stable"), 7u);
    EXPECT_GE(snap.get("test.obs.json_unstable"), 9u);

    // ...but the JSON sections carry only the stable one.
    std::string path = tempPath("sections");
    FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fprintf(f, "{\n");
    reg.writeJsonSections(f);
    std::fprintf(f, "  \"end\": 1\n}\n");
    std::fclose(f);

    std::string text = readFile(path);
    JsonParser parser(text);
    Json doc = parser.parse();
    ASSERT_TRUE(parser.ok()) << text;
    ASSERT_TRUE(doc.has("metrics"));
    ASSERT_TRUE(doc.has("manifest"));
    EXPECT_TRUE(doc.at("metrics").has("test.obs.json_stable"));
    EXPECT_FALSE(doc.at("metrics").has("test.obs.json_unstable"));
    EXPECT_TRUE(doc.at("manifest").has("build"));
    EXPECT_TRUE(doc.at("manifest").has("threads"));
    EXPECT_TRUE(doc.at("manifest").has("cache_mode"));
    EXPECT_TRUE(doc.at("manifest").has("env"));
    std::remove(path.c_str());
}

TEST(ObsRegistry, ThreadedCounterStress)
{
    obs::Registry &reg = obs::Registry::global();
    StatId id = reg.counter("test.obs.stress");
    uint64_t before = reg.value(id);

    // Hammer one counter from a 4-thread work-stealing pool; per-thread
    // shards must make the total exact, not approximately right.
    const size_t n = 20000;
    uint64_t expected = 0;
    for (size_t i = 0; i < n; ++i)
        expected += 1 + i % 3;
    ThreadPool pool(4);
    pool.parallelFor(n, [&](size_t i) { obs::count(id, 1 + i % 3); });

    EXPECT_EQ(reg.value(id) - before, expected);
}

TEST(ObsRegistry, ManifestCapturesEnvKnobs)
{
    // manifestJson reads the environment live, so a knob set here must
    // land in the env section (and parse as JSON).
    ASSERT_EQ(setenv("RTOC_GRAIN", "7", 1), 0);
    std::string manifest = obs::manifestJson();
    unsetenv("RTOC_GRAIN");

    JsonParser parser(manifest);
    Json doc = parser.parse();
    ASSERT_TRUE(parser.ok()) << manifest;
    ASSERT_TRUE(doc.has("env"));
    ASSERT_TRUE(doc.at("env").has("RTOC_GRAIN"));
    EXPECT_EQ(doc.at("env").at("RTOC_GRAIN").str, "7");
    // RTOC_TRACE must never leak into the manifest (it would break the
    // traced-vs-untraced byte identity of golden artifacts).
    EXPECT_FALSE(doc.at("env").has("RTOC_TRACE"));
}

// ---------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------

struct SpanEvent
{
    std::string name;
    uint64_t tid = 0;
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
};

uint64_t
usToNs(double us)
{
    return static_cast<uint64_t>(us * 1000.0 + 0.5);
}

TEST(ObsTrace, ValidJsonWithNestedSpansUnderPool)
{
    std::string path = tempPath("trace");
    obs::TraceWriter &tw = obs::TraceWriter::global();
    tw.enable(path);
    ASSERT_TRUE(obs::traceEnabled());

    {
        RTOC_SPAN("test.root", "test");
        ThreadPool pool(4);
        pool.parallelFor(64, [&](size_t i) {
            RTOC_SPAN_NAMED(outer, "test.outer", "test");
            outer.arg("index", i);
            {
                RTOC_SPAN("test.inner", "test");
                volatile uint64_t sink = 0;
                for (uint64_t k = 0; k < 500; ++k)
                    sink += k;
            }
        });
        tw.instant("test.marker", "test");
        tw.counter("test.gauge", 42.0);
    }
    EXPECT_GT(tw.bufferedEvents(), size_t(64));
    tw.disable(); // flushes
    EXPECT_FALSE(obs::traceEnabled());

    std::string text = readFile(path);
    JsonParser parser(text);
    Json doc = parser.parse();
    ASSERT_TRUE(parser.ok());
    ASSERT_TRUE(doc.has("traceEvents"));
    const Json &events = doc.at("traceEvents");
    ASSERT_EQ(events.kind, Json::Arr);

    size_t inner = 0, outer = 0, instants = 0, counters = 0;
    std::map<uint64_t, std::vector<SpanEvent>> by_tid;
    for (const Json &e : events.arr) {
        ASSERT_TRUE(e.has("name"));
        ASSERT_TRUE(e.has("ph"));
        ASSERT_TRUE(e.has("pid"));
        ASSERT_TRUE(e.has("tid"));
        const std::string ph = e.at("ph").str;
        if (ph == "M")
            continue;
        ASSERT_TRUE(e.has("ts"));
        // The pool emits its own pool.steal instants; count only ours.
        if (ph == "i" && e.at("name").str == "test.marker")
            ++instants;
        if (ph == "C" && e.at("name").str == "test.gauge")
            ++counters;
        if (ph != "X")
            continue;
        ASSERT_TRUE(e.has("dur"));
        SpanEvent s;
        s.name = e.at("name").str;
        s.tid = static_cast<uint64_t>(e.at("tid").num);
        s.start_ns = usToNs(e.at("ts").num);
        s.end_ns = s.start_ns + usToNs(e.at("dur").num);
        by_tid[s.tid].push_back(s);
        if (s.name == "test.inner")
            ++inner;
        if (s.name == "test.outer") {
            ++outer;
            ASSERT_TRUE(e.has("args"));
            EXPECT_TRUE(e.at("args").has("index"));
        }
    }
    EXPECT_EQ(inner, size_t(64));
    EXPECT_EQ(outer, size_t(64));
    EXPECT_EQ(instants, size_t(1));
    EXPECT_EQ(counters, size_t(1));

    // Spans on one thread must nest: sorted by (start asc, end desc),
    // every span fits inside whatever enclosing span is still open.
    // Partial overlap means a broken RAII scope or a torn flush.
    for (auto &kv : by_tid) {
        std::vector<SpanEvent> &spans = kv.second;
        std::sort(spans.begin(), spans.end(),
                  [](const SpanEvent &a, const SpanEvent &b) {
                      if (a.start_ns != b.start_ns)
                          return a.start_ns < b.start_ns;
                      return a.end_ns > b.end_ns;
                  });
        std::vector<const SpanEvent *> stack;
        for (const SpanEvent &s : spans) {
            while (!stack.empty() && stack.back()->end_ns <= s.start_ns)
                stack.pop_back();
            if (!stack.empty()) {
                EXPECT_LE(s.end_ns, stack.back()->end_ns)
                    << s.name << " partially overlaps "
                    << stack.back()->name << " on tid " << kv.first;
            }
            stack.push_back(&s);
        }
    }
    std::remove(path.c_str());
}

TEST(ObsTrace, DisabledSpansBufferNothing)
{
    ASSERT_FALSE(obs::traceEnabled());
    obs::TraceWriter &tw = obs::TraceWriter::global();
    size_t before = tw.bufferedEvents();
    {
        RTOC_SPAN("test.disabled", "test");
        tw.instant("test.disabled_instant", "test");
        tw.counter("test.disabled_gauge", 1.0);
    }
    EXPECT_EQ(tw.bufferedEvents(), before);
    EXPECT_EQ(tw.path(), "");
}

// ---------------------------------------------------------------------
// Region profiles + the golden bit-exactness contract
// ---------------------------------------------------------------------

TEST(ObsProfile, SumsToTotalAttributedCycles)
{
    plant::QuadrotorPlant plant;
    std::vector<isa::KernelCycles> kernels =
        hil::regionBreakdown("scalar", plant, 0.02, 10);
    ASSERT_FALSE(kernels.empty());
    uint64_t attributed = 0;
    for (const isa::KernelCycles &k : kernels)
        attributed += k.cycles;
    ASSERT_GT(attributed, 0u);

    obs::RegionProfile prof;
    EXPECT_TRUE(prof.empty());
    prof.add("scalar", "quad", kernels);
    prof.add("scalar", "quad_b", kernels);
    EXPECT_FALSE(prof.empty());

    // Two identical plants: totals double, and the per-backend total,
    // the row sum, and the shares all reconcile exactly.
    EXPECT_EQ(prof.totalCycles(), 2 * attributed);
    EXPECT_EQ(prof.backendCycles("scalar"), 2 * attributed);
    uint64_t row_sum = 0;
    double share_sum = 0.0;
    for (const obs::RegionRow &r : prof.rows()) {
        EXPECT_EQ(r.backend, "scalar");
        EXPECT_EQ(r.perPlant.count, size_t(2));
        row_sum += r.cycles;
        share_sum += r.share;
    }
    EXPECT_EQ(row_sum, 2 * attributed);
    EXPECT_NEAR(share_sum, 1.0, 1e-9);

    std::string table = prof.table();
    EXPECT_NE(table.find("backend scalar"), std::string::npos);
    EXPECT_NE(table.find(kernels.front().name), std::string::npos);
}

TEST(ObsProfile, RegionBreakdownBitExactTraceOnOff)
{
    plant::QuadrotorPlant plant;
    ASSERT_FALSE(obs::traceEnabled());
    std::vector<isa::KernelCycles> off =
        hil::regionBreakdown("scalar", plant, 0.02, 10);
    hil::ControllerTiming t_off =
        hil::scalarControllerTiming(plant, 0.02, 10);

    // The same computation, traced: cycle attribution and calibration
    // must be bit-identical — tracing may never perturb modelled time.
    std::string path = tempPath("goldtrace");
    obs::TraceWriter::global().enable(path);
    std::vector<isa::KernelCycles> on =
        hil::regionBreakdown("scalar", plant, 0.02, 10);
    hil::ControllerTiming t_on =
        hil::scalarControllerTiming(plant, 0.02, 10);
    obs::TraceWriter::global().disable();

    ASSERT_EQ(off.size(), on.size());
    for (size_t i = 0; i < off.size(); ++i) {
        EXPECT_EQ(off[i].name, on[i].name);
        EXPECT_EQ(off[i].cycles, on[i].cycles);
        EXPECT_EQ(off[i].invocations, on[i].invocations);
    }
    EXPECT_EQ(hil::encodeTiming(t_off), hil::encodeTiming(t_on));
    std::remove(path.c_str());
}

} // namespace
} // namespace rtoc
