/**
 * @file
 * Plant-subsystem tests: RK4 integration consistency (full-step vs
 * half-step error shrinking at 4th order), finite-difference
 * validation of every plant's analytic linearization, crash/limit
 * predicates, scenario-registry enumeration/determinism, runCell
 * memoization, calibration shape-keying, and end-to-end episodes for
 * every registered plant on all three backend timing models.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "hil/sweep.hh"
#include "hil/timing.hh"
#include "plant/cartpole.hh"
#include "plant/quad_plant.hh"
#include "plant/registry.hh"
#include "plant/rocket.hh"
#include "plant/rover.hh"

namespace rtoc::plant {
namespace {

std::vector<std::unique_ptr<Plant>>
allPlants()
{
    std::vector<std::unique_ptr<Plant>> ps;
    ps.push_back(std::make_unique<QuadrotorPlant>());
    ps.push_back(std::make_unique<RocketPlant>());
    ps.push_back(std::make_unique<RoverPlant>());
    ps.push_back(std::make_unique<CartPolePlant>());
    return ps;
}

std::vector<float>
packed(const Plant &p)
{
    std::vector<float> x(static_cast<size_t>(p.nx()));
    p.packState(x.data());
    return x;
}

/** Drive @p plant for @p total seconds in steps of @p dt with a
 *  constant off-trim command, return the packed end state. The
 *  per-actuator offsets are asymmetric so rotational/nonlinear terms
 *  participate (a symmetric rover command would drive a straight,
 *  nearly-linear trajectory whose RK4 error drowns in float noise). */
std::vector<float>
integrate(Plant &plant, double dt, double total)
{
    plant.reset();
    std::vector<double> cmd = plant.trimCommand();
    std::vector<double> hi = plant.commandMax();
    for (size_t i = 0; i < cmd.size(); ++i) {
        double frac = 0.04 + 0.05 * static_cast<double>(i % 3);
        cmd[i] = cmd[i] + frac * (hi[i] - cmd[i]);
    }
    int steps = static_cast<int>(std::lround(total / dt));
    for (int s = 0; s < steps; ++s)
        plant.step(cmd, dt);
    return packed(plant);
}

double
maxAbsDiff(const std::vector<float> &a, const std::vector<float> &b)
{
    double m = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(a[i]) -
                                  static_cast<double>(b[i])));
    return m;
}

// --- RK4 integration consistency ---

TEST(PlantDynamics, HalfStepConsistency)
{
    // Halving dt must shrink the error against a fine-step reference.
    // Lag-free plants (rover, cart-pole) integrate pure RK4, so the
    // error collapses at ~2^4 per halving; plants with exact-
    // exponential actuator-lag filters (quadrotor motors, rocket
    // engine) hold the lagged actuator constant across each RK4 step,
    // which caps the *trajectory* convergence at first order — their
    // ratio bound is the first-order 2x.
    for (auto &p : allPlants()) {
        bool lagged = p->name().rfind("quad", 0) == 0 ||
                      p->name().rfind("rocket", 0) == 0;
        auto fine = integrate(*p, 1.0 / 960.0, 0.5); // reference
        std::unique_ptr<Plant> p1 = p->clone();
        std::unique_ptr<Plant> p2 = p->clone();
        auto coarse = integrate(*p1, 1.0 / 15.0, 0.5);
        auto half = integrate(*p2, 1.0 / 30.0, 0.5);
        double e_coarse = maxAbsDiff(coarse, fine);
        double e_half = maxAbsDiff(half, fine);
        // Non-trivial trajectory...
        EXPECT_GT(e_coarse, 1e-6) << p->name();
        // ...whose integration error collapses with the step size.
        EXPECT_GT(e_coarse / e_half, lagged ? 1.8 : 6.0)
            << p->name() << " coarse " << e_coarse << " half "
            << e_half;
    }
}

TEST(PlantDynamics, StepAccumulatesTimeAndEnergy)
{
    for (auto &p : allPlants()) {
        p->reset();
        EXPECT_EQ(p->timeS(), 0.0) << p->name();
        std::vector<double> cmd = p->trimCommand();
        for (int i = 0; i < 24; ++i)
            p->step(cmd, 1.0 / 240.0);
        EXPECT_NEAR(p->timeS(), 0.1, 1e-9) << p->name();
        EXPECT_GT(p->actuationEnergyJ(), 0.0) << p->name();
        // reset() zeroes the accounting again.
        p->reset();
        EXPECT_EQ(p->timeS(), 0.0) << p->name();
        EXPECT_EQ(p->actuationEnergyJ(), 0.0) << p->name();
    }
}

// --- linearization: analytic vs central finite differences ---

TEST(PlantLinearize, AnalyticMatchesFiniteDifference)
{
    for (auto &p : allPlants()) {
        LinearModel an = p->linearize(0.02);
        LinearModel fd = fdLinearize(*p, 0.02);
        ASSERT_EQ(an.ac.rows(), p->nx()) << p->name();
        ASSERT_EQ(an.bc.cols(), p->nu()) << p->name();
        for (int i = 0; i < p->nx(); ++i) {
            for (int j = 0; j < p->nx(); ++j) {
                EXPECT_NEAR(an.ac(i, j), fd.ac(i, j), 2e-4)
                    << p->name() << " ac(" << i << "," << j << ")";
            }
            for (int j = 0; j < p->nu(); ++j) {
                EXPECT_NEAR(an.bc(i, j), fd.bc(i, j), 2e-4)
                    << p->name() << " bc(" << i << "," << j << ")";
            }
        }
    }
}

TEST(PlantLinearize, TrimIsAnEquilibrium)
{
    // modelDeriv at (trimState, 0) must vanish: the linearization
    // expands around a true equilibrium of the MPC model.
    for (auto &p : allPlants()) {
        std::vector<double> x = p->trimState();
        std::vector<double> u(static_cast<size_t>(p->nu()), 0.0);
        std::vector<double> dx(static_cast<size_t>(p->nx()), 1.0);
        p->modelDeriv(x.data(), u.data(), dx.data());
        for (int i = 0; i < p->nx(); ++i) {
            // The rover trims at cruise speed: position coordinates
            // advance, which is fine — only velocity-like states must
            // be stationary. x/y/theta rows are 0/1 for the rover.
            if (p->name().rfind("rover", 0) == 0 && i < 2)
                continue;
            EXPECT_NEAR(dx[i], 0.0, 1e-9)
                << p->name() << " state " << i;
        }
    }
}

TEST(PlantLinearize, WorkspaceShapeFollowsPlant)
{
    for (auto &p : allPlants()) {
        tinympc::Workspace ws = p->buildWorkspace(0.02, 10);
        EXPECT_EQ(ws.nx, p->nx()) << p->name();
        EXPECT_EQ(ws.nu, p->nu()) << p->name();
        EXPECT_EQ(ws.N, 10) << p->name();
    }
}

// --- crash / limit predicates ---

TEST(PlantPredicates, RocketFreeFallCrashes)
{
    RocketPlant r;
    r.reset();
    EXPECT_FALSE(r.crashed());
    std::vector<double> off = {0, 0, 0}; // engine cut
    for (int i = 0; i < 240 * 20 && !r.crashed(); ++i)
        r.step(off, 1.0 / 240.0);
    EXPECT_TRUE(r.crashed());
    EXPECT_LT(r.position()[2], 0.5); // fell, not flew away
}

TEST(PlantPredicates, RocketActuatorLimitsClamp)
{
    RocketPlant r;
    r.reset();
    // Commands far outside the envelope: the engine must saturate at
    // maxThrust, so upward acceleration stays bounded.
    std::vector<double> huge = {1e6, 1e6, 1e6};
    for (int i = 0; i < 240; ++i)
        r.step(huge, 1.0 / 240.0);
    double tw = r.params().thrustToWeight();
    double vmax_bound =
        (tw - 1.0) * 9.81 * 1.0 + 1.0; // 1s of max net accel + slack
    EXPECT_LT(r.velocity()[2], vmax_bound);
}

TEST(PlantPredicates, RoverHittingPillarCrashes)
{
    RoverPlant r;
    r.reset();
    EXPECT_FALSE(r.crashed());
    ASSERT_FALSE(r.obstacles().empty());
    Obstacle ob = r.obstacles().front();
    r.setPose(ob.x, ob.y, 0.0);
    EXPECT_TRUE(r.crashed());
    r.setPose(ob.x, ob.y + ob.radius + 0.05, 0.0);
    EXPECT_FALSE(r.crashed());
    r.setPose(0.0, 7.0, 0.0); // off the arena
    EXPECT_TRUE(r.crashed());
}

TEST(PlantPredicates, CartPoleFallsWithoutControl)
{
    CartPolePlant c;
    c.reset();
    EXPECT_FALSE(c.crashed());
    c.setState(0.0, 0.0, 0.15, 0.0); // tilted, no force
    std::vector<double> zero = {0.0};
    for (int i = 0; i < 240 * 5 && !c.crashed(); ++i)
        c.step(zero, 1.0 / 240.0);
    EXPECT_TRUE(c.crashed()); // pole dropped past the tilt limit
}

TEST(PlantPredicates, CommandFromDeltaClampsToEnvelope)
{
    for (auto &p : allPlants()) {
        std::vector<float> big(static_cast<size_t>(p->nu()), 1e9f);
        std::vector<float> neg(static_cast<size_t>(p->nu()), -1e9f);
        std::vector<double> hi = p->commandFromDelta(big.data());
        std::vector<double> lo = p->commandFromDelta(neg.data());
        std::vector<double> cmin = p->commandMin();
        std::vector<double> cmax = p->commandMax();
        for (int i = 0; i < p->nu(); ++i) {
            EXPECT_DOUBLE_EQ(hi[i], cmax[i]) << p->name();
            EXPECT_DOUBLE_EQ(lo[i], cmin[i]) << p->name();
        }
    }
}

// --- scenario registry ---

TEST(Registry, EnumeratesBuiltinPlantsAndSpecs)
{
    ScenarioRegistry &reg = ScenarioRegistry::global();
    std::vector<std::string> names = reg.plantNames();
    ASSERT_GE(names.size(), 4u); // quad + >= 3 new plants
    // 3 clean difficulties + 1 gusty spec per plant.
    EXPECT_GE(reg.specs().size(), 4 * names.size());
    for (const std::string &n : names) {
        std::unique_ptr<Plant> p = reg.makePlant(n);
        ASSERT_TRUE(p != nullptr) << n;
        EXPECT_EQ(p->name(), n);
        EXPECT_GT(p->nx(), 0);
        EXPECT_GT(p->nu(), 0);
    }
    EXPECT_TRUE(reg.makePlant("no-such-plant") == nullptr);
}

TEST(Registry, SpecsFindableAndDeterministic)
{
    ScenarioRegistry &reg = ScenarioRegistry::global();
    for (const ScenarioSpec &spec : reg.specs()) {
        auto found = reg.find(spec.id);
        ASSERT_TRUE(found != nullptr) << spec.id;
        EXPECT_EQ(found->plantName, spec.plantName);

        Scenario a = spec.makeScenario(3);
        Scenario b = spec.makeScenario(3);
        ASSERT_EQ(a.waypoints.size(), b.waypoints.size()) << spec.id;
        ASSERT_GT(a.waypoints.size(), 0u) << spec.id;
        for (size_t i = 0; i < a.waypoints.size(); ++i) {
            EXPECT_EQ(a.waypoints[i], b.waypoints[i]) << spec.id;
        }
        EXPECT_EQ(a.disturbance.cmdNoiseSigma,
                  spec.disturbance.cmdNoiseSigma);
        // Distinct indices explore distinct waypoint sets.
        Scenario c = spec.makeScenario(4);
        bool same = a.waypoints.size() == c.waypoints.size();
        if (same) {
            same = false;
            for (size_t i = 0; i < a.waypoints.size(); ++i)
                same = same || a.waypoints[i] != c.waypoints[i];
            EXPECT_TRUE(same) << spec.id << ": index must matter";
        }
    }
    EXPECT_TRUE(reg.find("no/such") == nullptr);
}

} // namespace
} // namespace rtoc::plant

namespace rtoc::hil {
namespace {

using plant::CartPolePlant;
using plant::Difficulty;
using plant::QuadrotorPlant;
using plant::RocketPlant;
using plant::RoverPlant;

/** The three on-chip backend timing models at a given frequency. */
std::vector<ControllerTiming>
allTimings(const plant::Plant &p)
{
    return {scalarControllerTiming(p, 0.02, 10),
            vectorControllerTiming(p, 0.02, 10),
            gemminiControllerTiming(p, 0.02, 10)};
}

TEST(CrossPlantHil, NewPlantsFlyEndToEndOnAllBackends)
{
    std::vector<std::unique_ptr<plant::Plant>> plants;
    plants.push_back(std::make_unique<RocketPlant>());
    plants.push_back(std::make_unique<RoverPlant>());
    plants.push_back(std::make_unique<CartPolePlant>());

    for (auto &p : plants) {
        for (const ControllerTiming &t : allTimings(*p)) {
            HilConfig cfg;
            cfg.timing = t;
            cfg.socFreqHz = 250e6;
            plant::Scenario sc = p->makeScenario(Difficulty::Easy, 0);
            std::unique_ptr<plant::Plant> inst = p->clone();
            EpisodeResult er = runEpisode(*inst, sc, cfg);
            EXPECT_TRUE(er.success)
                << p->name() << " on " << t.mappingName;
            EXPECT_FALSE(er.crashed)
                << p->name() << " on " << t.mappingName;
            EXPECT_GT(er.solveTimesS.size(), 10u);
            EXPECT_GT(er.rotorEnergyJ, 0.0);
        }
    }
}

TEST(CrossPlantHil, TimingOrderingHoldsAcrossShapes)
{
    // vector < gemmini < scalar per-iteration cost on every problem
    // shape (the paper's ordering for the quad, extended).
    for (auto &p : {std::unique_ptr<plant::Plant>(new RocketPlant()),
                    std::unique_ptr<plant::Plant>(new RoverPlant()),
                    std::unique_ptr<plant::Plant>(new CartPolePlant())}) {
        ControllerTiming s = scalarControllerTiming(*p, 0.02, 10);
        ControllerTiming v = vectorControllerTiming(*p, 0.02, 10);
        ControllerTiming g = gemminiControllerTiming(*p, 0.02, 10);
        EXPECT_GT(v.cyclesPerIter, 0.0) << p->name();
        EXPECT_GT(g.cyclesPerIter, v.cyclesPerIter) << p->name();
        EXPECT_GT(s.cyclesPerIter, g.cyclesPerIter) << p->name();
    }
}

TEST(CrossPlantHil, CalibrationKeyedByShapeNotPlant)
{
    // Same shape -> same memoized timing (parameters don't change the
    // stream); different shapes -> different cycle models.
    QuadrotorPlant quad;
    ControllerTiming q1 = scalarControllerTiming(quad, 0.02, 10);
    QuadrotorPlant hawk(quad::DroneParams::hawk());
    ControllerTiming q2 = scalarControllerTiming(hawk, 0.02, 10);
    EXPECT_DOUBLE_EQ(q1.cyclesPerIter, q2.cyclesPerIter);
    EXPECT_DOUBLE_EQ(q1.baseCycles, q2.baseCycles);

    CartPolePlant cp;
    ControllerTiming c = scalarControllerTiming(cp, 0.02, 10);
    EXPECT_NE(c.cyclesPerIter, q1.cyclesPerIter);
    EXPECT_LT(c.cyclesPerIter, q1.cyclesPerIter); // 4x1 << 12x4
}

TEST(CrossPlantHil, ParallelEpisodesMatchSerial)
{
    RoverPlant proto;
    HilConfig cfg;
    cfg.timing = vectorControllerTiming(proto, 0.02, 10);
    cfg.socFreqHz = 100e6;

    SweepRunner sweep;
    auto fanned = sweep.runEpisodes(proto, Difficulty::Easy, 4, cfg);
    ASSERT_EQ(fanned.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        plant::Scenario sc = proto.makeScenario(Difficulty::Easy, i);
        std::unique_ptr<plant::Plant> inst = proto.clone();
        EpisodeResult serial = runEpisode(*inst, sc, cfg);
        EXPECT_EQ(serial.success, fanned[i].success) << i;
        EXPECT_DOUBLE_EQ(serial.missionTimeS, fanned[i].missionTimeS)
            << i;
        EXPECT_DOUBLE_EQ(serial.rotorEnergyJ, fanned[i].rotorEnergyJ)
            << i;
        EXPECT_EQ(serial.iterations.size(), fanned[i].iterations.size())
            << i;
    }
}

TEST(CrossPlantHil, DisturbanceProfilePerturbsDeterministically)
{
    RocketPlant proto;
    HilConfig cfg;
    cfg.idealPolicy = true;
    cfg.timing = vectorControllerTiming(proto, 0.02, 10);

    plant::Scenario clean = proto.makeScenario(Difficulty::Easy, 0);
    plant::Scenario gusty = clean;
    gusty.disturbance = plant::DisturbanceProfile::gusty();

    std::unique_ptr<plant::Plant> a = proto.clone();
    std::unique_ptr<plant::Plant> b = proto.clone();
    std::unique_ptr<plant::Plant> c = proto.clone();
    EpisodeResult r_clean = runEpisode(*a, clean, cfg);
    EpisodeResult r_gusty1 = runEpisode(*b, gusty, cfg);
    EpisodeResult r_gusty2 = runEpisode(*c, gusty, cfg);
    // Noise changes the trajectory (energy differs)...
    EXPECT_NE(r_clean.rotorEnergyJ, r_gusty1.rotorEnergyJ);
    // ...but is seeded by the scenario: bit-reproducible.
    EXPECT_DOUBLE_EQ(r_gusty1.rotorEnergyJ, r_gusty2.rotorEnergyJ);
    EXPECT_DOUBLE_EQ(r_gusty1.missionTimeS, r_gusty2.missionTimeS);
}

TEST(CrossPlantHil, RunCellMemoHitsOnRepeatAndMatches)
{
    CartPolePlant proto;
    HilConfig cfg;
    cfg.timing = vectorControllerTiming(proto, 0.02, 10);
    cfg.socFreqHz = 100e6;

    CellMemoStats before = cellMemoStats();
    SweepCell a = runCell(proto, Difficulty::Easy, 3, cfg);
    CellMemoStats mid = cellMemoStats();
    SweepCell b = runCell(proto, Difficulty::Easy, 3, cfg);
    CellMemoStats after = cellMemoStats();

    EXPECT_EQ(mid.misses, before.misses + 1);
    EXPECT_EQ(after.hits, mid.hits + 1);
    EXPECT_EQ(after.misses, mid.misses);

    EXPECT_EQ(a.episodes, b.episodes);
    EXPECT_DOUBLE_EQ(a.successRate, b.successRate);
    EXPECT_DOUBLE_EQ(a.solveTimeMs.median, b.solveTimeMs.median);
    EXPECT_DOUBLE_EQ(a.avgIterations, b.avgIterations);
    EXPECT_DOUBLE_EQ(a.avgRotorPowerW, b.avgRotorPowerW);

    // Distinct frequency -> distinct key -> a miss, not a stale hit.
    cfg.socFreqHz = 250e6;
    SweepCell c = runCell(proto, Difficulty::Easy, 3, cfg);
    CellMemoStats freq = cellMemoStats();
    EXPECT_EQ(freq.misses, after.misses + 1);
    EXPECT_NE(c.solveTimeMs.median, a.solveTimeMs.median);
}

} // namespace
} // namespace rtoc::hil
