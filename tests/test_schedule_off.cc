/**
 * @file
 * The RTOC_SCHED=0 contract: with the schedule layer off (the
 * default; this binary never sets the env var) every golden output
 * must stay byte-identical to the pre-schedule builds. That reduces
 * to three invariants, pinned here in a process whose env latch is
 * guaranteed off: scheduledStream returns the baseline stream pointer
 * untouched, schedKeySuffix() is empty (calibration and DSE cell keys
 * are unchanged), and no "sched.*" counters are ever registered (the
 * metrics JSON section is unchanged).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "cpu/inorder.hh"
#include "isa/program.hh"
#include "isa/program_cache.hh"
#include "isa/sched_search.hh"
#include "obs/registry.hh"

namespace rtoc {
namespace {

using isa::Program;
using isa::Uop;
using isa::UopKind;

/** Guarantee the off state regardless of the ctest environment. */
const bool kSchedEnv = [] {
    unsetenv("RTOC_SCHED");
    return true;
}();

Program
smallProgram()
{
    Program p;
    p.beginKernel("body");
    uint32_t acc = p.newReg();
    p.push(Uop::scalar(UopKind::FpMove, acc));
    for (int i = 0; i < 8; ++i) {
        uint32_t next = p.newReg();
        p.push(Uop::scalar(UopKind::FpFma, next, acc));
        acc = next;
    }
    p.endKernel();
    return p;
}

TEST(ScheduleOff, LayerIsInert)
{
    ASSERT_FALSE(isa::schedEnabled());
    EXPECT_EQ(isa::schedKeySuffix(), "");

    auto baseline = std::make_shared<const Program>(smallProgram());
    cpu::InOrderCore shuttle(cpu::InOrderConfig::shuttle());
    int cost_calls = 0;
    auto s = isa::scheduledStream(
        "modelA", "progK", baseline,
        [&](const Program &p) {
            ++cost_calls;
            return shuttle.run(p).cycles;
        });
    // Same pointer — not a copy, not a searched schedule — and the
    // cost model (i.e. the search) never ran.
    EXPECT_EQ(s.get(), baseline.get());
    EXPECT_EQ(cost_calls, 0);

    // No schedule counters leak into the registry snapshot, so the
    // metrics JSON of sched-off runs is byte-identical to pre-PR
    // builds.
    obs::Snapshot snap = obs::Registry::global().snapshot();
    EXPECT_EQ(snap.get("sched.searches"), 0u);
    EXPECT_EQ(snap.get("sched.cache_hits"), 0u);
    EXPECT_EQ(snap.get("sched.candidates_scored"), 0u);
}

} // namespace
} // namespace rtoc
