/**
 * @file
 * Tests for the Gemmini model: fence drain and store->load ordering
 * penalty (§4.2.4), command-queue back-pressure, column-vector DMA
 * inefficiency, pooling mvout, and execution ordering.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "systolic/gemmini.hh"

namespace rtoc::systolic {
namespace {

using isa::kNoReg;
using isa::Program;
using isa::Uop;
using isa::UopKind;

TEST(Gemmini, FenceAfterMvoutPaysMemoryOrderingPenalty)
{
    GemminiModel m(GemminiConfig::os4x4());

    Program with_store;
    with_store.push(Uop::rocc(UopKind::RoccMvout, 16, 1, 64));
    with_store.push(Uop::rocc(UopKind::RoccFence, 0, 0));

    Program without_store;
    without_store.push(Uop::rocc(UopKind::RoccMvin, 16, 1, 64));
    without_store.push(Uop::rocc(UopKind::RoccFence, 0, 0));

    auto rs = m.run(with_store);
    auto rn = m.run(without_store);
    // The paper measures up to ~600 cycles of stall on such fences.
    EXPECT_GT(rs.cycles, rn.cycles + 500);
}

TEST(Gemmini, FencePenaltyClearedAfterFirstFence)
{
    GemminiModel m(GemminiConfig::os4x4());
    Program p;
    p.push(Uop::rocc(UopKind::RoccMvout, 16, 1, 64));
    p.push(Uop::rocc(UopKind::RoccFence, 0, 0));
    p.push(Uop::rocc(UopKind::RoccFence, 0, 0)); // no pending store
    auto r = m.run(p);
    EXPECT_EQ(r.stats.get("rocc_fences"), 2u);
    // Second fence must be cheap: well under two penalties.
    EXPECT_LT(r.cycles,
              2 * static_cast<uint64_t>(
                      m.config().fenceMemPenalty) + 200);
}

TEST(Gemmini, ColumnVectorMovesOneElementPerCycle)
{
    GemminiModel m(GemminiConfig::os4x4());
    Program column, block;
    // Same byte count: 64 floats as a column vs a 8x8 block.
    column.push(Uop::rocc(UopKind::RoccMvin, 64, 1, 256));
    block.push(Uop::rocc(UopKind::RoccMvin, 8, 8, 256));
    EXPECT_GT(m.run(column).cycles, m.run(block).cycles);
}

TEST(Gemmini, ComputeScalesWithTileRows)
{
    GemminiModel m(GemminiConfig::os4x4());
    Program small, large;
    small.push(Uop::rocc(UopKind::RoccCompute, 4, 4));
    large.push(Uop::rocc(UopKind::RoccCompute, 64, 4));
    EXPECT_GT(m.run(large).cycles, m.run(small).cycles);
}

TEST(Gemmini, QueueBackPressure)
{
    GemminiConfig cfg = GemminiConfig::os4x4();
    cfg.robDepth = 2;
    GemminiModel shallow(cfg);
    GemminiModel deep(GemminiConfig::os4x4());
    Program p;
    for (int i = 0; i < 64; ++i)
        p.push(Uop::rocc(UopKind::RoccCompute, 32, 4));
    auto rs = shallow.run(p);
    auto rd = deep.run(p);
    EXPECT_GE(rs.stats.get("stall_rob_full"),
              rd.stats.get("stall_rob_full"));
}

TEST(Gemmini, PooledMvoutCostsComparatorPass)
{
    GemminiModel m(GemminiConfig::os4x4());
    Program plain, pooled;
    plain.push(Uop::rocc(UopKind::RoccMvout, 32, 1, 128));
    Uop u = Uop::rocc(UopKind::RoccMvout, 32, 1, 128);
    u.taken = 1; // pooling enabled
    pooled.push(u);
    EXPECT_GT(m.run(pooled).cycles, m.run(plain).cycles);
}

TEST(Gemmini, ScalarWorkOverlapsAccelerator)
{
    // Scalar uops issued after a long compute, with no fence, overlap
    // with accelerator execution.
    GemminiModel m(GemminiConfig::os4x4());
    Program overlap;
    overlap.push(Uop::rocc(UopKind::RoccCompute, 200, 4));
    for (int i = 0; i < 100; ++i)
        overlap.push(Uop::scalar(UopKind::IntAlu, overlap.newReg()));
    Program serial;
    serial.push(Uop::rocc(UopKind::RoccCompute, 200, 4));
    serial.push(Uop::rocc(UopKind::RoccFence, 0, 0));
    for (int i = 0; i < 100; ++i)
        serial.push(Uop::scalar(UopKind::IntAlu, serial.newReg()));
    EXPECT_LT(m.run(overlap).cycles, m.run(serial).cycles);
}

TEST(Gemmini, CommandsExecuteInOrder)
{
    GemminiModel m(GemminiConfig::os4x4());
    Program p;
    p.push(Uop::rocc(UopKind::RoccMvin, 4, 4, 64));
    p.push(Uop::rocc(UopKind::RoccPreload, 4, 4));
    p.push(Uop::rocc(UopKind::RoccCompute, 4, 4));
    auto r = m.run(p);
    EXPECT_EQ(r.stats.get("rocc_cmds"), 3u);
    // Total at least the sum of execution latencies.
    uint64_t min_exec = static_cast<uint64_t>(m.config().dmaFixed) + 4 +
                        4 + (4 + 8);
    EXPECT_GE(r.cycles, min_exec);
}

TEST(Gemmini, WsConfigCarriesAccumulator)
{
    GemminiConfig ws = GemminiConfig::ws4x4();
    EXPECT_EQ(ws.dataflow, Dataflow::WeightStationary);
    EXPECT_GT(ws.accKb, 0);
    GemminiConfig os = GemminiConfig::os4x4();
    EXPECT_EQ(os.dataflow, Dataflow::OutputStationary);
    EXPECT_EQ(os.accKb, 0);
}

TEST(Gemmini, HardwareGemvSpeedsColumnVectors)
{
    // §4.2.4 future-work extension: packing vectors across scratchpad
    // rows restores full DMA bandwidth for column operands.
    GemminiModel base(GemminiConfig::os4x4());
    GemminiModel hw(GemminiConfig::os4x4HwGemv());
    Program p;
    for (int i = 0; i < 16; ++i)
        p.push(Uop::rocc(UopKind::RoccMvin, 64, 1, 256));
    EXPECT_LT(hw.run(p).cycles, base.run(p).cycles);
    // Block transfers are unaffected.
    Program blocks;
    for (int i = 0; i < 16; ++i)
        blocks.push(Uop::rocc(UopKind::RoccMvin, 8, 8, 256));
    EXPECT_EQ(hw.run(blocks).cycles, base.run(blocks).cycles);
}

TEST(Gemmini, Deterministic)
{
    GemminiModel m(GemminiConfig::os4x4());
    Program p;
    for (int i = 0; i < 20; ++i) {
        p.push(Uop::rocc(UopKind::RoccPreload, 4, 4));
        p.push(Uop::rocc(UopKind::RoccCompute, 4, 4));
    }
    EXPECT_EQ(m.run(p).cycles, m.run(p).cycles);
}

} // namespace
} // namespace rtoc::systolic
