/**
 * @file
 * Quadrotor substrate tests: Table-1 parameters and derived
 * quantities, rigid-body dynamics invariants (hover equilibrium,
 * gravity, torque response, energy accounting), linearization
 * consistency against the nonlinear model, and scenario generation
 * against the Figure 15 difficulty table.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "quad/dynamics.hh"
#include "quad/linearize.hh"
#include "quad/params.hh"
#include "quad/scenario.hh"

namespace rtoc::quad {
namespace {

TEST(Params, Table1Values)
{
    DroneParams cf = DroneParams::crazyflie();
    EXPECT_DOUBLE_EQ(cf.massKg, 0.027);
    EXPECT_DOUBLE_EQ(cf.propDiameterM, 0.045);
    EXPECT_DOUBLE_EQ(cf.armLengthM, 0.080);
    EXPECT_DOUBLE_EQ(cf.motorKvRpmPerV, 14000.0);
    EXPECT_EQ(cf.batteryCells, 1);

    DroneParams hawk = DroneParams::hawk();
    EXPECT_DOUBLE_EQ(hawk.massKg, 0.046);
    EXPECT_DOUBLE_EQ(hawk.propDiameterM, 0.060);
    EXPECT_DOUBLE_EQ(hawk.motorKvRpmPerV, 28000.0);
    EXPECT_EQ(hawk.batteryCells, 2);

    DroneParams heron = DroneParams::heron();
    EXPECT_DOUBLE_EQ(heron.massKg, 0.035);
    EXPECT_DOUBLE_EQ(heron.propDiameterM, 0.090);
    EXPECT_DOUBLE_EQ(heron.armLengthM, 0.160);
    EXPECT_EQ(heron.batteryCells, 2);
}

TEST(Params, AllVariantsCanHover)
{
    for (auto p : {DroneParams::crazyflie(), DroneParams::hawk(),
                   DroneParams::heron()}) {
        EXPECT_GT(p.thrustToWeight(), 1.5) << p.name;
        EXPECT_LT(p.hoverThrustPerMotorN(), p.maxThrustPerMotorN())
            << p.name;
    }
}

TEST(Params, HawkHasMostAuthorityHeronMostEfficiency)
{
    DroneParams cf = DroneParams::crazyflie();
    DroneParams hawk = DroneParams::hawk();
    DroneParams heron = DroneParams::heron();
    EXPECT_GT(hawk.thrustToWeight(), cf.thrustToWeight());

    // Hover power per newton of thrust: Heron's large disks win.
    auto hover_power = [](const DroneParams &p) {
        return 4.0 * rotorInducedPowerW(p.hoverThrustPerMotorN(),
                                        p.rotorDiskAreaM2());
    };
    double cf_specific = hover_power(cf) / (cf.massKg * kGravity);
    double heron_specific =
        hover_power(heron) / (heron.massKg * kGravity);
    EXPECT_LT(heron_specific, cf_specific);
}

TEST(Params, MomentumTheoryPower)
{
    // Doubling disk area cuts induced power by sqrt(2) at equal
    // thrust (Equation 4).
    double p1 = rotorInducedPowerW(0.1, 0.002);
    double p2 = rotorInducedPowerW(0.1, 0.004);
    EXPECT_NEAR(p1 / p2, std::sqrt(2.0), 1e-9);
    EXPECT_EQ(rotorInducedPowerW(0.0, 0.002), 0.0);
    // T^1.5 scaling.
    EXPECT_NEAR(rotorInducedPowerW(0.4, 0.002) /
                    rotorInducedPowerW(0.1, 0.002),
                8.0, 1e-9);
}

TEST(Dynamics, HoverIsEquilibrium)
{
    QuadSim sim(DroneParams::crazyflie());
    sim.resetHover({0, 0, 1.0});
    double hover = sim.hoverCmd();
    for (int i = 0; i < 240; ++i)
        sim.step({hover, hover, hover, hover}, 1.0 / 240.0);
    EXPECT_NEAR(sim.state().pos[2], 1.0, 0.01);
    EXPECT_NEAR(sim.state().vel[2], 0.0, 0.02);
    EXPECT_NEAR(sim.state().tiltCos(), 1.0, 1e-6);
}

TEST(Dynamics, ZeroThrustFallsUnderGravity)
{
    QuadSim sim(DroneParams::crazyflie());
    sim.resetHover({0, 0, 2.0});
    // Kill motor lag influence by waiting for decay.
    for (int i = 0; i < 120; ++i)
        sim.step({0, 0, 0, 0}, 1.0 / 240.0);
    // After 0.5 s mostly free fall: v approx -g t (minus drag/decay).
    EXPECT_LT(sim.state().vel[2], -2.5);
}

TEST(Dynamics, DifferentialThrustRolls)
{
    QuadSim sim(DroneParams::crazyflie());
    sim.resetHover({0, 0, 1.0});
    double h = sim.hoverCmd();
    // Motors 2,3 harder (positive roll torque by our mixing).
    for (int i = 0; i < 24; ++i)
        sim.step({h * 0.9, h * 0.9, h * 1.1, h * 1.1}, 1.0 / 240.0);
    EXPECT_GT(sim.state().omega[0], 0.1);
    EXPECT_NEAR(sim.state().omega[2], 0.0, 0.05);
}

TEST(Dynamics, YawFromSpinImbalance)
{
    QuadSim sim(DroneParams::crazyflie());
    sim.resetHover({0, 0, 1.0});
    double h = sim.hoverCmd();
    // Motors 0,2 (CW pair) harder -> yaw torque.
    for (int i = 0; i < 48; ++i)
        sim.step({h * 1.1, h * 0.9, h * 1.1, h * 0.9}, 1.0 / 240.0);
    EXPECT_GT(std::fabs(sim.state().omega[2]), 0.05);
}

TEST(Dynamics, RotorEnergyAccumulates)
{
    QuadSim sim(DroneParams::crazyflie());
    sim.resetHover({0, 0, 1.0});
    double h = sim.hoverCmd();
    for (int i = 0; i < 240; ++i)
        sim.step({h, h, h, h}, 1.0 / 240.0);
    // One second of hover at ~1.1 W.
    EXPECT_NEAR(sim.rotorEnergyJ(), sim.rotorPowerW() * 1.0, 0.05);
    EXPECT_GT(sim.rotorPowerW(), 0.8);
    EXPECT_LT(sim.rotorPowerW(), 1.6);
}

TEST(Dynamics, CrashDetection)
{
    QuadSim sim(DroneParams::crazyflie());
    sim.resetHover({0, 0, 0.5});
    for (int i = 0; i < 480 && !sim.crashed(); ++i)
        sim.step({0, 0, 0, 0}, 1.0 / 240.0);
    EXPECT_TRUE(sim.crashed());
}

TEST(Dynamics, ExternalForcePushes)
{
    QuadSim sim(DroneParams::crazyflie());
    sim.resetHover({0, 0, 1.0});
    double h = sim.hoverCmd();
    ExternalWrench w;
    w.forceN = {0.05, 0, 0};
    for (int i = 0; i < 120; ++i)
        sim.step({h, h, h, h}, 1.0 / 240.0, w);
    EXPECT_GT(sim.state().pos[0], 0.02);
}

TEST(Linearize, MatchesNonlinearSmallPerturbation)
{
    DroneParams cf = DroneParams::crazyflie();
    double dt = 0.02;
    LinearModel lm = linearizeHover(cf, dt);

    // Nonlinear step from a small perturbed state with hover thrust.
    QuadSim sim(cf);
    sim.resetHover({0, 0, 1.0});
    sim.mutableState().vel = {0.05, 0.0, 0.0};
    // Disable motor lag effects by commanding the current thrust.
    double h = cf.hoverThrustPerMotorN();
    for (int i = 0; i < static_cast<int>(dt * 240 + 0.5); ++i)
        sim.step({h, h, h, h}, 1.0 / 240.0);

    // Linear prediction (state relative to hover at the origin;
    // position enters through row 0..2).
    numerics::DMatrix x0(12, 1);
    x0(0, 0) = 0.0;
    x0(2, 0) = 1.0;
    x0(6, 0) = 0.05;
    numerics::DMatrix x1 = lm.ad * x0;

    EXPECT_NEAR(sim.state().pos[0], x1(0, 0), 2e-4);
    EXPECT_NEAR(sim.state().vel[0], x1(6, 0), 2e-3);
}

TEST(Linearize, DiscreteMatricesWellFormed)
{
    LinearModel lm = linearizeHover(DroneParams::crazyflie(), 0.02);
    // Ad close to identity for small dt; Bd nonzero in z-accel row.
    EXPECT_NEAR(lm.ad(0, 0), 1.0, 1e-9);
    EXPECT_NEAR(lm.ad(0, 6), 0.02, 5e-4);
    for (int j = 0; j < 4; ++j)
        EXPECT_GT(lm.bd(8, j), 0.0);
}

TEST(Linearize, WorkspaceBuilds)
{
    tinympc::Workspace ws =
        buildQuadWorkspace(DroneParams::crazyflie(), 0.02, 10);
    EXPECT_EQ(ws.nx, 12);
    EXPECT_EQ(ws.nu, 4);
    EXPECT_EQ(ws.N, 10);
    // Input bounds reflect the motor envelope.
    EXPECT_LT(ws.uMin.view().at(0, 0), 0.0f);
    EXPECT_GT(ws.uMax.view().at(0, 0), 0.0f);
}

TEST(Scenario, Figure15Table)
{
    DifficultySpec easy = difficultySpec(Difficulty::Easy);
    EXPECT_EQ(easy.waypointCount, 5);
    EXPECT_DOUBLE_EQ(easy.timeBetweenS, 0.5);
    EXPECT_DOUBLE_EQ(easy.avgDistanceM, 0.3);
    DifficultySpec med = difficultySpec(Difficulty::Medium);
    EXPECT_EQ(med.waypointCount, 7);
    EXPECT_DOUBLE_EQ(med.timeBetweenS, 0.4);
    EXPECT_DOUBLE_EQ(med.avgDistanceM, 0.7);
    DifficultySpec hard = difficultySpec(Difficulty::Hard);
    EXPECT_EQ(hard.waypointCount, 10);
    EXPECT_DOUBLE_EQ(hard.timeBetweenS, 0.3);
    EXPECT_DOUBLE_EQ(hard.avgDistanceM, 1.1);
}

TEST(Scenario, Deterministic)
{
    Scenario a = makeScenario(Difficulty::Medium, 3);
    Scenario b = makeScenario(Difficulty::Medium, 3);
    ASSERT_EQ(a.waypoints.size(), b.waypoints.size());
    for (size_t i = 0; i < a.waypoints.size(); ++i)
        EXPECT_EQ(a.waypoints[i], b.waypoints[i]);
    Scenario c = makeScenario(Difficulty::Medium, 4);
    EXPECT_NE(a.waypoints[0], c.waypoints[0]);
}

class ScenarioStats
    : public ::testing::TestWithParam<Difficulty>
{};

TEST_P(ScenarioStats, HopDistancesMatchSpec)
{
    Difficulty d = GetParam();
    DifficultySpec spec = difficultySpec(d);
    double total = 0.0;
    const int n = 20;
    for (int i = 0; i < n; ++i) {
        Scenario sc = makeScenario(d, i);
        EXPECT_EQ(static_cast<int>(sc.waypoints.size()),
                  spec.waypointCount);
        EXPECT_DOUBLE_EQ(sc.intervalS, spec.timeBetweenS);
        total += sc.meanHopDistance();
        // All waypoints inside the flight box.
        for (const auto &wp : sc.waypoints) {
            EXPECT_LT(std::fabs(wp[0]), 2.6);
            EXPECT_LT(std::fabs(wp[1]), 2.6);
            EXPECT_GT(wp[2], 0.35);
            EXPECT_LT(wp[2], 2.05);
        }
    }
    // Mean hop near the Figure 15 value (boundary clamping allows a
    // modest downward bias on Hard).
    double mean = total / n;
    EXPECT_GT(mean, spec.avgDistanceM * 0.7);
    EXPECT_LT(mean, spec.avgDistanceM * 1.25);
}

INSTANTIATE_TEST_SUITE_P(AllDifficulties, ScenarioStats,
                         ::testing::Values(Difficulty::Easy,
                                           Difficulty::Medium,
                                           Difficulty::Hard));

} // namespace
} // namespace rtoc::quad
