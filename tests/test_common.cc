/**
 * @file
 * Unit tests for the common utilities: stats, distributions, tables,
 * the deterministic RNG, and CLI parsing.
 */

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace rtoc {
namespace {

TEST(StatGroup, StartsEmpty)
{
    StatGroup s;
    EXPECT_EQ(s.get("anything"), 0u);
    EXPECT_FALSE(s.has("anything"));
}

TEST(StatGroup, IncrementAndSet)
{
    StatGroup s;
    s.inc("a");
    s.inc("a", 4);
    s.set("b", 7);
    EXPECT_EQ(s.get("a"), 5u);
    EXPECT_EQ(s.get("b"), 7u);
    EXPECT_TRUE(s.has("a"));
}

TEST(StatGroup, ResetKeepsNames)
{
    StatGroup s;
    s.inc("a", 3);
    s.reset();
    EXPECT_TRUE(s.has("a"));
    EXPECT_EQ(s.get("a"), 0u);
}

TEST(StatGroup, DumpContainsEntries)
{
    StatGroup s;
    s.set("cycles", 42);
    std::string d = s.dump("core.");
    EXPECT_NE(d.find("core.cycles = 42"), std::string::npos);
}

TEST(Distribution, EmptySummary)
{
    Distribution d;
    DistSummary s = d.summarize();
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.median, 0.0);
}

TEST(Distribution, SingleSample)
{
    Distribution d;
    d.add(3.5);
    DistSummary s = d.summarize();
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.median, 3.5);
    EXPECT_DOUBLE_EQ(s.min, 3.5);
    EXPECT_DOUBLE_EQ(s.max, 3.5);
}

TEST(Distribution, MedianAndQuartiles)
{
    Distribution d;
    for (int i = 1; i <= 101; ++i)
        d.add(static_cast<double>(i));
    DistSummary s = d.summarize();
    EXPECT_DOUBLE_EQ(s.median, 51.0);
    EXPECT_DOUBLE_EQ(s.p25, 26.0);
    EXPECT_DOUBLE_EQ(s.p75, 76.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 101.0);
}

TEST(Distribution, MedianUnsortedInput)
{
    Distribution d;
    for (double v : {9.0, 1.0, 5.0, 3.0, 7.0})
        d.add(v);
    EXPECT_DOUBLE_EQ(d.summarize().median, 5.0);
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double v = r.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng r(13);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = r.gaussian();
        sum += v;
        sum2 += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sum2 / n, 1.0, 0.1);
}

TEST(Table, RendersAlignedRows)
{
    Table t("demo", {"config", "cycles"});
    t.addRow({"rocket", "12345"});
    t.addRow({"boom-mega", "99"});
    std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("rocket"), std::string::npos);
    EXPECT_NE(out.find("99"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(uint64_t{42}), "42");
    EXPECT_EQ(Table::pct(0.5), "50.0%");
}

TEST(Cli, ParsesFlagsAndDefaults)
{
    const char *argv[] = {"prog", "--n=5", "--rate=2.5", "--full",
                          "--name=abc"};
    Cli cli(5, const_cast<char **>(argv));
    EXPECT_EQ(cli.getInt("n", 1), 5);
    EXPECT_DOUBLE_EQ(cli.getDouble("rate", 0.0), 2.5);
    EXPECT_TRUE(cli.has("full"));
    EXPECT_EQ(cli.getString("name", ""), "abc");
    EXPECT_EQ(cli.getInt("missing", 9), 9);
    EXPECT_FALSE(cli.has("missing"));
}

} // namespace
} // namespace rtoc
