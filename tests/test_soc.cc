/**
 * @file
 * SoC substrate tests: power model monotonicity and magnitudes, area
 * table + Pareto frontier extraction, UART latency arithmetic, and
 * the RTOS scheduler model used by the §5.3 concurrency study.
 */

#include <gtest/gtest.h>

#include "soc/area_model.hh"
#include "soc/power_model.hh"
#include "soc/rtos.hh"
#include "soc/uart.hh"

namespace rtoc::soc {
namespace {

TEST(Power, IncreasesWithFrequency)
{
    PowerModel pm(PowerParams::scalarCore());
    double prev = 0.0;
    for (double f : {50e6, 100e6, 250e6, 500e6}) {
        double p = pm.powerW(f, 0.3);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(Power, IncreasesWithUtilization)
{
    PowerModel pm(PowerParams::vectorCore());
    EXPECT_GT(pm.powerW(100e6, 0.8), pm.powerW(100e6, 0.1));
    // Clamps out-of-range utilization.
    EXPECT_EQ(pm.powerW(100e6, 1.5), pm.powerW(100e6, 1.0));
    EXPECT_EQ(pm.powerW(100e6, -1.0), pm.powerW(100e6, 0.0));
}

TEST(Power, MagnitudesAreMilliwattScale)
{
    // Compute power must sit in the paper's 1-5% band of a ~1-3 W
    // drone: tens of milliwatts at 100 MHz.
    PowerModel pm(PowerParams::vectorCore());
    double p = pm.powerW(100e6, 0.05);
    EXPECT_GT(p, 0.003);
    EXPECT_LT(p, 0.08);
    double p500 = pm.powerW(500e6, 0.05);
    EXPECT_LT(p500, 0.3);
}

TEST(Power, SuperlinearInFrequencyViaDvfs)
{
    PowerModel pm(PowerParams::scalarCore());
    double p100 = pm.powerW(100e6, 1.0) - pm.params().leakageW;
    double p500 = pm.powerW(500e6, 1.0) - pm.params().leakageW;
    EXPECT_GT(p500 / p100, 5.0); // voltage scaling makes it > linear
}

TEST(Power, EnergyForCyclesIndependentCheck)
{
    PowerModel pm(PowerParams::scalarCore());
    double e = pm.energyForCyclesJ(100e6, 1e6); // 10 ms busy
    EXPECT_GT(e, 0.0);
    EXPECT_LT(e, 0.01);
}

TEST(Area, KnownConfigsPresent)
{
    AreaModel am;
    EXPECT_TRUE(am.has("rocket"));
    EXPECT_TRUE(am.has("saturn-v512d256-shuttle"));
    EXPECT_TRUE(am.has("gemmini-os4x4-spad64k"));
    EXPECT_FALSE(am.has("nonexistent"));
    EXPECT_LT(am.areaMm2("rocket"), 0.5);
}

TEST(Area, OrderingMatchesPaper)
{
    AreaModel am;
    // Rocket < Shuttle < Saturn configs < big BOOMs.
    EXPECT_LT(am.areaMm2("rocket"), am.areaMm2("shuttle"));
    EXPECT_LT(am.areaMm2("shuttle"),
              am.areaMm2("saturn-v256d128-rocket"));
    EXPECT_LT(am.areaMm2("gemmini-os4x4-spad32k"),
              am.areaMm2("gemmini-os4x4-spad64k"));
    EXPECT_GT(am.areaMm2("boom-mega"),
              am.areaMm2("saturn-v512d256-shuttle"));
    // Gemmini windows sits in the paper's 1.5-2.3 mm^2 band.
    EXPECT_GE(am.areaMm2("gemmini-os4x4-spad32k"), 1.5);
    EXPECT_LE(am.areaMm2("gemmini-os4x4-spad64k"), 2.3);
}

TEST(Area, ParetoFrontier)
{
    std::vector<ParetoPoint> pts = {
        {"a", 1.0, 10.0, false},
        {"b", 2.0, 5.0, false},  // dominated by a
        {"c", 2.5, 20.0, false},
        {"d", 3.0, 15.0, false}, // dominated by c
        {"e", 4.0, 30.0, false},
    };
    markParetoFrontier(pts);
    EXPECT_TRUE(pts[0].optimal);
    EXPECT_FALSE(pts[1].optimal);
    EXPECT_TRUE(pts[2].optimal);
    EXPECT_FALSE(pts[3].optimal);
    EXPECT_TRUE(pts[4].optimal);
}

TEST(Uart, LatencyArithmetic)
{
    UartModel u(115200.0, 6);
    // (20+6 bytes) * 10 bits / 115200 baud.
    EXPECT_NEAR(u.transferS(20), 26.0 * 10.0 / 115200.0, 1e-12);
    EXPECT_GT(u.uplinkS(), u.downlinkS()); // state > command payload
}

TEST(Uart, FasterBaudLowerLatency)
{
    UartModel slow(115200.0);
    UartModel fast(921600.0);
    EXPECT_GT(slow.uplinkS(), fast.uplinkS());
}

TEST(Uart, FramingIsShapeAware)
{
    UartModel u(460800.0, 6);
    // Every registered plant's messages fit a small frame: the
    // overhead is the historical fixed 6 bytes and the latency
    // matches the historical formula bit-for-bit.
    for (int payload : {8, 16, 28, 36, 60, UartModel::kMaxSmallPayload}) {
        EXPECT_EQ(u.framingBytes(payload), 6) << payload;
        EXPECT_EQ(u.transferS(payload),
                  10.0 * (payload + 6) / 460800.0)
            << payload;
    }
    // A wide custom shape (nx=100: (100+3)*4 = 412 B uplink) needs a
    // 2-byte length field and CRC-32: 3 more framing bytes.
    const int wide_uplink = (100 + 3) * 4;
    EXPECT_EQ(u.framingBytes(wide_uplink), 9);
    EXPECT_EQ(u.uplinkS(100), 10.0 * (wide_uplink + 9) / 460800.0);
    // The boundary is exact.
    EXPECT_EQ(u.framingBytes(UartModel::kMaxSmallPayload + 1), 9);
    // The configuration accessor still reports the small-frame value
    // (runCell memo keys embed it).
    EXPECT_EQ(u.framingBytes(), 6);
}

TEST(Uart, NarrowWireFormatShrinksTetherTime)
{
    UartModel u(460800.0, 6);
    // int16 wire elements halve the payload byte-for-byte; the
    // 4-byte default is the historical latency exactly.
    EXPECT_EQ(u.uplinkS(12, 2), u.transferS((12 + 3) * 2));
    EXPECT_EQ(u.downlinkS(4, 2), u.transferS(4 * 2));
    EXPECT_LT(u.uplinkS(12, 2), u.uplinkS(12, 4));
    EXPECT_LT(u.downlinkS(4, 2), u.downlinkS(4, 4));
    EXPECT_EQ(u.uplinkS(12, 4), u.uplinkS());
    EXPECT_EQ(u.downlinkS(4, 4), u.downlinkS());
    // Narrow payloads always stay on the small-frame (<=255 B) path —
    // even the wide nx=100 shape that needs a large frame at float32.
    EXPECT_EQ(u.framingBytes((100 + 3) * 2), 6);
    EXPECT_EQ(u.framingBytes((100 + 3) * 4), 9);
}

TEST(Rtos, UtilizationMatchesAnalytic)
{
    // 50 Hz task of 5.7 ms at 100 MHz -> 28.5% utilization (the
    // paper's scalar MPC number).
    PeriodicTask mpc{"mpc", 0.02, 570000.0};
    ScheduleResult r = simulateSchedule(mpc, 12.5e6, 100e6, 10.0);
    EXPECT_NEAR(r.periodicUtilization, 0.285, 0.005);
    EXPECT_EQ(r.periodicDeadlineMisses, 0u);
    EXPECT_GT(r.backgroundCompletions, 0u);
}

TEST(Rtos, BackgroundFpsScalesWithFreeCpu)
{
    PeriodicTask heavy{"mpc", 0.02, 570000.0};  // 28.5%
    PeriodicTask light{"mpc", 0.02, 66000.0};   // 3.3%
    double dronet = 12.5e6;
    ScheduleResult rh = simulateSchedule(heavy, dronet, 100e6, 10.0);
    ScheduleResult rl = simulateSchedule(light, dronet, 100e6, 10.0);
    EXPECT_GT(rl.backgroundFps, rh.backgroundFps);
    // Ratio approx (1-0.033)/(1-0.285) = 1.35 (the paper's speedup).
    EXPECT_NEAR(rl.backgroundFps / rh.backgroundFps, 1.35, 0.06);
}

TEST(Rtos, OverrunDetection)
{
    // 25 ms of work in a 20 ms period: constant deadline misses and
    // zero background progress.
    PeriodicTask mpc{"mpc", 0.02, 2.5e6};
    ScheduleResult r = simulateSchedule(mpc, 1e6, 100e6, 5.0);
    EXPECT_GT(r.periodicDeadlineMisses, 0u);
    EXPECT_EQ(r.backgroundCompletions, 0u);
    EXPECT_NEAR(r.periodicUtilization, 1.0, 1e-6);
}


TEST(Rtos, Sec53RegressionPinned)
{
    // The Â§5.3 table inputs, pinned to the values the completion-
    // based accounting rewrite must preserve exactly: when the task
    // fits its period, the backlog recurrence degenerates to the
    // historical min(exec, slice) arithmetic bit for bit.
    PeriodicTask scalar_mpc{"mpc", 0.02, 570000.0};
    ScheduleResult rs = simulateSchedule(scalar_mpc, 12.5e6, 100e6, 10.0);
    EXPECT_EQ(rs.periodicActivations, 501u);
    EXPECT_EQ(rs.periodicDeadlineMisses, 0u);
    EXPECT_EQ(rs.backgroundCompletions, 57u);
    EXPECT_NEAR(rs.periodicUtilization, 0.285, 1e-12);
    EXPECT_EQ(rs.backgroundFps, 5.7);
    EXPECT_EQ(rs.latenessMaxS, 0.0);
    EXPECT_EQ(rs.latenessAvgS, 0.0);

    PeriodicTask vector_mpc{"mpc", 0.02, 66000.0};
    ScheduleResult rv = simulateSchedule(vector_mpc, 12.5e6, 100e6, 10.0);
    EXPECT_EQ(rv.periodicActivations, 501u);
    EXPECT_EQ(rv.periodicDeadlineMisses, 0u);
    EXPECT_EQ(rv.backgroundCompletions, 77u);
    EXPECT_NEAR(rv.periodicUtilization, 0.033, 1e-12);
    EXPECT_EQ(rv.backgroundFps, 7.7);
}

TEST(Rtos, OverrunBacklogAndLateness)
{
    // 25 ms of work per 20 ms period: completion-based accounting
    // carries the 5 ms/period backlog, so activation k completes
    // (k+1)*5 ms past its deadline â lateness grows linearly instead
    // of the old per-activation exec-vs-period check that saw every
    // miss as identical.
    PeriodicTask mpc{"mpc", 0.02, 2.5e6};
    ScheduleResult r = simulateSchedule(mpc, 1e6, 100e6, 5.0);
    EXPECT_EQ(r.periodicActivations, 251u);
    EXPECT_EQ(r.periodicDeadlineMisses, 251u);
    EXPECT_NEAR(r.latenessMaxS, 251 * 0.005, 1e-9);
    EXPECT_NEAR(r.latenessAvgS, 0.005 * 252.0 / 2.0, 1e-9);
    EXPECT_LT(r.latenessAvgS, r.latenessMaxS);
    EXPECT_NEAR(r.periodicUtilization, 1.0, 1e-6);
}

} // namespace
} // namespace rtoc::soc
