/**
 * @file
 * DroNet workload-model tests: topology/MAC accounting and the
 * §5.3 cost model magnitudes.
 */

#include <gtest/gtest.h>

#include "dronet/dronet.hh"

namespace rtoc::dronet {
namespace {

TEST(Layers, TopologyShape)
{
    auto layers = dronetLayers();
    EXPECT_EQ(layers.size(), 12u);
    EXPECT_EQ(layers.front().name, "conv_stem");
    EXPECT_TRUE(layers.back().dense);
}

TEST(Layers, MacArithmetic)
{
    // 3x3 conv, 8x8x4 -> 8 channels, stride 1: 8*8*9*4*8.
    Layer l{"t", 8, 8, 4, 8, 3, 1, false};
    EXPECT_DOUBLE_EQ(l.macs(), 8.0 * 8 * 9 * 4 * 8);
    // Stride halves each spatial dim (ceil).
    Layer s{"t", 8, 8, 4, 8, 3, 2, false};
    EXPECT_DOUBLE_EQ(s.macs(), 4.0 * 4 * 9 * 4 * 8);
    // Dense layer.
    Layer d{"t", 7, 7, 128, 10, 1, 1, true};
    EXPECT_DOUBLE_EQ(d.macs(), 7.0 * 7 * 128 * 10);
}

TEST(Layers, TotalMacsInExpectedBand)
{
    // DroNet is a ~30-80 MMAC network.
    double macs = dronetTotalMacs();
    EXPECT_GT(macs, 2e7);
    EXPECT_LT(macs, 1.2e8);
}

TEST(Cost, VectorizedFasterThanScalar)
{
    double v = CnnCostModel::vectorized(256).cyclesPerFrame();
    double s = CnnCostModel::scalar().cyclesPerFrame();
    EXPECT_LT(v, s);
    EXPECT_GT(s / v, 5.0);
}

TEST(Cost, FrameCyclesMatchPaperScale)
{
    // The §5.3 arithmetic implies ~12.5M cycles per frame on the
    // 100 MHz RVV core (7.7 FPS at 96.7% CPU).
    double cycles = CnnCostModel::vectorized(256).cyclesPerFrame();
    EXPECT_GT(cycles, 8e6);
    EXPECT_LT(cycles, 18e6);
}

TEST(Cost, WiderDatapathFewerCycles)
{
    EXPECT_LT(CnnCostModel::vectorized(512).cyclesPerFrame(),
              CnnCostModel::vectorized(128).cyclesPerFrame());
}

} // namespace
} // namespace rtoc::dronet
