/**
 * @file
 * ControlSession / incremental-relinearization tests: K=0 episodes
 * pinned bit-exact to the pre-refactor runner on every plant,
 * linearizeAt FD-vs-analytic agreement at off-trim states (and model
 * exactness at the expansion point), refreshModel preserving the
 * ADMM warm start (iterations drop vs a cold re-allocate), memo and
 * calibration keys distinguishing relinearization policies, parallel
 * == serial under a 4-thread pool, the plant-generic wrench hook, and
 * the rocket mass-depletion / tilt-limit fidelity fix.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "cpu/inorder.hh"
#include "hil/control_session.hh"
#include "hil/disturbance.hh"
#include "hil/sweep.hh"
#include "hil/timing.hh"
#include "matlib/scalar_backend.hh"
#include "plant/cartpole.hh"
#include "plant/quad_plant.hh"
#include "plant/rocket.hh"
#include "plant/rover.hh"

namespace rtoc {
namespace {

std::vector<std::unique_ptr<plant::Plant>>
allPlants()
{
    std::vector<std::unique_ptr<plant::Plant>> ps;
    ps.push_back(std::make_unique<plant::QuadrotorPlant>());
    ps.push_back(std::make_unique<plant::RocketPlant>());
    ps.push_back(std::make_unique<plant::RoverPlant>());
    ps.push_back(std::make_unique<plant::CartPolePlant>());
    return ps;
}

/** Deterministic synthetic cycle model (no calibration dependency). */
hil::ControllerTiming
pinTiming()
{
    hil::ControllerTiming t;
    t.archName = "pin";
    t.mappingName = "pin";
    t.baseCycles = 200000.0;
    t.cyclesPerIter = 30000.0;
    return t;
}

hil::ControllerTiming
pinTimingWithRefresh()
{
    hil::ControllerTiming t = pinTiming();
    t.refreshBaseCycles = 50000.0;
    t.refreshCyclesPerIter = 4000.0;
    return t;
}

/** A representative off-trim (state, input) point for @p plant. */
void
offTrimPoint(const plant::Plant &plant, std::vector<double> &x,
             std::vector<double> &du)
{
    x = plant.trimState();
    du.assign(static_cast<size_t>(plant.nu()), 0.0);
    std::vector<double> hi = plant.commandMax();
    std::vector<double> trim = plant.trimCommand();
    for (int j = 0; j < plant.nx(); ++j)
        x[static_cast<size_t>(j)] += 0.21 + 0.07 * j;
    for (int j = 0; j < plant.nu(); ++j) {
        du[static_cast<size_t>(j)] =
            0.15 * (hi[static_cast<size_t>(j)] -
                    trim[static_cast<size_t>(j)]);
    }
}

// --- K=0 bit-exactness against the pre-refactor episode runner ---

struct GoldenEpisode
{
    const char *plant;
    int success;
    int waypointsReached;
    double missionTimeS;
    double rotorEnergyJ;
    double meanIterations;
};

// Captured from the pre-refactor episode runner (medium scenario 0,
// synthetic pin timing, default HilConfig) — the refactored K=0 path
// must reproduce every double bit-for-bit.
const GoldenEpisode kGolden[] = {
    {"quad-crazyflie", 0, 0, 0x1.1333333333389p+2, 0x1.b78f7a6c6e06ap+2,
     0x1.8d8699127966fp+4},
    {"rocket-lander", 1, 6, 0x1.e7fffffffff81p+2, 0x1.29406812877fdp+12,
     0x1.9p+4},
    {"rover-rover", 1, 7, 0x1.38eeeeeeeee6bp+3, 0x1.166b0b6d54d3fp+7,
     0x1.888ff6b646d22p+4},
    {"cartpole-cartpole", 1, 0, 0x1.fcccccccccc39p+2,
     0x1.12f953ad18513p+3, 0x1.517c80b30f635p+4},
};

TEST(RelinK0, BitExactGoldenEpisodesAllPlants)
{
    auto plants = allPlants();
    ASSERT_EQ(plants.size(), std::size(kGolden));
    for (size_t i = 0; i < plants.size(); ++i) {
        plant::Plant &p = *plants[i];
        ASSERT_EQ(p.name(), kGolden[i].plant);
        hil::HilConfig cfg;
        cfg.timing = pinTiming();
        ASSERT_TRUE(cfg.relin.fixedTrim());
        plant::Scenario sc = p.makeScenario(plant::Difficulty::Medium, 0);
        hil::EpisodeResult r = hil::runEpisode(p, sc, cfg);
        EXPECT_EQ(r.success, kGolden[i].success == 1) << p.name();
        EXPECT_EQ(r.waypointsReached, kGolden[i].waypointsReached)
            << p.name();
        EXPECT_EQ(r.missionTimeS, kGolden[i].missionTimeS) << p.name();
        EXPECT_EQ(r.rotorEnergyJ, kGolden[i].rotorEnergyJ) << p.name();
        EXPECT_EQ(r.iterations.summarize().mean,
                  kGolden[i].meanIterations)
            << p.name();
        // The fixed-trim path never refreshes.
        EXPECT_EQ(r.modelRefreshes, 0) << p.name();
        EXPECT_EQ(r.refreshTimeS, 0.0) << p.name();
    }
}

// --- linearizeAt: FD agreement and expansion-point exactness ---

TEST(LinearizeAt, ModelExactAtExpansionPoint)
{
    // Ac x + Bc du + cc must reproduce modelDeriv(x, du) at the
    // expansion point for every plant — including the rover, whose
    // coupling-speed floor is absorbed by the affine residual.
    for (auto &p : allPlants()) {
        std::vector<double> x, du;
        offTrimPoint(*p, x, du);
        plant::LinearModel m = p->linearizeAt(x.data(), du.data(), 0.02);
        std::vector<double> f0(static_cast<size_t>(p->nx()));
        p->modelDeriv(x.data(), du.data(), f0.data());
        for (int i = 0; i < p->nx(); ++i) {
            double fhat = m.cc.empty() ? 0.0 : m.cc[i];
            for (int j = 0; j < p->nx(); ++j)
                fhat += m.ac(i, j) * x[static_cast<size_t>(j)];
            for (int j = 0; j < p->nu(); ++j)
                fhat += m.bc(i, j) * du[static_cast<size_t>(j)];
            EXPECT_NEAR(fhat, f0[static_cast<size_t>(i)], 1e-7)
                << p->name() << " row " << i;
        }
    }
}

TEST(LinearizeAt, AnalyticMatchesFiniteDifferenceOffTrim)
{
    // The rocket's analytic off-trim Jacobian vs central FD; the
    // rover's coupling-speed floor only fires below half cruise, so
    // probe it at a faster-than-floor state where the Jacobians must
    // agree exactly.
    plant::RocketPlant rocket;
    plant::RoverPlant rover;
    struct Case
    {
        const plant::Plant *plant;
        std::vector<double> x, du;
    };
    std::vector<Case> cases;
    cases.push_back({&rocket,
                     {1.5, -0.8, 9.0, 2.0, -1.5, -3.0},
                     {0.5, -0.3, 2.0}});
    cases.push_back({&rover, {3.0, 0.4, 0.45, 1.4, 0.3}, {1.5, -1.0}});
    for (const Case &c : cases) {
        plant::LinearModel an =
            c.plant->linearizeAt(c.x.data(), c.du.data(), 0.02);
        plant::LinearModel fd =
            plant::fdLinearizeAt(*c.plant, c.x.data(), c.du.data(),
                                 0.02);
        ASSERT_FALSE(an.cd.empty());
        ASSERT_FALSE(fd.cd.empty());
        for (int i = 0; i < c.plant->nx(); ++i) {
            for (int j = 0; j < c.plant->nx(); ++j) {
                EXPECT_NEAR(an.ad(i, j), fd.ad(i, j), 1e-5)
                    << c.plant->name();
            }
            for (int j = 0; j < c.plant->nu(); ++j) {
                EXPECT_NEAR(an.bd(i, j), fd.bd(i, j), 1e-5)
                    << c.plant->name();
            }
            EXPECT_NEAR(an.cd[i], fd.cd[i], 1e-5) << c.plant->name();
        }
    }
}

TEST(LinearizeAt, QuadRelinearizationIsExactNoOp)
{
    // The quad's small-angle model is linear: linearizeAt returns the
    // trim model with no affine residual, at any state.
    plant::QuadrotorPlant quad;
    std::vector<double> x(12, 0.0), du(4, 0.0);
    x[3] = 0.2;
    x[7] = -1.1;
    du[0] = 0.05;
    plant::LinearModel at = quad.linearizeAt(x.data(), du.data(), 0.02);
    plant::LinearModel trim = quad.linearize(0.02);
    EXPECT_TRUE(at.cc.empty());
    for (int i = 0; i < 12; ++i)
        for (int j = 0; j < 12; ++j)
            EXPECT_EQ(at.ad(i, j), trim.ad(i, j));
}

// --- refreshModel: warm start preserved ---

TEST(RefreshModel, PreservesAdmmStateAndBeatsColdRestart)
{
    plant::RoverPlant rover;
    const double dt = 0.02;
    const int horizon = 10;

    std::vector<double> x = {0.5, 0.3, 0.25, 1.1, 0.1};
    std::vector<float> xf(x.begin(), x.end());

    // Warm path: solve, refresh the model in place, solve again.
    // Lift the embedded iteration cap so convergence counts are
    // meaningful (the 25-iteration default saturates both paths).
    tinympc::Workspace ws = rover.buildWorkspace(dt, horizon);
    ws.settings.maxIters = 500;
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    tinympc::Solver solver(ws, backend, tinympc::MappingStyle::Library);
    ws.setInitialState(xf.data());
    ws.setReferenceAll(rover.reference({2.0, 0.5, 0.0}));
    tinympc::SolveResult first = solver.solve();
    ASSERT_GT(first.iterations, 0);

    std::vector<double> du(2, 0.0);
    plant::LinearModel m = rover.linearizeAt(x.data(), du.data(), dt);
    plant::Weights w = rover.mpcWeights();
    numerics::LqrCache cache = numerics::solveDare(
        m.ad, m.bd, numerics::DMatrix::diag(w.qDiag),
        numerics::DMatrix::diag(w.rDiag), w.rho);

    // Snapshot ADMM state; refreshModel must not touch it.
    std::vector<float> y_before(ws.y.data(),
                                ws.y.data() + (horizon - 1) * 2);
    std::vector<float> u_before(ws.u.data(),
                                ws.u.data() + (horizon - 1) * 2);
    ws.refreshModel(m.ad, m.bd, cache, m.cd);
    EXPECT_TRUE(ws.hasAffine);
    for (size_t i = 0; i < y_before.size(); ++i) {
        EXPECT_EQ(ws.y.data()[i], y_before[i]);
        EXPECT_EQ(ws.u.data()[i], u_before[i]);
    }

    ws.setInitialState(xf.data());
    tinympc::SolveResult warm = solver.solve();

    // Cold path: fresh workspace loaded with the same refreshed
    // model, ADMM state zeroed.
    tinympc::Workspace cold_ws = rover.buildWorkspace(dt, horizon);
    cold_ws.settings.maxIters = 500;
    cold_ws.refreshModel(m.ad, m.bd, cache, m.cd);
    cold_ws.coldStart();
    matlib::ScalarBackend cold_backend(matlib::ScalarFlavor::Optimized);
    tinympc::Solver cold_solver(cold_ws, cold_backend,
                                tinympc::MappingStyle::Library);
    cold_ws.setInitialState(xf.data());
    cold_ws.setReferenceAll(rover.reference({2.0, 0.5, 0.0}));
    tinympc::SolveResult cold = cold_solver.solve();

    EXPECT_LT(warm.iterations, cold.iterations)
        << "warm-started solve after refreshModel should converge "
           "faster than a cold re-allocate";
}

TEST(RefreshModel, TrimRefreshHasNoAffine)
{
    plant::RoverPlant rover;
    tinympc::Workspace ws = rover.buildWorkspace(0.02, 10);
    EXPECT_FALSE(ws.hasAffine);
    plant::LinearModel m = rover.linearize(0.02);
    plant::Weights w = rover.mpcWeights();
    numerics::LqrCache cache = numerics::solveDare(
        m.ad, m.bd, numerics::DMatrix::diag(w.qDiag),
        numerics::DMatrix::diag(w.rDiag), w.rho);
    ws.refreshModel(m.ad, m.bd, cache);
    EXPECT_FALSE(ws.hasAffine);
}

// --- warm-started DARE ---

TEST(DareWarmStart, ConvergesFasterFromNearbyPinf)
{
    plant::RoverPlant rover;
    plant::Weights w = rover.mpcWeights();
    numerics::DMatrix q = numerics::DMatrix::diag(w.qDiag);
    numerics::DMatrix r = numerics::DMatrix::diag(w.rDiag);
    plant::LinearModel trim = rover.linearize(0.02);
    numerics::LqrCache base =
        numerics::solveDare(trim.ad, trim.bd, q, r, w.rho);

    std::vector<double> x = {0.0, 0.0, 0.3, 1.2, 0.2};
    std::vector<double> du(2, 0.0);
    plant::LinearModel m = rover.linearizeAt(x.data(), du.data(), 0.02);
    auto cold = numerics::trySolveDare(m.ad, m.bd, q, r, w.rho,
                                       nullptr, 1e-6, 500);
    auto warm = numerics::trySolveDare(m.ad, m.bd, q, r, w.rho,
                                       &base.pinf, 1e-6, 500);
    ASSERT_TRUE(cold.has_value());
    ASSERT_TRUE(warm.has_value());
    EXPECT_LT(warm->iterations, cold->iterations);
}

// --- sessions and policies ---

TEST(ControlSession, PolicyTriggersRefreshesAndCosts)
{
    plant::RoverPlant rover;
    hil::HilConfig cfg;
    cfg.timing = pinTimingWithRefresh();
    cfg.relin.everyK = 5;
    plant::Scenario sc =
        rover.makeScenario(plant::Difficulty::Medium, 0);
    hil::EpisodeResult r = hil::runEpisode(rover, sc, cfg);
    EXPECT_GT(r.modelRefreshes, 0);
    EXPECT_GT(r.refreshTimeS, 0.0);

    // Threshold-only policy also refreshes once the state drifts.
    plant::RoverPlant rover2;
    hil::HilConfig cfg2;
    cfg2.timing = pinTimingWithRefresh();
    cfg2.relin.stateDeltaThreshold = 0.25;
    EXPECT_FALSE(cfg2.relin.fixedTrim());
    hil::EpisodeResult r2 = hil::runEpisode(rover2, sc, cfg2);
    EXPECT_GT(r2.modelRefreshes, 0);
}

TEST(ControlSession, CellMemoDistinguishesPolicies)
{
    plant::CartPolePlant proto;
    hil::HilConfig k0;
    k0.timing = pinTiming();
    hil::HilConfig k5 = k0;
    k5.timing = pinTimingWithRefresh();
    k5.relin.everyK = 5;

    hil::CellMemoStats before = hil::cellMemoStats();
    hil::SweepCell a = hil::runCell(proto, plant::Difficulty::Easy, 1, k0);
    hil::SweepCell b = hil::runCell(proto, plant::Difficulty::Easy, 1, k5);
    hil::CellMemoStats after = hil::cellMemoStats();
    // Distinct policies must be distinct cells (two misses)...
    EXPECT_EQ(after.misses, before.misses + 2);
    EXPECT_GT(b.avgRefreshes, 0.0);
    EXPECT_EQ(a.avgRefreshes, 0.0);
    // ...and a repeat of either policy is served from the memo.
    hil::SweepCell b2 =
        hil::runCell(proto, plant::Difficulty::Easy, 1, k5);
    hil::CellMemoStats again = hil::cellMemoStats();
    EXPECT_EQ(again.misses, after.misses);
    EXPECT_EQ(again.hits, after.hits + 1);
    EXPECT_EQ(b2.avgTrackingErrM, b.avgTrackingErrM);
}

TEST(ControlSession, CalibrationDistinguishesRefreshAwareness)
{
    // Refresh-aware calibration fits a nonzero refresh cycle model;
    // the historical fit leaves it zero — and the two never share a
    // payload (distinct disk keys, distinct memo entries).
    cpu::InOrderCore core(cpu::InOrderConfig::shuttle());
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    plant::CartPolePlant plant;
    hil::ControllerTiming plain = hil::calibrateTiming(
        core, backend, tinympc::MappingStyle::Library, plant, 0.02, 10,
        nullptr, false);
    hil::ControllerTiming aware = hil::calibrateTiming(
        core, backend, tinympc::MappingStyle::Library, plant, 0.02, 10,
        nullptr, true);
    EXPECT_EQ(plain.refreshCyclesPerIter, 0.0);
    EXPECT_GT(aware.refreshCyclesPerIter, 0.0);
    EXPECT_GT(aware.refreshCycles(8), aware.refreshCycles(2));
    // Solve fit identical across the two.
    EXPECT_EQ(plain.baseCycles, aware.baseCycles);
    EXPECT_EQ(plain.cyclesPerIter, aware.cyclesPerIter);

    // Payload round trip carries the refresh fields bit-exactly.
    auto decoded = hil::decodeTiming(hil::encodeTiming(aware));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->refreshBaseCycles, aware.refreshBaseCycles);
    EXPECT_EQ(decoded->refreshCyclesPerIter, aware.refreshCyclesPerIter);
}

TEST(ControlSession, ParallelEqualsSerialWithRelin)
{
    plant::RoverPlant proto;
    hil::HilConfig cfg;
    cfg.timing = pinTimingWithRefresh();
    cfg.relin.everyK = 5;

    ThreadPool serial_pool(1);
    ThreadPool quad_pool(4);
    hil::SweepRunner serial(serial_pool);
    hil::SweepRunner parallel(quad_pool);
    auto a = serial.runEpisodes(proto, plant::Difficulty::Medium, 4, cfg);
    auto b = parallel.runEpisodes(proto, plant::Difficulty::Medium, 4,
                                  cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].missionTimeS, b[i].missionTimeS);
        EXPECT_EQ(a[i].rotorEnergyJ, b[i].rotorEnergyJ);
        EXPECT_EQ(a[i].trackingErrM, b[i].trackingErrM);
        EXPECT_EQ(a[i].modelRefreshes, b[i].modelRefreshes);
        EXPECT_EQ(a[i].refreshTimeS, b[i].refreshTimeS);
        EXPECT_EQ(a[i].success, b[i].success);
    }
}

// --- wrench hook ---

TEST(Wrench, AllPlantsSupportAndZeroWrenchIsExactNoOp)
{
    for (auto &p : allPlants()) {
        EXPECT_TRUE(p->supportsWrench()) << p->name();
        std::unique_ptr<plant::Plant> a = p->clone();
        std::unique_ptr<plant::Plant> b = p->clone();
        a->reset();
        b->reset();
        b->applyWrench(plant::Wrench()); // explicit zero
        std::vector<double> cmd = a->trimCommand();
        for (int s = 0; s < 48; ++s) {
            a->step(cmd, 1.0 / 240.0);
            b->step(cmd, 1.0 / 240.0);
        }
        std::vector<float> xa(static_cast<size_t>(a->nx()));
        std::vector<float> xb(static_cast<size_t>(b->nx()));
        a->packState(xa.data());
        b->packState(xb.data());
        EXPECT_EQ(xa, xb) << p->name();
    }
}

TEST(Wrench, NonzeroWrenchPerturbsEveryPlant)
{
    for (auto &p : allPlants()) {
        std::unique_ptr<plant::Plant> a = p->clone();
        std::unique_ptr<plant::Plant> b = p->clone();
        a->reset();
        b->reset();
        plant::Wrench w;
        w.forceN = {0.8, 0.5, 0.3};
        w.torqueNm = {0.0, 0.002, 0.002};
        b->applyWrench(w);
        std::vector<double> cmd = a->trimCommand();
        for (int s = 0; s < 48; ++s) {
            a->step(cmd, 1.0 / 240.0);
            b->step(cmd, 1.0 / 240.0);
        }
        std::vector<float> xa(static_cast<size_t>(a->nx()));
        std::vector<float> xb(static_cast<size_t>(b->nx()));
        a->packState(xa.data());
        b->packState(xb.data());
        EXPECT_NE(xa, xb) << p->name();
        // reset() clears the held wrench.
        b->reset();
        std::vector<float> x0b(static_cast<size_t>(b->nx()));
        b->step(cmd, 1.0 / 240.0);
        b->packState(x0b.data());
        a->reset();
        a->step(cmd, 1.0 / 240.0);
        std::vector<float> x0a(static_cast<size_t>(a->nx()));
        a->packState(x0a.data());
        EXPECT_EQ(x0a, x0b) << p->name();
    }
}

TEST(Wrench, GenericDisturbTrialRunsOnGroundPlants)
{
    plant::CartPolePlant cartpole;
    hil::HilConfig cfg;
    cfg.timing = pinTiming();
    hil::DisturbSpec spec;
    spec.kind = hil::DisturbKind::StepForce;
    spec.axis = 0;
    spec.magnitude = 1.0;
    hil::DisturbResult r = hil::runDisturbTrial(cartpole, spec, cfg);
    EXPECT_TRUE(r.recovered);
    EXPECT_GT(r.maxDeviationM, 0.0);
}

// --- rocket fidelity fix ---

TEST(RocketFidelity, DefaultLanderDoesNotDeplete)
{
    plant::RocketPlant rocket;
    rocket.reset();
    double m0 = rocket.massKg();
    std::vector<double> cmd = rocket.trimCommand();
    for (int s = 0; s < 240; ++s)
        rocket.step(cmd, 1.0 / 240.0);
    EXPECT_EQ(rocket.massKg(), m0);
    EXPECT_EQ(rocket.trimCommand()[2], m0 * 9.81);
}

TEST(RocketFidelity, FueledLanderDepletesAndTrimTracksMass)
{
    plant::RocketPlant rocket(plant::RocketParams::fueled());
    rocket.reset();
    double m0 = rocket.massKg();
    double trim0 = rocket.trimCommand()[2];
    std::vector<double> cmd = rocket.trimCommand();
    for (int s = 0; s < 480; ++s)
        rocket.step(cmd, 1.0 / 240.0); // 2 s of hover burn
    EXPECT_LT(rocket.massKg(), m0);
    // Burn ~= thrust * t / ve: 2 s at ~14.7 N over 900 m/s.
    double expected_burn = trim0 * 2.0 / 900.0;
    EXPECT_NEAR(m0 - rocket.massKg(), expected_burn,
                0.2 * expected_burn);
    // The trim command follows the lighter vehicle.
    EXPECT_LT(rocket.trimCommand()[2], trim0);
    EXPECT_NEAR(rocket.trimCommand()[2], rocket.massKg() * 9.81, 1e-9);
    // And the model linearization uses the current mass: the input
    // gain 1/m grows as the tank drains.
    plant::LinearModel m = rocket.linearize(0.02);
    EXPECT_GT(m.bc(3, 0), 1.0 / m0);
}

TEST(RocketFidelity, TiltLimitCapsLateralThrust)
{
    plant::RocketParams params = plant::RocketParams::fueled();
    plant::RocketPlant rocket(params);
    rocket.reset();
    // Full lateral command with a weak vertical: the gimbal cap
    // (0.35 x Tz) binds well below the legacy 8 N box.
    std::vector<double> cmd = {8.0, 0.0, 6.0};
    for (int s = 0; s < 480; ++s)
        rocket.step(cmd, 1.0 / 240.0);
    // The lagged thrust converges toward the clamped target.
    double tilt_cap = params.maxTiltRatio * 6.0;
    EXPECT_LT(rocket.trimCommand()[0], 1e9); // sanity
    // MPC input box also honours the gimbal authority.
    EXPECT_NEAR(rocket.commandMax()[0],
                params.maxTiltRatio * rocket.massKg() * 9.81, 1e-9);
    EXPECT_GT(tilt_cap, 0.0);
}

TEST(RocketFidelity, ExhaustedTankStarvesEngine)
{
    plant::RocketParams params = plant::RocketParams::fueled();
    params.propellantKg = 0.01; // nearly dry
    plant::RocketPlant rocket(params);
    rocket.reset();
    std::vector<double> cmd = {0.0, 0.0, params.maxThrustN};
    for (int s = 0; s < 2400; ++s)
        rocket.step(cmd, 1.0 / 240.0);
    EXPECT_EQ(rocket.propellantKg(), 0.0);
    // Engine starved: the vehicle is in free fall and drops fast.
    EXPECT_TRUE(rocket.crashed());
}

} // namespace
} // namespace rtoc
