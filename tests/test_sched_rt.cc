/**
 * @file
 * Shared-SoC scheduler tests: lazy sched.* and fault.* counter interning
 * (the byte-identity contract for scheduler-free processes), the
 * anytime solver contract (full budget bit-identical, budgets cap
 * iterations), the AnytimeGovernor ladder and its recovery
 * hysteresis, FaultTrace parsing round trips, deterministic ladder
 * engagement under an injected compute stall, parallel == serial
 * scheduler sweeps under an explicit 4-thread pool, and agreement
 * between RtScheduler's fixed-cost task path and the closed-form
 * soc::simulateSchedule model.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hh"
#include "hil/episode.hh"
#include "hil/sweep.hh"
#include "hil/timing.hh"
#include "matlib/scalar_backend.hh"
#include "obs/registry.hh"
#include "plant/registry.hh"
#include "sched/anytime.hh"
#include "sched/fault.hh"
#include "sched/scheduler.hh"
#include "soc/rtos.hh"
#include "tinympc/solver.hh"

namespace rtoc {
namespace {

bool
hasCounterWithPrefix(const obs::Snapshot &s, const std::string &prefix)
{
    for (const auto &kv : s.values()) {
        if (kv.first.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

/** Registry easy clean spec for a plant-name prefix. */
plant::ScenarioSpec
easySpec(const std::string &prefix)
{
    for (plant::ScenarioSpec &s :
         plant::ScenarioRegistry::global().specs()) {
        if (s.plantName.rfind(prefix, 0) == 0 &&
            s.difficulty == plant::Difficulty::Easy)
            return s;
    }
    ADD_FAILURE() << "no registry spec for prefix " << prefix;
    return {};
}

sched::TaskSpec
liveTask(const char *prefix, double rate_hz, int priority)
{
    plant::ScenarioSpec spec = easySpec(prefix);
    sched::TaskSpec t;
    t.name = spec.plantName;
    t.priority = priority;
    t.periodS = 1.0 / rate_hz;
    t.plant = spec.prototype;
    t.scenario = spec.makeScenario(0);
    t.timing = hil::namedControllerTiming("scalar", *spec.prototype,
                                          t.periodS, t.horizon);
    return t;
}

void
expectTaskStatsEq(const sched::TaskStats &a, const sched::TaskStats &b)
{
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.releases, b.releases);
    EXPECT_EQ(a.solves, b.solves);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.drops, b.drops);
    EXPECT_EQ(a.missStreakMax, b.missStreakMax);
    EXPECT_EQ(a.latenessS.size(), b.latenessS.size());
    EXPECT_EQ(a.busyS, b.busyS);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.avgIters, b.avgIters);
    EXPECT_EQ(a.reducedIterTicks, b.reducedIterTicks);
    EXPECT_EQ(a.skippedRelinTicks, b.skippedRelinTicks);
    EXPECT_EQ(a.holdTicks, b.holdTicks);
    EXPECT_EQ(a.degradeTransitions, b.degradeTransitions);
    EXPECT_EQ(a.spikedSolves, b.spikedSolves);
    EXPECT_EQ(a.stalledSolves, b.stalledSolves);
    EXPECT_EQ(a.sensorDropTicks, b.sensorDropTicks);
    EXPECT_EQ(a.crashed, b.crashed);
    EXPECT_EQ(a.success, b.success);
    EXPECT_EQ(a.waypointsReached, b.waypointsReached);
    EXPECT_EQ(a.trackingErrM, b.trackingErrM);
    EXPECT_EQ(a.maxTrackingErrM, b.maxTrackingErrM);
}

// ---------------------------------------------------------------------
// Lazy interning. This test MUST run first in the binary (gtest runs
// suites in definition order): it asserts the process-wide registry
// has no sched.*/fault.* names until the scheduler actually engages.
// ---------------------------------------------------------------------

TEST(SchedCountersFirst, InternOnlyWhenEngaged)
{
    obs::Registry &reg = obs::Registry::global();

    // Phase a: a plain single-session episode must not intern either
    // family — the pre-scheduler pipeline's metrics stay byte-stable.
    {
        plant::ScenarioSpec spec = easySpec("quad");
        std::unique_ptr<plant::Plant> p = spec.makePlant();
        plant::Scenario sc = spec.makeScenario(0);
        hil::HilConfig cfg;
        hil::EpisodeResult r = hil::runEpisode(*p, sc, cfg);
        EXPECT_GT(r.iterations.size(), 0u);
    }
    obs::Snapshot after_episode = reg.snapshot();
    EXPECT_FALSE(hasCounterWithPrefix(after_episode, "sched."));
    EXPECT_FALSE(hasCounterWithPrefix(after_episode, "fault."));

    // Phase b: a fault-free scheduler run interns sched.* but must
    // keep fault.* out of the registry.
    {
        sched::SchedulerConfig cfg;
        cfg.horizonS = 0.2;
        cfg.useEnvFaults = false;
        sched::RtScheduler rs(cfg);
        rs.addTask(liveTask("quad", 50.0, 1));
        sched::ScheduleRunResult r = rs.run();
        EXPECT_GT(r.tasks[0].solves, 0u);
    }
    obs::Snapshot after_sched = reg.snapshot();
    EXPECT_TRUE(hasCounterWithPrefix(after_sched, "sched."));
    EXPECT_GT(after_sched.get("sched.runs"), 0u);
    EXPECT_GT(after_sched.get("sched.solves"), 0u);
    EXPECT_FALSE(hasCounterWithPrefix(after_sched, "fault."));

    // Phase c: the first applied fault interns fault.*.
    {
        sched::SchedulerConfig cfg;
        cfg.horizonS = 0.2;
        cfg.useEnvFaults = false;
        sched::FaultEvent spike;
        spike.kind = sched::FaultKind::CycleSpike;
        spike.t0 = 0.0;
        spike.lenS = 1.0;
        spike.factor = 2.0;
        cfg.faults.events.push_back(spike);
        sched::RtScheduler rs(cfg);
        rs.addTask(liveTask("quad", 50.0, 1));
        sched::ScheduleRunResult r = rs.run();
        EXPECT_GT(r.tasks[0].spikedSolves, 0u);
    }
    obs::Snapshot after_fault = reg.snapshot();
    EXPECT_TRUE(hasCounterWithPrefix(after_fault, "fault."));
    EXPECT_GT(after_fault.get("fault.spiked_solves"), 0u);
}

// ---------------------------------------------------------------------
// Anytime solver contract.
// ---------------------------------------------------------------------

struct SolveCapture
{
    tinympc::SolveResult res;
    std::vector<float> u, x;
};

SolveCapture
solveWithBudget(const std::string &plant_name, int budget)
{
    std::unique_ptr<plant::Plant> plant =
        plant::ScenarioRegistry::global().makePlant(plant_name);
    EXPECT_NE(plant, nullptr) << plant_name;
    plant->reset();
    tinympc::Workspace ws = plant->buildWorkspace(0.02, 10);
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    tinympc::Solver solver(ws, backend, tinympc::MappingStyle::Library);
    std::vector<float> x0(static_cast<size_t>(plant->nx()), 0.0f);
    plant->packState(x0.data());
    ws.setInitialState(x0.data());
    ws.setReferenceAll(plant->reference(plant->home()));

    SolveCapture c;
    c.res = solver.solve(budget);
    size_t un = static_cast<size_t>(ws.u.rows()) *
                static_cast<size_t>(ws.u.cols());
    size_t xn = static_cast<size_t>(ws.x.rows()) *
                static_cast<size_t>(ws.x.cols());
    c.u.assign(ws.u.data(), ws.u.data() + un);
    c.x.assign(ws.x.data(), ws.x.data() + xn);
    return c;
}

TEST(AnytimeSolver, FullBudgetBitIdenticalAllPlants)
{
    for (const std::string &name :
         plant::ScenarioRegistry::global().plantNames()) {
        SolveCapture unbudgeted = solveWithBudget(name, 0);
        SolveCapture full = solveWithBudget(name, 25);
        SolveCapture over = solveWithBudget(name, 1000);

        // Budget == maxIters and budget > maxIters are both the
        // historical unbudgeted path, bit for bit.
        EXPECT_EQ(unbudgeted.res.iterations, full.res.iterations)
            << name;
        EXPECT_EQ(unbudgeted.res.converged, full.res.converged) << name;
        EXPECT_EQ(unbudgeted.u, full.u) << name;
        EXPECT_EQ(unbudgeted.x, full.x) << name;
        EXPECT_EQ(unbudgeted.u, over.u) << name;
        EXPECT_EQ(unbudgeted.x, over.x) << name;
    }
}

TEST(AnytimeSolver, BudgetCapsIterations)
{
    for (const std::string &name :
         plant::ScenarioRegistry::global().plantNames()) {
        SolveCapture c = solveWithBudget(name, 3);
        // checkTermination=5 never fires inside 3 iterations, so the
        // budget is spent exactly.
        EXPECT_EQ(c.res.iterations, 3) << name;
        EXPECT_FALSE(c.res.converged) << name;
    }
}

// ---------------------------------------------------------------------
// AnytimeGovernor ladder + hysteresis.
// ---------------------------------------------------------------------

TEST(Governor, LadderEngagesBySlack)
{
    sched::AnytimeConfig cfg;
    cfg.minIters = 4;
    cfg.recoveryTicks = 2;
    cfg.slackSafety = 1.0;

    const double base = 1000.0, pi = 100.0, refresh = 5000.0;
    const int nominal = 25;

    {
        sched::AnytimeGovernor g(cfg);
        sched::AnytimeDecision d =
            g.decide(1e9, base, pi, nominal, false, refresh);
        EXPECT_EQ(d.level, sched::DegradeLevel::Full);
        EXPECT_EQ(d.iterBudget, nominal);
        EXPECT_FALSE(d.skipRefresh);
        EXPECT_EQ(g.transitions(), 0);
    }
    {
        // Slack fits exactly 10 iterations -> ReducedIters.
        sched::AnytimeGovernor g(cfg);
        sched::AnytimeDecision d = g.decide(base + 10.0 * pi, base, pi,
                                            nominal, false, refresh);
        EXPECT_EQ(d.level, sched::DegradeLevel::ReducedIters);
        EXPECT_EQ(d.iterBudget, 10);
        EXPECT_EQ(g.transitions(), 1);
    }
    {
        // Refresh due and unaffordable, solve still fits -> SkipRelin.
        sched::AnytimeGovernor g(cfg);
        sched::AnytimeDecision d = g.decide(base + 5.0 * pi, base, pi,
                                            nominal, true, refresh);
        EXPECT_EQ(d.level, sched::DegradeLevel::SkipRelin);
        EXPECT_EQ(d.iterBudget, 5);
        EXPECT_TRUE(d.skipRefresh);
    }
    {
        // Below minIters even without the refresh -> Hold.
        sched::AnytimeGovernor g(cfg);
        sched::AnytimeDecision d = g.decide(base + 2.0 * pi, base, pi,
                                            nominal, false, refresh);
        EXPECT_EQ(d.level, sched::DegradeLevel::Hold);
        EXPECT_EQ(d.iterBudget, 0);
        EXPECT_TRUE(d.skipRefresh);
    }
}

TEST(Governor, RecoveryHysteresisStepsOneLevel)
{
    sched::AnytimeConfig cfg;
    cfg.minIters = 4;
    cfg.recoveryTicks = 2;
    cfg.slackSafety = 1.0;
    sched::AnytimeGovernor g(cfg);

    const double base = 1000.0, pi = 100.0;
    // Degrade straight to Hold.
    g.decide(0.0, base, pi, 25, false, 0.0);
    EXPECT_EQ(g.level(), sched::DegradeLevel::Hold);
    EXPECT_EQ(g.transitions(), 1);

    // Recovery takes recoveryTicks healthy ticks per rung: Hold ->
    // SkipRelin -> ReducedIters -> Full, never skipping a level even
    // though the slack is instantly generous again.
    g.decide(1e9, base, pi, 25, false, 0.0);
    EXPECT_EQ(g.level(), sched::DegradeLevel::Hold);
    g.decide(1e9, base, pi, 25, false, 0.0);
    EXPECT_EQ(g.level(), sched::DegradeLevel::SkipRelin);
    g.decide(1e9, base, pi, 25, false, 0.0);
    EXPECT_EQ(g.level(), sched::DegradeLevel::SkipRelin);
    g.decide(1e9, base, pi, 25, false, 0.0);
    EXPECT_EQ(g.level(), sched::DegradeLevel::ReducedIters);
    g.decide(1e9, base, pi, 25, false, 0.0);
    g.decide(1e9, base, pi, 25, false, 0.0);
    EXPECT_EQ(g.level(), sched::DegradeLevel::Full);
    EXPECT_EQ(g.transitions(), 4);

    // A fresh overload mid-recovery degrades immediately again.
    sched::AnytimeDecision d = g.decide(0.0, base, pi, 25, false, 0.0);
    EXPECT_EQ(d.level, sched::DegradeLevel::Hold);
}

TEST(Governor, DisabledIsFixedIterationBaseline)
{
    sched::AnytimeConfig cfg;
    cfg.enabled = false;
    sched::AnytimeGovernor g(cfg);
    sched::AnytimeDecision d = g.decide(0.0, 1e9, 1e9, 25, true, 1e9);
    EXPECT_EQ(d.level, sched::DegradeLevel::Full);
    EXPECT_EQ(d.iterBudget, 25);
    EXPECT_FALSE(d.skipRefresh);
    EXPECT_EQ(g.transitions(), 0);
}

// ---------------------------------------------------------------------
// FaultTrace parsing.
// ---------------------------------------------------------------------

TEST(FaultTrace, ParseRoundTrip)
{
    const std::string spec =
        "spike@2+1x2.5;task=quad:drop@3.5+0.1;stall@4+0.5c50000";
    std::optional<sched::FaultTrace> t = sched::FaultTrace::parse(spec);
    ASSERT_TRUE(t.has_value());
    ASSERT_EQ(t->events.size(), 3u);

    EXPECT_EQ(t->events[0].kind, sched::FaultKind::CycleSpike);
    EXPECT_EQ(t->events[0].t0, 2.0);
    EXPECT_EQ(t->events[0].lenS, 1.0);
    EXPECT_EQ(t->events[0].factor, 2.5);
    EXPECT_TRUE(t->events[0].task.empty());

    EXPECT_EQ(t->events[1].kind, sched::FaultKind::SensorDrop);
    EXPECT_EQ(t->events[1].task, "quad");
    EXPECT_EQ(t->events[1].t0, 3.5);

    EXPECT_EQ(t->events[2].kind, sched::FaultKind::ComputeStall);
    EXPECT_EQ(t->events[2].cycles, 50000.0);

    // spec() emits canonical text that parses back to the same trace.
    EXPECT_EQ(t->spec(), spec);
    std::optional<sched::FaultTrace> again =
        sched::FaultTrace::parse(t->spec());
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->spec(), spec);
}

TEST(FaultTrace, QueriesRespectWindowAndTaskScope)
{
    sched::FaultTrace t =
        *sched::FaultTrace::parse("task=quad:spike@1+2x3;stall@0+1c100");
    // Window is [t0, t0+len).
    EXPECT_EQ(t.spikeFactor("quad", 0.999), 1.0);
    EXPECT_EQ(t.spikeFactor("quad", 1.0), 3.0);
    EXPECT_EQ(t.spikeFactor("quad", 2.999), 3.0);
    EXPECT_EQ(t.spikeFactor("quad", 3.0), 1.0);
    // Task-scoped events miss other tasks; unscoped hit everything.
    EXPECT_EQ(t.spikeFactor("rover", 1.5), 1.0);
    EXPECT_EQ(t.stallCycles("rover", 0.5), 100.0);
    EXPECT_FALSE(t.sensorDropped("quad", 1.5));
}

TEST(FaultTrace, MalformedSpecsRejected)
{
    EXPECT_FALSE(sched::FaultTrace::parse("spike@1").has_value());
    EXPECT_FALSE(sched::FaultTrace::parse("spike@1+1").has_value());
    EXPECT_FALSE(sched::FaultTrace::parse("wobble@1+1x2").has_value());
    EXPECT_FALSE(sched::FaultTrace::parse("task=:spike@1+1x2").has_value());
    EXPECT_FALSE(sched::FaultTrace::parse("drop@1+0").has_value());
    EXPECT_FALSE(sched::FaultTrace::parse("stall@1+1c0").has_value());
    EXPECT_FALSE(sched::FaultTrace::parse("spike@-1+1x2").has_value());
    EXPECT_FALSE(sched::FaultTrace::parse("drop@1+1trailing").has_value());

    // Empty spec is the fault-free trace, not an error.
    std::optional<sched::FaultTrace> empty = sched::FaultTrace::parse("");
    ASSERT_TRUE(empty.has_value());
    EXPECT_TRUE(empty->empty());
}

// ---------------------------------------------------------------------
// Scheduler behaviour.
// ---------------------------------------------------------------------

sched::ScheduleRunResult
runStallStudy(bool anytime)
{
    sched::SchedulerConfig cfg;
    cfg.useEnvFaults = false;
    cfg.horizonS = 2.0;
    sched::TaskSpec quad = liveTask("quad", 50.0, 1);
    quad.checkTerminationEvery = quad.maxIters + 1; // fixed-cost ticks
    quad.anytime.enabled = anytime;
    // Core sized to 50% nominal utilization for the fixed bound.
    cfg.freqHz = 50.0 * quad.timing.solveCycles(quad.maxIters) / 0.5;
    // A stall worth ~55% of the period on every solve in [0.5, 1.0):
    // nominal no longer fits, a reduced budget does.
    sched::FaultEvent stall;
    stall.kind = sched::FaultKind::ComputeStall;
    stall.t0 = 0.5;
    stall.lenS = 0.5;
    stall.cycles = 0.55 * 0.02 * cfg.freqHz;
    cfg.faults.events.push_back(stall);
    sched::RtScheduler rs(cfg);
    rs.addTask(std::move(quad));
    return rs.run();
}

TEST(SchedRt, StallEngagesLadderDeterministically)
{
    sched::ScheduleRunResult a = runStallStudy(true);
    const sched::TaskStats &t = a.tasks[0];
    EXPECT_GT(t.stalledSolves, 0u);
    // The ladder sheds load during the stall window and absorbs it.
    EXPECT_GT(t.reducedIterTicks + t.holdTicks, 0u);
    EXPECT_EQ(t.misses, 0u);
    EXPECT_GT(t.degradeTransitions, 0);
    EXPECT_FALSE(t.crashed);

    // Bit-identical on a re-run: seeded jitter, deterministic faults.
    sched::ScheduleRunResult b = runStallStudy(true);
    ASSERT_EQ(a.tasks.size(), b.tasks.size());
    expectTaskStatsEq(a.tasks[0], b.tasks[0]);
    EXPECT_EQ(a.utilization, b.utilization);
    EXPECT_EQ(a.ctxSwitches, b.ctxSwitches);

    // The fixed-iteration baseline misses under the same trace — the
    // ladder is what absorbs the stall.
    sched::ScheduleRunResult base = runStallStudy(false);
    EXPECT_GT(base.tasks[0].misses, 0u);
    EXPECT_GT(base.maxMissStreak(), a.maxMissStreak());
}

sched::ScheduleRunResult
runPairAt(double freq_hz)
{
    sched::SchedulerConfig cfg;
    cfg.useEnvFaults = false;
    cfg.freqHz = freq_hz;
    cfg.horizonS = 1.0;
    sched::FaultEvent spike;
    spike.kind = sched::FaultKind::CycleSpike;
    spike.t0 = 0.2;
    spike.lenS = 0.3;
    spike.factor = 2.0;
    cfg.faults.events.push_back(spike);
    sched::RtScheduler rs(cfg);
    sched::TaskSpec quad = liveTask("quad", 50.0, 2);
    quad.releaseJitterFrac = 0.05;
    rs.addTask(std::move(quad));
    sched::TaskSpec rover = liveTask("rover", 25.0, 1);
    rover.releaseJitterFrac = 0.05;
    rs.addTask(std::move(rover));
    return rs.run();
}

TEST(SchedRt, ParallelSweepMatchesSerial)
{
    const std::vector<double> freqs = {40e6, 60e6, 80e6, 100e6};

    std::vector<sched::ScheduleRunResult> serial;
    for (double f : freqs)
        serial.push_back(runPairAt(f));

    ThreadPool pool(4);
    hil::SweepRunner runner(pool);
    std::vector<sched::ScheduleRunResult> parallel =
        runner.map<sched::ScheduleRunResult>(
            freqs.size(), [&](size_t i) { return runPairAt(freqs[i]); });

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        ASSERT_EQ(serial[i].tasks.size(), parallel[i].tasks.size());
        for (size_t j = 0; j < serial[i].tasks.size(); ++j)
            expectTaskStatsEq(serial[i].tasks[j], parallel[i].tasks[j]);
        EXPECT_EQ(serial[i].utilization, parallel[i].utilization);
        EXPECT_EQ(serial[i].ctxSwitches, parallel[i].ctxSwitches);
    }
}

TEST(SchedRt, FixedTaskAgreesWithClosedFormModel)
{
    // The §5.3 shapes: both tasks fit their period (57% / 6.6% of it).
    for (double wcet : {570000.0, 66000.0}) {
        soc::PeriodicTask pt{"mpc", 0.02, wcet};
        soc::ScheduleResult closed =
            soc::simulateSchedule(pt, 12.5e6, 100e6, 10.0);

        sched::SchedulerConfig cfg;
        cfg.useEnvFaults = false;
        cfg.freqHz = 100e6;
        cfg.horizonS = 10.0;
        sched::RtScheduler rs(cfg);
        sched::TaskSpec mpc;
        mpc.name = "mpc";
        mpc.periodS = 0.02;
        mpc.wcetCycles = wcet;
        rs.addTask(std::move(mpc));
        rs.addBackground({"dronet", 12.5e6});
        sched::ScheduleRunResult r = rs.run();

        EXPECT_EQ(r.tasks[0].releases, closed.periodicActivations);
        EXPECT_EQ(r.tasks[0].misses, closed.periodicDeadlineMisses);
        EXPECT_EQ(r.background[0].completions,
                  closed.backgroundCompletions);
        EXPECT_EQ(r.background[0].fps, closed.backgroundFps);
        EXPECT_NEAR(r.tasks[0].utilization, closed.periodicUtilization,
                    1e-9);
    }

    // Constant overrun: every activation misses in both models.
    {
        soc::PeriodicTask pt{"mpc", 0.02, 2.5e6};
        soc::ScheduleResult closed =
            soc::simulateSchedule(pt, 1e6, 100e6, 5.0);
        EXPECT_EQ(closed.periodicDeadlineMisses,
                  closed.periodicActivations);

        sched::SchedulerConfig cfg;
        cfg.useEnvFaults = false;
        cfg.freqHz = 100e6;
        cfg.horizonS = 5.0;
        sched::RtScheduler rs(cfg);
        sched::TaskSpec mpc;
        mpc.name = "mpc";
        mpc.periodS = 0.02;
        mpc.wcetCycles = 2.5e6;
        rs.addTask(std::move(mpc));
        sched::ScheduleRunResult r = rs.run();
        EXPECT_EQ(r.tasks[0].releases, closed.periodicActivations);
        EXPECT_EQ(r.tasks[0].misses, closed.periodicDeadlineMisses);
        EXPECT_GT(r.tasks[0].drops, 0u);
        EXPECT_GT(r.tasks[0].missStreakMax, 5u);
    }
}

TEST(SchedRt, PreemptionChargesContextSwitches)
{
    // Low-priority long task + high-priority short task at offset
    // phases: the high-priority release preempts the in-flight low-
    // priority work.
    sched::SchedulerConfig cfg;
    cfg.useEnvFaults = false;
    cfg.freqHz = 1e6;
    cfg.horizonS = 1.0;
    cfg.ctxSwitchCycles = 100.0;
    sched::RtScheduler rs(cfg);
    sched::TaskSpec lo;
    lo.name = "lo";
    lo.priority = 0;
    lo.periodS = 0.1;
    lo.wcetCycles = 50000.0; // 50 ms of work per 100 ms period
    rs.addTask(std::move(lo));
    sched::TaskSpec hi;
    hi.name = "hi";
    hi.priority = 1;
    hi.periodS = 0.025;
    hi.wcetCycles = 2000.0; // 2 ms
    rs.addTask(std::move(hi));
    sched::ScheduleRunResult r = rs.run();

    // hi releases land inside lo's 50 ms burst: lo gets preempted.
    EXPECT_GT(r.tasks[0].preemptions, 0u);
    EXPECT_GT(r.ctxSwitches, 0u);
    EXPECT_EQ(r.tasks[1].preemptions, 0u); // nothing outranks hi
    EXPECT_EQ(r.tasks[0].misses, 0u);
    EXPECT_EQ(r.tasks[1].misses, 0u);
}

TEST(SchedRt, SensorDropHoldsWithoutSolving)
{
    sched::SchedulerConfig cfg;
    cfg.useEnvFaults = false;
    cfg.horizonS = 1.0;
    sched::FaultEvent drop;
    drop.kind = sched::FaultKind::SensorDrop;
    drop.t0 = 0.25;
    drop.lenS = 0.25;
    cfg.faults.events.push_back(drop);
    sched::RtScheduler rs(cfg);
    rs.addTask(liveTask("quad", 50.0, 1));
    sched::ScheduleRunResult r = rs.run();

    const sched::TaskStats &t = r.tasks[0];
    // 0.25 s of dropped ticks at 50 Hz, the rest solved.
    EXPECT_GT(t.sensorDropTicks, 10u);
    EXPECT_EQ(t.solves + t.sensorDropTicks + t.holdTicks, t.releases);
    EXPECT_FALSE(t.crashed);
}

} // namespace
} // namespace rtoc
