/**
 * @file
 * Cross-cutting property tests: parameterized sweeps over hardware
 * configurations and problem sizes asserting invariants that every
 * design point must satisfy (determinism, monotonicity, boundedness,
 * conservation). These guard the design-space exploration itself: a
 * timing model that violates them would corrupt every Pareto and
 * sweep figure.
 */

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "cpu/inorder.hh"
#include "cpu/ooo.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "quad/linearize.hh"
#include "soc/power_model.hh"
#include "systolic/gemmini.hh"
#include "tinympc/solver.hh"
#include "vector/saturn.hh"

namespace rtoc {
namespace {

isa::Program
emitSolveN(matlib::Backend &backend, tinympc::MappingStyle style,
           int horizon)
{
    quad::DroneParams drone = quad::DroneParams::crazyflie();
    tinympc::Workspace ws =
        quad::buildQuadWorkspace(drone, 0.02, horizon);
    ws.settings.maxIters = 4;
    ws.settings.priTol = 0.0f;
    ws.settings.duaTol = 0.0f;
    isa::Program prog;
    backend.setProgram(&prog);
    tinympc::Solver solver(ws, backend, style);
    float x0[12] = {0.3f, 0.1f, 1.1f, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    ws.setInitialState(x0);
    solver.solve();
    backend.setProgram(nullptr);
    return prog;
}

/** (vlen, dlen, shuttle?) sweep over Saturn configurations. */
class SaturnSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>>
{};

TEST_P(SaturnSweep, SolverRunIsDeterministicAndBounded)
{
    auto [vlen, dlen, shuttle] = GetParam();
    matlib::RvvBackend backend(vlen, matlib::RvvMapping::handOptimized());
    isa::Program prog =
        emitSolveN(backend, tinympc::MappingStyle::Fused, 10);
    vector::SaturnModel m(vector::SaturnConfig::make(vlen, dlen, shuttle));
    auto r1 = m.run(prog);
    auto r2 = m.run(prog);
    EXPECT_EQ(r1.cycles, r2.cycles);
    // Bounded below by issue width and above by full serialization.
    EXPECT_GT(r1.cycles, prog.size() / 4);
    EXPECT_LT(r1.cycles, prog.size() * 40);
    // Region attribution never exceeds the total.
    uint64_t sum = 0;
    for (uint64_t c : r1.regionCycles)
        sum += c;
    EXPECT_LE(sum, r1.cycles);
}

TEST_P(SaturnSweep, WiderDatapathNeverSlower)
{
    auto [vlen, dlen, shuttle] = GetParam();
    if (dlen >= vlen)
        GTEST_SKIP() << "no wider config to compare";
    matlib::RvvBackend backend(vlen, matlib::RvvMapping::handOptimized());
    isa::Program prog =
        emitSolveN(backend, tinympc::MappingStyle::Fused, 10);
    vector::SaturnModel narrow(
        vector::SaturnConfig::make(vlen, dlen, shuttle));
    vector::SaturnModel wide(
        vector::SaturnConfig::make(vlen, dlen * 2, shuttle));
    EXPECT_LE(wide.run(prog).cycles, narrow.run(prog).cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SaturnSweep,
    ::testing::Values(std::tuple{256, 128, false},
                      std::tuple{512, 128, false},
                      std::tuple{512, 256, false},
                      std::tuple{512, 128, true},
                      std::tuple{512, 256, true}));

/** Horizon sweep: emission cost scales linearly, solutions stay sane. */
class HorizonSweep : public ::testing::TestWithParam<int>
{};

TEST_P(HorizonSweep, CyclesScaleLinearlyWithHorizon)
{
    int n = GetParam();
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    isa::Program p_n =
        emitSolveN(backend, tinympc::MappingStyle::Library, n);
    isa::Program p_2n =
        emitSolveN(backend, tinympc::MappingStyle::Library, 2 * n);
    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    double c_n = static_cast<double>(rocket.run(p_n).cycles);
    double c_2n = static_cast<double>(rocket.run(p_2n).cycles);
    // Linear in horizon: doubling N roughly doubles cycles (within
    // 35% to allow terminal-stage and residual constants).
    EXPECT_GT(c_2n / c_n, 1.6);
    EXPECT_LT(c_2n / c_n, 2.35);
}

TEST_P(HorizonSweep, SolverProducesFiniteBoundedInputs)
{
    int n = GetParam();
    quad::DroneParams drone = quad::DroneParams::crazyflie();
    tinympc::Workspace ws = quad::buildQuadWorkspace(drone, 0.02, n);
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    tinympc::Solver solver(ws, backend, tinympc::MappingStyle::Library);
    float x0[12] = {1.0f, -1.0f, 0.5f, 0.2f, -0.2f, 0.1f,
                    0.5f, 0.5f,  0.3f, 0.5f, 0.5f,  0.2f};
    ws.setInitialState(x0);
    solver.solve();
    float hover = static_cast<float>(drone.hoverThrustPerMotorN());
    float tmax = static_cast<float>(drone.maxThrustPerMotorN());
    // The slack trajectory obeys the motor envelope everywhere.
    for (int i = 0; i < ws.N - 1; ++i) {
        for (int j = 0; j < 4; ++j) {
            float z = ws.znew.view().at(i, j);
            EXPECT_TRUE(std::isfinite(z));
            EXPECT_GE(z, -hover - 1e-3f);
            EXPECT_LE(z, tmax - hover + 1e-3f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Horizons, HorizonSweep,
                         ::testing::Values(5, 8, 10, 15));

/** Gemmini configuration sweep. */
class GemminiSweep : public ::testing::TestWithParam<int>
{};

TEST_P(GemminiSweep, DeeperQueueNeverSlower)
{
    int depth = GetParam();
    isa::Program p;
    for (int i = 0; i < 128; ++i) {
        p.push(isa::Uop::rocc(isa::UopKind::RoccPreload, 4, 4));
        p.push(isa::Uop::rocc(isa::UopKind::RoccCompute, 16, 4));
    }
    systolic::GemminiConfig shallow = systolic::GemminiConfig::os4x4();
    shallow.robDepth = depth;
    systolic::GemminiConfig deeper = shallow;
    deeper.robDepth = depth * 2;
    EXPECT_LE(systolic::GemminiModel(deeper).run(p).cycles,
              systolic::GemminiModel(shallow).run(p).cycles);
}

INSTANTIATE_TEST_SUITE_P(Depths, GemminiSweep,
                         ::testing::Values(2, 4, 8, 16));

/** Power-model sweep across architectures. */
class PowerSweep : public ::testing::TestWithParam<int>
{};

TEST_P(PowerSweep, MonotoneInFrequencyAndUtilization)
{
    soc::PowerParams params;
    switch (GetParam()) {
      case 0: params = soc::PowerParams::scalarCore(); break;
      case 1: params = soc::PowerParams::vectorCore(); break;
      default: params = soc::PowerParams::systolicCore(); break;
    }
    soc::PowerModel pm(params);
    double prev_f = 0.0;
    for (double f : {25e6, 50e6, 100e6, 200e6, 400e6, 800e6}) {
        double p = pm.powerW(f, 0.5);
        EXPECT_GT(p, prev_f);
        prev_f = p;
        double prev_u = -1.0;
        for (double u : {0.0, 0.25, 0.5, 0.75, 1.0}) {
            double pu = pm.powerW(f, u);
            EXPECT_GT(pu, prev_u);
            prev_u = pu;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Archs, PowerSweep, ::testing::Range(0, 3));

TEST(Conservation, RotorEnergyEqualsIntegratedPower)
{
    quad::QuadSim sim(quad::DroneParams::heron());
    sim.resetHover({0, 0, 1.0});
    double h = sim.hoverCmd();
    double integral = 0.0;
    const double dt = 1.0 / 240.0;
    for (int i = 0; i < 480; ++i) {
        sim.step({h, h, h, h}, dt);
        integral += sim.rotorPowerW() * dt;
    }
    EXPECT_NEAR(sim.rotorEnergyJ(), integral, 0.01 * integral + 1e-9);
}

TEST(Conservation, BoomNeverBeatsDataflowLimit)
{
    // Even Mega BOOM cannot beat the dependency-chain bound.
    isa::Program p;
    uint32_t acc = p.newReg();
    p.push(isa::Uop::scalar(isa::UopKind::FpMove, acc));
    int n = 64;
    for (int i = 0; i < n; ++i) {
        uint32_t next = p.newReg();
        p.push(isa::Uop::scalar(isa::UopKind::FpFma, next, acc));
        acc = next;
    }
    cpu::OooCore mega(cpu::OooConfig::boomMega());
    EXPECT_GE(mega.run(p).cycles,
              static_cast<uint64_t>(n) * 4); // fma latency chain
}

} // namespace
} // namespace rtoc
