/**
 * @file
 * Codegen-flow tests (§4.3): IR construction, pass behaviour, and the
 * cycle-count ordering the paper reports — scalar baseline ≫
 * vectorized library ≫ unrolled+fused output.
 */

#include <gtest/gtest.h>

#include "codegen/graph.hh"
#include "cpu/inorder.hh"
#include "vector/saturn.hh"

namespace rtoc::codegen {
namespace {

TEST(Graph, AdmmIterationWellFormed)
{
    Graph g = Graph::admmIteration(12, 4, 10);
    EXPECT_GT(g.stmts.size(), 80u);
    EXPECT_GT(g.tensors.size(), 100u);
    // Every statement's tensors are declared with plausible dims.
    for (const auto &s : g.stmts) {
        EXPECT_TRUE(g.tensors.count(s.out));
        for (const auto &in : s.ins)
            EXPECT_TRUE(g.tensors.count(in));
    }
}

TEST(Graph, DeclareRejectsDimMismatch)
{
    Graph g;
    g.declare("a", 2, 3);
    g.declare("a", 2, 3); // idempotent ok
    EXPECT_EXIT({ g.declare("a", 3, 2); },
                ::testing::ExitedWithCode(1), "");
}

TEST(Graph, PushRejectsUndeclared)
{
    Graph g;
    g.declare("a", 1, 4);
    EXPECT_EXIT(
        {
            g.push({OpKind::Copy, "a", {"missing"}, 4, 0});
        },
        ::testing::ExitedWithCode(1), "");
}

TEST(Passes, UnrollMarksAllGemvs)
{
    Graph g = Graph::admmIteration(12, 4, 10);
    int marked = unrollPass(g);
    int gemvs = 0;
    for (const auto &s : g.stmts)
        if (s.op == OpKind::Gemv || s.op == OpKind::GemvT)
            ++gemvs;
    EXPECT_EQ(marked, gemvs);
    EXPECT_GT(gemvs, 30);
}

TEST(Passes, FusionGroupsChains)
{
    Graph g = Graph::admmIteration(12, 4, 10);
    int groups = fusionPass(g, 16);
    EXPECT_GT(groups, 0);
    // Fusion groups must be (a) contiguous and (b) smaller in count
    // than the fusable statement count (i.e. real grouping happened).
    int fusable = 0;
    int last_group = -1;
    for (const auto &s : g.stmts) {
        if (s.fuseGroup >= 0) {
            ++fusable;
            EXPECT_GE(s.fuseGroup, last_group);
            last_group = std::max(last_group, s.fuseGroup);
        }
    }
    EXPECT_LT(groups, fusable);
}

TEST(Passes, ReductionsBreakGroups)
{
    Graph g;
    g.declare("a", 1, 8);
    g.declare("b", 1, 8);
    g.declare("c", 1, 8);
    g.declare("s", 1, 1);
    g.push({OpKind::Saxpby, "c", {"a", "b"}, 8, 0, 1.0f, 1.0f});
    g.push({OpKind::AbsMaxDiff, "s", {"a", "c"}, 8, 0});
    g.push({OpKind::Saxpby, "c", {"c", "b"}, 8, 0, 1.0f, 1.0f});
    fusionPass(g, 16);
    EXPECT_EQ(g.stmts[1].fuseGroup, -1);
    // Statements around the reduction are in different groups.
    EXPECT_NE(g.stmts[0].fuseGroup, g.stmts[2].fuseGroup);
}

TEST(Emit, ScalarAndVectorProduceNonEmptyPrograms)
{
    Graph g = Graph::admmIteration(12, 4, 10);
    CodegenOptions scalar_opts{false, 512, 1, false, false};
    CodegenOptions vec_opts{true, 512, 1, false, false};
    isa::Program ps = emit(g, scalar_opts);
    isa::Program pv = emit(g, vec_opts);
    EXPECT_GT(ps.size(), 1000u);
    EXPECT_GT(pv.countVector(), 100u);
    EXPECT_EQ(ps.countVector(), 0u);
}

TEST(Emit, PaperCycleOrdering)
{
    // §4.3: baseline CPU ~11M cycles, vectorized library ~1.35M,
    // unrolled+fused ~0.55M for the tracking problem (here: one
    // iteration; the bench scales to the full problem). Require the
    // ordering and coarse ratios.
    Graph g = Graph::admmIteration(12, 4, 10);

    CodegenOptions scalar_opts{false, 512, 1, false, false};
    isa::Program ps = emit(g, scalar_opts);

    CodegenOptions lib_opts{true, 512, 1, false, false};
    isa::Program pl = emit(g, lib_opts);

    Graph g2 = Graph::admmIteration(12, 4, 10);
    unrollPass(g2);
    fusionPass(g2, 16);
    CodegenOptions opt_opts{true, 512, 1, true, true};
    isa::Program po = emit(g2, opt_opts);

    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    vector::SaturnModel saturn(
        vector::SaturnConfig::make(512, 256, false));

    uint64_t cs = rocket.run(ps).cycles;
    uint64_t cl = saturn.run(pl).cycles;
    uint64_t co = saturn.run(po).cycles;

    EXPECT_GT(cs, cl * 4);   // scalar >> vector library
    EXPECT_GT(cl, co * 3 / 2); // library > optimized by >=1.5x
}

TEST(Emit, LmulHurtsShortVectorGraph)
{
    // The ADMM graph's vectors are nx=12/nu=4 long: LMUL grouping
    // cannot shrink the instruction count but forces whole-group
    // sequencing, so the LMUL=4 emission is slower on Saturn (the
    // Fig. 4 iterative-kernel effect).
    Graph g = Graph::admmIteration(12, 4, 10);
    CodegenOptions m1{true, 512, 1, false, false};
    CodegenOptions m4{true, 512, 4, false, false};
    isa::Program p1 = emit(g, m1);
    isa::Program p4 = emit(g, m4);
    EXPECT_EQ(p1.countVector(), p4.countVector());
    vector::SaturnModel saturn(
        vector::SaturnConfig::make(512, 128, false));
    EXPECT_GT(saturn.run(p4).cycles, saturn.run(p1).cycles);
}

TEST(Emit, Deterministic)
{
    Graph g = Graph::admmIteration(4, 2, 6);
    CodegenOptions opts{true, 512, 1, true, true};
    unrollPass(g);
    fusionPass(g, 16);
    isa::Program a = emit(g, opts);
    isa::Program b = emit(g, opts);
    EXPECT_EQ(a.size(), b.size());
}

TEST(Elementwise, Classification)
{
    EXPECT_TRUE(isElementwise(OpKind::Saxpby));
    EXPECT_TRUE(isElementwise(OpKind::ClampVec));
    EXPECT_FALSE(isElementwise(OpKind::Gemv));
    EXPECT_FALSE(isElementwise(OpKind::AbsMaxDiff));
}

} // namespace
} // namespace rtoc::codegen
