/**
 * @file
 * Tests for the design-space exploration layer: the LruMap backing
 * the bounded memos, DesignSpace indexing/materialization, surrogate
 * fit quality, and Explorer behaviour — grid-vs-search frontier
 * equality, successive-halving pruning, fidelity key separation, and
 * bit-identical results under a parallel pool.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "common/logging.hh"
#include "common/lru_cache.hh"
#include "common/thread_pool.hh"
#include "cpu/inorder.hh"
#include "dse/explorer.hh"
#include "dse/surrogate.hh"
#include "hil/episode.hh"
#include "hil/timing.hh"
#include "isa/program.hh"

namespace rtoc::dse {
namespace {

// ---------------------------------------------------------------- //
// LruMap

TEST(LruMap, PutGetAndEviction)
{
    LruMap<int, int> m(2);
    m.put(1, 10);
    m.put(2, 20);
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.get(1), nullptr); // 1 becomes MRU
    m.put(3, 30);                 // evicts 2 (LRU)
    EXPECT_EQ(m.get(2), nullptr);
    ASSERT_NE(m.get(1), nullptr);
    EXPECT_EQ(*m.get(1), 10);
    ASSERT_NE(m.get(3), nullptr);
    EXPECT_EQ(m.evictions(), 1u);
}

TEST(LruMap, PutUpdatesInPlace)
{
    LruMap<int, int> m(2);
    m.put(1, 10);
    m.put(1, 11);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(*m.get(1), 11);
    EXPECT_EQ(m.evictions(), 0u);
}

TEST(LruMap, SetCapacityEvictsImmediately)
{
    LruMap<int, int> m(0); // unbounded
    for (int i = 0; i < 8; ++i)
        m.put(i, i);
    EXPECT_EQ(m.size(), 8u);
    m.setCapacity(3);
    EXPECT_EQ(m.size(), 3u);
    EXPECT_EQ(m.evictions(), 5u);
    // The three most recently inserted survive.
    EXPECT_NE(m.get(7), nullptr);
    EXPECT_NE(m.get(6), nullptr);
    EXPECT_NE(m.get(5), nullptr);
    EXPECT_EQ(m.get(0), nullptr);
}

// ---------------------------------------------------------------- //
// Synthetic design space: in-order cores running dependent-FMA
// chains. Cycles ~ chain length x fpLatency, so latency scaling has
// an exactly-known, monotone response and the grid frontier is
// analytic: per config, the minimum-latency point.

std::shared_ptr<const isa::Program>
chainProgram(int n)
{
    auto p = std::make_shared<isa::Program>();
    uint32_t acc = p->newReg();
    p->push(isa::Uop::scalar(isa::UopKind::FpMove, acc));
    for (int i = 0; i < n; ++i) {
        uint32_t next = p->newReg();
        p->push(isa::Uop::scalar(isa::UopKind::FpFma, next, acc));
        acc = next;
    }
    return p;
}

/** Chain length behind each fidelity rung. */
int
chainLen(Fidelity f)
{
    return f == Fidelity::Low ? 16 : 64;
}

void
addChainConfig(DesignSpace &s, const char *name, int fp_latency,
               double area_mm2)
{
    cpu::InOrderConfig cfg = cpu::InOrderConfig::rocket();
    cfg.name = name;
    cfg.fpLatency = fp_latency;
    s.addConfig(
        {name,
         [cfg](double lat, double) -> std::unique_ptr<cpu::TimingModel> {
             return std::make_unique<cpu::InOrderCore>(
                 scaledInOrder(cfg, lat));
         },
         [](Fidelity f, matlib::NumericFormat) {
             return chainProgram(chainLen(f));
         },
         [](Fidelity f, matlib::NumericFormat) {
             return csprintf("chain:%d", chainLen(f));
         },
         [area_mm2](double) { return area_mm2; }, 0});
}

/**
 * Three configurations: "small" (cheap, slow), "big" (pricey, fast),
 * and "dud" (pricier AND slower than big — dominated everywhere, so
 * successive halving must prune it).
 */
DesignSpace
syntheticSpace()
{
    DesignSpace s("synthetic");
    addChainConfig(s, "small", 6, 1.0);
    addChainConfig(s, "big", 2, 2.0);
    addChainConfig(s, "dud", 8, 3.0);
    s.setLatScales({0.5, 1.0, 1.5});
    return s;
}

Explorer::Options
uncached()
{
    Explorer::Options opt;
    opt.useMemo = false;
    opt.useDisk = false;
    return opt;
}

std::multiset<std::string>
frontierKeys(const std::vector<EvalOutcome> &frontier)
{
    std::multiset<std::string> keys;
    for (const EvalOutcome &o : frontier)
        keys.insert(o.cellKey);
    return keys;
}

// ---------------------------------------------------------------- //
// DesignSpace

TEST(DesignSpace, FlatIndexRoundTrip)
{
    DesignSpace s = syntheticSpace();
    s.setWidthScales({0.5, 1.0});
    s.setFreqsHz({5e8, 1e9});
    EXPECT_EQ(s.size(), 3u * 3u * 2u * 2u);
    for (size_t flat = 0; flat < s.size(); ++flat)
        EXPECT_EQ(s.flatIndex(s.point(flat)), flat);
}

TEST(DesignSpace, FidelitySeparatesCellKeys)
{
    DesignSpace s = syntheticSpace();
    PointSpec p{0, 1, 0, 0};
    EXPECT_NE(s.cellKey(p, Fidelity::Low), s.cellKey(p, Fidelity::Full));
    EXPECT_EQ(s.cellKey(p, Fidelity::Full),
              s.cellKey(p, Fidelity::Full));
}

TEST(DesignSpace, NominalPointKeepsPlainName)
{
    DesignSpace s = syntheticSpace();
    Candidate c = s.materialize({0, 1, 0, 0}, Fidelity::Full, false);
    EXPECT_EQ(c.name, "small"); // lat 1.0 adds no scale suffix
    Candidate scaled = s.materialize({0, 0, 0, 0}, Fidelity::Full,
                                     false);
    EXPECT_EQ(scaled.name, "small@l0.50");
}

TEST(DesignSpace, DistinctCellsCollapsesAliases)
{
    DesignSpace s = syntheticSpace();
    // Width axis does not reach the in-order model or the stream, so
    // extra width values must not add distinct cells.
    size_t base = s.countDistinctCells(Fidelity::Full);
    s.setWidthScales({0.5, 1.0, 2.0});
    EXPECT_EQ(s.countDistinctCells(Fidelity::Full), base);
}

// ---------------------------------------------------------------- //
// Surrogate

TEST(Surrogate, ExactOnLogQuadraticResponse)
{
    Surrogate m;
    for (double l : {0.5, 0.75, 1.0, 1.25, 1.5})
        for (double w : {0.5, 1.0, 2.0}) {
            double cycles =
                std::exp(6.0 + 0.4 * l + 0.1 * l * l + 0.3 * w);
            m.addSample(l, w, cycles);
        }
    ASSERT_TRUE(m.fit());
    // Exact up to the trace-scaled ridge regularizer (~1e-9 relative
    // on the normal equations, a few 1e-6 on the prediction).
    EXPECT_LT(m.maxRelError(), 1e-4);
    double pred = m.predictCycles(0.9, 1.5);
    double truth = std::exp(6.0 + 0.4 * 0.9 + 0.1 * 0.81 + 0.3 * 1.5);
    EXPECT_NEAR(pred / truth, 1.0, 1e-4);
}

TEST(Surrogate, DegenerateAxisFitsConstantWidth)
{
    Surrogate m;
    for (double l : {0.5, 1.0, 1.5})
        m.addSample(l, 1.0, 1000.0 * l);
    ASSERT_TRUE(m.fit());
    // Only lat terms active; interpolates the three samples well.
    EXPECT_NEAR(m.predictCycles(1.0, 1.0), 1000.0,
                1000.0 * m.maxRelError() + 30.0);
}

TEST(Surrogate, UnfitUntilSamples)
{
    Surrogate m;
    EXPECT_FALSE(m.fitted());
    EXPECT_FALSE(m.fit());
    m.addSample(1.0, 1.0, 100.0);
    EXPECT_TRUE(m.fit());
    EXPECT_TRUE(m.fitted());
}

// ---------------------------------------------------------------- //
// Explorer

TEST(Explorer, SubmitMatchesDirectReplay)
{
    DesignSpace s = syntheticSpace();
    Explorer ex(s, uncached());
    std::vector<EvalOutcome> out =
        ex.submit({{0, 1, 0, 0}, {1, 1, 0, 0}});
    ASSERT_EQ(out.size(), 2u);

    cpu::InOrderConfig small = cpu::InOrderConfig::rocket();
    small.name = "small";
    small.fpLatency = 6;
    cpu::InOrderCore core(small);
    EXPECT_EQ(out[0].cycles,
              core.run(*chainProgram(chainLen(Fidelity::Full))).cycles);
    EXPECT_LT(out[1].cycles, out[0].cycles); // big is faster
}

TEST(Explorer, SubmitDeduplicatesAliasedQueries)
{
    DesignSpace s = syntheticSpace();
    s.setFreqsHz({5e8, 1e9});
    Explorer ex(s, uncached());
    // Same cell at two frequencies: one replay, two analytic results.
    std::vector<EvalOutcome> out =
        ex.submit({{0, 1, 0, 0}, {0, 1, 0, 1}});
    EXPECT_EQ(ex.stats().replays, 1u);
    EXPECT_EQ(ex.stats().cellsRequested, 1u);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].cycles, out[1].cycles);
    EXPECT_DOUBLE_EQ(out[1].solvesPerS, 2.0 * out[0].solvesPerS);
}

TEST(Explorer, ExploreRecoversGridFrontier)
{
    DesignSpace s = syntheticSpace();
    Explorer grid(s, uncached());
    Explorer::Result g = grid.exploreGrid();
    Explorer search(s, uncached());
    Explorer::Result r = search.explore();
    EXPECT_EQ(frontierKeys(g.frontier), frontierKeys(r.frontier));
    // Analytic frontier: min-lat "small" and "big"; "dud" dominated.
    ASSERT_EQ(g.frontier.size(), 2u);
    EXPECT_EQ(g.frontier[0].config, "small@l0.50");
    EXPECT_EQ(g.frontier[1].config, "big@l0.50");
}

TEST(Explorer, SuccessiveHalvingPrunesDominatedConfig)
{
    DesignSpace s = syntheticSpace();
    Explorer search(s, uncached());
    Explorer::Result r = search.explore();
    EXPECT_EQ(r.stats.cellsLowFi, 3u); // one cheap rung per config
    for (const EvalOutcome &o : r.evaluated) {
        EXPECT_EQ(o.fidelity, Fidelity::Full);
        EXPECT_TRUE(o.config.rfind("dud", 0) != 0)
            << "dominated config " << o.config
            << " was promoted past the low-fidelity rung";
    }
    EXPECT_LT(r.stats.cellsRequested, r.gridCells + 3);
}

TEST(Explorer, ParallelPoolIsBitIdenticalToSerial)
{
    DesignSpace s = syntheticSpace();
    s.setLatScales({0.5, 0.75, 1.0, 1.25, 1.5});

    ThreadPool serial_pool(1), wide_pool(4);
    Explorer::Options serial_opt = uncached();
    serial_opt.pool = &serial_pool;
    Explorer::Options wide_opt = uncached();
    wide_opt.pool = &wide_pool;

    Explorer a(s, serial_opt), b(s, wide_opt);
    Explorer::Result ra = a.explore();
    Explorer::Result rb = b.explore();

    ASSERT_EQ(ra.evaluated.size(), rb.evaluated.size());
    for (size_t i = 0; i < ra.evaluated.size(); ++i) {
        EXPECT_EQ(ra.evaluated[i].cellKey, rb.evaluated[i].cellKey);
        EXPECT_EQ(ra.evaluated[i].cycles, rb.evaluated[i].cycles);
    }
    EXPECT_EQ(frontierKeys(ra.frontier), frontierKeys(rb.frontier));
    EXPECT_EQ(ra.stats.cellsRequested, rb.stats.cellsRequested);
    EXPECT_EQ(ra.stats.replays, rb.stats.replays);
}

TEST(Explorer, EvalMemoCapBoundsAndCounts)
{
    EvalMemoStats before = evalMemoStats();
    evalMemoSetCap(2);
    DesignSpace s = syntheticSpace();
    Explorer::Options opt;
    opt.useDisk = false; // memo only
    Explorer ex(s, opt);
    // Three distinct full-fidelity cells through a 2-entry memo.
    ex.submit({{0, 1, 0, 0}, {1, 1, 0, 0}, {2, 1, 0, 0}});
    EvalMemoStats after = evalMemoStats();
    EXPECT_LE(after.entries, 2u);
    EXPECT_GT(after.evictions, before.evictions);
    evalMemoSetCap(65536); // restore the default for other tests
}

TEST(Explorer, FrontierHelpersAreConsistent)
{
    DesignSpace s = syntheticSpace();
    Explorer grid(s, uncached());
    Explorer::Result g = grid.exploreGrid();
    ASSERT_EQ(g.frontier.size(), 2u);
    const EvalOutcome &cheap = g.frontier[0];
    const EvalOutcome &fast = g.frontier[1];
    EXPECT_DOUBLE_EQ(frontierPerfAt(g.frontier, cheap.areaMm2),
                     cheap.solvesPerS);
    EXPECT_DOUBLE_EQ(frontierPerfAt(g.frontier, 100.0),
                     fast.solvesPerS);
    EXPECT_DOUBLE_EQ(frontierPerfAt(g.frontier, 0.1), 0.0);
    // Hypervolume: staircase area under the two steps.
    double expect = (fast.areaMm2 - cheap.areaMm2) * cheap.solvesPerS +
                    (4.0 - fast.areaMm2) * fast.solvesPerS;
    EXPECT_NEAR(hypervolume(g.frontier, 4.0), expect, 1e-9);
}

// ---------------------------------------------------------------- //
// hil runCell memo LRU bound

TEST(CellMemo, CapBoundsEntriesAndCountsEvictions)
{
    quad::DroneParams cf = quad::DroneParams::crazyflie();
    hil::ControllerTiming tv = hil::vectorControllerTiming(cf, 0.02, 10);
    hil::cellMemoSetCap(2);
    // Three distinct cells (frequency is part of the memo key).
    for (double mhz : {100e6, 150e6, 200e6}) {
        hil::HilConfig cfg;
        cfg.timing = tv;
        cfg.socFreqHz = mhz;
        hil::runCell(cf, quad::Difficulty::Easy, 1, cfg);
    }
    hil::CellMemoStats stats = hil::cellMemoStats();
    EXPECT_EQ(stats.capacity, 2u);
    EXPECT_LE(stats.entries, 2u);
    EXPECT_GE(stats.evictions, 1u);
    hil::cellMemoSetCap(4096); // restore the default
}

} // namespace
} // namespace rtoc::dse
