/**
 * @file
 * Tests for the schedule transform pass and the schedule searcher.
 *
 * Transform legality: every candidate recipe, applied to real emitted
 * streams from all backend families, must produce a region-local
 * permutation that preserves register def/use order (checked by the
 * independent verifySchedule oracle), the region table, and the uop
 * multiset. Replays of scheduled streams must reconcile region uop
 * and invocation sums exactly with the baseline on all four timing
 * families, and batched replay of a scheduled stream must stay
 * bit-identical to sequential.
 *
 * Search: deterministic across repeated serial runs and a 4-thread
 * pool; winners round-trip through the SchedSpec codec and the
 * DiskCache "sched" namespace; corrupt blobs (bad envelope bytes or a
 * valid envelope holding garbage) are re-searched and overwritten.
 *
 * This binary latches RTOC_SCHED=1 before main so the opt-in layer is
 * live here; the off-mode identity contract lives in
 * test_schedule_off.cc (own process, env untouched).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "cpu/inorder.hh"
#include "cpu/ooo.hh"
#include "cpu/replay_batch.hh"
#include "isa/disk_cache.hh"
#include "isa/program_cache.hh"
#include "isa/sched_search.hh"
#include "isa/schedule.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "obs/registry.hh"
#include "systolic/gemmini.hh"
#include "vector/saturn.hh"

namespace rtoc {
namespace {

using isa::Program;
using isa::SchedSpec;
using isa::Uop;
using isa::UopKind;

/** Latch the schedule layer on before any schedEnabled() call. */
const bool kSchedEnv = [] {
    setenv("RTOC_SCHED", "1", 1);
    unsetenv("RTOC_SCHED_CAP");
    return true;
}();

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/rtoc-sched-test-XXXXXX";
    const char *dir = mkdtemp(tmpl);
    return dir ? dir : "/tmp/rtoc-sched-test-fallback";
}

/** Emitted streams from every backend family (small forced solves). */
std::vector<std::shared_ptr<const Program>>
familyStreams()
{
    std::vector<std::shared_ptr<const Program>> out;
    matlib::ScalarBackend scalar(matlib::ScalarFlavor::Optimized);
    out.push_back(
        bench::emitQuadSolveCached(scalar, tinympc::MappingStyle::Library));
    matlib::RvvBackend rvv(512, matlib::RvvMapping::handOptimized());
    out.push_back(
        bench::emitQuadSolveCached(rvv, tinympc::MappingStyle::Fused));
    matlib::GemminiBackend gem(matlib::GemminiMapping::fullyOptimized());
    out.push_back(
        bench::emitQuadSolveCached(gem, tinympc::MappingStyle::Library));
    return out;
}

/** Two independent FP chains in one region: serial emission stalls an
 *  in-order core on every op, so interleaving schedules must win. */
Program
twoChainProgram(int chain_len)
{
    Program p;
    p.beginKernel("body");
    for (int chain = 0; chain < 2; ++chain) {
        uint32_t acc = p.newReg();
        p.push(Uop::scalar(UopKind::FpMove, acc));
        for (int i = 0; i < chain_len; ++i) {
            uint32_t next = p.newReg();
            p.push(Uop::scalar(UopKind::FpFma, next, acc));
            acc = next;
        }
    }
    p.endKernel();
    return p;
}

/** Field-wise uop equality (the permuted multiset check). */
bool
sameUop(const Uop &a, const Uop &b)
{
    return a.kind == b.kind && a.dst == b.dst && a.src0 == b.src0 &&
           a.src1 == b.src1 && a.src2 == b.src2 && a.vl == b.vl &&
           a.sew == b.sew && a.lmul8 == b.lmul8 && a.bytes == b.bytes &&
           a.rows == b.rows && a.cols == b.cols && a.taken == b.taken;
}

TEST(ScheduleTransforms, CandidatesLegalOnEveryFamilyStream)
{
    for (const auto &prog : familyStreams()) {
        for (const SchedSpec &spec : isa::enumerateSchedSpecs()) {
            isa::ScheduleResult r = isa::applySchedule(*prog, spec);
            std::string why;
            EXPECT_TRUE(isa::verifySchedule(*prog, r.prog, r.perm, &why))
                << spec.describe() << ": " << why;

            // Permutations never add or drop uops, and the region
            // table (ids and [begin, end) ranges) is untouched.
            ASSERT_EQ(r.prog.size(), prog->size()) << spec.describe();
            ASSERT_EQ(r.prog.kernels().size(), prog->kernels().size());
            for (size_t k = 0; k < prog->kernels().size(); ++k) {
                EXPECT_EQ(r.prog.kernels()[k].id, prog->kernels()[k].id);
                EXPECT_EQ(r.prog.kernels()[k].begin,
                          prog->kernels()[k].begin);
                EXPECT_EQ(r.prog.kernels()[k].end,
                          prog->kernels()[k].end);
            }
            for (size_t i = 0; i < r.perm.size(); ++i) {
                ASSERT_LT(r.perm[i], prog->size());
                EXPECT_TRUE(
                    sameUop(r.prog.uops()[i], prog->uops()[r.perm[i]]))
                    << spec.describe() << " index " << i;
            }
        }
    }
}

TEST(ScheduleTransforms, IdentitySpecIsIdentity)
{
    matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
    auto prog =
        bench::emitQuadSolveCached(b, tinympc::MappingStyle::Library);
    isa::ScheduleResult r = isa::applySchedule(*prog, SchedSpec{});
    ASSERT_EQ(r.prog.size(), prog->size());
    for (size_t i = 0; i < r.perm.size(); ++i) {
        EXPECT_EQ(r.perm[i], i);
        ASSERT_TRUE(sameUop(r.prog.uops()[i], prog->uops()[i]));
    }
}

TEST(ScheduleTransforms, VerifierRejectsIllegalReorder)
{
    // Swap a dependent FMA pair by hand: the oracle must refuse it.
    Program p = twoChainProgram(4);
    std::vector<Uop> uops = p.uops();
    std::swap(uops[1], uops[2]); // FpFma consuming uops[1]'s FpMove? no:
    // uops[1] defines the reg uops[2] reads — swapping breaks RAW.
    Program bad = Program::assemble(uops, p.kernels(),
                                    p.scalarRegCount(),
                                    p.vectorRegCount());
    std::vector<uint32_t> perm(p.size());
    for (size_t i = 0; i < perm.size(); ++i)
        perm[i] = static_cast<uint32_t>(i);
    std::swap(perm[1], perm[2]);
    std::string why;
    EXPECT_FALSE(isa::verifySchedule(p, bad, perm, &why));
    EXPECT_FALSE(why.empty());
}

TEST(ScheduleTransforms, RegionSumsReconcileOnAllFourFamilies)
{
    // One interleaving recipe per family stream; the scheduled replay
    // must attribute exactly the baseline's per-region uop counts and
    // invocations (permutation within regions cannot move work across
    // region boundaries), and region cycles must sum consistently.
    SchedSpec reorder8{{{isa::SchedKind::Reorder, 8}}, {}};

    auto streams = familyStreams();
    cpu::InOrderCore inorder(cpu::InOrderConfig::shuttle());
    cpu::OooCore ooo(cpu::OooConfig::boomMedium());
    vector::SaturnModel saturn(vector::SaturnConfig::make(512, 256, true));
    systolic::GemminiModel gemmini(systolic::GemminiConfig::os4x4());

    struct Case
    {
        const cpu::TimingModel *model;
        const Program *prog;
        const char *label;
    };
    std::vector<Case> cases = {
        {&inorder, streams[0].get(), "inorder"},
        {&ooo, streams[0].get(), "ooo"},
        {&saturn, streams[1].get(), "saturn"},
        {&gemmini, streams[2].get(), "gemmini"},
    };
    for (const Case &c : cases) {
        isa::ScheduleResult r = isa::applySchedule(*c.prog, reorder8);
        std::string why;
        ASSERT_TRUE(isa::verifySchedule(*c.prog, r.prog, r.perm, &why))
            << c.label << ": " << why;

        cpu::TimingResult base = c.model->run(*c.prog);
        cpu::TimingResult sched = c.model->run(r.prog);
        EXPECT_GT(sched.cycles, 0u) << c.label;

        // Per-region-name uop counts are invariant by construction.
        std::map<std::string, uint64_t> base_uops, sched_uops;
        for (const isa::KernelRegion &k : c.prog->kernels())
            base_uops[k.name()] += k.end - k.begin;
        for (const isa::KernelRegion &k : r.prog.kernels())
            sched_uops[k.name()] += k.end - k.begin;
        EXPECT_EQ(base_uops, sched_uops) << c.label;

        auto base_bd = base.kernelBreakdown(*c.prog);
        auto sched_bd = sched.kernelBreakdown(r.prog);
        ASSERT_EQ(base_bd.size(), sched_bd.size()) << c.label;
        uint64_t base_sum = 0, sched_sum = 0;
        for (size_t k = 0; k < base_bd.size(); ++k) {
            EXPECT_EQ(base_bd[k].name, sched_bd[k].name) << c.label;
            EXPECT_EQ(base_bd[k].invocations, sched_bd[k].invocations)
                << c.label << " region " << base_bd[k].name;
            base_sum += base_bd[k].cycles;
            sched_sum += sched_bd[k].cycles;
        }
        // Region attribution covers the stream on both replays: sums
        // are bounded by the totals on each side.
        EXPECT_LE(sched_sum, sched.cycles) << c.label;
        EXPECT_LE(base_sum, base.cycles) << c.label;

        // Batched replay of a *scheduled* stream stays bit-exact.
        std::vector<const cpu::TimingModel *> group = {c.model, c.model};
        std::vector<cpu::TimingResult> batch =
            c.model->runStreamBatch(r.prog.stream(), group);
        ASSERT_EQ(batch.size(), 2u) << c.label;
        EXPECT_EQ(batch[0].cycles, sched.cycles) << c.label;
        EXPECT_EQ(batch[1].cycles, sched.cycles) << c.label;
    }
}

TEST(ScheduleSearch, FindsInterleavingWinOnSerialChains)
{
    Program p = twoChainProgram(12);
    cpu::InOrderCore shuttle(cpu::InOrderConfig::shuttle());
    auto cost = [&](const Program &prog) {
        return shuttle.run(prog).cycles;
    };
    isa::SchedSearchResult res = isa::searchSchedule(p, cost, 24);
    EXPECT_GT(res.candidatesScored, 0);
    // Two independent latency-4 chains emitted serially: any
    // interleaving candidate roughly halves the stall time, so the
    // search must find a strict win.
    EXPECT_LT(res.bestCycles, res.baseCycles);
    EXPECT_FALSE(res.spec.empty());

    // The winner's cost claim is reproducible.
    isa::ScheduleResult r = isa::applySchedule(p, res.spec);
    EXPECT_EQ(cost(r.prog), res.bestCycles);
    std::string why;
    EXPECT_TRUE(isa::verifySchedule(p, r.prog, r.perm, &why)) << why;
}

TEST(ScheduleSearch, DeterministicSerialAndAcrossPoolThreads)
{
    Program p = twoChainProgram(10);
    cpu::InOrderCore shuttle(cpu::InOrderConfig::shuttle());
    auto cost = [&](const Program &prog) {
        return shuttle.run(prog).cycles;
    };
    isa::SchedSearchResult serial = isa::searchSchedule(p, cost, 24);
    isa::SchedSearchResult again = isa::searchSchedule(p, cost, 24);
    EXPECT_EQ(serial.spec.describe(), again.spec.describe());
    EXPECT_EQ(serial.bestCycles, again.bestCycles);
    EXPECT_EQ(serial.candidatesScored, again.candidatesScored);

    ThreadPool pool(4);
    std::vector<isa::SchedSearchResult> results(8);
    pool.parallelFor(results.size(), [&](size_t i) {
        cpu::InOrderCore local(cpu::InOrderConfig::shuttle());
        results[i] = isa::searchSchedule(
            p, [&](const Program &prog) { return local.run(prog).cycles; },
            24);
    });
    for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i].spec.describe(), serial.spec.describe())
            << i;
        EXPECT_EQ(results[i].bestCycles, serial.bestCycles) << i;
    }
}

TEST(ScheduleSearch, CapLimitsScoredCandidates)
{
    Program p = twoChainProgram(10);
    cpu::InOrderCore shuttle(cpu::InOrderConfig::shuttle());
    auto cost = [&](const Program &prog) {
        return shuttle.run(prog).cycles;
    };
    isa::SchedSearchResult res = isa::searchSchedule(p, cost, 3);
    EXPECT_LE(res.candidatesScored, 3);
}

TEST(SchedSpecCodec, RoundTripAndDigest)
{
    SchedSpec spec;
    spec.steps = {{isa::SchedKind::Fission, 0},
                  {isa::SchedKind::Reorder, 8}};
    spec.overrides.push_back({"fp1", {{isa::SchedKind::Unroll, 2}}});
    spec.overrides.push_back({"gemv", {}});

    std::string blob = isa::encodeSchedSpec(spec);
    std::optional<SchedSpec> dec = isa::decodeSchedSpec(blob);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->describe(), spec.describe());
    EXPECT_EQ(isa::schedSpecDigest(*dec), isa::schedSpecDigest(spec));

    // Distinct specs get distinct digests; the empty spec is "0".
    EXPECT_EQ(isa::schedSpecDigest(SchedSpec{}), "0");
    SchedSpec other;
    other.steps = {{isa::SchedKind::Reorder, 4}};
    EXPECT_NE(isa::schedSpecDigest(other), isa::schedSpecDigest(spec));

    // Truncated and garbage payloads decode to nullopt, not UB.
    EXPECT_FALSE(isa::decodeSchedSpec(blob.substr(0, blob.size() / 2))
                     .has_value());
    EXPECT_FALSE(isa::decodeSchedSpec("not a sched spec").has_value());
    EXPECT_FALSE(isa::decodeSchedSpec("").has_value());
}

TEST(ScheduledStream, MemoDiskRoundTripAndCorruptRegeneration)
{
    ASSERT_TRUE(isa::schedEnabled()) << "env latch failed";
    const std::string dir = makeTempDir();

    Program built = twoChainProgram(12);
    auto baseline = std::make_shared<const Program>(std::move(built));
    cpu::InOrderCore shuttle(cpu::InOrderConfig::shuttle());
    std::atomic<int> cost_calls{0};
    auto cost = [&](const Program &prog) {
        ++cost_calls;
        return shuttle.run(prog).cycles;
    };
    const std::string model_key = "modelA";
    const std::string prog_key = "progK";
    const std::string search_key = csprintf(
        "sched1|%s|%s|cap%d", model_key.c_str(), prog_key.c_str(),
        isa::schedCap());

    // Cold: searches (cost called), persists the recipe, returns a
    // scheduled stream distinct from the baseline.
    isa::DiskCache disk(dir, "test-fp");
    isa::ProgramCache cache(&disk);
    isa::clearSchedMemoForTest();
    auto s1 = isa::scheduledStream(model_key, prog_key, baseline, cost,
                                   cache, &disk);
    EXPECT_GT(cost_calls.load(), 0);
    ASSERT_NE(s1, nullptr);
    EXPECT_NE(s1.get(), baseline.get());
    EXPECT_EQ(s1->size(), baseline->size());
    const uint64_t sched_cycles = shuttle.run(*s1).cycles;
    EXPECT_LT(sched_cycles, shuttle.run(*baseline).cycles);

    // Memo hit: same pointer, no new search.
    const int calls_after_search = cost_calls.load();
    auto s2 = isa::scheduledStream(model_key, prog_key, baseline, cost,
                                   cache, &disk);
    EXPECT_EQ(s2.get(), s1.get());
    EXPECT_EQ(cost_calls.load(), calls_after_search);

    // Warm process (memo dropped): the recipe decodes from disk —
    // zero cost replays — and re-applies to the same cycles.
    isa::clearSchedMemoForTest();
    cost_calls = 0;
    isa::DiskCache disk2(dir, "test-fp");
    isa::ProgramCache cache2(&disk2);
    auto s3 = isa::scheduledStream(model_key, prog_key, baseline, cost,
                                   cache2, &disk2);
    EXPECT_EQ(cost_calls.load(), 0);
    EXPECT_EQ(shuttle.run(*s3).cycles, sched_cycles);

    // Corrupt envelope bytes: checksum rejects, search re-runs and
    // overwrites.
    {
        const std::string path = disk2.pathFor("sched", search_key);
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(12);
        f.write("\xde\xad\xbe\xef", 4);
    }
    isa::clearSchedMemoForTest();
    cost_calls = 0;
    isa::DiskCache disk3(dir, "test-fp");
    isa::ProgramCache cache3(&disk3);
    auto s4 = isa::scheduledStream(model_key, prog_key, baseline, cost,
                                   cache3, &disk3);
    EXPECT_GT(cost_calls.load(), 0);
    EXPECT_EQ(shuttle.run(*s4).cycles, sched_cycles);

    // Valid envelope holding an undecodable payload: decode fails,
    // search re-runs and overwrites with a good blob.
    disk3.put("sched", search_key, "garbage payload");
    isa::clearSchedMemoForTest();
    cost_calls = 0;
    auto s5 = isa::scheduledStream(model_key, prog_key, baseline, cost,
                                   cache3, &disk3);
    EXPECT_GT(cost_calls.load(), 0);
    EXPECT_EQ(shuttle.run(*s5).cycles, sched_cycles);
    isa::clearSchedMemoForTest();
    cost_calls = 0;
    auto s6 = isa::scheduledStream(model_key, prog_key, baseline, cost,
                                   cache3, &disk3);
    EXPECT_EQ(cost_calls.load(), 0);
    EXPECT_EQ(shuttle.run(*s6).cycles, sched_cycles);
}

TEST(ScheduledStream, CountersAndKeySuffixLive)
{
    // RTOC_SCHED=1 in this binary: the key suffix is non-empty and
    // the schedule counters exist on the registry after use.
    EXPECT_EQ(isa::schedKeySuffix(),
              csprintf("|sched:v1:cap%d", isa::schedCap()));
    obs::Snapshot snap = obs::Registry::global().snapshot();
    EXPECT_GT(snap.get("sched.searches"), 0u);
    EXPECT_GT(snap.get("sched.candidates_scored"), 0u);
}

} // namespace
} // namespace rtoc
