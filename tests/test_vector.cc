/**
 * @file
 * Tests for the Saturn vector-machine model: DLEN occupancy scaling,
 * LMUL whole-group sequencing, chaining, frontend coupling (Rocket vs
 * Shuttle), queue back-pressure and scalar-read synchronization —
 * each of which carries one of the paper's §4.1/§5.1.2 findings.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "vector/saturn.hh"

namespace rtoc::vector {
namespace {

using isa::kNoReg;
using isa::Program;
using isa::Uop;
using isa::UopKind;

/** Stream of n independent vector adds of VL elements. */
Program
vecStream(int n, int vl, uint16_t lmul8 = 8)
{
    Program p;
    for (int i = 0; i < n; ++i) {
        p.push(Uop::vec(UopKind::VArith, p.newVReg(), kNoReg, kNoReg,
                        static_cast<uint32_t>(vl), lmul8));
    }
    return p;
}

TEST(Saturn, WiderDlenFasterOnLongVectors)
{
    Program p = vecStream(40, 64);
    SaturnModel d128(SaturnConfig::make(512, 128, false));
    SaturnModel d256(SaturnConfig::make(512, 256, false));
    EXPECT_LT(d256.run(p).cycles, d128.run(p).cycles);
}

TEST(Saturn, ShortVectorsDlenInsensitive)
{
    // VL=4 fits one beat on both datapaths (paper §5.1.5: iterative
    // TinyMPC kernels cannot exploit DLEN=256).
    Program p = vecStream(40, 4);
    SaturnModel d128(SaturnConfig::make(512, 128, false));
    SaturnModel d256(SaturnConfig::make(512, 256, false));
    EXPECT_EQ(d256.run(p).cycles, d128.run(p).cycles);
}

TEST(Saturn, LmulGroupingWalksWholeGroup)
{
    // Same 12 live elements: with LMUL=4 the instruction occupies the
    // whole 4-register group (Fig. 4's iterative-kernel degradation).
    SaturnModel m(SaturnConfig::make(512, 128, false));
    Program lm1 = vecStream(64, 12, 8);
    Program lm4 = vecStream(64, 12, 32);
    EXPECT_GT(m.run(lm4).cycles, m.run(lm1).cycles);
}

TEST(Saturn, LmulReducesInstructionCountWins)
{
    // Full-length elementwise work with realistic per-instruction
    // scalar bookkeeping (address generation, strip-loop branch): one
    // LMUL=4 instruction covering 4x the elements beats four LMUL=1
    // instructions because the frontend issues 4x fewer scalar ops
    // (Fig. 4's elementwise improvement).
    auto make = [](int n, int vl, uint16_t lmul8) {
        Program p;
        for (int i = 0; i < n; ++i) {
            uint32_t addr = p.newReg();
            p.push(Uop::scalar(UopKind::IntAlu, addr));
            p.push(Uop::vec(UopKind::VLoad, p.newVReg(), addr, kNoReg,
                            static_cast<uint32_t>(vl), lmul8));
            p.push(Uop::vec(UopKind::VArith, p.newVReg(), kNoReg,
                            kNoReg, static_cast<uint32_t>(vl), lmul8));
            Uop br = Uop::scalar(UopKind::Branch, kNoReg);
            br.taken = i + 1 < n;
            p.push(br);
        }
        return p;
    };
    SaturnModel m(SaturnConfig::make(512, 256, false));
    int elems = 512 / 32; // one register worth
    Program lm1 = make(64, elems, 8);
    Program lm4 = make(16, elems * 4, 32);
    EXPECT_LT(m.run(lm4).cycles, m.run(lm1).cycles);
}

TEST(Saturn, ShuttleFrontendHelpsShortKernels)
{
    // Interleaved scalar addressing + short vector ops: single-issue
    // Rocket starves the vector unit (Fig. 11).
    Program p;
    for (int i = 0; i < 60; ++i) {
        uint32_t addr = p.newReg();
        p.push(Uop::scalar(UopKind::IntAlu, addr));
        uint32_t x = p.newReg();
        p.push(Uop::mem(UopKind::Load, x, addr));
        Uop fma = Uop::vec(UopKind::VFma, p.newVReg(), kNoReg, kNoReg, 12);
        fma.src2 = x;
        p.push(fma);
    }
    SaturnModel rocket_fe(SaturnConfig::make(512, 256, false));
    SaturnModel shuttle_fe(SaturnConfig::make(512, 256, true));
    auto rr = rocket_fe.run(p);
    auto rs = shuttle_fe.run(p);
    EXPECT_LT(rs.cycles, rr.cycles);
}

TEST(Saturn, ChainingBeatsSerializedConsumption)
{
    // Producer -> consumer chains: with chaining the dependent stream
    // costs far less than sum of full latencies.
    Program p;
    uint32_t v = p.newVReg();
    p.push(Uop::vec(UopKind::VLoad, v, kNoReg, kNoReg, 64));
    int n = 30;
    for (int i = 0; i < n; ++i) {
        uint32_t nv = p.newVReg();
        p.push(Uop::vec(UopKind::VArith, nv, v, kNoReg, 64));
        v = nv;
    }
    SaturnModel m(SaturnConfig::make(512, 256, false));
    auto r = m.run(p);
    // Serialized: each op waits ~ (pipeLat + beats) = 12 -> 360+.
    EXPECT_LT(r.cycles, 300u);
}

TEST(Saturn, StridedLoadOneElementPerCycle)
{
    Program unit, strided;
    unit.push(Uop::vec(UopKind::VLoad, unit.newVReg(), kNoReg, kNoReg,
                       32));
    strided.push(Uop::vec(UopKind::VLoadStrided, strided.newVReg(),
                          kNoReg, kNoReg, 32));
    SaturnModel m(SaturnConfig::make(512, 256, false));
    EXPECT_GT(m.run(strided).cycles, m.run(unit).cycles);
}

TEST(Saturn, ReductionSynchronizesScalarConsumer)
{
    Program p;
    uint32_t v = p.newVReg();
    p.push(Uop::vec(UopKind::VLoad, v, kNoReg, kNoReg, 64));
    uint32_t s = p.newReg();
    p.push(Uop::vec(UopKind::VRed, s, v, kNoReg, 64));
    uint32_t t = p.newReg();
    p.push(Uop::scalar(UopKind::FpAdd, t, s)); // depends on reduction
    SaturnModel m(SaturnConfig::make(512, 256, false));
    auto r = m.run(p);
    // The scalar add cannot issue before the reduction completes.
    EXPECT_GT(r.cycles, 10u);
    EXPECT_GT(r.stats.get("stall_data"), 0u);
}

TEST(Saturn, QueueBackPressureThrottlesFrontend)
{
    SaturnConfig cfg = SaturnConfig::make(512, 128, false);
    cfg.vqDepth = 2;
    SaturnModel shallow(cfg);
    SaturnModel deep(SaturnConfig::make(512, 128, false));
    Program p = vecStream(100, 128); // long-occupancy ops
    auto rs = shallow.run(p);
    auto rd = deep.run(p);
    EXPECT_GE(rs.stats.get("stall_vq_full"), rd.stats.get("stall_vq_full"));
}

TEST(Saturn, VsetvlNearFree)
{
    Program p;
    for (int i = 0; i < 50; ++i) {
        Uop vs;
        vs.kind = UopKind::VSetVl;
        vs.dst = p.newReg();
        vs.vl = 16;
        p.push(vs);
    }
    SaturnModel m(SaturnConfig::make(512, 256, false));
    EXPECT_LE(m.run(p).cycles, 60u);
}

TEST(Saturn, Deterministic)
{
    Program p = vecStream(64, 32);
    SaturnModel m(SaturnConfig::make(512, 256, true));
    EXPECT_EQ(m.run(p).cycles, m.run(p).cycles);
}

TEST(Saturn, NameEncodesConfig)
{
    SaturnModel m(SaturnConfig::make(512, 256, true));
    EXPECT_EQ(m.name(), "saturn-v512d256-shuttle");
    EXPECT_EQ(m.vlmax(), 16);
}

} // namespace
} // namespace rtoc::vector
