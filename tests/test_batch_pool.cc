/**
 * @file
 * Tests for the batched design-point replay path and the
 * work-stealing thread pool.
 *
 * Batched replay: runStreamBatch must be bit-identical to sequential
 * per-config runStream for every timing family, across emission
 * styles and >=8-config design sweeps (the batched loops are separate
 * transliterations of the single-lane loops, so equality is pinned
 * here rather than assumed). ReplayBatch grouping must preserve add()
 * order and fall back to the sequential base on mixed-family groups.
 *
 * Pool: work stealing makes execution order nondeterministic; these
 * tests pin what must NOT change — every index runs exactly once,
 * results are independent of thread count (1/4/7), grain, and
 * adversarial task-length skew, nested submits run inline, and
 * exceptions propagate while the range still drains.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "common/thread_pool.hh"
#include "cpu/inorder.hh"
#include "cpu/ooo.hh"
#include "cpu/replay_batch.hh"
#include "hil/sweep.hh"
#include "hil/timing.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "systolic/gemmini.hh"
#include "vector/saturn.hh"

namespace rtoc {
namespace {

using cpu::TimingModel;
using cpu::TimingResult;

/** Batched results must match sequential runStream bit-for-bit. */
void
expectBatchMatchesSequential(const isa::Program &prog,
                             const std::vector<const TimingModel *> &models,
                             const char *label)
{
    ASSERT_FALSE(models.empty());
    std::vector<TimingResult> batch =
        models.front()->runStreamBatch(prog.stream(), models);
    ASSERT_EQ(batch.size(), models.size()) << label;
    for (size_t i = 0; i < models.size(); ++i) {
        TimingResult seq = models[i]->runStream(prog.stream());
        EXPECT_EQ(batch[i].cycles, seq.cycles)
            << label << " config " << i << " ("
            << models[i]->name() << ")";
        ASSERT_EQ(batch[i].regionCycles.size(), seq.regionCycles.size())
            << label << " config " << i;
        for (size_t r = 0; r < seq.regionCycles.size(); ++r) {
            EXPECT_EQ(batch[i].regionCycles[r], seq.regionCycles[r])
                << label << " config " << i << " region " << r;
        }
        // The stat counters (stall breakdowns, fence/queue telemetry)
        // are part of the bit-exactness contract too.
        EXPECT_EQ(batch[i].stats.counters(), seq.stats.counters())
            << label << " config " << i << " stats";
    }
}

std::vector<cpu::InOrderConfig>
inOrderSweep()
{
    using cpu::InOrderConfig;
    std::vector<InOrderConfig> cfgs = {InOrderConfig::rocket(),
                                       InOrderConfig::shuttle()};
    // Design axes: issue width, FPU/mem ports, latency tables.
    InOrderConfig c = InOrderConfig::shuttle();
    c.name = "shuttle-2fpu";
    c.fpuCount = 2;
    cfgs.push_back(c);
    c = InOrderConfig::shuttle();
    c.name = "shuttle-2mem";
    c.memPorts = 2;
    cfgs.push_back(c);
    c = InOrderConfig::rocket();
    c.name = "rocket-slowld";
    c.loadLatency = 6;
    cfgs.push_back(c);
    c = InOrderConfig::rocket();
    c.name = "rocket-fastfp";
    c.fpLatency = 2;
    cfgs.push_back(c);
    c = InOrderConfig::shuttle();
    c.name = "shuttle-wide";
    c.issueWidth = 4;
    c.fpuCount = 2;
    c.memPorts = 2;
    cfgs.push_back(c);
    c = InOrderConfig::rocket();
    c.name = "rocket-bb5";
    c.branchBubble = 5;
    c.fpDivLatency = 24;
    cfgs.push_back(c);
    return cfgs;
}

TEST(BatchedReplay, InOrderFamilyAcrossStylesAndConfigs)
{
    for (auto style : {tinympc::MappingStyle::Library,
                       tinympc::MappingStyle::LibraryPerStep,
                       tinympc::MappingStyle::Fused}) {
        matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
        auto prog = bench::emitQuadSolveCached(b, style);

        std::vector<std::unique_ptr<cpu::InOrderCore>> cores;
        std::vector<const TimingModel *> models;
        for (const auto &cfg : inOrderSweep()) {
            cores.push_back(std::make_unique<cpu::InOrderCore>(cfg));
            models.push_back(cores.back().get());
        }
        ASSERT_GE(models.size(), 8u);
        expectBatchMatchesSequential(*prog, models, "inorder");
    }
}

TEST(BatchedReplay, OooFamilyAcrossStylesAndConfigs)
{
    using cpu::OooConfig;
    for (auto style : {tinympc::MappingStyle::Library,
                       tinympc::MappingStyle::Fused}) {
        matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
        auto prog = bench::emitQuadSolveCached(b, style);

        std::vector<OooConfig> cfgs = {
            OooConfig::boomSmall(), OooConfig::boomMedium(),
            OooConfig::boomLarge(), OooConfig::boomMega()};
        OooConfig c = OooConfig::boomSmall();
        c.name = "boom-tiny-rob";
        c.robSize = 8;
        cfgs.push_back(c);
        c = OooConfig::boomMedium();
        c.name = "boom-slow-ld";
        c.loadLatency = 7;
        cfgs.push_back(c);
        c = OooConfig::boomLarge();
        c.name = "boom-slow-fp";
        c.fpLatency = 8;
        cfgs.push_back(c);
        c = OooConfig::boomMega();
        c.name = "boom-narrow-int";
        c.intIssue = 1;
        cfgs.push_back(c);

        std::vector<std::unique_ptr<cpu::OooCore>> cores;
        std::vector<const TimingModel *> models;
        for (const auto &cfg : cfgs) {
            cores.push_back(std::make_unique<cpu::OooCore>(cfg));
            models.push_back(cores.back().get());
        }
        ASSERT_GE(models.size(), 8u);
        expectBatchMatchesSequential(*prog, models, "ooo");
    }
}

TEST(BatchedReplay, SaturnFamilyAcrossStylesAndConfigs)
{
    using vector::SaturnConfig;
    for (auto style : {tinympc::MappingStyle::Library,
                       tinympc::MappingStyle::Fused}) {
        matlib::RvvBackend b(512, matlib::RvvMapping::handOptimized());
        auto prog = bench::emitQuadSolveCached(b, style);

        std::vector<SaturnConfig> cfgs = {
            SaturnConfig::make(256, 128, false),
            SaturnConfig::make(512, 128, false),
            SaturnConfig::make(256, 128, true),
            SaturnConfig::make(512, 256, false),
            SaturnConfig::make(512, 128, true),
            SaturnConfig::make(512, 256, true)};
        SaturnConfig c = SaturnConfig::make(512, 256, true);
        c.name += "-vq2";
        c.vqDepth = 2;
        cfgs.push_back(c);
        c = SaturnConfig::make(512, 256, false);
        c.name += "-slowmem";
        c.memLat = 14;
        c.chainLat = 4;
        cfgs.push_back(c);
        // Non-power-of-two datapath exercises the division fallback.
        c = SaturnConfig::make(512, 192, true);
        cfgs.push_back(c);
        // Lane-major queue corners: the minimum queue depth forces a
        // back-pressure drain on nearly every vector op in that lane
        // while deeper lanes run free, and a deep queue with slow
        // scalar moves skews the chain/epilogue timing between lanes.
        c = SaturnConfig::make(256, 128, true);
        c.name += "-vq1";
        c.vqDepth = 1;
        cfgs.push_back(c);
        c = SaturnConfig::make(512, 128, false);
        c.name += "-vq16-slowsm";
        c.vqDepth = 16;
        c.scalarMoveLat = 9;
        cfgs.push_back(c);
        c = SaturnConfig::make(256, 128, false);
        c.name += "-deeppipe";
        c.pipeLat = 11;
        c.chainLat = 1;
        cfgs.push_back(c);

        std::vector<std::unique_ptr<vector::SaturnModel>> ms;
        std::vector<const TimingModel *> models;
        for (const auto &cfg : cfgs) {
            ms.push_back(std::make_unique<vector::SaturnModel>(cfg));
            models.push_back(ms.back().get());
        }
        ASSERT_GE(models.size(), 8u);
        expectBatchMatchesSequential(*prog, models, "saturn");
    }
}

TEST(BatchedReplay, GemminiFamilyAcrossStylesAndConfigs)
{
    using systolic::GemminiConfig;
    for (auto style : {tinympc::MappingStyle::Library,
                       tinympc::MappingStyle::LibraryPerStep}) {
        matlib::GemminiBackend b(
            matlib::GemminiMapping::fullyOptimized());
        auto prog = bench::emitQuadSolveCached(b, style);

        std::vector<GemminiConfig> cfgs = {
            GemminiConfig::os4x4(64), GemminiConfig::os4x4(32),
            GemminiConfig::ws4x4(64), GemminiConfig::os4x4HwGemv(64)};
        GemminiConfig c = GemminiConfig::os4x4(64);
        c.name += "-rob4";
        c.robDepth = 4;
        cfgs.push_back(c);
        c = GemminiConfig::os4x4(64);
        c.name += "-slowdma";
        c.dmaFixed = 90;
        c.fenceMemPenalty = 1200;
        cfgs.push_back(c);
        c = GemminiConfig::os4x4(64);
        c.name += "-bus8";
        c.busBytes = 8;
        cfgs.push_back(c);
        // Non-power-of-two bus exercises the division fallback.
        c = GemminiConfig::os4x4(64);
        c.name += "-bus12";
        c.busBytes = 12;
        cfgs.push_back(c);

        std::vector<std::unique_ptr<systolic::GemminiModel>> ms;
        std::vector<const TimingModel *> models;
        for (const auto &cfg : cfgs) {
            ms.push_back(std::make_unique<systolic::GemminiModel>(cfg));
            models.push_back(ms.back().get());
        }
        ASSERT_GE(models.size(), 8u);
        expectBatchMatchesSequential(*prog, models, "gemmini");
    }
}

TEST(BatchedReplay, ReplayBatchGroupsMixedFamiliesInAddOrder)
{
    matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
    auto prog =
        bench::emitQuadSolveCached(b, tinympc::MappingStyle::Library);

    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    cpu::OooCore boom(cpu::OooConfig::boomMedium());
    cpu::InOrderCore shuttle(cpu::InOrderConfig::shuttle());
    cpu::OooCore mega(cpu::OooConfig::boomMega());

    // Interleaved add order: grouping must scatter results back.
    cpu::ReplayBatch batch;
    batch.add(rocket);
    batch.add(boom);
    batch.add(shuttle);
    batch.add(mega);
    std::vector<TimingResult> got = batch.run(*prog);

    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got[0].cycles, rocket.run(*prog).cycles);
    EXPECT_EQ(got[1].cycles, boom.run(*prog).cycles);
    EXPECT_EQ(got[2].cycles, shuttle.run(*prog).cycles);
    EXPECT_EQ(got[3].cycles, mega.run(*prog).cycles);
}

TEST(BatchedReplay, MixedFamilyGroupFallsBackToSequential)
{
    matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
    auto prog =
        bench::emitQuadSolveCached(b, tinympc::MappingStyle::Library);

    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    cpu::OooCore boom(cpu::OooConfig::boomSmall());
    // Dispatch a deliberately mixed group at an InOrderCore: the
    // family driver must reject it and fall back, not crash or
    // misattribute lanes.
    std::vector<const TimingModel *> group = {&rocket, &boom};
    std::vector<TimingResult> got =
        rocket.runStreamBatch(prog->stream(), group);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].cycles, rocket.run(*prog).cycles);
    EXPECT_EQ(got[1].cycles, boom.run(*prog).cycles);
}

TEST(BatchedReplay, BatchCalibrationMatchesSequential)
{
    plant::QuadrotorPlant plant(quad::DroneParams::crazyflie());
    std::vector<cpu::InOrderConfig> cfgs = inOrderSweep();
    std::vector<std::unique_ptr<cpu::InOrderCore>> cores;
    std::vector<const TimingModel *> models;
    for (const auto &cfg : cfgs) {
        cores.push_back(std::make_unique<cpu::InOrderCore>(cfg));
        models.push_back(cores.back().get());
    }

    // Disk bypassed on both paths: this pins the batched fit itself.
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    std::vector<hil::ControllerTiming> batch = hil::calibrateTimingBatch(
        models, backend, tinympc::MappingStyle::Library, plant, 0.02,
        10, nullptr);
    ASSERT_EQ(batch.size(), models.size());
    for (size_t i = 0; i < models.size(); ++i) {
        matlib::ScalarBackend sb(matlib::ScalarFlavor::Optimized);
        hil::ControllerTiming seq = hil::calibrateTiming(
            *models[i], sb, tinympc::MappingStyle::Library, plant, 0.02,
            10, nullptr);
        EXPECT_EQ(batch[i].baseCycles, seq.baseCycles) << i;
        EXPECT_EQ(batch[i].cyclesPerIter, seq.cyclesPerIter) << i;
        EXPECT_EQ(batch[i].archName, seq.archName) << i;
    }
}

// --- work-stealing pool ---

/** Deterministic per-index work with adversarial length skew. */
uint64_t
skewedTask(size_t i)
{
    // A few long poles (sleep) between many short tasks: the shape
    // that starves a single-queue pool's tail and that stealing must
    // absorb.
    if (i % 11 == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    uint64_t h = 0x9e3779b97f4a7c15ull ^ (i * 0x2545f4914f6cdd1dull);
    h ^= h >> 29;
    return h;
}

TEST(WorkStealingPool, SkewedTasksDeterministicAcrossThreadCounts)
{
    const size_t n = 67;
    std::vector<uint64_t> expect(n);
    for (size_t i = 0; i < n; ++i)
        expect[i] = skewedTask(i);

    for (int threads : {1, 4, 7}) {
        ThreadPool pool(threads);
        std::vector<uint64_t> got(n, 0);
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h = 0;
        pool.parallelFor(n, [&](size_t i) {
            got[i] = skewedTask(i);
            ++hits[i];
        });
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(hits[i].load(), 1)
                << "threads=" << threads << " index " << i;
            EXPECT_EQ(got[i], expect[i])
                << "threads=" << threads << " index " << i;
        }
    }
}

TEST(WorkStealingPool, GrainDoesNotChangeResults)
{
    const size_t n = 53;
    std::vector<uint64_t> expect(n);
    for (size_t i = 0; i < n; ++i)
        expect[i] = skewedTask(i);

    ThreadPool pool(4);
    for (size_t grain : {size_t(1), size_t(3), size_t(16), size_t(100)}) {
        std::vector<uint64_t> got(n, 0);
        std::vector<std::atomic<int>> hits(n);
        for (auto &h : hits)
            h = 0;
        pool.parallelFor(
            n,
            [&](size_t i) {
                got[i] = skewedTask(i);
                ++hits[i];
            },
            grain);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "grain=" << grain;
            EXPECT_EQ(got[i], expect[i]) << "grain=" << grain;
        }
    }
}

TEST(WorkStealingPool, NestedSubmitUnderSkewRunsInline)
{
    for (int threads : {1, 4, 7}) {
        ThreadPool pool(threads);
        std::atomic<int> total{0};
        pool.parallelFor(13, [&](size_t i) {
            if (i % 5 == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            pool.parallelFor(7, [&](size_t) { ++total; });
        });
        EXPECT_EQ(total.load(), 13 * 7) << "threads=" << threads;
    }
}

TEST(WorkStealingPool, ExceptionPropagatesAndRangeDrains)
{
    ThreadPool pool(4);
    // Grain > 1 matters: the throwing index must not abort the rest
    // of its grain chunk (the sweep's auto grain batches episodes).
    for (size_t grain : {size_t(1), size_t(4), size_t(31)}) {
        std::vector<std::atomic<int>> hits(31);
        for (auto &h : hits)
            h = 0;
        EXPECT_THROW(pool.parallelFor(
                         hits.size(),
                         [&](size_t i) {
                             ++hits[i];
                             if (i == 7)
                                 throw std::runtime_error("boom");
                         },
                         grain),
                     std::runtime_error);
        // The whole range still drained exactly once each.
        for (auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "grain=" << grain;
    }
    // The pool survives and stays usable.
    std::atomic<int> n{0};
    pool.parallelFor(9, [&](size_t) { ++n; });
    EXPECT_EQ(n.load(), 9);
}

TEST(WorkStealingPool, StealingActuallyMigratesWork)
{
    // One pole task 100x longer than the rest: with stealing, total
    // wall time approaches the pole, not pole + rest. Verify the
    // mechanism (not wall time, which is flaky on CI): record which
    // thread ran each index and require at least two distinct threads
    // to have executed tasks from the pole-owner's initial block.
    ThreadPool pool(4);
    const size_t n = 64;
    std::vector<std::thread::id> ran(n);
    pool.parallelFor(n, [&](size_t i) {
        if (i == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ran[i] = std::this_thread::get_id();
    });
    // Participant 0 (the caller) owns block [0, 16) and is stuck on
    // index 0; the rest of its block must have been stolen.
    std::set<std::thread::id> block0_threads(ran.begin(),
                                             ran.begin() + 16);
    EXPECT_GE(block0_threads.size(), 2u)
        << "no stealing observed on the skewed block";
}

// --- sweep grain ---

TEST(SweepGrain, DefaultGrainHeuristic)
{
    EXPECT_EQ(hil::SweepRunner::defaultGrain(0, 1), 1u);
    EXPECT_EQ(hil::SweepRunner::defaultGrain(64, 1), 64u); // serial
    EXPECT_EQ(hil::SweepRunner::defaultGrain(6, 4), 1u);
    EXPECT_EQ(hil::SweepRunner::defaultGrain(64, 4), 4u);
    EXPECT_EQ(hil::SweepRunner::defaultGrain(1000, 8), 31u);
}

TEST(SweepGrain, ChunkedEpisodesBitIdenticalToSerial)
{
    quad::DroneParams drone = quad::DroneParams::crazyflie();
    hil::HilConfig cfg;
    cfg.timing = hil::vectorControllerTiming(drone, 0.02, 10);
    cfg.socFreqHz = 100e6;

    ThreadPool serial(1);
    auto base = hil::SweepRunner(serial).runEpisodes(
        drone, quad::Difficulty::Easy, 6, cfg);

    ThreadPool pooled(4);
    for (int grain : {1, 2, 5}) {
        auto got = hil::SweepRunner(pooled).setGrain(grain).runEpisodes(
            drone, quad::Difficulty::Easy, 6, cfg);
        ASSERT_EQ(got.size(), base.size()) << "grain=" << grain;
        for (size_t i = 0; i < base.size(); ++i) {
            EXPECT_EQ(got[i].success, base[i].success) << i;
            EXPECT_EQ(got[i].missionTimeS, base[i].missionTimeS) << i;
            EXPECT_EQ(got[i].rotorEnergyJ, base[i].rotorEnergyJ) << i;
            EXPECT_EQ(got[i].socEnergyJ, base[i].socEnergyJ) << i;
        }
    }
}

} // namespace
} // namespace rtoc
