/**
 * @file
 * Cross-module integration tests: end-to-end pipelines that mirror
 * the paper's experiments at reduced scale — architecture ordering on
 * the full solver, the HIL frequency/architecture interaction, the
 * concurrency study arithmetic, and SWaP variant behaviour.
 */

#include <gtest/gtest.h>

#include "cpu/inorder.hh"
#include "cpu/ooo.hh"
#include "dronet/dronet.hh"
#include "hil/episode.hh"
#include "hil/timing.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "soc/rtos.hh"
#include "systolic/gemmini.hh"
#include "tinympc/solver.hh"
#include "vector/saturn.hh"

namespace rtoc {
namespace {

/** Emit a 5-iteration quadrotor solve with the given backend/style. */
isa::Program
emitSolve(matlib::Backend &backend, tinympc::MappingStyle style)
{
    quad::DroneParams drone = quad::DroneParams::crazyflie();
    tinympc::Workspace ws = quad::buildQuadWorkspace(drone, 0.02, 10);
    ws.settings.maxIters = 5;
    ws.settings.priTol = 0.0f;
    ws.settings.duaTol = 0.0f;
    isa::Program prog;
    backend.setProgram(&prog);
    tinympc::Solver solver(ws, backend, style);
    solver.setup();
    float x0[12] = {0.4f, -0.2f, 0.9f, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    ws.setInitialState(x0);
    solver.solve();
    backend.setProgram(nullptr);
    return prog;
}

TEST(EndToEnd, ArchitectureOrderingOnFullSolver)
{
    // Eigen-scalar on Rocket (baseline) vs hand-optimized RVV on the
    // big Saturn vs optimized Gemmini: specialized architectures win
    // end-to-end (Fig. 10/13).
    matlib::ScalarBackend scalar_b(matlib::ScalarFlavor::Optimized);
    isa::Program p_scalar =
        emitSolve(scalar_b, tinympc::MappingStyle::Library);
    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    uint64_t c_scalar = rocket.run(p_scalar).cycles;

    matlib::RvvBackend rvv_b(512, matlib::RvvMapping::handOptimized());
    isa::Program p_vec = emitSolve(rvv_b, tinympc::MappingStyle::Fused);
    vector::SaturnModel saturn(
        vector::SaturnConfig::make(512, 256, true));
    uint64_t c_vec = saturn.run(p_vec).cycles;

    matlib::GemminiBackend gem_b(
        matlib::GemminiMapping::fullyOptimized());
    isa::Program p_gem =
        emitSolve(gem_b, tinympc::MappingStyle::Library);
    systolic::GemminiModel gemmini(systolic::GemminiConfig::os4x4());
    uint64_t c_gem = gemmini.run(p_gem).cycles;

    EXPECT_LT(c_vec, c_scalar);
    EXPECT_LT(c_gem, c_scalar);
    // Paper magnitude: vector is several times faster end-to-end.
    EXPECT_GT(static_cast<double>(c_scalar) / c_vec, 3.0);
}

TEST(EndToEnd, NaiveMatlibScalarIsTheWorstMapping)
{
    matlib::ScalarBackend naive(matlib::ScalarFlavor::Naive);
    matlib::ScalarBackend eigen(matlib::ScalarFlavor::Optimized);
    isa::Program pn = emitSolve(naive, tinympc::MappingStyle::Library);
    isa::Program pe = emitSolve(eigen, tinympc::MappingStyle::Library);
    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    EXPECT_GT(rocket.run(pn).cycles, rocket.run(pe).cycles);
}

TEST(EndToEnd, OutOfBoxVectorLosesToEigenScalar)
{
    // Fig. 3: vectorized matlib (library mode) on Saturn loses to
    // hand-optimized scalar Eigen on Rocket... on the iterative
    // kernels; end-to-end it's comparable, and only hand-optimized
    // RVV wins clearly. Check the hand-optimized stream wins by >2x
    // over the library stream on the same hardware.
    matlib::RvvBackend lib(512, matlib::RvvMapping::library());
    matlib::RvvBackend opt(512, matlib::RvvMapping::handOptimized());
    isa::Program pl = emitSolve(lib, tinympc::MappingStyle::Library);
    isa::Program po = emitSolve(opt, tinympc::MappingStyle::Fused);
    vector::SaturnModel saturn(
        vector::SaturnConfig::make(512, 256, false));
    uint64_t cl = saturn.run(pl).cycles;
    uint64_t co = saturn.run(po).cycles;
    EXPECT_GT(static_cast<double>(cl) / co, 2.0);
}

TEST(EndToEnd, GemminiOptimizationLadder)
{
    // Fig. 6/7/12: baseline -> static -> scratchpad-resident ->
    // +elementwise+pool must be monotonically faster.
    systolic::GemminiModel gemmini(systolic::GemminiConfig::os4x4());

    matlib::GemminiBackend b0(matlib::GemminiMapping::baseline());
    matlib::GemminiBackend b1(matlib::GemminiMapping::staticMapped());
    matlib::GemminiBackend b2(
        matlib::GemminiMapping::fullyOptimized());

    uint64_t c0 = gemmini
                      .run(emitSolve(b0, tinympc::MappingStyle::Library))
                      .cycles;
    uint64_t c1 = gemmini
                      .run(emitSolve(b1, tinympc::MappingStyle::Library))
                      .cycles;
    uint64_t c2 = gemmini
                      .run(emitSolve(b2, tinympc::MappingStyle::Library))
                      .cycles;
    EXPECT_LT(c1, c0);
    EXPECT_LT(c2, c1);
    EXPECT_GT(static_cast<double>(c0) / c2, 3.0);
}

TEST(EndToEnd, BoomScalingShowsDiminishingReturns)
{
    // §5.1.1: bigger BOOMs help, but the gain from Large -> Mega is
    // smaller than Small -> Medium (dependency-bound GEMVs).
    matlib::ScalarBackend eigen(matlib::ScalarFlavor::Optimized);
    isa::Program p = emitSolve(eigen, tinympc::MappingStyle::Library);
    uint64_t small = cpu::OooCore(cpu::OooConfig::boomSmall()).run(p).cycles;
    uint64_t medium =
        cpu::OooCore(cpu::OooConfig::boomMedium()).run(p).cycles;
    uint64_t large =
        cpu::OooCore(cpu::OooConfig::boomLarge()).run(p).cycles;
    uint64_t mega = cpu::OooCore(cpu::OooConfig::boomMega()).run(p).cycles;
    EXPECT_LT(mega, small);
    double first_step = static_cast<double>(small) / medium;
    double last_step = static_cast<double>(large) / mega;
    EXPECT_GT(first_step, last_step);
}

TEST(EndToEnd, ConcurrencyStudyArithmetic)
{
    // §5.3 on our own calibrated numbers: swapping scalar MPC for
    // vector MPC must raise DroNet FPS by >1.2x.
    quad::DroneParams cf = quad::DroneParams::crazyflie();
    hil::ControllerTiming ts = hil::scalarControllerTiming(cf, 0.02, 10);
    hil::ControllerTiming tv = hil::vectorControllerTiming(cf, 0.02, 10);

    double dronet =
        dronet::CnnCostModel::vectorized(256).cyclesPerFrame();
    soc::PeriodicTask mpc_s{"mpc", 0.02, ts.solveCycles(25)};
    soc::PeriodicTask mpc_v{"mpc", 0.02, tv.solveCycles(25)};
    auto rs = soc::simulateSchedule(mpc_s, dronet, 100e6, 10.0);
    auto rv = soc::simulateSchedule(mpc_v, dronet, 100e6, 10.0);
    EXPECT_GT(rs.periodicUtilization, rv.periodicUtilization * 4);
    EXPECT_GT(rv.backgroundFps / rs.backgroundFps, 1.1);
}

TEST(EndToEnd, HawkNeedsComputeHeronDoesNot)
{
    // §5.4: Hawk completes hard tasks only with the accelerated
    // (vector) implementation at 100 MHz — the scalar baseline at the
    // same frequency cannot; Heron is insensitive to compute speed
    // and flies fine on a *low-frequency* vector SoC.
    quad::DroneParams hawk = quad::DroneParams::hawk();
    quad::DroneParams heron = quad::DroneParams::heron();

    quad::Scenario hard0 = quad::makeScenario(quad::Difficulty::Hard, 0);
    quad::Scenario easy0 = quad::makeScenario(quad::Difficulty::Easy, 0);

    hil::HilConfig hawk_scalar;
    hawk_scalar.socFreqHz = 100e6;
    hawk_scalar.timing = hil::scalarControllerTiming(hawk, 0.02, 10);
    hil::EpisodeResult hawk_s = hil::runEpisode(hawk, hard0, hawk_scalar);

    hil::HilConfig hawk_vector;
    hawk_vector.socFreqHz = 100e6;
    hawk_vector.timing = hil::vectorControllerTiming(hawk, 0.02, 10);
    hil::EpisodeResult hawk_v = hil::runEpisode(hawk, hard0, hawk_vector);

    hil::HilConfig heron_lowfreq;
    heron_lowfreq.socFreqHz = 50e6;
    heron_lowfreq.timing = hil::vectorControllerTiming(heron, 0.02, 10);
    hil::EpisodeResult heron_v =
        hil::runEpisode(heron, easy0, heron_lowfreq);

    EXPECT_TRUE(hawk_v.success);
    EXPECT_FALSE(hawk_s.success);
    EXPECT_TRUE(heron_v.success);
}

} // namespace
} // namespace rtoc
