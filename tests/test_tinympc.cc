/**
 * @file
 * TinyMPC solver tests: ADMM convergence, constraint satisfaction,
 * tracking behaviour, bit-exact equivalence of Library vs Fused
 * mapping styles and across backends, warm-start iteration savings,
 * and kernel-region instrumentation (the Fig. 1 FLOP breakdown).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "cpu/inorder.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "quad/linearize.hh"
#include "tinympc/solver.hh"
#include "vector/saturn.hh"

namespace rtoc::tinympc {
namespace {

using numerics::DMatrix;

/** Double-integrator workspace for fast, well-understood tests. */
Workspace
doubleIntegratorWs(int horizon, float u_limit)
{
    DMatrix a(2, 2, {1, 0.05, 0, 1});
    DMatrix b(2, 1, {0.00125, 0.05});
    std::vector<double> q_diag = {10.0, 1.0};
    DMatrix q = DMatrix::diag(q_diag);
    DMatrix r = DMatrix::diag({0.5});
    double rho = 1.0;
    numerics::LqrCache cache = numerics::solveDare(a, b, q, r, rho);

    Workspace ws = Workspace::allocate(2, 1, horizon);
    ws.settings.rho = static_cast<float>(rho);
    ws.settings.maxIters = 100;
    ws.settings.checkTermination = 5;
    ws.loadCache(a, b, cache, q_diag);
    ws.setInputBounds({-u_limit}, {u_limit});
    ws.setReferenceAll({0.0f, 0.0f});
    return ws;
}

TEST(Solver, ConvergesOnDoubleIntegrator)
{
    Workspace ws = doubleIntegratorWs(15, 10.0f);
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    Solver solver(ws, backend, MappingStyle::Library);
    float x0[2] = {1.0f, 0.0f};
    ws.setInitialState(x0);
    SolveResult res = solver.solve();
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.primalResidualState, ws.settings.priTol);
    EXPECT_LT(res.primalResidualInput, ws.settings.priTol);
}

TEST(Solver, RespectsInputBounds)
{
    // Tight input limit: every planned input within bounds (via the
    // slack variables; the raw u converges toward them).
    Workspace ws = doubleIntegratorWs(15, 0.3f);
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    Solver solver(ws, backend, MappingStyle::Library);
    float x0[2] = {2.0f, 0.0f};
    ws.setInitialState(x0);
    SolveResult res = solver.solve();
    for (int i = 0; i < ws.N - 1; ++i) {
        EXPECT_LE(ws.znew.view().at(i, 0), 0.3f + 1e-4f);
        EXPECT_GE(ws.znew.view().at(i, 0), -0.3f - 1e-4f);
    }
    // Constrained problem: the first input saturates near the bound.
    EXPECT_TRUE(res.iterations > 0);
    EXPECT_LT(std::fabs(ws.u.view().at(0, 0)),
              0.3f + 0.05f);
}

TEST(Solver, ClosedLoopRegulatesToOrigin)
{
    Workspace ws = doubleIntegratorWs(15, 5.0f);
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    Solver solver(ws, backend, MappingStyle::Library);

    float x[2] = {1.5f, 0.0f};
    for (int step = 0; step < 200; ++step) {
        ws.setInitialState(x);
        solver.solve();
        float u = ws.u.view().at(0, 0);
        float nx = x[0] + 0.05f * x[1] + 0.00125f * u;
        float nv = x[1] + 0.05f * u;
        x[0] = nx;
        x[1] = nv;
    }
    EXPECT_LT(std::fabs(x[0]), 0.05f);
    EXPECT_LT(std::fabs(x[1]), 0.05f);
}

TEST(Solver, UnconstrainedMatchesLqrGain)
{
    // With inactive bounds, converged ADMM solves the *original*
    // problem (the rho penalty terms cancel at the fixed point), so
    // the first input approximates the unaugmented LQR feedback --
    // not the rho-augmented Kinf used inside the solver.
    Workspace ws = doubleIntegratorWs(25, 100.0f);
    ws.settings.maxIters = 500;
    ws.settings.checkTermination = 1;
    ws.settings.priTol = 1e-6f;
    ws.settings.duaTol = 1e-6f;
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    Solver solver(ws, backend, MappingStyle::Library);
    float x0[2] = {0.5f, -0.3f};
    ws.setInitialState(x0);
    solver.solve();

    DMatrix a(2, 2, {1, 0.05, 0, 1});
    DMatrix b(2, 1, {0.00125, 0.05});
    numerics::LqrCache plain = numerics::solveDare(
        a, b, DMatrix::diag({10.0, 1.0}), DMatrix::diag({0.5}), 0.0);
    double lqr_u = -(plain.kinf(0, 0) * 0.5 + plain.kinf(0, 1) * -0.3);
    EXPECT_NEAR(ws.u.view().at(0, 0), lqr_u, 0.08);
}

/** All (backend, style) pairs must agree bit-exactly. */
class SolverEquivalence : public ::testing::TestWithParam<int>
{};

TEST_P(SolverEquivalence, MappingsProduceIdenticalSolutions)
{
    int variant = GetParam();

    auto solve_with = [&](matlib::Backend &backend, MappingStyle style,
                          std::vector<float> &u_out) {
        Workspace ws = doubleIntegratorWs(12, 0.5f);
        ws.settings.maxIters = 30;
        Solver solver(ws, backend, style);
        solver.setup();
        float x0[2] = {1.2f, -0.4f};
        ws.setInitialState(x0);
        solver.solve();
        for (int i = 0; i < ws.N - 1; ++i)
            u_out.push_back(ws.u.view().at(i, 0));
    };

    std::vector<float> base, test;
    matlib::ScalarBackend ref_backend(matlib::ScalarFlavor::Naive);
    solve_with(ref_backend, MappingStyle::Library, base);

    switch (variant) {
      case 0: {
        matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
        solve_with(b, MappingStyle::Library, test);
        break;
      }
      case 1: {
        matlib::RvvBackend b(512, matlib::RvvMapping::library());
        solve_with(b, MappingStyle::Library, test);
        break;
      }
      case 2: {
        matlib::RvvBackend b(512, matlib::RvvMapping::handOptimized());
        solve_with(b, MappingStyle::Fused, test);
        break;
      }
      case 3: {
        matlib::GemminiBackend b(
            matlib::GemminiMapping::fullyOptimized());
        solve_with(b, MappingStyle::Library, test);
        break;
      }
      default: {
        matlib::GemminiBackend b(matlib::GemminiMapping::baseline());
        solve_with(b, MappingStyle::Library, test);
        break;
      }
    }
    EXPECT_EQ(base, test);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SolverEquivalence,
                         ::testing::Range(0, 5));

TEST(Solver, WarmStartReducesIterations)
{
    Workspace ws = doubleIntegratorWs(15, 0.5f);
    ws.settings.maxIters = 100;
    ws.settings.checkTermination = 1;
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    Solver solver(ws, backend, MappingStyle::Library);

    float x0[2] = {1.0f, 0.0f};
    ws.setInitialState(x0);
    SolveResult cold = solver.solve();

    // Re-solve from a nearby state with retained duals/trajectories.
    float x1[2] = {0.98f, -0.02f};
    ws.setInitialState(x1);
    SolveResult warm = solver.solve();
    EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(Solver, EmitsAllPaperKernels)
{
    Workspace ws = doubleIntegratorWs(10, 0.5f);
    ws.settings.maxIters = 5;
    ws.settings.checkTermination = 5;
    ws.settings.priTol = 0.0f;
    ws.settings.duaTol = 0.0f;
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    isa::Program prog;
    backend.setProgram(&prog);
    Solver solver(ws, backend, MappingStyle::Library);
    float x0[2] = {1.0f, 0.0f};
    ws.setInitialState(x0);
    solver.solve();
    backend.setProgram(nullptr);

    std::set<std::string> names;
    for (const auto &k : prog.kernels())
        names.insert(k.name());
    for (const char *expected :
         {"forward_pass_1", "forward_pass_2", "update_slack_1",
          "update_slack_2", "update_dual_1", "update_linear_cost_1",
          "update_linear_cost_2", "update_linear_cost_3",
          "update_linear_cost_4", "backward_pass_1", "backward_pass_2",
          "primal_residual_state", "dual_residual_state",
          "primal_residual_input", "dual_residual_input"}) {
        EXPECT_TRUE(names.count(expected)) << expected;
    }
}

TEST(Solver, IterativeKernelsDominateFlops)
{
    // Fig. 1: forward/backward passes dominate the FLOP budget.
    quad::DroneParams drone = quad::DroneParams::crazyflie();
    Workspace ws = quad::buildQuadWorkspace(drone, 0.02, 10);
    ws.settings.maxIters = 5;
    ws.settings.priTol = 0.0f;
    ws.settings.duaTol = 0.0f;
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    isa::Program prog;
    backend.setProgram(&prog);
    Solver solver(ws, backend, MappingStyle::Library);
    float x0[12] = {0.5f, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
    ws.setInitialState(x0);
    solver.solve();

    double iterative = 0.0, total = 0.0;
    for (const auto &region : prog.kernels()) {
        double flops = 0.0;
        for (size_t i = region.begin; i < region.end; ++i) {
            const auto &u = prog.uops()[i];
            double per = isa::flopsPerElement(u.kind);
            flops += isa::isVector(u.kind) ? per * u.vl : per;
        }
        total += flops;
        if (region.name().rfind("forward_pass", 0) == 0 ||
            region.name().rfind("backward_pass", 0) == 0)
            iterative += flops;
    }
    EXPECT_GT(total, 0.0);
    EXPECT_GT(iterative / total, 0.5);
}

TEST(Solver, FusedFasterThanLibraryOnSaturn)
{
    // The headline §4.1 result: hand-optimization (fusion + unroll +
    // layout) gives a substantial speedup over library mapping.
    quad::DroneParams drone = quad::DroneParams::crazyflie();

    auto emit = [&](matlib::Backend &b, MappingStyle style) {
        Workspace ws = quad::buildQuadWorkspace(drone, 0.02, 10);
        ws.settings.maxIters = 5;
        ws.settings.priTol = 0.0f;
        ws.settings.duaTol = 0.0f;
        isa::Program prog;
        b.setProgram(&prog);
        Solver solver(ws, b, style);
        float x0[12] = {0.5f, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0};
        ws.setInitialState(x0);
        solver.solve();
        b.setProgram(nullptr);
        return prog;
    };

    matlib::RvvBackend lib(512, matlib::RvvMapping::library());
    matlib::RvvBackend opt(512, matlib::RvvMapping::handOptimized());
    isa::Program plib = emit(lib, MappingStyle::Library);
    isa::Program popt = emit(opt, MappingStyle::Fused);

    vector::SaturnModel saturn(vector::SaturnConfig::make(512, 256, false));
    auto clib = saturn.run(plib).cycles;
    auto copt = saturn.run(popt).cycles;
    EXPECT_LT(copt, clib);
    // Paper: up to 3.71x; require at least 2x here.
    EXPECT_GT(static_cast<double>(clib) / copt, 2.0);
}

TEST(Solver, GemminiRejectsFusedEmission)
{
    // ROADMAP open item resolved: the Gemmini CISC constraints make
    // the hand-optimized Fused structure unrealizable, so *emitting*
    // it is an explicit fatal error...
    EXPECT_EXIT(
        {
            Workspace ws = doubleIntegratorWs(10, 1.0f);
            matlib::GemminiBackend b(
                matlib::GemminiMapping::fullyOptimized());
            isa::Program prog;
            b.setProgram(&prog);
            Solver solver(ws, b, MappingStyle::Fused);
            solver.solve();
        },
        ::testing::ExitedWithCode(1), "cannot emit MappingStyle::Fused");

    // ...while the purely functional Fused solve (no attached
    // Program) and Library-style emission both remain legal.
    {
        Workspace ws = doubleIntegratorWs(10, 1.0f);
        matlib::GemminiBackend b(
            matlib::GemminiMapping::fullyOptimized());
        EXPECT_FALSE(b.supportsFusedEmission());
        Solver solver(ws, b, MappingStyle::Fused);
        float x0[2] = {1.0f, 0.0f};
        ws.setInitialState(x0);
        SolveResult res = solver.solve();
        EXPECT_GT(res.iterations, 0);
    }
    {
        Workspace ws = doubleIntegratorWs(10, 1.0f);
        matlib::GemminiBackend b(
            matlib::GemminiMapping::fullyOptimized());
        isa::Program prog;
        b.setProgram(&prog);
        Solver solver(ws, b, MappingStyle::Library);
        solver.setup();
        float x0[2] = {1.0f, 0.0f};
        ws.setInitialState(x0);
        solver.solve();
        b.setProgram(nullptr);
        EXPECT_GT(prog.uops().size(), 0u);
    }
}

TEST(Workspace, AllocateValidatesDims)
{
    EXPECT_EXIT({ Workspace::allocate(0, 1, 5); },
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT({ Workspace::allocate(2, 1, 1); },
                ::testing::ExitedWithCode(1), "");
}

TEST(Workspace, ColdStartZeroesState)
{
    Workspace ws = doubleIntegratorWs(10, 1.0f);
    ws.y.view().at(0, 0) = 3.0f;
    ws.x.view().at(2, 1) = -1.0f;
    ws.coldStart();
    EXPECT_EQ(ws.y.view().at(0, 0), 0.0f);
    EXPECT_EQ(ws.x.view().at(2, 1), 0.0f);
}

} // namespace
} // namespace rtoc::tinympc
