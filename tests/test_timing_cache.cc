/**
 * @file
 * Tests for the columnar micro-op stream refactor and the persistent
 * program/calibration cache: SoA-vs-AoS bit-exact cycle counts on all
 * four timing-model families x mapping styles, column/view fidelity,
 * disk round-trips (cold write -> warm read with zero re-emissions),
 * corrupt and fingerprint-mismatched file rejection, the RTOC_CACHE=0
 * bypass, and registry-driven episode counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cpu/inorder.hh"
#include "cpu/ooo.hh"
#include "hil/timing.hh"
#include "isa/disk_cache.hh"
#include "isa/program_cache.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "plant/quad_plant.hh"
#include "plant/registry.hh"
#include "systolic/gemmini.hh"
#include "vector/saturn.hh"

namespace rtoc {
namespace {

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/rtoc-cache-test-XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "/tmp/rtoc-cache-test-fallback";
}

bool
samePrograms(const isa::Program &a, const isa::Program &b)
{
    if (a.size() != b.size() || a.kernels().size() != b.kernels().size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const isa::Uop &x = a.uops()[i];
        const isa::Uop &y = b.uops()[i];
        if (x.kind != y.kind || x.dst != y.dst || x.src0 != y.src0 ||
            x.src1 != y.src1 || x.src2 != y.src2 || x.vl != y.vl ||
            x.sew != y.sew || x.lmul8 != y.lmul8 ||
            x.bytes != y.bytes || x.rows != y.rows ||
            x.cols != y.cols || x.taken != y.taken) {
            return false;
        }
    }
    for (size_t i = 0; i < a.kernels().size(); ++i) {
        const auto &ka = a.kernels()[i];
        const auto &kb = b.kernels()[i];
        if (ka.id != kb.id || ka.begin != kb.begin || ka.end != kb.end)
            return false;
    }
    return true;
}

void
expectRunsMatch(const cpu::TimingModel &model, const isa::Program &prog,
                const std::string &label)
{
    cpu::TimingResult soa = model.run(prog);
    cpu::TimingResult aos = model.runAos(prog);
    EXPECT_EQ(static_cast<uint64_t>(soa.cycles),
              static_cast<uint64_t>(aos.cycles))
        << label;
    ASSERT_EQ(soa.regionCycles.size(), aos.regionCycles.size()) << label;
    for (size_t i = 0; i < soa.regionCycles.size(); ++i) {
        ASSERT_EQ(soa.regionCycles[i], aos.regionCycles[i])
            << label << " region " << i;
    }
}

// --- SoA vs AoS bit-exactness, all four model families ---

TEST(UopStream, SoaMatchesAosOnScalarModels)
{
    using tinympc::MappingStyle;
    for (auto style : {MappingStyle::Library, MappingStyle::LibraryPerStep,
                       MappingStyle::Fused}) {
        matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
        auto prog = bench::emitQuadSolveCached(b, style);
        std::string tag = "style " + std::to_string(static_cast<int>(style));
        expectRunsMatch(cpu::InOrderCore(cpu::InOrderConfig::rocket()),
                        *prog, "rocket " + tag);
        expectRunsMatch(cpu::InOrderCore(cpu::InOrderConfig::shuttle()),
                        *prog, "shuttle " + tag);
        expectRunsMatch(cpu::OooCore(cpu::OooConfig::boomSmall()), *prog,
                        "boom-small " + tag);
        expectRunsMatch(cpu::OooCore(cpu::OooConfig::boomMega()), *prog,
                        "boom-mega " + tag);
    }
}

TEST(UopStream, SoaMatchesAosOnSaturn)
{
    using tinympc::MappingStyle;
    for (auto style : {MappingStyle::Library, MappingStyle::LibraryPerStep,
                       MappingStyle::Fused}) {
        matlib::RvvBackend b(512, matlib::RvvMapping::handOptimized());
        auto prog = bench::emitQuadSolveCached(b, style);
        std::string tag = "style " + std::to_string(static_cast<int>(style));
        expectRunsMatch(
            vector::SaturnModel(vector::SaturnConfig::make(512, 256, false)),
            *prog, "saturn-rocket " + tag);
        expectRunsMatch(
            vector::SaturnModel(vector::SaturnConfig::make(512, 256, true)),
            *prog, "saturn-shuttle " + tag);
    }
}

TEST(UopStream, SoaMatchesAosOnGemmini)
{
    using tinympc::MappingStyle;
    for (auto style :
         {MappingStyle::Library, MappingStyle::LibraryPerStep}) {
        matlib::GemminiBackend b(matlib::GemminiMapping::fullyOptimized());
        auto prog = bench::emitQuadSolveCached(b, style);
        std::string tag = "style " + std::to_string(static_cast<int>(style));
        expectRunsMatch(
            systolic::GemminiModel(systolic::GemminiConfig::os4x4(64)),
            *prog, "os4x4 " + tag);
        expectRunsMatch(
            systolic::GemminiModel(systolic::GemminiConfig::ws4x4(64)),
            *prog, "ws4x4 " + tag);
        expectRunsMatch(
            systolic::GemminiModel(
                systolic::GemminiConfig::os4x4HwGemv(64)),
            *prog, "os4x4hwgemv " + tag);
    }
}

// --- column store fidelity ---

TEST(UopStream, ViewColumnsMirrorAosFields)
{
    matlib::RvvBackend b(512, matlib::RvvMapping::handOptimized());
    auto prog =
        bench::emitQuadSolveCached(b, tinympc::MappingStyle::Fused);
    isa::UopStreamView v = prog->stream();
    ASSERT_EQ(v.n, prog->size());
    EXPECT_EQ(v.program, prog.get());
    for (size_t i = 0; i < v.n; ++i) {
        const isa::Uop &u = prog->uops()[i];
        ASSERT_EQ(v.kind[i], u.kind) << i;
        ASSERT_EQ(v.cls[i], isa::decodeClass(u.kind)) << i;
        ASSERT_EQ((v.cls[i] & isa::kClsScalar) != 0, isa::isScalar(u.kind))
            << i;
        ASSERT_EQ(v.dst[i], u.dst) << i;
        ASSERT_EQ(v.src0[i], u.src0) << i;
        ASSERT_EQ(v.src1[i], u.src1) << i;
        ASSERT_EQ(v.src2[i], u.src2) << i;
        ASSERT_EQ(v.vl[i], u.vl) << i;
        ASSERT_EQ(v.sew[i], u.sew) << i;
        ASSERT_EQ(v.lmul8[i], u.lmul8) << i;
        ASSERT_EQ(v.bytes[i], u.bytes) << i;
        ASSERT_EQ(v.rows[i], u.rows) << i;
        ASSERT_EQ(v.cols[i], u.cols) << i;
        ASSERT_EQ(v.taken[i], u.taken) << i;
    }
}

TEST(UopStream, MutationInvalidatesColumns)
{
    isa::Program p;
    p.push(isa::Uop::scalar(isa::UopKind::IntAlu, p.newReg()));
    isa::UopStreamView v1 = p.stream();
    EXPECT_EQ(v1.n, 1u);
    p.push(isa::Uop::scalar(isa::UopKind::FpAdd, p.newReg()));
    isa::UopStreamView v2 = p.stream();
    EXPECT_EQ(v2.n, 2u);
    EXPECT_EQ(v2.kind[1], isa::UopKind::FpAdd);

    // Copies rebuild their own columns.
    isa::Program q(p);
    isa::UopStreamView vq = q.stream();
    EXPECT_EQ(vq.n, 2u);
    EXPECT_EQ(vq.program, &q);
    EXPECT_NE(q.id(), p.id());
}

// --- program serialization + disk cache ---

TEST(DiskCache, ProgramPayloadRoundTrip)
{
    matlib::GemminiBackend b(matlib::GemminiMapping::fullyOptimized());
    isa::Program prog =
        bench::emitQuadSolve(b, tinympc::MappingStyle::Library, 2);
    std::string payload = isa::encodeProgram(prog);
    auto back = isa::decodeProgram(payload);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(samePrograms(prog, *back));
    EXPECT_EQ(back->scalarRegCount(), prog.scalarRegCount());
    EXPECT_EQ(back->vectorRegCount(), prog.vectorRegCount());
}

TEST(DiskCache, MalformedPayloadRejected)
{
    EXPECT_FALSE(isa::decodeProgram("").has_value());
    EXPECT_FALSE(isa::decodeProgram("garbage").has_value());
    // A valid payload truncated mid-stream must not decode.
    matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
    isa::Program prog =
        bench::emitQuadSolve(b, tinympc::MappingStyle::Library, 2);
    std::string payload = isa::encodeProgram(prog);
    EXPECT_FALSE(
        isa::decodeProgram(payload.substr(0, payload.size() / 2))
            .has_value());
}

TEST(DiskCache, ColdWriteWarmReadWithZeroEmissions)
{
    const std::string dir = makeTempDir();
    isa::DiskCache disk(dir, "test-fp");

    // Cold process: the emitter runs once and the stream is persisted.
    isa::ProgramCache cold(&disk);
    int emissions = 0;
    auto emit = [&](isa::Program &p) {
        ++emissions;
        matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
        p = bench::emitQuadSolve(b, tinympc::MappingStyle::Library, 2);
    };
    auto first = cold.getOrEmit("k", emit);
    EXPECT_EQ(emissions, 1);
    EXPECT_EQ(cold.stats().emissions, 1u);
    EXPECT_EQ(disk.stats().writes, 1u);

    // Warm process (fresh in-memory cache, same directory): the
    // stream comes back bit-identical without invoking the emitter.
    isa::ProgramCache warm(&disk);
    auto second = warm.getOrEmit("k", [&](isa::Program &) {
        ADD_FAILURE() << "warm read must not re-emit";
    });
    ASSERT_TRUE(second != nullptr);
    EXPECT_TRUE(samePrograms(*first, *second));
    EXPECT_EQ(warm.stats().emissions, 0u);
    EXPECT_EQ(warm.stats().diskHits, 1u);
}

TEST(DiskCache, CorruptFileRejectedAndRegenerated)
{
    const std::string dir = makeTempDir();
    isa::DiskCache disk(dir, "test-fp");
    isa::ProgramCache cold(&disk);
    auto emit = [&](isa::Program &p) {
        matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
        p = bench::emitQuadSolve(b, tinympc::MappingStyle::Library, 2);
    };
    auto first = cold.getOrEmit("k", emit);

    // Flip bytes in the middle of the file: the checksum must reject
    // it, delete it, and the next process regenerates.
    const std::string path = disk.pathFor("prog", "k");
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(200);
        f.write("\xde\xad\xbe\xef", 4);
    }
    isa::DiskCache disk2(dir, "test-fp");
    isa::ProgramCache warm(&disk2);
    int emissions = 0;
    auto reemit = [&](isa::Program &p) {
        ++emissions;
        matlib::ScalarBackend b(matlib::ScalarFlavor::Optimized);
        p = bench::emitQuadSolve(b, tinympc::MappingStyle::Library, 2);
    };
    auto second = warm.getOrEmit("k", reemit);
    EXPECT_EQ(emissions, 1);
    EXPECT_EQ(disk2.stats().rejected, 1u);
    EXPECT_TRUE(samePrograms(*first, *second));

    // The regenerated file is valid again.
    isa::DiskCache disk3(dir, "test-fp");
    isa::ProgramCache again(&disk3);
    auto third = again.getOrEmit("k", [&](isa::Program &) {
        ADD_FAILURE() << "regenerated file must serve the warm read";
    });
    EXPECT_TRUE(samePrograms(*first, *third));
}

TEST(DiskCache, FingerprintMismatchInvalidates)
{
    const std::string dir = makeTempDir();
    isa::DiskCache old_build(dir, "fingerprint-A");
    old_build.put("prog", "k", "payload-bytes");
    ASSERT_TRUE(old_build.get("prog", "k").has_value());

    // A different build fingerprint must treat the file as stale.
    isa::DiskCache new_build(dir, "fingerprint-B");
    EXPECT_FALSE(new_build.get("prog", "k").has_value());
    EXPECT_EQ(new_build.stats().rejected, 1u);
    // ... and the stale file is gone, so the next probe is a miss.
    isa::DiskCache probe(dir, "fingerprint-B");
    EXPECT_FALSE(probe.get("prog", "k").has_value());
    EXPECT_EQ(probe.stats().misses, 1u);
}

TEST(DiskCache, EnvControls)
{
    // Preserve the ambient configuration.
    const char *old_cache = std::getenv("RTOC_CACHE");
    const char *old_dir = std::getenv("RTOC_CACHE_DIR");
    std::string saved_cache = old_cache ? old_cache : "";
    std::string saved_dir = old_dir ? old_dir : "";

    setenv("RTOC_CACHE_DIR", "/tmp/rtoc-env-test", 1);
    unsetenv("RTOC_CACHE");
    isa::DiskCache enabled = isa::DiskCache::fromEnv();
    EXPECT_TRUE(enabled.enabled());
    EXPECT_EQ(enabled.dir(), "/tmp/rtoc-env-test");

    // RTOC_CACHE=0 bypasses persistence even with a directory set.
    setenv("RTOC_CACHE", "0", 1);
    isa::DiskCache disabled = isa::DiskCache::fromEnv();
    EXPECT_FALSE(disabled.enabled());
    disabled.put("prog", "k", "payload");
    EXPECT_FALSE(disabled.get("prog", "k").has_value());
    EXPECT_EQ(disabled.stats().writes, 0u);

    if (!saved_cache.empty())
        setenv("RTOC_CACHE", saved_cache.c_str(), 1);
    else
        unsetenv("RTOC_CACHE");
    if (!saved_dir.empty())
        setenv("RTOC_CACHE_DIR", saved_dir.c_str(), 1);
    else
        unsetenv("RTOC_CACHE_DIR");
}

// --- calibration persistence ---

TEST(CalibCache, TimingPayloadRoundTrip)
{
    hil::ControllerTiming t;
    t.archName = "shuttle";
    t.mappingName = "scalar-opt";
    t.baseCycles = 12345.6789;
    t.cyclesPerIter = 98765.4321;
    auto back = hil::decodeTiming(hil::encodeTiming(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->archName, t.archName);
    EXPECT_EQ(back->mappingName, t.mappingName);
    EXPECT_EQ(back->baseCycles, t.baseCycles);
    EXPECT_EQ(back->cyclesPerIter, t.cyclesPerIter);
    EXPECT_FALSE(hil::decodeTiming("junk").has_value());
}

TEST(CalibCache, ColdWriteWarmReadIdenticalTiming)
{
    const std::string dir = makeTempDir();
    isa::DiskCache disk(dir, "test-fp");
    plant::QuadrotorPlant plant;
    cpu::InOrderCore shuttle(cpu::InOrderConfig::shuttle());
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);

    hil::CalibCacheStats before = hil::calibCacheStats();
    hil::ControllerTiming cold = hil::calibrateTiming(
        shuttle, backend, tinympc::MappingStyle::Library, plant, 0.02,
        10, &disk);
    hil::CalibCacheStats mid = hil::calibCacheStats();
    EXPECT_EQ(mid.computes, before.computes + 1);
    EXPECT_EQ(disk.stats().writes, 1u);

    // Warm read: served from disk, bit-identical fit, no replay.
    hil::ControllerTiming warm = hil::calibrateTiming(
        shuttle, backend, tinympc::MappingStyle::Library, plant, 0.02,
        10, &disk);
    hil::CalibCacheStats after = hil::calibCacheStats();
    EXPECT_EQ(after.computes, mid.computes);
    EXPECT_EQ(after.diskHits, mid.diskHits + 1);
    EXPECT_EQ(warm.archName, cold.archName);
    EXPECT_EQ(warm.mappingName, cold.mappingName);
    EXPECT_EQ(warm.baseCycles, cold.baseCycles);
    EXPECT_EQ(warm.cyclesPerIter, cold.cyclesPerIter);

    // A corrupt calibration file is rejected and recomputed to the
    // same deterministic fit.
    const std::string path = disk.pathFor(
        "calib", csprintf("%s|%s|style%d|nx%d|nu%d|dt%.17g|h%d",
                          shuttle.cacheKey().c_str(),
                          backend.cacheKey().c_str(),
                          static_cast<int>(
                              tinympc::MappingStyle::Library),
                          plant.nx(), plant.nu(), 0.02, 10));
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekp(30);
        f.write("\x42\x42", 2);
    }
    isa::DiskCache disk2(dir, "test-fp");
    hil::ControllerTiming redo = hil::calibrateTiming(
        shuttle, backend, tinympc::MappingStyle::Library, plant, 0.02,
        10, &disk2);
    EXPECT_EQ(disk2.stats().rejected, 1u);
    EXPECT_EQ(redo.baseCycles, cold.baseCycles);
    EXPECT_EQ(redo.cyclesPerIter, cold.cyclesPerIter);

    // nullptr bypasses persistence entirely.
    hil::CalibCacheStats pre_null = hil::calibCacheStats();
    hil::ControllerTiming direct = hil::calibrateTiming(
        shuttle, backend, tinympc::MappingStyle::Library, plant, 0.02,
        10, nullptr);
    EXPECT_EQ(hil::calibCacheStats().computes, pre_null.computes + 1);
    EXPECT_EQ(direct.baseCycles, cold.baseCycles);
}

// --- registry-driven episode counts ---

TEST(Registry, SpecsCarryEpisodeCounts)
{
    auto specs = plant::ScenarioRegistry::global().specs();
    ASSERT_FALSE(specs.empty());
    for (const auto &s : specs)
        EXPECT_EQ(s.episodes, s.prototype->defaultEpisodes()) << s.id;

    // An explicit spec may override the plant default, and find()
    // surfaces it to sweep drivers.
    plant::ScenarioSpec custom = specs.front();
    custom.id = "quadrotor-episode-override-test";
    custom.episodes = 3;
    plant::ScenarioRegistry::global().addSpec(custom);
    auto found = plant::ScenarioRegistry::global().find(
        "quadrotor-episode-override-test");
    ASSERT_TRUE(found != nullptr);
    EXPECT_EQ(found->episodes, 3);
}

} // namespace
} // namespace rtoc
