/**
 * @file
 * matlib tests: reference-kernel correctness, bit-exact functional
 * equivalence across all four backends (the paper's invariant that
 * software mappings change timing, never semantics), and emission
 * properties (fusion removes loads/stores, static scheduling shrinks
 * command construction, optimized scalar beats naive).
 */

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "cpu/inorder.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"

namespace rtoc::matlib {
namespace {

/** Owned random-filled matrix for tests. */
struct TestMat
{
    std::vector<float> data;
    int rows, cols;

    TestMat(int r, int c, Rng &rng, float scale = 1.0f)
        : data(static_cast<size_t>(r) * c), rows(r), cols(c)
    {
        for (auto &v : data)
            v = static_cast<float>(rng.uniform(-1.0, 1.0)) * scale;
    }

    Mat view() { return {data.data(), rows, cols}; }
};

TEST(Ref, GemvKnownValues)
{
    float a_data[] = {1, 2, 3, 4};
    float x_data[] = {1, 1};
    float y_data[] = {0, 0};
    Mat a(a_data, 2, 2), x(x_data, 1, 2), y(y_data, 1, 2);
    ref::gemv(y, a, x, 1.0f, 0.0f);
    EXPECT_FLOAT_EQ(y[0], 3.0f);
    EXPECT_FLOAT_EQ(y[1], 7.0f);
}

TEST(Ref, GemvAlphaBeta)
{
    float a_data[] = {1, 0, 0, 1};
    float x_data[] = {2, 3};
    float y_data[] = {10, 20};
    Mat a(a_data, 2, 2), x(x_data, 1, 2), y(y_data, 1, 2);
    ref::gemv(y, a, x, 2.0f, 1.0f);
    EXPECT_FLOAT_EQ(y[0], 14.0f);
    EXPECT_FLOAT_EQ(y[1], 26.0f);
}

TEST(Ref, GemvTMatchesExplicitTranspose)
{
    Rng rng(5);
    TestMat a(4, 6, rng);
    TestMat x(1, 4, rng);
    TestMat y1(1, 6, rng), y2(1, 6, rng);
    ref::gemvT(y1.view(), a.view(), x.view(), 1.0f, 0.0f);
    // Explicit transpose.
    std::vector<float> at_data(24);
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 6; ++j)
            at_data[static_cast<size_t>(j) * 4 + i] = a.view().at(i, j);
    Mat at(at_data.data(), 6, 4);
    ref::gemv(y2.view(), at, x.view(), 1.0f, 0.0f);
    for (int j = 0; j < 6; ++j)
        EXPECT_FLOAT_EQ(y1.view()[j], y2.view()[j]);
}

TEST(Ref, ClampOrdering)
{
    float a_data[] = {-5, 0, 5};
    float out_data[3];
    Mat a(a_data, 1, 3), out(out_data, 1, 3);
    ref::clampConst(out, a, -1.0f, 1.0f);
    EXPECT_FLOAT_EQ(out[0], -1.0f);
    EXPECT_FLOAT_EQ(out[1], 0.0f);
    EXPECT_FLOAT_EQ(out[2], 1.0f);
}

TEST(Ref, AbsMaxDiff)
{
    float a_data[] = {1, -2, 3};
    float b_data[] = {1, 2, 2};
    Mat a(a_data, 1, 3), b(b_data, 1, 3);
    EXPECT_FLOAT_EQ(ref::absMaxDiff(a, b), 4.0f);
}

TEST(Ref, RowScaleNeg)
{
    float a_data[] = {1, 2, 3, 4};
    float d_data[] = {10, 100};
    float out_data[4];
    Mat a(a_data, 2, 2), d(d_data, 1, 2), out(out_data, 2, 2);
    ref::rowScaleNeg(out, a, d);
    EXPECT_FLOAT_EQ(out.at(0, 0), -10.0f);
    EXPECT_FLOAT_EQ(out.at(0, 1), -200.0f);
    EXPECT_FLOAT_EQ(out.at(1, 0), -30.0f);
    EXPECT_FLOAT_EQ(out.at(1, 1), -400.0f);
}

/** Build every backend for the equivalence suite. */
std::vector<std::unique_ptr<Backend>>
allBackends()
{
    std::vector<std::unique_ptr<Backend>> v;
    v.push_back(
        std::make_unique<ScalarBackend>(ScalarFlavor::Naive));
    v.push_back(
        std::make_unique<ScalarBackend>(ScalarFlavor::Optimized));
    v.push_back(std::make_unique<RvvBackend>(512, RvvMapping::library()));
    v.push_back(
        std::make_unique<RvvBackend>(512, RvvMapping::handOptimized()));
    v.push_back(
        std::make_unique<GemminiBackend>(GemminiMapping::baseline()));
    v.push_back(std::make_unique<GemminiBackend>(
        GemminiMapping::fullyOptimized()));
    return v;
}

/** Parameterized over (m, n) operand shapes. */
class BackendEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>>
{};

TEST_P(BackendEquivalence, AllOpsBitExactAcrossBackends)
{
    auto [m, n] = GetParam();
    Rng rng(42 + m * 131 + n);
    TestMat a(m, n, rng);
    TestMat x(1, n, rng);
    TestMat b_vec(1, m, rng);
    TestMat lo(1, m, rng, 0.1f);
    TestMat hi(1, m, rng, 0.1f);
    for (int i = 0; i < m; ++i) {
        float l = lo.view()[i], h = hi.view()[i];
        lo.view()[i] = std::fmin(l, h) - 0.5f;
        hi.view()[i] = std::fmax(l, h) + 0.5f;
    }

    // Golden results via the reference backend (naive scalar).
    auto backends = allBackends();
    std::vector<std::vector<float>> gemv_results;
    std::vector<std::vector<float>> clamp_results;
    std::vector<float> red_results;

    for (auto &backend : backends) {
        std::vector<float> y(static_cast<size_t>(m), 0.5f);
        Mat ym(y.data(), 1, m);
        backend->gemv(ym, a.view(), x.view(), -1.0f, 1.0f);
        gemv_results.push_back(y);

        std::vector<float> c(static_cast<size_t>(m));
        Mat cm(c.data(), 1, m);
        backend->clampVec(cm, b_vec.view(), lo.view(), hi.view());
        clamp_results.push_back(c);

        red_results.push_back(
            backend->absMaxDiff(b_vec.view(), cm));
    }
    for (size_t k = 1; k < backends.size(); ++k) {
        EXPECT_EQ(gemv_results[k], gemv_results[0])
            << backends[k]->name();
        EXPECT_EQ(clamp_results[k], clamp_results[0])
            << backends[k]->name();
        EXPECT_EQ(red_results[k], red_results[0])
            << backends[k]->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BackendEquivalence,
    ::testing::Values(std::pair{4, 4}, std::pair{4, 12},
                      std::pair{12, 4}, std::pair{12, 12},
                      std::pair{1, 16}, std::pair{17, 3},
                      std::pair{32, 32}));

TEST(Emission, NoProgramMeansNoEmission)
{
    Rng rng(1);
    TestMat a(4, 4, rng), x(1, 4, rng), y(1, 4, rng);
    ScalarBackend b(ScalarFlavor::Optimized);
    b.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f); // must not crash
    EXPECT_EQ(b.program(), nullptr);
}

TEST(Emission, OptimizedScalarFewerUopsThanNaive)
{
    Rng rng(2);
    TestMat a(12, 12, rng), x(1, 12, rng), y(1, 12, rng);
    isa::Program pn, po;
    ScalarBackend naive(ScalarFlavor::Naive);
    ScalarBackend opt(ScalarFlavor::Optimized);
    naive.setProgram(&pn);
    opt.setProgram(&po);
    naive.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
    opt.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
    EXPECT_LT(po.size(), pn.size());
}

TEST(Emission, OptimizedScalarFasterOnRocket)
{
    Rng rng(3);
    TestMat a(12, 12, rng), x(1, 12, rng), y(1, 12, rng);
    isa::Program pn, po;
    ScalarBackend naive(ScalarFlavor::Naive);
    ScalarBackend opt(ScalarFlavor::Optimized);
    naive.setProgram(&pn);
    opt.setProgram(&po);
    for (int rep = 0; rep < 5; ++rep) {
        naive.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
        opt.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
    }
    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    EXPECT_LT(rocket.run(po).cycles, rocket.run(pn).cycles);
}

TEST(Emission, FusionRemovesIntermediateTraffic)
{
    Rng rng(4);
    TestMat a(1, 12, rng), b(1, 12, rng), c(1, 12, rng);
    TestMat t1(1, 12, rng), t2(1, 12, rng);

    auto count_mem = [](const isa::Program &p) {
        size_t n = 0;
        for (const auto &u : p.uops())
            if (u.kind == isa::UopKind::VLoad ||
                u.kind == isa::UopKind::VStore)
                ++n;
        return n;
    };

    // Chain: t1 = a+b; t2 = t1+c; t1 consumed immediately.
    isa::Program plib, pfused;
    RvvBackend lib(512, RvvMapping::library());
    RvvBackend fused(512, RvvMapping::handOptimized());
    lib.setProgram(&plib);
    fused.setProgram(&pfused);

    lib.add(t1.view(), a.view(), b.view());
    lib.add(t2.view(), t1.view(), c.view());

    fused.beginFuse();
    fused.add(t1.view(), a.view(), b.view());
    fused.add(t2.view(), t1.view(), c.view());
    fused.endFuse();

    EXPECT_LT(count_mem(pfused), count_mem(plib));
}

TEST(Emission, FusionWritebackPreservesResults)
{
    // Fused path must still produce the same memory contents after
    // endFuse (the writeback of dirty registers).
    Rng rng(6);
    TestMat a(1, 8, rng), b(1, 8, rng);
    TestMat out_lib(1, 8, rng), out_fused(1, 8, rng);

    isa::Program p1, p2;
    RvvBackend lib(512, RvvMapping::library());
    RvvBackend fused(512, RvvMapping::handOptimized());
    lib.setProgram(&p1);
    fused.setProgram(&p2);

    lib.add(out_lib.view(), a.view(), b.view());
    fused.beginFuse();
    fused.add(out_fused.view(), a.view(), b.view());
    fused.endFuse();
    EXPECT_EQ(out_lib.data, out_fused.data);
}

TEST(Emission, RvvLibraryEmitsStripLoops)
{
    Rng rng(7);
    TestMat a(1, 100, rng), b(1, 100, rng), out(1, 100, rng);
    isa::Program p;
    RvvBackend lib(512, RvvMapping::library());
    lib.setProgram(&p);
    lib.add(out.view(), a.view(), b.view());
    // 100 elements / 16-lane strips -> 7 strips: >= 7 vsetvls.
    size_t vsetvls = 0;
    for (const auto &u : p.uops())
        if (u.kind == isa::UopKind::VSetVl)
            ++vsetvls;
    EXPECT_GE(vsetvls, 7u);
}

TEST(Emission, LmulShrinksInstructionCount)
{
    Rng rng(8);
    TestMat a(1, 128, rng), b(1, 128, rng), out(1, 128, rng);
    isa::Program p1, p4;
    RvvBackend m1(512, RvvMapping::library(1));
    RvvBackend m4(512, RvvMapping::library(4));
    m1.setProgram(&p1);
    m4.setProgram(&p4);
    m1.add(out.view(), a.view(), b.view());
    m4.add(out.view(), a.view(), b.view());
    EXPECT_LT(p4.countVector(), p1.countVector());
}

TEST(Emission, GemminiStaticScheduleShrinksScalarWork)
{
    Rng rng(9);
    TestMat a(12, 12, rng), x(1, 12, rng), y(1, 12, rng);
    isa::Program pd, ps;
    GemminiBackend dyn(GemminiMapping::baseline());
    GemminiMapping sm = GemminiMapping::staticMapped();
    GemminiBackend stat(sm);
    dyn.setProgram(&pd);
    stat.setProgram(&ps);
    dyn.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
    stat.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
    EXPECT_LT(ps.countScalar(), pd.countScalar());
    // Same accelerator commands either way.
    EXPECT_EQ(ps.countRocc(), pd.countRocc());
}

TEST(Emission, GemminiSpadResidencyDropsFences)
{
    Rng rng(10);
    TestMat a(12, 12, rng), x(1, 12, rng), y(1, 12, rng);

    auto fences = [](const isa::Program &p) {
        size_t n = 0;
        for (const auto &u : p.uops())
            if (u.kind == isa::UopKind::RoccFence)
                ++n;
        return n;
    };

    isa::Program plib, pres;
    GemminiBackend lib(GemminiMapping::staticMapped());
    GemminiBackend res(GemminiMapping::fullyOptimized());
    lib.setProgram(&plib);
    res.setProgram(&pres);
    for (int rep = 0; rep < 4; ++rep) {
        lib.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
        res.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
    }
    EXPECT_GT(fences(plib), fences(pres));
}

TEST(Emission, GemminiCiscEmitsMoreConfigTraffic)
{
    Rng rng(11);
    TestMat a(12, 12, rng), x(1, 12, rng), y(1, 12, rng);
    GemminiMapping cisc;
    cisc.fineGrained = false;
    GemminiMapping fine;
    fine.fineGrained = true;
    isa::Program pc, pf;
    GemminiBackend bc(cisc), bf(fine);
    bc.setProgram(&pc);
    bf.setProgram(&pf);
    bc.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
    bf.gemv(y.view(), a.view(), x.view(), 1.0f, 0.0f);
    auto configs = [](const isa::Program &p) {
        size_t n = 0;
        for (const auto &u : p.uops())
            if (u.kind == isa::UopKind::RoccConfig)
                ++n;
        return n;
    };
    // CISC needs multiple RoCC configuration commands per macro-op
    // (§4.2.3); the fine-grained path reuses one configuration.
    EXPECT_GT(configs(pc), configs(pf));
}

TEST(Emission, EmissionIsDataIndependent)
{
    // The same operation on different data must emit the same stream
    // (timing depends on shapes/mappings only) - required for the
    // HIL calibration approach.
    Rng rng1(1), rng2(999);
    TestMat a1(12, 12, rng1), x1(1, 12, rng1), y1(1, 12, rng1);
    TestMat a2(12, 12, rng2), x2(1, 12, rng2), y2(1, 12, rng2);
    isa::Program p1, p2;
    RvvBackend b1(512, RvvMapping::handOptimized());
    RvvBackend b2(512, RvvMapping::handOptimized());
    b1.setProgram(&p1);
    b2.setProgram(&p2);
    b1.gemv(y1.view(), a1.view(), x1.view(), 1.0f, 0.0f);
    b2.gemv(y2.view(), a2.view(), x2.view(), 1.0f, 0.0f);
    ASSERT_EQ(p1.size(), p2.size());
    for (size_t i = 0; i < p1.size(); ++i)
        EXPECT_EQ(static_cast<int>(p1.uops()[i].kind),
                  static_cast<int>(p2.uops()[i].kind));
}

/** Elementwise op sweep: every backend agrees on every size. */
class EwiseSizeSweep : public ::testing::TestWithParam<int>
{};

TEST_P(EwiseSizeSweep, SaxpbyAgreesEverywhere)
{
    int n = GetParam();
    Rng rng(n * 17 + 3);
    TestMat a(1, n, rng), b_in(1, n, rng);
    auto backends = allBackends();
    std::vector<float> golden;
    for (auto &backend : backends) {
        std::vector<float> out(static_cast<size_t>(n));
        Mat om(out.data(), 1, n);
        backend->saxpby(om, -2.5f, a.view(), 0.5f, b_in.view());
        if (golden.empty())
            golden = out;
        else
            EXPECT_EQ(out, golden) << backend->name() << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EwiseSizeSweep,
                         ::testing::Values(1, 3, 4, 12, 16, 17, 48, 100,
                                           120, 129));

TEST(Emission, GemminiCiscRequiresMemoryOperands)
{
    GemminiMapping bad = GemminiMapping::fullyOptimized();
    bad.fineGrained = false;
    EXPECT_EXIT({ GemminiBackend b(bad); (void)b; },
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace rtoc::matlib
