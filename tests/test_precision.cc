/**
 * @file
 * Numeric-format axis tests: fixed-point kernels stay within the
 * error bounds their Q-format schedules imply, saturation telemetry
 * fires on engineered overflow, the float32 path is bit-identical
 * whether the format is defaulted or set explicitly, narrow streams
 * survive schedule search and batched replay bit-exactly, formats
 * round-trip through the program codec / disk cache under distinct
 * keys, and the DSE format axis enumerates without disturbing the
 * single-format default.
 */

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_util.hh"
#include "common/random.hh"
#include "cpu/inorder.hh"
#include "dse/design_space.hh"
#include "hil/episode.hh"
#include "hil/timing.hh"
#include "isa/disk_cache.hh"
#include "isa/program_cache.hh"
#include "isa/sched_search.hh"
#include "isa/schedule.hh"
#include "matlib/fixed.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "plant/registry.hh"
#include "systolic/gemmini.hh"
#include "vector/saturn.hh"

namespace rtoc {
namespace {

using matlib::Mat;
using matlib::NumericFormat;
namespace fx = matlib::fx;

/** Owned random-filled matrix with entries in [-scale, scale]. */
struct TestMat
{
    std::vector<float> data;
    int rows, cols;

    TestMat(int r, int c, Rng &rng, float scale = 1.0f)
        : data(static_cast<size_t>(r) * c), rows(r), cols(c)
    {
        for (auto &v : data)
            v = static_cast<float>(rng.uniform(-1.0, 1.0)) * scale;
    }

    Mat view() { return {data.data(), rows, cols}; }
};

bool
samePrograms(const isa::Program &a, const isa::Program &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t i = 0; i < a.size(); ++i) {
        const isa::Uop &x = a.uops()[i];
        const isa::Uop &y = b.uops()[i];
        if (x.kind != y.kind || x.dst != y.dst || x.src0 != y.src0 ||
            x.src1 != y.src1 || x.src2 != y.src2 || x.vl != y.vl ||
            x.sew != y.sew || x.lmul8 != y.lmul8 ||
            x.bytes != y.bytes || x.rows != y.rows ||
            x.cols != y.cols || x.taken != y.taken) {
            return false;
        }
    }
    return true;
}

std::string
makeTempDir()
{
    char tmpl[] = "/tmp/rtoc-precision-test-XXXXXX";
    const char *dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    return dir ? dir : "/tmp/rtoc-precision-test-fallback";
}

// --- fixed-point kernel error bounds ---

/**
 * Worst-case gemv error the Q-format schedule implies: operand
 * rounding (half an LSB each) amplified through an n-term dot
 * product, plus output-grid rounding. Saturation-free by
 * construction (asserted), so the bound is purely quantization.
 */
double
gemvErrorBound(const fx::KernelSpec &s, int n, double a_max,
               double x_max, double alpha, double beta)
{
    double ea = std::ldexp(0.5, -s.aFrac); // operand LSB/2
    double ex = std::ldexp(0.5, -s.xFrac);
    double eo = std::ldexp(0.5, -s.outFrac);
    double dot = n * (a_max * ex + x_max * ea + ea * ex);
    // beta*y is quantized onto the x grid before the accumulate.
    return std::abs(alpha) * dot + std::abs(beta) * ex + 2.0 * eo;
}

TEST(FxKernels, GemvWithinDerivedBound)
{
    for (NumericFormat f : {NumericFormat::I16, NumericFormat::I32}) {
        Rng rng(7);
        const int n = 12;
        TestMat a(n, n, rng), x(1, n, rng), y(1, n, rng);
        TestMat y_ref = y;

        fx::Scaling s = fx::Scaling::forRanges(f, 1.0, 1.0,
                                               static_cast<double>(n));
        fx::Counters c;
        fx::gemv(f, s, c, y.view(), a.view(), x.view(), 1.0f, 0.5f);
        matlib::ref::gemv(y_ref.view(), a.view(), x.view(), 1.0f, 0.5f);

        EXPECT_EQ(c.quantSats, 0u) << matlib::formatName(f);
        EXPECT_EQ(c.accSats, 0u) << matlib::formatName(f);
        double bound = gemvErrorBound(s.gemv, n, 1.0, 1.0, 1.0, 0.5);
        // The float32 reference rounds too: when the fixed-point grid
        // is finer than float ulps (int32), its own accumulation
        // error shows up in the comparison.
        double f32_slack = 2.0 * n * std::ldexp(double(n), -23);
        for (int i = 0; i < n; ++i) {
            EXPECT_NEAR(y.view()[i], y_ref.view()[i], bound + f32_slack)
                << matlib::formatName(f) << " elem " << i;
        }
        // int32 must be far tighter than int16 would allow.
        if (f == NumericFormat::I32)
            EXPECT_LT(bound, 1e-5);
    }
}

TEST(FxKernels, GemvTAndSaxpbyWithinDerivedBound)
{
    Rng rng(11);
    const int n = 10;
    TestMat a(n, n, rng), x(1, n, rng), y(1, n, rng);
    TestMat y_ref = y;
    fx::Scaling s = fx::Scaling::forRanges(NumericFormat::I16, 1.0, 1.0,
                                           static_cast<double>(n));
    fx::Counters c;
    fx::gemvT(NumericFormat::I16, s, c, y.view(), a.view(), x.view(),
              0.7f, 1.0f);
    matlib::ref::gemvT(y_ref.view(), a.view(), x.view(), 0.7f, 1.0f);
    EXPECT_EQ(c.accSats, 0u);
    double bound = gemvErrorBound(s.gemvT, n, 1.0, 1.0, 0.7, 1.0);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(y.view()[i], y_ref.view()[i], bound) << i;

    TestMat u(1, n, rng), v(1, n, rng), out(1, n, rng);
    TestMat out_ref = out;
    fx::saxpby(NumericFormat::I16, s, c, out.view(), 0.5f, u.view(),
               -0.25f, v.view());
    matlib::ref::saxpby(out_ref.view(), 0.5f, u.view(), -0.25f,
                        v.view());
    double sb = gemvErrorBound(s.saxpby, 1, 1.0, 1.0, 0.5, 0.25);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(out.view()[i], out_ref.view()[i], sb) << i;
}

TEST(FxKernels, Bf16TracksFloatAtHalfMantissa)
{
    Rng rng(3);
    const int n = 12;
    TestMat a(n, n, rng), x(1, n, rng), y(1, n, rng);
    TestMat y_ref = y;
    fx::Scaling s; // unused by bf16
    fx::Counters c;
    fx::gemv(NumericFormat::BF16, s, c, y.view(), a.view(), x.view(),
             1.0f, 0.0f);
    matlib::ref::gemv(y_ref.view(), a.view(), x.view(), 1.0f, 0.0f);
    EXPECT_EQ(c.quantSats + c.accSats, 0u); // bf16 never saturates
    // 8-bit mantissa: relative 2^-8 per operand through an n-term dot.
    double bound = n * 2.0 * std::ldexp(1.0, -8) * 1.0 * 1.0 + 1e-6;
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(y.view()[i], y_ref.view()[i], bound) << i;
}

TEST(FxKernels, SaturationCountersFireOnEngineeredOverflow)
{
    Rng rng(5);
    const int n = 8;
    // Declare ranges of 1.0 but feed operands of magnitude ~100: the
    // quantizer must clamp onto the declared grid.
    TestMat a(n, n, rng, 100.0f), x(1, n, rng), y(1, n, rng);
    fx::Scaling s = fx::Scaling::forRanges(NumericFormat::I16, 1.0, 1.0,
                                           static_cast<double>(n));
    fx::Counters c;
    fx::gemv(NumericFormat::I16, s, c, y.view(), a.view(), x.view(),
             1.0f, 0.0f);
    EXPECT_GT(c.quantSats, 0u);
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(std::isfinite(y.view()[i])) << i; // clamped, not NaN

    // Same-sign products against a tiny declared accumulator range:
    // the saturating accumulate must clamp (and count).
    TestMat ap(1, 64, rng), xp(1, 64, rng), yp(1, 1, rng);
    for (int i = 0; i < 64; ++i) {
        ap.view()[i] = 0.9f;
        xp.view()[i] = 0.9f;
    }
    fx::Scaling tight =
        fx::Scaling::forRanges(NumericFormat::I16, 1.0, 1.0, 1.0);
    fx::Counters c2;
    fx::gemv(NumericFormat::I16, tight, c2, yp.view(),
             Mat(ap.data.data(), 1, 64), xp.view(), 1.0f, 0.0f);
    EXPECT_GT(c2.accSats, 0u);
}

// --- float32 byte-identity ---

TEST(FormatIdentity, ExplicitF32MatchesDefaultEverywhere)
{
    EXPECT_EQ(matlib::formatKeySuffix(NumericFormat::F32), "");
    EXPECT_NE(matlib::formatKeySuffix(NumericFormat::I16), "");
    EXPECT_NE(matlib::formatKeySuffix(NumericFormat::I16),
              matlib::formatKeySuffix(NumericFormat::I32));

    auto check = [](matlib::Backend &plain, matlib::Backend &touched) {
        touched.setFormat(NumericFormat::F32);
        EXPECT_EQ(plain.cacheKey(), touched.cacheKey());
        isa::Program a = bench::emitQuadSolve(
            plain, tinympc::MappingStyle::Library, 2);
        isa::Program b = bench::emitQuadSolve(
            touched, tinympc::MappingStyle::Library, 2);
        EXPECT_TRUE(samePrograms(a, b)) << plain.name();
        for (const isa::Uop &u : a.uops())
            EXPECT_EQ(u.sew, 32) << plain.name();
    };
    matlib::ScalarBackend s1(matlib::ScalarFlavor::Optimized);
    matlib::ScalarBackend s2(matlib::ScalarFlavor::Optimized);
    check(s1, s2);
    matlib::RvvBackend v1(512, matlib::RvvMapping::handOptimized());
    matlib::RvvBackend v2(512, matlib::RvvMapping::handOptimized());
    check(v1, v2);
    matlib::GemminiBackend g1(matlib::GemminiMapping::fullyOptimized());
    matlib::GemminiBackend g2(matlib::GemminiMapping::fullyOptimized());
    check(g1, g2);
}

TEST(FormatIdentity, F32EpisodeBitExactPerPlant)
{
    // Every registered plant: an episode flown with the format left
    // at its default must be bit-identical to one flown with F32 set
    // explicitly (the format axis is purely additive at float32).
    for (const plant::ScenarioSpec &spec :
         plant::ScenarioRegistry::global().specs()) {
        if (spec.difficulty != plant::Difficulty::Easy ||
            spec.disturbance.cmdNoiseSigma != 0.0) {
            continue; // one clean cell per plant is enough
        }
        hil::HilConfig base;
        base.socFreqHz = 100e6;
        base.relin = spec.relin;
        base.timing = hil::namedControllerTiming(
            "vector", *spec.prototype, 0.02, 10, false);

        hil::HilConfig explicit_f32 = base;
        explicit_f32.format = NumericFormat::F32;

        std::unique_ptr<plant::Plant> p1 = spec.prototype->clone();
        std::unique_ptr<plant::Plant> p2 = spec.prototype->clone();
        plant::Scenario sc = spec.makeScenario(0);
        hil::EpisodeResult a = hil::runEpisode(*p1, sc, base);
        hil::EpisodeResult b = hil::runEpisode(*p2, sc, explicit_f32);
        EXPECT_EQ(a.success, b.success) << spec.id;
        EXPECT_EQ(a.waypointsReached, b.waypointsReached) << spec.id;
        EXPECT_EQ(a.trackingErrM, b.trackingErrM) << spec.id;
        EXPECT_EQ(a.missionTimeS, b.missionTimeS) << spec.id;
        EXPECT_EQ(a.rotorEnergyJ, b.rotorEnergyJ) << spec.id;
        EXPECT_EQ(a.divergedSolves, 0) << spec.id;
        EXPECT_EQ(a.quantSats, 0u) << spec.id;
    }
}

// --- narrow streams: emission, schedule search, batched replay ---

TEST(NarrowStreams, CarryElementWidthAndDistinctKeys)
{
    matlib::GemminiBackend g(matlib::GemminiMapping::fullyOptimized());
    std::string key_f32 = g.cacheKey();
    g.setFormat(NumericFormat::I16);
    EXPECT_NE(g.cacheKey(), key_f32);
    isa::Program narrow =
        bench::emitQuadSolve(g, tinympc::MappingStyle::Library, 2);
    bool saw_sew16 = false;
    for (const isa::Uop &u : narrow.uops()) {
        if (u.sew == 16)
            saw_sew16 = true;
        EXPECT_TRUE(u.sew == 16 || u.sew == 32);
    }
    EXPECT_TRUE(saw_sew16);

    // int32 keeps the 32-bit stream byte-identical to float32 (the
    // values differ, the uops do not) — only the key is distinct.
    matlib::GemminiBackend g32(matlib::GemminiMapping::fullyOptimized());
    g32.setFormat(NumericFormat::I32);
    EXPECT_NE(g32.cacheKey(), key_f32);
    isa::Program i32 =
        bench::emitQuadSolve(g32, tinympc::MappingStyle::Library, 2);
    matlib::GemminiBackend gf(matlib::GemminiMapping::fullyOptimized());
    isa::Program f32 =
        bench::emitQuadSolve(gf, tinympc::MappingStyle::Library, 2);
    EXPECT_TRUE(samePrograms(i32, f32));
}

TEST(NarrowStreams, NarrowReplayCheaperOnWideBackends)
{
    matlib::GemminiBackend gf(matlib::GemminiMapping::fullyOptimized());
    isa::Program f32 =
        bench::emitQuadSolve(gf, tinympc::MappingStyle::Library, 2);
    matlib::GemminiBackend gn(matlib::GemminiMapping::fullyOptimized());
    gn.setFormat(NumericFormat::I16);
    isa::Program i16 =
        bench::emitQuadSolve(gn, tinympc::MappingStyle::Library, 2);
    systolic::GemminiModel m(systolic::GemminiConfig::os4x4());
    uint64_t cf = m.run(f32).cycles;
    uint64_t cn = m.run(i16).cycles;
    // The acceptance bar for the precision bench: >= 1.5x on Gemmini.
    EXPECT_GE(static_cast<double>(cf),
              1.5 * static_cast<double>(cn));
}

TEST(NarrowStreams, ScheduleSearchAndBatchedReplayBitExact)
{
    matlib::GemminiBackend g(matlib::GemminiMapping::fullyOptimized());
    g.setFormat(NumericFormat::I16);
    isa::Program narrow =
        bench::emitQuadSolve(g, tinympc::MappingStyle::Library, 2);

    // Schedule search on the narrow stream: any found schedule must
    // verify and reproduce its claimed cost.
    systolic::GemminiModel m(systolic::GemminiConfig::os4x4());
    auto cost = [&](const isa::Program &p) { return m.run(p).cycles; };
    isa::SchedSearchResult res = isa::searchSchedule(narrow, cost, 24);
    isa::ScheduleResult r = isa::applySchedule(narrow, res.spec);
    std::string why;
    EXPECT_TRUE(isa::verifySchedule(narrow, r.prog, r.perm, &why))
        << why;
    EXPECT_EQ(cost(r.prog), res.bestCycles);

    // Batched replay of the narrow stream across a design sweep must
    // be bit-identical to sequential replay (same contract the f32
    // streams are pinned to).
    systolic::GemminiModel m2(systolic::GemminiConfig::os4x4HwGemv());
    std::vector<const cpu::TimingModel *> models = {&m, &m2};
    std::vector<cpu::TimingResult> batch =
        m.runStreamBatch(narrow.stream(), models);
    ASSERT_EQ(batch.size(), models.size());
    for (size_t i = 0; i < models.size(); ++i) {
        cpu::TimingResult seq = models[i]->runStream(narrow.stream());
        EXPECT_EQ(batch[i].cycles, seq.cycles) << i;
        EXPECT_EQ(batch[i].stats.counters(), seq.stats.counters()) << i;
    }

    // Saturn, same contract.
    matlib::RvvBackend v(512, matlib::RvvMapping::handOptimized());
    v.setFormat(NumericFormat::I16);
    isa::Program vec =
        bench::emitQuadSolve(v, tinympc::MappingStyle::Fused, 2);
    vector::SaturnModel s1(vector::SaturnConfig::make(512, 256, true));
    vector::SaturnModel s2(vector::SaturnConfig::make(512, 128, true));
    std::vector<const cpu::TimingModel *> sm = {&s1, &s2};
    std::vector<cpu::TimingResult> vb = s1.runStreamBatch(vec.stream(), sm);
    for (size_t i = 0; i < sm.size(); ++i)
        EXPECT_EQ(vb[i].cycles, sm[i]->runStream(vec.stream()).cycles)
            << i;
}

// --- persistence ---

TEST(FormatPersistence, NarrowProgramRoundTripsThroughCodecAndDisk)
{
    matlib::GemminiBackend g(matlib::GemminiMapping::fullyOptimized());
    g.setFormat(NumericFormat::I16);
    isa::Program narrow =
        bench::emitQuadSolve(g, tinympc::MappingStyle::Library, 2);

    // Codec round trip preserves the element widths.
    auto back = isa::decodeProgram(isa::encodeProgram(narrow));
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(samePrograms(narrow, *back));

    // Disk cache: per-format keys produce independently cached blobs
    // that warm-read back bit-identical with zero re-emissions.
    const std::string dir = makeTempDir();
    auto key = [&](NumericFormat f) {
        return "quad-solve" + matlib::formatKeySuffix(f);
    };
    {
        isa::DiskCache disk(dir, "test-fp");
        isa::ProgramCache cold(&disk);
        cold.getOrEmit(key(NumericFormat::I16),
                       [&](isa::Program &p) { p = narrow; });
        matlib::GemminiBackend gf(
            matlib::GemminiMapping::fullyOptimized());
        cold.getOrEmit(key(NumericFormat::F32), [&](isa::Program &p) {
            p = bench::emitQuadSolve(gf, tinympc::MappingStyle::Library,
                                     2);
        });
        EXPECT_EQ(cold.stats().emissions, 2u);
    }
    isa::DiskCache disk2(dir, "test-fp");
    isa::ProgramCache warm(&disk2);
    auto warm_narrow =
        warm.getOrEmit(key(NumericFormat::I16), [&](isa::Program &) {
            ADD_FAILURE() << "warm read must not re-emit";
        });
    ASSERT_TRUE(warm_narrow != nullptr);
    EXPECT_TRUE(samePrograms(narrow, *warm_narrow));
    auto warm_f32 =
        warm.getOrEmit(key(NumericFormat::F32), [&](isa::Program &) {
            ADD_FAILURE() << "warm read must not re-emit";
        });
    ASSERT_TRUE(warm_f32 != nullptr);
    EXPECT_FALSE(samePrograms(*warm_narrow, *warm_f32));
}

// --- DSE format axis ---

TEST(DseFormatAxis, EnumeratesWithoutDisturbingDefault)
{
    auto make_space = [](dse::DesignSpace &space) {
        dse::ConfigEntry e;
        e.name = "gem";
        e.model = [](double, double) -> std::unique_ptr<cpu::TimingModel> {
            return std::make_unique<systolic::GemminiModel>(
                systolic::GemminiConfig::os4x4());
        };
        e.emit = [](dse::Fidelity, matlib::NumericFormat fmt)
            -> std::shared_ptr<const isa::Program> {
            matlib::GemminiBackend b(
                matlib::GemminiMapping::fullyOptimized());
            b.setFormat(fmt);
            return std::make_shared<const isa::Program>(
                bench::emitQuadSolve(b, tinympc::MappingStyle::Library,
                                     2));
        };
        e.progKey = [](dse::Fidelity, matlib::NumericFormat fmt) {
            return "dse-fmt-test" + matlib::formatKeySuffix(fmt);
        };
        space.addConfig(std::move(e));
    };

    // Single-format default: one point, fmt decodes to 0 everywhere.
    dse::DesignSpace plain("fmt-default");
    make_space(plain);
    ASSERT_EQ(plain.size(), 1u);
    EXPECT_EQ(plain.point(0).fmt, 0);

    dse::DesignSpace space("fmt-axis");
    make_space(space);
    space.setFormats({NumericFormat::F32, NumericFormat::I16});
    ASSERT_EQ(space.size(), 2u);
    for (size_t flat = 0; flat < space.size(); ++flat)
        EXPECT_EQ(space.flatIndex(space.point(flat)), flat);

    dse::Candidate f32 =
        space.materialize(space.point(0), dse::Fidelity::Low);
    dse::Candidate i16 =
        space.materialize(space.point(1), dse::Fidelity::Low);
    EXPECT_EQ(f32.name.find("@"), std::string::npos);
    EXPECT_NE(i16.name.find("@i16"), std::string::npos);
    EXPECT_NE(f32.cellKey, i16.cellKey);
    EXPECT_NE(f32.progKey, i16.progKey);
    ASSERT_TRUE(f32.prog && i16.prog);
    EXPECT_FALSE(samePrograms(*f32.prog, *i16.prog));
}

} // namespace
} // namespace rtoc
