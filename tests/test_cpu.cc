/**
 * @file
 * Tests for the scalar core timing models: in-order scoreboard
 * behaviour (dependency stalls, structural hazards, branch bubbles,
 * dual issue) and OoO greedy-dataflow behaviour (ILP extraction,
 * front-end and ROB limits), plus cross-model ordering properties.
 */

#include <gtest/gtest.h>

#include "cpu/inorder.hh"
#include "cpu/ooo.hh"
#include "isa/program.hh"

namespace rtoc::cpu {
namespace {

using isa::kNoReg;
using isa::Program;
using isa::Uop;
using isa::UopKind;

/** Chain of n dependent FMAs. */
Program
dependentChain(int n)
{
    Program p;
    uint32_t acc = p.newReg();
    p.push(Uop::scalar(UopKind::FpMove, acc));
    for (int i = 0; i < n; ++i) {
        uint32_t next = p.newReg();
        p.push(Uop::scalar(UopKind::FpFma, next, acc));
        acc = next;
    }
    return p;
}

/** n independent FMAs. */
Program
independentOps(int n)
{
    Program p;
    for (int i = 0; i < n; ++i)
        p.push(Uop::scalar(UopKind::FpFma, p.newReg()));
    return p;
}

TEST(InOrder, DependentChainBoundByLatency)
{
    InOrderCore rocket(InOrderConfig::rocket());
    int n = 50;
    auto r = rocket.run(dependentChain(n));
    // Each FMA waits fpLatency for its predecessor.
    EXPECT_GE(r.cycles, static_cast<uint64_t>(n) * 4);
    EXPECT_LE(r.cycles, static_cast<uint64_t>(n) * 4 + 10);
}

TEST(InOrder, IndependentOpsBoundByIssueWidth)
{
    InOrderCore rocket(InOrderConfig::rocket());
    int n = 64;
    auto r = rocket.run(independentOps(n));
    // Single issue: one per cycle plus drain.
    EXPECT_GE(r.cycles, static_cast<uint64_t>(n));
    EXPECT_LE(r.cycles, static_cast<uint64_t>(n) + 8);
}

TEST(InOrder, ShuttleDualIssuesMixedIntFp)
{
    // Shuttle has one FPU, so pure-FP streams cannot dual-issue, but
    // int+fp pairs can.
    Program p;
    for (int i = 0; i < 40; ++i) {
        p.push(Uop::scalar(UopKind::IntAlu, p.newReg()));
        p.push(Uop::scalar(UopKind::FpFma, p.newReg()));
    }
    InOrderCore rocket(InOrderConfig::rocket());
    InOrderCore shuttle(InOrderConfig::shuttle());
    auto rr = rocket.run(p);
    auto rs = shuttle.run(p);
    EXPECT_LT(rs.cycles, rr.cycles);
    // Close to 2x on this mix.
    EXPECT_LT(rs.cycles, rr.cycles * 3 / 4);
}

TEST(InOrder, LoadUseStall)
{
    Program p;
    uint32_t v = p.newReg();
    p.push(Uop::mem(UopKind::Load, v, kNoReg));
    uint32_t w = p.newReg();
    p.push(Uop::scalar(UopKind::FpAdd, w, v));
    InOrderCore rocket(InOrderConfig::rocket());
    auto r = rocket.run(p);
    // Load at cycle 0 ready at 3; add issues at 3, completes at 7.
    EXPECT_EQ(r.cycles, 7u);
    EXPECT_GT(r.stats.get("stall_data"), 0u);
}

TEST(InOrder, TakenBranchBubble)
{
    Program no_branch = independentOps(10);
    Program with_branches;
    for (int i = 0; i < 10; ++i) {
        with_branches.push(
            Uop::scalar(UopKind::FpFma, with_branches.newReg()));
        Uop br = Uop::scalar(UopKind::Branch, kNoReg);
        br.taken = 1;
        with_branches.push(br);
    }
    InOrderCore rocket(InOrderConfig::rocket());
    auto a = rocket.run(no_branch);
    auto b = rocket.run(with_branches);
    // Each taken branch costs issue slot + redirect bubble.
    EXPECT_GT(b.cycles, a.cycles + 10 * 2);
}

TEST(InOrder, MemPortStructuralHazard)
{
    Program p;
    for (int i = 0; i < 32; ++i)
        p.push(Uop::mem(UopKind::Store, kNoReg, kNoReg));
    InOrderCore shuttle(InOrderConfig::shuttle());
    auto r = shuttle.run(p);
    // One mem port: despite dual issue, one store per cycle.
    EXPECT_GE(r.cycles, 32u);
}

TEST(InOrder, ScalarCoreRejectsVectorUops)
{
    Program p;
    p.push(Uop::vec(UopKind::VLoad, p.newVReg(), kNoReg, kNoReg, 8));
    InOrderCore rocket(InOrderConfig::rocket());
    EXPECT_DEATH({ rocket.run(p); }, "");
}

TEST(Ooo, ExtractsIlpFromChainPairs)
{
    // Two interleaved dependent chains: in-order is serialized by
    // latency, OoO overlaps them.
    Program p;
    uint32_t a = p.newReg(), b = p.newReg();
    p.push(Uop::scalar(UopKind::FpMove, a));
    p.push(Uop::scalar(UopKind::FpMove, b));
    for (int i = 0; i < 40; ++i) {
        uint32_t na = p.newReg();
        p.push(Uop::scalar(UopKind::FpFma, na, a));
        a = na;
        uint32_t nb = p.newReg();
        p.push(Uop::scalar(UopKind::FpFma, nb, b));
        b = nb;
    }
    InOrderCore rocket(InOrderConfig::rocket());
    OooCore mega(OooConfig::boomMega());
    auto rin = rocket.run(p);
    auto rout = mega.run(p);
    EXPECT_LT(rout.cycles, rin.cycles);
}

TEST(Ooo, FrontWidthLimitsThroughput)
{
    Program p = independentOps(400);
    OooCore small(OooConfig::boomSmall());
    OooCore mega(OooConfig::boomMega());
    auto rs = small.run(p);
    auto rm = mega.run(p);
    // Small: 1/cycle front end. Mega: 4-wide front, 2 FPUs -> 2/cycle.
    EXPECT_GE(rs.cycles, 400u);
    EXPECT_LE(rm.cycles, 210u);
}

TEST(Ooo, RobBoundsRuntimeDifference)
{
    // A long-latency op at the head plus many independents: the ROB
    // limits how far ahead the core can run.
    Program p;
    uint32_t v = p.newReg();
    p.push(Uop::scalar(UopKind::FpDiv, v));
    for (int i = 0; i < 300; ++i)
        p.push(Uop::scalar(UopKind::IntAlu, p.newReg()));
    OooConfig tiny = OooConfig::boomSmall();
    tiny.robSize = 8;
    OooConfig big = OooConfig::boomSmall();
    big.robSize = 256;
    auto rt = OooCore(tiny).run(p);
    auto rb = OooCore(big).run(p);
    EXPECT_LE(rb.cycles, rt.cycles);
}

TEST(Ooo, MonotoneAcrossBoomScaling)
{
    // Bigger BOOMs are never slower on a mixed workload.
    Program p;
    for (int i = 0; i < 100; ++i) {
        uint32_t v = p.newReg();
        p.push(Uop::mem(UopKind::Load, v, kNoReg));
        p.push(Uop::scalar(UopKind::FpFma, p.newReg(), v));
        p.push(Uop::scalar(UopKind::IntAlu, p.newReg()));
    }
    auto small = OooCore(OooConfig::boomSmall()).run(p).cycles;
    auto medium = OooCore(OooConfig::boomMedium()).run(p).cycles;
    auto large = OooCore(OooConfig::boomLarge()).run(p).cycles;
    auto mega = OooCore(OooConfig::boomMega()).run(p).cycles;
    EXPECT_GE(small, medium);
    EXPECT_GE(medium, large);
    EXPECT_GE(large, mega);
}

TEST(Models, DeterministicAcrossRuns)
{
    Program p = dependentChain(30);
    InOrderCore rocket(InOrderConfig::rocket());
    OooCore boom(OooConfig::boomMedium());
    EXPECT_EQ(rocket.run(p).cycles, rocket.run(p).cycles);
    EXPECT_EQ(boom.run(p).cycles, boom.run(p).cycles);
}

TEST(Models, RegionAttributionSumsToTotal)
{
    Program p;
    p.beginKernel("k1");
    for (int i = 0; i < 10; ++i)
        p.push(Uop::scalar(UopKind::FpFma, p.newReg()));
    p.endKernel();
    p.beginKernel("k2");
    for (int i = 0; i < 10; ++i)
        p.push(Uop::scalar(UopKind::IntAlu, p.newReg()));
    p.endKernel();

    InOrderCore rocket(InOrderConfig::rocket());
    auto r = rocket.run(p);
    uint64_t sum = 0;
    for (uint64_t c : r.regionCycles)
        sum += c;
    EXPECT_LE(sum, r.cycles);
    EXPECT_GE(sum, r.cycles - 8); // only pipeline drain unattributed
}

TEST(Models, EmptyProgramIsZeroCycles)
{
    Program p;
    InOrderCore rocket(InOrderConfig::rocket());
    EXPECT_EQ(rocket.run(p).cycles, 0u);
    OooCore boom(OooConfig::boomSmall());
    EXPECT_EQ(boom.run(p).cycles, 0u);
}

} // namespace
} // namespace rtoc::cpu
