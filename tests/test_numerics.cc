/**
 * @file
 * Unit and property tests for the offline numerics: dense matrix
 * algebra, LU solve, Cholesky, matrix exponential, ZOH discretization
 * and the discrete Riccati solver.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "numerics/dare.hh"
#include "numerics/dmatrix.hh"

namespace rtoc::numerics {
namespace {

TEST(DMatrix, IdentityMultiplication)
{
    DMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
    DMatrix r = DMatrix::identity(2) * a;
    EXPECT_NEAR(r.maxAbsDiff(a), 0.0, 1e-15);
}

TEST(DMatrix, MultiplyKnownValues)
{
    DMatrix a(2, 2, {1, 2, 3, 4});
    DMatrix b(2, 2, {5, 6, 7, 8});
    DMatrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19);
    EXPECT_DOUBLE_EQ(c(0, 1), 22);
    EXPECT_DOUBLE_EQ(c(1, 0), 43);
    EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(DMatrix, TransposeInvolution)
{
    DMatrix a(3, 2, {1, 2, 3, 4, 5, 6});
    EXPECT_NEAR(a.transpose().transpose().maxAbsDiff(a), 0.0, 0.0);
}

TEST(DMatrix, AddSubScale)
{
    DMatrix a(2, 2, {1, 2, 3, 4});
    DMatrix b(2, 2, {4, 3, 2, 1});
    DMatrix sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 0), 5);
    DMatrix diff = sum - b;
    EXPECT_NEAR(diff.maxAbsDiff(a), 0.0, 0.0);
    DMatrix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled(1, 1), 8);
}

TEST(DMatrix, FrobeniusNorm)
{
    DMatrix a(1, 2, {3, 4});
    EXPECT_DOUBLE_EQ(a.frobenius(), 5.0);
}

TEST(LuSolve, SolvesKnownSystem)
{
    DMatrix a(2, 2, {2, 1, 1, 3});
    DMatrix b(2, 1, {3, 5});
    DMatrix x = luSolve(a, b);
    EXPECT_NEAR(x(0, 0), 0.8, 1e-12);
    EXPECT_NEAR(x(1, 0), 1.4, 1e-12);
}

TEST(LuSolve, InverseRoundTrip)
{
    DMatrix a(4, 4,
              {4, 1, 0, 0, 1, 5, 2, 0, 0, 2, 6, 1, 0, 0, 1, 7});
    DMatrix inv = inverse(a);
    DMatrix eye = a * inv;
    EXPECT_NEAR(eye.maxAbsDiff(DMatrix::identity(4)), 0.0, 1e-10);
}

TEST(LuSolve, PermutedSystemNeedsPivoting)
{
    // Zero on the leading diagonal forces a row swap.
    DMatrix a(2, 2, {0, 1, 1, 0});
    DMatrix b(2, 1, {2, 3});
    DMatrix x = luSolve(a, b);
    EXPECT_NEAR(x(0, 0), 3.0, 1e-12);
    EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(Cholesky, FactorReconstructs)
{
    DMatrix a(3, 3, {4, 2, 1, 2, 5, 2, 1, 2, 6});
    DMatrix l = cholesky(a);
    DMatrix recon = l * l.transpose();
    EXPECT_NEAR(recon.maxAbsDiff(a), 0.0, 1e-12);
    // L is lower-triangular.
    EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(l(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(l(1, 2), 0.0);
}

TEST(Expm, ZeroMatrixGivesIdentity)
{
    DMatrix z(3, 3);
    EXPECT_NEAR(expm(z).maxAbsDiff(DMatrix::identity(3)), 0.0, 1e-14);
}

TEST(Expm, DiagonalMatchesScalarExp)
{
    DMatrix a = DMatrix::diag({0.5, -1.0, 2.0});
    DMatrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::exp(0.5), 1e-10);
    EXPECT_NEAR(e(1, 1), std::exp(-1.0), 1e-10);
    EXPECT_NEAR(e(2, 2), std::exp(2.0), 1e-10);
    EXPECT_NEAR(e(0, 1), 0.0, 1e-12);
}

TEST(Expm, RotationBlock)
{
    // exp([[0,-t],[t,0]]) = [[cos t, -sin t],[sin t, cos t]].
    double t = 0.7;
    DMatrix a(2, 2, {0, -t, t, 0});
    DMatrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::cos(t), 1e-10);
    EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-10);
    EXPECT_NEAR(e(1, 0), std::sin(t), 1e-10);
}

TEST(Zoh, DoubleIntegratorKnownForm)
{
    // xdot = [[0,1],[0,0]] x + [0,1]^T u -> Ad = [[1,dt],[0,1]],
    // Bd = [dt^2/2, dt]^T.
    DMatrix ac(2, 2, {0, 1, 0, 0});
    DMatrix bc(2, 1, {0, 1});
    double dt = 0.05;
    DMatrix adbd = zohDiscretize(ac, bc, dt);
    EXPECT_NEAR(adbd(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(adbd(0, 1), dt, 1e-12);
    EXPECT_NEAR(adbd(1, 1), 1.0, 1e-12);
    EXPECT_NEAR(adbd(0, 2), dt * dt / 2, 1e-12);
    EXPECT_NEAR(adbd(1, 2), dt, 1e-12);
}

class DareTest : public ::testing::TestWithParam<double>
{};

TEST_P(DareTest, RiccatiFixedPointHolds)
{
    // Double integrator with varying rho: the returned Pinf must
    // satisfy the rho-augmented DARE.
    double rho = GetParam();
    DMatrix a(2, 2, {1, 0.05, 0, 1});
    DMatrix b(2, 1, {0.00125, 0.05});
    DMatrix q = DMatrix::diag({10.0, 1.0});
    DMatrix r = DMatrix::diag({0.1});
    LqrCache c = solveDare(a, b, q, r, rho);

    DMatrix q_rho = q + DMatrix::identity(2) * rho;
    DMatrix r_rho = r + DMatrix::identity(1) * rho;
    DMatrix at = a.transpose();
    DMatrix bt = b.transpose();
    DMatrix rhs = q_rho + at * c.pinf * (a - b * c.kinf);
    EXPECT_NEAR(rhs.maxAbsDiff(c.pinf), 0.0, 1e-6);

    // Kinf consistency: (R + B'PB) K = B'PA.
    DMatrix lhs = (r_rho + bt * c.pinf * b) * c.kinf;
    DMatrix rhs2 = bt * c.pinf * a;
    EXPECT_NEAR(lhs.maxAbsDiff(rhs2), 0.0, 1e-8);

    // QuuInv really is the inverse.
    DMatrix eye = c.quuInv * (r_rho + bt * c.pinf * b);
    EXPECT_NEAR(eye.maxAbsDiff(DMatrix::identity(1)), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, DareTest,
                         ::testing::Values(0.1, 1.0, 5.0, 25.0));

TEST(Dare, ClosedLoopIsStable)
{
    DMatrix a(2, 2, {1, 0.05, 0, 1});
    DMatrix b(2, 1, {0.00125, 0.05});
    LqrCache c = solveDare(a, b, DMatrix::diag({10.0, 1.0}),
                           DMatrix::diag({0.1}), 1.0);
    // Simulate x+ = (A - B K) x: must contract to zero.
    DMatrix acl = a - b * c.kinf;
    DMatrix x(2, 1, {1.0, -2.0});
    for (int i = 0; i < 400; ++i)
        x = acl * x;
    EXPECT_LT(x.maxAbs(), 1e-6);
}

TEST(Dare, AmBKtIsTransposedClosedLoop)
{
    DMatrix a(2, 2, {1, 0.05, 0, 1});
    DMatrix b(2, 1, {0.00125, 0.05});
    LqrCache c = solveDare(a, b, DMatrix::diag({10.0, 1.0}),
                           DMatrix::diag({0.1}), 1.0);
    DMatrix expect = (a - b * c.kinf).transpose();
    EXPECT_NEAR(c.amBKt.maxAbsDiff(expect), 0.0, 1e-12);
}

} // namespace
} // namespace rtoc::numerics
