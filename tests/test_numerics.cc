/**
 * @file
 * Unit and property tests for the offline numerics: dense matrix
 * algebra, LU solve, Cholesky, matrix exponential, ZOH discretization
 * and the discrete Riccati solver.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "numerics/dare.hh"
#include "numerics/dmatrix.hh"

namespace rtoc::numerics {
namespace {

TEST(DMatrix, IdentityMultiplication)
{
    DMatrix a(2, 3, {1, 2, 3, 4, 5, 6});
    DMatrix r = DMatrix::identity(2) * a;
    EXPECT_NEAR(r.maxAbsDiff(a), 0.0, 1e-15);
}

TEST(DMatrix, MultiplyKnownValues)
{
    DMatrix a(2, 2, {1, 2, 3, 4});
    DMatrix b(2, 2, {5, 6, 7, 8});
    DMatrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19);
    EXPECT_DOUBLE_EQ(c(0, 1), 22);
    EXPECT_DOUBLE_EQ(c(1, 0), 43);
    EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(DMatrix, TransposeInvolution)
{
    DMatrix a(3, 2, {1, 2, 3, 4, 5, 6});
    EXPECT_NEAR(a.transpose().transpose().maxAbsDiff(a), 0.0, 0.0);
}

TEST(DMatrix, AddSubScale)
{
    DMatrix a(2, 2, {1, 2, 3, 4});
    DMatrix b(2, 2, {4, 3, 2, 1});
    DMatrix sum = a + b;
    EXPECT_DOUBLE_EQ(sum(0, 0), 5);
    DMatrix diff = sum - b;
    EXPECT_NEAR(diff.maxAbsDiff(a), 0.0, 0.0);
    DMatrix scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled(1, 1), 8);
}

TEST(DMatrix, FrobeniusNorm)
{
    DMatrix a(1, 2, {3, 4});
    EXPECT_DOUBLE_EQ(a.frobenius(), 5.0);
}

TEST(LuSolve, SolvesKnownSystem)
{
    DMatrix a(2, 2, {2, 1, 1, 3});
    DMatrix b(2, 1, {3, 5});
    DMatrix x = luSolve(a, b);
    EXPECT_NEAR(x(0, 0), 0.8, 1e-12);
    EXPECT_NEAR(x(1, 0), 1.4, 1e-12);
}

TEST(LuSolve, InverseRoundTrip)
{
    DMatrix a(4, 4,
              {4, 1, 0, 0, 1, 5, 2, 0, 0, 2, 6, 1, 0, 0, 1, 7});
    DMatrix inv = inverse(a);
    DMatrix eye = a * inv;
    EXPECT_NEAR(eye.maxAbsDiff(DMatrix::identity(4)), 0.0, 1e-10);
}

TEST(LuSolve, PermutedSystemNeedsPivoting)
{
    // Zero on the leading diagonal forces a row swap.
    DMatrix a(2, 2, {0, 1, 1, 0});
    DMatrix b(2, 1, {2, 3});
    DMatrix x = luSolve(a, b);
    EXPECT_NEAR(x(0, 0), 3.0, 1e-12);
    EXPECT_NEAR(x(1, 0), 2.0, 1e-12);
}

TEST(Cholesky, FactorReconstructs)
{
    DMatrix a(3, 3, {4, 2, 1, 2, 5, 2, 1, 2, 6});
    DMatrix l = cholesky(a);
    DMatrix recon = l * l.transpose();
    EXPECT_NEAR(recon.maxAbsDiff(a), 0.0, 1e-12);
    // L is lower-triangular.
    EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(l(0, 2), 0.0);
    EXPECT_DOUBLE_EQ(l(1, 2), 0.0);
}

TEST(Expm, ZeroMatrixGivesIdentity)
{
    DMatrix z(3, 3);
    EXPECT_NEAR(expm(z).maxAbsDiff(DMatrix::identity(3)), 0.0, 1e-14);
}

TEST(Expm, DiagonalMatchesScalarExp)
{
    DMatrix a = DMatrix::diag({0.5, -1.0, 2.0});
    DMatrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::exp(0.5), 1e-10);
    EXPECT_NEAR(e(1, 1), std::exp(-1.0), 1e-10);
    EXPECT_NEAR(e(2, 2), std::exp(2.0), 1e-10);
    EXPECT_NEAR(e(0, 1), 0.0, 1e-12);
}

TEST(Expm, RotationBlock)
{
    // exp([[0,-t],[t,0]]) = [[cos t, -sin t],[sin t, cos t]].
    double t = 0.7;
    DMatrix a(2, 2, {0, -t, t, 0});
    DMatrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::cos(t), 1e-10);
    EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-10);
    EXPECT_NEAR(e(1, 0), std::sin(t), 1e-10);
}

TEST(Zoh, DoubleIntegratorKnownForm)
{
    // xdot = [[0,1],[0,0]] x + [0,1]^T u -> Ad = [[1,dt],[0,1]],
    // Bd = [dt^2/2, dt]^T.
    DMatrix ac(2, 2, {0, 1, 0, 0});
    DMatrix bc(2, 1, {0, 1});
    double dt = 0.05;
    DMatrix adbd = zohDiscretize(ac, bc, dt);
    EXPECT_NEAR(adbd(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(adbd(0, 1), dt, 1e-12);
    EXPECT_NEAR(adbd(1, 1), 1.0, 1e-12);
    EXPECT_NEAR(adbd(0, 2), dt * dt / 2, 1e-12);
    EXPECT_NEAR(adbd(1, 2), dt, 1e-12);
}

class DareTest : public ::testing::TestWithParam<double>
{};

TEST_P(DareTest, RiccatiFixedPointHolds)
{
    // Double integrator with varying rho: the returned Pinf must
    // satisfy the rho-augmented DARE.
    double rho = GetParam();
    DMatrix a(2, 2, {1, 0.05, 0, 1});
    DMatrix b(2, 1, {0.00125, 0.05});
    DMatrix q = DMatrix::diag({10.0, 1.0});
    DMatrix r = DMatrix::diag({0.1});
    LqrCache c = solveDare(a, b, q, r, rho);

    DMatrix q_rho = q + DMatrix::identity(2) * rho;
    DMatrix r_rho = r + DMatrix::identity(1) * rho;
    DMatrix at = a.transpose();
    DMatrix bt = b.transpose();
    DMatrix rhs = q_rho + at * c.pinf * (a - b * c.kinf);
    EXPECT_NEAR(rhs.maxAbsDiff(c.pinf), 0.0, 1e-6);

    // Kinf consistency: (R + B'PB) K = B'PA.
    DMatrix lhs = (r_rho + bt * c.pinf * b) * c.kinf;
    DMatrix rhs2 = bt * c.pinf * a;
    EXPECT_NEAR(lhs.maxAbsDiff(rhs2), 0.0, 1e-8);

    // QuuInv really is the inverse.
    DMatrix eye = c.quuInv * (r_rho + bt * c.pinf * b);
    EXPECT_NEAR(eye.maxAbsDiff(DMatrix::identity(1)), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RhoSweep, DareTest,
                         ::testing::Values(0.1, 1.0, 5.0, 25.0));

TEST(Dare, ClosedLoopIsStable)
{
    DMatrix a(2, 2, {1, 0.05, 0, 1});
    DMatrix b(2, 1, {0.00125, 0.05});
    LqrCache c = solveDare(a, b, DMatrix::diag({10.0, 1.0}),
                           DMatrix::diag({0.1}), 1.0);
    // Simulate x+ = (A - B K) x: must contract to zero.
    DMatrix acl = a - b * c.kinf;
    DMatrix x(2, 1, {1.0, -2.0});
    for (int i = 0; i < 400; ++i)
        x = acl * x;
    EXPECT_LT(x.maxAbs(), 1e-6);
}

TEST(Dare, AmBKtIsTransposedClosedLoop)
{
    DMatrix a(2, 2, {1, 0.05, 0, 1});
    DMatrix b(2, 1, {0.00125, 0.05});
    LqrCache c = solveDare(a, b, DMatrix::diag({10.0, 1.0}),
                           DMatrix::diag({0.1}), 1.0);
    DMatrix expect = (a - b * c.kinf).transpose();
    EXPECT_NEAR(c.amBKt.maxAbsDiff(expect), 0.0, 1e-12);
}

// --- in-place DMatrix updates and the allocation-free DARE loop ---

TEST(DMatrixInPlace, MatchesAllocatingOperatorsBitExactly)
{
    // Deterministic pseudo-random operands (LCG, no <random>).
    auto fill = [](DMatrix &m, uint64_t seed) {
        for (int i = 0; i < m.rows(); ++i)
            for (int j = 0; j < m.cols(); ++j) {
                seed = seed * 6364136223846793005ull + 1442695040888963407ull;
                m(i, j) =
                    static_cast<double>(static_cast<int64_t>(seed >> 20)) /
                    (1ll << 40);
            }
    };
    DMatrix a(7, 5), b(5, 9), c(7, 9), d(7, 9);
    fill(a, 1);
    fill(b, 2);
    fill(c, 3);
    fill(d, 4);

    DMatrix prod;
    prod.gemmInto(a, b);
    DMatrix expect = a * b;
    EXPECT_EQ(prod.maxAbsDiff(expect), 0.0);

    // Shape reuse: second gemmInto of the same shape reuses storage.
    const double *before = prod.data();
    prod.gemmInto(a, b);
    EXPECT_EQ(prod.data(), before);

    DMatrix add = c;
    add.addInPlace(d);
    EXPECT_EQ(add.maxAbsDiff(c + d), 0.0);
    DMatrix sub = c;
    sub.subInPlace(d);
    EXPECT_EQ(sub.maxAbsDiff(c - d), 0.0);

    // The zero-skip of operator* is mirrored (sparse row).
    DMatrix az(3, 3, {0, 0, 0, 1, 0, 2, 0, 3, 0});
    DMatrix bz(3, 3);
    fill(bz, 5);
    DMatrix pz;
    pz.gemmInto(az, bz);
    EXPECT_EQ(pz.maxAbsDiff(az * bz), 0.0);
}

/**
 * The historical allocating DARE iteration, kept verbatim as the
 * reference: the in-place loop in trySolveDare must reproduce its
 * Pinf/Kinf bit-for-bit (addInPlace commutes bitwise, gemmInto keeps
 * the accumulation order).
 */
std::optional<LqrCache>
referenceDare(const DMatrix &a, const DMatrix &b, const DMatrix &q,
              const DMatrix &r, double rho, const DMatrix *p_warm,
              double tol, int max_iters)
{
    int nx = a.rows();
    DMatrix q_rho = q + DMatrix::identity(nx) * rho;
    DMatrix r_rho = r + DMatrix::identity(b.cols()) * rho;
    DMatrix at = a.transpose();
    DMatrix bt = b.transpose();
    DMatrix p = p_warm != nullptr ? *p_warm : q_rho;
    DMatrix kinf(b.cols(), nx);
    LqrCache cache;
    for (int it = 0; it < max_iters; ++it) {
        DMatrix btp = bt * p;
        DMatrix quu = r_rho + btp * b;
        DMatrix k_new = luSolve(quu, btp * a);
        DMatrix p_new = q_rho + at * p * (a - b * k_new);
        double dk = k_new.maxAbsDiff(kinf);
        kinf = k_new;
        double dp = p_new.maxAbsDiff(p);
        p = p_new;
        cache.iterations = it + 1;
        cache.residual = dp;
        if (dk < tol && it > 1) {
            DMatrix quu_final = r_rho + bt * p * b;
            cache.kinf = kinf;
            cache.pinf = p;
            cache.quuInv = inverse(quu_final);
            cache.amBKt = (a - b * kinf).transpose();
            return cache;
        }
    }
    return std::nullopt;
}

TEST(Dare, InPlaceIterationBitIdenticalToAllocatingReference)
{
    // Double integrator and a 3-state system, cold and warm started.
    DMatrix a2(2, 2, {1, 0.05, 0, 1});
    DMatrix b2(2, 1, {0.00125, 0.05});
    DMatrix q2 = DMatrix::diag({10.0, 1.0});
    DMatrix r2 = DMatrix::diag({0.1});

    DMatrix a3(3, 3, {1, 0.05, 0.001, 0, 0.98, 0.05, 0.01, 0, 0.95});
    DMatrix b3(3, 2, {0.002, 0, 0.05, 0.01, 0, 0.04});
    DMatrix q3 = DMatrix::diag({5.0, 2.0, 1.0});
    DMatrix r3 = DMatrix::diag({0.2, 0.3});

    struct Case
    {
        const DMatrix *a, *b, *q, *r;
        double rho;
    };
    for (const Case &c :
         {Case{&a2, &b2, &q2, &r2, 1.0}, Case{&a2, &b2, &q2, &r2, 5.0},
          Case{&a3, &b3, &q3, &r3, 1.0}}) {
        auto expect = referenceDare(*c.a, *c.b, *c.q, *c.r, c.rho,
                                    nullptr, 1e-10, 10000);
        auto got = trySolveDare(*c.a, *c.b, *c.q, *c.r, c.rho, nullptr,
                                1e-10, 10000);
        ASSERT_TRUE(expect.has_value());
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(got->iterations, expect->iterations);
        EXPECT_EQ(got->pinf.maxAbsDiff(expect->pinf), 0.0);
        EXPECT_EQ(got->kinf.maxAbsDiff(expect->kinf), 0.0);
        EXPECT_EQ(got->quuInv.maxAbsDiff(expect->quuInv), 0.0);
        EXPECT_EQ(got->amBKt.maxAbsDiff(expect->amBKt), 0.0);

        // Warm start from the converged Pinf: the session-refresh
        // path. Must also match bit-for-bit and converge faster.
        auto warm_ref = referenceDare(*c.a, *c.b, *c.q, *c.r, c.rho,
                                      &expect->pinf, 1e-10, 10000);
        auto warm_got = trySolveDare(*c.a, *c.b, *c.q, *c.r, c.rho,
                                     &expect->pinf, 1e-10, 10000);
        ASSERT_TRUE(warm_ref.has_value());
        ASSERT_TRUE(warm_got.has_value());
        EXPECT_EQ(warm_got->iterations, warm_ref->iterations);
        EXPECT_EQ(warm_got->pinf.maxAbsDiff(warm_ref->pinf), 0.0);
        EXPECT_LE(warm_got->iterations, got->iterations);
    }
}

} // namespace
} // namespace rtoc::numerics
