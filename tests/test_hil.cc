/**
 * @file
 * HIL harness tests: timing calibration linearity and ordering
 * (vector ≪ scalar), closed-loop episode behaviour across compute
 * design points, and the disturbance-rejection machinery.
 */

#include <gtest/gtest.h>

#include "hil/disturbance.hh"
#include "hil/episode.hh"
#include "hil/timing.hh"

namespace rtoc::hil {
namespace {

quad::DroneParams cf = quad::DroneParams::crazyflie();

TEST(Timing, VectorMuchFasterThanScalar)
{
    ControllerTiming v = vectorControllerTiming(cf, 0.02, 10);
    ControllerTiming s = scalarControllerTiming(cf, 0.02, 10);
    EXPECT_GT(s.cyclesPerIter, v.cyclesPerIter * 4.0);
    EXPECT_GT(v.cyclesPerIter, 500.0); // sanity: nonzero cost
}

TEST(Timing, SolveCyclesLinear)
{
    ControllerTiming t;
    t.baseCycles = 1000;
    t.cyclesPerIter = 500;
    EXPECT_DOUBLE_EQ(t.solveCycles(10), 6000.0);
    EXPECT_DOUBLE_EQ(t.solveCycles(0), 1000.0);
}

TEST(Timing, CalibrationReproducible)
{
    ControllerTiming a = vectorControllerTiming(cf, 0.02, 10);
    ControllerTiming b = vectorControllerTiming(cf, 0.02, 10);
    EXPECT_DOUBLE_EQ(a.cyclesPerIter, b.cyclesPerIter);
    EXPECT_DOUBLE_EQ(a.baseCycles, b.baseCycles);
}

class EpisodeTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        timing_v_ = new ControllerTiming(
            vectorControllerTiming(cf, 0.02, 10));
        timing_s_ = new ControllerTiming(
            scalarControllerTiming(cf, 0.02, 10));
    }

    static ControllerTiming *timing_v_;
    static ControllerTiming *timing_s_;
};

ControllerTiming *EpisodeTest::timing_v_ = nullptr;
ControllerTiming *EpisodeTest::timing_s_ = nullptr;

TEST_F(EpisodeTest, VectorAt100MhzCompletesEasy)
{
    HilConfig cfg;
    cfg.timing = *timing_v_;
    cfg.socFreqHz = 100e6;
    cfg.power = soc::PowerParams::vectorCore();
    quad::Scenario sc = quad::makeScenario(quad::Difficulty::Easy, 0);
    EpisodeResult er = runEpisode(cf, sc, cfg);
    EXPECT_TRUE(er.success);
    EXPECT_FALSE(er.crashed);
    EXPECT_GT(er.solveTimesS.size(), 10u);
    // Sub-millisecond solves at 100 MHz.
    EXPECT_LT(er.solveTimesS.summarize().median, 2.5e-3);
}

TEST_F(EpisodeTest, IdealPolicyCompletesEasyAndMedium)
{
    HilConfig cfg;
    cfg.idealPolicy = true;
    cfg.timing = *timing_v_;
    for (auto d : {quad::Difficulty::Easy, quad::Difficulty::Medium}) {
        quad::Scenario sc = quad::makeScenario(d, 1);
        EpisodeResult er = runEpisode(cf, sc, cfg);
        EXPECT_TRUE(er.success) << quad::difficultySpec(d).name;
    }
}

TEST_F(EpisodeTest, ScalarDegradesAtLowFrequency)
{
    quad::Scenario sc = quad::makeScenario(quad::Difficulty::Medium, 2);
    HilConfig lo, hi;
    lo.timing = *timing_s_;
    lo.socFreqHz = 50e6;
    hi.timing = *timing_s_;
    hi.socFreqHz = 500e6;
    EpisodeResult rl = runEpisode(cf, sc, lo);
    EpisodeResult rh = runEpisode(cf, sc, hi);
    EXPECT_TRUE(rh.success);
    // Low-frequency scalar must be visibly worse: either failure or
    // clearly higher actuation power.
    if (rl.success)
        EXPECT_GT(rl.avgRotorPowerW, rh.avgRotorPowerW * 1.02);
}

TEST_F(EpisodeTest, SolveTimeScalesInverselyWithFrequency)
{
    quad::Scenario sc = quad::makeScenario(quad::Difficulty::Easy, 3);
    HilConfig a, b;
    a.timing = *timing_v_;
    a.socFreqHz = 50e6;
    b.timing = *timing_v_;
    b.socFreqHz = 200e6;
    double ma = runEpisode(cf, sc, a).solveTimesS.summarize().median;
    double mb = runEpisode(cf, sc, b).solveTimesS.summarize().median;
    EXPECT_NEAR(ma / mb, 4.0, 1.2);
}

TEST_F(EpisodeTest, ComputeUtilizationSensible)
{
    quad::Scenario sc = quad::makeScenario(quad::Difficulty::Easy, 4);
    HilConfig cfg;
    cfg.timing = *timing_s_;
    cfg.socFreqHz = 100e6;
    EpisodeResult er = runEpisode(cf, sc, cfg);
    EXPECT_GT(er.computeUtilization, 0.05);
    EXPECT_LE(er.computeUtilization, 1.0);
    EXPECT_GT(er.avgSocPowerW, 0.0);
    EXPECT_GT(er.avgRotorPowerW, 0.5);
}

TEST_F(EpisodeTest, RunCellAggregates)
{
    HilConfig cfg;
    cfg.timing = *timing_v_;
    cfg.socFreqHz = 100e6;
    SweepCell cell = runCell(cf, quad::Difficulty::Easy, 4, cfg);
    EXPECT_EQ(cell.episodes, 4);
    EXPECT_GE(cell.successRate, 0.75);
    EXPECT_GT(cell.solveTimeMs.count, 0u);
    EXPECT_GT(cell.avgIterations, 1.0);
}

TEST_F(EpisodeTest, DisturbanceRecoversAtSmallMagnitude)
{
    HilConfig cfg;
    cfg.timing = *timing_v_;
    cfg.socFreqHz = 100e6;
    DisturbSpec spec{DisturbKind::StepForce, 0, 0.01};
    DisturbResult r = runDisturbTrial(cf, spec, cfg);
    EXPECT_TRUE(r.recovered);
    EXPECT_GT(r.ttrS, 0.0);
    EXPECT_LT(r.ttrS, 4.0);
}

TEST_F(EpisodeTest, LargerDisturbanceLargerDeviation)
{
    HilConfig cfg;
    cfg.timing = *timing_v_;
    cfg.socFreqHz = 100e6;
    DisturbSpec small{DisturbKind::StepForce, 0, 0.005};
    DisturbSpec large{DisturbKind::StepForce, 0, 0.02};
    DisturbResult rs = runDisturbTrial(cf, small, cfg);
    DisturbResult rl = runDisturbTrial(cf, large, cfg);
    EXPECT_GT(rl.maxDeviationM, rs.maxDeviationM);
}

TEST_F(EpisodeTest, VectorEnduresLargerDisturbances)
{
    // The Fig. 17 headline: vectorized MPC at 100 MHz endures larger
    // forces than scalar.
    HilConfig v, s;
    v.timing = *timing_v_;
    v.socFreqHz = 100e6;
    s.timing = *timing_s_;
    s.socFreqHz = 100e6;
    double mv =
        maxRecoverableMagnitude(cf, DisturbKind::StepForce, 0, v);
    double ms =
        maxRecoverableMagnitude(cf, DisturbKind::StepForce, 0, s);
    EXPECT_GT(mv, ms * 1.2);
}

TEST(Disturb, KindNamesDistinct)
{
    std::set<std::string> names;
    for (auto k : kAllDisturbKinds)
        names.insert(disturbKindName(k));
    EXPECT_EQ(names.size(), 6u);
}

} // namespace
} // namespace rtoc::hil
