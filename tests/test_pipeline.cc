/**
 * @file
 * Tests for the trace-cached micro-op pipeline and the parallel sweep
 * engine: cached-vs-fresh stream bit-exactness across backends and
 * mapping styles, timing-model determinism over replays (the scratch
 * reuse must never leak state between runs or threads), thread-pool
 * semantics, and serial-vs-parallel sweep equality under fixed seeds.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>

#include "bench_util.hh"
#include "common/ring_fifo.hh"
#include "common/thread_pool.hh"
#include "cpu/inorder.hh"
#include "cpu/ooo.hh"
#include "hil/sweep.hh"
#include "hil/timing.hh"
#include "isa/program_cache.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "systolic/gemmini.hh"
#include "vector/saturn.hh"

namespace rtoc {
namespace {

bool
sameUop(const isa::Uop &a, const isa::Uop &b)
{
    return a.kind == b.kind && a.dst == b.dst && a.src0 == b.src0 &&
           a.src1 == b.src1 && a.src2 == b.src2 && a.vl == b.vl &&
           a.sew == b.sew && a.lmul8 == b.lmul8 && a.bytes == b.bytes &&
           a.rows == b.rows && a.cols == b.cols && a.taken == b.taken;
}

bool
samePrograms(const isa::Program &a, const isa::Program &b)
{
    if (a.size() != b.size() || a.kernels().size() != b.kernels().size())
        return false;
    for (size_t i = 0; i < a.size(); ++i)
        if (!sameUop(a.uops()[i], b.uops()[i]))
            return false;
    for (size_t i = 0; i < a.kernels().size(); ++i) {
        const auto &ka = a.kernels()[i];
        const auto &kb = b.kernels()[i];
        if (ka.id != kb.id || ka.begin != kb.begin || ka.end != kb.end)
            return false;
    }
    return true;
}

// --- kernel-name interning ---

TEST(KernelIntern, StableIdsAndRoundTrip)
{
    isa::KernelId a1 = isa::internKernel("intern_test_a");
    isa::KernelId b = isa::internKernel("intern_test_b");
    isa::KernelId a2 = isa::internKernel("intern_test_a");
    EXPECT_EQ(a1, a2);
    EXPECT_NE(a1, b);
    EXPECT_EQ(isa::kernelName(a1), "intern_test_a");
    EXPECT_EQ(isa::kernelName(b), "intern_test_b");
}

// --- cached vs fresh emission, all backends x mapping styles ---

struct EmitCase
{
    const char *label;
    std::function<std::unique_ptr<matlib::Backend>()> make;
    tinympc::MappingStyle style;
};

std::vector<EmitCase>
emitCases()
{
    using tinympc::MappingStyle;
    std::vector<EmitCase> cases;
    for (auto style : {MappingStyle::Library, MappingStyle::LibraryPerStep,
                       MappingStyle::Fused}) {
        cases.push_back({"scalar",
                         [] {
                             return std::make_unique<matlib::ScalarBackend>(
                                 matlib::ScalarFlavor::Optimized);
                         },
                         style});
        cases.push_back({"rvv",
                         [] {
                             return std::make_unique<matlib::RvvBackend>(
                                 512,
                                 matlib::RvvMapping::handOptimized());
                         },
                         style});
    }
    // Gemmini: the library-style mappings the paper evaluates.
    for (auto style :
         {tinympc::MappingStyle::Library,
          tinympc::MappingStyle::LibraryPerStep}) {
        cases.push_back({"gemmini",
                         [] {
                             return std::make_unique<matlib::GemminiBackend>(
                                 matlib::GemminiMapping::fullyOptimized());
                         },
                         style});
    }
    return cases;
}

TEST(ProgramCache, CachedReplayBitIdenticalToFreshEmission)
{
    for (const auto &c : emitCases()) {
        auto fresh_backend = c.make();
        isa::Program fresh =
            bench::emitQuadSolve(*fresh_backend, c.style);

        auto cached_backend = c.make();
        auto cached =
            bench::emitQuadSolveCached(*cached_backend, c.style);
        ASSERT_TRUE(cached != nullptr);
        EXPECT_TRUE(samePrograms(fresh, *cached))
            << c.label << " style " << static_cast<int>(c.style);

        // Second fetch returns the same shared object (a hit).
        auto again_backend = c.make();
        auto again = bench::emitQuadSolveCached(*again_backend, c.style);
        EXPECT_EQ(cached.get(), again.get());
    }
}

TEST(ProgramCache, EmissionIsDroneIndependent)
{
    // The cache keys (bench_util, hil::calibrateTiming) deliberately
    // omit the drone: parameters change the numbers flowing through
    // the stream, never the stream itself. Pin that premise across
    // all three Table-1 drones and two solve shapes.
    for (auto style : {tinympc::MappingStyle::Library,
                       tinympc::MappingStyle::Fused}) {
        matlib::RvvBackend b0(512, matlib::RvvMapping::handOptimized());
        isa::Program cf = bench::emitQuadSolve(
            b0, style, 5, quad::DroneParams::crazyflie());
        matlib::RvvBackend b1(512, matlib::RvvMapping::handOptimized());
        isa::Program hawk = bench::emitQuadSolve(
            b1, style, 5, quad::DroneParams::hawk());
        matlib::RvvBackend b2(512, matlib::RvvMapping::handOptimized());
        isa::Program heron = bench::emitQuadSolve(
            b2, style, 5, quad::DroneParams::heron());
        EXPECT_TRUE(samePrograms(cf, hawk));
        EXPECT_TRUE(samePrograms(cf, heron));
    }
}

TEST(ProgramCache, StatsCountHitsAndMisses)
{
    isa::ProgramCache cache;
    int emissions = 0;
    auto emit = [&](isa::Program &p) {
        ++emissions;
        p.push(isa::Uop::scalar(isa::UopKind::IntAlu, p.newReg()));
    };
    auto a = cache.getOrEmit("k1", emit);
    auto b = cache.getOrEmit("k1", emit);
    auto c = cache.getOrEmit("k2", emit);
    EXPECT_EQ(emissions, 2);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    auto st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.entries, 2u);
    EXPECT_EQ(st.cachedUops, 2u);
    EXPECT_TRUE(cache.lookup("k1") != nullptr);
    EXPECT_TRUE(cache.lookup("k3") == nullptr);
}

// --- timing models over cached replays: determinism, thread safety ---

TEST(TimingReplay, RepeatedRunsIdenticalOnAllModels)
{
    matlib::ScalarBackend sb(matlib::ScalarFlavor::Optimized);
    auto sp =
        bench::emitQuadSolveCached(sb, tinympc::MappingStyle::Library);
    matlib::RvvBackend rb(512, matlib::RvvMapping::handOptimized());
    auto rp = bench::emitQuadSolveCached(rb, tinympc::MappingStyle::Fused);
    matlib::GemminiBackend gb(matlib::GemminiMapping::fullyOptimized());
    auto gp =
        bench::emitQuadSolveCached(gb, tinympc::MappingStyle::Library);

    cpu::InOrderCore shuttle(cpu::InOrderConfig::shuttle());
    cpu::OooCore boom(cpu::OooConfig::boomMedium());
    vector::SaturnModel saturn(vector::SaturnConfig::make(512, 256, true));
    systolic::GemminiModel gem(systolic::GemminiConfig::os4x4(64));

    for (int rep = 0; rep < 3; ++rep) {
        static uint64_t first[4] = {0, 0, 0, 0};
        uint64_t got[4] = {shuttle.run(*sp).cycles, boom.run(*sp).cycles,
                           saturn.run(*rp).cycles, gem.run(*gp).cycles};
        for (int i = 0; i < 4; ++i) {
            if (rep == 0)
                first[i] = got[i];
            else
                EXPECT_EQ(got[i], first[i]) << "model " << i;
        }
    }
}

TEST(TimingReplay, ConcurrentRunsMatchSerialRuns)
{
    matlib::RvvBackend rb(512, matlib::RvvMapping::handOptimized());
    auto prog =
        bench::emitQuadSolveCached(rb, tinympc::MappingStyle::Fused);
    vector::SaturnModel saturn(vector::SaturnConfig::make(512, 256, true));
    uint64_t expect = saturn.run(*prog).cycles;

    ThreadPool pool(4);
    std::vector<uint64_t> got(16, 0);
    pool.parallelFor(got.size(), [&](size_t i) {
        got[i] = saturn.run(*prog).cycles;
    });
    for (uint64_t g : got)
        EXPECT_EQ(g, expect);
}

// --- thread pool semantics ---

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h = 0;
    pool.parallelFor(hits.size(), [&](size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline)
{
    ThreadPool pool(3);
    std::atomic<int> total{0};
    pool.parallelFor(5, [&](size_t) {
        pool.parallelFor(7, [&](size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 35);
}

TEST(ThreadPoolTest, ExceptionPropagates)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(8,
                                  [&](size_t i) {
                                      if (i == 3)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // The pool survives the throw and stays usable.
    std::atomic<int> n{0};
    pool.parallelFor(4, [&](size_t) { ++n; });
    EXPECT_EQ(n.load(), 4);
}

// --- ring fifo ---

TEST(RingFifoTest, FifoOrderAcrossGrowth)
{
    RingFifo f;
    EXPECT_TRUE(f.empty());
    for (uint64_t i = 0; i < 100; ++i)
        f.pushBack(i);
    for (uint64_t i = 0; i < 50; ++i) {
        EXPECT_EQ(f.front(), i);
        f.popFront();
    }
    for (uint64_t i = 100; i < 300; ++i)
        f.pushBack(i); // forces wrap + growth with live elements
    for (uint64_t i = 50; i < 300; ++i) {
        EXPECT_EQ(f.front(), i);
        f.popFront();
    }
    EXPECT_TRUE(f.empty());
    f.clear();
    f.pushBack(7);
    EXPECT_EQ(f.front(), 7u);
}

// --- serial vs parallel sweeps ---

TEST(Sweep, ParallelEpisodesBitIdenticalToSerial)
{
    quad::DroneParams drone = quad::DroneParams::crazyflie();
    hil::HilConfig cfg;
    cfg.timing = hil::vectorControllerTiming(drone, 0.02, 10);
    cfg.socFreqHz = 100e6;

    ThreadPool serial(1);
    ThreadPool pooled(4);
    auto a = hil::SweepRunner(serial).runEpisodes(
        drone, quad::Difficulty::Easy, 4, cfg);
    auto b = hil::SweepRunner(pooled).runEpisodes(
        drone, quad::Difficulty::Easy, 4, cfg);

    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].success, b[i].success) << i;
        EXPECT_EQ(a[i].crashed, b[i].crashed) << i;
        EXPECT_EQ(a[i].waypointsReached, b[i].waypointsReached) << i;
        EXPECT_EQ(a[i].missionTimeS, b[i].missionTimeS) << i;
        EXPECT_EQ(a[i].rotorEnergyJ, b[i].rotorEnergyJ) << i;
        EXPECT_EQ(a[i].socEnergyJ, b[i].socEnergyJ) << i;
        ASSERT_EQ(a[i].solveTimesS.size(), b[i].solveTimesS.size()) << i;
        for (size_t s = 0; s < a[i].solveTimesS.samples().size(); ++s) {
            EXPECT_EQ(a[i].solveTimesS.samples()[s],
                      b[i].solveTimesS.samples()[s]);
        }
    }
}

TEST(Sweep, MapPreservesIndexOrder)
{
    hil::SweepRunner sweep;
    auto out = sweep.map<size_t>(64, [](size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 64u);
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

// --- kernel-region guards ---

TEST(ProgramGuards, NestedBeginPanics)
{
    isa::Program p;
    p.beginKernel("outer_region");
    EXPECT_DEATH(p.beginKernel("inner_region"), "still open");
}

TEST(ProgramGuards, UnmatchedEndPanics)
{
    isa::Program p;
    EXPECT_DEATH(p.endKernel(), "no region open");
}

TEST(ProgramGuards, TimingOpenRegionPanics)
{
    isa::Program p;
    p.beginKernel("half_open");
    p.push(isa::Uop::scalar(isa::UopKind::IntAlu, p.newReg()));
    cpu::InOrderCore rocket(cpu::InOrderConfig::rocket());
    EXPECT_DEATH(rocket.run(p), "still open");
}

TEST(ProgramGuards, ClearWithOpenRegionPanics)
{
    isa::Program p;
    p.beginKernel("pending_region");
    EXPECT_DEATH(p.clear(), "still open");
}

} // namespace
} // namespace rtoc
