/**
 * @file
 * Tests for the micro-op IR: kind classification, FLOP accounting,
 * program building and kernel-region bookkeeping.
 */

#include <gtest/gtest.h>

#include "isa/program.hh"
#include "isa/uop.hh"

namespace rtoc::isa {
namespace {

TEST(Uop, KindClassificationIsPartition)
{
    for (int k = 0; k < static_cast<int>(UopKind::NumKinds); ++k) {
        UopKind kind = static_cast<UopKind>(k);
        int classes = (isScalar(kind) ? 1 : 0) +
                      (isVector(kind) ? 1 : 0) + (isRocc(kind) ? 1 : 0);
        EXPECT_EQ(classes, 1) << "kind " << uopName(kind);
    }
}

TEST(Uop, FlopWeights)
{
    EXPECT_DOUBLE_EQ(flopsPerElement(UopKind::FpFma), 2.0);
    EXPECT_DOUBLE_EQ(flopsPerElement(UopKind::FpAdd), 1.0);
    EXPECT_DOUBLE_EQ(flopsPerElement(UopKind::Load), 0.0);
    EXPECT_DOUBLE_EQ(flopsPerElement(UopKind::VFma), 2.0);
}

TEST(Uop, Helpers)
{
    Uop s = Uop::scalar(UopKind::FpAdd, 3, 1, 2);
    EXPECT_EQ(s.dst, 3u);
    EXPECT_EQ(s.src0, 1u);
    EXPECT_EQ(s.src1, 2u);

    Uop m = Uop::mem(UopKind::Load, 5, 4, 8);
    EXPECT_EQ(m.bytes, 8u);

    Uop v = Uop::vec(UopKind::VFma, 1, 2, 3, 16, 16);
    EXPECT_EQ(v.vl, 16u);
    EXPECT_EQ(v.lmul8, 16);

    Uop r = Uop::rocc(UopKind::RoccCompute, 4, 4, 64);
    EXPECT_EQ(r.rows, 4);
    EXPECT_EQ(r.cols, 4);
}

TEST(Program, RegisterSpacesAreDisjoint)
{
    Program p;
    uint32_t s = p.newReg();
    uint32_t v = p.newVReg();
    EXPECT_FALSE(Program::isVReg(s));
    EXPECT_TRUE(Program::isVReg(v));
    EXPECT_FALSE(Program::isVReg(kNoReg));
}

TEST(Program, FlopAccounting)
{
    Program p;
    p.push(Uop::scalar(UopKind::FpFma, p.newReg()));  // 2
    p.push(Uop::vec(UopKind::VFma, p.newVReg(), kNoReg, kNoReg, 8)); // 16
    p.push(Uop::vec(UopKind::VArith, p.newVReg(), kNoReg, kNoReg, 4)); // 4
    p.push(Uop::rocc(UopKind::RoccCompute, 4, 4)); // 32
    p.push(Uop::mem(UopKind::Load, p.newReg(), kNoReg)); // 0
    EXPECT_DOUBLE_EQ(p.flops(), 2 + 16 + 4 + 32);
}

TEST(Program, CountsByClass)
{
    Program p;
    p.push(Uop::scalar(UopKind::IntAlu, p.newReg()));
    p.push(Uop::scalar(UopKind::FpAdd, p.newReg()));
    p.push(Uop::vec(UopKind::VLoad, p.newVReg(), kNoReg, kNoReg, 8));
    p.push(Uop::rocc(UopKind::RoccFence, 0, 0));
    EXPECT_EQ(p.countScalar(), 2u);
    EXPECT_EQ(p.countVector(), 1u);
    EXPECT_EQ(p.countRocc(), 1u);
}

TEST(Program, KernelRegions)
{
    Program p;
    p.beginKernel("a");
    p.push(Uop::scalar(UopKind::IntAlu, p.newReg()));
    p.endKernel();
    p.beginKernel("b");
    p.push(Uop::scalar(UopKind::IntAlu, p.newReg()));
    p.push(Uop::scalar(UopKind::IntAlu, p.newReg()));
    p.endKernel();

    ASSERT_EQ(p.kernels().size(), 2u);
    EXPECT_EQ(p.kernels()[0].name(), "a");
    EXPECT_EQ(p.kernels()[0].end - p.kernels()[0].begin, 1u);
    EXPECT_EQ(p.kernels()[1].end - p.kernels()[1].begin, 2u);
}

TEST(Program, AccumulateKernelCyclesMergesByName)
{
    KernelId fwd = internKernel("fwd");
    KernelId bwd = internKernel("bwd");
    std::vector<KernelRegion> regions = {
        {fwd, 0, 2}, {bwd, 2, 4}, {fwd, 4, 6}};
    std::vector<uint64_t> cycles = {10, 20, 30};
    auto merged = accumulateKernelCycles(regions, cycles);
    ASSERT_EQ(merged.size(), 2u);
    // Alphabetical order from the map: bwd then fwd.
    EXPECT_EQ(merged[0].name, "bwd");
    EXPECT_EQ(merged[0].cycles, 20u);
    EXPECT_EQ(merged[1].name, "fwd");
    EXPECT_EQ(merged[1].cycles, 40u);
    EXPECT_EQ(merged[1].invocations, 2u);
}

TEST(Program, ClearDropsUopsKeepsRegCounter)
{
    Program p;
    uint32_t r1 = p.newReg();
    p.push(Uop::scalar(UopKind::IntAlu, r1));
    p.clear();
    EXPECT_EQ(p.size(), 0u);
    uint32_t r2 = p.newReg();
    EXPECT_NE(r1, r2);
}

} // namespace
} // namespace rtoc::isa
