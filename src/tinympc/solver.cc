#include "solver.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "matlib/gemmini_backend.hh"

namespace rtoc::tinympc {

using matlib::Mat;

namespace {

/**
 * Kernel-region ids interned once per process; the per-solve hot path
 * opens regions by id and never constructs a name string.
 */
struct KernelIds
{
    isa::KernelId forwardPass1 = isa::internKernel("forward_pass_1");
    isa::KernelId forwardPass2 = isa::internKernel("forward_pass_2");
    isa::KernelId updateSlack1 = isa::internKernel("update_slack_1");
    isa::KernelId updateSlack2 = isa::internKernel("update_slack_2");
    isa::KernelId updateDual1 = isa::internKernel("update_dual_1");
    isa::KernelId updateLinearCost1 =
        isa::internKernel("update_linear_cost_1");
    isa::KernelId updateLinearCost2 =
        isa::internKernel("update_linear_cost_2");
    isa::KernelId updateLinearCost3 =
        isa::internKernel("update_linear_cost_3");
    isa::KernelId updateLinearCost4 =
        isa::internKernel("update_linear_cost_4");
    isa::KernelId backwardPass1 = isa::internKernel("backward_pass_1");
    isa::KernelId backwardPass2 = isa::internKernel("backward_pass_2");
    isa::KernelId primalResidualState =
        isa::internKernel("primal_residual_state");
    isa::KernelId dualResidualState =
        isa::internKernel("dual_residual_state");
    isa::KernelId primalResidualInput =
        isa::internKernel("primal_residual_input");
    isa::KernelId dualResidualInput =
        isa::internKernel("dual_residual_input");
    isa::KernelId slackCopy = isa::internKernel("slack_copy");
    isa::KernelId affineShift = isa::internKernel("affine_shift");
    isa::KernelId riccatiSweep = isa::internKernel("riccati_sweep");
    isa::KernelId modelRefreshCommit =
        isa::internKernel("model_refresh_commit");
};

const KernelIds &
kid()
{
    static const KernelIds ids;
    return ids;
}

} // namespace

Solver::Solver(Workspace &ws, matlib::Backend &backend, MappingStyle style)
    : ws_(ws), backend_(backend), style_(style)
{}

void
Solver::checkFusedEmission() const
{
    if (style_ == MappingStyle::Fused && backend_.program() != nullptr &&
        !backend_.supportsFusedEmission()) {
        rtoc_fatal("backend '%s' cannot emit MappingStyle::Fused "
                   "kernels (CISC tiled-matmul constraints forbid "
                   "register-resident per-step fusion, paper §4.2.3); "
                   "use MappingStyle::Library or LibraryPerStep",
                   backend_.name().c_str());
    }
}

void
Solver::setup()
{
    checkFusedEmission();
    // Gemmini scratchpad residency: stage the whole solver workspace
    // plus the cache matrices into bank 0 once (paper Fig. 8).
    if (auto *gem = dynamic_cast<matlib::GemminiBackend *>(&backend_)) {
        Mat mats[] = {ws_.kinf.view(),   ws_.kinfT.view(),
                      ws_.pinf.view(),   ws_.quuInv.view(),
                      ws_.amBKt.view(),  ws_.adyn.view(),
                      ws_.bdyn.view(),   ws_.bdynT.view(),
                      ws_.x.view(),      ws_.u.view(),
                      ws_.znew.view(),   ws_.z.view(),
                      ws_.y.view(),      ws_.vnew.view(),
                      ws_.v.view(),      ws_.g.view(),
                      ws_.q.view(),      ws_.p.view(),
                      ws_.r.view(),      ws_.d.view(),
                      ws_.xRef.view(),   ws_.uMin.view(),
                      ws_.uMax.view(),   ws_.xMin.view(),
                      ws_.xMax.view(),   ws_.qDiag.view()};
        gem->initResident({&mats[0],  &mats[1],  &mats[2],  &mats[3],
                           &mats[4],  &mats[5],  &mats[6],  &mats[7],
                           &mats[8],  &mats[9],  &mats[10], &mats[11],
                           &mats[12], &mats[13], &mats[14], &mats[15],
                           &mats[16], &mats[17], &mats[18], &mats[19],
                           &mats[20], &mats[21], &mats[22], &mats[23],
                           &mats[24], &mats[25]});
    }
}

void
Solver::forwardPass()
{
    for (int i = 0; i < ws_.N - 1; ++i) {
        Mat xi = ws_.x.row(i);
        Mat xn = ws_.x.row(i + 1);
        Mat ui = ws_.u.row(i);
        Mat di = ws_.d.row(i);

        if (style_ == MappingStyle::Fused)
            backend_.beginFuse();
        {
            KernelScope k(backend_, kid().forwardPass1);
            // u[i] = -Kinf x[i] - d[i]
            backend_.gemvSaxpby(ui, ws_.kinf.view(), xi, -1.0f, 0.0f,
                                1.0f, -1.0f, di);
        }
        {
            KernelScope k(backend_, kid().forwardPass2);
            // x[i+1] = Adyn x[i] + Bdyn u[i] (+ cd off-trim)
            backend_.gemv(xn, ws_.adyn.view(), xi, 1.0f, 0.0f);
            if (ws_.hasAffine) {
                backend_.gemvSaxpby(xn, ws_.bdyn.view(), ui, 1.0f,
                                    1.0f, 1.0f, 1.0f,
                                    ws_.affine.view());
            } else {
                backend_.gemv(xn, ws_.bdyn.view(), ui, 1.0f, 1.0f);
            }
        }
        if (style_ == MappingStyle::Fused)
            backend_.endFuse();
    }
}

void
Solver::updateSlack()
{
    if (style_ == MappingStyle::Library) {
        {
            KernelScope k(backend_, kid().updateSlack1);
            backend_.add(ws_.znew.view(), ws_.u.view(), ws_.y.view());
            backend_.clampVec(ws_.znew.view(), ws_.znew.view(),
                              ws_.uMin.view(), ws_.uMax.view());
        }
        {
            KernelScope k(backend_, kid().updateSlack2);
            backend_.add(ws_.vnew.view(), ws_.x.view(), ws_.g.view());
            backend_.clampVec(ws_.vnew.view(), ws_.vnew.view(),
                              ws_.xMin.view(), ws_.xMax.view());
        }
        return;
    }
    // Fused: per-step rows, temporaries register-resident.
    for (int i = 0; i < ws_.N - 1; ++i) {
        backend_.beginFuse();
        KernelScope k(backend_, kid().updateSlack1);
        Mat zi = ws_.znew.row(i);
        backend_.add(zi, ws_.u.row(i), ws_.y.row(i));
        backend_.clampVec(zi, zi, ws_.uMin.row(i), ws_.uMax.row(i));
        backend_.endFuse();
    }
    for (int i = 0; i < ws_.N; ++i) {
        backend_.beginFuse();
        KernelScope k(backend_, kid().updateSlack2);
        Mat vi = ws_.vnew.row(i);
        backend_.add(vi, ws_.x.row(i), ws_.g.row(i));
        backend_.clampVec(vi, vi, ws_.xMin.row(i), ws_.xMax.row(i));
        backend_.endFuse();
    }
}

void
Solver::updateDual()
{
    if (style_ == MappingStyle::Library) {
        KernelScope k(backend_, kid().updateDual1);
        backend_.accumDiff(ws_.y.view(), ws_.u.view(), ws_.znew.view());
        backend_.accumDiff(ws_.g.view(), ws_.x.view(), ws_.vnew.view());
        return;
    }
    for (int i = 0; i < ws_.N - 1; ++i) {
        backend_.beginFuse();
        KernelScope k(backend_, kid().updateDual1);
        backend_.accumDiff(ws_.y.row(i), ws_.u.row(i), ws_.znew.row(i));
        backend_.endFuse();
    }
    for (int i = 0; i < ws_.N; ++i) {
        backend_.beginFuse();
        KernelScope k(backend_, kid().updateDual1);
        backend_.accumDiff(ws_.g.row(i), ws_.x.row(i), ws_.vnew.row(i));
        backend_.endFuse();
    }
}

void
Solver::updateLinearCost()
{
    float rho = ws_.settings.rho;
    if (style_ == MappingStyle::Library) {
        {
            KernelScope k(backend_, kid().updateLinearCost1);
            // r = -rho (znew - y)
            backend_.saxpby(ws_.r.view(), -rho, ws_.znew.view(), rho,
                            ws_.y.view());
        }
        {
            KernelScope k(backend_, kid().updateLinearCost2);
            // q = -(Xref . Q)
            backend_.rowScaleNeg(ws_.q.view(), ws_.xRef.view(),
                                 ws_.qDiag.view());
        }
        {
            KernelScope k(backend_, kid().updateLinearCost3);
            // q -= rho (vnew - g)
            backend_.axpyDiff(ws_.q.view(), -rho, ws_.vnew.view(),
                              ws_.g.view());
        }
    } else {
        for (int i = 0; i < ws_.N - 1; ++i) {
            backend_.beginFuse();
            KernelScope k(backend_, kid().updateLinearCost1);
            backend_.saxpby(ws_.r.row(i), -rho, ws_.znew.row(i), rho,
                            ws_.y.row(i));
            backend_.endFuse();
        }
        for (int i = 0; i < ws_.N; ++i) {
            backend_.beginFuse();
            {
                KernelScope k(backend_, kid().updateLinearCost2);
                backend_.rowScaleNeg(ws_.q.row(i), ws_.xRef.row(i),
                                     ws_.qDiag.view());
            }
            {
                KernelScope k(backend_, kid().updateLinearCost3);
                backend_.axpyDiff(ws_.q.row(i), -rho, ws_.vnew.row(i),
                                  ws_.g.row(i));
            }
            backend_.endFuse();
        }
    }
    {
        // p[N-1] = -(Xref[N-1]^T Pinf) - rho (vnew[N-1] - g[N-1])
        if (style_ == MappingStyle::Fused)
            backend_.beginFuse();
        KernelScope k(backend_, kid().updateLinearCost4);
        Mat p_last = ws_.p.row(ws_.N - 1);
        backend_.gemvT(p_last, ws_.pinf.view(), ws_.xRef.row(ws_.N - 1),
                       -1.0f, 0.0f);
        backend_.axpyDiff(p_last, -rho, ws_.vnew.row(ws_.N - 1),
                          ws_.g.row(ws_.N - 1));
        if (style_ == MappingStyle::Fused)
            backend_.endFuse();
    }
}

void
Solver::backwardPass()
{
    for (int i = ws_.N - 2; i >= 0; --i) {
        Mat pn = ws_.p.row(i + 1);
        Mat pi = ws_.p.row(i);
        Mat ri = ws_.r.row(i);
        Mat di = ws_.d.row(i);
        Mat tmp = ws_.tmpNu.view();

        if (style_ == MappingStyle::Fused)
            backend_.beginFuse();
        if (ws_.hasAffine) {
            // Affine dynamics shift every cost-to-go gradient by
            // Pinf·cd: use p_eff[i+1] = p[i+1] + Pinf·cd in both the
            // feedforward and the recursion (exact affine-LQR terms).
            KernelScope k(backend_, kid().affineShift);
            backend_.saxpby(ws_.tmpNx.view(), 1.0f, pn, 1.0f,
                            ws_.pAffine.view());
            pn = ws_.tmpNx.view();
        }
        {
            KernelScope k(backend_, kid().backwardPass1);
            // d[i] = Quu_inv (Bdyn^T p[i+1] + r[i])
            backend_.gemvSaxpby(tmp, ws_.bdynT.view(), pn, 1.0f, 0.0f,
                                1.0f, 1.0f, ri);
            backend_.gemv(di, ws_.quuInv.view(), tmp, 1.0f, 0.0f);
        }
        {
            KernelScope k(backend_, kid().backwardPass2);
            // p[i] = q[i] + AmBKt p[i+1] - Kinf^T r[i]
            backend_.gemvSaxpby(pi, ws_.amBKt.view(), pn, 1.0f, 0.0f,
                                1.0f, 1.0f, ws_.q.row(i));
            backend_.gemv(pi, ws_.kinfT.view(), ri, -1.0f, 1.0f);
        }
        if (style_ == MappingStyle::Fused)
            backend_.endFuse();
    }
}

bool
Solver::checkResiduals(SolveResult &res)
{
    float rho = ws_.settings.rho;
    {
        KernelScope k(backend_, kid().primalResidualState);
        res.primalResidualState =
            backend_.absMaxDiff(ws_.x.view(), ws_.vnew.view());
    }
    {
        KernelScope k(backend_, kid().dualResidualState);
        res.dualResidualState =
            rho * backend_.absMaxDiff(ws_.v.view(), ws_.vnew.view());
    }
    {
        KernelScope k(backend_, kid().primalResidualInput);
        res.primalResidualInput =
            backend_.absMaxDiff(ws_.u.view(), ws_.znew.view());
    }
    {
        KernelScope k(backend_, kid().dualResidualInput);
        res.dualResidualInput =
            rho * backend_.absMaxDiff(ws_.z.view(), ws_.znew.view());
    }
    const Settings &s = ws_.settings;
    return res.primalResidualState < s.priTol &&
           res.primalResidualInput < s.priTol &&
           res.dualResidualState < s.duaTol &&
           res.dualResidualInput < s.duaTol;
}

SolveResult
Solver::solve(int max_iters)
{
    checkFusedEmission();
    SolveResult res;
    const Settings &s = ws_.settings;
    // Anytime budget: <=0 means the configured bound (the historical
    // path); a positive budget caps the iteration count.
    const int bound = max_iters > 0 ? std::min(max_iters, s.maxIters)
                                    : s.maxIters;

    for (int iter = 1; iter <= bound; ++iter) {
        forwardPass();
        updateSlack();
        updateDual();
        updateLinearCost();
        backwardPass();
        res.iterations = iter;

        bool check = (iter % s.checkTermination) == 0;
        if (check && checkResiduals(res)) {
            res.converged = true;
        }
        {
            // Slack bookkeeping for the next dual residual.
            KernelScope k(backend_, kid().slackCopy);
            backend_.copy(ws_.z.view(), ws_.znew.view());
            backend_.copy(ws_.v.view(), ws_.vnew.view());
        }
        if (res.converged)
            break;
    }
    // Export the solution to the CPU/actuators (Gemmini: mvout+fence).
    backend_.sync();

    // Divergence check: non-finite residuals or command mean the
    // iteration blew up (compounding quantization error on narrow
    // formats). Costs nu + 4 finiteness tests per solve.
    bool finite = std::isfinite(res.primalResidualState) &&
                  std::isfinite(res.dualResidualState) &&
                  std::isfinite(res.primalResidualInput) &&
                  std::isfinite(res.dualResidualInput);
    matlib::Mat u0 = ws_.u.row(0);
    for (int i = 0; finite && i < u0.cols; ++i)
        finite = std::isfinite(u0[i]);
    res.diverged = !finite;
    return res;
}

void
emitModelRefresh(Workspace &ws, matlib::Backend &backend,
                 int riccati_iters)
{
    rtoc_assert(riccati_iters >= 1);
    const int nx = ws.nx;
    const int nu = ws.nu;

    // Scratch results: the sweep computes real float32 values (the
    // flop/traffic proxy of the on-device refresh) without touching
    // the workspace, whose cache stays the authoritative double-
    // precision solution committed by Workspace::refreshModel.
    Buffer btp(nu, nx), quu(nu, nu), quuW(nu, nu), ka(nu, nx);
    Buffer knew(nu, nx), bk(nx, nx), ambk(nx, nx), pa(nx, nx);
    Buffer pnew(nx, nx), pc(1, nx);

    // Gemmini refresh sessions restage the cache matrices (residency
    // and config-elision state reset, so the stream depends only on
    // mapping and shape — never on emission history).
    if (auto *gem = dynamic_cast<matlib::GemminiBackend *>(&backend)) {
        Mat mats[] = {ws.kinf.view(),   ws.kinfT.view(),
                      ws.pinf.view(),   ws.quuInv.view(),
                      ws.amBKt.view(),  ws.adyn.view(),
                      ws.bdyn.view(),   ws.bdynT.view()};
        gem->initResident({&mats[0], &mats[1], &mats[2], &mats[3],
                           &mats[4], &mats[5], &mats[6], &mats[7]});
    }

    for (int it = 0; it < riccati_iters; ++it) {
        // One fixed-point sweep of P <- Q + A'P(A - BK), K = Quu^-1
        // B'PA, in float32 over scratch operands (matching shapes and
        // operation mix; the nu x nu inverse is modelled by one extra
        // nu^3 gemm).
        KernelScope k(backend, kid().riccatiSweep);
        backend.gemm(btp.view(), ws.bdynT.view(), ws.pinf.view());
        backend.gemm(quu.view(), btp.view(), ws.bdyn.view());
        backend.gemm(quuW.view(), quu.view(), ws.quuInv.view());
        backend.gemm(ka.view(), btp.view(), ws.adyn.view());
        backend.gemm(knew.view(), quuW.view(), ka.view());
        backend.gemm(bk.view(), ws.bdyn.view(), knew.view());
        backend.saxpby(ambk.view(), 1.0f, ws.adyn.view(), -1.0f,
                       bk.view());
        backend.gemm(pa.view(), ws.pinf.view(), ambk.view());
        backend.gemm(pnew.view(), ws.amBKt.view(), pa.view());
        backend.saxpby(pnew.view(), 1.0f, pnew.view(), 1.0f,
                       ws.pinf.view());
    }
    {
        // Cache commit: write back the refreshed terms (modelled as
        // one pass over each cache matrix) and precompute the affine
        // shift Pinf·cd into scratch.
        KernelScope k(backend, kid().modelRefreshCommit);
        for (Buffer *b : {&ws.adyn, &ws.bdyn, &ws.bdynT, &ws.kinf,
                          &ws.kinfT, &ws.pinf, &ws.quuInv, &ws.amBKt,
                          &ws.affine}) {
            backend.copy(b->view(), b->view());
        }
        backend.gemvT(pc.view(), ws.pinf.view(), ws.affine.view(),
                      1.0f, 0.0f);
    }
    backend.sync();
}

matlib::fx::Scaling
calibrateFixedScaling(Workspace &ws, matlib::NumericFormat f)
{
    auto mat_max = [](const Mat &m) {
        double r = 0.0;
        for (int i = 0; i < m.size(); ++i) {
            double v = std::fabs(static_cast<double>(
                m.data[static_cast<size_t>(i)]));
            if (std::isfinite(v) && v > r)
                r = v;
        }
        return r;
    };

    // Gain/dynamics ranges: exact — the cached LQR solution is known
    // before the fixed-point datapath ever runs.
    double mat_range = 1.0;
    Buffer *mats[] = {&ws.kinf,   &ws.kinfT, &ws.pinf,
                      &ws.quuInv, &ws.amBKt, &ws.adyn,
                      &ws.bdyn,   &ws.bdynT};
    for (Buffer *b : mats)
        mat_range = std::max(mat_range, mat_max(b->view()));

    // Trajectory ranges: references plus finite bound-box edges
    // (sentinel "unbounded" magnitudes are excluded), with 4x
    // excursion headroom for transients beyond the reference.
    double vec_range = 1.0;
    vec_range = std::max(vec_range, mat_max(ws.xRef.view()));
    Buffer *boxes[] = {&ws.uMin, &ws.uMax, &ws.xMin, &ws.xMax};
    for (Buffer *b : boxes) {
        const Mat m = b->view();
        for (int i = 0; i < m.size(); ++i) {
            double v = std::fabs(static_cast<double>(
                m.data[static_cast<size_t>(i)]));
            if (std::isfinite(v) && v < 1e6 && v > vec_range)
                vec_range = v;
        }
    }
    vec_range *= 4.0;

    // Dot-product / costate magnitudes: one gain row against a
    // trajectory vector, with slack for the ADMM linear-cost terms.
    double acc_range = mat_range * vec_range * 2.0;

    return matlib::fx::Scaling::forRanges(f, mat_range, vec_range,
                                          acc_range);
}

} // namespace rtoc::tinympc
