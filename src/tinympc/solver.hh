/**
 * @file
 * TinyMPC ADMM solver over a matlib backend.
 *
 * Two software structures, matching the paper's study:
 *  - MappingStyle::Library — every kernel is a sequence of separate
 *    matlib calls over whole horizon arrays (the out-of-box mapping
 *    of Fig. 3/5: each call round-trips operands through memory);
 *  - MappingStyle::Fused — the hand-optimized structure: per-step
 *    fusion regions keep temporaries register-resident, kernels are
 *    emitted per timestep (§4.1.2).
 *
 * The numerical result is identical in both styles and across all
 * backends (pure float32 reference arithmetic); only the emitted
 * micro-op stream — and therefore simulated time — differs.
 */

#ifndef RTOC_TINYMPC_SOLVER_HH
#define RTOC_TINYMPC_SOLVER_HH

#include <string>

#include "matlib/backend.hh"
#include "tinympc/workspace.hh"

namespace rtoc::tinympc {

/** Software mapping structure for the solver kernels. */
enum class MappingStyle {
    Library,        ///< whole-array matlib calls (Eigen-style)
    LibraryPerStep, ///< per-timestep matlib calls, no fusion (the
                    ///< out-of-box Accelerated-TinyMPC structure)
    Fused,          ///< per-timestep with operator fusion (§4.1.2)
};

/** Outcome of one ADMM solve. */
struct SolveResult
{
    int iterations = 0;
    bool converged = false;
    float primalResidualState = 0.0f;
    float dualResidualState = 0.0f;
    float primalResidualInput = 0.0f;
    float dualResidualInput = 0.0f;

    /**
     * Non-finite residuals or command: the iteration blew up. Never
     * set on the float32 path in practice; narrow formats can diverge
     * when quantization error compounds, and the precision bench
     * reports the rate per scenario.
     */
    bool diverged = false;
};

/** The TinyMPC solver: ADMM over box-constrained LQR tracking. */
class Solver
{
  public:
    /**
     * @param ws workspace (owned by caller; persists across solves to
     *           provide warm starting)
     * @param backend compute/emission backend
     * @param style software-mapping structure
     */
    Solver(Workspace &ws, matlib::Backend &backend, MappingStyle style);

    /**
     * One-time backend setup (e.g. scratchpad staging for Gemmini).
     * Emits into the attached program when one is set.
     */
    void setup();

    /**
     * Run ADMM from the current workspace state.
     *
     * @p max_iters is the *anytime* contract: a per-tick iteration
     * budget chosen by the caller (e.g. a scheduler's slack governor).
     * <= 0 or >= settings.maxIters runs the full configured bound —
     * bit-identical to the historical unbudgeted path; a smaller
     * budget stops the iteration early and returns the best iterate
     * so far (warm starting keeps it usable as a degraded command).
     */
    SolveResult solve(int max_iters = 0);

    /** First planned input (the command sent to actuators). */
    matlib::Mat firstInput() { return ws_.u.row(0); }

    Workspace &workspace() { return ws_; }
    matlib::Backend &backend() { return backend_; }
    MappingStyle style() const { return style_; }

  private:
    /** Fatal when asked to emit Fused on a backend that cannot. */
    void checkFusedEmission() const;

    void forwardPass();
    void updateSlack();
    void updateDual();
    void updateLinearCost();
    void backwardPass();

    /** Compute all four residuals; returns true when converged. */
    bool checkResiduals(SolveResult &res);

    Workspace &ws_;
    matlib::Backend &backend_;
    MappingStyle style_;
};

/**
 * Emit the on-SoC model-refresh stream for warm-start incremental
 * relinearization into @p backend's attached program, under its own
 * kernel regions so refresh cost shows up in timing attribution
 * separately from the solve: @p riccati_iters "riccati_sweep"
 * regions (the float32 fixed-point sweep the device would run — a
 * flop/traffic-faithful proxy computed on scratch buffers; the
 * authoritative double-precision cache is committed by
 * Workspace::refreshModel) followed by one "model_refresh_commit"
 * region (cache write-back, Gemmini re-staging, affine Pinf·cd prep).
 * Emission depends only on (backend config, nx, nu, iters), so
 * refresh programs cache exactly like solve programs.
 */
void emitModelRefresh(Workspace &ws, matlib::Backend &backend,
                      int riccati_iters);

/**
 * Derive the per-kernel fixed-point shift schedule from the solved
 * workspace: gain/dynamics matrix ranges from the cached LQR solution
 * (known offline, exactly the Jerez-style static analysis) and
 * trajectory ranges from the references and finite bound boxes with
 * excursion headroom. Call after loadCache/refreshModel; apply with
 * Backend::setFixedScaling.
 */
matlib::fx::Scaling calibrateFixedScaling(Workspace &ws,
                                          matlib::NumericFormat f);

/** RAII kernel-region marker (no-op without an attached program). */
class KernelScope
{
  public:
    /** Hot path: interned id, no string construction per region. */
    KernelScope(matlib::Backend &backend, isa::KernelId id)
        : prog_(backend.program())
    {
        if (prog_)
            prog_->beginKernel(id);
    }

    KernelScope(matlib::Backend &backend, std::string_view name)
        : prog_(backend.program())
    {
        if (prog_)
            prog_->beginKernel(isa::internKernel(name));
    }

    ~KernelScope()
    {
        if (prog_)
            prog_->endKernel();
    }

    KernelScope(const KernelScope &) = delete;
    KernelScope &operator=(const KernelScope &) = delete;

  private:
    isa::Program *prog_;
};

} // namespace rtoc::tinympc

#endif // RTOC_TINYMPC_SOLVER_HH
