/**
 * @file
 * TinyMPC problem workspace: trajectories, ADMM state, cached LQR
 * terms and solver settings, following Nguyen et al. (ICRA 2024) and
 * the paper's Algorithms 1-3.
 *
 * Storage is float32 (the embedded solver precision) laid out row-
 * major with one horizon step per contiguous row, so per-step vectors
 * are unit-stride views; hand-optimized backends additionally use the
 * transposed cache copies (KinfT, BdynT) the paper's mappings rely on.
 */

#ifndef RTOC_TINYMPC_WORKSPACE_HH
#define RTOC_TINYMPC_WORKSPACE_HH

#include <vector>

#include "matlib/mat.hh"
#include "numerics/dare.hh"

namespace rtoc::tinympc {

/** ADMM solver settings. */
struct Settings
{
    int maxIters = 25;          ///< ADMM iteration bound
    int checkTermination = 5;   ///< residual check period
    float priTol = 1e-3f;       ///< primal residual tolerance
    float duaTol = 1e-3f;       ///< dual residual tolerance
    float rho = 1.0f;           ///< ADMM penalty (folded into cache)
};

/** Owned float32 matrix backing a matlib view. */
class Buffer
{
  public:
    Buffer() = default;

    Buffer(int rows, int cols)
        : rows_(rows), cols_(cols),
          data_(static_cast<size_t>(rows) * cols, 0.0f)
    {}

    matlib::Mat view() { return {data_.data(), rows_, cols_}; }
    matlib::Mat row(int r) { return view().row(r); }
    int rows() const { return rows_; }
    int cols() const { return cols_; }
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<float> data_;
};

/** The TinyMPC workspace (problem + ADMM state + cache). */
struct Workspace
{
    int nx = 0; ///< state dimension
    int nu = 0; ///< input dimension
    int N = 0;  ///< horizon length (states 0..N-1, inputs 0..N-2)

    Settings settings;

    // Trajectories (one step per row).
    Buffer x; ///< states, N x nx
    Buffer u; ///< inputs, (N-1) x nu

    // ADMM slack/dual state.
    Buffer znew, z, y;     ///< input slack (new/old) and dual
    Buffer vnew, v, g;     ///< state slack (new/old) and dual

    // Linear cost terms and Riccati backward-pass state.
    Buffer q, p;  ///< state cost gradient / cost-to-go, N x nx
    Buffer r, d;  ///< input cost gradient / feedforward, (N-1) x nu

    // References and bounds.
    Buffer xRef;          ///< N x nx tracking reference
    Buffer uMin, uMax;    ///< input box bounds, (N-1) x nu
    Buffer xMin, xMax;    ///< state box bounds, N x nx
    Buffer qDiag;         ///< 1 x nx state cost diagonal

    // Cached LQR terms (float32 copies of the offline solution).
    Buffer kinf;   ///< nu x nx
    Buffer kinfT;  ///< nx x nu
    Buffer pinf;   ///< nx x nx
    Buffer quuInv; ///< nu x nu
    Buffer amBKt;  ///< nx x nx
    Buffer adyn;   ///< nx x nx
    Buffer bdyn;   ///< nx x nu
    Buffer bdynT;  ///< nu x nx

    // Affine dynamics residual of an off-trim relinearized model:
    // x+ = Adyn x + Bdyn u + cd. Zero (and hasAffine false) for trim
    // models, so the historical solve streams are untouched.
    Buffer affine;  ///< 1 x nx discrete residual cd
    Buffer pAffine; ///< 1 x nx cached Pinf·cd (backward-pass shift)
    bool hasAffine = false;

    // Scratch.
    Buffer tmpNu;  ///< 1 x nu backward-pass temporary
    Buffer tmpNx;  ///< 1 x nx temporary

    /** Allocate all buffers for the given dimensions. */
    static Workspace allocate(int nx, int nu, int horizon);

    /**
     * Load the cache from a double-precision offline solution and the
     * discrete dynamics; sets cost diagonal and bounds to defaults
     * (infinite state bounds, +-inf input bounds).
     */
    void loadCache(const numerics::DMatrix &a, const numerics::DMatrix &b,
                   const numerics::LqrCache &cache,
                   const std::vector<double> &q_diag);

    /**
     * In-place model refresh for warm-start incremental
     * relinearization: swap in a new discrete model (@p a, @p b), its
     * Riccati cache and the affine residual @p cd (empty = none)
     * WITHOUT touching the ADMM duals, slacks or trajectories — the
     * warm-started solver state survives the model change. Cost
     * diagonal, references and bounds are left as loaded.
     */
    void refreshModel(const numerics::DMatrix &a,
                      const numerics::DMatrix &b,
                      const numerics::LqrCache &cache,
                      const std::vector<double> &cd = {});

    /** Set every row of the input bounds to [lo, hi]. */
    void setInputBounds(const std::vector<float> &lo,
                        const std::vector<float> &hi);

    /** Set every row of the tracking reference to @p xr. */
    void setReferenceAll(const std::vector<float> &xr);

    /** Set the measured initial state. */
    void setInitialState(const float *x0);

    /** Reset ADMM state (duals, slacks, trajectories) to zero —
     *  i.e. discard warm-start information. */
    void coldStart();
};

} // namespace rtoc::tinympc

#endif // RTOC_TINYMPC_WORKSPACE_HH
