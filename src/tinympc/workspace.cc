#include "workspace.hh"

#include <cmath>

#include "common/logging.hh"

namespace rtoc::tinympc {

Workspace
Workspace::allocate(int nx, int nu, int horizon)
{
    if (nx <= 0 || nu <= 0 || horizon < 2)
        rtoc_fatal("bad TinyMPC dimensions nx=%d nu=%d N=%d", nx, nu,
                   horizon);
    Workspace w;
    w.nx = nx;
    w.nu = nu;
    w.N = horizon;

    w.x = Buffer(horizon, nx);
    w.u = Buffer(horizon - 1, nu);
    w.znew = Buffer(horizon - 1, nu);
    w.z = Buffer(horizon - 1, nu);
    w.y = Buffer(horizon - 1, nu);
    w.vnew = Buffer(horizon, nx);
    w.v = Buffer(horizon, nx);
    w.g = Buffer(horizon, nx);
    w.q = Buffer(horizon, nx);
    w.p = Buffer(horizon, nx);
    w.r = Buffer(horizon - 1, nu);
    w.d = Buffer(horizon - 1, nu);
    w.xRef = Buffer(horizon, nx);
    w.uMin = Buffer(horizon - 1, nu);
    w.uMax = Buffer(horizon - 1, nu);
    w.xMin = Buffer(horizon, nx);
    w.xMax = Buffer(horizon, nx);
    w.qDiag = Buffer(1, nx);
    w.kinf = Buffer(nu, nx);
    w.kinfT = Buffer(nx, nu);
    w.pinf = Buffer(nx, nx);
    w.quuInv = Buffer(nu, nu);
    w.amBKt = Buffer(nx, nx);
    w.adyn = Buffer(nx, nx);
    w.bdyn = Buffer(nx, nu);
    w.bdynT = Buffer(nu, nx);
    w.affine = Buffer(1, nx);
    w.pAffine = Buffer(1, nx);
    w.tmpNu = Buffer(1, nu);
    w.tmpNx = Buffer(1, nx);

    const float inf = 1e30f;
    matlib::ref::fill(w.uMin.view(), -inf);
    matlib::ref::fill(w.uMax.view(), inf);
    matlib::ref::fill(w.xMin.view(), -inf);
    matlib::ref::fill(w.xMax.view(), inf);
    return w;
}

namespace {

void
copyToF32(Buffer &dst, const numerics::DMatrix &src)
{
    rtoc_assert(dst.rows() == src.rows() && dst.cols() == src.cols());
    for (int i = 0; i < src.rows(); ++i)
        for (int j = 0; j < src.cols(); ++j)
            dst.view().at(i, j) = static_cast<float>(src(i, j));
}

/** Copy a discrete model + Riccati cache into the float32 buffers
 *  (shared by the initial loadCache and in-place refreshModel). */
void
copyModelCache(Workspace &w, const numerics::DMatrix &a,
               const numerics::DMatrix &b,
               const numerics::LqrCache &cache)
{
    copyToF32(w.adyn, a);
    copyToF32(w.bdyn, b);
    copyToF32(w.bdynT, b.transpose());
    copyToF32(w.kinf, cache.kinf);
    copyToF32(w.kinfT, cache.kinf.transpose());
    copyToF32(w.pinf, cache.pinf);
    copyToF32(w.quuInv, cache.quuInv);
    copyToF32(w.amBKt, cache.amBKt);
}

} // namespace

void
Workspace::loadCache(const numerics::DMatrix &a, const numerics::DMatrix &b,
                     const numerics::LqrCache &cache,
                     const std::vector<double> &q_diag)
{
    rtoc_assert(a.rows() == nx && b.cols() == nu);
    rtoc_assert(static_cast<int>(q_diag.size()) == nx);

    copyModelCache(*this, a, b, cache);
    for (int j = 0; j < nx; ++j)
        qDiag.view()[j] = static_cast<float>(q_diag[j]);
}

void
Workspace::refreshModel(const numerics::DMatrix &a,
                        const numerics::DMatrix &b,
                        const numerics::LqrCache &cache,
                        const std::vector<double> &cd)
{
    rtoc_assert(a.rows() == nx && a.cols() == nx);
    rtoc_assert(b.rows() == nx && b.cols() == nu);

    copyModelCache(*this, a, b, cache);

    hasAffine = false;
    for (int j = 0; j < nx; ++j) {
        double c = cd.empty() ? 0.0 : cd[static_cast<size_t>(j)];
        affine.view()[j] = static_cast<float>(c);
        if (c != 0.0)
            hasAffine = true;
    }
    // pAffine = Pinf·cd, the constant shift the affine backward pass
    // applies to every cost-to-go gradient (computed in double, the
    // same precision the cache itself came from).
    for (int i = 0; i < nx; ++i) {
        double acc = 0.0;
        if (hasAffine) {
            for (int j = 0; j < nx; ++j)
                acc += cache.pinf(i, j) * cd[static_cast<size_t>(j)];
        }
        pAffine.view()[i] = static_cast<float>(acc);
    }
}

void
Workspace::setInputBounds(const std::vector<float> &lo,
                          const std::vector<float> &hi)
{
    rtoc_assert(static_cast<int>(lo.size()) == nu);
    rtoc_assert(static_cast<int>(hi.size()) == nu);
    for (int i = 0; i < N - 1; ++i) {
        for (int j = 0; j < nu; ++j) {
            uMin.view().at(i, j) = lo[j];
            uMax.view().at(i, j) = hi[j];
        }
    }
}

void
Workspace::setReferenceAll(const std::vector<float> &xr)
{
    rtoc_assert(static_cast<int>(xr.size()) == nx);
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < nx; ++j)
            xRef.view().at(i, j) = xr[j];
}

void
Workspace::setInitialState(const float *x0)
{
    for (int j = 0; j < nx; ++j)
        x.view().at(0, j) = x0[j];
}

void
Workspace::coldStart()
{
    for (Buffer *b : {&x, &u, &znew, &z, &y, &vnew, &v, &g, &q, &p, &r,
                      &d, &tmpNu, &tmpNx})
        matlib::ref::fill(b->view(), 0.0f);
}

} // namespace rtoc::tinympc
