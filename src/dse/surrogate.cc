#include "dse/surrogate.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "numerics/dmatrix.hh"

namespace rtoc::dse {

void
Surrogate::addSample(double lat, double width, double cycles)
{
    rtoc_assert(cycles > 0.0);
    lat_.push_back(lat);
    width_.push_back(width);
    logCycles_.push_back(std::log(cycles));
    coef_.clear(); // stale until the next fit()
}

double
Surrogate::eval(Term t, double lat, double width)
{
    switch (t) {
      case kOne:
        return 1.0;
      case kLat:
        return lat;
      case kWidth:
        return width;
      case kLat2:
        return lat * lat;
      case kWidth2:
        return width * width;
      case kLatWidth:
        return lat * width;
    }
    rtoc_panic("unreachable surrogate term");
}

bool
Surrogate::fit()
{
    const size_t n = lat_.size();
    if (n == 0)
        return false;

    auto varies = [](const std::vector<double> &v) {
        for (size_t i = 1; i < v.size(); ++i)
            if (v[i] != v[0])
                return true;
        return false;
    };
    const bool lat_varies = varies(lat_);
    const bool width_varies = varies(width_);

    // Assemble the richest basis the evidence supports, then shed
    // high-order terms until the least-squares system is
    // overdetermined (rows >= cols).
    terms_.clear();
    terms_.push_back(kOne);
    if (lat_varies)
        terms_.push_back(kLat);
    if (width_varies)
        terms_.push_back(kWidth);
    if (lat_varies)
        terms_.push_back(kLat2);
    if (width_varies)
        terms_.push_back(kWidth2);
    if (lat_varies && width_varies)
        terms_.push_back(kLatWidth);
    while (terms_.size() > n)
        terms_.pop_back();

    const int cols = static_cast<int>(terms_.size());
    numerics::DMatrix x(static_cast<int>(n), cols);
    numerics::DMatrix y(static_cast<int>(n), 1);
    for (size_t i = 0; i < n; ++i) {
        for (int j = 0; j < cols; ++j)
            x(static_cast<int>(i), j) = eval(terms_[j], lat_[i],
                                             width_[i]);
        y(static_cast<int>(i), 0) = logCycles_[i];
    }

    numerics::DMatrix xtx = x.transpose() * x;
    double trace = 0.0;
    for (int j = 0; j < cols; ++j)
        trace += xtx(j, j);
    const double ridge = 1e-9 * (trace > 0.0 ? trace : 1.0);
    for (int j = 0; j < cols; ++j)
        xtx(j, j) += ridge;

    numerics::DMatrix beta = numerics::luSolve(xtx, x.transpose() * y);
    coef_.resize(cols);
    for (int j = 0; j < cols; ++j)
        coef_[j] = beta(j, 0);

    maxRelError_ = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double actual = std::exp(logCycles_[i]);
        const double pred = predictCycles(lat_[i], width_[i]);
        maxRelError_ = std::max(maxRelError_,
                                std::abs(pred - actual) / actual);
    }
    return true;
}

double
Surrogate::predictCycles(double lat, double width) const
{
    rtoc_assert(fitted());
    double log_c = 0.0;
    for (size_t j = 0; j < terms_.size(); ++j)
        log_c += coef_[j] * eval(terms_[j], lat, width);
    return std::exp(log_c);
}

} // namespace rtoc::dse
