/**
 * @file
 * DesignSpace: the enumerable-and-samplable design-point space the
 * figure benches used to hard-code as ad-hoc grids.
 *
 * A space is the cross product of four axes:
 *
 *  - a discrete *configuration* axis (timing-model family + named
 *    variant: scalar in-order cores, BOOM OoO cores, Saturn vector
 *    machines, Gemmini systolic designs), each entry carrying the
 *    closures needed to build its timing model, emit (or fetch) its
 *    cached uop stream, and price its silicon area;
 *  - a continuous *latency-scale* axis multiplying the family's
 *    latency knobs (load/FP latency, vector memory latency, DMA
 *    startup and fence penalties);
 *  - a continuous *width-scale* axis multiplying the family's
 *    datapath width (Saturn DLEN, Gemmini DMA bus bytes; a no-op for
 *    purely scalar families, whose points alias one replay cell);
 *  - a *frequency* axis, which never changes replayed cycles — many
 *    design points share one (model, stream) replay cell and differ
 *    only in the analytic solves/s = freq / cycles conversion;
 *  - a *numeric-format* axis (default {float32}): narrow formats
 *    re-emit the stream at their element width, so each format is a
 *    distinct cached program and replay cell — the precision side of
 *    the Pareto frontier.
 *
 * The solver-iteration axis rides on Fidelity: a Low-fidelity point
 * replays a short (1-iteration) solve stream, the cheap rung
 * successive halving uses before promoting survivors to the Full
 * 5-iteration stream. Low and Full cells never share a cache key.
 *
 * materialize() turns a PointSpec into a runnable Candidate; cellKey()
 * names the replay cell a point maps to — the unit the evaluation
 * memo, the on-disk cycle cache, and every "cells evaluated" metric
 * count.
 */

#ifndef RTOC_DSE_DESIGN_SPACE_HH
#define RTOC_DSE_DESIGN_SPACE_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cpu/core_model.hh"
#include "cpu/inorder.hh"
#include "cpu/ooo.hh"
#include "isa/program.hh"
#include "matlib/fixed.hh"
#include "systolic/gemmini.hh"
#include "vector/saturn.hh"

namespace rtoc::dse {

/** Evaluation fidelity: the solver-iteration axis of the space. */
enum class Fidelity { Low, Full };

/** Coordinates of one design point (indices into the axes). */
struct PointSpec
{
    int config = 0; ///< index into DesignSpace::configs()
    int lat = 0;    ///< index into latScales()
    int width = 0;  ///< index into widthScales()
    int freq = 0;   ///< index into freqsHz()
    int fmt = 0;    ///< index into formats() (0 = the single-format
                    ///< default, so historical brace-inits still name
                    ///< the same point)
};

/** A materialized, runnable design point. */
struct Candidate
{
    std::string name;    ///< display name (scale-suffixed off nominal)
    std::string cellKey; ///< replay-cell identity (model | stream)
    std::string progKey; ///< stream identity alone (schedule lookups)
    std::shared_ptr<const isa::Program> prog; ///< null when model-only
    std::unique_ptr<cpu::TimingModel> model;
    uint64_t extraCycles = 0; ///< modelled overhead added post-replay
    double areaMm2 = 0.0;
    double freqHz = 0.0;
};

/** One entry of the configuration axis. */
struct ConfigEntry
{
    std::string name;

    /** Build the timing model at (latScale, widthScale). */
    std::function<std::unique_ptr<cpu::TimingModel>(double, double)>
        model;

    /** Emit (or fetch from the program cache) the stream to replay at
     *  a fidelity and numeric format (the format sets the emitted
     *  element width — narrow streams are distinct cached programs). */
    std::function<std::shared_ptr<const isa::Program>(
        Fidelity, matlib::NumericFormat)>
        emit;

    /** Stable cross-process identity of that stream. */
    std::function<std::string(Fidelity, matlib::NumericFormat)> progKey;

    /** Area at a width scale (1.0 = nominal). */
    std::function<double(double)> area;

    /** Modelled overhead added after replay (e.g. spad spill). */
    uint64_t extraCycles = 0;
};

/** Enumerable + samplable design space (see file comment). */
class DesignSpace
{
  public:
    DesignSpace() = default;
    explicit DesignSpace(std::string name) : name_(std::move(name)) {}

    const std::string &name() const { return name_; }

    DesignSpace &
    addConfig(ConfigEntry e)
    {
        configs_.push_back(std::move(e));
        return *this;
    }

    DesignSpace &setLatScales(std::vector<double> v);
    DesignSpace &setWidthScales(std::vector<double> v);
    DesignSpace &setFreqsHz(std::vector<double> v);
    /** Numeric-format axis (default {F32}: point ordering, keys and
     *  sizes stay exactly the historical single-format space). */
    DesignSpace &setFormats(std::vector<matlib::NumericFormat> v);

    /**
     * Attach an extra named enumerable axis (UART baud, disturbance
     * magnitude, ...). Custom axes are carried for grid enumeration by
     * benches whose evaluation is not a stream replay; they do not
     * participate in point()/materialize().
     */
    DesignSpace &setAxis(const std::string &name,
                         std::vector<double> values);
    const std::vector<double> &axis(const std::string &name) const;

    const std::vector<ConfigEntry> &configs() const { return configs_; }
    const std::vector<double> &latScales() const { return lat_; }
    const std::vector<double> &widthScales() const { return width_; }
    const std::vector<double> &freqsHz() const { return freq_; }
    const std::vector<matlib::NumericFormat> &formats() const
    {
        return formats_;
    }

    /** Point count: |formats| x |configs| x |lat| x |width| x |freq|. */
    size_t size() const;

    /**
     * Decode a flat index (format outermost, then config-major with
     * frequency fastest) so single-valued axes preserve pure
     * configuration order — with the default single-format axis the
     * flat ordering is exactly the historical one.
     */
    PointSpec point(size_t flat) const;
    size_t flatIndex(const PointSpec &p) const;

    /**
     * Materialize @p p at @p f. With @p with_program false only the
     * model/area/key side is built (cheap: no emission) — enough to
     * resolve caches.
     */
    Candidate materialize(const PointSpec &p, Fidelity f,
                          bool with_program = true) const;

    /** Replay-cell identity of @p p (no emission performed). */
    std::string cellKey(const PointSpec &p, Fidelity f) const;

    double areaMm2(const PointSpec &p) const;
    double freqHz(const PointSpec &p) const;
    double latScale(const PointSpec &p) const { return lat_[p.lat]; }
    double widthScale(const PointSpec &p) const
    {
        return width_[p.width];
    }
    matlib::NumericFormat format(const PointSpec &p) const
    {
        return formats_[p.fmt];
    }

    /**
     * Distinct replay cells behind the whole space at @p f — the cost
     * an exhaustive grid pays (frequency collapses for free; aliased
     * width points of scalar families collapse too).
     */
    size_t countDistinctCells(Fidelity f) const;

  private:
    std::string name_;
    std::vector<ConfigEntry> configs_;
    std::vector<double> lat_{1.0};
    std::vector<double> width_{1.0};
    std::vector<double> freq_{1e9};
    std::vector<matlib::NumericFormat> formats_{
        matlib::NumericFormat::F32};
    std::map<std::string, std::vector<double>> customAxes_;
};

/**
 * Family knob-scaling rules shared by every concrete space. A scale
 * of 1.0 returns the base configuration bit-identically (names, cache
 * keys and streams stay those of the historical grids); off-nominal
 * scales suffix the name with the applied scales. Latency knobs are
 * scaled and rounded with a floor of 1 cycle; widths are scaled with
 * family-specific floors/caps (Saturn DLEN never exceeds VLEN).
 */
cpu::InOrderConfig scaledInOrder(cpu::InOrderConfig base,
                                 double lat_scale);
cpu::OooConfig scaledOoo(cpu::OooConfig base, double lat_scale);
vector::SaturnConfig scaledSaturn(vector::SaturnConfig base,
                                  double lat_scale, double width_scale);
systolic::GemminiConfig scaledGemmini(systolic::GemminiConfig base,
                                      double lat_scale,
                                      double width_scale);

/**
 * Width-dependent area closure: @p base_mm2 plus @p mm2_per_doubling
 * per doubling of the width scale (anchored on the Saturn D128 vs
 * D256 table pairs), floored at 30% of the base so extreme narrow
 * points stay positive.
 */
std::function<double(double)> areaWithWidth(double base_mm2,
                                            double mm2_per_doubling);

} // namespace rtoc::dse

#endif // RTOC_DSE_DESIGN_SPACE_HH
