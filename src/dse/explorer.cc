#include "dse/explorer.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <mutex>
#include <tuple>

#include "common/logging.hh"
#include "common/lru_cache.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "cpu/replay_batch.hh"
#include "dse/surrogate.hh"
#include "isa/sched_search.hh"
#include "soc/area_model.hh"

namespace rtoc::dse {

namespace {

/** Disk-cache namespace for resolved replay cells. */
const char *const kCellNs = "dsecell";

/** Raw cost of one replay cell (cycles exclude config extraCycles). */
struct CellCost
{
    uint64_t cycles = 0;
    uint64_t uops = 0;
};

constexpr size_t kDefaultEvalMemoCap = 65536;

/** Process-wide (model, stream) -> cycles memo shared by Explorers. */
struct EvalMemo
{
    std::mutex mu;
    LruMap<std::string, CellCost> memo{kDefaultEvalMemoCap};
    /** Hit/miss counts live on the obs::Registry (per-thread shards:
     *  bumps from racing sweep workers are lock-free and race-free). */
    StatId hits_id = 0;
    StatId misses_id = 0;
};

EvalMemo &
evalMemo()
{
    static EvalMemo m;
    static const bool configured = [] {
        if (const char *env = std::getenv("RTOC_DSE_MEMO_CAP"))
            m.memo.setCapacity(
                static_cast<size_t>(std::strtoull(env, nullptr, 10)));
        obs::Registry &reg = obs::Registry::global();
        m.hits_id = reg.counter("eval_memo.hits");
        m.misses_id = reg.counter("eval_memo.misses");
        reg.gauge("eval_memo.entries", [] {
            std::lock_guard<std::mutex> lk(m.mu);
            return static_cast<uint64_t>(m.memo.size());
        });
        reg.gauge("eval_memo.evictions", [] {
            std::lock_guard<std::mutex> lk(m.mu);
            return m.memo.evictions();
        });
        return true;
    }();
    (void)configured;
    return m;
}

std::string
encodeCellCost(const CellCost &c)
{
    std::string s;
    isa::blob::putRaw<uint64_t>(s, c.cycles);
    isa::blob::putRaw<uint64_t>(s, c.uops);
    return s;
}

std::optional<CellCost>
decodeCellCost(const std::string &payload)
{
    isa::blob::Reader r(payload);
    CellCost c;
    c.cycles = r.raw<uint64_t>();
    c.uops = r.raw<uint64_t>();
    if (!r.ok || r.left != 0)
        return std::nullopt;
    return c;
}

/** Index of the axis value nearest @p target (first on ties). */
int
nearestIndex(const std::vector<double> &axis, double target)
{
    int best = 0;
    for (size_t i = 1; i < axis.size(); ++i)
        if (std::abs(axis[i] - target) < std::abs(axis[best] - target))
            best = static_cast<int>(i);
    return best;
}

/** Corner + midpoint seed indices of an @p n-value axis. */
std::vector<int>
seedIndices(int n)
{
    std::vector<int> idx{0, n / 2, n - 1};
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    return idx;
}

} // namespace

EvalMemoStats
evalMemoStats()
{
    EvalMemo &m = evalMemo();
    obs::Registry &reg = obs::Registry::global();
    uint64_t hits = reg.value(m.hits_id);
    uint64_t misses = reg.value(m.misses_id);
    std::lock_guard<std::mutex> lk(m.mu);
    return {hits, misses, m.memo.size(), m.memo.evictions(),
            m.memo.capacity()};
}

void
evalMemoSetCap(size_t cap)
{
    EvalMemo &m = evalMemo();
    std::lock_guard<std::mutex> lk(m.mu);
    m.memo.setCapacity(cap);
}

Explorer::Explorer(const DesignSpace &space)
    : Explorer(space, Options{})
{}

Explorer::Explorer(const DesignSpace &space, Options opt)
    : space_(space), opt_(opt),
      sweep_(opt.pool ? *opt.pool : ThreadPool::global())
{
    if (opt_.useDisk) {
        disk_ = opt_.disk ? opt_.disk : &isa::DiskCache::global();
        if (!disk_->enabled())
            disk_ = nullptr;
    }
}

std::vector<EvalOutcome>
Explorer::submit(const std::vector<PointSpec> &points, Fidelity f)
{
    RTOC_SPAN_NAMED(span, "dse.submit", "dse");
    span.arg("points", points.size());
    stats_.pointsServed += points.size();

    // Model-only materialization of every query: names, areas and the
    // cell key each point maps to (no stream emission yet).
    std::vector<Candidate> qc;
    qc.reserve(points.size());
    for (const PointSpec &p : points)
        qc.push_back(space_.materialize(p, f, false));

    // Deduplicate to distinct cells, first-appearance order.
    std::map<std::string, size_t> jobOf;
    std::vector<size_t> queryJob(points.size());
    std::vector<size_t> jobRep; // representative query per job
    for (size_t i = 0; i < points.size(); ++i) {
        auto [it, inserted] = jobOf.emplace(qc[i].cellKey, jobRep.size());
        if (inserted)
            jobRep.push_back(i);
        queryJob[i] = it->second;
    }

    const size_t n_jobs = jobRep.size();
    std::vector<CellCost> cost(n_jobs);
    std::vector<char> resolved(n_jobs, 0);

    // Resolve from the process memo, then the shared disk cache.
    for (size_t j = 0; j < n_jobs; ++j) {
        const std::string &key = qc[jobRep[j]].cellKey;
        if (seen_.insert(key).second) {
            ++stats_.cellsRequested;
            if (f == Fidelity::Low)
                ++stats_.cellsLowFi;
        }
        if (opt_.useMemo) {
            EvalMemo &m = evalMemo();
            std::lock_guard<std::mutex> lk(m.mu);
            if (const CellCost *c = m.memo.get(key)) {
                cost[j] = *c;
                resolved[j] = 1;
                obs::count(m.hits_id);
                ++stats_.memoHits;
                continue;
            }
            obs::count(m.misses_id);
        }
        if (disk_) {
            if (auto payload = disk_->get(kCellNs, key)) {
                if (auto c = decodeCellCost(*payload)) {
                    cost[j] = *c;
                    resolved[j] = 1;
                    ++stats_.diskHits;
                    if (opt_.useMemo) {
                        EvalMemo &m = evalMemo();
                        std::lock_guard<std::mutex> lk(m.mu);
                        m.memo.put(key, *c);
                    }
                }
            }
        }
    }

    // Emit (or fetch) the streams behind the remaining cells — one
    // emit call per unresolved cell, in job order, so program-cache
    // hit/miss accounting matches the historical per-point loops.
    std::vector<Candidate> jc(n_jobs);
    for (size_t j = 0; j < n_jobs; ++j)
        if (!resolved[j])
            jc[j] = space_.materialize(points[jobRep[j]], f, true);

    // With scheduling on, swap each cell's stream for the schedule
    // its model searched (memo/disk-cached); cells whose winners
    // coincide — including the no-improvement baseline case — still
    // share a group below. Off, this is a no-op returning the same
    // pointer.
    if (isa::schedEnabled()) {
        for (size_t j = 0; j < n_jobs; ++j) {
            if (resolved[j])
                continue;
            const cpu::TimingModel &m = *jc[j].model;
            jc[j].prog = isa::scheduledStream(
                m.cacheKey(), jc[j].progKey, jc[j].prog,
                [&m](const isa::Program &p) { return m.run(p).cycles; });
        }
    }

    // Group unresolved cells by stream and fan the groups over the
    // pool; each group replays in one ReplayBatch column pass.
    std::map<const isa::Program *, std::vector<size_t>> by_prog;
    for (size_t j = 0; j < n_jobs; ++j)
        if (!resolved[j])
            by_prog[jc[j].prog.get()].push_back(j);
    std::vector<std::pair<const isa::Program *, std::vector<size_t>>>
        groups(by_prog.begin(), by_prog.end());

    sweep_.map<int>(groups.size(), [&](size_t gi) {
        const isa::Program *prog = groups[gi].first;
        const std::vector<size_t> &jobs = groups[gi].second;
        cpu::ReplayBatch batch;
        for (size_t j : jobs)
            batch.add(*jc[j].model);
        std::vector<cpu::TimingResult> results = batch.run(*prog);
        for (size_t k = 0; k < jobs.size(); ++k) {
            cost[jobs[k]].cycles = results[k].cycles;
            cost[jobs[k]].uops = prog->size();
        }
        return 0;
    });

    // Persist what we just replayed.
    for (size_t j = 0; j < n_jobs; ++j) {
        if (resolved[j])
            continue;
        ++stats_.replays;
        stats_.uopsReplayed += cost[j].uops;
        const std::string &key = qc[jobRep[j]].cellKey;
        if (opt_.useMemo) {
            EvalMemo &m = evalMemo();
            std::lock_guard<std::mutex> lk(m.mu);
            m.memo.put(key, cost[j]);
        }
        if (disk_)
            disk_->put(kCellNs, key, encodeCellCost(cost[j]));
    }

    // Serve every query from its cell analytically.
    std::vector<EvalOutcome> out(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
        const CellCost &c = cost[queryJob[i]];
        EvalOutcome &o = out[i];
        o.point = points[i];
        o.config = qc[i].name;
        o.cellKey = qc[i].cellKey;
        o.fidelity = f;
        o.cycles = c.cycles + qc[i].extraCycles;
        o.uops = c.uops;
        o.areaMm2 = qc[i].areaMm2;
        o.freqHz = qc[i].freqHz;
        o.solvesPerS = o.cycles ? o.freqHz / o.cycles : 0.0;
    }
    return out;
}

Explorer::Result
Explorer::exploreGrid()
{
    Result res;
    res.gridCells = space_.countDistinctCells(Fidelity::Full);
    std::vector<PointSpec> all;
    all.reserve(space_.size());
    for (size_t flat = 0; flat < space_.size(); ++flat)
        all.push_back(space_.point(flat));
    res.evaluated = submit(all, Fidelity::Full);
    res.frontier = paretoFrontier(res.evaluated);
    res.stats = stats_;
    return res;
}

Explorer::Result
Explorer::explore()
{
    Result res;
    res.gridCells = space_.countDistinctCells(Fidelity::Full);

    const int n_cfg = static_cast<int>(space_.configs().size());
    const int n_lat = static_cast<int>(space_.latScales().size());
    const int n_width = static_cast<int>(space_.widthScales().size());
    const int n_freq = static_cast<int>(space_.freqsHz().size());
    const int lat0 = nearestIndex(space_.latScales(), 1.0);
    const int width0 = nearestIndex(space_.widthScales(), 1.0);
    const int freq_max = nearestIndex(
        space_.freqsHz(),
        *std::max_element(space_.freqsHz().begin(),
                          space_.freqsHz().end()));

    // Successive-halving rung: every configuration once, at nominal
    // scales and peak frequency, on the cheap low-fidelity stream.
    std::vector<PointSpec> rung;
    for (int c = 0; c < n_cfg; ++c)
        rung.push_back({c, lat0, width0, freq_max});
    std::vector<EvalOutcome> low;
    {
        RTOC_SPAN("dse.sh_rung", "dse");
        low = submit(rung, Fidelity::Low);
    }
    std::vector<EvalOutcome> low_frontier = paretoFrontier(low);

    std::vector<int> survivors;
    for (int c = 0; c < n_cfg; ++c) {
        double bar = (1.0 - opt_.shBand) *
                     frontierPerfAt(low_frontier, low[c].areaMm2);
        if (low[c].solvesPerS >= bar)
            survivors.push_back(c);
    }

    // Promote survivors to full fidelity at the corner/midpoint
    // scales; every frequency point of an evaluated cell is free.
    std::set<std::tuple<int, int, int>> evaluated;
    std::vector<PointSpec> seeds;
    auto push_all_freqs = [&](int c, int l, int w,
                              std::vector<PointSpec> &batch) {
        if (!evaluated.emplace(c, l, w).second)
            return;
        for (int q = 0; q < n_freq; ++q)
            batch.push_back({c, l, w, q});
    };
    for (int c : survivors)
        for (int l : seedIndices(n_lat))
            for (int w : seedIndices(n_width))
                push_all_freqs(c, l, w, seeds);
    {
        RTOC_SPAN("dse.seed_promotion", "dse");
        res.evaluated = submit(seeds, Fidelity::Full);
    }

    // Surrogate expansion: refit on everything replayed so far and
    // pull in only the cells predicted within the frontier band.
    for (int round = 0; round < opt_.maxRounds; ++round) {
        RTOC_SPAN_NAMED(round_span, "dse.surrogate_round", "dse");
        round_span.arg("round", static_cast<uint64_t>(round));
        std::vector<EvalOutcome> frontier = paretoFrontier(res.evaluated);
        std::map<int, Surrogate> models;
        {
            RTOC_SPAN("dse.surrogate_fit", "dse");
            for (const EvalOutcome &o : res.evaluated)
                models[o.point.config].addSample(
                    space_.latScale(o.point), space_.widthScale(o.point),
                    static_cast<double>(o.cycles));
            for (auto &[c, s] : models)
                s.fit();
        }

        const double peak_freq = space_.freqsHz()[freq_max];
        std::vector<PointSpec> batch;
        for (int c : survivors) {
            auto it = models.find(c);
            if (it == models.end() || !it->second.fitted())
                continue;
            // A cell is worth full replay only if it might beat the
            // frontier at its area. The band is the surrogate's own
            // trust radius: three times its worst training residual,
            // floored at surrogateBand — smooth responses earn tight
            // bands, rough ones widen their own.
            const double band = std::max(
                opt_.surrogateBand, 3.0 * it->second.maxRelError());
            for (int l = 0; l < n_lat; ++l) {
                for (int w = 0; w < n_width; ++w) {
                    if (evaluated.count({c, l, w}))
                        continue;
                    double pred = it->second.predictCycles(
                        space_.latScales()[l], space_.widthScales()[w]);
                    double perf = pred > 0.0 ? peak_freq / pred : 0.0;
                    double area = space_.areaMm2({c, l, w, freq_max});
                    double bar = (1.0 - band) *
                                 frontierPerfAt(frontier, area);
                    if (perf >= bar)
                        push_all_freqs(c, l, w, batch);
                }
            }
        }
        if (batch.empty())
            break;
        std::vector<EvalOutcome> more = submit(batch, Fidelity::Full);
        res.evaluated.insert(res.evaluated.end(), more.begin(),
                             more.end());
    }

    res.frontier = paretoFrontier(res.evaluated);
    res.stats = stats_;
    return res;
}

std::vector<EvalOutcome>
paretoFrontier(const std::vector<EvalOutcome> &outcomes)
{
    std::vector<soc::ParetoPoint> pts(outcomes.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
        pts[i].config = outcomes[i].config;
        pts[i].areaMm2 = outcomes[i].areaMm2;
        pts[i].performance = outcomes[i].solvesPerS;
    }
    soc::markParetoFrontier(pts);
    std::vector<EvalOutcome> frontier;
    for (size_t i = 0; i < outcomes.size(); ++i)
        if (pts[i].optimal)
            frontier.push_back(outcomes[i]);
    std::sort(frontier.begin(), frontier.end(),
              [](const EvalOutcome &a, const EvalOutcome &b) {
                  return a.areaMm2 < b.areaMm2;
              });
    return frontier;
}

double
frontierPerfAt(const std::vector<EvalOutcome> &frontier, double area_mm2)
{
    double best = 0.0;
    for (const EvalOutcome &o : frontier)
        if (o.areaMm2 <= area_mm2)
            best = std::max(best, o.solvesPerS);
    return best;
}

double
hypervolume(const std::vector<EvalOutcome> &frontier, double ref_area_mm2)
{
    std::vector<EvalOutcome> f = frontier;
    std::sort(f.begin(), f.end(),
              [](const EvalOutcome &a, const EvalOutcome &b) {
                  return a.areaMm2 < b.areaMm2;
              });
    double hv = 0.0;
    for (size_t i = 0; i < f.size(); ++i) {
        if (f[i].areaMm2 >= ref_area_mm2)
            break;
        double next = i + 1 < f.size()
                          ? std::min(f[i + 1].areaMm2, ref_area_mm2)
                          : ref_area_mm2;
        hv += (next - f[i].areaMm2) * f[i].solvesPerS;
    }
    return hv;
}

} // namespace rtoc::dse
