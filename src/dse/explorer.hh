/**
 * @file
 * Explorer: batch design-point evaluation and frontier search over a
 * DesignSpace, sitting on the cached replay substrate.
 *
 * submit(points) is the long-lived service entry: queries are mapped
 * to replay cells, deduplicated, served from the process-wide
 * evaluation memo and the shared isa::DiskCache, and only the
 * remainder is replayed — same-stream candidates grouped through
 * ReplayBatch (one column pass per family group) and groups fanned
 * over the work-stealing SweepRunner. Repeated processes pointing at
 * one RTOC_CACHE_DIR therefore behave like many clients against one
 * hot cache: a second run of the same exploration replays nothing.
 *
 * Two search strategies drive exploreGrid()'s exhaustive baseline
 * down to a fraction of its cells:
 *
 *  - successive halving: every configuration is first scored at
 *    Fidelity::Low (a 1-iteration solve stream, a fraction of the
 *    full replay cost); only configurations within shBand of the
 *    cheap frontier are promoted to full fidelity;
 *  - local surrogate: per surviving configuration, a low-order model
 *    of log(cycles) over (latScale, widthScale) is fitted to the
 *    cells replayed so far; each round expands only the unevaluated
 *    cells the surrogate predicts within surrogateBand of the current
 *    frontier, until no candidate qualifies.
 *
 * Frequency is an analytic axis (solves/s = freq / cycles): explore()
 * serves every frequency point of an evaluated (config, lat, width)
 * cell for free, which is why cells — not points — are the cost unit
 * reported in EvalStats and gated in bench_dse.
 */

#ifndef RTOC_DSE_EXPLORER_HH
#define RTOC_DSE_EXPLORER_HH

#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "dse/design_space.hh"
#include "hil/sweep.hh"
#include "isa/disk_cache.hh"

namespace rtoc::dse {

/** One evaluated design point. */
struct EvalOutcome
{
    PointSpec point;
    std::string config;  ///< display name (scale-suffixed)
    std::string cellKey; ///< replay cell this point mapped to
    Fidelity fidelity = Fidelity::Full;
    uint64_t cycles = 0; ///< replayed cycles + config extraCycles
    uint64_t uops = 0;   ///< stream length behind the cell
    double solvesPerS = 0.0;
    double areaMm2 = 0.0;
    double freqHz = 0.0;
};

/** Cost counters of one Explorer (the bench gates live on these). */
struct EvalStats
{
    uint64_t cellsRequested = 0; ///< distinct cells ever asked of us
    uint64_t cellsLowFi = 0;     ///< Low-fidelity subset of the above
    uint64_t replays = 0;        ///< cells actually replayed here
    uint64_t memoHits = 0;       ///< served from the process memo
    uint64_t diskHits = 0;       ///< served from the shared DiskCache
    uint64_t uopsReplayed = 0;   ///< stream uops x replayed lanes
    uint64_t pointsServed = 0;   ///< query points answered
};

/** Batch evaluator + frontier search driver (see file comment). */
class Explorer
{
  public:
    struct Options
    {
        /** Survive SH when low-fi perf >= (1-shBand) x cheap frontier
         *  at the candidate's area. */
        double shBand = 0.35;
        /** Floor of the surrogate trust band: a cell is expanded when
         *  predicted perf is within (1 - max(surrogateBand, 3 x fit
         *  residual)) of the current frontier at its area. */
        double surrogateBand = 0.005;
        int maxRounds = 8; ///< surrogate expansion rounds
        bool useMemo = true;
        bool useDisk = true;
        ThreadPool *pool = nullptr; ///< nullptr = ThreadPool::global()
        /** nullptr = isa::DiskCache::global() (when useDisk). */
        const isa::DiskCache *disk = nullptr;
    };

    explicit Explorer(const DesignSpace &space);
    Explorer(const DesignSpace &space, Options opt);

    /**
     * Evaluate @p points at @p f and return outcomes in query order.
     * The batch is deduplicated to distinct cells before any replay.
     */
    std::vector<EvalOutcome> submit(const std::vector<PointSpec> &points,
                                    Fidelity f = Fidelity::Full);

    struct Result
    {
        std::vector<EvalOutcome> evaluated; ///< full-fidelity outcomes
        std::vector<EvalOutcome> frontier;  ///< Pareto subset
        EvalStats stats;
        /** Distinct full-fidelity cells an exhaustive grid would
         *  replay (the denominator of the cells-saved headline). */
        uint64_t gridCells = 0;
    };

    /** Exhaustive baseline: every point of the space, full fidelity. */
    Result exploreGrid();

    /** SH + surrogate search (see file comment). */
    Result explore();

    const EvalStats &stats() const { return stats_; }
    const DesignSpace &space() const { return space_; }

  private:
    const DesignSpace &space_;
    Options opt_;
    hil::SweepRunner sweep_;
    const isa::DiskCache *disk_ = nullptr; ///< null when disabled
    EvalStats stats_;
    std::set<std::string> seen_; ///< cells counted in cellsRequested
};

/** Pareto-optimal subset of @p outcomes (area up, solves/s up). */
std::vector<EvalOutcome>
paretoFrontier(const std::vector<EvalOutcome> &outcomes);

/**
 * Best frontier performance at area budget @p area_mm2 (0 when the
 * frontier has no point that cheap).
 */
double frontierPerfAt(const std::vector<EvalOutcome> &frontier,
                      double area_mm2);

/**
 * Dominated hypervolume of @p frontier against the reference point
 * (@p ref_area_mm2, 0 solves/s): the area-x-performance region the
 * frontier dominates. Two searches recovering the same frontier have
 * equal hypervolume, so |HV_search - HV_grid| / HV_grid is the
 * frontier error bench_dse reports.
 */
double hypervolume(const std::vector<EvalOutcome> &frontier,
                   double ref_area_mm2);

/** Process-wide evaluation-memo counters (mirrors cellMemoStats). */
struct EvalMemoStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
    uint64_t evictions = 0;
    size_t capacity = 0;
};
EvalMemoStats evalMemoStats();

/** Override the evaluation memo's LRU cap (RTOC_DSE_MEMO_CAP env). */
void evalMemoSetCap(size_t cap);

} // namespace rtoc::dse

#endif // RTOC_DSE_EXPLORER_HH
