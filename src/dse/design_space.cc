#include "dse/design_space.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "isa/sched_search.hh"

namespace rtoc::dse {

namespace {

/** Latency knobs scale multiplicatively with a 1-cycle floor. */
int
scaleLat(int base, double s)
{
    return std::max<long long>(1, std::llround(base * s));
}

/** Display suffix for off-nominal points ("" at nominal). */
std::string
scaleSuffix(double lat, double width)
{
    std::string s;
    if (lat != 1.0)
        s += csprintf("@l%.2f", lat);
    if (width != 1.0)
        s += csprintf("@w%.2f", width);
    return s;
}

} // namespace

cpu::InOrderConfig
scaledInOrder(cpu::InOrderConfig base, double lat_scale)
{
    if (lat_scale == 1.0)
        return base;
    base.loadLatency = scaleLat(base.loadLatency, lat_scale);
    base.fpLatency = scaleLat(base.fpLatency, lat_scale);
    return base;
}

cpu::OooConfig
scaledOoo(cpu::OooConfig base, double lat_scale)
{
    if (lat_scale == 1.0)
        return base;
    base.loadLatency = scaleLat(base.loadLatency, lat_scale);
    base.fpLatency = scaleLat(base.fpLatency, lat_scale);
    return base;
}

vector::SaturnConfig
scaledSaturn(vector::SaturnConfig base, double lat_scale,
             double width_scale)
{
    if (lat_scale != 1.0) {
        base.memLat = scaleLat(base.memLat, lat_scale);
        base.pipeLat = scaleLat(base.pipeLat, lat_scale);
        base.frontend = scaledInOrder(base.frontend, lat_scale);
    }
    if (width_scale != 1.0) {
        // DLEN stays a positive number of bits and never exceeds VLEN
        // (a datapath wider than the register is meaningless).
        int dlen = static_cast<int>(std::llround(base.dlen * width_scale));
        base.dlen = std::clamp(dlen, 32, base.vlen);
    }
    return base;
}

systolic::GemminiConfig
scaledGemmini(systolic::GemminiConfig base, double lat_scale,
              double width_scale)
{
    if (lat_scale != 1.0) {
        base.dmaFixed = scaleLat(base.dmaFixed, lat_scale);
        base.fenceMemPenalty = scaleLat(base.fenceMemPenalty, lat_scale);
        base.frontend = scaledInOrder(base.frontend, lat_scale);
    }
    if (width_scale != 1.0) {
        int bytes = static_cast<int>(
            std::llround(base.busBytes * width_scale));
        base.busBytes = std::max(4, bytes);
    }
    return base;
}

std::function<double(double)>
areaWithWidth(double base_mm2, double mm2_per_doubling)
{
    return [base_mm2, mm2_per_doubling](double width_scale) {
        double a = base_mm2;
        if (width_scale != 1.0)
            a += mm2_per_doubling * std::log2(width_scale);
        return std::max(0.3 * base_mm2, a);
    };
}

DesignSpace &
DesignSpace::setLatScales(std::vector<double> v)
{
    if (v.empty())
        rtoc_fatal("DesignSpace '%s': empty latency axis", name_.c_str());
    lat_ = std::move(v);
    return *this;
}

DesignSpace &
DesignSpace::setWidthScales(std::vector<double> v)
{
    if (v.empty())
        rtoc_fatal("DesignSpace '%s': empty width axis", name_.c_str());
    width_ = std::move(v);
    return *this;
}

DesignSpace &
DesignSpace::setFreqsHz(std::vector<double> v)
{
    if (v.empty())
        rtoc_fatal("DesignSpace '%s': empty frequency axis",
                   name_.c_str());
    freq_ = std::move(v);
    return *this;
}

DesignSpace &
DesignSpace::setFormats(std::vector<matlib::NumericFormat> v)
{
    if (v.empty())
        rtoc_fatal("DesignSpace '%s': empty format axis", name_.c_str());
    formats_ = std::move(v);
    return *this;
}

DesignSpace &
DesignSpace::setAxis(const std::string &name, std::vector<double> values)
{
    if (values.empty())
        rtoc_fatal("DesignSpace '%s': empty custom axis '%s'",
                   name_.c_str(), name.c_str());
    customAxes_[name] = std::move(values);
    return *this;
}

const std::vector<double> &
DesignSpace::axis(const std::string &name) const
{
    auto it = customAxes_.find(name);
    if (it == customAxes_.end())
        rtoc_fatal("DesignSpace '%s': unknown axis '%s'", name_.c_str(),
                   name.c_str());
    return it->second;
}

size_t
DesignSpace::size() const
{
    return formats_.size() * configs_.size() * lat_.size() *
           width_.size() * freq_.size();
}

PointSpec
DesignSpace::point(size_t flat) const
{
    rtoc_assert(flat < size());
    PointSpec p;
    p.freq = static_cast<int>(flat % freq_.size());
    flat /= freq_.size();
    p.width = static_cast<int>(flat % width_.size());
    flat /= width_.size();
    p.lat = static_cast<int>(flat % lat_.size());
    flat /= lat_.size();
    // Format outermost: the single-format default decodes flat
    // indices exactly as the historical four-axis space.
    p.config = static_cast<int>(flat % configs_.size());
    p.fmt = static_cast<int>(flat / configs_.size());
    return p;
}

size_t
DesignSpace::flatIndex(const PointSpec &p) const
{
    return (((static_cast<size_t>(p.fmt) * configs_.size() + p.config) *
                 lat_.size() +
             p.lat) *
                width_.size() +
            p.width) *
               freq_.size() +
           p.freq;
}

Candidate
DesignSpace::materialize(const PointSpec &p, Fidelity f,
                         bool with_program) const
{
    rtoc_assert(p.config >= 0 &&
                p.config < static_cast<int>(configs_.size()));
    const ConfigEntry &e = configs_[p.config];
    const double lat = lat_[p.lat];
    const double width = width_[p.width];
    rtoc_assert(p.fmt >= 0 && p.fmt < static_cast<int>(formats_.size()));
    const matlib::NumericFormat fmt = formats_[p.fmt];

    Candidate c;
    c.model = e.model(lat, width);
    c.name = e.name + scaleSuffix(lat, width);
    if (fmt != matlib::NumericFormat::F32)
        c.name += std::string("@") + matlib::formatName(fmt);
    c.progKey = e.progKey(f, fmt);
    // schedKeySuffix() keeps sched-on cell costs from aliasing the
    // baseline cells (empty — keys untouched — when RTOC_SCHED is
    // off); the numeric format is carried inside progKey via the
    // emitting backend's cacheKey.
    c.cellKey =
        c.model->cacheKey() + "|" + c.progKey + isa::schedKeySuffix();
    c.extraCycles = e.extraCycles;
    c.areaMm2 = e.area ? e.area(width) : 0.0;
    c.freqHz = freq_[p.freq];
    if (with_program)
        c.prog = e.emit(f, fmt);
    return c;
}

std::string
DesignSpace::cellKey(const PointSpec &p, Fidelity f) const
{
    return materialize(p, f, false).cellKey;
}

double
DesignSpace::areaMm2(const PointSpec &p) const
{
    const ConfigEntry &e = configs_[p.config];
    return e.area ? e.area(width_[p.width]) : 0.0;
}

double
DesignSpace::freqHz(const PointSpec &p) const
{
    return freq_[p.freq];
}

size_t
DesignSpace::countDistinctCells(Fidelity f) const
{
    // Frequency never changes the replayed cell; scaled knobs that
    // round to the same values alias too (that is the point of the
    // cell abstraction), so count the actual key set.
    std::set<std::string> keys;
    PointSpec p;
    for (p.fmt = 0; p.fmt < static_cast<int>(formats_.size()); ++p.fmt) {
        for (p.config = 0; p.config < static_cast<int>(configs_.size());
             ++p.config) {
            for (p.lat = 0; p.lat < static_cast<int>(lat_.size());
                 ++p.lat) {
                for (p.width = 0;
                     p.width < static_cast<int>(width_.size());
                     ++p.width) {
                    keys.insert(cellKey(p, f));
                }
            }
        }
    }
    return keys.size();
}

} // namespace rtoc::dse
