/**
 * @file
 * Local low-order surrogate of replay cost over the continuous design
 * axes (latency scale, width scale).
 *
 * The explorer fits one surrogate per configuration-axis entry on the
 * cells it has already replayed, modelling log(cycles) — cycle counts
 * across a latency sweep span decades, and the multiplicative knob
 * scaling makes them near-log-linear — with a quadratic polynomial in
 * (lat, width). The basis adapts to the evidence: axes that do not
 * vary across the samples are dropped (a scalar core's width axis is
 * degenerate), and higher-order terms are shed until the system is
 * overdetermined, so the fit degrades gracefully from quadratic
 * through linear to a constant as samples shrink. Normal equations
 * get a trace-scaled ridge so near-collinear sample sets stay
 * solvable (numerics::luSolve is fatal on singular systems).
 */

#ifndef RTOC_DSE_SURROGATE_HH
#define RTOC_DSE_SURROGATE_HH

#include <cstddef>
#include <vector>

namespace rtoc::dse {

/** Per-config log-cycles model over (latScale, widthScale). */
class Surrogate
{
  public:
    /** Record one replayed cell at (lat, width) costing @p cycles. */
    void addSample(double lat, double width, double cycles);

    /**
     * Refit on everything recorded so far. Returns false (and leaves
     * the model unusable) with zero samples.
     */
    bool fit();

    /** Predicted replay cycles at (lat, width); fit() must be true. */
    double predictCycles(double lat, double width) const;

    /**
     * Worst relative training error |pred - actual| / actual of the
     * last fit(). The explorer uses it as the model's trust band: a
     * smooth response fits to a fraction of a percent and earns a
     * tight expansion band, a rough one widens its own band.
     */
    double maxRelError() const { return maxRelError_; }

    size_t samples() const { return lat_.size(); }
    bool fitted() const { return !coef_.empty(); }

  private:
    // Basis-term tags, in preference order (trimmed from the back).
    enum Term { kOne, kLat, kWidth, kLat2, kWidth2, kLatWidth };

    static double eval(Term t, double lat, double width);

    std::vector<double> lat_, width_, logCycles_;
    std::vector<Term> terms_;
    std::vector<double> coef_;
    double maxRelError_ = 0.0;
};

} // namespace rtoc::dse

#endif // RTOC_DSE_SURROGATE_HH
