#include "cli.hh"

#include <cstdlib>

#include "logging.hh"

namespace rtoc {

Cli::Cli(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            // Tolerate google-benchmark style positional args silently
            // only if they look like benchmark filters.
            rtoc_fatal("unexpected positional argument '%s' "
                       "(flags are --name or --name=value)", arg.c_str());
        }
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq == std::string::npos)
            flags_[arg] = "";
        else
            flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    }
}

bool
Cli::has(const std::string &name) const
{
    return flags_.count(name) > 0;
}

long
Cli::getInt(const std::string &name, long def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return def;
    return std::strtol(it->second.c_str(), nullptr, 10);
}

double
Cli::getDouble(const std::string &name, double def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

std::string
Cli::getString(const std::string &name, const std::string &def) const
{
    auto it = flags_.find(name);
    if (it == flags_.end() || it->second.empty())
        return def;
    return it->second;
}

} // namespace rtoc
