/**
 * @file
 * Deterministic xorshift128+ RNG. Every stochastic component of the
 * reproduction (scenario generation, disturbance sampling) seeds one of
 * these explicitly so experiments are bit-reproducible across runs and
 * platforms, independent of libstdc++'s distribution implementations.
 */

#ifndef RTOC_COMMON_RANDOM_HH
#define RTOC_COMMON_RANDOM_HH

#include <cstdint>

namespace rtoc {

/** xorshift128+ generator with convenience distributions. */
class Rng
{
  public:
    /** Seed the generator; distinct seeds give independent streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 initialization to spread low-entropy seeds.
        uint64_t z = seed;
        for (int i = 0; i < 2; ++i) {
            z += 0x9e3779b97f4a7c15ull;
            uint64_t t = z;
            t = (t ^ (t >> 30)) * 0xbf58476d1ce4e5b9ull;
            t = (t ^ (t >> 27)) * 0x94d049bb133111ebull;
            state_[i] = t ^ (t >> 31);
        }
        if (state_[0] == 0 && state_[1] == 0)
            state_[0] = 1;
    }

    /** Next raw 64-bit draw. */
    uint64_t
    next()
    {
        uint64_t s1 = state_[0];
        const uint64_t s0 = state_[1];
        state_[0] = s0;
        s1 ^= s1 << 23;
        state_[1] = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
        return state_[1] + s0;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    uint64_t
    uniformInt(uint64_t n)
    {
        return next() % n;
    }

    /** Standard normal via Box-Muller (uses two uniforms per pair). */
    double
    gaussian()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        double r = __builtin_sqrt(-2.0 * __builtin_log(u1));
        double theta = 2.0 * 3.14159265358979323846 * u2;
        spare_ = r * __builtin_sin(theta);
        have_spare_ = true;
        return r * __builtin_cos(theta);
    }

  private:
    uint64_t state_[2];
    bool have_spare_ = false;
    double spare_ = 0.0;
};

} // namespace rtoc

#endif // RTOC_COMMON_RANDOM_HH
