/**
 * @file
 * Bounded LRU map shared by the process-wide result memos (the
 * hil::runCell cell memo and the dse evaluation memo).
 *
 * Both memos used to be unbounded std::maps, which was fine for
 * figure benches (hundreds of cells) but not for 100k-point design
 * explorations whose long-lived driver processes would otherwise grow
 * without limit. LruMap keeps the most-recently-used @p capacity
 * entries and counts evictions so the owners can report cache
 * pressure.
 *
 * Not thread-safe: every owner already serializes access with its own
 * mutex (the memos are hit from sweep-pool workers), so the container
 * stays lock-free and cheap to reason about.
 */

#ifndef RTOC_COMMON_LRU_CACHE_HH
#define RTOC_COMMON_LRU_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace rtoc {

/** Capacity-bounded map with least-recently-used eviction. */
template <typename K, typename V>
class LruMap
{
  public:
    /** @p capacity 0 means unbounded (no eviction ever). */
    explicit LruMap(size_t capacity = 0) : cap_(capacity) {}

    /**
     * Pointer to the value stored under @p key (nullptr on miss).
     * A hit refreshes the entry's recency. The pointer is valid until
     * the next put()/setCapacity() call.
     */
    V *
    get(const K &key)
    {
        auto it = idx_.find(key);
        if (it == idx_.end())
            return nullptr;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /** Insert (or overwrite) @p key, evicting LRU entries over cap. */
    void
    put(const K &key, V value)
    {
        auto it = idx_.find(key);
        if (it != idx_.end()) {
            it->second->second = std::move(value);
            order_.splice(order_.begin(), order_, it->second);
            return;
        }
        order_.emplace_front(key, std::move(value));
        idx_.emplace(key, order_.begin());
        shrink();
    }

    size_t size() const { return order_.size(); }
    size_t capacity() const { return cap_; }
    uint64_t evictions() const { return evictions_; }

    /** Retarget the bound; an over-full map evicts immediately. */
    void
    setCapacity(size_t capacity)
    {
        cap_ = capacity;
        shrink();
    }

    /** Drop everything (eviction counter is preserved). */
    void
    clear()
    {
        order_.clear();
        idx_.clear();
    }

  private:
    void
    shrink()
    {
        while (cap_ != 0 && order_.size() > cap_) {
            idx_.erase(order_.back().first);
            order_.pop_back();
            ++evictions_;
        }
    }

    size_t cap_;
    uint64_t evictions_ = 0;
    std::list<std::pair<K, V>> order_; ///< front = most recent
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
        idx_;
};

} // namespace rtoc

#endif // RTOC_COMMON_LRU_CACHE_HH
