#include "thread_pool.hh"

#include <algorithm>
#include <cstdlib>

#include "obs/registry.hh"
#include "obs/trace.hh"

namespace rtoc {

namespace {

/** True on threads currently executing pool work (nesting guard). */
thread_local bool in_pool_worker = false;

/**
 * Registry ids of the pool counters. Steal counts depend on the
 * run-to-run scheduling race, so that counter is flagged unstable and
 * stays out of bench metrics JSON; job and task totals are
 * deterministic for a fixed configuration.
 */
struct PoolIds
{
    StatId jobs;
    StatId tasks;
    StatId steals;
};

const PoolIds &
poolIds()
{
    static const PoolIds ids = [] {
        obs::Registry &reg = obs::Registry::global();
        return PoolIds{reg.counter("pool.jobs"),
                       reg.counter("pool.tasks"),
                       reg.counter("pool.steals", /*unstable=*/true)};
    }();
    return ids;
}

int
defaultThreadCount()
{
    if (const char *env = std::getenv("RTOC_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

} // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads)
{
    // Worker i owns participant slot i+1; the submitting caller is
    // always slot 0.
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::runTask(Job &job, size_t t)
{
    const size_t begin = t * job.grain;
    const size_t end = std::min(job.limit, begin + job.grain);
    obs::count(poolIds().tasks);
    RTOC_SPAN_NAMED(span, "pool.task", "pool");
    span.arg("task", t);
    // Per-index error guard: a throwing fn(i) must not skip the rest
    // of its grain chunk — the whole range drains regardless of the
    // grain, and the first exception is rethrown afterwards.
    for (size_t i = begin; i < end; ++i) {
        try {
            (*job.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(job.errorMu);
            if (!job.error)
                job.error = std::current_exception();
        }
    }
    job.done.fetch_add(1, std::memory_order_release);
}

void
ThreadPool::drainAs(Job &job, int slot)
{
    RTOC_SPAN_NAMED(span, "pool.drain", "pool");
    span.arg("slot", static_cast<uint64_t>(slot));
    const int nd = static_cast<int>(job.deques.size());
    while (true) {
        size_t t;
        if (job.deques[slot].popFront(t)) {
            runTask(job, t);
            continue;
        }
        // Own block drained: steal from the back of a victim's block,
        // scanning round-robin from our own slot. Deques only shrink
        // while a job runs (nested submits execute inline, pushing
        // nothing), so one full all-empty scan is conclusive.
        bool stole = false;
        for (int k = 1; k < nd && !stole; ++k)
            stole = job.deques[(slot + k) % nd].stealBack(t);
        if (!stole)
            return;
        obs::count(poolIds().steals);
        obs::TraceWriter::global().instant("pool.steal", "pool");
        runTask(job, t);
    }
}

void
ThreadPool::workerLoop(int slot)
{
    in_pool_worker = true;
    uint64_t seen = 0;
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] {
                return stop_ || (job_ != nullptr && generation_ != seen);
            });
            if (stop_)
                return;
            job = job_;
            seen = generation_;
        }
        drainAs(*job, slot);
        // Take the job lock before notifying so the completion of the
        // final task cannot slip between the caller's predicate check
        // and its wait (the classic lost-wakeup interleaving).
        {
            std::lock_guard<std::mutex> lk(mu_);
        }
        doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn,
                        size_t grain)
{
    if (n == 0)
        return;
    if (grain < 1)
        grain = 1;
    const size_t tasks = (n + grain - 1) / grain;

    // Inline paths: trivial ranges, single-threaded pools, and nested
    // calls from inside a worker (the outer fan-out owns the pool).
    // Error semantics match the pooled path: the whole range executes
    // and the first exception is rethrown afterwards.
    if (tasks == 1 || threads_ <= 1 || in_pool_worker) {
        Job job;
        job.fn = &fn;
        job.limit = n;
        job.grain = grain;
        job.tasks = tasks;
        for (size_t t = 0; t < tasks; ++t)
            runTask(job, t);
        if (job.error)
            std::rethrow_exception(job.error);
        return;
    }

    // Task ids must fit the 32-bit deque ends; recurse over windows in
    // the (theoretical) overflow case.
    constexpr size_t kMaxTasks = 0xffffffffull;
    if (tasks > kMaxTasks) {
        const size_t window = kMaxTasks * grain;
        for (size_t base = 0; base < n; base += window) {
            const size_t len = std::min(window, n - base);
            parallelFor(len, [&](size_t i) { fn(base + i); }, grain);
        }
        return;
    }

    std::lock_guard<std::mutex> submit(submitMu_);
    obs::count(poolIds().jobs);
    // Shared ownership: a worker that wakes late may still hold the
    // job after this call returns; it only observes the exhausted
    // deques, never the (by then dead) fn.
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->limit = n;
    job->grain = grain;
    job->tasks = tasks;
    // Contiguous block partition: participant p starts on block p and
    // migrates by stealing once its block drains.
    const size_t np = static_cast<size_t>(threads_);
    job->deques = std::vector<WorkDeque>(np);
    for (size_t p = 0; p < np; ++p)
        job->deques[p].init(tasks * p / np, tasks * (p + 1) / np);
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_ = job;
        ++generation_;
    }
    cv_.notify_all();

    // The caller participates instead of idling. It counts as a pool
    // worker while draining so a nested parallelFor from one of its
    // own tasks runs inline instead of re-locking submitMu_.
    in_pool_worker = true;
    drainAs(*job, 0);
    in_pool_worker = false;

    {
        std::unique_lock<std::mutex> lk(mu_);
        doneCv_.wait(lk, [&] {
            return job->done.load(std::memory_order_acquire) >=
                   job->tasks;
        });
        job_ = nullptr;
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

} // namespace rtoc
