#include "thread_pool.hh"

#include <cstdlib>

namespace rtoc {

namespace {

/** True on threads currently executing pool work (nesting guard). */
thread_local bool in_pool_worker = false;

int
defaultThreadCount()
{
    if (const char *env = std::getenv("RTOC_THREADS")) {
        int n = std::atoi(env);
        if (n >= 1)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? static_cast<int>(hw) : 1;
}

} // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads)
{
    for (int i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::drain(Job &job)
{
    while (true) {
        size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.limit)
            break;
        try {
            (*job.fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lk(job.errorMu);
            if (!job.error)
                job.error = std::current_exception();
        }
        job.done.fetch_add(1, std::memory_order_release);
    }
}

void
ThreadPool::workerLoop()
{
    in_pool_worker = true;
    uint64_t seen = 0;
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_.wait(lk, [&] {
                return stop_ || (job_ != nullptr && generation_ != seen);
            });
            if (stop_)
                return;
            job = job_;
            seen = generation_;
        }
        drain(*job);
        // Take the job lock before notifying so the completion of the
        // final index cannot slip between the caller's predicate check
        // and its wait (the classic lost-wakeup interleaving).
        {
            std::lock_guard<std::mutex> lk(mu_);
        }
        doneCv_.notify_all();
    }
}

void
ThreadPool::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    // Inline paths: trivial ranges, single-threaded pools, and nested
    // calls from inside a worker (the outer fan-out owns the pool).
    // Routed through drain() so error semantics match the pooled
    // path: the whole range executes and the first exception is
    // rethrown afterwards.
    if (n == 1 || threads_ <= 1 || in_pool_worker) {
        Job job;
        job.fn = &fn;
        job.limit = n;
        drain(job);
        if (job.error)
            std::rethrow_exception(job.error);
        return;
    }

    std::lock_guard<std::mutex> submit(submitMu_);
    // Shared ownership: a worker that wakes late may still hold the
    // job after this call returns; it only observes the exhausted
    // index counter, never the (by then dead) fn.
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->limit = n;
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_ = job;
        ++generation_;
    }
    cv_.notify_all();

    // The caller participates instead of idling. It counts as a pool
    // worker while draining so a nested parallelFor from one of its
    // own tasks runs inline instead of re-locking submitMu_.
    in_pool_worker = true;
    drain(*job);
    in_pool_worker = false;

    {
        std::unique_lock<std::mutex> lk(mu_);
        doneCv_.wait(lk, [&] {
            return job->done.load(std::memory_order_acquire) >= n;
        });
        job_ = nullptr;
    }
    if (job->error)
        std::rethrow_exception(job->error);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

} // namespace rtoc
