#include "logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace rtoc {

namespace {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace

LogLevel
logLevel()
{
    static const LogLevel level = [] {
        const char *env = std::getenv("RTOC_LOG");
        if (!env)
            return LogLevel::Info;
        std::string v(env);
        if (v == "quiet" || v == "error" || v == "0")
            return LogLevel::Quiet;
        if (v == "warn")
            return LogLevel::Warn;
        return LogLevel::Info;
    }();
    return level;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    return msg;
}

} // namespace rtoc
