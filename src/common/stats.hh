/**
 * @file
 * Lightweight named-counter statistics, in the spirit of gem5's stats
 * package but reduced to what the rtoc timing models need: scalar
 * counters, cycle accumulators, and distributions with summary
 * statistics (median / quartiles) for solve-time reporting.
 */

#ifndef RTOC_COMMON_STATS_HH
#define RTOC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rtoc {

/** Monotonic cycle count used by all timing models. */
using Cycles = uint64_t;

/**
 * A group of named uint64 counters. Models register their event counts
 * (instructions issued, stall cycles, fences, ...) here so tests and
 * benches can introspect why a configuration is slow.
 */
class StatGroup
{
  public:
    /** Add @p delta to counter @p name, creating it at zero if absent. */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set counter @p name to @p value. */
    void set(const std::string &name, uint64_t value);

    /** Read counter @p name; returns 0 when never touched. */
    uint64_t get(const std::string &name) const;

    /** True when counter @p name exists. */
    bool has(const std::string &name) const;

    /** Reset all counters to zero (keeps names). */
    void reset();

    /** All counters in name order, for dumping. */
    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }

    /** Render a "name = value" listing. */
    std::string dump(const std::string &prefix = "") const;

  private:
    std::map<std::string, uint64_t> counters_;
};

/**
 * Summary of a sample distribution. The HIL evaluation reports median
 * solve time with interquartile ranges (paper Fig. 16), which this
 * reproduces.
 */
struct DistSummary
{
    size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
};

/** Accumulates samples and computes a DistSummary on demand. */
class Distribution
{
  public:
    /** Record one sample. */
    void add(double sample) { samples_.push_back(sample); }

    /** Number of recorded samples. */
    size_t size() const { return samples_.size(); }

    /** Drop all samples. */
    void reset() { samples_.clear(); }

    /** Compute count/mean/min/max/quartiles; zeroes when empty. */
    DistSummary summarize() const;

    /** Raw sample access (for tests). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace rtoc

#endif // RTOC_COMMON_STATS_HH
