/**
 * @file
 * Lightweight named-counter statistics, in the spirit of gem5's stats
 * package but reduced to what the rtoc timing models need: scalar
 * counters, cycle accumulators, and distributions with summary
 * statistics (median / quartiles) for solve-time reporting.
 *
 * Counter names are interned into small integer ids (StatId,
 * mirroring isa::KernelId): the hot increment path indexes a dense
 * vector instead of hashing a std::string, and the string is looked
 * up only when a table or dump is printed. The interner is
 * process-wide and shared with the obs::Registry, so a name means the
 * same id everywhere in the process.
 */

#ifndef RTOC_COMMON_STATS_HH
#define RTOC_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace rtoc {

/** Monotonic cycle count used by all timing models. */
using Cycles = uint64_t;

/** Interned id of a statistic/counter name. */
using StatId = uint32_t;

/**
 * Intern @p name into a process-wide id (thread-safe). Repeated calls
 * with the same name return the same id; ids are dense from 0.
 */
StatId internStat(std::string_view name);

/** The string a StatId was interned from (stable reference). */
const std::string &statName(StatId id);

/** Number of stat names interned so far. */
size_t internedStatCount();

/**
 * A group of named uint64 counters. Models register their event counts
 * (instructions issued, stall cycles, fences, ...) here so tests and
 * benches can introspect why a configuration is slow.
 *
 * Two access paths share one store: the interned-id path (inc/set/get
 * by StatId — a vector index, no string hashing; per-uop and
 * per-episode increments use this) and the historical string path,
 * which interns the name once and forwards. counters()/dump() render
 * the name-sorted view on demand.
 */
class StatGroup
{
  public:
    /** Add @p delta to counter @p id, creating it at zero if absent. */
    void
    inc(StatId id, uint64_t delta = 1)
    {
        touch(id) += delta;
    }

    /** Add @p delta to counter @p name (interned string path). */
    void inc(const std::string &name, uint64_t delta = 1)
    {
        inc(internStat(name), delta);
    }

    /** Set counter @p id to @p value. */
    void
    set(StatId id, uint64_t value)
    {
        touch(id) = value;
    }

    /** Set counter @p name to @p value. */
    void set(const std::string &name, uint64_t value)
    {
        set(internStat(name), value);
    }

    /** Read counter @p id; returns 0 when never touched. */
    uint64_t
    get(StatId id) const
    {
        return id < vals_.size() ? vals_[id] : 0;
    }

    /** Read counter @p name; returns 0 when never touched. */
    uint64_t get(const std::string &name) const;

    /** True when counter @p id exists in this group. */
    bool
    has(StatId id) const
    {
        return id < touched_.size() && touched_[id];
    }

    /** True when counter @p name exists in this group. */
    bool has(const std::string &name) const;

    /** Reset all counters to zero (keeps names). */
    void reset();

    /** All counters in name order, for dumping. */
    const std::map<std::string, uint64_t> &counters() const;

    /** Render a "name = value" listing. */
    std::string dump(const std::string &prefix = "") const;

  private:
    /** Grow-and-mark slot access shared by inc/set. */
    uint64_t &
    touch(StatId id)
    {
        if (id >= vals_.size()) {
            vals_.resize(id + 1, 0);
            touched_.resize(id + 1, 0);
        }
        touched_[id] = 1;
        view_dirty_ = true;
        return vals_[id];
    }

    std::vector<uint64_t> vals_;   ///< dense by StatId
    std::vector<uint8_t> touched_; ///< slot ever inc'd/set in this group
    /** Name-sorted view materialized for counters()/dump(). */
    mutable std::map<std::string, uint64_t> view_;
    mutable bool view_dirty_ = true;
};

/**
 * Summary of a sample distribution. The HIL evaluation reports median
 * solve time with interquartile ranges (paper Fig. 16), which this
 * reproduces.
 */
struct DistSummary
{
    size_t count = 0;
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p25 = 0.0;
    double median = 0.0;
    double p75 = 0.0;
};

/** Accumulates samples and computes a DistSummary on demand. */
class Distribution
{
  public:
    /** Record one sample. */
    void add(double sample) { samples_.push_back(sample); }

    /** Number of recorded samples. */
    size_t size() const { return samples_.size(); }

    /** Drop all samples. */
    void reset() { samples_.clear(); }

    /** Compute count/mean/min/max/quartiles; zeroes when empty. */
    DistSummary summarize() const;

    /** Raw sample access (for tests). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace rtoc

#endif // RTOC_COMMON_STATS_HH
