/**
 * @file
 * Bounded-ish FIFO of cycle timestamps over a circular buffer.
 *
 * The coprocessor queue models (Saturn vector queue, Gemmini command
 * ROB) previously used std::deque, which allocates chunks as the
 * queue churns. Occupancy is bounded by the modelled queue depth, so
 * a power-of-two ring that grows at most once and is then reused
 * run-over-run keeps the timing hot loop allocation-free.
 */

#ifndef RTOC_COMMON_RING_FIFO_HH
#define RTOC_COMMON_RING_FIFO_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace rtoc {

/** Circular FIFO of uint64 values; capacity grows, never shrinks. */
class RingFifo
{
  public:
    bool empty() const { return count_ == 0; }

    size_t size() const { return count_; }

    uint64_t
    front() const
    {
        rtoc_assert(count_ > 0);
        return buf_[head_];
    }

    void
    popFront()
    {
        rtoc_assert(count_ > 0);
        head_ = (head_ + 1) & mask_;
        --count_;
    }

    void
    pushBack(uint64_t v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & mask_] = v;
        ++count_;
    }

    /** Forget contents; keeps the buffer for reuse. */
    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

  private:
    void
    grow()
    {
        size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
        std::vector<uint64_t> next(cap);
        for (size_t i = 0; i < count_; ++i)
            next[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(next);
        head_ = 0;
        mask_ = cap - 1;
    }

    std::vector<uint64_t> buf_;
    size_t head_ = 0;
    size_t count_ = 0;
    size_t mask_ = 0;
};

} // namespace rtoc

#endif // RTOC_COMMON_RING_FIFO_HH
