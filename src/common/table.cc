#include "table.hh"

#include <cstdio>
#include <sstream>

#include "logging.hh"

namespace rtoc {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    if (headers_.empty())
        rtoc_panic("table '%s' created with no columns", title_.c_str());
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        rtoc_panic("table '%s': row has %zu cells, expected %zu",
                   title_.c_str(), cells.size(), headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::num(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::render() const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        os << "|";
        for (size_t c = 0; c < row.size(); ++c) {
            os << " " << row[c];
            os << std::string(width[c] - row[c].size(), ' ') << " |";
        }
        os << "\n";
    };

    std::ostringstream os;
    os << "\n== " << title_ << " ==\n";
    emit_row(os, headers_);
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << std::string(width[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        emit_row(os, row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace rtoc
