/**
 * @file
 * Minimal --flag=value command-line parsing for the bench binaries.
 * Each bench accepts e.g. --scenarios=20 --full to widen sweeps; the
 * defaults are sized so the complete bench suite runs in minutes.
 */

#ifndef RTOC_COMMON_CLI_HH
#define RTOC_COMMON_CLI_HH

#include <map>
#include <string>

namespace rtoc {

/** Parsed command line: "--key=value" and bare "--switch" flags. */
class Cli
{
  public:
    /** Parse argv; unknown positional arguments are fatal(). */
    Cli(int argc, char **argv);

    /** True when --name was given (with or without a value). */
    bool has(const std::string &name) const;

    /** Integer flag with default. */
    long getInt(const std::string &name, long def) const;

    /** Floating-point flag with default. */
    double getDouble(const std::string &name, double def) const;

    /** String flag with default. */
    std::string getString(const std::string &name,
                          const std::string &def) const;

  private:
    std::map<std::string, std::string> flags_;
};

} // namespace rtoc

#endif // RTOC_COMMON_CLI_HH
