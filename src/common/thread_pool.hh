/**
 * @file
 * Work-stealing fixed-size thread pool for the sweep engine.
 *
 * One pool per process (ThreadPool::global()) sized from the
 * RTOC_THREADS environment variable or hardware concurrency. The only
 * primitive is parallelFor(n, fn[, grain]): the index range is split
 * into per-participant deques (Chase–Lev-style: the owner claims from
 * the front of its own range, idle participants steal from the back of
 * a victim's range, both through one CAS'd head/tail word). Relative to
 * the previous single shared-counter queue, a worker that drains its
 * block early migrates to whichever block still has work, so skewed
 * task lengths (relin-vs-fixed-trim cells, fueled-rocket episodes) no
 * longer leave workers idle behind one slow peer.
 *
 * Nested parallelFor calls from inside a worker run inline, so composed
 * sweeps cannot deadlock — the outermost fan-out owns the pool.
 *
 * The optional grain groups @p grain consecutive indices into one
 * claimable task (executed in ascending index order), amortizing the
 * per-task claim/wake overhead when individual tasks are tiny (1-tick
 * smoke episodes). RTOC_GRAIN overrides the grain of every
 * SweepRunner fan-out (see hil/sweep.hh).
 *
 * Determinism contract: fn(i) must depend only on i (each sweep task
 * seeds its own RNG from its index). parallelFor imposes no ordering —
 * stealing makes execution order nondeterministic by design — so
 * callers that aggregate must do so over an index-ordered result
 * array, never in completion order. Neither the thread count nor the
 * grain can change what any fn(i) computes.
 */

#ifndef RTOC_COMMON_THREAD_POOL_HH
#define RTOC_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rtoc {

/**
 * One participant's claimable range of task ids. head/tail live in a
 * single atomic word: the owner pops from the front (head+1), thieves
 * pop from the back (tail-1), and the shared CAS makes the two ends
 * collide safely on the last element. Tasks are never pushed while a
 * job runs (nested submits run inline), so a deque only ever shrinks.
 */
class WorkDeque
{
  public:
    /** Non-atomic rearm before the job is published to workers. */
    void
    init(size_t begin, size_t end)
    {
        span_.store(pack(static_cast<uint32_t>(begin),
                         static_cast<uint32_t>(end)),
                    std::memory_order_relaxed);
    }

    /** Owner side: claim the lowest remaining task id. */
    bool
    popFront(size_t &out)
    {
        uint64_t s = span_.load(std::memory_order_relaxed);
        while (true) {
            uint32_t head = unpackHead(s);
            uint32_t tail = unpackTail(s);
            if (head >= tail)
                return false;
            if (span_.compare_exchange_weak(s, pack(head + 1, tail),
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
                out = head;
                return true;
            }
        }
    }

    /** Thief side: claim the highest remaining task id. */
    bool
    stealBack(size_t &out)
    {
        uint64_t s = span_.load(std::memory_order_relaxed);
        while (true) {
            uint32_t head = unpackHead(s);
            uint32_t tail = unpackTail(s);
            if (head >= tail)
                return false;
            if (span_.compare_exchange_weak(s, pack(head, tail - 1),
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
                out = tail - 1;
                return true;
            }
        }
    }

  private:
    static uint64_t
    pack(uint32_t head, uint32_t tail)
    {
        return (static_cast<uint64_t>(tail) << 32) | head;
    }
    static uint32_t unpackHead(uint64_t s)
    {
        return static_cast<uint32_t>(s);
    }
    static uint32_t unpackTail(uint64_t s)
    {
        return static_cast<uint32_t>(s >> 32);
    }

    /** Padded so per-participant deques never false-share. */
    alignas(64) std::atomic<uint64_t> span_{0};
};

/** Fixed-size worker pool with a work-stealing fan-out primitive. */
class ThreadPool
{
  public:
    /** @param threads total parallelism; <=1 means run everything
     *  inline on the caller. */
    explicit ThreadPool(int threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + the participating caller). */
    int threads() const { return threads_; }

    /**
     * Run fn(0..n-1), distributing indices over the pool. Blocks until
     * every index has completed. Exceptions from fn propagate to the
     * caller (first one wins; the rest of the range still drains).
     *
     * @p grain groups that many consecutive indices into one claimable
     * task; within a task, indices execute in ascending order. grain
     * affects scheduling only — results are independent of it.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn,
                     size_t grain = 1);

    /**
     * Process-wide pool. Size: RTOC_THREADS when set, else hardware
     * concurrency. Constructed on first use.
     */
    static ThreadPool &global();

  private:
    struct Job
    {
        const std::function<void(size_t)> *fn = nullptr;
        size_t limit = 0;          ///< index count (fn domain)
        size_t grain = 1;          ///< indices per claimable task
        size_t tasks = 0;          ///< ceil(limit / grain)
        std::vector<WorkDeque> deques; ///< one per participant
        std::atomic<size_t> done{0};   ///< completed tasks
        std::exception_ptr error;
        std::mutex errorMu;
    };

    void workerLoop(int slot);

    /** Run task @p t (its grain-sized index span) guarding errors. */
    static void runTask(Job &job, size_t t);

    /** Drain as participant @p slot: own deque first, then steal. */
    void drainAs(Job &job, int slot);

    int threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_;      ///< wakes workers for a new job
    std::condition_variable doneCv_;  ///< wakes the submitting caller
    std::shared_ptr<Job> job_;
    uint64_t generation_ = 0;
    bool stop_ = false;

    std::mutex submitMu_; ///< serializes top-level parallelFor calls
};

} // namespace rtoc

#endif // RTOC_COMMON_THREAD_POOL_HH
