/**
 * @file
 * Minimal fixed-size thread pool for the sweep engine.
 *
 * One pool per process (ThreadPool::global()) sized from the
 * RTOC_THREADS environment variable or hardware concurrency. The only
 * primitive is parallelFor(n, fn): workers (and the calling thread)
 * pull indices from an atomic counter until the range drains. Nested
 * parallelFor calls from inside a worker run inline, so composed
 * sweeps cannot deadlock — the outermost fan-out owns the pool.
 *
 * Determinism contract: fn(i) must depend only on i (each sweep task
 * seeds its own RNG from its index). parallelFor imposes no ordering,
 * so callers that aggregate must do so over an index-ordered result
 * array, never in completion order.
 */

#ifndef RTOC_COMMON_THREAD_POOL_HH
#define RTOC_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rtoc {

/** Fixed-size worker pool with an index-range fan-out primitive. */
class ThreadPool
{
  public:
    /** @param threads total parallelism; <=1 means run everything
     *  inline on the caller. */
    explicit ThreadPool(int threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + the participating caller). */
    int threads() const { return threads_; }

    /**
     * Run fn(0..n-1), distributing indices over the pool. Blocks until
     * every index has completed. Exceptions from fn propagate to the
     * caller (first one wins; the rest of the range still drains).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /**
     * Process-wide pool. Size: RTOC_THREADS when set, else hardware
     * concurrency. Constructed on first use.
     */
    static ThreadPool &global();

  private:
    struct Job
    {
        const std::function<void(size_t)> *fn = nullptr;
        std::atomic<size_t> next{0};
        size_t limit = 0;
        std::atomic<size_t> done{0};
        std::exception_ptr error;
        std::mutex errorMu;
    };

    void workerLoop();
    static void drain(Job &job);

    int threads_ = 1;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable cv_;      ///< wakes workers for a new job
    std::condition_variable doneCv_;  ///< wakes the submitting caller
    std::shared_ptr<Job> job_;
    uint64_t generation_ = 0;
    bool stop_ = false;

    std::mutex submitMu_; ///< serializes top-level parallelFor calls
};

} // namespace rtoc

#endif // RTOC_COMMON_THREAD_POOL_HH
