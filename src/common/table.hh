/**
 * @file
 * Markdown-ish table printer used by every bench binary so that the
 * regenerated rows/series of each paper table and figure share one
 * consistent, diffable format.
 */

#ifndef RTOC_COMMON_TABLE_HH
#define RTOC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace rtoc {

/** Column-aligned text table with a title, headers, and string cells. */
class Table
{
  public:
    /** Create a table titled @p title with column headers @p headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Append a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format an integer. */
    static std::string num(uint64_t v);

    /** Convenience: format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render to a string (title, separator, aligned rows). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    /** Number of data rows so far. */
    size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rtoc

#endif // RTOC_COMMON_TABLE_HH
