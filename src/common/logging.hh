/**
 * @file
 * Status-message and error-handling helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated: a bug in rtoc itself.
 *            Aborts so a debugger/core dump can capture the state.
 * fatal()  — the simulation cannot continue because of a user-level
 *            problem (bad configuration, impossible parameters).
 *            Exits with status 1.
 * warn()   — something is modelled approximately or suspiciously;
 *            simulation continues.
 * inform() — plain status output.
 *
 * Verbosity follows the RTOC_LOG env knob, sharing the RTOC_* naming
 * convention of the other runtime knobs: "info" (the default — warn
 * and inform both print, matching historical behaviour), "warn"
 * (inform suppressed), and "error"/"quiet" (warn suppressed too).
 * panic/fatal always print.
 */

#ifndef RTOC_COMMON_LOGGING_HH
#define RTOC_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace rtoc {

/** Print a formatted message and abort(); use for rtoc bugs. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted message and exit(1); use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);

/** Print a formatted warning to stderr and continue. */
void warnImpl(const char *fmt, ...);

/** Print a formatted status message to stderr and continue. */
void informImpl(const char *fmt, ...);

/** Format a printf-style message into a std::string. */
std::string csprintf(const char *fmt, ...);

/** Log verbosity, parsed once from RTOC_LOG (see file comment). */
enum class LogLevel
{
    Quiet = 0, ///< RTOC_LOG=quiet or error: warn+inform suppressed
    Warn = 1,  ///< RTOC_LOG=warn: inform suppressed
    Info = 2,  ///< default: everything prints
};

/** The process's current verbosity. */
LogLevel logLevel();

} // namespace rtoc

#define rtoc_panic(...) ::rtoc::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define rtoc_fatal(...) ::rtoc::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define rtoc_warn(...) ::rtoc::warnImpl(__VA_ARGS__)
#define rtoc_inform(...) ::rtoc::informImpl(__VA_ARGS__)

/**
 * Internal-invariant assert; panics on failure.
 *
 * Hit on every Mat element access, so it is compiled out of NDEBUG
 * (Release) builds — configure with -DRTOC_DEBUG=ON (which defines
 * RTOC_FORCE_ASSERTS) to keep it in optimized builds. The condition
 * is never evaluated when disabled; side-effecting conditions are a
 * bug at the call site.
 */
#if !defined(NDEBUG) || defined(RTOC_FORCE_ASSERTS)
#define rtoc_assert(cond)                                                   \
    do {                                                                    \
        if (!(cond))                                                        \
            rtoc_panic("assertion failed: %s", #cond);                      \
    } while (0)
#else
#define rtoc_assert(cond) ((void)0)
#endif

#endif // RTOC_COMMON_LOGGING_HH
