#include "stats.hh"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace rtoc {

void
StatGroup::inc(const std::string &name, uint64_t delta)
{
    counters_[name] += delta;
}

void
StatGroup::set(const std::string &name, uint64_t value)
{
    counters_[name] = value;
}

uint64_t
StatGroup::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatGroup::has(const std::string &name) const
{
    return counters_.count(name) > 0;
}

void
StatGroup::reset()
{
    for (auto &kv : counters_)
        kv.second = 0;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << prefix << kv.first << " = " << kv.second << "\n";
    return os.str();
}

namespace {

/** Linear-interpolated quantile of a sorted sample vector. */
double
quantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

DistSummary
Distribution::summarize() const
{
    DistSummary s;
    if (samples_.empty())
        return s;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
             static_cast<double>(sorted.size());
    s.p25 = quantile(sorted, 0.25);
    s.median = quantile(sorted, 0.50);
    s.p75 = quantile(sorted, 0.75);
    return s;
}

} // namespace rtoc
