#include "stats.hh"

#include <algorithm>
#include <deque>
#include <mutex>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "common/logging.hh"

namespace rtoc {

namespace {

/**
 * Process-wide stat-name interner (same structure as the kernel-name
 * interner in isa/program.cc): names are interned once at counter
 * definition, so one mutex is plenty; lookups by id go through a
 * std::deque so returned string references stay stable as the table
 * grows.
 */
struct StatInterner
{
    std::mutex mu;
    std::unordered_map<std::string, StatId> ids;
    std::deque<std::string> names;
};

StatInterner &
statInterner()
{
    static StatInterner in;
    return in;
}

} // namespace

StatId
internStat(std::string_view name)
{
    if (name.empty())
        rtoc_panic("internStat: empty stat name");
    StatInterner &in = statInterner();
    std::lock_guard<std::mutex> lk(in.mu);
    auto it = in.ids.find(std::string(name));
    if (it != in.ids.end())
        return it->second;
    StatId id = static_cast<StatId>(in.names.size());
    in.names.emplace_back(name);
    in.ids.emplace(in.names.back(), id);
    return id;
}

const std::string &
statName(StatId id)
{
    StatInterner &in = statInterner();
    std::lock_guard<std::mutex> lk(in.mu);
    if (id >= in.names.size())
        rtoc_panic("statName: unknown stat id %u", id);
    return in.names[id];
}

size_t
internedStatCount()
{
    StatInterner &in = statInterner();
    std::lock_guard<std::mutex> lk(in.mu);
    return in.names.size();
}

uint64_t
StatGroup::get(const std::string &name) const
{
    return get(internStat(name));
}

bool
StatGroup::has(const std::string &name) const
{
    return has(internStat(name));
}

void
StatGroup::reset()
{
    std::fill(vals_.begin(), vals_.end(), 0);
    view_dirty_ = true;
}

const std::map<std::string, uint64_t> &
StatGroup::counters() const
{
    if (view_dirty_) {
        view_.clear();
        for (StatId id = 0; id < touched_.size(); ++id)
            if (touched_[id])
                view_[statName(id)] = vals_[id];
        view_dirty_ = false;
    }
    return view_;
}

std::string
StatGroup::dump(const std::string &prefix) const
{
    std::ostringstream os;
    for (const auto &kv : counters())
        os << prefix << kv.first << " = " << kv.second << "\n";
    return os.str();
}

namespace {

/** Linear-interpolated quantile of a sorted sample vector. */
double
quantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

DistSummary
Distribution::summarize() const
{
    DistSummary s;
    if (samples_.empty())
        return s;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    s.count = sorted.size();
    s.min = sorted.front();
    s.max = sorted.back();
    s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
             static_cast<double>(sorted.size());
    s.p25 = quantile(sorted, 0.25);
    s.median = quantile(sorted, 0.50);
    s.p75 = quantile(sorted, 0.75);
    return s;
}

} // namespace rtoc
