/**
 * @file
 * UART link model for the HIL tether (§5.2): the host transmits the
 * drone state + target downlink, the SoC returns motor commands.
 * 8N1 framing: 10 baud periods per byte, plus protocol framing bytes.
 * The paper notes the UART latency keeps real-time implementations
 * from matching the ideal policy on hard scenarios even when solve
 * time is below the simulation timestep — this model reproduces that
 * floor.
 */

#ifndef RTOC_SOC_UART_HH
#define RTOC_SOC_UART_HH

namespace rtoc::soc {

/** Point-to-point UART latency model. */
class UartModel
{
  public:
    /**
     * Largest payload a small frame covers: one length byte plus a
     * CRC-16. Larger messages need a two-byte length field and a
     * CRC-32, adding 3 framing bytes. Every registered plant's
     * state/command message fits a small frame today (the quadrotor's
     * 15-float uplink is 60 bytes), so the historical fixed overhead
     * is exactly the small-frame cost; wide custom shapes pay the
     * large-frame overhead their payload actually needs.
     */
    static constexpr int kMaxSmallPayload = 255;

    /**
     * @param baud_rate line rate (default 460800, a typical tethered
     *        research-chip configuration)
     * @param framing_bytes small-frame protocol overhead per message
     *        (sync + length + flags + CRC-16)
     */
    explicit UartModel(double baud_rate = 460800.0,
                       int framing_bytes = 6)
        : baud_(baud_rate), framing_(framing_bytes)
    {}

    /** Framing overhead carried by a @p payload_bytes message. */
    int
    framingBytes(int payload_bytes) const
    {
        return payload_bytes <= kMaxSmallPayload ? framing_
                                                 : framing_ + 3;
    }

    /** Seconds to transfer @p payload_bytes. */
    double
    transferS(int payload_bytes) const
    {
        double bits = 10.0 * static_cast<double>(
                                 payload_bytes +
                                 framingBytes(payload_bytes));
        return bits / baud_;
    }

    /** Host -> SoC: @p state_floats state + 3 target floats (the
     *  quadrotor's 12-state message is the historical default).
     *  @p elem_bytes is the wire width per element: narrow numeric
     *  formats ship int16 payloads and halve the tether time. */
    double uplinkS(int state_floats = 12, int elem_bytes = 4) const
    {
        return transferS((state_floats + 3) * elem_bytes);
    }

    /** SoC -> host: @p cmd_floats actuator command floats. */
    double downlinkS(int cmd_floats = 4, int elem_bytes = 4) const
    {
        return transferS(cmd_floats * elem_bytes);
    }

    double baud() const { return baud_; }

    /** Small-frame overhead (configuration value, memo keys). */
    int framingBytes() const { return framing_; }

  private:
    double baud_;
    int framing_;
};

} // namespace rtoc::soc

#endif // RTOC_SOC_UART_HH
