#include "area_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace rtoc::soc {

AreaModel::AreaModel()
{
    // ASAP7-calibrated post-synthesis areas (mm^2). Scalar cores,
    // Saturn vector configurations (VLEN x DLEN x frontend), and
    // Gemmini design points including the weight-stationary variant
    // with its 1KB accumulator (§5.1.5).
    entries_ = {
        {"rocket", 0.30},
        {"shuttle", 0.58},
        {"boom-small", 1.35},
        {"boom-medium", 2.10},
        {"boom-large", 3.20},
        {"boom-mega", 5.10},
        // All evaluated Saturn configurations sit above the
        // 1.5-2.3 mm^2 Gemmini window (§5.1.5: "minimal Saturn
        // configurations could result in improved performance in this
        // domain" is future work in the paper too).
        {"saturn-v256d128-rocket", 2.35},
        {"saturn-v512d128-rocket", 2.55},
        {"saturn-v256d128-shuttle", 2.62},
        {"saturn-v512d128-shuttle", 2.85},
        {"saturn-v512d256-rocket", 2.95},
        {"saturn-v512d256-shuttle", 3.25},
        {"gemmini-os4x4-spad32k", 1.55},
        {"gemmini-os4x4-spad64k", 1.90},
        {"gemmini-ws4x4-spad64k", 2.10},
    };
}

double
AreaModel::areaMm2(const std::string &config) const
{
    for (const auto &e : entries_)
        if (e.config == config)
            return e.areaMm2;
    rtoc_fatal("no area entry for configuration '%s'", config.c_str());
}

bool
AreaModel::has(const std::string &config) const
{
    for (const auto &e : entries_)
        if (e.config == config)
            return true;
    return false;
}

void
markParetoFrontier(std::vector<ParetoPoint> &points)
{
    std::vector<ParetoPoint *> sorted;
    sorted.reserve(points.size());
    for (auto &p : points)
        sorted.push_back(&p);
    std::sort(sorted.begin(), sorted.end(),
              [](const ParetoPoint *a, const ParetoPoint *b) {
                  if (a->areaMm2 != b->areaMm2)
                      return a->areaMm2 < b->areaMm2;
                  return a->performance > b->performance;
              });
    double best = -1.0;
    for (ParetoPoint *p : sorted) {
        p->optimal = p->performance > best;
        if (p->optimal)
            best = p->performance;
    }
}

} // namespace rtoc::soc
