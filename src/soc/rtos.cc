#include "rtos.hh"

#include <cmath>

#include "common/logging.hh"

namespace rtoc::soc {

ScheduleResult
simulateSchedule(const PeriodicTask &rt_task, double background_cycles,
                 double freq_hz, double horizon_s)
{
    if (freq_hz <= 0.0 || horizon_s <= 0.0)
        rtoc_fatal("bad schedule parameters f=%g horizon=%g", freq_hz,
                   horizon_s);

    ScheduleResult res;
    res.horizonS = horizon_s;

    double rt_exec_s = rt_task.wcetCycles / freq_hz;
    double bg_frame_s = background_cycles / freq_hz;

    double t = 0.0;
    double bg_progress = 0.0; // seconds of CPU into current frame
    double rt_busy = 0.0;
    double bg_busy = 0.0;
    double rt_done_at = 0.0;  // completion time of the previous
                              // activation (backlog carrier)
    double lateness_sum = 0.0;

    while (t < horizon_s) {
        // One period: RT work runs first (highest priority), the
        // background thread gets the remainder; if the RT task
        // overruns its period it monopolizes the core and the
        // overhang is carried into the next period as backlog.
        double slice = std::min(rt_task.periodS, horizon_s - t);
        res.periodicActivations += 1;

        // Completion-based deadline accounting: this activation
        // releases at t, starts once the backlog drains, and misses
        // when it *finishes* past t + period — which catches both an
        // oversized execution time and a late start behind backlog.
        double backlog = std::max(0.0, rt_done_at - t);
        rt_done_at = std::max(rt_done_at, t) + rt_exec_s;
        double deadline = t + rt_task.periodS;
        if (rt_done_at > deadline + 1e-12) {
            res.periodicDeadlineMisses += 1;
            double late = rt_done_at - deadline;
            lateness_sum += late;
            res.latenessMaxS = std::max(res.latenessMaxS, late);
        }

        // RT occupancy of this slice: pending work is the carried
        // backlog plus this activation. With zero backlog this is the
        // historical min(exec, slice) arithmetic, bit-identically.
        double rt_time = std::min(backlog + rt_exec_s, slice);
        double bg_time = slice - rt_time;

        rt_busy += rt_time;
        bg_busy += bg_time;
        bg_progress += bg_time;
        while (bg_progress >= bg_frame_s && bg_frame_s > 0.0) {
            bg_progress -= bg_frame_s;
            res.backgroundCompletions += 1;
        }
        t += slice;
    }

    if (res.periodicDeadlineMisses > 0)
        res.latenessAvgS =
            lateness_sum /
            static_cast<double>(res.periodicDeadlineMisses);
    res.periodicUtilization = rt_busy / horizon_s;
    res.backgroundUtilization = bg_busy / horizon_s;
    res.backgroundFps =
        static_cast<double>(res.backgroundCompletions) / horizon_s;
    return res;
}

} // namespace rtoc::soc
