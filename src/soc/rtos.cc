#include "rtos.hh"

#include <cmath>

#include "common/logging.hh"

namespace rtoc::soc {

ScheduleResult
simulateSchedule(const PeriodicTask &rt_task, double background_cycles,
                 double freq_hz, double horizon_s)
{
    if (freq_hz <= 0.0 || horizon_s <= 0.0)
        rtoc_fatal("bad schedule parameters f=%g horizon=%g", freq_hz,
                   horizon_s);

    ScheduleResult res;
    res.horizonS = horizon_s;

    double rt_exec_s = rt_task.wcetCycles / freq_hz;
    double bg_frame_s = background_cycles / freq_hz;

    double t = 0.0;
    double bg_progress = 0.0; // seconds of CPU into current frame
    double rt_busy = 0.0;
    double bg_busy = 0.0;

    while (t < horizon_s) {
        // One period: RT task runs first (highest priority), the
        // background thread gets the remainder; if the RT task
        // overruns its period it monopolizes the core.
        double slice = std::min(rt_task.periodS, horizon_s - t);
        res.periodicActivations += 1;
        double rt_time = std::min(rt_exec_s, slice);
        if (rt_exec_s > rt_task.periodS)
            res.periodicDeadlineMisses += 1;
        double bg_time = slice - rt_time;

        rt_busy += rt_time;
        bg_busy += bg_time;
        bg_progress += bg_time;
        while (bg_progress >= bg_frame_s && bg_frame_s > 0.0) {
            bg_progress -= bg_frame_s;
            res.backgroundCompletions += 1;
        }
        t += slice;
    }

    res.periodicUtilization = rt_busy / horizon_s;
    res.backgroundUtilization = bg_busy / horizon_s;
    res.backgroundFps =
        static_cast<double>(res.backgroundCompletions) / horizon_s;
    return res;
}

} // namespace rtoc::soc
