#include "power_model.hh"

namespace rtoc::soc {

PowerParams
PowerParams::scalarCore()
{
    PowerParams p;
    p.name = "scalar";
    p.leakageW = 0.004;
    p.idleCapNfV2 = 0.10;
    p.busyCapNfV2 = 0.45;
    return p;
}

PowerParams
PowerParams::vectorCore()
{
    PowerParams p;
    p.name = "vector";
    p.leakageW = 0.007;
    p.idleCapNfV2 = 0.13;
    p.busyCapNfV2 = 0.85; // wide datapath switches hard when busy
    return p;
}

PowerParams
PowerParams::systolicCore()
{
    PowerParams p;
    p.name = "systolic";
    p.leakageW = 0.008;
    p.idleCapNfV2 = 0.12;
    p.busyCapNfV2 = 0.70;
    return p;
}

double
PowerModel::voltageAt(double freq_hz) const
{
    return params_.v0 + params_.vSlopePerGHz * (freq_hz / 1e9);
}

double
PowerModel::powerW(double freq_hz, double utilization) const
{
    if (utilization < 0.0)
        utilization = 0.0;
    if (utilization > 1.0)
        utilization = 1.0;
    double v = voltageAt(freq_hz);
    double cap_nf =
        params_.idleCapNfV2 + utilization * params_.busyCapNfV2;
    // nF * V^2 * Hz = 1e-9 W.
    return params_.leakageW + cap_nf * 1e-9 * v * v * freq_hz;
}

double
PowerModel::energyForCyclesJ(double freq_hz, double cycles) const
{
    double v = voltageAt(freq_hz);
    double busy_power = params_.busyCapNfV2 * 1e-9 * v * v * freq_hz;
    return busy_power * (cycles / freq_hz);
}

} // namespace rtoc::soc
