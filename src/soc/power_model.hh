/**
 * @file
 * SoC power model substituting for the paper's bench-supply
 * measurements of the Cygnus chip (§5.2). Power splits into leakage,
 * idle-clock dynamic power, and busy dynamic power, with a linear
 * DVFS voltage curve: P(f) = P_leak + (c_idle + util·c_busy)·V(f)²·f.
 * Per-architecture busy capacitance reflects that a vector unit burns
 * more per active cycle but is active for far fewer cycles — which is
 * what produces the paper's "2% overhead for vector vs 4.5% for
 * scalar at 500 MHz" observation.
 */

#ifndef RTOC_SOC_POWER_MODEL_HH
#define RTOC_SOC_POWER_MODEL_HH

#include <string>

namespace rtoc::soc {

/** Power parameters for one compute configuration. */
struct PowerParams
{
    std::string name = "scalar";
    double leakageW = 0.004;
    double idleCapNfV2 = 0.10;  ///< nF-equivalent idle switching
    double busyCapNfV2 = 0.45;  ///< additional when executing
    double v0 = 0.60;           ///< voltage at f -> 0
    double vSlopePerGHz = 0.45; ///< V increase per GHz (DVFS)

    /** Scalar in-order core cluster (Rocket/Shuttle class). */
    static PowerParams scalarCore();

    /** Shuttle + Saturn vector unit (more area switching when busy). */
    static PowerParams vectorCore();

    /** Rocket + Gemmini systolic array. */
    static PowerParams systolicCore();
};

/** Evaluates SoC power at a frequency and utilization. */
class PowerModel
{
  public:
    explicit PowerModel(PowerParams params) : params_(params) {}

    /** Supply voltage at @p freq_hz. */
    double voltageAt(double freq_hz) const;

    /**
     * Average power (W) at @p freq_hz with the compute busy for
     * @p utilization (0..1) of the cycles.
     */
    double powerW(double freq_hz, double utilization) const;

    /** Energy (J) for executing @p cycles busy cycles at @p freq_hz. */
    double energyForCyclesJ(double freq_hz, double cycles) const;

    const PowerParams &params() const { return params_; }

  private:
    PowerParams params_;
};

} // namespace rtoc::soc

#endif // RTOC_SOC_POWER_MODEL_HH
