/**
 * @file
 * Post-synthesis area table for every evaluated configuration,
 * standing in for the paper's ASAP7 flow (§5.1). Values are
 * calibrated to the ranges Figure 10 reports: Rocket is the smallest
 * point and optimal below 1.4 mm²; Gemmini OS 4x4 designs sit in the
 * 1.5–2.3 mm² window where they are optimal; high-performance Saturn
 * configurations (DLEN=256 with a Shuttle frontend) lie beyond, and
 * BOOM cores above Small are area-dominated.
 */

#ifndef RTOC_SOC_AREA_MODEL_HH
#define RTOC_SOC_AREA_MODEL_HH

#include <string>
#include <vector>

namespace rtoc::soc {

/** One named design point with its area. */
struct AreaEntry
{
    std::string config;
    double areaMm2;
};

/** Area lookup; fatal() for unknown configurations. */
class AreaModel
{
  public:
    AreaModel();

    /** Area in mm² of configuration @p config. */
    double areaMm2(const std::string &config) const;

    /** True when the configuration is known. */
    bool has(const std::string &config) const;

    /** All known design points. */
    const std::vector<AreaEntry> &entries() const { return entries_; }

  private:
    std::vector<AreaEntry> entries_;
};

/**
 * A (area, performance) point for Pareto extraction.
 * Performance is solves/second or 1/cycles — higher is better.
 */
struct ParetoPoint
{
    std::string config;
    double areaMm2 = 0.0;
    double performance = 0.0;
    bool optimal = false;
};

/** Mark the Pareto-optimal frontier (min area, max performance). */
void markParetoFrontier(std::vector<ParetoPoint> &points);

} // namespace rtoc::soc

#endif // RTOC_SOC_AREA_MODEL_HH
