/**
 * @file
 * Priority-preemptive RTOS scheduler model for the concurrent-task
 * study (§5.3): a fixed-rate high-priority control task (TinyMPC at
 * 50 Hz) shares one core with a background best-effort task (DroNet).
 * Mirrors the paper's Zephyr setup: the RTOS preempts the background
 * thread whenever the periodic task releases; background throughput
 * is whatever CPU remains.
 */

#ifndef RTOC_SOC_RTOS_HH
#define RTOC_SOC_RTOS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rtoc::soc {

/** Fixed-rate preemptible task description. */
struct PeriodicTask
{
    std::string name;
    double periodS = 0.02;     ///< release period
    double wcetCycles = 0.0;   ///< per-activation execution cycles
};

/** Result of a scheduler simulation. */
struct ScheduleResult
{
    double horizonS = 0.0;
    double periodicUtilization = 0.0; ///< CPU fraction of the RT task
    double backgroundUtilization = 0.0;
    uint64_t periodicActivations = 0;
    /** Activations whose solve *completed* past the deadline
     *  (release + period), including backlog carried over from
     *  earlier overruns — not merely activations whose own execution
     *  time exceeds the period. */
    uint64_t periodicDeadlineMisses = 0;
    uint64_t backgroundCompletions = 0;  ///< background frames finished
    double backgroundFps = 0.0;
    /** Worst completion-past-deadline lateness (s; 0 when no miss). */
    double latenessMaxS = 0.0;
    /** Mean lateness over missed activations (s; 0 when no miss). */
    double latenessAvgS = 0.0;
};

/**
 * Simulate @p horizon_s seconds of a single core at @p freq_hz running
 * one periodic high-priority task and one continuously-ready
 * background task of @p background_cycles per frame.
 */
ScheduleResult
simulateSchedule(const PeriodicTask &rt_task, double background_cycles,
                 double freq_hz, double horizon_s);

} // namespace rtoc::soc

#endif // RTOC_SOC_RTOS_HH
