/**
 * @file
 * Parallel scenario sweep engine.
 *
 * Every figure regeneration is a fan-out over independent tasks:
 * seeded HIL episodes, disturbance trials, frequency/difficulty grid
 * cells, Pareto design points. SweepRunner distributes those tasks
 * over the process thread pool (work-stealing: a worker that drains
 * its block migrates to the slowest peer's remaining work) with two
 * determinism guarantees:
 *
 *  1. per-task seeding — a task's randomness derives only from its
 *     index (makeScenario(d, i), disturbance axis, ...), never from
 *     execution order;
 *  2. index-ordered aggregation — results land in a slot array and
 *     every reduction walks it in index order, so parallel runs are
 *     bit-identical to serial runs.
 *
 * Tiny per-episode tasks (1-tick smoke runs) are chunked: the grain
 * knob groups consecutive episodes into one pool task so claim/wake
 * overhead does not dominate. grain 0 (default) picks a heuristic
 * from the task count and pool width; RTOC_GRAIN forces a value for
 * every SweepRunner. The grain never changes results, only
 * scheduling.
 *
 * Set RTOC_THREADS=1 to force the serial path (used by the equality
 * tests and by the microbench's serial baseline).
 */

#ifndef RTOC_HIL_SWEEP_HH
#define RTOC_HIL_SWEEP_HH

#include <functional>
#include <vector>

#include "common/thread_pool.hh"
#include "hil/episode.hh"

namespace rtoc::hil {

/** Deterministic fan-out of independent sweep tasks over a pool. */
class SweepRunner
{
  public:
    explicit SweepRunner(ThreadPool &pool = ThreadPool::global())
        : pool_(pool)
    {}

    /** Parallelism of the underlying pool. */
    int threads() const { return pool_.threads(); }

    /**
     * Episodes grouped per pool task. 0 = auto (defaultGrain);
     * RTOC_GRAIN overrides both. Scheduling-only: results are
     * independent of the grain.
     */
    SweepRunner &
    setGrain(int grain)
    {
        grain_ = grain < 0 ? 0 : grain;
        return *this;
    }

    /** Grain actually used for an @p n-task fan-out. */
    size_t effectiveGrain(size_t n) const;

    /**
     * Auto heuristic: enough tasks to keep every participant busy
     * with slack for stealing (~4 chunks per thread), capped so one
     * chunk never serializes a large fraction of the range.
     */
    static size_t defaultGrain(size_t n, int threads);

    /**
     * Evaluate fn(0..n-1) across the pool and return results in index
     * order. R must be default-constructible and movable.
     */
    template <typename R>
    std::vector<R>
    map(size_t n, const std::function<R(size_t)> &fn) const
    {
        std::vector<R> out(n);
        pool_.parallelFor(
            n, [&](size_t i) { out[i] = fn(i); }, effectiveGrain(n));
        return out;
    }

    /**
     * Run the @p n seeded scenarios of difficulty @p d on clones of
     * @p proto (scenario i is proto.makeScenario(d, i), exactly as
     * the serial loops did).
     */
    std::vector<EpisodeResult>
    runEpisodes(const plant::Plant &proto, plant::Difficulty d, int n,
                const HilConfig &cfg,
                const plant::DisturbanceProfile &disturbance = {}) const;

    /** Historical quadrotor entry point (bit-identical wrapper). */
    std::vector<EpisodeResult>
    runEpisodes(const quad::DroneParams &drone, quad::Difficulty d,
                int n, const HilConfig &cfg) const;

  private:
    ThreadPool &pool_;
    int grain_ = 0; ///< 0 = auto
};

} // namespace rtoc::hil

#endif // RTOC_HIL_SWEEP_HH
