#include "control_session.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace rtoc::hil {

ControlSession::ControlSession(plant::Plant &plant, const HilConfig &cfg)
    : plant_(plant), dt_(cfg.controlPeriodS), policy_(cfg.relin),
      ws_(plant.buildWorkspace(cfg.controlPeriodS, cfg.horizon)),
      backend_(matlib::ScalarFlavor::Optimized),
      solver_(ws_, backend_, tinympc::MappingStyle::Library),
      x0_(static_cast<size_t>(plant.nx()), 0.0f),
      last_cmd_(plant.trimCommand())
{
    if (cfg.format != matlib::NumericFormat::F32) {
        // Narrow datapath: quantize the solver arithmetic with shift
        // schedules derived from the freshly built workspace (gains
        // and dynamics are known here, exactly the offline static
        // analysis a deployment would run).
        backend_.setFormat(cfg.format);
        backend_.setFixedScaling(
            tinympc::calibrateFixedScaling(ws_, cfg.format));
    }
    if (policy_.fixedTrim())
        return;
    // Relinearization bookkeeping: cost matrices for the Riccati
    // refreshes. The warm-start seed appears with the first refresh
    // (which therefore solves cold) — re-deriving the trim cache
    // buildWorkspace already computed would double the construction
    // cost of every relinearizing episode.
    plant::Weights w = plant.mpcWeights();
    qMat_ = numerics::DMatrix::diag(w.qDiag);
    rMat_ = numerics::DMatrix::diag(w.rDiag);
    rho_ = w.rho;
    linState_ = plant.trimState();
}

double
ControlSession::drift() const
{
    double acc = 0.0;
    for (int j = 0; j < plant_.nx(); ++j) {
        double d = static_cast<double>(x0_[static_cast<size_t>(j)]) -
                   linState_[static_cast<size_t>(j)];
        acc += d * d;
    }
    return std::sqrt(acc);
}

bool
ControlSession::refresh(TickResult &out)
{
    RTOC_SPAN_NAMED(span, "hil.refresh", "hil");
    // Linearize around (current state, last applied input delta).
    std::vector<double> x(x0_.begin(), x0_.end());
    std::vector<double> trim = plant_.trimCommand();
    std::vector<double> du(static_cast<size_t>(plant_.nu()), 0.0);
    for (int i = 0; i < plant_.nu(); ++i)
        du[i] = last_cmd_[static_cast<size_t>(i)] - trim[i];

    plant::LinearModel m = plant_.linearizeAt(x.data(), du.data(), dt_);
    // The cache is consumed in float32, so iterate the Riccati
    // refresh only to ~float precision (the offline 1e-10 polish
    // would triple the refresh cost for bits the solver cannot see).
    // A warm-started refresh converges in tens-to-hundreds of
    // iterations, so a tight cap doubles as the divergence guard; the
    // one-time cold bootstrap (no seed yet) legitimately needs a full
    // fixed-point run and gets the offline-sized budget — both are
    // charged for what they actually burn.
    const int max_iters = cacheValid_ ? 500 : 10000;
    out.refreshAttempted = true;
    std::optional<numerics::LqrCache> cache = numerics::trySolveDare(
        m.ad, m.bd, qMat_, rMat_, rho_,
        cacheValid_ ? &cache_.pinf : nullptr, 1e-6, max_iters);
    if (!cache) {
        span.arg("riccati_iters", static_cast<uint64_t>(max_iters));
        span.arg("diverged", 1);
        // Off-trim model with no stabilizing solution: keep flying
        // the previous cache rather than aborting the episode. The
        // device still burned the full diverged sweep — charge it —
        // and back off before retrying so a drift-triggered policy
        // does not re-run it every tick.
        ++stats_.refreshFailures;
        stats_.riccatiIters += max_iters;
        out.riccatiIters = max_iters;
        failCooldown_ = std::max(policy_.everyK, 5);
        return false;
    }

    ws_.refreshModel(m.ad, m.bd, *cache, m.cd);
    // The input box tracks the trim (mass-depleting plants move it).
    std::vector<float> flo, fhi;
    plant_.inputBoundDeltas(flo, fhi);
    ws_.setInputBounds(flo, fhi);
    // Refreshed gains can outgrow the old shift schedule: re-derive
    // the fixed-point scaling against the new cache.
    if (backend_.format() != matlib::NumericFormat::F32) {
        backend_.setFixedScaling(
            tinympc::calibrateFixedScaling(ws_, backend_.format()));
    }

    span.arg("riccati_iters",
             static_cast<uint64_t>(cache->iterations));
    cache_ = *cache;
    cacheValid_ = true;
    linState_ = std::move(x);
    ++stats_.refreshes;
    stats_.riccatiIters += cache->iterations;
    out.refreshed = true;
    out.riccatiIters = cache->iterations;
    return true;
}

ControlSession::TickResult
ControlSession::tick(const std::vector<float> &xref,
                     const TickOptions &opt)
{
    RTOC_SPAN_NAMED(span, "hil.tick", "hil");
    plant_.packState(x0_.data());
    ws_.setInitialState(x0_.data());
    ws_.setReferenceAll(xref);

    TickResult out;
    if (!policy_.fixedTrim()) {
        if (failCooldown_ > 0) {
            --failCooldown_;
        } else {
            bool due =
                policy_.everyK > 0 && sinceRefresh_ >= policy_.everyK;
            bool drifted = policy_.stateDeltaThreshold > 0.0 &&
                           drift() > policy_.stateDeltaThreshold;
            if (due || drifted) {
                if (opt.skipRefresh) {
                    // Governor shed the refresh: the model stays
                    // stale and the policy clock keeps running so
                    // the refresh fires on the next allowed tick.
                    ++stats_.skippedRefreshes;
                } else {
                    refresh(out);
                    sinceRefresh_ = 0;
                }
            }
        }
        ++sinceRefresh_;
    }

    out.solve = solver_.solve(opt.maxIters);
    span.arg("solve_iters",
             static_cast<uint64_t>(out.solve.iterations));
    ++stats_.solves;
    last_cmd_ = plant_.commandFromDelta(solver_.firstInput().data);
    return out;
}

} // namespace rtoc::hil
