/**
 * @file
 * Disturbance-rejection experiment (§5.2, Fig. 17): apply 100 ms step
 * and impulse disturbances — axis-aligned forces, torques and
 * combined vectors — to a hovering drone under closed-loop MPC,
 * measure time-to-recovery (return within 5 cm of the hover point for
 * 250 ms) and the maximum recoverable magnitude via bisection.
 */

#ifndef RTOC_HIL_DISTURBANCE_HH
#define RTOC_HIL_DISTURBANCE_HH

#include <string>
#include <vector>

#include "hil/episode.hh"

namespace rtoc::hil {

/** Disturbance categories of Fig. 17. */
enum class DisturbKind {
    StepForce,
    ImpulseForce,
    StepTorque,
    ImpulseTorque,
    StepCombined,
    ImpulseCombined,
};

/** Printable name. */
const char *disturbKindName(DisturbKind k);

/** All categories for sweeps. */
inline const DisturbKind kAllDisturbKinds[] = {
    DisturbKind::StepForce,    DisturbKind::ImpulseForce,
    DisturbKind::StepTorque,   DisturbKind::ImpulseTorque,
    DisturbKind::StepCombined, DisturbKind::ImpulseCombined,
};

/** One trial description. */
struct DisturbSpec
{
    DisturbKind kind = DisturbKind::StepForce;
    int axis = 0;       ///< 0/1/2 = x/y/z
    double magnitude = 0.1; ///< N for forces, mN·m for torques
};

/** Result of one disturbance trial. */
struct DisturbResult
{
    bool recovered = false;
    bool crashed = false;
    double ttrS = 0.0;     ///< time to recovery from onset
    double maxDeviationM = 0.0;
};

/** Run one hover + disturbance trial under the HIL pipeline. */
DisturbResult runDisturbTrial(const quad::DroneParams &drone,
                              const DisturbSpec &spec,
                              const HilConfig &cfg);

/**
 * Plant-generic disturbance trial: hold a clone of @p proto at its
 * home waypoint under the closed-loop pipeline (a ControlSession, so
 * cfg.relin relinearization applies) and inject the step/impulse
 * wrench through Plant::applyWrench — the Fig. 17 protocol on any
 * plant that supports wrenches, not just the quad. Recovery radius
 * scales with the plant's reach radius (the quad's historical 5 cm
 * at its 12 cm reach). The historical quad entry point above is
 * untouched (bit-identical).
 */
DisturbResult runDisturbTrial(const plant::Plant &proto,
                              const DisturbSpec &spec,
                              const HilConfig &cfg);

/**
 * Bisect the largest recoverable magnitude on a generic plant. When
 * the exponential search never finds a failing magnitude before its
 * cap the returned value is only a lower bound — either the plant
 * genuinely shrugs off the whole range, or the chosen (kind, axis)
 * does not couple into this plant's dynamics at its current attitude
 * (e.g. a lateral world force on the rover at zero heading: the
 * wheels hold that axis). @p saturated (when non-null) reports that
 * case so callers don't quote the bound as a measurement; the
 * returned value itself keeps the historical quad-path semantics
 * (fig17 is pinned byte-identical, saturation and all).
 */
double maxRecoverableMagnitude(const plant::Plant &proto,
                               DisturbKind kind, int axis,
                               const HilConfig &cfg,
                               bool *saturated = nullptr);

/** Bisect the largest recoverable magnitude for @p kind/@p axis. */
double maxRecoverableMagnitude(const quad::DroneParams &drone,
                               DisturbKind kind, int axis,
                               const HilConfig &cfg);

/** Aggregates for one (implementation, kind) cell of Fig. 17. */
struct DisturbCell
{
    std::string impl;
    DisturbKind kind = DisturbKind::StepForce;
    double avgTtrS = 0.0;
    double maxMagnitude = 0.0;
    int trials = 0;
};

/** Average TTR across axes at a fraction of the recoverable limit. */
DisturbCell runDisturbCell(const quad::DroneParams &drone,
                           DisturbKind kind, const HilConfig &cfg,
                           double magnitude_fraction = 0.6);

} // namespace rtoc::hil

#endif // RTOC_HIL_DISTURBANCE_HH
