#include "timing.hh"

#include <cstring>
#include <map>
#include <mutex>
#include <tuple>

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "cpu/inorder.hh"
#include "cpu/replay_batch.hh"
#include "isa/program_cache.hh"
#include "isa/sched_search.hh"
#include "matlib/gemmini_backend.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "plant/quad_plant.hh"
#include "systolic/gemmini.hh"
#include "vector/saturn.hh"

namespace rtoc::hil {

namespace {

/**
 * Registry ids of the calibration-cache counters. Sharded per-thread
 * by the registry, so concurrent sweep workers bump them without a
 * lock (the historical struct serialized every bump on one mutex).
 */
struct CalibIds
{
    StatId memoHits;
    StatId diskHits;
    StatId computes;
};

const CalibIds &
calibIds()
{
    static const CalibIds ids = [] {
        obs::Registry &reg = obs::Registry::global();
        return CalibIds{reg.counter("calib.memo_hits"),
                        reg.counter("calib.disk_hits"),
                        reg.counter("calib.computes")};
    }();
    return ids;
}

} // namespace

CalibCacheStats
calibCacheStats()
{
    const CalibIds &ids = calibIds();
    obs::Registry &reg = obs::Registry::global();
    return {reg.value(ids.memoHits), reg.value(ids.diskHits),
            reg.value(ids.computes)};
}

std::string
encodeTiming(const ControllerTiming &t)
{
    std::string out;
    // v2 adds the model-refresh cycle model; v1 payloads are
    // rejected and recalibrated.
    isa::blob::putRaw<uint32_t>(out, 2); // payload version
    isa::blob::putStr(out, t.archName);
    isa::blob::putStr(out, t.mappingName);
    isa::blob::putRaw<double>(out, t.baseCycles);
    isa::blob::putRaw<double>(out, t.cyclesPerIter);
    isa::blob::putRaw<double>(out, t.refreshBaseCycles);
    isa::blob::putRaw<double>(out, t.refreshCyclesPerIter);
    return out;
}

std::optional<ControllerTiming>
decodeTiming(const std::string &payload)
{
    isa::blob::Reader r(payload);
    if (r.raw<uint32_t>() != 2 || !r.ok)
        return std::nullopt;
    ControllerTiming t;
    t.archName = r.str();
    t.mappingName = r.str();
    t.baseCycles = r.raw<double>();
    t.cyclesPerIter = r.raw<double>();
    t.refreshBaseCycles = r.raw<double>();
    t.refreshCyclesPerIter = r.raw<double>();
    if (!r.ok || r.left != 0)
        return std::nullopt;
    return t;
}

namespace {

/** On-disk key of one (model, backend, style, shape) calibration. */
std::string
calibDiskKey(const cpu::CoreModel &model, const matlib::Backend &backend,
             tinympc::MappingStyle style, const plant::Plant &plant,
             double dt, int horizon, bool with_refresh)
{
    // The fitted linear cycle model is as deterministic as the stream
    // it replays, so it persists across processes under a key carrying
    // every timing-relevant knob: the full model configuration, the
    // backend's emission key, the mapping style, the problem shape
    // and whether the refresh stream was fitted (relinearization-
    // aware callers must never be served a refresh-less payload).
    // schedKeySuffix() keeps sched-on fits from aliasing baseline
    // entries (and is empty — keys untouched — when RTOC_SCHED is
    // off).
    return csprintf("%s|%s|style%d|nx%d|nu%d|dt%.17g|h%d%s%s",
                    model.cacheKey().c_str(), backend.cacheKey().c_str(),
                    static_cast<int>(style), plant.nx(), plant.nu(), dt,
                    horizon, with_refresh ? "|refresh" : "",
                    isa::schedKeySuffix().c_str());
}

/** ProgramCache key of one instrumented calibration solve stream. */
std::string
calibSolveKey(const matlib::Backend &backend, tinympc::MappingStyle style,
              const plant::Plant &plant, double dt, int horizon,
              int iters)
{
    return csprintf("calib:%s:style%d:nx%d:nu%d:dt%g:h%d:it%d",
                    backend.cacheKey().c_str(), static_cast<int>(style),
                    plant.nx(), plant.nu(), dt, horizon, iters);
}

/**
 * The stream @p model should actually replay for @p progKey: the
 * baseline untouched when RTOC_SCHED is off, otherwise the searched
 * schedule (scored by the model itself, memo/disk-cached per
 * (model, program) pair).
 */
std::shared_ptr<const isa::Program>
schedStream(const cpu::CoreModel &model, const std::string &progKey,
            const std::shared_ptr<const isa::Program> &prog)
{
    if (!isa::schedEnabled())
        return prog;
    return isa::scheduledStream(
        model.cacheKey(), progKey, prog,
        [&model](const isa::Program &p) { return model.run(p).cycles; });
}

/**
 * Cached instrumented solve stream at a forced iteration count.
 * Emission is data-independent: given the backend configuration,
 * mapping style, problem shape and a forced iteration count the
 * solver emits bit-identical streams regardless of plant masses or
 * states. The stream is therefore cached process-wide and the (cheap)
 * timing replay is the only per-calibration work. The key carries the
 * problem shape (nx, nu, dt, horizon) but deliberately omits the
 * plant parameters (values never change the stream — pinned by
 * ProgramCache.EmissionIsDroneIndependent and the cross-plant shape
 * tests).
 */
std::shared_ptr<const isa::Program>
calibSolveStream(matlib::Backend &backend, tinympc::MappingStyle style,
                 const plant::Plant &plant, double dt, int horizon,
                 int iters)
{
    const std::string key =
        calibSolveKey(backend, style, plant, dt, horizon, iters);
    return isa::ProgramCache::global().getOrEmit(
        key, [&](isa::Program &p) {
            tinympc::Workspace ws = plant.buildWorkspace(dt, horizon);
            ws.settings.maxIters = iters;
            ws.settings.checkTermination = 5;
            ws.settings.priTol = 0.0f; // force exactly maxIters
            ws.settings.duaTol = 0.0f;
            ws.coldStart();
            const float seed_x0[3] = {0.3f, -0.2f, 0.8f};
            std::vector<float> x0(static_cast<size_t>(plant.nx()),
                                  0.0f);
            for (int i = 0; i < plant.nx() && i < 3; ++i)
                x0[i] = seed_x0[i];
            ws.setInitialState(x0.data());

            backend.setProgram(&p);
            tinympc::Solver solver(ws, backend, style);
            solver.setup();
            tinympc::SolveResult res = solver.solve();
            backend.setProgram(nullptr);
            if (res.iterations != iters) {
                rtoc_panic("calibration expected %d iters, got %d",
                           iters, res.iterations);
            }
        });
}

/** ProgramCache key of one model-refresh stream. */
std::string
calibRefreshKey(const matlib::Backend &backend, const plant::Plant &plant,
                int iters)
{
    return csprintf("refresh:%s:nx%d:nu%d:it%d",
                    backend.cacheKey().c_str(), plant.nx(), plant.nu(),
                    iters);
}

/** Cached model-refresh stream at a forced Riccati iteration count
 *  (shape-dependent only — no horizon loops). */
std::shared_ptr<const isa::Program>
calibRefreshStream(matlib::Backend &backend, const plant::Plant &plant,
                   double dt, int horizon, int iters)
{
    const std::string key = calibRefreshKey(backend, plant, iters);
    return isa::ProgramCache::global().getOrEmit(
        key, [&](isa::Program &p) {
            tinympc::Workspace ws = plant.buildWorkspace(dt, horizon);
            backend.setProgram(&p);
            tinympc::emitModelRefresh(ws, backend, iters);
            backend.setProgram(nullptr);
        });
}

/** Fit the linear solve model from the two replay points. */
void
fitSolveCycles(ControllerTiming &t, double c_lo, double c_hi)
{
    t.cyclesPerIter = (c_hi - c_lo) / 20.0;
    t.baseCycles = c_lo - 5.0 * t.cyclesPerIter;
    if (t.baseCycles < 0.0)
        t.baseCycles = 0.0;
}

/** Fit the refresh model from the two replay points. */
void
fitRefreshCycles(ControllerTiming &t, double r_lo, double r_hi)
{
    t.refreshCyclesPerIter = (r_hi - r_lo) / 6.0;
    t.refreshBaseCycles = r_lo - 2.0 * t.refreshCyclesPerIter;
    if (t.refreshBaseCycles < 0.0)
        t.refreshBaseCycles = 0.0;
}

/**
 * Family-batched replay of one fit point for the pending models.
 * With scheduling off, one ReplayBatch covers everyone on the shared
 * baseline stream. With scheduling on, each model resolves its own
 * scheduled stream first; models whose winners coincide (including
 * the common "schedule search found nothing" baseline case) still
 * batch together, grouped by stream identity.
 */
std::vector<cpu::TimingResult>
replayPending(const std::vector<const cpu::CoreModel *> &models,
              const std::vector<size_t> &pending,
              const std::string &progKey,
              const std::shared_ptr<const isa::Program> &prog)
{
    if (!isa::schedEnabled()) {
        cpu::ReplayBatch batch;
        for (size_t i : pending)
            batch.add(*models[i]);
        return batch.run(*prog);
    }
    std::vector<std::shared_ptr<const isa::Program>> streams;
    streams.reserve(pending.size());
    for (size_t i : pending)
        streams.push_back(schedStream(*models[i], progKey, prog));
    std::vector<cpu::TimingResult> out(pending.size());
    std::vector<uint8_t> placed(pending.size(), 0);
    for (size_t k = 0; k < pending.size(); ++k) {
        if (placed[k])
            continue;
        cpu::ReplayBatch batch;
        std::vector<size_t> members;
        for (size_t j = k; j < pending.size(); ++j) {
            if (!placed[j] && streams[j] == streams[k]) {
                batch.add(*models[pending[j]]);
                members.push_back(j);
                placed[j] = 1;
            }
        }
        std::vector<cpu::TimingResult> res = batch.run(*streams[k]);
        for (size_t m = 0; m < members.size(); ++m)
            out[members[m]] = std::move(res[m]);
    }
    return out;
}

} // namespace

ControllerTiming
calibrateTiming(const cpu::CoreModel &model, matlib::Backend &backend,
                tinympc::MappingStyle style, const plant::Plant &plant,
                double dt, int horizon, const isa::DiskCache *disk,
                bool with_refresh)
{
    const std::string calib_key = calibDiskKey(
        model, backend, style, plant, dt, horizon, with_refresh);
    if (disk) {
        if (auto payload = disk->get("calib", calib_key)) {
            if (auto t = decodeTiming(*payload)) {
                obs::count(calibIds().diskHits);
                return *t;
            }
        }
    }
    RTOC_SPAN("hil.calibrate", "hil");
    auto run_iters = [&](int iters) -> double {
        auto prog = schedStream(
            model, calibSolveKey(backend, style, plant, dt, horizon, iters),
            calibSolveStream(backend, style, plant, dt, horizon, iters));
        return static_cast<double>(model.run(*prog).cycles);
    };

    double c_lo = run_iters(5);
    double c_hi = run_iters(25);

    ControllerTiming t;
    t.archName = model.name();
    t.mappingName = backend.name();
    fitSolveCycles(t, c_lo, c_hi);

    if (with_refresh) {
        auto run_refresh = [&](int iters) -> double {
            auto prog = schedStream(
                model, calibRefreshKey(backend, plant, iters),
                calibRefreshStream(backend, plant, dt, horizon, iters));
            return static_cast<double>(model.run(*prog).cycles);
        };
        fitRefreshCycles(t, run_refresh(2), run_refresh(8));
    }
    obs::count(calibIds().computes);
    if (disk)
        disk->put("calib", calib_key, encodeTiming(t));
    return t;
}

std::vector<ControllerTiming>
calibrateTimingBatch(const std::vector<const cpu::CoreModel *> &models,
                     matlib::Backend &backend, tinympc::MappingStyle style,
                     const plant::Plant &plant, double dt, int horizon,
                     const isa::DiskCache *disk, bool with_refresh)
{
    std::vector<ControllerTiming> out(models.size());
    std::vector<std::string> keys(models.size());
    std::vector<size_t> pending;
    for (size_t i = 0; i < models.size(); ++i) {
        keys[i] = calibDiskKey(*models[i], backend, style, plant, dt,
                               horizon, with_refresh);
        if (disk) {
            if (auto payload = disk->get("calib", keys[i])) {
                if (auto t = decodeTiming(*payload)) {
                    obs::count(calibIds().diskHits);
                    out[i] = *t;
                    continue;
                }
            }
        }
        pending.push_back(i);
    }
    if (pending.empty())
        return out;

    RTOC_SPAN("hil.calibrate_batch", "hil");
    // One emission per fit point serves every pending model; the
    // family-batched replay advances all of their scoreboards in one
    // column pass. Cycle counts — and therefore the fits and the
    // persisted payloads — are bit-identical to per-model
    // calibrateTiming (pinned by tests).
    auto lo = calibSolveStream(backend, style, plant, dt, horizon, 5);
    auto hi = calibSolveStream(backend, style, plant, dt, horizon, 25);
    std::vector<cpu::TimingResult> c_lo = replayPending(
        models, pending,
        calibSolveKey(backend, style, plant, dt, horizon, 5), lo);
    std::vector<cpu::TimingResult> c_hi = replayPending(
        models, pending,
        calibSolveKey(backend, style, plant, dt, horizon, 25), hi);

    std::vector<cpu::TimingResult> r_lo, r_hi;
    if (with_refresh) {
        auto rlo = calibRefreshStream(backend, plant, dt, horizon, 2);
        auto rhi = calibRefreshStream(backend, plant, dt, horizon, 8);
        r_lo = replayPending(models, pending,
                             calibRefreshKey(backend, plant, 2), rlo);
        r_hi = replayPending(models, pending,
                             calibRefreshKey(backend, plant, 8), rhi);
    }

    for (size_t k = 0; k < pending.size(); ++k) {
        const size_t i = pending[k];
        ControllerTiming t;
        t.archName = models[i]->name();
        t.mappingName = backend.name();
        fitSolveCycles(t, static_cast<double>(c_lo[k].cycles),
                       static_cast<double>(c_hi[k].cycles));
        if (with_refresh) {
            fitRefreshCycles(t, static_cast<double>(r_lo[k].cycles),
                             static_cast<double>(r_hi[k].cycles));
        }
        obs::count(calibIds().computes);
        if (disk)
            disk->put("calib", keys[i], encodeTiming(t));
        out[i] = t;
    }
    return out;
}

ControllerTiming
calibrateTiming(const cpu::CoreModel &model, matlib::Backend &backend,
                tinympc::MappingStyle style,
                const quad::DroneParams &drone, double dt, int horizon)
{
    plant::QuadrotorPlant plant(drone);
    return calibrateTiming(model, backend, style, plant, dt, horizon);
}

namespace {

/**
 * The convenience calibrations use fixed core/backend configurations,
 * so the resulting cycle model depends only on the problem shape
 * (nx, nu, dt, horizon) — the stream is plant-parameter-independent.
 * The HIL benches call these per plant per frequency; memoizing here
 * removes all repeat work, and plants sharing a shape share entries.
 */
struct CalibMemo
{
    std::mutex mu;
    std::map<std::tuple<int, int, int, double, int, bool, int>,
             ControllerTiming>
        memo;
};

CalibMemo &
calibMemo()
{
    static CalibMemo m;
    return m;
}

template <typename MakeFn>
ControllerTiming
memoizedCalibration(int which, const plant::Plant &plant, double dt,
                    int horizon, bool with_refresh,
                    matlib::NumericFormat format, MakeFn &&make)
{
    CalibMemo &m = calibMemo();
    std::lock_guard<std::mutex> lk(m.mu);
    auto key = std::make_tuple(which, plant.nx(), plant.nu(), dt,
                               horizon, with_refresh,
                               static_cast<int>(format));
    auto it = m.memo.find(key);
    if (it != m.memo.end()) {
        obs::count(calibIds().memoHits);
        return it->second;
    }
    ControllerTiming t = make();
    m.memo.emplace(key, t);
    return t;
}

} // namespace

ControllerTiming
scalarControllerTiming(const plant::Plant &plant, double dt, int horizon,
                       bool with_refresh, matlib::NumericFormat format)
{
    return memoizedCalibration(
        0, plant, dt, horizon, with_refresh, format, [&] {
            cpu::InOrderCore core(cpu::InOrderConfig::shuttle());
            matlib::ScalarBackend backend(
                matlib::ScalarFlavor::Optimized);
            backend.setFormat(format);
            return calibrateTiming(core, backend,
                                   tinympc::MappingStyle::Library, plant,
                                   dt, horizon, &isa::DiskCache::global(),
                                   with_refresh);
        });
}

ControllerTiming
vectorControllerTiming(const plant::Plant &plant, double dt, int horizon,
                       bool with_refresh, matlib::NumericFormat format)
{
    return memoizedCalibration(
        1, plant, dt, horizon, with_refresh, format, [&] {
            vector::SaturnModel saturn(
                vector::SaturnConfig::make(512, 256, true));
            matlib::RvvBackend backend(
                512, matlib::RvvMapping::handOptimized());
            backend.setFormat(format);
            return calibrateTiming(saturn, backend,
                                   tinympc::MappingStyle::Fused, plant,
                                   dt, horizon, &isa::DiskCache::global(),
                                   with_refresh);
        });
}

ControllerTiming
gemminiControllerTiming(const plant::Plant &plant, double dt, int horizon,
                        bool with_refresh, matlib::NumericFormat format)
{
    return memoizedCalibration(
        2, plant, dt, horizon, with_refresh, format, [&] {
            systolic::GemminiModel gemmini(
                systolic::GemminiConfig::os4x4());
            matlib::GemminiBackend backend(
                matlib::GemminiMapping::fullyOptimized());
            backend.setFormat(format);
            // Library style: the Gemmini backend rejects Fused emission
            // (CISC tiled-matmul constraints).
            return calibrateTiming(gemmini, backend,
                                   tinympc::MappingStyle::Library, plant,
                                   dt, horizon, &isa::DiskCache::global(),
                                   with_refresh);
        });
}

ControllerTiming
namedControllerTiming(const std::string &model,
                      const plant::Plant &plant, double dt, int horizon,
                      bool with_refresh, matlib::NumericFormat format)
{
    if (model == "scalar") {
        return scalarControllerTiming(plant, dt, horizon, with_refresh,
                                      format);
    }
    if (model == "gemmini") {
        return gemminiControllerTiming(plant, dt, horizon, with_refresh,
                                       format);
    }
    if (model == "vector" || model == "ideal") {
        return vectorControllerTiming(plant, dt, horizon, with_refresh,
                                      format);
    }
    rtoc_fatal("unknown timing model '%s'", model.c_str());
}

std::vector<isa::KernelCycles>
regionBreakdown(const std::string &model, const plant::Plant &plant,
                double dt, int horizon, int iters)
{
    RTOC_SPAN("hil.region_breakdown", "hil");
    // Mirror the convenience-calibration configurations exactly, so
    // the profile describes the same hardware the sweeps priced.
    auto replay = [&](const cpu::CoreModel &core,
                      matlib::Backend &backend,
                      tinympc::MappingStyle style) {
        // With scheduling on, profile the stream the sweeps actually
        // replay; region sums stay reconcilable because schedules
        // permute only within regions.
        auto prog = schedStream(
            core, calibSolveKey(backend, style, plant, dt, horizon, iters),
            calibSolveStream(backend, style, plant, dt, horizon, iters));
        return core.run(*prog).kernelBreakdown(*prog);
    };
    if (model == "scalar") {
        cpu::InOrderCore core(cpu::InOrderConfig::shuttle());
        matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
        return replay(core, backend, tinympc::MappingStyle::Library);
    }
    if (model == "gemmini") {
        systolic::GemminiModel gemmini(systolic::GemminiConfig::os4x4());
        matlib::GemminiBackend backend(
            matlib::GemminiMapping::fullyOptimized());
        return replay(gemmini, backend, tinympc::MappingStyle::Library);
    }
    if (model == "vector" || model == "ideal") {
        vector::SaturnModel saturn(
            vector::SaturnConfig::make(512, 256, true));
        matlib::RvvBackend backend(512,
                                   matlib::RvvMapping::handOptimized());
        return replay(saturn, backend, tinympc::MappingStyle::Fused);
    }
    rtoc_fatal("unknown timing model '%s'", model.c_str());
}

soc::PowerParams
namedPowerParams(const std::string &model)
{
    if (model == "scalar")
        return soc::PowerParams::scalarCore();
    if (model == "gemmini")
        return soc::PowerParams::systolicCore();
    if (model == "vector" || model == "ideal")
        return soc::PowerParams::vectorCore();
    rtoc_fatal("unknown timing model '%s'", model.c_str());
}

ControllerTiming
scalarControllerTiming(const quad::DroneParams &drone, double dt,
                       int horizon)
{
    plant::QuadrotorPlant plant(drone);
    return scalarControllerTiming(plant, dt, horizon);
}

ControllerTiming
vectorControllerTiming(const quad::DroneParams &drone, double dt,
                       int horizon)
{
    plant::QuadrotorPlant plant(drone);
    return vectorControllerTiming(plant, dt, horizon);
}

ControllerTiming
gemminiControllerTiming(const quad::DroneParams &drone, double dt,
                        int horizon)
{
    plant::QuadrotorPlant plant(drone);
    return gemminiControllerTiming(plant, dt, horizon);
}

} // namespace rtoc::hil
