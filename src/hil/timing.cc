#include "timing.hh"

#include "common/logging.hh"
#include "cpu/inorder.hh"
#include "matlib/rvv_backend.hh"
#include "matlib/scalar_backend.hh"
#include "vector/saturn.hh"

namespace rtoc::hil {

ControllerTiming
calibrateTiming(const cpu::CoreModel &model, matlib::Backend &backend,
                tinympc::MappingStyle style,
                const quad::DroneParams &drone, double dt, int horizon)
{
    auto run_iters = [&](int iters) -> double {
        tinympc::Workspace ws =
            quad::buildQuadWorkspace(drone, dt, horizon);
        ws.settings.maxIters = iters;
        ws.settings.checkTermination = 5;
        ws.settings.priTol = 0.0f; // force exactly maxIters iterations
        ws.settings.duaTol = 0.0f;
        ws.coldStart();
        float x0[12] = {0.3f, -0.2f, 0.8f, 0, 0, 0, 0, 0, 0, 0, 0, 0};
        ws.setInitialState(x0);

        isa::Program prog;
        backend.setProgram(&prog);
        tinympc::Solver solver(ws, backend, style);
        solver.setup();
        tinympc::SolveResult res = solver.solve();
        backend.setProgram(nullptr);
        if (res.iterations != iters)
            rtoc_panic("calibration expected %d iters, got %d", iters,
                       res.iterations);
        return static_cast<double>(model.run(prog).cycles);
    };

    double c_lo = run_iters(5);
    double c_hi = run_iters(25);

    ControllerTiming t;
    t.archName = model.name();
    t.mappingName = backend.name();
    t.cyclesPerIter = (c_hi - c_lo) / 20.0;
    t.baseCycles = c_lo - 5.0 * t.cyclesPerIter;
    if (t.baseCycles < 0.0)
        t.baseCycles = 0.0;
    return t;
}

ControllerTiming
scalarControllerTiming(const quad::DroneParams &drone, double dt,
                       int horizon)
{
    cpu::InOrderCore core(cpu::InOrderConfig::shuttle());
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    return calibrateTiming(core, backend, tinympc::MappingStyle::Library,
                           drone, dt, horizon);
}

ControllerTiming
vectorControllerTiming(const quad::DroneParams &drone, double dt,
                       int horizon)
{
    vector::SaturnModel saturn(vector::SaturnConfig::make(512, 256, true));
    matlib::RvvBackend backend(512, matlib::RvvMapping::handOptimized());
    return calibrateTiming(saturn, backend, tinympc::MappingStyle::Fused,
                           drone, dt, horizon);
}

} // namespace rtoc::hil
