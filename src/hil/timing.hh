/**
 * @file
 * Controller timing calibration: measure cycles-per-ADMM-iteration of
 * a (architecture model, software mapping) pair by running the
 * instrumented solver through the timing simulator at two iteration
 * counts and fitting base + perIter·iters. The HIL loop then treats
 * the SoC exactly as the paper's setup treats the Cygnus chip: a
 * black box whose solve latency is cycles(iterations) / frequency.
 */

#ifndef RTOC_HIL_TIMING_HH
#define RTOC_HIL_TIMING_HH

#include <string>

#include "cpu/core_model.hh"
#include "matlib/backend.hh"
#include "quad/linearize.hh"
#include "tinympc/solver.hh"

namespace rtoc::hil {

/** Linear per-solve cycle model of one controller implementation. */
struct ControllerTiming
{
    std::string archName;
    std::string mappingName;
    double baseCycles = 0.0;
    double cyclesPerIter = 0.0;

    /** Cycles for a solve with @p iters ADMM iterations. */
    double
    solveCycles(int iters) const
    {
        return baseCycles + cyclesPerIter * static_cast<double>(iters);
    }
};

/**
 * Calibrate @p backend/@p style on @p model using a freshly-built
 * quadrotor workspace of @p drone.
 */
ControllerTiming
calibrateTiming(const cpu::CoreModel &model, matlib::Backend &backend,
                tinympc::MappingStyle style,
                const quad::DroneParams &drone, double dt, int horizon);

/**
 * Convenience calibrations of the two on-chip implementations the
 * paper flies (§5.2): optimized scalar (Eigen-style on the Shuttle
 * scalar pipeline) and hand-optimized RVV on the large Saturn core
 * (VLEN=512, DLEN=256, Shuttle frontend).
 */
ControllerTiming scalarControllerTiming(const quad::DroneParams &drone,
                                        double dt, int horizon);
ControllerTiming vectorControllerTiming(const quad::DroneParams &drone,
                                        double dt, int horizon);

} // namespace rtoc::hil

#endif // RTOC_HIL_TIMING_HH
