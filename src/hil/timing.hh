/**
 * @file
 * Controller timing calibration: measure cycles-per-ADMM-iteration of
 * a (architecture model, software mapping) pair by running the
 * instrumented solver through the timing simulator at two iteration
 * counts and fitting base + perIter·iters. The HIL loop then treats
 * the SoC exactly as the paper's setup treats the Cygnus chip: a
 * black box whose solve latency is cycles(iterations) / frequency.
 *
 * Calibration is plant-generic: the emitted stream depends only on
 * the problem shape (nx, nu, horizon), never on plant parameter
 * values, so cache and memo keys carry the shape and every plant with
 * the quadrotor's 12x4 shape replays the quadrotor's cached streams.
 */

#ifndef RTOC_HIL_TIMING_HH
#define RTOC_HIL_TIMING_HH

#include <optional>
#include <string>

#include "cpu/core_model.hh"
#include "isa/disk_cache.hh"
#include "matlib/backend.hh"
#include "plant/plant.hh"
#include "quad/linearize.hh"
#include "soc/power_model.hh"
#include "tinympc/solver.hh"

namespace rtoc::hil {

/** Linear per-solve cycle model of one controller implementation. */
struct ControllerTiming
{
    std::string archName;
    std::string mappingName;
    double baseCycles = 0.0;
    double cyclesPerIter = 0.0;

    // Model-refresh cycle model (warm-start incremental
    // relinearization): fitted from the emitted "riccati_sweep" /
    // "model_refresh_commit" refresh stream exactly as the solve
    // model is fitted from the solve stream.
    double refreshBaseCycles = 0.0;
    double refreshCyclesPerIter = 0.0;

    /** Cycles for a solve with @p iters ADMM iterations. */
    double
    solveCycles(int iters) const
    {
        return baseCycles + cyclesPerIter * static_cast<double>(iters);
    }

    /** Cycles for one model refresh taking @p riccati_iters warm
     *  Riccati iterations. */
    double
    refreshCycles(int riccati_iters) const
    {
        return refreshBaseCycles +
               refreshCyclesPerIter * static_cast<double>(riccati_iters);
    }
};

/**
 * Calibrate @p backend/@p style on @p model using a freshly-built
 * workspace of @p plant (emission cached per backend config, style
 * and problem shape). The fitted ControllerTiming is persisted to
 * @p disk keyed on (model cacheKey, backend cacheKey, style, shape,
 * refresh-awareness), so a warm process skips both the replay runs
 * and the emission; pass nullptr to force recomputation.
 *
 * @p with_refresh additionally emits and fits the model-refresh
 * stream (refreshBaseCycles / refreshCyclesPerIter). Fixed-trim
 * callers leave it off, keeping their emission footprint — and the
 * historical bench outputs — untouched; relinearization-aware
 * callers (bench_relin, sessions with a non-trivial policy) turn it
 * on. The two variants persist under distinct keys so neither
 * poisons the other's disk entry.
 */
ControllerTiming
calibrateTiming(const cpu::CoreModel &model, matlib::Backend &backend,
                tinympc::MappingStyle style, const plant::Plant &plant,
                double dt, int horizon,
                const isa::DiskCache *disk = &isa::DiskCache::global(),
                bool with_refresh = false);

/** Historical quadrotor entry point (wraps a QuadrotorPlant). */
ControllerTiming
calibrateTiming(const cpu::CoreModel &model, matlib::Backend &backend,
                tinympc::MappingStyle style,
                const quad::DroneParams &drone, double dt, int horizon);

/**
 * Multi-model batch calibration: fit every model in @p models against
 * ONE emission of the @p backend/@p style stream, replaying the two
 * fit points through a family-batched ReplayBatch (one column pass
 * advances all scoreboards of a family — the design-sweep analogue of
 * calibrateTiming). Per-model results, disk keys and fitted values
 * are bit-identical to calling calibrateTiming per model (pinned by
 * tests); models already persisted on @p disk are served from it and
 * skipped in the replay batch.
 */
std::vector<ControllerTiming>
calibrateTimingBatch(const std::vector<const cpu::CoreModel *> &models,
                     matlib::Backend &backend, tinympc::MappingStyle style,
                     const plant::Plant &plant, double dt, int horizon,
                     const isa::DiskCache *disk = &isa::DiskCache::global(),
                     bool with_refresh = false);

/**
 * Convenience calibrations of the three on-chip implementations the
 * cross-plant sweeps compare (§5.2 flies the first two): optimized
 * scalar (Eigen-style on the Shuttle scalar pipeline), hand-optimized
 * RVV on the large Saturn core (VLEN=512, DLEN=256, Shuttle
 * frontend), and the fully-optimized Gemmini mapping on the OS 4x4
 * systolic array (library style: Fused is rejected at emission time
 * by the Gemmini backend). Memoized per (impl, nx, nu, dt, horizon,
 * refresh-awareness, format).
 *
 * @p format prices a narrow datapath: the backend emits its stream at
 * the format's element width, so vector lanes pack more elements and
 * coprocessor bus transfers shrink. float32 (the default) keeps every
 * historical key and fit byte-identical.
 */
ControllerTiming
scalarControllerTiming(const plant::Plant &plant, double dt, int horizon,
                       bool with_refresh = false,
                       matlib::NumericFormat format =
                           matlib::NumericFormat::F32);
ControllerTiming
vectorControllerTiming(const plant::Plant &plant, double dt, int horizon,
                       bool with_refresh = false,
                       matlib::NumericFormat format =
                           matlib::NumericFormat::F32);
ControllerTiming
gemminiControllerTiming(const plant::Plant &plant, double dt, int horizon,
                        bool with_refresh = false,
                        matlib::NumericFormat format =
                            matlib::NumericFormat::F32);

/**
 * Named-model dispatch shared by the sweep benches
 * (bench_cross_plant, bench_relin): "scalar" / "vector" / "gemmini"
 * select the convenience calibrations above; "ideal" returns the
 * vector timing (unused by an ideal policy, kept for struct
 * completeness).
 */
ControllerTiming
namedControllerTiming(const std::string &model, const plant::Plant &plant,
                      double dt, int horizon, bool with_refresh = false,
                      matlib::NumericFormat format =
                          matlib::NumericFormat::F32);

/** Power model matching namedControllerTiming's dispatch. */
soc::PowerParams namedPowerParams(const std::string &model);

/**
 * Per-kernel-region cycle breakdown of one named implementation's
 * solve stream on @p plant (same "scalar" / "vector" / "gemmini"
 * dispatch as namedControllerTiming), replayed at a forced @p iters
 * ADMM iterations. The stream comes from the process ProgramCache, so
 * a breakdown after a sweep costs one cached replay; results are
 * deterministic regardless of disk-cache warmth. Feeds
 * obs::RegionProfile for the bench `--profile` tables.
 */
std::vector<isa::KernelCycles>
regionBreakdown(const std::string &model, const plant::Plant &plant,
                double dt, int horizon, int iters = 25);

/** Historical quadrotor entry points. */
ControllerTiming scalarControllerTiming(const quad::DroneParams &drone,
                                        double dt, int horizon);
ControllerTiming vectorControllerTiming(const quad::DroneParams &drone,
                                        double dt, int horizon);
ControllerTiming gemminiControllerTiming(const quad::DroneParams &drone,
                                         double dt, int horizon);

/** Calibration-cache counters (tests, CI warm-start assertions). */
struct CalibCacheStats
{
    uint64_t memoHits = 0; ///< in-memory convenience-memo hits
    uint64_t diskHits = 0; ///< calibrations loaded from disk
    uint64_t computes = 0; ///< full two-point replay fits performed
};
CalibCacheStats calibCacheStats();

/** Serialize a ControllerTiming (bit-exact double round-trip). */
std::string encodeTiming(const ControllerTiming &t);

/** Decode an encodeTiming payload; nullopt when malformed. */
std::optional<ControllerTiming> decodeTiming(const std::string &payload);

} // namespace rtoc::hil

#endif // RTOC_HIL_TIMING_HH
