#include "sweep.hh"

#include "plant/quad_plant.hh"

namespace rtoc::hil {

std::vector<EpisodeResult>
SweepRunner::runEpisodes(const plant::Plant &proto, plant::Difficulty d,
                         int n, const HilConfig &cfg,
                         const plant::DisturbanceProfile &disturbance) const
{
    return map<EpisodeResult>(
        static_cast<size_t>(n < 0 ? 0 : n), [&](size_t i) {
            plant::Scenario sc =
                proto.makeScenario(d, static_cast<int>(i));
            sc.disturbance = disturbance;
            std::unique_ptr<plant::Plant> plant = proto.clone();
            return runEpisode(*plant, sc, cfg);
        });
}

std::vector<EpisodeResult>
SweepRunner::runEpisodes(const quad::DroneParams &drone,
                         quad::Difficulty d, int n,
                         const HilConfig &cfg) const
{
    plant::QuadrotorPlant proto(drone);
    return runEpisodes(proto, d, n, cfg);
}

} // namespace rtoc::hil
