#include "sweep.hh"

namespace rtoc::hil {

std::vector<EpisodeResult>
SweepRunner::runEpisodes(const quad::DroneParams &drone,
                         quad::Difficulty d, int n,
                         const HilConfig &cfg) const
{
    return map<EpisodeResult>(
        static_cast<size_t>(n < 0 ? 0 : n), [&](size_t i) {
            quad::Scenario sc =
                quad::makeScenario(d, static_cast<int>(i));
            return runEpisode(drone, sc, cfg);
        });
}

} // namespace rtoc::hil
