#include "sweep.hh"

#include <cstdlib>

#include "plant/quad_plant.hh"

namespace rtoc::hil {

namespace {

/** RTOC_GRAIN: force the chunk size of every SweepRunner fan-out. */
int
envGrain()
{
    static const int grain = [] {
        if (const char *env = std::getenv("RTOC_GRAIN")) {
            int n = std::atoi(env);
            if (n >= 1)
                return n;
        }
        return 0;
    }();
    return grain;
}

} // namespace

size_t
SweepRunner::defaultGrain(size_t n, int threads)
{
    if (threads <= 1)
        return n == 0 ? 1 : n; // serial: one inline chunk, zero overhead
    // ~4 claimable chunks per participant: coarse enough that the
    // per-task claim cost amortizes over several episodes, fine
    // enough that stealing can still rebalance skewed chunks.
    size_t chunks = static_cast<size_t>(threads) * 4;
    size_t grain = n / chunks;
    return grain < 1 ? 1 : grain;
}

size_t
SweepRunner::effectiveGrain(size_t n) const
{
    if (int forced = envGrain(); forced >= 1)
        return static_cast<size_t>(forced);
    if (grain_ >= 1)
        return static_cast<size_t>(grain_);
    return defaultGrain(n, pool_.threads());
}

std::vector<EpisodeResult>
SweepRunner::runEpisodes(const plant::Plant &proto, plant::Difficulty d,
                         int n, const HilConfig &cfg,
                         const plant::DisturbanceProfile &disturbance) const
{
    return map<EpisodeResult>(
        static_cast<size_t>(n < 0 ? 0 : n), [&](size_t i) {
            plant::Scenario sc =
                proto.makeScenario(d, static_cast<int>(i));
            sc.disturbance = disturbance;
            std::unique_ptr<plant::Plant> plant = proto.clone();
            return runEpisode(*plant, sc, cfg);
        });
}

std::vector<EpisodeResult>
SweepRunner::runEpisodes(const quad::DroneParams &drone,
                         quad::Difficulty d, int n,
                         const HilConfig &cfg) const
{
    plant::QuadrotorPlant proto(drone);
    return runEpisodes(proto, d, n, cfg);
}

} // namespace rtoc::hil
