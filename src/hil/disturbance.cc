#include "disturbance.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "hil/control_session.hh"
#include "matlib/scalar_backend.hh"
#include "plant/quad_plant.hh"
#include "quad/linearize.hh"
#include "tinympc/solver.hh"

namespace rtoc::hil {

using quad::Vec3;

const char *
disturbKindName(DisturbKind k)
{
    switch (k) {
      case DisturbKind::StepForce: return "step-force";
      case DisturbKind::ImpulseForce: return "impulse-force";
      case DisturbKind::StepTorque: return "step-torque";
      case DisturbKind::ImpulseTorque: return "impulse-torque";
      case DisturbKind::StepCombined: return "step-combined";
      case DisturbKind::ImpulseCombined: return "impulse-combined";
    }
    rtoc_panic("bad disturbance kind");
}

namespace {

bool
isForce(DisturbKind k)
{
    return k == DisturbKind::StepForce || k == DisturbKind::ImpulseForce;
}

bool
isTorque(DisturbKind k)
{
    return k == DisturbKind::StepTorque ||
           k == DisturbKind::ImpulseTorque;
}

bool
isStep(DisturbKind k)
{
    return k == DisturbKind::StepForce || k == DisturbKind::StepTorque ||
           k == DisturbKind::StepCombined;
}

} // namespace

DisturbResult
runDisturbTrial(const quad::DroneParams &drone, const DisturbSpec &spec,
                const HilConfig &cfg)
{
    // One protocol, the generic plant path: the QuadrotorPlant route
    // is bit-identical to the historical QuadSim loop (same hover
    // point, workspace construction, UART shape defaults, command
    // clamping and the exact 5 cm recovery radius via the reach-
    // radius scaling), pinned by the fig17 byte-identity check.
    plant::QuadrotorPlant plant(drone);
    return runDisturbTrial(plant, spec, cfg);
}

DisturbResult
runDisturbTrial(const plant::Plant &proto, const DisturbSpec &spec,
                const HilConfig &cfg)
{
    DisturbResult res;

    std::unique_ptr<plant::Plant> plant = proto.clone();
    plant->reset();
    if (!plant->supportsWrench()) {
        rtoc_fatal("plant '%s' does not support external wrenches",
                   proto.name().c_str());
    }

    ControlSession session(*plant, cfg);
    const plant::Vec3 hold = plant->home();
    const std::vector<float> xref = plant->reference(hold);

    std::vector<double> current_cmd = plant->trimCommand();
    std::vector<double> pending_cmd = current_cmd;
    double pending_apply_at = -1.0;
    double controller_free_at = 0.0;
    double next_tick = 0.0;

    const double uart_latency = cfg.uart.uplinkS(plant->nx()) +
                                cfg.uart.downlinkS(plant->nu());
    const double onset = 0.5;
    const double duration = isStep(spec.kind) ? 0.100 : 0.015;
    const double settle_window = 0.250;
    // The quad's historical 5 cm recovery radius at its 12 cm reach.
    const double recover_radius = plant->reachRadius() * (0.05 / 0.12);
    const double limit = onset + 4.0;

    double within_since = -1.0;
    bool wrench_on = false;
    double t = 0.0;
    while (t < limit) {
        if (pending_apply_at >= 0.0 && t >= pending_apply_at) {
            current_cmd = pending_cmd;
            pending_apply_at = -1.0;
        }
        if (t >= next_tick && t >= controller_free_at) {
            ControlSession::TickResult tr = session.tick(xref);
            double solve_s =
                cfg.timing.solveCycles(tr.solve.iterations) /
                cfg.socFreqHz;
            if (tr.refreshAttempted) {
                solve_s += cfg.timing.refreshCycles(tr.riccatiIters) /
                           cfg.socFreqHz;
            }
            pending_cmd = session.command();
            double done = t + uart_latency + solve_s;
            pending_apply_at = done;
            controller_free_at = done;
            double period = cfg.controlPeriodS;
            next_tick = std::max(t + period,
                                 std::ceil(done / period) * period);
        }

        bool active = t >= onset && t < onset + duration;
        if (active != wrench_on) {
            plant::Wrench w;
            if (active) {
                double mag = spec.magnitude;
                if (isForce(spec.kind)) {
                    w.forceN[spec.axis] = mag;
                } else if (isTorque(spec.kind)) {
                    w.torqueNm[spec.axis] = mag * 1e-3;
                } else {
                    w.forceN[spec.axis] = mag;
                    w.torqueNm[(spec.axis + 1) % 3] = mag * 0.3e-3;
                }
            }
            plant->applyWrench(w);
            wrench_on = active;
        }

        plant->step(current_cmd, cfg.physicsDtS);
        t = plant->timeS();

        double dev = plant->distanceTo(hold);
        if (t > onset)
            res.maxDeviationM = std::max(res.maxDeviationM, dev);

        if (plant->crashed()) {
            res.crashed = true;
            return res;
        }

        if (t > onset + duration) {
            if (dev < recover_radius) {
                if (within_since < 0.0)
                    within_since = t;
                if (t - within_since >= settle_window) {
                    res.recovered = true;
                    res.ttrS = within_since - onset;
                    return res;
                }
            } else {
                within_since = -1.0;
            }
        }
    }
    return res;
}

double
maxRecoverableMagnitude(const plant::Plant &proto, DisturbKind kind,
                        int axis, const HilConfig &cfg,
                        bool *saturated)
{
    DisturbSpec spec;
    spec.kind = kind;
    spec.axis = axis;

    // Exponential search for an upper failure bound, then bisection
    // (the quad path's protocol, generic over plants).
    double lo = 0.0;
    double hi = 0.05;
    bool found_failure = false;
    for (int i = 0; i < 12; ++i) {
        spec.magnitude = hi;
        if (!runDisturbTrial(proto, spec, cfg).recovered) {
            found_failure = true;
            break;
        }
        lo = hi;
        hi *= 2.0;
    }
    if (saturated != nullptr)
        *saturated = !found_failure;
    for (int i = 0; i < 8; ++i) {
        double mid = 0.5 * (lo + hi);
        spec.magnitude = mid;
        if (runDisturbTrial(proto, spec, cfg).recovered)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

double
maxRecoverableMagnitude(const quad::DroneParams &drone, DisturbKind kind,
                        int axis, const HilConfig &cfg)
{
    plant::QuadrotorPlant plant(drone);
    return maxRecoverableMagnitude(plant, kind, axis, cfg);
}

DisturbCell
runDisturbCell(const quad::DroneParams &drone, DisturbKind kind,
               const HilConfig &cfg, double magnitude_fraction)
{
    DisturbCell cell;
    cell.impl = cfg.timing.mappingName;
    cell.kind = kind;

    double ttr_sum = 0.0;
    double mag_sum = 0.0;
    int axes = isTorque(kind) ? 3 : 3;
    for (int axis = 0; axis < axes; ++axis) {
        double mag = maxRecoverableMagnitude(drone, kind, axis, cfg);
        mag_sum += mag;
        DisturbSpec spec{kind, axis, mag * magnitude_fraction};
        DisturbResult r = runDisturbTrial(drone, spec, cfg);
        if (r.recovered) {
            ttr_sum += r.ttrS;
            cell.trials += 1;
        }
    }
    cell.avgTtrS = cell.trials ? ttr_sum / cell.trials : 0.0;
    cell.maxMagnitude = mag_sum / axes;
    return cell;
}

} // namespace rtoc::hil
