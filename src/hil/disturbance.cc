#include "disturbance.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "matlib/scalar_backend.hh"
#include "quad/linearize.hh"
#include "tinympc/solver.hh"

namespace rtoc::hil {

using quad::Vec3;

const char *
disturbKindName(DisturbKind k)
{
    switch (k) {
      case DisturbKind::StepForce: return "step-force";
      case DisturbKind::ImpulseForce: return "impulse-force";
      case DisturbKind::StepTorque: return "step-torque";
      case DisturbKind::ImpulseTorque: return "impulse-torque";
      case DisturbKind::StepCombined: return "step-combined";
      case DisturbKind::ImpulseCombined: return "impulse-combined";
    }
    rtoc_panic("bad disturbance kind");
}

namespace {

bool
isForce(DisturbKind k)
{
    return k == DisturbKind::StepForce || k == DisturbKind::ImpulseForce;
}

bool
isTorque(DisturbKind k)
{
    return k == DisturbKind::StepTorque ||
           k == DisturbKind::ImpulseTorque;
}

bool
isStep(DisturbKind k)
{
    return k == DisturbKind::StepForce || k == DisturbKind::StepTorque ||
           k == DisturbKind::StepCombined;
}

} // namespace

DisturbResult
runDisturbTrial(const quad::DroneParams &drone, const DisturbSpec &spec,
                const HilConfig &cfg)
{
    DisturbResult res;

    quad::QuadSim sim(drone);
    const Vec3 hover_point = {0, 0, 1.0};
    sim.resetHover(hover_point);

    tinympc::Workspace ws =
        quad::buildQuadWorkspace(drone, cfg.controlPeriodS, cfg.horizon);
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    tinympc::Solver solver(ws, backend, tinympc::MappingStyle::Library);
    ws.setReferenceAll(quad::hoverReference(hover_point));

    double hover_cmd = sim.hoverCmd();
    std::array<double, 4> current_cmd = {hover_cmd, hover_cmd,
                                         hover_cmd, hover_cmd};
    std::array<double, 4> pending_cmd = current_cmd;
    double pending_apply_at = -1.0;
    double controller_free_at = 0.0;
    double next_tick = 0.0;

    const double uart_latency =
        cfg.uart.uplinkS() + cfg.uart.downlinkS();
    const double onset = 0.5;
    const double duration = isStep(spec.kind) ? 0.100 : 0.015;
    const double settle_window = 0.250;
    const double recover_radius = 0.05;
    const double limit = onset + 4.0;

    double within_since = -1.0;
    double t = 0.0;
    while (t < limit) {
        if (pending_apply_at >= 0.0 && t >= pending_apply_at) {
            current_cmd = pending_cmd;
            pending_apply_at = -1.0;
        }
        if (t >= next_tick && t >= controller_free_at) {
            float x0[12];
            quad::packMpcState(sim.state(), x0);
            ws.setInitialState(x0);
            tinympc::SolveResult sr = solver.solve();
            double solve_s =
                cfg.timing.solveCycles(sr.iterations) / cfg.socFreqHz;
            matlib::Mat u0 = solver.firstInput();
            double tmax = drone.maxThrustPerMotorN();
            for (int m = 0; m < 4; ++m) {
                pending_cmd[m] =
                    std::clamp(hover_cmd + static_cast<double>(u0[m]),
                               0.0, tmax);
            }
            double done = t + uart_latency + solve_s;
            pending_apply_at = done;
            controller_free_at = done;
            double period = cfg.controlPeriodS;
            next_tick = std::max(t + period,
                                 std::ceil(done / period) * period);
        }

        quad::ExternalWrench wrench;
        if (t >= onset && t < onset + duration) {
            double mag = spec.magnitude;
            if (isForce(spec.kind)) {
                wrench.forceN[spec.axis] = mag;
            } else if (isTorque(spec.kind)) {
                wrench.torqueNm[spec.axis] = mag * 1e-3;
            } else {
                // Combined: force plus proportional torque.
                wrench.forceN[spec.axis] = mag;
                wrench.torqueNm[(spec.axis + 1) % 3] = mag * 0.3e-3;
            }
        }

        sim.step(current_cmd, cfg.physicsDtS, wrench);
        t = sim.timeS();

        double dev = 0.0;
        for (int i = 0; i < 3; ++i) {
            double d = sim.state().pos[i] - hover_point[i];
            dev += d * d;
        }
        dev = std::sqrt(dev);
        if (t > onset)
            res.maxDeviationM = std::max(res.maxDeviationM, dev);

        if (sim.crashed()) {
            res.crashed = true;
            return res;
        }

        if (t > onset + duration) {
            if (dev < recover_radius) {
                if (within_since < 0.0)
                    within_since = t;
                if (t - within_since >= settle_window) {
                    res.recovered = true;
                    res.ttrS = within_since - onset;
                    return res;
                }
            } else {
                within_since = -1.0;
            }
        }
    }
    return res;
}

double
maxRecoverableMagnitude(const quad::DroneParams &drone, DisturbKind kind,
                        int axis, const HilConfig &cfg)
{
    DisturbSpec spec;
    spec.kind = kind;
    spec.axis = axis;

    // Exponential search for an upper failure bound.
    double lo = 0.0;
    double hi = isForce(kind) ? 0.05 : 0.05;
    for (int i = 0; i < 12; ++i) {
        spec.magnitude = hi;
        if (!runDisturbTrial(drone, spec, cfg).recovered)
            break;
        lo = hi;
        hi *= 2.0;
    }
    // Bisection.
    for (int i = 0; i < 8; ++i) {
        double mid = 0.5 * (lo + hi);
        spec.magnitude = mid;
        if (runDisturbTrial(drone, spec, cfg).recovered)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

DisturbCell
runDisturbCell(const quad::DroneParams &drone, DisturbKind kind,
               const HilConfig &cfg, double magnitude_fraction)
{
    DisturbCell cell;
    cell.impl = cfg.timing.mappingName;
    cell.kind = kind;

    double ttr_sum = 0.0;
    double mag_sum = 0.0;
    int axes = isTorque(kind) ? 3 : 3;
    for (int axis = 0; axis < axes; ++axis) {
        double mag = maxRecoverableMagnitude(drone, kind, axis, cfg);
        mag_sum += mag;
        DisturbSpec spec{kind, axis, mag * magnitude_fraction};
        DisturbResult r = runDisturbTrial(drone, spec, cfg);
        if (r.recovered) {
            ttr_sum += r.ttrS;
            cell.trials += 1;
        }
    }
    cell.avgTtrS = cell.trials ? ttr_sum / cell.trials : 0.0;
    cell.maxMagnitude = mag_sum / axes;
    return cell;
}

} // namespace rtoc::hil
