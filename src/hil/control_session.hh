/**
 * @file
 * ControlSession: the per-episode control stack — Workspace/Solver
 * pair plus a relinearization policy — factored out of the episode
 * runner so every closed-loop driver (episodes, disturbance trials,
 * benches) shares one warm-start-aware solve path.
 *
 * With the default policy (fixed trim, K=0) a session is exactly the
 * historical per-tick path: build the plant's workspace once, warm-
 * start every ADMM solve from the previous one against the fixed
 * trim-linearized model — bit-identical to the pre-session runner.
 *
 * With a RelinearizePolicy the session becomes a real-time-iteration
 * MPC pipeline (Verschueren et al., acados; applied to the TinyMPC
 * ADMM stack): every K ticks — or when the model state drifts past
 * stateDeltaThreshold — it re-linearizes the plant around the current
 * state and last applied input (Plant::linearizeAt, carrying the
 * affine residual), re-solves the Riccati cache warm-started from the
 * previous Pinf (a handful of iterations instead of a cold solve),
 * and swaps the model into the workspace in place
 * (Workspace::refreshModel) WITHOUT discarding the ADMM duals or the
 * warm-started trajectory. Refresh cost is charged through
 * ControllerTiming::refreshCycles, calibrated from the emitted
 * "riccati_sweep"/"model_refresh_commit" kernel regions.
 */

#ifndef RTOC_HIL_CONTROL_SESSION_HH
#define RTOC_HIL_CONTROL_SESSION_HH

#include "hil/episode.hh"
#include "matlib/scalar_backend.hh"
#include "tinympc/solver.hh"

namespace rtoc::hil {

/** Lifetime counters of one session (tests, bench telemetry). */
struct SessionStats
{
    int solves = 0;
    int refreshes = 0;        ///< model refreshes performed
    int refreshFailures = 0;  ///< DARE did not converge; model kept
    int riccatiIters = 0;     ///< total warm Riccati iterations
    int skippedRefreshes = 0; ///< due refreshes a governor suppressed
};

/** Per-episode control stack (see file comment). */
class ControlSession
{
  public:
    /** Outcome of one control tick. */
    struct TickResult
    {
        tinympc::SolveResult solve;
        bool refreshed = false; ///< model swapped this tick
        /** A refresh ran this tick (even if the Riccati diverged and
         *  the stale model was kept — the device still paid for the
         *  attempted sweep, so episodes charge riccatiIters either
         *  way). */
        bool refreshAttempted = false;
        int riccatiIters = 0; ///< Riccati iterations spent this tick
    };

    /**
     * Build the session for @p plant under @p cfg: trim-linearized
     * workspace (the plant's buildWorkspace, bit-identical to the
     * historical construction) and cfg.relin as the policy.
     */
    ControlSession(plant::Plant &plant, const HilConfig &cfg);

    /**
     * Per-tick overrides for slack-governed (anytime) callers. The
     * default-constructed value is the historical bit-identical path.
     */
    struct TickOptions
    {
        /** ADMM iteration budget; <= 0 runs the workspace's
         *  configured bound (the historical path). */
        int maxIters = 0;
        /** Suppress a due relinearization this tick (degradation
         *  ladder's SkipRelin rung); the policy clock keeps ticking
         *  so the refresh fires again once the governor allows it. */
        bool skipRefresh = false;
    };

    /**
     * One control tick: sample the plant state into the workspace,
     * retarget the reference, refresh the model if the policy says
     * so, and run one warm-started ADMM solve.
     */
    TickResult
    tick(const std::vector<float> &xref)
    {
        return tick(xref, TickOptions{});
    }

    /** Budgeted tick (see TickOptions). */
    TickResult tick(const std::vector<float> &xref,
                    const TickOptions &opt);

    /**
     * Whether the *schedulable* component of the relinearization
     * policy (everyK) would fire on the next unskipped tick. Drift
     * triggers depend on the not-yet-sampled state, so a slack
     * governor reserving refresh cycles sees only the periodic part.
     */
    bool
    refreshDue() const
    {
        return !policy_.fixedTrim() && failCooldown_ == 0 &&
               policy_.everyK > 0 && sinceRefresh_ >= policy_.everyK;
    }

    /** Actuator command from the last solve's first input. */
    const std::vector<double> &command() const { return last_cmd_; }

    const SessionStats &stats() const { return stats_; }
    const plant::RelinearizePolicy &policy() const { return policy_; }
    tinympc::Workspace &workspace() { return ws_; }
    tinympc::Solver &solver() { return solver_; }

  private:
    /** Model-state drift (2-norm) since the last linearization. */
    double drift() const;

    /** Re-linearize around the current state and refresh the cache. */
    bool refresh(TickResult &out);

    plant::Plant &plant_;
    double dt_;
    plant::RelinearizePolicy policy_;

    tinympc::Workspace ws_;
    matlib::ScalarBackend backend_;
    tinympc::Solver solver_;

    // Relinearization state (untouched for the fixed-trim policy).
    numerics::DMatrix qMat_, rMat_;
    double rho_ = 5.0;
    numerics::LqrCache cache_;       ///< warm-start seed (last Pinf)
    bool cacheValid_ = false;        ///< first refresh solves cold
    std::vector<double> linState_;   ///< model state at last relin
    int sinceRefresh_ = 0;
    int failCooldown_ = 0;           ///< ticks to back off after a
                                     ///< diverged refresh attempt

    std::vector<float> x0_;          ///< packed state scratch
    std::vector<double> last_cmd_;   ///< command of the last solve
    SessionStats stats_;
};

} // namespace rtoc::hil

#endif // RTOC_HIL_CONTROL_SESSION_HH
