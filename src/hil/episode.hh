/**
 * @file
 * Closed-loop HIL episode runner (§5.2): physics stepping at the
 * simulator rate, a 50 Hz control task on the modelled SoC, UART
 * transfer latencies on both directions, and zero-order hold of the
 * last command while a solve is in flight. When the solve overruns
 * the control period the next state sample slips to a later period
 * boundary, degrading the effective control rate — the mechanism
 * behind the success/power cliffs of Figure 16.
 *
 * The runner is plant-generic: it drives any plant::Plant (runtime
 * nx/nu problem shape, task-space waypoints, plant-owned crash and
 * reach predicates). The historical quad::DroneParams entry points
 * are thin wrappers over a QuadrotorPlant and remain bit-identical to
 * the pre-abstraction code path.
 *
 * runCell results are memoized process-wide keyed on (plant config,
 * difficulty, disturbance, episode count, timing model, frequency,
 * HIL config), so multi-figure bench binaries evaluating the same
 * cell pay for it once. Set RTOC_CELL_MEMO=0 to disable. The memo is
 * LRU-bounded (RTOC_CELL_MEMO_CAP overrides the default cap, 0 means
 * unbounded) so long-lived drivers sweeping 100k-point design spaces
 * do not grow memory without limit; evictions are counted in
 * cellMemoStats().
 */

#ifndef RTOC_HIL_EPISODE_HH
#define RTOC_HIL_EPISODE_HH

#include "common/stats.hh"
#include "hil/timing.hh"
#include "matlib/fixed.hh"
#include "plant/plant.hh"
#include "quad/scenario.hh"
#include "soc/power_model.hh"
#include "soc/uart.hh"

namespace rtoc::hil {

/** Static configuration of a HIL run. */
struct HilConfig
{
    double physicsDtS = 1.0 / 240.0; ///< gym-pybullet default rate
    double controlPeriodS = 0.02;    ///< 50 Hz MPC task
    double socFreqHz = 100e6;
    bool idealPolicy = false; ///< solve every physics step, zero latency
    int horizon = 10;
    ControllerTiming timing;
    soc::UartModel uart;
    soc::PowerParams power = soc::PowerParams::scalarCore();
    /** Incremental-relinearization policy (default: fixed trim, the
     *  historical bit-identical path). */
    plant::RelinearizePolicy relin;
    /** Numeric format of the on-SoC datapath (default from
     *  RTOC_FORMAT, normally float32 — the bit-identical path).
     *  Narrow formats quantize the solver arithmetic, shrink the
     *  UART payload to their element width, and must be priced with
     *  a ControllerTiming calibrated at the same format. */
    matlib::NumericFormat format = matlib::defaultFormat();
};

/** Outcome of one episode. */
struct EpisodeResult
{
    bool success = false;
    bool crashed = false;
    int waypointsReached = 0;
    double missionTimeS = 0.0;
    Distribution solveTimesS;  ///< per-solve latency samples
    Distribution iterations;   ///< per-solve ADMM iterations
    double rotorEnergyJ = 0.0; ///< actuation energy (rotors/engine/...)
    double avgRotorPowerW = 0.0;
    double socEnergyJ = 0.0;
    double avgSocPowerW = 0.0;
    double computeUtilization = 0.0;
    // Relinearization telemetry (zero on the fixed-trim path).
    int modelRefreshes = 0;    ///< model refreshes performed
    int refreshFailures = 0;   ///< diverged attempts (charged, model kept)
    double refreshTimeS = 0.0; ///< modelled SoC time spent refreshing
                               ///< (successful AND diverged attempts)
    /** Mean task-space distance to the active waypoint over the
     *  episode (the tracking-error metric bench_relin quantifies). */
    double trackingErrM = 0.0;
    // Numeric-format telemetry (zero on the float32 path).
    int divergedSolves = 0;   ///< solves with non-finite residuals
    uint64_t quantSats = 0;   ///< fixed-point quantization saturations
    uint64_t accSats = 0;     ///< fixed-point accumulator saturations
};

/** Run scenario @p sc on @p plant under @p cfg (plant is reset). */
EpisodeResult runEpisode(plant::Plant &plant, const plant::Scenario &sc,
                         const HilConfig &cfg);

/** Historical quadrotor entry point (bit-identical wrapper). */
EpisodeResult runEpisode(const quad::DroneParams &drone,
                         const quad::Scenario &sc, const HilConfig &cfg);

/** Aggregated metrics over a set of episodes. */
struct SweepCell
{
    std::string arch;
    std::string plant;  ///< Plant::name() of the swept plant
    double freqMhz = 0.0;
    plant::Difficulty difficulty = plant::Difficulty::Easy;
    int episodes = 0;
    double successRate = 0.0;
    DistSummary solveTimeMs;
    double avgIterations = 0.0;
    double avgRotorPowerW = 0.0;
    double avgSocPowerW = 0.0;
    double avgTotalPowerW = 0.0;
    // Relinearization telemetry (zeros under the fixed-trim policy).
    plant::RelinearizePolicy relin;
    double avgTrackingErrM = 0.0; ///< mean episode tracking error
    double avgRefreshes = 0.0;    ///< model refreshes per episode
    double avgRefreshFailures = 0.0; ///< diverged attempts per episode
    double avgRefreshTimeS = 0.0; ///< modelled refresh s per episode
    // Numeric-format telemetry (f32 / zeros on the float32 path).
    std::string format = "f32";   ///< datapath format of the cell
    double avgDivergedSolves = 0.0; ///< diverged solves per episode
    double avgQuantSats = 0.0;    ///< quantization sats per episode
    double avgAccSats = 0.0;      ///< accumulator sats per episode
};

/**
 * Run @p n_scenarios seeded scenarios of @p d on clones of @p proto
 * and aggregate. Memoized process-wide (see file comment).
 */
SweepCell runCell(const plant::Plant &proto, plant::Difficulty d,
                  int n_scenarios, const HilConfig &cfg,
                  const plant::DisturbanceProfile &disturbance = {});

/** Historical quadrotor entry point (bit-identical wrapper). */
SweepCell runCell(const quad::DroneParams &drone, quad::Difficulty d,
                  int n_scenarios, const HilConfig &cfg);

/** runCell memo counters (for tests and cache-effect reporting). */
struct CellMemoStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
    uint64_t evictions = 0; ///< LRU entries dropped over the cap
    size_t capacity = 0;    ///< current cap (0 = unbounded)
};
CellMemoStats cellMemoStats();

/**
 * Override the memo's LRU cap at runtime (tests, long-lived
 * explorers). Equivalent to RTOC_CELL_MEMO_CAP; 0 means unbounded.
 * An over-full memo evicts immediately.
 */
void cellMemoSetCap(size_t cap);

} // namespace rtoc::hil

#endif // RTOC_HIL_EPISODE_HH
