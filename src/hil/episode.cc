#include "episode.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"
#include "common/lru_cache.hh"
#include "common/random.hh"
#include "hil/control_session.hh"
#include "hil/sweep.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"
#include "plant/quad_plant.hh"

namespace rtoc::hil {

namespace {

/**
 * fmt.* counter ids, interned lazily on the first narrow-format
 * episode so format-off runs never grow their metrics section.
 */
struct FmtIds
{
    StatId divergedSolves;
    StatId quantSats;
    StatId accSats;
};

const FmtIds &
fmtIds()
{
    static const FmtIds ids = [] {
        obs::Registry &reg = obs::Registry::global();
        return FmtIds{reg.counter("fmt.diverged_solves"),
                      reg.counter("fmt.quant_sats"),
                      reg.counter("fmt.acc_sats")};
    }();
    return ids;
}

} // namespace

EpisodeResult
runEpisode(plant::Plant &plant, const plant::Scenario &sc,
           const HilConfig &cfg)
{
    EpisodeResult res;

    RTOC_SPAN("hil.episode", "hil");
    plant.reset();

    // The session owns the Workspace/Solver pair (functional-only
    // scalar backend: identical arithmetic, no emission) and the
    // relinearization policy from cfg.relin.
    ControlSession session(plant, cfg);

    std::vector<double> current_cmd = plant.trimCommand();
    std::vector<double> pending_cmd = current_cmd;
    double pending_apply_at = -1.0;
    double controller_free_at = 0.0;
    double next_tick = 0.0;
    double busy_time = 0.0;

    // Narrow formats ship quantized payloads over the tether: the
    // element width scales the UART cost (f32 keeps the historical 4).
    const int wire_bytes = matlib::formatElemBytes(cfg.format);
    const double uart_latency =
        cfg.idealPolicy ? 0.0
                        : cfg.uart.uplinkS(plant.nx(), wire_bytes) +
                              cfg.uart.downlinkS(plant.nu(), wire_bytes);

    int revealed = 0;
    int reached = 0;
    double track_err_sum = 0.0;
    uint64_t track_err_n = 0;
    bool final_reached = false;
    double final_within_since = -1.0;
    const double reach_radius = plant.reachRadius();
    const double settle_s = plant.settleS();
    const double limit = sc.timeLimitS();

    // Actuation-noise disturbance profile. A zero sigma performs no
    // draws, keeping clean episodes bit-identical to the historical
    // (profile-free) runner.
    const double noise_sigma = sc.disturbance.cmdNoiseSigma;
    Rng noise_rng(0xD157A11ull +
                  (static_cast<uint64_t>(sc.difficulty) + 1) * 104729ull +
                  static_cast<uint64_t>(sc.seed) * 7727ull);
    std::vector<double> noisy_cmd(current_cmd.size());

    auto run_solve = [&](double now) -> double {
        // Sample state, set reference to the newest revealed waypoint;
        // the session refreshes the model first when the policy fires.
        int target_idx = std::max(0, revealed - 1);
        ControlSession::TickResult tr =
            session.tick(plant.reference(sc.waypoints[target_idx]));
        res.iterations.add(static_cast<double>(tr.solve.iterations));
        if (tr.solve.diverged)
            ++res.divergedSolves;

        double refresh_s = 0.0;
        if (tr.refreshAttempted) {
            // Charge the attempted sweep even when the Riccati
            // diverged and the stale model was kept.
            if (tr.refreshed)
                ++res.modelRefreshes;
            else
                ++res.refreshFailures;
            refresh_s = cfg.idealPolicy
                            ? 0.0
                            : cfg.timing.refreshCycles(tr.riccatiIters) /
                                  cfg.socFreqHz;
            res.refreshTimeS += refresh_s;
        }
        double solve_s =
            cfg.idealPolicy
                ? 0.0
                : cfg.timing.solveCycles(tr.solve.iterations) /
                      cfg.socFreqHz;
        res.solveTimesS.add(cfg.timing.solveCycles(tr.solve.iterations) /
                            cfg.socFreqHz);
        busy_time += solve_s + refresh_s;

        pending_cmd = session.command();
        (void)now;
        return solve_s + refresh_s;
    };

    double t = 0.0;
    while (t < limit) {
        // Waypoint reveals (UART downstream of the host simulator).
        while (revealed < static_cast<int>(sc.waypoints.size()) &&
               t >= sc.intervalS * static_cast<double>(revealed)) {
            ++revealed;
        }

        if (cfg.idealPolicy) {
            run_solve(t);
            current_cmd = pending_cmd;
        } else {
            // Apply a completed solve's command.
            if (pending_apply_at >= 0.0 && t >= pending_apply_at) {
                current_cmd = pending_cmd;
                pending_apply_at = -1.0;
            }
            // Start a new solve at period boundaries when idle.
            if (t >= next_tick && t >= controller_free_at) {
                double solve_s = run_solve(t);
                double done = t + uart_latency + solve_s;
                pending_apply_at = done;
                controller_free_at = done;
                double period = cfg.controlPeriodS;
                double boundary =
                    std::ceil(done / period) * period;
                next_tick = std::max(t + period, boundary);
            }
        }

        if (noise_sigma > 0.0) {
            for (size_t i = 0; i < current_cmd.size(); ++i) {
                noisy_cmd[i] = current_cmd[i] *
                               (1.0 + noise_sigma * noise_rng.gaussian());
            }
            plant.step(noisy_cmd, cfg.physicsDtS);
        } else {
            plant.step(current_cmd, cfg.physicsDtS);
        }
        t = plant.timeS();

        // Tracking error against the active (newest revealed) target.
        if (revealed > 0) {
            track_err_sum +=
                plant.distanceTo(sc.waypoints[revealed - 1]);
            ++track_err_n;
        }

        if (plant.crashed()) {
            res.crashed = true;
            break;
        }

        // Waypoint progress diagnostic: furthest visited in order.
        while (reached < revealed &&
               plant.distanceTo(sc.waypoints[reached]) < reach_radius) {
            ++reached;
        }
        // Mission success: navigate to the *final* waypoint (the
        // paper's criterion) and hold it briefly.
        if (revealed == static_cast<int>(sc.waypoints.size())) {
            double dev = plant.distanceTo(sc.waypoints.back());
            if (dev < reach_radius) {
                if (final_within_since < 0.0)
                    final_within_since = t;
                if (t - final_within_since >= settle_s) {
                    final_reached = true;
                    break;
                }
            } else {
                final_within_since = -1.0;
            }
        }
    }

    res.waypointsReached = reached;
    res.trackingErrM =
        track_err_n ? track_err_sum / static_cast<double>(track_err_n)
                    : 0.0;
    res.success = !res.crashed && final_reached;
    res.missionTimeS = plant.timeS();
    res.rotorEnergyJ = plant.actuationEnergyJ();
    res.avgRotorPowerW =
        res.missionTimeS > 0 ? res.rotorEnergyJ / res.missionTimeS : 0.0;

    res.computeUtilization =
        res.missionTimeS > 0 ? std::min(1.0, busy_time / res.missionTimeS)
                             : 0.0;
    soc::PowerModel pm(cfg.power);
    res.avgSocPowerW =
        pm.powerW(cfg.socFreqHz, res.computeUtilization);
    res.socEnergyJ = res.avgSocPowerW * res.missionTimeS;

    if (cfg.format != matlib::NumericFormat::F32) {
        const matlib::fx::Counters &fc =
            session.solver().backend().fxCounters();
        res.quantSats = fc.quantSats;
        res.accSats = fc.accSats;
        const FmtIds &ids = fmtIds();
        obs::count(ids.divergedSolves,
                   static_cast<uint64_t>(res.divergedSolves));
        obs::count(ids.quantSats, res.quantSats);
        obs::count(ids.accSats, res.accSats);
    }
    return res;
}

EpisodeResult
runEpisode(const quad::DroneParams &drone, const quad::Scenario &sc,
           const HilConfig &cfg)
{
    plant::QuadrotorPlant plant(drone);
    plant::Scenario psc;
    psc.difficulty = sc.difficulty;
    psc.seed = sc.seed;
    psc.intervalS = sc.intervalS;
    psc.waypoints = sc.waypoints;
    return runEpisode(plant, psc, cfg);
}

namespace {

/**
 * Process-wide runCell memo. Cells are deterministic functions of the
 * key, so racing workers may compute a key twice (benign: identical
 * values) but never block each other across distinct keys. The map is
 * LRU-bounded (RTOC_CELL_MEMO_CAP, default 4096 cells, 0 = unbounded)
 * so unbounded design-space exploration cannot grow the process
 * without limit; an evicted cell is simply recomputed on the next
 * request.
 */
constexpr size_t kDefaultCellMemoCap = 4096;

struct CellMemo
{
    std::mutex mu;
    LruMap<std::string, SweepCell> memo{kDefaultCellMemoCap};
    /** Hit/miss counts live on the obs::Registry (sharded per thread:
     *  a counter bump under the work-stealing pool never contends on
     *  mu, and never races — see test_obs stress test). */
    StatId hits_id = 0;
    StatId misses_id = 0;
};

CellMemo &
cellMemo()
{
    static CellMemo m;
    static const bool configured = [] {
        if (const char *env = std::getenv("RTOC_CELL_MEMO_CAP"))
            m.memo.setCapacity(
                static_cast<size_t>(std::strtoull(env, nullptr, 10)));
        obs::Registry &reg = obs::Registry::global();
        m.hits_id = reg.counter("cell_memo.hits");
        m.misses_id = reg.counter("cell_memo.misses");
        reg.gauge("cell_memo.entries", [] {
            std::lock_guard<std::mutex> lk(m.mu);
            return static_cast<uint64_t>(m.memo.size());
        });
        reg.gauge("cell_memo.evictions", [] {
            std::lock_guard<std::mutex> lk(m.mu);
            return m.memo.evictions();
        });
        return true;
    }();
    (void)configured;
    return m;
}

bool
cellMemoEnabled()
{
    static const bool enabled = [] {
        const char *env = std::getenv("RTOC_CELL_MEMO");
        return env == nullptr || std::string(env) != "0";
    }();
    return enabled;
}

std::string
cellKey(const plant::Plant &proto, plant::Difficulty d, int n,
        const HilConfig &cfg, const plant::DisturbanceProfile &dist)
{
    // The relinearization policy (and the refresh cycle model it
    // prices) changes closed-loop behaviour, so the memo key carries
    // both — distinct policies never alias a cell. The numeric-format
    // suffix is empty at float32, keeping historical keys (and warm
    // memo entries) byte-identical.
    return csprintf(
        "%s|d%d|n%d|noise%g|arch:%s:%s|b%.17g|i%.17g|f%.17g|ideal%d|"
        "h%d|ctl%.17g|phys%.17g|uart%g/%d|pw:%s:%g:%g:%g:%g:%g|"
        "%s|rb%.17g|ri%.17g%s",
        proto.cacheKey().c_str(), static_cast<int>(d), n,
        dist.cmdNoiseSigma, cfg.timing.archName.c_str(),
        cfg.timing.mappingName.c_str(), cfg.timing.baseCycles,
        cfg.timing.cyclesPerIter, cfg.socFreqHz,
        cfg.idealPolicy ? 1 : 0, cfg.horizon, cfg.controlPeriodS,
        cfg.physicsDtS, cfg.uart.baud(), cfg.uart.framingBytes(),
        cfg.power.name.c_str(), cfg.power.leakageW,
        cfg.power.idleCapNfV2, cfg.power.busyCapNfV2, cfg.power.v0,
        cfg.power.vSlopePerGHz, cfg.relin.cacheKey().c_str(),
        cfg.timing.refreshBaseCycles, cfg.timing.refreshCyclesPerIter,
        matlib::formatKeySuffix(cfg.format).c_str());
}

SweepCell
computeCell(const plant::Plant &proto, plant::Difficulty d,
            int n_scenarios, const HilConfig &cfg,
            const plant::DisturbanceProfile &disturbance)
{
    SweepCell cell;
    cell.arch = cfg.idealPolicy ? "ideal" : cfg.timing.mappingName;
    cell.plant = proto.name();
    cell.freqMhz = cfg.socFreqHz / 1e6;
    cell.difficulty = d;
    cell.relin = cfg.relin;
    cell.format = matlib::formatName(cfg.format);

    Distribution solve_ms;
    double iters_sum = 0.0;
    uint64_t iters_count = 0;
    double rotor_sum = 0.0;
    double soc_sum = 0.0;
    double track_sum = 0.0;
    double refreshes_sum = 0.0;
    double refresh_fail_sum = 0.0;
    double refresh_s_sum = 0.0;
    double diverged_sum = 0.0;
    double quant_sat_sum = 0.0;
    double acc_sat_sum = 0.0;
    int successes = 0;

    // Episodes are independent and per-index seeded: fan them across
    // the pool, then aggregate in index order so the cell is
    // bit-identical to the historical serial loop.
    SweepRunner sweep;
    std::vector<EpisodeResult> episodes =
        sweep.runEpisodes(proto, d, n_scenarios, cfg, disturbance);

    for (const EpisodeResult &er : episodes) {
        cell.episodes += 1;
        if (er.success)
            ++successes;
        for (double s : er.solveTimesS.samples())
            solve_ms.add(s * 1e3);
        for (double it : er.iterations.samples()) {
            iters_sum += it;
            ++iters_count;
        }
        track_sum += er.trackingErrM;
        refreshes_sum += static_cast<double>(er.modelRefreshes);
        refresh_fail_sum += static_cast<double>(er.refreshFailures);
        refresh_s_sum += er.refreshTimeS;
        diverged_sum += static_cast<double>(er.divergedSolves);
        quant_sat_sum += static_cast<double>(er.quantSats);
        acc_sat_sum += static_cast<double>(er.accSats);
        // The paper reports power only for successfully completed
        // tasks (Fig. 16c).
        if (er.success) {
            rotor_sum += er.avgRotorPowerW;
            soc_sum += er.avgSocPowerW;
        }
    }

    cell.successRate =
        cell.episodes ? static_cast<double>(successes) / cell.episodes
                      : 0.0;
    cell.solveTimeMs = solve_ms.summarize();
    cell.avgIterations =
        iters_count ? iters_sum / static_cast<double>(iters_count) : 0.0;
    cell.avgRotorPowerW = successes ? rotor_sum / successes : 0.0;
    cell.avgSocPowerW = successes ? soc_sum / successes : 0.0;
    cell.avgTotalPowerW = cell.avgRotorPowerW + cell.avgSocPowerW;
    if (cell.episodes) {
        cell.avgTrackingErrM = track_sum / cell.episodes;
        cell.avgRefreshes = refreshes_sum / cell.episodes;
        cell.avgRefreshFailures = refresh_fail_sum / cell.episodes;
        cell.avgRefreshTimeS = refresh_s_sum / cell.episodes;
        cell.avgDivergedSolves = diverged_sum / cell.episodes;
        cell.avgQuantSats = quant_sat_sum / cell.episodes;
        cell.avgAccSats = acc_sat_sum / cell.episodes;
    }
    return cell;
}

} // namespace

SweepCell
runCell(const plant::Plant &proto, plant::Difficulty d, int n_scenarios,
        const HilConfig &cfg,
        const plant::DisturbanceProfile &disturbance)
{
    if (!cellMemoEnabled())
        return computeCell(proto, d, n_scenarios, cfg, disturbance);

    CellMemo &m = cellMemo();
    const std::string key =
        cellKey(proto, d, n_scenarios, cfg, disturbance);
    {
        std::lock_guard<std::mutex> lk(m.mu);
        if (const SweepCell *hit = m.memo.get(key)) {
            obs::count(m.hits_id);
            return *hit;
        }
    }
    obs::count(m.misses_id);
    RTOC_SPAN("hil.cell", "sweep");
    SweepCell cell = computeCell(proto, d, n_scenarios, cfg, disturbance);
    {
        std::lock_guard<std::mutex> lk(m.mu);
        m.memo.put(key, cell);
    }
    return cell;
}

SweepCell
runCell(const quad::DroneParams &drone, quad::Difficulty d,
        int n_scenarios, const HilConfig &cfg)
{
    plant::QuadrotorPlant proto(drone);
    return runCell(proto, d, n_scenarios, cfg);
}

CellMemoStats
cellMemoStats()
{
    CellMemo &m = cellMemo();
    obs::Registry &reg = obs::Registry::global();
    uint64_t hits = reg.value(m.hits_id);
    uint64_t misses = reg.value(m.misses_id);
    std::lock_guard<std::mutex> lk(m.mu);
    return {hits, misses, m.memo.size(), m.memo.evictions(),
            m.memo.capacity()};
}

void
cellMemoSetCap(size_t cap)
{
    CellMemo &m = cellMemo();
    std::lock_guard<std::mutex> lk(m.mu);
    m.memo.setCapacity(cap);
}

} // namespace rtoc::hil
