#include "episode.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "hil/sweep.hh"
#include "matlib/scalar_backend.hh"
#include "quad/linearize.hh"
#include "tinympc/solver.hh"

namespace rtoc::hil {

using quad::Vec3;

namespace {

double
dist3(const Vec3 &a, const Vec3 &b)
{
    double dx = a[0] - b[0];
    double dy = a[1] - b[1];
    double dz = a[2] - b[2];
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

} // namespace

EpisodeResult
runEpisode(const quad::DroneParams &drone, const quad::Scenario &sc,
           const HilConfig &cfg)
{
    EpisodeResult res;

    quad::QuadSim sim(drone);
    sim.resetHover({0, 0, 1.0});

    tinympc::Workspace ws =
        quad::buildQuadWorkspace(drone, cfg.controlPeriodS, cfg.horizon);
    // Functional-only backend: identical arithmetic, no emission.
    matlib::ScalarBackend backend(matlib::ScalarFlavor::Optimized);
    tinympc::Solver solver(ws, backend, tinympc::MappingStyle::Library);

    double hover = sim.hoverCmd();
    std::array<double, 4> current_cmd = {hover, hover, hover, hover};
    std::array<double, 4> pending_cmd = current_cmd;
    double pending_apply_at = -1.0;
    double controller_free_at = 0.0;
    double next_tick = 0.0;
    double busy_time = 0.0;

    const double uart_latency =
        cfg.idealPolicy ? 0.0
                        : cfg.uart.uplinkS() + cfg.uart.downlinkS();

    int revealed = 0;
    int reached = 0;
    bool final_reached = false;
    double final_within_since = -1.0;
    const double reach_radius = 0.12;
    const double settle_s = 0.2;
    const double limit = sc.timeLimitS();

    auto run_solve = [&](double now) -> double {
        // Sample state, set reference to the newest revealed waypoint.
        float x0[12];
        quad::packMpcState(sim.state(), x0);
        ws.setInitialState(x0);
        int target_idx = std::max(0, revealed - 1);
        ws.setReferenceAll(
            quad::hoverReference(sc.waypoints[target_idx]));

        tinympc::SolveResult sr = solver.solve();
        res.iterations.add(static_cast<double>(sr.iterations));

        double solve_s = cfg.idealPolicy
                             ? 0.0
                             : cfg.timing.solveCycles(sr.iterations) /
                                   cfg.socFreqHz;
        res.solveTimesS.add(cfg.timing.solveCycles(sr.iterations) /
                            cfg.socFreqHz);
        busy_time += solve_s;

        matlib::Mat u0 = solver.firstInput();
        double tmax = drone.maxThrustPerMotorN();
        for (int m = 0; m < 4; ++m) {
            pending_cmd[m] = std::clamp(
                hover + static_cast<double>(u0[m]), 0.0, tmax);
        }
        (void)now;
        return solve_s;
    };

    double t = 0.0;
    while (t < limit) {
        // Waypoint reveals (UART downstream of the host simulator).
        while (revealed < static_cast<int>(sc.waypoints.size()) &&
               t >= sc.intervalS * static_cast<double>(revealed)) {
            ++revealed;
        }

        if (cfg.idealPolicy) {
            run_solve(t);
            current_cmd = pending_cmd;
        } else {
            // Apply a completed solve's command.
            if (pending_apply_at >= 0.0 && t >= pending_apply_at) {
                current_cmd = pending_cmd;
                pending_apply_at = -1.0;
            }
            // Start a new solve at period boundaries when idle.
            if (t >= next_tick && t >= controller_free_at) {
                double solve_s = run_solve(t);
                double done = t + uart_latency + solve_s;
                pending_apply_at = done;
                controller_free_at = done;
                double period = cfg.controlPeriodS;
                double boundary =
                    std::ceil(done / period) * period;
                next_tick = std::max(t + period, boundary);
            }
        }

        sim.step(current_cmd, cfg.physicsDtS);
        t = sim.timeS();

        if (sim.crashed()) {
            res.crashed = true;
            break;
        }

        // Waypoint progress diagnostic: furthest visited in order.
        while (reached < revealed &&
               dist3(sim.state().pos, sc.waypoints[reached]) <
                   reach_radius) {
            ++reached;
        }
        // Mission success: navigate to the *final* waypoint (the
        // paper's criterion) and hold it briefly.
        if (revealed == static_cast<int>(sc.waypoints.size())) {
            double dev =
                dist3(sim.state().pos, sc.waypoints.back());
            if (dev < reach_radius) {
                if (final_within_since < 0.0)
                    final_within_since = t;
                if (t - final_within_since >= settle_s) {
                    final_reached = true;
                    break;
                }
            } else {
                final_within_since = -1.0;
            }
        }
    }

    res.waypointsReached = reached;
    res.success = !res.crashed && final_reached;
    res.missionTimeS = sim.timeS();
    res.rotorEnergyJ = sim.rotorEnergyJ();
    res.avgRotorPowerW =
        res.missionTimeS > 0 ? res.rotorEnergyJ / res.missionTimeS : 0.0;

    res.computeUtilization =
        res.missionTimeS > 0 ? std::min(1.0, busy_time / res.missionTimeS)
                             : 0.0;
    soc::PowerModel pm(cfg.power);
    res.avgSocPowerW =
        pm.powerW(cfg.socFreqHz, res.computeUtilization);
    res.socEnergyJ = res.avgSocPowerW * res.missionTimeS;
    return res;
}

SweepCell
runCell(const quad::DroneParams &drone, quad::Difficulty d,
        int n_scenarios, const HilConfig &cfg)
{
    SweepCell cell;
    cell.arch = cfg.idealPolicy ? "ideal" : cfg.timing.mappingName;
    cell.freqMhz = cfg.socFreqHz / 1e6;
    cell.difficulty = d;

    Distribution solve_ms;
    double iters_sum = 0.0;
    uint64_t iters_count = 0;
    double rotor_sum = 0.0;
    double soc_sum = 0.0;
    int successes = 0;

    // Episodes are independent and per-index seeded: fan them across
    // the pool, then aggregate in index order so the cell is
    // bit-identical to the historical serial loop.
    SweepRunner sweep;
    std::vector<EpisodeResult> episodes =
        sweep.runEpisodes(drone, d, n_scenarios, cfg);

    for (const EpisodeResult &er : episodes) {
        cell.episodes += 1;
        if (er.success)
            ++successes;
        for (double s : er.solveTimesS.samples())
            solve_ms.add(s * 1e3);
        for (double it : er.iterations.samples()) {
            iters_sum += it;
            ++iters_count;
        }
        // The paper reports power only for successfully completed
        // tasks (Fig. 16c).
        if (er.success) {
            rotor_sum += er.avgRotorPowerW;
            soc_sum += er.avgSocPowerW;
        }
    }

    cell.successRate =
        cell.episodes ? static_cast<double>(successes) / cell.episodes
                      : 0.0;
    cell.solveTimeMs = solve_ms.summarize();
    cell.avgIterations =
        iters_count ? iters_sum / static_cast<double>(iters_count) : 0.0;
    cell.avgRotorPowerW = successes ? rotor_sum / successes : 0.0;
    cell.avgSocPowerW = successes ? soc_sum / successes : 0.0;
    cell.avgTotalPowerW = cell.avgRotorPowerW + cell.avgSocPowerW;
    return cell;
}

} // namespace rtoc::hil
