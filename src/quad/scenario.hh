/**
 * @file
 * Waypoint-tracking scenarios per the paper's Figure 15 difficulty
 * table: Easy (5 waypoints, 0.5 s apart, avg 0.3 m), Medium (7 /
 * 0.4 s / 0.7 m), Hard (10 / 0.3 s / 1.1 m). The drone is not aware
 * of future waypoints and must re-plan when a new one is transmitted
 * (§5.2). Twenty seeded scenarios per difficulty mirror the paper's
 * "20 unique sets of waypoints".
 */

#ifndef RTOC_QUAD_SCENARIO_HH
#define RTOC_QUAD_SCENARIO_HH

#include <string>
#include <vector>

#include "plant/scenario.hh"
#include "quad/dynamics.hh"

namespace rtoc::quad {

/** Scenario difficulty category (shared across plants). */
using Difficulty = plant::Difficulty;

/** Figure 15 parameters for a difficulty (shared across plants). */
using DifficultySpec = plant::DifficultySpec;

/** The Figure 15 table. */
DifficultySpec difficultySpec(Difficulty d);

/** One waypoint-tracking scenario. */
struct Scenario
{
    Difficulty difficulty = Difficulty::Easy;
    int seed = 0;
    double intervalS = 0.5;        ///< time between waypoint reveals
    std::vector<Vec3> waypoints;   ///< revealed sequentially

    /** Mission time limit: reveals plus settling grace. */
    double timeLimitS() const
    {
        return intervalS * static_cast<double>(waypoints.size()) + 1.5;
    }

    /** Mean hop distance (diagnostic, compared against Fig. 15). */
    double meanHopDistance() const;
};

/** Deterministically generate scenario @p index of @p d. */
Scenario makeScenario(Difficulty d, int index);

/** All difficulties, for sweep loops. */
inline const Difficulty kAllDifficulties[] = {
    Difficulty::Easy, Difficulty::Medium, Difficulty::Hard};

} // namespace rtoc::quad

#endif // RTOC_QUAD_SCENARIO_HH
