#include "scenario.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace rtoc::quad {

DifficultySpec
difficultySpec(Difficulty d)
{
    switch (d) {
      case Difficulty::Easy:
        return {"easy", 5, 0.5, 0.3};
      case Difficulty::Medium:
        return {"medium", 7, 0.4, 0.7};
      case Difficulty::Hard:
        return {"hard", 10, 0.3, 1.1};
    }
    rtoc_panic("bad difficulty");
}

double
Scenario::meanHopDistance() const
{
    if (waypoints.size() < 2)
        return 0.0;
    double total = 0.0;
    Vec3 prev = {0, 0, 1.0};
    for (const Vec3 &wp : waypoints) {
        double dx = wp[0] - prev[0];
        double dy = wp[1] - prev[1];
        double dz = wp[2] - prev[2];
        total += std::sqrt(dx * dx + dy * dy + dz * dz);
        prev = wp;
    }
    return total / static_cast<double>(waypoints.size());
}

Scenario
makeScenario(Difficulty d, int index)
{
    DifficultySpec spec = difficultySpec(d);
    Scenario sc;
    sc.difficulty = d;
    sc.seed = index;
    sc.intervalS = spec.timeBetweenS;

    // Seed combines difficulty and index for independent streams.
    Rng rng(0xC0FFEEull * (static_cast<uint64_t>(d) + 1) +
            static_cast<uint64_t>(index) * 7919ull);

    Vec3 cur = {0, 0, 1.0};
    for (int i = 0; i < spec.waypointCount; ++i) {
        // Hop of avgDistance +-30% in a random direction, biased
        // toward the horizontal plane, kept inside the flight box.
        for (int attempt = 0; attempt < 64; ++attempt) {
            double dist = spec.avgDistanceM * rng.uniform(0.7, 1.3);
            double az = rng.uniform(0.0, 2.0 * M_PI);
            double el = rng.uniform(-0.4, 0.4);
            Vec3 next = {
                cur[0] + dist * std::cos(az) * std::cos(el),
                cur[1] + dist * std::sin(az) * std::cos(el),
                cur[2] + dist * std::sin(el),
            };
            if (std::fabs(next[0]) < 2.5 && std::fabs(next[1]) < 2.5 &&
                next[2] > 0.4 && next[2] < 2.0) {
                cur = next;
                break;
            }
            if (attempt == 63)
                cur = Vec3{0, 0, 1.0}; // give up: recentre
        }
        sc.waypoints.push_back(cur);
    }
    return sc;
}

} // namespace rtoc::quad
