#include "linearize.hh"

#include "common/logging.hh"

namespace rtoc::quad {

using numerics::DMatrix;

LinearModel
linearizeHover(const DroneParams &params, double dt)
{
    LinearModel m;
    m.dt = dt;
    m.ac = DMatrix(12, 12);
    m.bc = DMatrix(12, 4);

    // pos_dot = vel
    for (int i = 0; i < 3; ++i)
        m.ac(i, 6 + i) = 1.0;
    // rpy_dot = omega (small angles)
    for (int i = 0; i < 3; ++i)
        m.ac(3 + i, 9 + i) = 1.0;
    // vel_dot: gravity tilt coupling + linear drag
    m.ac(6, 4) = kGravity;   // x_ddot = +g * pitch
    m.ac(7, 3) = -kGravity;  // y_ddot = -g * roll
    double kd_over_m = params.dragCoeff / params.massKg;
    for (int i = 0; i < 3; ++i)
        m.ac(6 + i, 6 + i) = -kd_over_m;

    // Inputs: per-motor thrust deltas.
    double inv_m = 1.0 / params.massKg;
    for (int j = 0; j < 4; ++j)
        m.bc(8, j) = inv_m; // z acceleration

    double l = params.momentArmM();
    double kt = params.torqueCoeff;
    auto inertia = params.inertiaDiag();
    const double mix[3][4] = {
        {-l, -l, l, l},   // roll torque
        {-l, l, l, -l},   // pitch torque
        {kt, -kt, kt, -kt} // yaw torque
    };
    for (int axis = 0; axis < 3; ++axis)
        for (int j = 0; j < 4; ++j)
            m.bc(9 + axis, j) = mix[axis][j] / inertia[axis];

    DMatrix adbd = numerics::zohDiscretize(m.ac, m.bc, dt);
    m.ad = DMatrix(12, 12);
    m.bd = DMatrix(12, 4);
    for (int i = 0; i < 12; ++i) {
        for (int j = 0; j < 12; ++j)
            m.ad(i, j) = adbd(i, j);
        for (int j = 0; j < 4; ++j)
            m.bd(i, j) = adbd(i, 12 + j);
    }
    return m;
}

MpcWeights
MpcWeights::forDrone(const DroneParams &params)
{
    MpcWeights w;
    // Normalize the input penalty to the command scale: a motor with
    // twice the hover thrust sees inputs of twice the magnitude.
    double u_scale = params.hoverThrustPerMotorN() / 0.0662;
    for (auto &r : w.rDiag)
        r = 4.0 / (u_scale * u_scale);

    // Slow motors (large tau) filter the commanded torques: soften
    // the position loop and add rate damping to stay stable with the
    // unmodelled lag.
    double lag = params.motorTauS / 0.03;
    if (lag > 1.2) {
        for (int i = 0; i < 3; ++i) {
            w.qDiag[i] = 40.0;      // position
            w.qDiag[6 + i] = 10.0;  // velocity damping
            w.qDiag[9 + i] = 6.0;   // body-rate damping
        }
        for (auto &r : w.rDiag)
            r *= 3.0;
    }
    return w;
}

tinympc::Workspace
buildQuadWorkspace(const DroneParams &params, double dt, int horizon)
{
    return buildQuadWorkspace(params, dt, horizon,
                              MpcWeights::forDrone(params));
}

tinympc::Workspace
buildQuadWorkspace(const DroneParams &params, double dt, int horizon,
                   const MpcWeights &weights)
{
    LinearModel model = linearizeHover(params, dt);

    DMatrix q = DMatrix::diag(weights.qDiag);
    DMatrix r = DMatrix::diag(weights.rDiag);
    numerics::LqrCache cache =
        numerics::solveDare(model.ad, model.bd, q, r, weights.rho);

    tinympc::Workspace ws = tinympc::Workspace::allocate(12, 4, horizon);
    ws.settings.rho = static_cast<float>(weights.rho);
    ws.loadCache(model.ad, model.bd, cache, weights.qDiag);

    // Motor envelope around hover.
    float hover = static_cast<float>(params.hoverThrustPerMotorN());
    float tmax = static_cast<float>(params.maxThrustPerMotorN());
    ws.setInputBounds({-hover, -hover, -hover, -hover},
                      {tmax - hover, tmax - hover, tmax - hover,
                       tmax - hover});
    ws.setReferenceAll(hoverReference({0, 0, 1.0}));
    return ws;
}

void
packMpcState(const SimState &s, float *x12)
{
    Vec3 rpy = s.rpy();
    for (int i = 0; i < 3; ++i) {
        x12[i] = static_cast<float>(s.pos[i]);
        x12[3 + i] = static_cast<float>(rpy[i]);
        x12[6 + i] = static_cast<float>(s.vel[i]);
        x12[9 + i] = static_cast<float>(s.omega[i]);
    }
}

std::vector<float>
hoverReference(const Vec3 &target)
{
    std::vector<float> xr(12, 0.0f);
    xr[0] = static_cast<float>(target[0]);
    xr[1] = static_cast<float>(target[1]);
    xr[2] = static_cast<float>(target[2]);
    return xr;
}

} // namespace rtoc::quad
