/**
 * @file
 * Nonlinear quadrotor rigid-body simulator, substituting for
 * gym-pybullet-drones in the HIL experiments (§5.2). 13-state
 * quaternion dynamics plus first-order motor lag, integrated with
 * RK4; external force/torque hooks support the disturbance-rejection
 * experiment (Fig. 17), and per-step rotor power is accumulated with
 * the momentum-theory model (Equation 4).
 */

#ifndef RTOC_QUAD_DYNAMICS_HH
#define RTOC_QUAD_DYNAMICS_HH

#include <array>

#include "quad/params.hh"

namespace rtoc::quad {

/** 3-vector helper. */
using Vec3 = std::array<double, 3>;

/** Simulator state. */
struct SimState
{
    Vec3 pos{0, 0, 0};       ///< world position (m)
    Vec3 vel{0, 0, 0};       ///< world velocity (m/s)
    std::array<double, 4> quat{1, 0, 0, 0}; ///< attitude (w,x,y,z)
    Vec3 omega{0, 0, 0};     ///< body angular rate (rad/s)
    std::array<double, 4> motorThrust{0, 0, 0, 0}; ///< actual (N)

    /** Roll/pitch/yaw extracted from the quaternion (rad). */
    Vec3 rpy() const;

    /** Cosine of the tilt angle (body z vs world z). */
    double tiltCos() const;
};

/** External disturbance applied during integration. */
struct ExternalWrench
{
    Vec3 forceN{0, 0, 0};    ///< world-frame force
    Vec3 torqueNm{0, 0, 0};  ///< body-frame torque
};

/** Quadrotor plant. */
class QuadSim
{
  public:
    explicit QuadSim(DroneParams params);

    /** Reset to hover at @p pos with motors at hover thrust. */
    void resetHover(const Vec3 &pos);

    /**
     * Advance one step of @p dt seconds with per-motor commanded
     * thrusts @p cmd (N, clamped to [0, maxThrust]).
     */
    void step(const std::array<double, 4> &cmd, double dt,
              const ExternalWrench &wrench = {});

    const SimState &state() const { return state_; }
    SimState &mutableState() { return state_; }
    const DroneParams &params() const { return params_; }

    /** Instantaneous rotor power (W, momentum theory, all rotors). */
    double rotorPowerW() const;

    /** Energy consumed by rotors since reset (J). */
    double rotorEnergyJ() const { return rotor_energy_j_; }

    /** Simulated time since reset (s). */
    double timeS() const { return time_s_; }

    /** True when the vehicle has crashed (ground strike, runaway
     *  position, or inverted attitude). */
    bool crashed() const;

    /** Hover thrust command helper (per motor, N). */
    double hoverCmd() const { return params_.hoverThrustPerMotorN(); }

  private:
    /** Continuous-time derivative of the 13-state vector. */
    std::array<double, 13>
    deriv(const std::array<double, 13> &s,
          const std::array<double, 4> &thrust,
          const ExternalWrench &wrench) const;

    DroneParams params_;
    SimState state_;
    double rotor_energy_j_ = 0.0;
    double time_s_ = 0.0;
};

} // namespace rtoc::quad

#endif // RTOC_QUAD_DYNAMICS_HH
