#include "params.hh"

#include <cmath>

#include "common/logging.hh"

namespace rtoc::quad {

double
DroneParams::maxThrustPerMotorN() const
{
    double n = maxRevsPerSec();
    double d = propDiameterM;
    return thrustCoeff * kAirDensity * n * n * d * d * d * d;
}

double
DroneParams::rotorDiskAreaM2() const
{
    double radius = propDiameterM / 2.0;
    return M_PI * radius * radius;
}

std::array<double, 3>
DroneParams::inertiaDiag() const
{
    // Published CrazyFlie 2.0 inertia, scaled by (m/m0)(l/l0)^2.
    constexpr double ixx0 = 1.395e-5;
    constexpr double iyy0 = 1.436e-5;
    constexpr double izz0 = 2.173e-5;
    constexpr double m0 = 0.027;
    constexpr double l0 = 0.080;
    double s = (massKg / m0) * (armLengthM / l0) * (armLengthM / l0);
    return {ixx0 * s, iyy0 * s, izz0 * s};
}

DroneParams
DroneParams::crazyflie()
{
    DroneParams p;
    p.name = "crazyflie";
    p.specialty = "generic";
    p.massKg = 0.027;
    p.propDiameterM = 0.045;
    p.armLengthM = 0.080;
    p.motorKvRpmPerV = 14000.0;
    p.batteryCells = 1;
    p.thrustCoeff = 0.07;
    p.rpmLoadFactor = 0.7;
    return p;
}

DroneParams
DroneParams::hawk()
{
    DroneParams p;
    p.name = "hawk";
    p.specialty = "agility";
    p.massKg = 0.046;
    p.propDiameterM = 0.060;
    p.armLengthM = 0.080;
    p.motorKvRpmPerV = 28000.0;
    p.batteryCells = 2;
    // Racing setup: high-Kv motors sag hard under prop load but
    // still deliver racing-class thrust-to-weight.
    p.thrustCoeff = 0.035;
    p.rpmLoadFactor = 0.35;
    p.motorTauS = 0.015; // responsive actuators
    p.dragCoeff = 0.02;  // clean racing frame
    return p;
}

DroneParams
DroneParams::heron()
{
    DroneParams p;
    p.name = "heron";
    p.specialty = "hover-efficiency";
    p.massKg = 0.035;
    p.propDiameterM = 0.090;
    p.armLengthM = 0.160;
    p.motorKvRpmPerV = 14000.0;
    p.batteryCells = 2;
    p.thrustCoeff = 0.04;
    p.rpmLoadFactor = 0.15; // 90 mm props load the motor heavily
    p.motorTauS = 0.06;     // large, sluggish props
    return p;
}

double
rotorInducedPowerW(double thrust_n, double disk_area_m2)
{
    if (thrust_n <= 0.0)
        return 0.0;
    return std::pow(thrust_n, 1.5) /
           std::sqrt(2.0 * kAirDensity * disk_area_m2);
}

} // namespace rtoc::quad
