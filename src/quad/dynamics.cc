#include "dynamics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtoc::quad {

namespace {

/** Rotate world vector by quaternion conjugate / body by quaternion. */
Vec3
rotateByQuat(const std::array<double, 4> &q, const Vec3 &v)
{
    // v' = q v q*
    double w = q[0], x = q[1], y = q[2], z = q[3];
    double vx = v[0], vy = v[1], vz = v[2];
    // t = 2 q_vec x v
    double tx = 2.0 * (y * vz - z * vy);
    double ty = 2.0 * (z * vx - x * vz);
    double tz = 2.0 * (x * vy - y * vx);
    return {vx + w * tx + (y * tz - z * ty),
            vy + w * ty + (z * tx - x * tz),
            vz + w * tz + (x * ty - y * tx)};
}

} // namespace

Vec3
SimState::rpy() const
{
    double w = quat[0], x = quat[1], y = quat[2], z = quat[3];
    double sinr = 2.0 * (w * x + y * z);
    double cosr = 1.0 - 2.0 * (x * x + y * y);
    double roll = std::atan2(sinr, cosr);
    double sinp = 2.0 * (w * y - z * x);
    sinp = std::clamp(sinp, -1.0, 1.0);
    double pitch = std::asin(sinp);
    double siny = 2.0 * (w * z + x * y);
    double cosy = 1.0 - 2.0 * (y * y + z * z);
    double yaw = std::atan2(siny, cosy);
    return {roll, pitch, yaw};
}

double
SimState::tiltCos() const
{
    Vec3 body_z = rotateByQuat(quat, {0, 0, 1});
    return body_z[2];
}

QuadSim::QuadSim(DroneParams params) : params_(std::move(params))
{
    if (params_.thrustToWeight() < 1.2) {
        rtoc_fatal("drone '%s' cannot hover: thrust/weight = %.2f",
                   params_.name.c_str(), params_.thrustToWeight());
    }
    resetHover({0, 0, 1.0});
}

void
QuadSim::resetHover(const Vec3 &pos)
{
    state_ = SimState{};
    state_.pos = pos;
    double hover = params_.hoverThrustPerMotorN();
    state_.motorThrust = {hover, hover, hover, hover};
    rotor_energy_j_ = 0.0;
    time_s_ = 0.0;
}

std::array<double, 13>
QuadSim::deriv(const std::array<double, 13> &s,
               const std::array<double, 4> &thrust,
               const ExternalWrench &wrench) const
{
    // State layout: pos(0..2) vel(3..5) quat(6..9) omega(10..12).
    std::array<double, 4> q = {s[6], s[7], s[8], s[9]};
    Vec3 omega = {s[10], s[11], s[12]};

    double total_thrust =
        thrust[0] + thrust[1] + thrust[2] + thrust[3];
    Vec3 thrust_world = rotateByQuat(q, {0, 0, total_thrust});

    double m = params_.massKg;
    double kd = params_.dragCoeff;
    Vec3 acc = {
        (thrust_world[0] - kd * s[3] + wrench.forceN[0]) / m,
        (thrust_world[1] - kd * s[4] + wrench.forceN[1]) / m,
        (thrust_world[2] - kd * s[5] + wrench.forceN[2]) / m - kGravity,
    };

    // X-configuration torques: motors 0..3 at 45/135/225/315 degrees,
    // spin directions (+,-,+,-) for yaw.
    double l = params_.momentArmM();
    double kt = params_.torqueCoeff;
    double tx = l * (-thrust[0] - thrust[1] + thrust[2] + thrust[3]);
    double ty = l * (-thrust[0] + thrust[1] + thrust[2] - thrust[3]);
    double tz =
        kt * (thrust[0] - thrust[1] + thrust[2] - thrust[3]);

    auto inertia = params_.inertiaDiag();
    Vec3 torque = {tx + wrench.torqueNm[0], ty + wrench.torqueNm[1],
                   tz + wrench.torqueNm[2]};
    Vec3 omega_dot = {
        (torque[0] - (inertia[2] - inertia[1]) * omega[1] * omega[2]) /
            inertia[0],
        (torque[1] - (inertia[0] - inertia[2]) * omega[2] * omega[0]) /
            inertia[1],
        (torque[2] - (inertia[1] - inertia[0]) * omega[0] * omega[1]) /
            inertia[2],
    };

    // Quaternion kinematics: qdot = 0.5 q (x) [0, omega].
    double w = q[0], x = q[1], y = q[2], z = q[3];
    double ox = omega[0], oy = omega[1], oz = omega[2];
    std::array<double, 4> qdot = {
        0.5 * (-x * ox - y * oy - z * oz),
        0.5 * (w * ox + y * oz - z * oy),
        0.5 * (w * oy - x * oz + z * ox),
        0.5 * (w * oz + x * oy - y * ox),
    };

    return {s[3],     s[4],     s[5],     acc[0],  acc[1],
            acc[2],   qdot[0],  qdot[1],  qdot[2], qdot[3],
            omega_dot[0], omega_dot[1], omega_dot[2]};
}

void
QuadSim::step(const std::array<double, 4> &cmd, double dt,
              const ExternalWrench &wrench)
{
    // Motor first-order lag toward the (clamped) command.
    double tmax = params_.maxThrustPerMotorN();
    double alpha = 1.0 - std::exp(-dt / params_.motorTauS);
    for (int i = 0; i < 4; ++i) {
        double target = std::clamp(cmd[i], 0.0, tmax);
        state_.motorThrust[i] +=
            alpha * (target - state_.motorThrust[i]);
    }

    std::array<double, 13> s = {
        state_.pos[0],  state_.pos[1],  state_.pos[2],
        state_.vel[0],  state_.vel[1],  state_.vel[2],
        state_.quat[0], state_.quat[1], state_.quat[2],
        state_.quat[3], state_.omega[0], state_.omega[1],
        state_.omega[2]};

    auto add = [](const std::array<double, 13> &a,
                  const std::array<double, 13> &b, double h) {
        std::array<double, 13> r;
        for (int i = 0; i < 13; ++i)
            r[i] = a[i] + h * b[i];
        return r;
    };

    auto k1 = deriv(s, state_.motorThrust, wrench);
    auto k2 = deriv(add(s, k1, dt / 2), state_.motorThrust, wrench);
    auto k3 = deriv(add(s, k2, dt / 2), state_.motorThrust, wrench);
    auto k4 = deriv(add(s, k3, dt), state_.motorThrust, wrench);
    for (int i = 0; i < 13; ++i)
        s[i] += dt / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);

    // Renormalize quaternion.
    double norm = std::sqrt(s[6] * s[6] + s[7] * s[7] + s[8] * s[8] +
                            s[9] * s[9]);
    if (norm < 1e-9)
        rtoc_panic("quaternion collapsed during integration");
    for (int i = 6; i < 10; ++i)
        s[i] /= norm;

    state_.pos = {s[0], s[1], s[2]};
    state_.vel = {s[3], s[4], s[5]};
    state_.quat = {s[6], s[7], s[8], s[9]};
    state_.omega = {s[10], s[11], s[12]};

    rotor_energy_j_ += rotorPowerW() * dt;
    time_s_ += dt;
}

double
QuadSim::rotorPowerW() const
{
    double area = params_.rotorDiskAreaM2();
    double p = 0.0;
    for (double t : state_.motorThrust)
        p += rotorInducedPowerW(t, area);
    return p;
}

bool
QuadSim::crashed() const
{
    if (state_.pos[2] < 0.02)
        return true;
    if (std::fabs(state_.pos[0]) > 8.0 ||
        std::fabs(state_.pos[1]) > 8.0 || state_.pos[2] > 8.0)
        return true;
    if (state_.tiltCos() < -0.2) // flipped past ~100 degrees
        return true;
    return false;
}

} // namespace rtoc::quad
