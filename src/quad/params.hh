/**
 * @file
 * Quadrotor physical parameters for the CrazyFlie baseline and the
 * Hawk/Heron morphology variants of Table 1 (§5.4). Derived
 * quantities (max thrust, inertia, rotor disk area) follow standard
 * propeller scaling: thrust = ct * rho * n^2 * d^4 with n in rev/s,
 * inertia scaled by mass and arm length squared from the published
 * CrazyFlie values.
 */

#ifndef RTOC_QUAD_PARAMS_HH
#define RTOC_QUAD_PARAMS_HH

#include <array>
#include <string>

namespace rtoc::quad {

/** Air density used throughout (kg/m^3). */
constexpr double kAirDensity = 1.225;

/** Gravitational acceleration (m/s^2). */
constexpr double kGravity = 9.81;

/** Mechanical/electrical drone description (Table 1). */
struct DroneParams
{
    std::string name = "crazyflie";
    std::string specialty = "generic";
    double massKg = 0.027;
    double propDiameterM = 0.045;
    double armLengthM = 0.080;      ///< motor-to-motor diagonal arm
    double motorKvRpmPerV = 14000.0;
    int batteryCells = 1;
    double thrustCoeff = 0.07;      ///< ct in T = ct rho n^2 d^4
    double rpmLoadFactor = 0.7;     ///< loaded vs no-load motor speed
    double torqueCoeff = 0.006;     ///< yaw torque per thrust (m)
    double motorTauS = 0.03;        ///< first-order motor lag
    double dragCoeff = 0.055;       ///< linear body drag (N per m/s)

    /** Battery voltage (3.7 V per cell). */
    double batteryVolts() const { return 3.7 * batteryCells; }

    /** Maximum *loaded* motor speed in rev/s: propeller load keeps
     *  the motor well below its no-load Kv x V speed, more so for
     *  large or aggressive props. */
    double maxRevsPerSec() const
    {
        return rpmLoadFactor * motorKvRpmPerV * batteryVolts() / 60.0;
    }

    /** Maximum thrust of one motor (N). */
    double maxThrustPerMotorN() const;

    /** Hover thrust of one motor (N). */
    double hoverThrustPerMotorN() const
    {
        return massKg * kGravity / 4.0;
    }

    /** Rotor disk area (m^2). */
    double rotorDiskAreaM2() const;

    /** Body inertia diagonal (Ixx, Iyy, Izz), kg m^2; scaled from the
     *  published CrazyFlie inertia by mass and arm length. */
    std::array<double, 3> inertiaDiag() const;

    /** Arm moment lever for roll/pitch in the X configuration. */
    double momentArmM() const { return armLengthM / 2.0 * 0.70710678; }

    /** Thrust-to-weight ratio (sanity metric). */
    double thrustToWeight() const
    {
        return 4.0 * maxThrustPerMotorN() / (massKg * kGravity);
    }

    /** Table 1 rows. */
    static DroneParams crazyflie();
    static DroneParams hawk();   ///< racing / agility variant
    static DroneParams heron();  ///< hover-efficiency variant
};

/**
 * Induced rotor power from momentum theory (paper Equation 4):
 * P = T^(3/2) / sqrt(2 rho A).
 */
double rotorInducedPowerW(double thrust_n, double disk_area_m2);

} // namespace rtoc::quad

#endif // RTOC_QUAD_PARAMS_HH
