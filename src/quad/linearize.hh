/**
 * @file
 * Hover linearization of the quadrotor and TinyMPC problem assembly.
 *
 * The MPC plant is the standard 12-state small-angle model
 * [pos, rpy, vel, omega] with per-motor thrust deviations from hover
 * as inputs, discretized with zero-order hold — the same modelling
 * choice as TinyMPC's quadrotor examples. Each Table-1 drone variant
 * yields its own linearized model and LQR cache ("we generate new
 * linearized models and policies for these drones", §5.4).
 */

#ifndef RTOC_QUAD_LINEARIZE_HH
#define RTOC_QUAD_LINEARIZE_HH

#include "numerics/dare.hh"
#include "quad/dynamics.hh"
#include "tinympc/workspace.hh"

namespace rtoc::quad {

/** Continuous + discretized hover model. */
struct LinearModel
{
    numerics::DMatrix ac; ///< 12 x 12 continuous
    numerics::DMatrix bc; ///< 12 x 4 continuous
    numerics::DMatrix ad; ///< 12 x 12 discrete (ZOH)
    numerics::DMatrix bd; ///< 12 x 4 discrete
    double dt = 0.02;
};

/** Linearize @p params around hover and discretize with @p dt. */
LinearModel linearizeHover(const DroneParams &params, double dt);

/** LQR weights used for the drone task. */
struct MpcWeights
{
    std::vector<double> qDiag = {100, 100, 100, 4,  4, 10,
                                 4,   4,   4,   2,  2, 2};
    std::vector<double> rDiag = {4, 4, 4, 4};
    double rho = 5.0;

    /**
     * Morphology-aware weights (§5.4: "we generate new linearized
     * models and policies for these drones"): the input weight is
     * normalized to the motor command scale, and slow-motor airframes
     * (Heron) get smoother position gains plus heavier rate damping
     * so the unmodelled first-order motor lag stays stable.
     */
    static MpcWeights forDrone(const DroneParams &params);
};

/**
 * Build a ready-to-solve TinyMPC workspace for @p params: linearized
 * model, Riccati cache, input bounds from the motor envelope, hover
 * reference.
 */
tinympc::Workspace
buildQuadWorkspace(const DroneParams &params, double dt, int horizon);

/** Overload with explicit weights. */
tinympc::Workspace
buildQuadWorkspace(const DroneParams &params, double dt, int horizon,
                   const MpcWeights &weights);

/** Pack a SimState into the 12-dim MPC state vector. */
void packMpcState(const SimState &s, float *x12);

/** MPC reference for holding position @p target. */
std::vector<float> hoverReference(const Vec3 &target);

} // namespace rtoc::quad

#endif // RTOC_QUAD_LINEARIZE_HH
