/**
 * @file
 * Schedule search: the timing models as their own autotuning cost
 * model.
 *
 * For one (model cacheKey, program key) pair, the searcher scores the
 * candidate recipes of enumerateSchedSpecs() — plus greedy
 * per-region-name refinement — by replaying the transformed stream on
 * the very model that will consume it, and keeps the cheapest. The
 * winning recipe (not the transformed program) is persisted in the
 * DiskCache "sched" namespace, versioned and fingerprinted exactly
 * like program blobs: a warm process decodes the recipe and re-applies
 * it, a corrupt or stale blob is deleted and re-searched. Transformed
 * programs themselves materialize through the ProgramCache under
 * `progKey + "|sched:" + digest`, so scheduled and baseline streams
 * never alias in memory or on disk.
 *
 * Everything here is opt-in: with RTOC_SCHED unset (or 0) the
 * schedule layer is inert — scheduledStream returns the baseline
 * pointer untouched and schedKeySuffix() is empty, so every golden
 * output stays byte-identical by default.
 *
 * Environment controls:
 *   RTOC_SCHED=1       enable schedule search + scheduled replay
 *   RTOC_SCHED_CAP=n   max candidates scored per search (default 24)
 */

#ifndef RTOC_ISA_SCHED_SEARCH_HH
#define RTOC_ISA_SCHED_SEARCH_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "isa/schedule.hh"

namespace rtoc::isa {

class ProgramCache;
class DiskCache;

/** True when RTOC_SCHED enables the schedule layer (read once). */
bool schedEnabled();

/** Candidate budget per search (RTOC_SCHED_CAP, default 24, min 1). */
int schedCap();

/**
 * Cache-key suffix for results computed over scheduled streams:
 * "|sched:v1:cap<N>" when enabled, "" otherwise. Appended to
 * calibration and DSE cell keys so sched-on cycle results never alias
 * the baseline entries (and off-mode keys stay untouched).
 */
const std::string &schedKeySuffix();

/** Replay cost of one candidate program (typically model.run().cycles). */
using SchedCostFn = std::function<uint64_t(const Program &)>;

/** Outcome of one schedule search (searchSchedule / tests / bench). */
struct SchedSearchResult
{
    SchedSpec spec;            ///< winning recipe (empty = baseline)
    uint64_t baseCycles = 0;   ///< cost of the identity schedule
    uint64_t bestCycles = 0;   ///< cost of the winner (<= baseCycles)
    int candidatesScored = 0;  ///< replays spent (excl. baseline)
};

/**
 * Search the schedule space of @p baseline under @p cost, capped at
 * @p cap scored candidates: global recipes first, then greedy
 * per-region-name refinement of the winner. Deterministic — fixed
 * candidate order, strict-improvement acceptance. Does not consult
 * caches; scheduledStream wraps this with memo + disk persistence.
 */
SchedSearchResult searchSchedule(const Program &baseline,
                                 const SchedCostFn &cost, int cap);

/**
 * The schedule layer's main entry: the stream model @p modelKey
 * should replay for @p progKey. Returns @p baseline unchanged when
 * RTOC_SCHED is off or the search finds no improvement; otherwise the
 * scheduled program, materialized through @p cache under the
 * digest-suffixed key. Winners are memoized per (modelKey, progKey,
 * cap) in-process (two-level locking: racing threads search a key
 * exactly once) and persisted in @p disk (nullable) under the "sched"
 * namespace.
 */
std::shared_ptr<const Program>
scheduledStream(const std::string &modelKey, const std::string &progKey,
                const std::shared_ptr<const Program> &baseline,
                const SchedCostFn &cost, ProgramCache &cache,
                const DiskCache *disk);

/** Global-cache convenience overload (ProgramCache/DiskCache::global). */
std::shared_ptr<const Program>
scheduledStream(const std::string &modelKey, const std::string &progKey,
                const std::shared_ptr<const Program> &baseline,
                const SchedCostFn &cost);

/** Drop the in-process schedule memo (tests). */
void clearSchedMemoForTest();

} // namespace rtoc::isa

#endif // RTOC_ISA_SCHED_SEARCH_HH
