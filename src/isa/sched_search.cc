#include "isa/sched_search.hh"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"
#include "isa/disk_cache.hh"
#include "isa/program_cache.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace rtoc::isa {

namespace {

/** Interned registry counters (registered on first schedule-layer
 *  use only, so sched-off runs emit byte-identical metrics JSON). */
struct SchedCounters
{
    StatId cacheHits =
        obs::Registry::global().counter("sched.cache_hits");
    StatId scored =
        obs::Registry::global().counter("sched.candidates_scored");
    StatId searches = obs::Registry::global().counter("sched.searches");
    StatId wins = obs::Registry::global().counter("sched.wins");
};

const SchedCounters &
schedCounters()
{
    static const SchedCounters c;
    return c;
}

/** One memoized search key: its own lock held across the (one-time)
 *  search, mirroring ProgramCache's two-level locking. */
struct MemoEntry
{
    std::mutex mu;
    std::shared_ptr<const Program> prog;
};

std::mutex g_memo_mu;
std::unordered_map<std::string, std::shared_ptr<MemoEntry>> g_memo;

} // namespace

bool
schedEnabled()
{
    static const bool on = [] {
        const char *e = std::getenv("RTOC_SCHED");
        return e != nullptr && *e != '\0' && std::string(e) != "0";
    }();
    return on;
}

int
schedCap()
{
    static const int cap = [] {
        const char *e = std::getenv("RTOC_SCHED_CAP");
        const int v = e != nullptr ? std::atoi(e) : 24;
        return v < 1 ? 1 : v;
    }();
    return cap;
}

const std::string &
schedKeySuffix()
{
    static const std::string s =
        schedEnabled() ? csprintf("|sched:v1:cap%d", schedCap())
                       : std::string();
    return s;
}

SchedSearchResult
searchSchedule(const Program &baseline, const SchedCostFn &cost,
               int cap)
{
    RTOC_SPAN_NAMED(span, "isa.sched_search", "isa");

    SchedSearchResult res;
    res.baseCycles = cost(baseline);
    res.bestCycles = res.baseCycles;

    auto score = [&](const SchedSpec &s) -> uint64_t {
        const ScheduleResult sr = applySchedule(baseline, s);
        ++res.candidatesScored;
        return cost(sr.prog);
    };
    auto consider = [&](SchedSpec s) {
        const uint64_t c = score(s);
        if (c < res.bestCycles) {
            res.bestCycles = c;
            res.spec = std::move(s);
        }
    };

    // Phase 1: global recipes, fixed order, strict improvement.
    const std::vector<SchedSpec> cands = enumerateSchedSpecs();
    for (const SchedSpec &cand : cands) {
        if (res.candidatesScored >= cap)
            break;
        consider(cand);
    }

    // Phase 2: greedy per-region-name refinement of the incumbent —
    // for each region name (first-appearance order) try the identity
    // and every global recipe as an override, keeping improvements.
    std::vector<std::string> names;
    for (const KernelRegion &r : baseline.kernels()) {
        const std::string &nm = r.name();
        if (std::find(names.begin(), names.end(), nm) == names.end())
            names.push_back(nm);
    }
    auto with_override = [](const SchedSpec &base_spec,
                            const std::string &nm,
                            std::vector<SchedStep> steps) {
        SchedSpec trial = base_spec;
        for (SchedSpec::Override &o : trial.overrides) {
            if (o.region == nm) {
                o.steps = std::move(steps);
                return trial;
            }
        }
        trial.overrides.push_back({nm, std::move(steps)});
        return trial;
    };
    for (const std::string &nm : names) {
        if (res.candidatesScored >= cap)
            break;
        if (!res.spec.stepsFor(nm).empty())
            consider(with_override(res.spec, nm, {}));
        for (const SchedSpec &cand : cands) {
            if (res.candidatesScored >= cap)
                break;
            if (res.spec.stepsFor(nm) == cand.steps)
                continue;
            consider(with_override(res.spec, nm, cand.steps));
        }
    }

    obs::count(schedCounters().scored,
               static_cast<uint64_t>(res.candidatesScored));
    obs::count(schedCounters().searches);
    if (res.bestCycles < res.baseCycles)
        obs::count(schedCounters().wins);
    span.arg("scored", static_cast<uint64_t>(res.candidatesScored));
    span.arg("best_cycles", res.bestCycles);
    return res;
}

std::shared_ptr<const Program>
scheduledStream(const std::string &modelKey, const std::string &progKey,
                const std::shared_ptr<const Program> &baseline,
                const SchedCostFn &cost, ProgramCache &cache,
                const DiskCache *disk)
{
    if (!schedEnabled())
        return baseline;

    const std::string search_key =
        csprintf("sched1|%s|%s|cap%d", modelKey.c_str(),
                 progKey.c_str(), schedCap());

    std::shared_ptr<MemoEntry> entry;
    {
        std::lock_guard<std::mutex> lk(g_memo_mu);
        std::shared_ptr<MemoEntry> &slot = g_memo[search_key];
        if (!slot)
            slot = std::make_shared<MemoEntry>();
        entry = slot;
    }
    std::lock_guard<std::mutex> lk(entry->mu);
    if (entry->prog) {
        obs::count(schedCounters().cacheHits);
        return entry->prog;
    }

    // Resolve the recipe: disk first, search on a miss. A blob that
    // fails envelope validation is already deleted by DiskCache::get;
    // a valid envelope holding an undecodable payload is re-searched
    // and overwritten here, mirroring the program-blob discipline.
    SchedSpec spec;
    bool resolved = false;
    if (disk != nullptr && disk->enabled()) {
        if (std::optional<std::string> blob =
                disk->get("sched", search_key)) {
            if (std::optional<SchedSpec> dec = decodeSchedSpec(*blob)) {
                spec = std::move(*dec);
                resolved = true;
                obs::count(schedCounters().cacheHits);
            }
        }
    }
    if (!resolved) {
        const SchedSearchResult res =
            searchSchedule(*baseline, cost, schedCap());
        spec = res.spec;
        if (disk != nullptr && disk->enabled())
            disk->put("sched", search_key, encodeSchedSpec(spec));
    }

    if (spec.empty()) {
        entry->prog = baseline;
        return baseline;
    }

    RTOC_SPAN_NAMED(span, "isa.sched_apply", "isa");
    span.arg("uops", baseline->size());
    const std::string sched_key =
        progKey + "|sched:" + schedSpecDigest(spec);
    entry->prog = cache.getOrEmit(sched_key, [&](Program &p) {
        p = applySchedule(*baseline, spec).prog;
    });
    return entry->prog;
}

std::shared_ptr<const Program>
scheduledStream(const std::string &modelKey, const std::string &progKey,
                const std::shared_ptr<const Program> &baseline,
                const SchedCostFn &cost)
{
    return scheduledStream(modelKey, progKey, baseline, cost,
                           ProgramCache::global(),
                           &DiskCache::global());
}

void
clearSchedMemoForTest()
{
    std::lock_guard<std::mutex> lk(g_memo_mu);
    g_memo.clear();
}

} // namespace rtoc::isa
