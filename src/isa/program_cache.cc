#include "program_cache.hh"

#include "common/logging.hh"
#include "isa/disk_cache.hh"

namespace rtoc::isa {

std::shared_ptr<const Program>
ProgramCache::getOrEmit(const std::string &key, const Emitter &emit)
{
    // Two-level locking: the map mutex only guards entry lookup and
    // insertion, while each entry carries its own mutex held across
    // emission. A key is still emitted exactly once, but concurrent
    // first-misses of *distinct* keys emit in parallel.
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++misses_;
            it = map_.emplace(key, std::make_shared<Entry>()).first;
        } else {
            ++hits_;
        }
        entry = it->second;
    }

    std::lock_guard<std::mutex> elk(entry->mu);
    if (!entry->prog) {
        // A first-miss consults the persistent cache before paying
        // for emission; fresh emissions are persisted for the next
        // process.
        if (disk_) {
            if (auto payload = disk_->get("prog", key)) {
                if (auto prog = decodeProgram(*payload)) {
                    entry->prog = std::make_shared<const Program>(
                        std::move(*prog));
                    std::lock_guard<std::mutex> slk(stat_mu_);
                    ++disk_hits_;
                    return entry->prog;
                }
            }
        }
        auto prog = std::make_shared<Program>();
        // Typical instrumented solves run to ~1e5 uops; reserving
        // here keeps the (one-time) emission from reallocating its
        // way up.
        prog->reserve(1 << 16, 1 << 10);
        emit(*prog);
        if (prog->kernelOpen())
            rtoc_panic("ProgramCache: emitter for '%s' left a kernel "
                       "region open", key.c_str());
        if (disk_)
            disk_->put("prog", key, encodeProgram(*prog));
        entry->prog = std::move(prog);
        std::lock_guard<std::mutex> slk(stat_mu_);
        ++emissions_;
    }
    return entry->prog;
}

std::shared_ptr<const Program>
ProgramCache::lookup(const std::string &key) const
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        entry = it->second;
    }
    std::lock_guard<std::mutex> elk(entry->mu);
    return entry->prog;
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
    std::lock_guard<std::mutex> slk(stat_mu_);
    emissions_ = 0;
    disk_hits_ = 0;
}

ProgramCacheStats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ProgramCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    {
        std::lock_guard<std::mutex> slk(stat_mu_);
        s.emissions = emissions_;
        s.diskHits = disk_hits_;
    }
    s.entries = map_.size();
    for (const auto &kv : map_) {
        std::lock_guard<std::mutex> elk(kv.second->mu);
        if (kv.second->prog)
            s.cachedUops += kv.second->prog->size();
    }
    return s;
}

ProgramCache &
ProgramCache::global()
{
    static ProgramCache cache(&DiskCache::global());
    return cache;
}

} // namespace rtoc::isa
