#include "program_cache.hh"

#include "common/logging.hh"
#include "isa/disk_cache.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

namespace rtoc::isa {

std::shared_ptr<const Program>
ProgramCache::getOrEmit(const std::string &key, const Emitter &emit)
{
    // Two-level locking: the map mutex only guards entry lookup and
    // insertion, while each entry carries its own mutex held across
    // emission. A key is still emitted exactly once, but concurrent
    // first-misses of *distinct* keys emit in parallel.
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it == map_.end()) {
            misses_.fetch_add(1, std::memory_order_relaxed);
            it = map_.emplace(key, std::make_shared<Entry>()).first;
        } else {
            hits_.fetch_add(1, std::memory_order_relaxed);
        }
        entry = it->second;
    }

    std::lock_guard<std::mutex> elk(entry->mu);
    if (!entry->prog) {
        // A first-miss consults the persistent cache before paying
        // for emission; fresh emissions are persisted for the next
        // process.
        if (disk_) {
            obs::Span span("isa.disk_load", "cache");
            if (auto payload = disk_->get("prog", key)) {
                if (auto prog = decodeProgram(*payload)) {
                    entry->prog = std::make_shared<const Program>(
                        std::move(*prog));
                    disk_hits_.fetch_add(1, std::memory_order_relaxed);
                    span.arg("uops", entry->prog->size());
                    return entry->prog;
                }
            }
        }
        obs::Span span("isa.emit", "cache");
        auto prog = std::make_shared<Program>();
        // Typical instrumented solves run to ~1e5 uops; reserving
        // here keeps the (one-time) emission from reallocating its
        // way up.
        prog->reserve(1 << 16, 1 << 10);
        emit(*prog);
        if (prog->kernelOpen())
            rtoc_panic("ProgramCache: emitter for '%s' left a kernel "
                       "region open", key.c_str());
        span.arg("uops", prog->size());
        if (disk_)
            disk_->put("prog", key, encodeProgram(*prog));
        entry->prog = std::move(prog);
        emissions_.fetch_add(1, std::memory_order_relaxed);
    }
    return entry->prog;
}

std::shared_ptr<const Program>
ProgramCache::lookup(const std::string &key) const
{
    std::shared_ptr<Entry> entry;
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = map_.find(key);
        if (it == map_.end())
            return nullptr;
        entry = it->second;
    }
    std::lock_guard<std::mutex> elk(entry->mu);
    return entry->prog;
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    emissions_.store(0, std::memory_order_relaxed);
    disk_hits_.store(0, std::memory_order_relaxed);
}

ProgramCacheStats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    ProgramCacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.emissions = emissions_.load(std::memory_order_relaxed);
    s.diskHits = disk_hits_.load(std::memory_order_relaxed);
    s.entries = map_.size();
    for (const auto &kv : map_) {
        std::lock_guard<std::mutex> elk(kv.second->mu);
        if (kv.second->prog)
            s.cachedUops += kv.second->prog->size();
    }
    return s;
}

ProgramCache &
ProgramCache::global()
{
    static ProgramCache *cache = [] {
        auto *c = new ProgramCache(&DiskCache::global());
        // Mirror the process-wide instance into the registry; private
        // instances (tests) keep their counters to themselves.
        obs::Registry &reg = obs::Registry::global();
        reg.gauge("prog_cache.hits", [c] {
            return c->hits_.load(std::memory_order_relaxed);
        });
        reg.gauge("prog_cache.misses", [c] {
            return c->misses_.load(std::memory_order_relaxed);
        });
        reg.gauge("prog_cache.emissions", [c] {
            return c->emissions_.load(std::memory_order_relaxed);
        });
        reg.gauge("prog_cache.disk_hits", [c] {
            return c->disk_hits_.load(std::memory_order_relaxed);
        });
        reg.gauge("prog_cache.entries",
                  [c] { return static_cast<uint64_t>(c->stats().entries); });
        return c;
    }();
    return *cache;
}

} // namespace rtoc::isa
