/**
 * @file
 * A Program is the unit of timing simulation: an ordered micro-op
 * stream with virtual-register allocation and named kernel regions.
 * Kernel regions let the models attribute cycles to the TinyMPC
 * kernels of Algorithms 1-3 (forward_pass_1, update_slack_1, ...),
 * which is how the paper's kernel-level figures (11, 12, 13) are
 * regenerated.
 *
 * Kernel names are interned into small integer ids (KernelId): the
 * emission hot path stores and compares ids only, and the string is
 * looked up when a table is printed. Streams are stored contiguously
 * and capacity-reserved, so replaying a cached Program touches no
 * allocator.
 *
 * Storage is dual-mode: emitters append AoS Uop records through the
 * unchanged push() API, and the first stream() call transposes the
 * stream into a columnar (SoA) store — including the decoded class
 * column — that every TimingModel replay reads through a
 * UopStreamView. The transpose happens once per Program (identified
 * by id()), no matter how many models or threads replay it.
 */

#ifndef RTOC_ISA_PROGRAM_HH
#define RTOC_ISA_PROGRAM_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "isa/uop.hh"
#include "isa/uop_stream.hh"

namespace rtoc::isa {

/** Interned id of a kernel-region name. */
using KernelId = uint32_t;

/**
 * Intern @p name into a process-wide id (thread-safe). Repeated calls
 * with the same name return the same id; ids are dense from 0.
 */
KernelId internKernel(std::string_view name);

/** The string a KernelId was interned from (stable reference). */
const std::string &kernelName(KernelId id);

/** Number of names interned so far. */
size_t internedKernelCount();

/** Half-open uop index range attributed to a named kernel. */
struct KernelRegion
{
    KernelId id = 0;
    size_t begin = 0;
    size_t end = 0;

    /** Interned name lookup (cold path: tables, tests). */
    const std::string &name() const { return kernelName(id); }
};

/** Backing arrays of the columnar storage mode (built lazily). */
struct UopColumns
{
    std::vector<UopKind> kind;
    std::vector<uint8_t> cls;
    std::vector<uint32_t> dst, src0, src1, src2;
    std::vector<uint32_t> vl;
    std::vector<uint16_t> sew, lmul8;
    std::vector<uint32_t> bytes;
    std::vector<uint16_t> rows, cols;
    std::vector<uint8_t> taken;
};

/** Ordered micro-op stream plus region markers and counters. */
class Program
{
  public:
    Program() = default;

    /**
     * Copies/moves carry the stream and counters; the lazily-built
     * column store is rebuilt on demand by the destination (copies
     * get a fresh id — column memoization is per object).
     */
    Program(const Program &o);
    Program &operator=(const Program &o);
    Program(Program &&o) noexcept;
    Program &operator=(Program &&o) noexcept;

    /** Allocate a fresh scalar virtual register. */
    uint32_t newReg() { return next_reg_++; }

    /** Allocate a fresh vector virtual register (separate id space). */
    uint32_t newVReg() { return next_vreg_++ | kVRegBit; }

    /** True when @p reg names a vector register. */
    static bool isVReg(uint32_t reg)
    {
        return reg != kNoReg && (reg & kVRegBit) != 0;
    }

    /** Append one micro-op, returning its index. */
    size_t push(const Uop &u);

    /**
     * Element width (bits) stamped onto subsequently pushed uops: push
     * sets each uop's sew and scales its byte count by sew/32 (memory
     * traffic shrinks with the element). The default 32 leaves pushed
     * uops exactly as built — the float32 streams are byte-identical
     * to the pre-format-axis ones. assemble() bypasses this (decoded
     * streams already carry their widths).
     */
    void setEmitWidth(uint16_t sew_bits);
    uint16_t emitWidth() const { return emit_sew_; }

    /**
     * Pre-size the uop and region storage so emission appends without
     * reallocating (the ProgramCache sizes fresh emissions from the
     * previous stream of the same shape).
     */
    void reserve(size_t uop_capacity, size_t region_capacity);

    /** Open a kernel region by interned id; regions must not nest. */
    void beginKernel(KernelId id);

    /** Convenience overload interning @p name (cold path). */
    void beginKernel(std::string_view name)
    {
        beginKernel(internKernel(name));
    }

    /** Close the currently open region. */
    void endKernel();

    /** True while a kernel region is open. */
    bool kernelOpen() const { return kernel_open_; }

    /** All micro-ops in program order. */
    const std::vector<Uop> &uops() const { return uops_; }

    /**
     * Columnar view of the stream. The SoA store (and the decoded
     * class column) is built on first use and cached until the next
     * mutation; safe to call concurrently from replay threads on a
     * frozen Program. Pointers in the returned view stay valid while
     * this Program is alive and unmodified.
     */
    UopStreamView stream() const;

    /** Process-unique identity of this object (column-memo key). */
    uint64_t id() const { return id_; }

    /**
     * Rebuild a Program from decoded parts (the disk-cache loader).
     * Regions must already be validated (ordered, in bounds).
     */
    static Program assemble(std::vector<Uop> uops,
                            std::vector<KernelRegion> kernels,
                            uint32_t next_reg, uint32_t next_vreg);

    /** Closed kernel regions in program order. */
    const std::vector<KernelRegion> &kernels() const { return kernels_; }

    /** Highest scalar virtual register id allocated (exclusive). */
    uint32_t scalarRegCount() const { return next_reg_; }

    /** Highest vector virtual register id allocated (exclusive). */
    uint32_t vectorRegCount() const { return next_vreg_; }

    /** Total floating-point operations (vector ops weighted by VL). */
    double flops() const;

    /** Count of uops matching a predicate class. */
    size_t countScalar() const;
    size_t countVector() const;
    size_t countRocc() const;

    /** Drop all uops/regions but keep register counters monotonic. */
    void clear();

    /** Number of uops. */
    size_t size() const { return uops_.size(); }

  private:
    static constexpr uint32_t kVRegBit = 0x80000000u;

    static uint64_t nextId();
    void invalidateColumns();
    UopStreamView makeView() const; ///< requires cols_ to be built

    std::vector<Uop> uops_;
    std::vector<KernelRegion> kernels_;
    uint32_t next_reg_ = 1;
    uint32_t next_vreg_ = 1;
    uint16_t emit_sew_ = 32;
    bool kernel_open_ = false;
    uint64_t id_ = nextId();

    /** Lazily-built SoA mirror of uops_ (see stream()). */
    mutable std::unique_ptr<UopColumns> cols_;
    mutable std::mutex cols_mu_;
    mutable std::atomic<bool> cols_valid_{false};
};

/**
 * Cycles attributed per kernel region, produced by every timing model.
 * Regions with the same name (e.g. forward_pass_1 across horizon
 * steps and ADMM iterations) are accumulated.
 */
struct KernelCycles
{
    std::string name;
    uint64_t cycles = 0;
    uint64_t invocations = 0;
};

/** Merge per-region cycle samples into per-name totals. */
std::vector<KernelCycles>
accumulateKernelCycles(const std::vector<KernelRegion> &regions,
                       const std::vector<uint64_t> &region_cycles);

} // namespace rtoc::isa

#endif // RTOC_ISA_PROGRAM_HH
