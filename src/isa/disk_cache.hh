/**
 * @file
 * Versioned on-disk cache for emitted micro-op programs and timing
 * calibrations.
 *
 * Emission and calibration are data-independent and deterministic, so
 * their results are valid across processes: persisting them means
 * separate bench binaries and CI re-runs stop re-emitting ~1e5-uop
 * streams and re-fitting cycle models at startup. Entries are keyed
 * by (namespace, key string) and stamped with a build fingerprint —
 * a hash over the library sources — so a rebuild that could change
 * emission or timing invalidates every entry. Corrupt, truncated or
 * fingerprint-mismatched files are rejected, deleted and regenerated.
 *
 * Environment controls:
 *   RTOC_CACHE=0       disable persistence entirely
 *   RTOC_CACHE_DIR=d   cache root (default $XDG_CACHE_HOME/rtoc or
 *                      $HOME/.cache/rtoc; disabled when neither is
 *                      set)
 *
 * Writes are atomic (temp file + rename), so concurrent processes
 * and ctest workers may share one cache directory.
 */

#ifndef RTOC_ISA_DISK_CACHE_HH
#define RTOC_ISA_DISK_CACHE_HH

#include <cstdint>
#include <cstring>
#include <mutex>
#include <optional>
#include <string>
#include <type_traits>

#include "isa/program.hh"

namespace rtoc::isa {

/** Counters for disk-cache effectiveness reporting. */
struct DiskCacheStats
{
    uint64_t hits = 0;     ///< payloads served from disk
    uint64_t misses = 0;   ///< keys not present on disk
    uint64_t writes = 0;   ///< payloads persisted
    uint64_t rejected = 0; ///< corrupt/mismatched files discarded
};

/**
 * Library build fingerprint: cache-format schema plus the source hash
 * injected by the build system (RTOC_BUILD_FINGERPRINT).
 */
const std::string &buildFingerprint();

/** Keyed, fingerprinted blob store rooted at one directory. */
class DiskCache
{
  public:
    /** Disabled cache: every get misses, every put drops. */
    DiskCache() = default;

    /** Cache rooted at @p dir (created on first put). */
    explicit DiskCache(std::string dir,
                       std::string fingerprint = buildFingerprint());

    /** Build from RTOC_CACHE / RTOC_CACHE_DIR / XDG / HOME. */
    static DiskCache fromEnv();

    /** Process-wide cache, configured from the environment once. */
    static DiskCache &global();

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }
    const std::string &fingerprint() const { return fp_; }

    /**
     * Payload stored under (@p ns, @p key); nullopt on miss. A file
     * that fails validation (bad magic, foreign fingerprint, key
     * collision, checksum mismatch) is deleted so the caller's
     * regeneration overwrites it.
     */
    std::optional<std::string> get(const std::string &ns,
                                   const std::string &key) const;

    /** Atomically persist @p payload under (@p ns, @p key). */
    void put(const std::string &ns, const std::string &key,
             const std::string &payload) const;

    /** Snapshot of the counters. */
    DiskCacheStats stats() const;

    /** On-disk path of (@p ns, @p key) — tests corrupt it directly. */
    std::string pathFor(const std::string &ns,
                        const std::string &key) const;

  private:
    std::string dir_;
    std::string fp_;
    mutable std::mutex mu_; ///< guards stats_ only
    mutable DiskCacheStats stats_;
};

/**
 * Minimal length-prefixed binary payload helpers shared by every
 * cache blob codec (programs here, calibrations in hil/timing.cc).
 * Reader is bounds-checked: any short read flips ok and returns
 * zero/empty, so codecs validate with one flag test.
 */
namespace blob {

template <typename T>
void
putRaw(std::string &out, const T &v)
{
    static_assert(std::is_trivially_copyable<T>::value, "raw pod only");
    out.append(reinterpret_cast<const char *>(&v), sizeof(T));
}

inline void
putStr(std::string &out, const std::string &s)
{
    putRaw<uint32_t>(out, static_cast<uint32_t>(s.size()));
    out.append(s);
}

struct Reader
{
    const char *p;
    size_t left;
    bool ok = true;

    explicit Reader(const std::string &s) : p(s.data()), left(s.size())
    {}

    template <typename T>
    T
    raw()
    {
        T v{};
        if (left < sizeof(T)) {
            ok = false;
            return v;
        }
        std::memcpy(&v, p, sizeof(T));
        p += sizeof(T);
        left -= sizeof(T);
        return v;
    }

    std::string
    str()
    {
        uint32_t n = raw<uint32_t>();
        if (!ok || left < n) {
            ok = false;
            return {};
        }
        std::string s(p, n);
        p += n;
        left -= n;
        return s;
    }
};

} // namespace blob

/** Serialize @p prog (stream, regions, counters) to a byte string. */
std::string encodeProgram(const Program &prog);

/**
 * Decode an encodeProgram payload; nullopt when malformed (kernel
 * names are re-interned, so ids are valid in this process).
 */
std::optional<Program> decodeProgram(const std::string &payload);

} // namespace rtoc::isa

#endif // RTOC_ISA_DISK_CACHE_HH
