#include "disk_cache.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sys/stat.h>
#include <type_traits>
#include <unistd.h>
#include <vector>

#include "common/logging.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

#if __has_include("rtoc_fingerprint.hh")
#include "rtoc_fingerprint.hh"
#endif
#ifndef RTOC_BUILD_FINGERPRINT
#define RTOC_BUILD_FINGERPRINT "dev"
#endif

namespace rtoc::isa {

namespace {

constexpr char kMagic[8] = {'R', 'T', 'O', 'C', 'C', 'H', 'E', '1'};
constexpr uint32_t kProgramPayloadVersion = 1;

uint64_t
fnv1a(const void *data, size_t n, uint64_t h = 0xcbf29ce484222325ull)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

using blob::putRaw;
using blob::putStr;
using blob::Reader;

/** mkdir -p. Returns false when a component cannot be created. */
bool
makeDirs(const std::string &dir)
{
    std::string partial;
    size_t i = 0;
    while (i <= dir.size()) {
        if (i == dir.size() || dir[i] == '/') {
            if (!partial.empty() && partial != "/") {
                if (::mkdir(partial.c_str(), 0755) != 0 &&
                    errno != EEXIST) {
                    return false;
                }
            }
            if (i < dir.size())
                partial += '/';
        } else {
            partial += dir[i];
        }
        ++i;
    }
    return true;
}

std::string
readFile(const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return {};
    std::string out;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

} // namespace

const std::string &
buildFingerprint()
{
    static const std::string fp =
        std::string("rtoc-cache-v1:") + RTOC_BUILD_FINGERPRINT;
    return fp;
}

DiskCache::DiskCache(std::string dir, std::string fingerprint)
    : dir_(std::move(dir)), fp_(std::move(fingerprint))
{
}

DiskCache
DiskCache::fromEnv()
{
    const char *toggle = std::getenv("RTOC_CACHE");
    if (toggle && std::string(toggle) == "0")
        return DiskCache();
    const char *dir = std::getenv("RTOC_CACHE_DIR");
    if (dir && *dir)
        return DiskCache(dir);
    const char *xdg = std::getenv("XDG_CACHE_HOME");
    if (xdg && *xdg)
        return DiskCache(std::string(xdg) + "/rtoc");
    const char *home = std::getenv("HOME");
    if (home && *home)
        return DiskCache(std::string(home) + "/.cache/rtoc");
    return DiskCache();
}

DiskCache &
DiskCache::global()
{
    static DiskCache *cache = [] {
        auto *c = new DiskCache(fromEnv());
        // Mirror the process-wide instance into the registry (cache
        // warmth shows up here: a warm CI re-run is all disk.hits).
        obs::Registry &reg = obs::Registry::global();
        reg.gauge("disk.hits", [c] { return c->stats().hits; });
        reg.gauge("disk.misses", [c] { return c->stats().misses; });
        reg.gauge("disk.writes", [c] { return c->stats().writes; });
        reg.gauge("disk.rejected", [c] { return c->stats().rejected; });
        return c;
    }();
    return *cache;
}

std::string
DiskCache::pathFor(const std::string &ns, const std::string &key) const
{
    uint64_t h = fnv1a(key.data(), key.size());
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(h));
    return dir_ + "/" + ns + "-" + hex + ".rtoc";
}

std::optional<std::string>
DiskCache::get(const std::string &ns, const std::string &key) const
{
    if (!enabled())
        return std::nullopt;
    RTOC_SPAN("disk.get", "cache");
    const std::string path = pathFor(ns, key);
    std::string file = readFile(path);
    if (file.empty()) {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.misses;
        return std::nullopt;
    }

    auto reject = [&]() -> std::optional<std::string> {
        ::remove(path.c_str());
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.rejected;
        return std::nullopt;
    };

    Reader r(file);
    char magic[sizeof(kMagic)];
    if (r.left < sizeof(magic))
        return reject();
    std::memcpy(magic, r.p, sizeof(magic));
    r.p += sizeof(magic);
    r.left -= sizeof(magic);
    if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        return reject();
    if (r.str() != fp_ || !r.ok)
        return reject();
    if (r.str() != ns || !r.ok)
        return reject();
    if (r.str() != key || !r.ok)
        return reject();
    uint64_t payload_len = r.raw<uint64_t>();
    // The length field itself is not checksummed; guard the
    // subtraction rather than the (overflowable) sum.
    if (!r.ok || payload_len > r.left ||
        r.left - payload_len < sizeof(uint64_t)) {
        return reject();
    }
    std::string payload(r.p, payload_len);
    r.p += payload_len;
    r.left -= payload_len;
    uint64_t want = r.raw<uint64_t>();
    if (!r.ok || fnv1a(payload.data(), payload.size()) != want)
        return reject();

    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.hits;
    return payload;
}

void
DiskCache::put(const std::string &ns, const std::string &key,
               const std::string &payload) const
{
    if (!enabled())
        return;
    RTOC_SPAN("disk.put", "cache");
    if (!makeDirs(dir_))
        return;

    std::string file;
    file.append(kMagic, sizeof(kMagic));
    putStr(file, fp_);
    putStr(file, ns);
    putStr(file, key);
    putRaw<uint64_t>(file, payload.size());
    file.append(payload);
    putRaw<uint64_t>(file, fnv1a(payload.data(), payload.size()));

    const std::string path = pathFor(ns, key);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return;
    size_t wrote = std::fwrite(file.data(), 1, file.size(), f);
    bool ok = std::fclose(f) == 0 && wrote == file.size();
    if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
        ::remove(tmp.c_str());
        return;
    }
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.writes;
}

DiskCacheStats
DiskCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

std::string
encodeProgram(const Program &prog)
{
    std::string out;
    const auto &uops = prog.uops();
    const auto &kernels = prog.kernels();
    putRaw<uint32_t>(out, kProgramPayloadVersion);
    putRaw<uint64_t>(out, uops.size());
    putRaw<uint64_t>(out, kernels.size());
    putRaw<uint32_t>(out, prog.scalarRegCount());
    putRaw<uint32_t>(out, prog.vectorRegCount());
    for (const Uop &u : uops) {
        putRaw<uint8_t>(out, static_cast<uint8_t>(u.kind));
        putRaw<uint32_t>(out, u.dst);
        putRaw<uint32_t>(out, u.src0);
        putRaw<uint32_t>(out, u.src1);
        putRaw<uint32_t>(out, u.src2);
        putRaw<uint32_t>(out, u.vl);
        putRaw<uint16_t>(out, u.sew);
        putRaw<uint16_t>(out, u.lmul8);
        putRaw<uint32_t>(out, u.bytes);
        putRaw<uint16_t>(out, u.rows);
        putRaw<uint16_t>(out, u.cols);
        putRaw<uint8_t>(out, u.taken);
    }
    // Regions carry their *names*: interned ids are process-local.
    for (const KernelRegion &k : kernels) {
        putStr(out, k.name());
        putRaw<uint64_t>(out, k.begin);
        putRaw<uint64_t>(out, k.end);
    }
    return out;
}

std::optional<Program>
decodeProgram(const std::string &payload)
{
    Reader r(payload);
    if (r.raw<uint32_t>() != kProgramPayloadVersion || !r.ok)
        return std::nullopt;
    uint64_t n_uops = r.raw<uint64_t>();
    uint64_t n_kernels = r.raw<uint64_t>();
    uint32_t next_reg = r.raw<uint32_t>();
    uint32_t next_vreg = r.raw<uint32_t>();
    if (!r.ok)
        return std::nullopt;

    // Guard against absurd counts before allocating (divide, not
    // multiply: a crafted 64-bit count must not overflow the check).
    constexpr uint64_t kUopRecordBytes = 1 + 4 * 4 + 4 + 2 + 2 + 4 +
                                         2 + 2 + 1;
    constexpr uint64_t kKernelRecordBytes = 4 + 8 + 8; // min (name "")
    if (n_uops > r.left / kUopRecordBytes)
        return std::nullopt;
    if (n_kernels > (r.left - n_uops * kUopRecordBytes) /
                        kKernelRecordBytes) {
        return std::nullopt;
    }

    std::vector<Uop> uops(static_cast<size_t>(n_uops));
    for (Uop &u : uops) {
        u.kind = static_cast<UopKind>(r.raw<uint8_t>());
        u.dst = r.raw<uint32_t>();
        u.src0 = r.raw<uint32_t>();
        u.src1 = r.raw<uint32_t>();
        u.src2 = r.raw<uint32_t>();
        u.vl = r.raw<uint32_t>();
        u.sew = r.raw<uint16_t>();
        u.lmul8 = r.raw<uint16_t>();
        u.bytes = r.raw<uint32_t>();
        u.rows = r.raw<uint16_t>();
        u.cols = r.raw<uint16_t>();
        u.taken = r.raw<uint8_t>();
        if (!r.ok ||
            static_cast<uint8_t>(u.kind) >=
                static_cast<uint8_t>(UopKind::NumKinds)) {
            return std::nullopt;
        }
    }

    std::vector<KernelRegion> kernels;
    kernels.reserve(static_cast<size_t>(n_kernels));
    uint64_t prev_end = 0;
    for (uint64_t i = 0; i < n_kernels; ++i) {
        std::string name = r.str();
        uint64_t begin = r.raw<uint64_t>();
        uint64_t end = r.raw<uint64_t>();
        if (!r.ok || name.empty() || begin > end || end > n_uops ||
            begin < prev_end) {
            return std::nullopt;
        }
        prev_end = end;
        kernels.push_back(
            {internKernel(name), static_cast<size_t>(begin),
             static_cast<size_t>(end)});
    }
    if (r.left != 0)
        return std::nullopt;

    return Program::assemble(std::move(uops), std::move(kernels),
                             next_reg, next_vreg);
}

} // namespace rtoc::isa
