/**
 * @file
 * Columnar (SoA) view of a micro-op stream, plus the shared frontend
 * decode.
 *
 * The per-uop timing loops replay ~1e5-uop streams millions of times
 * across the scenario grid; striding over fat AoS Uop structs pays for
 * every field whether or not the model reads it. A UopStreamView
 * exposes the stream as parallel arrays so each model touches only the
 * columns it needs — the scalar pipelines read kind/class/registers
 * (~17 of 32 bytes per uop), the accelerator wrappers additionally
 * read their element-count/size columns for coprocessor ops only.
 *
 * The `cls` column is the shared batched frontend: decodeClass() folds
 * the per-uop kind switches (is-scalar, FPU/mem-port usage, latency
 * family) into one byte, computed once per cached Program and reused
 * by every TimingModel run over it. Models turn the latency class into
 * cycles through a small per-run table built from their config.
 */

#ifndef RTOC_ISA_UOP_STREAM_HH
#define RTOC_ISA_UOP_STREAM_HH

#include <cstddef>
#include <cstdint>

#include "isa/uop.hh"

namespace rtoc::isa {

class Program;

/**
 * Model-independent latency family of a uop kind. Every scalar kind
 * maps to the class whose per-model latency it shares; FpCmp and
 * FpMove share a latency but differ in FPU occupancy, so they stay
 * distinct classes.
 */
enum class LatClass : uint8_t {
    IntAlu,  ///< single-cycle integer/address arithmetic
    IntMul,  ///< integer multiply
    Fp,      ///< pipelined FPU op (add/mul/fma/minmax/abs)
    FpDiv,   ///< unpipelined divide
    FpCmp,   ///< comparison (2 cycles, occupies the FPU)
    FpMove,  ///< move/transfer (2 cycles, bypasses the FPU)
    Load,
    Store,
    Branch,
    Coproc,  ///< vector or RoCC kind, executed by a coprocessor
    FpNarrow, ///< pipelined FPU op at sub-32-bit element width
    NumClasses,
};

constexpr size_t kNumLatClasses =
    static_cast<size_t>(LatClass::NumClasses);

/** Class byte layout: LatClass in the low nibble plus port flags. */
constexpr uint8_t kClsLatMask = 0x0f;
/** Occupies an FPU issue slot on an in-order core. */
constexpr uint8_t kClsFp = 0x10;
/** Occupies a memory port. */
constexpr uint8_t kClsMem = 0x20;
/** Executed by the scalar pipeline (isScalar(kind)). */
constexpr uint8_t kClsScalar = 0x40;

/** Decode @p k into its class byte (pure function of the kind). */
uint8_t decodeClass(UopKind k);

/**
 * Width-aware decode: pipelined FPU kinds at sub-32-bit element width
 * map to LatClass::FpNarrow (same port flags), so per-run latency
 * tables can price narrow arithmetic separately. At sew == 32 this is
 * exactly decodeClass(k) — the float32 class column is unchanged.
 */
uint8_t decodeClass(UopKind k, uint16_t sew);

/** LatClass stored in a class byte. */
inline LatClass
latClassOf(uint8_t cls)
{
    return static_cast<LatClass>(cls & kClsLatMask);
}

/**
 * Read-only columnar view of one Program's uop stream. Obtained from
 * Program::stream(); pointers alias the Program's column store and
 * stay valid while the Program is alive and unmodified. `program`
 * links back to the owner for kernel-region attribution.
 */
struct UopStreamView
{
    size_t n = 0;
    const UopKind *kind = nullptr;
    const uint8_t *cls = nullptr; ///< decodeClass(kind[i]), precomputed
    const uint32_t *dst = nullptr;
    const uint32_t *src0 = nullptr;
    const uint32_t *src1 = nullptr;
    const uint32_t *src2 = nullptr;
    const uint32_t *vl = nullptr;
    const uint16_t *sew = nullptr;
    const uint16_t *lmul8 = nullptr;
    const uint32_t *bytes = nullptr;
    const uint16_t *rows = nullptr;
    const uint16_t *cols = nullptr;
    const uint8_t *taken = nullptr;
    const Program *program = nullptr;

    size_t size() const { return n; }
};

} // namespace rtoc::isa

#endif // RTOC_ISA_UOP_STREAM_HH
