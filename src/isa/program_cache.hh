/**
 * @file
 * Memoization of emitted micro-op streams.
 *
 * TinyMPC emission is data-independent: given a backend configuration,
 * a mapping style, problem dimensions, a horizon and a forced
 * iteration count, the solver emits bit-identical streams regardless
 * of the numerical state it solves from. Re-emitting the ~1e5-uop
 * stream on every calibration or design-point evaluation is therefore
 * pure waste — the ProgramCache emits once per distinct key and hands
 * out shared, immutable replays.
 *
 * Thread safety: getOrEmit may be called concurrently from sweep
 * workers. Each key owns a per-entry lock held across its (one-time)
 * emission, so racing workers emit a key exactly once while distinct
 * keys emit in parallel; hits return immediately with a shared_ptr
 * and never touch the emitter.
 */

#ifndef RTOC_ISA_PROGRAM_CACHE_HH
#define RTOC_ISA_PROGRAM_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "isa/program.hh"

namespace rtoc::isa {

/** Counters for cache-effectiveness reporting. */
struct ProgramCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t cachedUops = 0; ///< total uops held by cached programs
    size_t entries = 0;
};

/** Keyed store of immutable emitted Programs. */
class ProgramCache
{
  public:
    /** Emitter callback: fill @p prog with the stream for a key. */
    using Emitter = std::function<void(Program &prog)>;

    /**
     * Return the Program cached under @p key, emitting it via
     * @p emit on the first request. The returned Program is shared
     * and must not be mutated.
     */
    std::shared_ptr<const Program> getOrEmit(const std::string &key,
                                             const Emitter &emit);

    /** Look up @p key without emitting (nullptr on miss). */
    std::shared_ptr<const Program> lookup(const std::string &key) const;

    /** Drop all entries and reset statistics. */
    void clear();

    /** Snapshot of hit/miss/footprint counters. */
    ProgramCacheStats stats() const;

    /** Process-wide cache used by the benches and HIL calibration. */
    static ProgramCache &global();

  private:
    /** One cached key: its own emission lock plus the frozen stream. */
    struct Entry
    {
        std::mutex mu;
        std::shared_ptr<const Program> prog;
    };

    mutable std::mutex mu_; ///< guards map_ and the counters only
    std::unordered_map<std::string, std::shared_ptr<Entry>> map_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace rtoc::isa

#endif // RTOC_ISA_PROGRAM_CACHE_HH
