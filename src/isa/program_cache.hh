/**
 * @file
 * Memoization of emitted micro-op streams.
 *
 * TinyMPC emission is data-independent: given a backend configuration,
 * a mapping style, problem dimensions, a horizon and a forced
 * iteration count, the solver emits bit-identical streams regardless
 * of the numerical state it solves from. Re-emitting the ~1e5-uop
 * stream on every calibration or design-point evaluation is therefore
 * pure waste — the ProgramCache emits once per distinct key and hands
 * out shared, immutable replays.
 *
 * Thread safety: getOrEmit may be called concurrently from sweep
 * workers. Each key owns a per-entry lock held across its (one-time)
 * emission, so racing workers emit a key exactly once while distinct
 * keys emit in parallel; hits return immediately with a shared_ptr
 * and never touch the emitter.
 *
 * When constructed over a DiskCache, a first-miss consults the disk
 * before running the emitter and persists fresh emissions, so a warm
 * process (second bench binary, CI re-run) fills its in-memory map
 * with zero re-emissions. The emissions counter tracks how often the
 * emitter actually ran.
 */

#ifndef RTOC_ISA_PROGRAM_CACHE_HH
#define RTOC_ISA_PROGRAM_CACHE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "isa/program.hh"

namespace rtoc::isa {

class DiskCache;

/** Counters for cache-effectiveness reporting. */
struct ProgramCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t emissions = 0; ///< emitter invocations (disk hits skip it)
    uint64_t diskHits = 0;  ///< first-misses served from disk
    uint64_t cachedUops = 0; ///< total uops held by cached programs
    size_t entries = 0;
};

/** Keyed store of immutable emitted Programs. */
class ProgramCache
{
  public:
    /** Emitter callback: fill @p prog with the stream for a key. */
    using Emitter = std::function<void(Program &prog)>;

    /** In-memory cache, optionally backed by @p disk (not owned). */
    explicit ProgramCache(const DiskCache *disk = nullptr)
        : disk_(disk)
    {}

    /**
     * Return the Program cached under @p key, emitting it via
     * @p emit on the first request. The returned Program is shared
     * and must not be mutated.
     */
    std::shared_ptr<const Program> getOrEmit(const std::string &key,
                                             const Emitter &emit);

    /** Look up @p key without emitting (nullptr on miss). */
    std::shared_ptr<const Program> lookup(const std::string &key) const;

    /** Drop all entries and reset statistics. */
    void clear();

    /** Snapshot of hit/miss/footprint counters. */
    ProgramCacheStats stats() const;

    /**
     * Process-wide cache used by the benches and HIL calibration. Its
     * counters (and only its — tests build private instances) are
     * mirrored into the obs::Registry as "prog_cache.*" gauges.
     */
    static ProgramCache &global();

  private:
    /** One cached key: its own emission lock plus the frozen stream. */
    struct Entry
    {
        std::mutex mu;
        std::shared_ptr<const Program> prog;
    };

    const DiskCache *disk_ = nullptr;
    mutable std::mutex mu_; ///< guards map_ only
    std::unordered_map<std::string, std::shared_ptr<Entry>> map_;
    /** Relaxed atomics: counters are bumped from sweep workers and
     *  read by stats()/registry gauges without taking mu_. */
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> emissions_{0};
    std::atomic<uint64_t> disk_hits_{0};
};

} // namespace rtoc::isa

#endif // RTOC_ISA_PROGRAM_CACHE_HH
