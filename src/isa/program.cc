#include "program.hh"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"

namespace rtoc::isa {

namespace {

/**
 * Process-wide kernel-name interner. Names are interned a handful of
 * times at emitter start-up (static locals in the solver), so one
 * mutex is plenty; lookups by id go through a std::deque so returned
 * string references stay stable as the table grows.
 */
struct Interner
{
    std::mutex mu;
    std::unordered_map<std::string, KernelId> ids;
    std::deque<std::string> names;
};

Interner &
interner()
{
    static Interner in;
    return in;
}

} // namespace

KernelId
internKernel(std::string_view name)
{
    if (name.empty())
        rtoc_panic("internKernel: empty kernel name");
    Interner &in = interner();
    std::lock_guard<std::mutex> lk(in.mu);
    auto it = in.ids.find(std::string(name));
    if (it != in.ids.end())
        return it->second;
    KernelId id = static_cast<KernelId>(in.names.size());
    in.names.emplace_back(name);
    in.ids.emplace(in.names.back(), id);
    return id;
}

const std::string &
kernelName(KernelId id)
{
    Interner &in = interner();
    std::lock_guard<std::mutex> lk(in.mu);
    if (id >= in.names.size())
        rtoc_panic("kernelName: unknown kernel id %u", id);
    return in.names[id];
}

size_t
internedKernelCount()
{
    Interner &in = interner();
    std::lock_guard<std::mutex> lk(in.mu);
    return in.names.size();
}

uint64_t
Program::nextId()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

Program::Program(const Program &o)
    : uops_(o.uops_), kernels_(o.kernels_), next_reg_(o.next_reg_),
      next_vreg_(o.next_vreg_), emit_sew_(o.emit_sew_),
      kernel_open_(o.kernel_open_)
{
}

Program &
Program::operator=(const Program &o)
{
    if (this == &o)
        return *this;
    uops_ = o.uops_;
    kernels_ = o.kernels_;
    next_reg_ = o.next_reg_;
    next_vreg_ = o.next_vreg_;
    emit_sew_ = o.emit_sew_;
    kernel_open_ = o.kernel_open_;
    invalidateColumns();
    return *this;
}

Program::Program(Program &&o) noexcept
    : uops_(std::move(o.uops_)), kernels_(std::move(o.kernels_)),
      next_reg_(o.next_reg_), next_vreg_(o.next_vreg_),
      emit_sew_(o.emit_sew_), kernel_open_(o.kernel_open_)
{
    o.invalidateColumns();
}

Program &
Program::operator=(Program &&o) noexcept
{
    if (this == &o)
        return *this;
    uops_ = std::move(o.uops_);
    kernels_ = std::move(o.kernels_);
    next_reg_ = o.next_reg_;
    next_vreg_ = o.next_vreg_;
    emit_sew_ = o.emit_sew_;
    kernel_open_ = o.kernel_open_;
    invalidateColumns();
    o.invalidateColumns();
    return *this;
}

void
Program::invalidateColumns()
{
    cols_valid_.store(false, std::memory_order_release);
}

UopStreamView
Program::makeView() const
{
    const UopColumns &c = *cols_;
    UopStreamView v;
    v.n = c.kind.size();
    v.kind = c.kind.data();
    v.cls = c.cls.data();
    v.dst = c.dst.data();
    v.src0 = c.src0.data();
    v.src1 = c.src1.data();
    v.src2 = c.src2.data();
    v.vl = c.vl.data();
    v.sew = c.sew.data();
    v.lmul8 = c.lmul8.data();
    v.bytes = c.bytes.data();
    v.rows = c.rows.data();
    v.cols = c.cols.data();
    v.taken = c.taken.data();
    v.program = this;
    return v;
}

UopStreamView
Program::stream() const
{
    // Fast path: columns already mirror the stream. The acquire pairs
    // with the release below so a replay thread that observes the
    // flag also observes the filled arrays.
    if (cols_valid_.load(std::memory_order_acquire))
        return makeView();

    std::lock_guard<std::mutex> lk(cols_mu_);
    if (!cols_valid_.load(std::memory_order_relaxed)) {
        if (!cols_)
            cols_ = std::make_unique<UopColumns>();
        UopColumns &c = *cols_;
        const size_t n = uops_.size();
        c.kind.resize(n);
        c.cls.resize(n);
        c.dst.resize(n);
        c.src0.resize(n);
        c.src1.resize(n);
        c.src2.resize(n);
        c.vl.resize(n);
        c.sew.resize(n);
        c.lmul8.resize(n);
        c.bytes.resize(n);
        c.rows.resize(n);
        c.cols.resize(n);
        c.taken.resize(n);
        for (size_t i = 0; i < n; ++i) {
            const Uop &u = uops_[i];
            c.kind[i] = u.kind;
            c.cls[i] = decodeClass(u.kind, u.sew);
            c.dst[i] = u.dst;
            c.src0[i] = u.src0;
            c.src1[i] = u.src1;
            c.src2[i] = u.src2;
            c.vl[i] = u.vl;
            c.sew[i] = u.sew;
            c.lmul8[i] = u.lmul8;
            c.bytes[i] = u.bytes;
            c.rows[i] = u.rows;
            c.cols[i] = u.cols;
            c.taken[i] = u.taken;
        }
        cols_valid_.store(true, std::memory_order_release);
    }
    return makeView();
}

Program
Program::assemble(std::vector<Uop> uops, std::vector<KernelRegion> kernels,
                  uint32_t next_reg, uint32_t next_vreg)
{
    Program p;
    p.uops_ = std::move(uops);
    p.kernels_ = std::move(kernels);
    p.next_reg_ = next_reg;
    p.next_vreg_ = next_vreg;
    return p;
}

size_t
Program::push(const Uop &u)
{
    if (emit_sew_ != 32) {
        Uop w = u;
        w.sew = emit_sew_;
        if (w.bytes)
            w.bytes = std::max<uint32_t>(
                1, w.bytes * emit_sew_ / 32);
        uops_.push_back(w);
    } else {
        uops_.push_back(u);
    }
    if (cols_valid_.load(std::memory_order_relaxed))
        invalidateColumns();
    return uops_.size() - 1;
}

void
Program::setEmitWidth(uint16_t sew_bits)
{
    if (sew_bits != 32 && sew_bits != 16 && sew_bits != 8)
        rtoc_panic("setEmitWidth: unsupported element width %u",
                   sew_bits);
    emit_sew_ = sew_bits;
}

void
Program::reserve(size_t uop_capacity, size_t region_capacity)
{
    uops_.reserve(uop_capacity);
    kernels_.reserve(region_capacity);
}

void
Program::beginKernel(KernelId id)
{
    if (kernel_open_) {
        rtoc_panic("beginKernel('%s'): region '%s' still open "
                   "(kernel regions must not nest)",
                   kernelName(id).c_str(),
                   kernelName(kernels_.back().id).c_str());
    }
    kernel_open_ = true;
    kernels_.push_back({id, uops_.size(), uops_.size()});
}

void
Program::endKernel()
{
    if (!kernel_open_)
        rtoc_panic("endKernel: no region open");
    kernel_open_ = false;
    kernels_.back().end = uops_.size();
}

double
Program::flops() const
{
    double total = 0.0;
    for (const auto &u : uops_) {
        double per = flopsPerElement(u.kind);
        if (per == 0.0)
            continue;
        if (isVector(u.kind))
            total += per * static_cast<double>(u.vl);
        else if (u.kind == UopKind::RoccCompute)
            total += 0.0; // counted explicitly below
        else
            total += per;
    }
    // Systolic compute: rows x cols tile MACs against mesh operand.
    for (const auto &u : uops_) {
        if (u.kind == UopKind::RoccCompute) {
            total += 2.0 * static_cast<double>(u.rows) *
                     static_cast<double>(u.cols);
        }
    }
    return total;
}

size_t
Program::countScalar() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isScalar(u.kind))
            ++n;
    return n;
}

size_t
Program::countVector() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isVector(u.kind))
            ++n;
    return n;
}

size_t
Program::countRocc() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isRocc(u.kind))
            ++n;
    return n;
}

void
Program::clear()
{
    if (kernel_open_) {
        rtoc_panic("Program::clear with kernel region '%s' still open",
                   kernelName(kernels_.back().id).c_str());
    }
    uops_.clear();
    kernels_.clear();
    invalidateColumns();
}

std::vector<KernelCycles>
accumulateKernelCycles(const std::vector<KernelRegion> &regions,
                       const std::vector<uint64_t> &region_cycles)
{
    if (regions.size() != region_cycles.size()) {
        rtoc_panic("kernel accounting mismatch: %zu regions, %zu samples",
                   regions.size(), region_cycles.size());
    }
    // Accumulate by dense interned id, then emit in name order so the
    // output matches the historical (map-ordered) behaviour.
    std::vector<KernelCycles> by_id;
    for (size_t i = 0; i < regions.size(); ++i) {
        KernelId id = regions[i].id;
        if (id >= by_id.size())
            by_id.resize(id + 1);
        auto &kc = by_id[id];
        if (kc.invocations == 0)
            kc.name = regions[i].name();
        kc.cycles += region_cycles[i];
        kc.invocations += 1;
    }
    std::vector<KernelCycles> out;
    out.reserve(by_id.size());
    for (auto &kc : by_id)
        if (kc.invocations > 0)
            out.push_back(std::move(kc));
    std::sort(out.begin(), out.end(),
              [](const KernelCycles &a, const KernelCycles &b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace rtoc::isa
