#include "program.hh"

#include <map>

#include "common/logging.hh"

namespace rtoc::isa {

size_t
Program::push(const Uop &u)
{
    uops_.push_back(u);
    return uops_.size() - 1;
}

void
Program::beginKernel(const std::string &name)
{
    if (kernel_open_)
        rtoc_panic("beginKernel('%s'): region already open", name.c_str());
    kernel_open_ = true;
    kernels_.push_back({name, uops_.size(), uops_.size()});
}

void
Program::endKernel()
{
    if (!kernel_open_)
        rtoc_panic("endKernel: no region open");
    kernel_open_ = false;
    kernels_.back().end = uops_.size();
}

double
Program::flops() const
{
    double total = 0.0;
    for (const auto &u : uops_) {
        double per = flopsPerElement(u.kind);
        if (per == 0.0)
            continue;
        if (isVector(u.kind))
            total += per * static_cast<double>(u.vl);
        else if (u.kind == UopKind::RoccCompute)
            total += 0.0; // counted explicitly below
        else
            total += per;
    }
    // Systolic compute: rows x cols tile MACs against mesh operand.
    for (const auto &u : uops_) {
        if (u.kind == UopKind::RoccCompute) {
            total += 2.0 * static_cast<double>(u.rows) *
                     static_cast<double>(u.cols);
        }
    }
    return total;
}

size_t
Program::countScalar() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isScalar(u.kind))
            ++n;
    return n;
}

size_t
Program::countVector() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isVector(u.kind))
            ++n;
    return n;
}

size_t
Program::countRocc() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isRocc(u.kind))
            ++n;
    return n;
}

void
Program::clear()
{
    uops_.clear();
    kernels_.clear();
    kernel_open_ = false;
}

std::vector<KernelCycles>
accumulateKernelCycles(const std::vector<KernelRegion> &regions,
                       const std::vector<uint64_t> &region_cycles)
{
    if (regions.size() != region_cycles.size()) {
        rtoc_panic("kernel accounting mismatch: %zu regions, %zu samples",
                   regions.size(), region_cycles.size());
    }
    std::map<std::string, KernelCycles> by_name;
    for (size_t i = 0; i < regions.size(); ++i) {
        auto &kc = by_name[regions[i].name];
        kc.name = regions[i].name;
        kc.cycles += region_cycles[i];
        kc.invocations += 1;
    }
    std::vector<KernelCycles> out;
    out.reserve(by_name.size());
    for (auto &kv : by_name)
        out.push_back(kv.second);
    return out;
}

} // namespace rtoc::isa
