#include "program.hh"

#include <algorithm>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"

namespace rtoc::isa {

namespace {

/**
 * Process-wide kernel-name interner. Names are interned a handful of
 * times at emitter start-up (static locals in the solver), so one
 * mutex is plenty; lookups by id go through a std::deque so returned
 * string references stay stable as the table grows.
 */
struct Interner
{
    std::mutex mu;
    std::unordered_map<std::string, KernelId> ids;
    std::deque<std::string> names;
};

Interner &
interner()
{
    static Interner in;
    return in;
}

} // namespace

KernelId
internKernel(std::string_view name)
{
    if (name.empty())
        rtoc_panic("internKernel: empty kernel name");
    Interner &in = interner();
    std::lock_guard<std::mutex> lk(in.mu);
    auto it = in.ids.find(std::string(name));
    if (it != in.ids.end())
        return it->second;
    KernelId id = static_cast<KernelId>(in.names.size());
    in.names.emplace_back(name);
    in.ids.emplace(in.names.back(), id);
    return id;
}

const std::string &
kernelName(KernelId id)
{
    Interner &in = interner();
    std::lock_guard<std::mutex> lk(in.mu);
    if (id >= in.names.size())
        rtoc_panic("kernelName: unknown kernel id %u", id);
    return in.names[id];
}

size_t
internedKernelCount()
{
    Interner &in = interner();
    std::lock_guard<std::mutex> lk(in.mu);
    return in.names.size();
}

size_t
Program::push(const Uop &u)
{
    uops_.push_back(u);
    return uops_.size() - 1;
}

void
Program::reserve(size_t uop_capacity, size_t region_capacity)
{
    uops_.reserve(uop_capacity);
    kernels_.reserve(region_capacity);
}

void
Program::beginKernel(KernelId id)
{
    if (kernel_open_) {
        rtoc_panic("beginKernel('%s'): region '%s' still open "
                   "(kernel regions must not nest)",
                   kernelName(id).c_str(),
                   kernelName(kernels_.back().id).c_str());
    }
    kernel_open_ = true;
    kernels_.push_back({id, uops_.size(), uops_.size()});
}

void
Program::endKernel()
{
    if (!kernel_open_)
        rtoc_panic("endKernel: no region open");
    kernel_open_ = false;
    kernels_.back().end = uops_.size();
}

double
Program::flops() const
{
    double total = 0.0;
    for (const auto &u : uops_) {
        double per = flopsPerElement(u.kind);
        if (per == 0.0)
            continue;
        if (isVector(u.kind))
            total += per * static_cast<double>(u.vl);
        else if (u.kind == UopKind::RoccCompute)
            total += 0.0; // counted explicitly below
        else
            total += per;
    }
    // Systolic compute: rows x cols tile MACs against mesh operand.
    for (const auto &u : uops_) {
        if (u.kind == UopKind::RoccCompute) {
            total += 2.0 * static_cast<double>(u.rows) *
                     static_cast<double>(u.cols);
        }
    }
    return total;
}

size_t
Program::countScalar() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isScalar(u.kind))
            ++n;
    return n;
}

size_t
Program::countVector() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isVector(u.kind))
            ++n;
    return n;
}

size_t
Program::countRocc() const
{
    size_t n = 0;
    for (const auto &u : uops_)
        if (isRocc(u.kind))
            ++n;
    return n;
}

void
Program::clear()
{
    if (kernel_open_) {
        rtoc_panic("Program::clear with kernel region '%s' still open",
                   kernelName(kernels_.back().id).c_str());
    }
    uops_.clear();
    kernels_.clear();
}

std::vector<KernelCycles>
accumulateKernelCycles(const std::vector<KernelRegion> &regions,
                       const std::vector<uint64_t> &region_cycles)
{
    if (regions.size() != region_cycles.size()) {
        rtoc_panic("kernel accounting mismatch: %zu regions, %zu samples",
                   regions.size(), region_cycles.size());
    }
    // Accumulate by dense interned id, then emit in name order so the
    // output matches the historical (map-ordered) behaviour.
    std::vector<KernelCycles> by_id;
    for (size_t i = 0; i < regions.size(); ++i) {
        KernelId id = regions[i].id;
        if (id >= by_id.size())
            by_id.resize(id + 1);
        auto &kc = by_id[id];
        if (kc.invocations == 0)
            kc.name = regions[i].name();
        kc.cycles += region_cycles[i];
        kc.invocations += 1;
    }
    std::vector<KernelCycles> out;
    out.reserve(by_id.size());
    for (auto &kc : by_id)
        if (kc.invocations > 0)
            out.push_back(std::move(kc));
    std::sort(out.begin(), out.end(),
              [](const KernelCycles &a, const KernelCycles &b) {
                  return a.name < b.name;
              });
    return out;
}

} // namespace rtoc::isa
