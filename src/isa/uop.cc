#include "uop.hh"

#include "common/logging.hh"
#include "isa/uop_stream.hh"

namespace rtoc::isa {

uint8_t
decodeClass(UopKind k)
{
    const auto cls = [](LatClass lc, uint8_t flags) -> uint8_t {
        return static_cast<uint8_t>(lc) | flags;
    };
    switch (k) {
      case UopKind::IntAlu:
        return cls(LatClass::IntAlu, kClsScalar);
      case UopKind::IntMul:
        return cls(LatClass::IntMul, kClsScalar);
      case UopKind::FpAdd:
      case UopKind::FpMul:
      case UopKind::FpFma:
      case UopKind::FpMinMax:
      case UopKind::FpAbs:
        return cls(LatClass::Fp, kClsScalar | kClsFp);
      case UopKind::FpDiv:
        return cls(LatClass::FpDiv, kClsScalar | kClsFp);
      case UopKind::FpCmp:
        return cls(LatClass::FpCmp, kClsScalar | kClsFp);
      case UopKind::FpMove:
        return cls(LatClass::FpMove, kClsScalar);
      case UopKind::Load:
        return cls(LatClass::Load, kClsScalar | kClsMem);
      case UopKind::Store:
        return cls(LatClass::Store, kClsScalar | kClsMem);
      case UopKind::Branch:
        return cls(LatClass::Branch, kClsScalar);
      default:
        return cls(LatClass::Coproc, 0);
    }
}

uint8_t
decodeClass(UopKind k, uint16_t sew)
{
    uint8_t c = decodeClass(k);
    if (sew < 32 && latClassOf(c) == LatClass::Fp)
        c = static_cast<uint8_t>(
            (c & ~kClsLatMask) |
            static_cast<uint8_t>(LatClass::FpNarrow));
    return c;
}

bool
isScalar(UopKind k)
{
    switch (k) {
      case UopKind::IntAlu:
      case UopKind::IntMul:
      case UopKind::FpAdd:
      case UopKind::FpMul:
      case UopKind::FpFma:
      case UopKind::FpDiv:
      case UopKind::FpMinMax:
      case UopKind::FpAbs:
      case UopKind::FpCmp:
      case UopKind::FpMove:
      case UopKind::Load:
      case UopKind::Store:
      case UopKind::Branch:
        return true;
      default:
        return false;
    }
}

bool
isVector(UopKind k)
{
    switch (k) {
      case UopKind::VSetVl:
      case UopKind::VLoad:
      case UopKind::VStore:
      case UopKind::VLoadStrided:
      case UopKind::VArith:
      case UopKind::VFma:
      case UopKind::VRed:
      case UopKind::VMove:
        return true;
      default:
        return false;
    }
}

bool
isRocc(UopKind k)
{
    switch (k) {
      case UopKind::RoccConfig:
      case UopKind::RoccMvin:
      case UopKind::RoccMvout:
      case UopKind::RoccPreload:
      case UopKind::RoccCompute:
      case UopKind::RoccFence:
        return true;
      default:
        return false;
    }
}

double
flopsPerElement(UopKind k)
{
    switch (k) {
      case UopKind::FpAdd:
      case UopKind::FpMul:
      case UopKind::FpMinMax:
      case UopKind::FpAbs:
      case UopKind::FpDiv:
        return 1.0;
      case UopKind::FpFma:
        return 2.0;
      case UopKind::VArith:
      case UopKind::VRed:
        return 1.0;
      case UopKind::VFma:
        return 2.0;
      default:
        return 0.0;
    }
}

const char *
uopName(UopKind k)
{
    switch (k) {
      case UopKind::IntAlu: return "int_alu";
      case UopKind::IntMul: return "int_mul";
      case UopKind::FpAdd: return "fp_add";
      case UopKind::FpMul: return "fp_mul";
      case UopKind::FpFma: return "fp_fma";
      case UopKind::FpDiv: return "fp_div";
      case UopKind::FpMinMax: return "fp_minmax";
      case UopKind::FpAbs: return "fp_abs";
      case UopKind::FpCmp: return "fp_cmp";
      case UopKind::FpMove: return "fp_move";
      case UopKind::Load: return "load";
      case UopKind::Store: return "store";
      case UopKind::Branch: return "branch";
      case UopKind::VSetVl: return "vsetvl";
      case UopKind::VLoad: return "vload";
      case UopKind::VStore: return "vstore";
      case UopKind::VLoadStrided: return "vload_strided";
      case UopKind::VArith: return "varith";
      case UopKind::VFma: return "vfma";
      case UopKind::VRed: return "vred";
      case UopKind::VMove: return "vmove";
      case UopKind::RoccConfig: return "rocc_config";
      case UopKind::RoccMvin: return "rocc_mvin";
      case UopKind::RoccMvout: return "rocc_mvout";
      case UopKind::RoccPreload: return "rocc_preload";
      case UopKind::RoccCompute: return "rocc_compute";
      case UopKind::RoccFence: return "rocc_fence";
      default:
        rtoc_panic("uopName: bad kind %d", static_cast<int>(k));
    }
}

Uop
Uop::scalar(UopKind k, uint32_t dst, uint32_t s0, uint32_t s1, uint32_t s2)
{
    Uop u;
    u.kind = k;
    u.dst = dst;
    u.src0 = s0;
    u.src1 = s1;
    u.src2 = s2;
    return u;
}

Uop
Uop::mem(UopKind k, uint32_t dst, uint32_t addr_reg, uint32_t bytes)
{
    Uop u;
    u.kind = k;
    u.dst = dst;
    u.src0 = addr_reg;
    u.bytes = bytes;
    return u;
}

Uop
Uop::vec(UopKind k, uint32_t dst, uint32_t s0, uint32_t s1, uint32_t vl,
         uint16_t lmul8)
{
    Uop u;
    u.kind = k;
    u.dst = dst;
    u.src0 = s0;
    u.src1 = s1;
    u.vl = vl;
    u.lmul8 = lmul8;
    return u;
}

Uop
Uop::rocc(UopKind k, uint16_t rows, uint16_t cols, uint32_t bytes)
{
    Uop u;
    u.kind = k;
    u.rows = rows;
    u.cols = cols;
    u.bytes = bytes;
    return u;
}

} // namespace rtoc::isa
