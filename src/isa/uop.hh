/**
 * @file
 * Micro-op intermediate representation.
 *
 * Every software mapping studied in the paper (naive matlib, optimized
 * scalar "Eigen", RVV library code, fused/unrolled RVV, Gemmini CISC
 * and fine-grained streams) is expressed as an explicit sequence of
 * micro-ops over virtual registers. The architecture timing models in
 * src/cpu, src/vector and src/systolic consume these sequences; the
 * *same* functional result is computed by matlib regardless of the
 * emitted stream, so optimizations change timing, never semantics.
 */

#ifndef RTOC_ISA_UOP_HH
#define RTOC_ISA_UOP_HH

#include <cstdint>
#include <string>

namespace rtoc::isa {

/** Sentinel meaning "no register operand". */
constexpr uint32_t kNoReg = 0xffffffffu;

/** Micro-op opcodes across the three backend ISAs. */
enum class UopKind : uint8_t {
    // --- Scalar RISC-V ---
    IntAlu,     ///< add/sub/shift/logic, address arithmetic
    IntMul,     ///< integer multiply (index scaling)
    FpAdd,      ///< fadd.s / fsub.s
    FpMul,      ///< fmul.s
    FpFma,      ///< fmadd.s (2 flops)
    FpDiv,      ///< fdiv.s (unpipelined)
    FpMinMax,   ///< fmin.s / fmax.s
    FpAbs,      ///< fsgnjx-based |x|
    FpCmp,      ///< comparison producing int flag
    FpMove,     ///< fmv / int<->fp transfer
    Load,       ///< scalar load (cache hit modelled)
    Store,      ///< scalar store
    Branch,     ///< conditional branch (loop back-edges)
    // --- RVV (Saturn) ---
    VSetVl,     ///< vsetvli: configure VL/SEW/LMUL
    VLoad,      ///< vle32.v unit-stride
    VStore,     ///< vse32.v unit-stride
    VLoadStrided, ///< vlse32.v (column access)
    VArith,     ///< vfadd/vfsub/vfmin/vfmax/vfmul (1 flop/element)
    VFma,       ///< vfmacc.vf / vfmacc.vv (2 flops/element)
    VRed,       ///< vfredmax/vfredsum -> scalar destination
    VMove,      ///< vfmv.f.s / vmv.v.x etc.
    // --- Gemmini RoCC ---
    RoccConfig,  ///< config_ex/config_ld/config_st
    RoccMvin,    ///< DRAM/L2 -> scratchpad
    RoccMvout,   ///< scratchpad/accumulator -> DRAM/L2
    RoccPreload, ///< preload mesh (B operand / output tile)
    RoccCompute, ///< compute.preloaded / compute.accumulate
    RoccFence,   ///< full fence: drain accelerator, order memory
    NumKinds,
};

/** True for kinds executed by the scalar pipeline. */
bool isScalar(UopKind k);

/** True for RVV kinds executed by the vector unit. */
bool isVector(UopKind k);

/** True for RoCC kinds executed by the systolic accelerator. */
bool isRocc(UopKind k);

/** Floating-point operations contributed by one instance of @p k. */
double flopsPerElement(UopKind k);

/** Short mnemonic for tracing. */
const char *uopName(UopKind k);

/**
 * One micro-op. Register identifiers are virtual (SSA-ish: emitters
 * allocate fresh ids for new values); models map them onto timing
 * state, not onto a finite architectural register file — register
 * pressure effects are instead reflected in *which* stream the
 * software mapping emits (spills appear as explicit Load/Store).
 */
struct Uop
{
    UopKind kind = UopKind::IntAlu;
    uint32_t dst = kNoReg;
    uint32_t src0 = kNoReg;
    uint32_t src1 = kNoReg;
    uint32_t src2 = kNoReg;

    /** Vector: active element count (set by the governing vsetvl). */
    uint32_t vl = 0;
    /** Vector: element width in bits (32 for float kernels). */
    uint16_t sew = 32;
    /** Vector: LMUL in eighths (8 == LMUL 1, 16 == LMUL 2, ...). */
    uint16_t lmul8 = 8;

    /** Memory traffic in bytes (Load/Store/mvin/mvout). */
    uint32_t bytes = 0;
    /** Systolic tile rows (RoccCompute/Preload) or pool window. */
    uint16_t rows = 0;
    /** Systolic tile cols. */
    uint16_t cols = 0;
    /** Taken-branch hint: 1 adds the front-end redirect bubble. */
    uint8_t taken = 0;

    /** Scalar op helper. */
    static Uop scalar(UopKind k, uint32_t dst, uint32_t s0 = kNoReg,
                      uint32_t s1 = kNoReg, uint32_t s2 = kNoReg);

    /** Scalar memory op helper (4-byte default width). */
    static Uop mem(UopKind k, uint32_t dst, uint32_t addr_reg,
                   uint32_t bytes = 4);

    /** Vector op helper. */
    static Uop vec(UopKind k, uint32_t dst, uint32_t s0, uint32_t s1,
                   uint32_t vl, uint16_t lmul8 = 8);

    /** RoCC op helper. */
    static Uop rocc(UopKind k, uint16_t rows, uint16_t cols,
                    uint32_t bytes = 0);
};

} // namespace rtoc::isa

#endif // RTOC_ISA_UOP_HH
