/**
 * @file
 * Schedule transforms over emitted micro-op streams.
 *
 * Emission hard-codes one loop structure per backend mapping; this
 * pass treats the emitted stream as a schedulable program (the
 * FreeTensor discipline applied to a trace IR). A SchedSpec names a
 * sequence of dependence-preserving permutations applied per kernel
 * region:
 *
 *  - Reorder(W): windowed list scheduling that interleaves
 *    independent dependence chains — within a lookahead window of W
 *    stream positions, a ready uop that does not consume the
 *    previously-scheduled uop's result is hoisted, breaking the
 *    back-to-back FP latency chains of serial GEMV accumulation;
 *  - Unroll(K): splits a region body into K contiguous chunks and
 *    round-robins ready uops across them — the classic
 *    unroll-and-interleave of K loop iterations, expressed on the
 *    flattened trace;
 *  - Fission: reorders a fused region body into phases by latency
 *    class (loads, then integer address arithmetic, then FP, then
 *    stores/branches), splitting a fused loop body back into the
 *    distributed loops it was fused from.
 *
 * Legality is derived from the register def/use chains of the decoded
 * columns: RAW/WAR/WAW edges per virtual register, conservative
 * memory ordering for scalar Load/Store (no address tracking), a
 * total order among coprocessor uops (vector-unit and RoCC state —
 * vsetvl contexts, queue occupancy, chaining, fences — is sequenced
 * through every coproc op), and a total order among branches. Uops
 * never cross kernel-region boundaries, so region uop counts and
 * attribution structure are preserved by construction. Transforms
 * permute the stream — they never add or drop uops — so functional
 * semantics (which live in matlib, not the trace) are untouched and
 * flops()/region invocation counts are invariant.
 */

#ifndef RTOC_ISA_SCHEDULE_HH
#define RTOC_ISA_SCHEDULE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/program.hh"

namespace rtoc::isa {

/** One schedule transform. */
enum class SchedKind : uint8_t {
    Reorder, ///< windowed chain-interleaving list schedule
    Unroll,  ///< K-chunk round-robin interleave
    Fission, ///< latency-class phase grouping
};

/** Printable transform name ("reorder", "unroll", "fission"). */
const char *schedKindName(SchedKind k);

/** One step of a schedule recipe. */
struct SchedStep
{
    SchedKind kind = SchedKind::Reorder;
    /** Window W (Reorder) or chunk count K (Unroll); unused for
     *  Fission. */
    uint16_t param = 0;

    bool operator==(const SchedStep &o) const
    {
        return kind == o.kind && param == o.param;
    }
};

/**
 * A schedule recipe: steps applied (in order) to every kernel-region
 * segment, plus optional per-region-name overrides discovered by the
 * searcher. Uops outside any kernel region keep their original order.
 * An empty spec is the identity schedule.
 */
struct SchedSpec
{
    std::vector<SchedStep> steps; ///< default for every region

    /** Region names whose step sequence differs from the default. */
    struct Override
    {
        std::string region;
        std::vector<SchedStep> steps;
    };
    std::vector<Override> overrides;

    bool
    empty() const
    {
        return steps.empty() && overrides.empty();
    }

    /** Steps effective for region @p name. */
    const std::vector<SchedStep> &stepsFor(const std::string &name) const;

    /** Compact human-readable form ("reorder8+fission; fp1=unroll2"). */
    std::string describe() const;
};

/** Serialize @p spec (versioned; DiskCache "sched" payload). */
std::string encodeSchedSpec(const SchedSpec &spec);

/** Decode an encodeSchedSpec payload; nullopt when malformed. */
std::optional<SchedSpec> decodeSchedSpec(const std::string &payload);

/**
 * Stable hex digest of @p spec — the schedule axis of ProgramCache
 * keys (scheduled and baseline streams must never alias). The empty
 * spec digests to "0".
 */
std::string schedSpecDigest(const SchedSpec &spec);

/** applySchedule result: the permuted program plus the permutation. */
struct ScheduleResult
{
    Program prog;
    /** perm[new_index] == old_index (identity outside regions). */
    std::vector<uint32_t> perm;
};

/**
 * Apply @p spec to @p base: per-region dependence-DAG list scheduling
 * under the legality model in the file comment. Deterministic — the
 * same (base, spec) always yields the same permutation. Regions keep
 * their [begin, end) index ranges, so attribution structure is
 * unchanged.
 */
ScheduleResult applySchedule(const Program &base, const SchedSpec &spec);

/**
 * Independent legality checker (test oracle, deliberately not sharing
 * the DAG builder): verifies @p perm is a region-local permutation of
 * @p base into @p sched that preserves, per register, the write order
 * and each read's observed writer, the coprocessor total order, the
 * branch total order, and the conservative scalar memory order. On
 * failure, fills @p why (when non-null) with a diagnostic.
 */
bool verifySchedule(const Program &base, const Program &sched,
                    const std::vector<uint32_t> &perm,
                    std::string *why = nullptr);

/**
 * The searcher's candidate recipes, cheapest first: three reorder
 * windows, two unroll factors, fission, and fission+reorder. The
 * identity (baseline) spec is not included — callers score it
 * separately.
 */
std::vector<SchedSpec> enumerateSchedSpecs();

} // namespace rtoc::isa

#endif // RTOC_ISA_SCHEDULE_HH
