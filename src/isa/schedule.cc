#include "isa/schedule.hh"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "common/logging.hh"
#include "isa/disk_cache.hh"
#include "isa/uop_stream.hh"

namespace rtoc::isa {

namespace {

constexpr uint32_t kNone = 0xffffffffu;

/** Segments larger than this keep their original order: the list
 *  scheduler is O(segment * ready-set) and kernel-region bodies are
 *  tens to hundreds of uops — a larger "region" means markers are
 *  misused and identity is the safe schedule. */
constexpr size_t kMaxSegment = 4096;

/**
 * Register def/use + ordering DAG over a whole program. Edges always
 * point from a lower original index to a higher one; succs may hold a
 * bounded number of duplicates (indegrees count multiplicity, so the
 * scheduler stays consistent).
 */
struct DepDag
{
    std::vector<std::vector<uint32_t>> succs;
};

DepDag
buildDag(const Program &base)
{
    const std::vector<Uop> &uops = base.uops();
    const size_t n = uops.size();
    DepDag dag;
    dag.succs.assign(n, {});

    auto add_edge = [&](uint32_t a, uint32_t b) {
        if (a == b || a == kNone)
            return;
        std::vector<uint32_t> &s = dag.succs[a];
        if (!s.empty() && s.back() == b)
            return; // adjacent-duplicate dedupe (cheap, common case)
        s.push_back(b);
    };

    // Per-register last writer + readers-since-last-write, split by
    // register file (scalar / vector share the id space minus the
    // vreg bit).
    std::vector<uint32_t> last_w[2];
    std::vector<std::vector<uint32_t>> readers[2];
    last_w[0].assign(base.scalarRegCount(), kNone);
    last_w[1].assign(base.vectorRegCount(), kNone);
    readers[0].resize(base.scalarRegCount());
    readers[1].resize(base.vectorRegCount());

    uint32_t last_coproc = kNone;
    uint32_t last_branch = kNone;
    uint32_t last_store = kNone;
    std::vector<uint32_t> loads_since_store;

    for (uint32_t i = 0; i < n; ++i) {
        const Uop &u = uops[i];
        const uint8_t cls = decodeClass(u.kind);

        for (uint32_t r : {u.src0, u.src1, u.src2}) {
            if (r == kNoReg)
                continue;
            const int f = Program::isVReg(r) ? 1 : 0;
            const uint32_t idx = r & 0x7fffffffu;
            if (idx >= last_w[f].size())
                continue;
            add_edge(last_w[f][idx], i); // RAW
            readers[f][idx].push_back(i);
        }
        if (u.dst != kNoReg) {
            const int f = Program::isVReg(u.dst) ? 1 : 0;
            const uint32_t idx = u.dst & 0x7fffffffu;
            if (idx < last_w[f].size()) {
                add_edge(last_w[f][idx], i); // WAW
                for (uint32_t rd : readers[f][idx])
                    add_edge(rd, i); // WAR
                readers[f][idx].clear();
                last_w[f][idx] = i;
            }
        }

        if (!(cls & kClsScalar)) {
            // Coprocessor state (vsetvl context, queue occupancy,
            // chaining, fences) is sequenced through every coproc op.
            add_edge(last_coproc, i);
            last_coproc = i;
            continue;
        }

        const LatClass lc = latClassOf(cls);
        if (lc == LatClass::Branch) {
            add_edge(last_branch, i);
            last_branch = i;
        } else if (lc == LatClass::Load) {
            add_edge(last_store, i);
            loads_since_store.push_back(i);
        } else if (lc == LatClass::Store) {
            add_edge(last_store, i);
            for (uint32_t ld : loads_since_store)
                add_edge(ld, i);
            loads_since_store.clear();
            last_store = i;
        }
    }
    return dag;
}

/** Fission phase rank of a class byte: loads, integer address
 *  arithmetic, compute (FP and coproc), stores, branches. */
int
classRank(uint8_t cls)
{
    if (!(cls & kClsScalar))
        return 2;
    switch (latClassOf(cls)) {
      case LatClass::Load: return 0;
      case LatClass::IntAlu:
      case LatClass::IntMul: return 1;
      case LatClass::Store: return 3;
      case LatClass::Branch: return 4;
      default: return 2; // FP families and moves
    }
}

/**
 * One list-scheduling pass over a region segment. @p ord holds the
 * segment's original uop indices in their current order (a contiguous
 * [begin, begin+m) range in some permutation); returns the new order.
 * Only DAG edges internal to the segment constrain the schedule —
 * edges into earlier / out of later segments are satisfied because
 * segments never reorder relative to each other.
 */
std::vector<uint32_t>
schedulePass(const std::vector<uint32_t> &ord, uint32_t begin,
             const DepDag &dag, const uint8_t *cls_col,
             const SchedStep &step)
{
    const size_t m = ord.size();
    const auto local = [&](uint32_t orig) { return orig - begin; };
    const auto in_seg = [&](uint32_t orig) {
        return orig >= begin && orig < begin + m;
    };

    // pos[local] = current position; indeg over internal edges.
    std::vector<uint32_t> pos(m), indeg(m, 0);
    for (size_t p = 0; p < m; ++p)
        pos[local(ord[p])] = static_cast<uint32_t>(p);
    for (size_t p = 0; p < m; ++p) {
        for (uint32_t s : dag.succs[ord[p]])
            if (in_seg(s))
                ++indeg[local(s)];
    }

    std::vector<uint32_t> ready; // locals, unsorted (picks scan)
    ready.reserve(m);
    for (uint32_t l = 0; l < m; ++l)
        if (indeg[l] == 0)
            ready.push_back(l);

    std::vector<uint8_t> done(m, 0);
    // hot[l] == k+1 when l consumes the value produced by the k-th
    // pick (Reorder avoids back-to-back dependent issue).
    std::vector<uint32_t> hot(m, 0);

    std::vector<uint32_t> out;
    out.reserve(m);
    size_t scan = 0;        // min position of any unscheduled item
    uint32_t rr_chunk = 0;  // Unroll round-robin cursor
    const uint32_t K = std::max<uint16_t>(step.param, 2);
    const uint32_t W = std::max<uint16_t>(step.param, 1);

    for (size_t k = 0; k < m; ++k) {
        while (scan < m && done[local(ord[scan])])
            ++scan;

        // Pick the best ready item for this step's priority.
        size_t pick_at = 0;
        {
            rtoc_assert(!ready.empty());
            uint64_t best_key = ~0ull;
            for (size_t r = 0; r < ready.size(); ++r) {
                const uint32_t l = ready[r];
                const uint64_t p = pos[l];
                uint64_t key = 0;
                switch (step.kind) {
                  case SchedKind::Reorder: {
                    // (beyond-window, depends-on-last-pick, pos):
                    // hoist an independent op from the window; fall
                    // back to stream order.
                    const uint64_t far = p >= scan + W ? 1 : 0;
                    const uint64_t dep = hot[l] == k ? 1 : 0;
                    key = (far << 63) | (dep << 62) | p;
                    break;
                  }
                  case SchedKind::Unroll: {
                    const uint64_t chunk =
                        (p * K) / static_cast<uint64_t>(m);
                    const uint64_t delta = (chunk + K - rr_chunk) % K;
                    key = (delta << 32) | p;
                    break;
                  }
                  case SchedKind::Fission: {
                    const uint64_t rank = static_cast<uint64_t>(
                        classRank(cls_col[begin + l]));
                    key = (rank << 32) | p;
                    break;
                  }
                }
                if (key < best_key) {
                    best_key = key;
                    pick_at = r;
                }
            }
        }

        const uint32_t l = ready[pick_at];
        ready[pick_at] = ready.back();
        ready.pop_back();
        done[l] = 1;
        out.push_back(begin + l);
        if (step.kind == SchedKind::Unroll)
            rr_chunk = static_cast<uint32_t>(
                           (static_cast<uint64_t>(pos[l]) * K) / m + 1) %
                       K;
        for (uint32_t s : dag.succs[begin + l]) {
            if (!in_seg(s))
                continue;
            const uint32_t sl = local(s);
            hot[sl] = static_cast<uint32_t>(k) + 1;
            if (--indeg[sl] == 0)
                ready.push_back(sl);
        }
    }
    return out;
}

void
putSteps(std::string &out, const std::vector<SchedStep> &steps)
{
    blob::putRaw<uint32_t>(out, static_cast<uint32_t>(steps.size()));
    for (const SchedStep &s : steps) {
        blob::putRaw<uint8_t>(out, static_cast<uint8_t>(s.kind));
        blob::putRaw<uint16_t>(out, s.param);
    }
}

bool
readSteps(blob::Reader &rd, std::vector<SchedStep> &steps)
{
    const uint32_t n = rd.raw<uint32_t>();
    if (!rd.ok || n > 64)
        return false;
    steps.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
        const uint8_t kind = rd.raw<uint8_t>();
        steps[i].param = rd.raw<uint16_t>();
        if (!rd.ok || kind > static_cast<uint8_t>(SchedKind::Fission))
            return false;
        steps[i].kind = static_cast<SchedKind>(kind);
    }
    return true;
}

std::string
describeSteps(const std::vector<SchedStep> &steps)
{
    if (steps.empty())
        return "identity";
    std::string s;
    for (const SchedStep &st : steps) {
        if (!s.empty())
            s += "+";
        s += schedKindName(st.kind);
        if (st.kind != SchedKind::Fission)
            s += std::to_string(st.param);
    }
    return s;
}

} // namespace

const char *
schedKindName(SchedKind k)
{
    switch (k) {
      case SchedKind::Reorder: return "reorder";
      case SchedKind::Unroll: return "unroll";
      case SchedKind::Fission: return "fission";
    }
    return "?";
}

const std::vector<SchedStep> &
SchedSpec::stepsFor(const std::string &name) const
{
    for (const Override &o : overrides)
        if (o.region == name)
            return o.steps;
    return steps;
}

std::string
SchedSpec::describe() const
{
    std::string s = describeSteps(steps);
    for (const Override &o : overrides)
        s += "; " + o.region + "=" + describeSteps(o.steps);
    return s;
}

std::string
encodeSchedSpec(const SchedSpec &spec)
{
    std::string out;
    blob::putRaw<uint32_t>(out, 1u); // payload version
    putSteps(out, spec.steps);
    blob::putRaw<uint32_t>(out,
                           static_cast<uint32_t>(spec.overrides.size()));
    for (const SchedSpec::Override &o : spec.overrides) {
        blob::putStr(out, o.region);
        putSteps(out, o.steps);
    }
    return out;
}

std::optional<SchedSpec>
decodeSchedSpec(const std::string &payload)
{
    blob::Reader rd(payload);
    if (rd.raw<uint32_t>() != 1u || !rd.ok)
        return std::nullopt;
    SchedSpec spec;
    if (!readSteps(rd, spec.steps))
        return std::nullopt;
    const uint32_t novr = rd.raw<uint32_t>();
    if (!rd.ok || novr > 4096)
        return std::nullopt;
    spec.overrides.resize(novr);
    for (uint32_t i = 0; i < novr; ++i) {
        spec.overrides[i].region = rd.str();
        if (!rd.ok || !readSteps(rd, spec.overrides[i].steps))
            return std::nullopt;
    }
    return rd.left == 0 ? std::optional<SchedSpec>(std::move(spec))
                        : std::nullopt;
}

std::string
schedSpecDigest(const SchedSpec &spec)
{
    if (spec.empty())
        return "0";
    const std::string e = encodeSchedSpec(spec);
    uint64_t h = 1469598103934665603ull;
    for (char c : e) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

ScheduleResult
applySchedule(const Program &base, const SchedSpec &spec)
{
    ScheduleResult res;
    const size_t n = base.size();
    res.perm.resize(n);
    std::iota(res.perm.begin(), res.perm.end(), 0u);
    if (spec.empty() || n == 0) {
        res.prog = base;
        return res;
    }

    const DepDag dag = buildDag(base);
    const uint8_t *cls_col = base.stream().cls;

    for (const KernelRegion &r : base.kernels()) {
        const size_t len = r.end - r.begin;
        if (len < 2 || len > kMaxSegment)
            continue;
        const std::vector<SchedStep> &steps = spec.stepsFor(r.name());
        if (steps.empty())
            continue;
        std::vector<uint32_t> ord(len);
        std::iota(ord.begin(), ord.end(),
                  static_cast<uint32_t>(r.begin));
        for (const SchedStep &step : steps)
            ord = schedulePass(ord, static_cast<uint32_t>(r.begin), dag,
                               cls_col, step);
        std::copy(ord.begin(), ord.end(), res.perm.begin() + r.begin);
    }

    std::vector<Uop> uops(n);
    for (size_t i = 0; i < n; ++i)
        uops[i] = base.uops()[res.perm[i]];
    res.prog = Program::assemble(std::move(uops), base.kernels(),
                                 base.scalarRegCount(),
                                 base.vectorRegCount());
    return res;
}

bool
verifySchedule(const Program &base, const Program &sched,
               const std::vector<uint32_t> &perm, std::string *why)
{
    auto fail = [&](const std::string &msg) {
        if (why)
            *why = msg;
        return false;
    };
    const size_t n = base.size();
    if (sched.size() != n || perm.size() != n)
        return fail("size mismatch");

    // Region-local permutation check.
    std::vector<uint8_t> seen(n, 0);
    for (uint32_t o : perm) {
        if (o >= n || seen[o])
            return fail("perm is not a permutation");
        seen[o] = 1;
    }
    if (sched.kernels().size() != base.kernels().size())
        return fail("region count changed");
    std::vector<uint32_t> region_of(n, kNone);
    for (size_t ri = 0; ri < base.kernels().size(); ++ri) {
        const KernelRegion &a = base.kernels()[ri];
        const KernelRegion &b = sched.kernels()[ri];
        if (a.id != b.id || a.begin != b.begin || a.end != b.end)
            return fail("region " + a.name() + " moved");
        for (size_t i = a.begin; i < a.end; ++i)
            region_of[i] = static_cast<uint32_t>(ri);
    }
    for (size_t i = 0; i < n; ++i) {
        if (region_of[i] != region_of[perm[i]])
            return fail(csprintf("uop %zu crossed a region boundary", i));
        if (region_of[i] == kNone && perm[i] != i)
            return fail(csprintf("uop %zu moved outside a region", i));
    }

    // Field-wise uop identity through the permutation.
    for (size_t i = 0; i < n; ++i) {
        const Uop &a = sched.uops()[i];
        const Uop &b = base.uops()[perm[i]];
        if (a.kind != b.kind || a.dst != b.dst || a.src0 != b.src0 ||
            a.src1 != b.src1 || a.src2 != b.src2 || a.vl != b.vl ||
            a.sew != b.sew || a.lmul8 != b.lmul8 ||
            a.bytes != b.bytes || a.rows != b.rows ||
            a.cols != b.cols || a.taken != b.taken) {
            return fail(csprintf("uop %zu payload diverged", i));
        }
    }

    // Observed-writer oracle on the base program: for each uop, the
    // original index of the write each source read observed, the
    // previous write its own write replaced, and the last store each
    // load/store followed.
    struct Obs
    {
        uint32_t src[3] = {kNone, kNone, kNone};
        uint32_t prev_write = kNone;
        uint32_t prev_store = kNone;
    };
    std::vector<Obs> obs(n);
    {
        std::vector<uint32_t> last_w[2];
        last_w[0].assign(base.scalarRegCount(), kNone);
        last_w[1].assign(base.vectorRegCount(), kNone);
        uint32_t last_store = kNone;
        for (uint32_t i = 0; i < n; ++i) {
            const Uop &u = base.uops()[i];
            const uint32_t srcs[3] = {u.src0, u.src1, u.src2};
            for (int s = 0; s < 3; ++s) {
                if (srcs[s] == kNoReg)
                    continue;
                const int f = Program::isVReg(srcs[s]) ? 1 : 0;
                const uint32_t idx = srcs[s] & 0x7fffffffu;
                if (idx < last_w[f].size())
                    obs[i].src[s] = last_w[f][idx];
            }
            if (u.dst != kNoReg) {
                const int f = Program::isVReg(u.dst) ? 1 : 0;
                const uint32_t idx = u.dst & 0x7fffffffu;
                if (idx < last_w[f].size()) {
                    obs[i].prev_write = last_w[f][idx];
                    last_w[f][idx] = i;
                }
            }
            const uint8_t cls = decodeClass(u.kind);
            if (cls & kClsScalar) {
                const LatClass lc = latClassOf(cls);
                if (lc == LatClass::Load || lc == LatClass::Store)
                    obs[i].prev_store = last_store;
                if (lc == LatClass::Store)
                    last_store = i;
            }
        }
    }

    // Replay the scheduled order against the oracle.
    std::vector<uint32_t> last_w[2];
    last_w[0].assign(base.scalarRegCount(), kNone);
    last_w[1].assign(base.vectorRegCount(), kNone);
    uint32_t last_store = kNone;
    uint32_t last_coproc = kNone;
    uint32_t last_branch = kNone;
    for (size_t i = 0; i < n; ++i) {
        const uint32_t o = perm[i];
        const Uop &u = base.uops()[o];
        const uint32_t srcs[3] = {u.src0, u.src1, u.src2};
        for (int s = 0; s < 3; ++s) {
            if (srcs[s] == kNoReg)
                continue;
            const int f = Program::isVReg(srcs[s]) ? 1 : 0;
            const uint32_t idx = srcs[s] & 0x7fffffffu;
            if (idx < last_w[f].size() &&
                last_w[f][idx] != obs[o].src[s]) {
                return fail(csprintf(
                    "uop %u reads reg %u from the wrong writer", o,
                    srcs[s]));
            }
        }
        if (u.dst != kNoReg) {
            const int f = Program::isVReg(u.dst) ? 1 : 0;
            const uint32_t idx = u.dst & 0x7fffffffu;
            if (idx < last_w[f].size()) {
                if (last_w[f][idx] != obs[o].prev_write)
                    return fail(csprintf(
                        "uop %u write order broken on reg %u", o,
                        u.dst));
                last_w[f][idx] = o;
            }
        }
        const uint8_t cls = decodeClass(u.kind);
        if (!(cls & kClsScalar)) {
            if (last_coproc != kNone && o < last_coproc)
                return fail("coprocessor order broken");
            last_coproc = o;
            continue;
        }
        const LatClass lc = latClassOf(cls);
        if (lc == LatClass::Branch) {
            if (last_branch != kNone && o < last_branch)
                return fail("branch order broken");
            last_branch = o;
        } else if (lc == LatClass::Load || lc == LatClass::Store) {
            if (last_store != obs[o].prev_store)
                return fail(csprintf("memory order broken at uop %u", o));
            if (lc == LatClass::Store)
                last_store = o;
        }
    }
    return true;
}

std::vector<SchedSpec>
enumerateSchedSpecs()
{
    std::vector<SchedSpec> out;
    auto one = [&](SchedKind k, uint16_t p) {
        SchedSpec s;
        s.steps.push_back({k, p});
        out.push_back(std::move(s));
    };
    one(SchedKind::Reorder, 4);
    one(SchedKind::Reorder, 8);
    one(SchedKind::Reorder, 16);
    one(SchedKind::Unroll, 2);
    one(SchedKind::Unroll, 4);
    one(SchedKind::Fission, 0);
    SchedSpec both;
    both.steps.push_back({SchedKind::Fission, 0});
    both.steps.push_back({SchedKind::Reorder, 8});
    out.push_back(std::move(both));
    return out;
}

} // namespace rtoc::isa
