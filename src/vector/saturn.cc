#include "saturn.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/ring_fifo.hh"

namespace rtoc::vector {

namespace {

/** Interned stat ids (one-time; per-run sets index by id). */
struct SaturnIds
{
    StatId vinstrs = internStat("vector_instrs");
    StatId stall_vq = internStat("stall_vq_full");
};

const SaturnIds &
saturnIds()
{
    static const SaturnIds ids;
    return ids;
}

} // namespace

SaturnConfig
SaturnConfig::make(int vlen, int dlen, bool shuttle_frontend)
{
    SaturnConfig c;
    c.vlen = vlen;
    c.dlen = dlen;
    c.frontend = shuttle_frontend ? cpu::InOrderConfig::shuttle()
                                  : cpu::InOrderConfig::rocket();
    c.name = "saturn-v" + std::to_string(vlen) + "d" +
             std::to_string(dlen) + "-" + c.frontend.name;
    return c;
}

namespace {

/** Mutable vector-unit state threaded through the frontend loop. */
struct VectorUnitState
{
    uint64_t vxuFree = 0; ///< arithmetic pipe next-free cycle
    uint64_t vluFree = 0; ///< load pipe
    uint64_t vsuFree = 0; ///< store pipe
    RingFifo inFlight;             ///< completion times, FIFO
    cpu::RegReadyFile chainReady;  ///< first-element availability
    uint64_t vinstrs = 0;
    uint64_t stallQueueFull = 0;

    /** Rearm for a new run; buffers keep their capacity. */
    void
    reset()
    {
        vxuFree = vluFree = vsuFree = 0;
        inFlight.clear();
        chainReady.reset();
        vinstrs = 0;
        stallQueueFull = 0;
    }
};

} // namespace

cpu::TimingResult
SaturnModel::runStream(const isa::UopStreamView &view) const
{
    using isa::UopKind;

    static thread_local VectorUnitState st;
    st.reset();
    cpu::InOrderCore frontend(cfg_.frontend);

    // Columnar twin of the AoS coproc below: reads only the columns a
    // vector op consumes (kind, registers, vl/sew/lmul8), through
    // pointers hoisted out of the per-op call. Any change here must
    // be mirrored there — the SoA-vs-AoS pinning tests hold the two
    // bit-identical.
    const UopKind *const kind_col = view.kind;
    const uint32_t *const dst_col = view.dst;
    const uint32_t *const src0_col = view.src0;
    const uint32_t *const src1_col = view.src1;
    const uint32_t *const src2_col = view.src2;
    const uint32_t *const vl_col = view.vl;
    const uint16_t *const sew_col = view.sew;
    const uint16_t *const lmul8_col = view.lmul8;

    // Datapath widths are powers of two on every real configuration;
    // folding the per-op ceil-divide into a shift removes a 64-bit
    // divider from the vector-op hot path (results are identical —
    // the non-power-of-two fallback keeps the division).
    const uint64_t dlen = static_cast<uint64_t>(cfg_.dlen);
    const bool dlen_pow2 = dlen != 0 && (dlen & (dlen - 1)) == 0;
    const int dlen_shift =
        dlen_pow2 ? __builtin_ctzll(dlen) : 0;
    auto div_dlen = [&](uint64_t x) -> uint64_t {
        return dlen_pow2 ? x >> dlen_shift : x / dlen;
    };

    auto beats_of = [&](size_t i) -> uint64_t {
        if (lmul8_col[i] > 8) {
            uint64_t group_bits = static_cast<uint64_t>(lmul8_col[i]) *
                                  static_cast<uint64_t>(cfg_.vlen) / 8;
            return std::max<uint64_t>(1, div_dlen(group_bits + dlen - 1));
        }
        uint64_t live_bits = static_cast<uint64_t>(vl_col[i]) *
                             static_cast<uint64_t>(sew_col[i]);
        return std::max<uint64_t>(1, div_dlen(live_bits + dlen - 1));
    };

    auto coproc = [&](const isa::UopStreamView &, size_t i,
                      uint64_t present, cpu::RegReadyFile &sregs,
                      cpu::RegReadyFile &vregs)
        -> std::pair<uint64_t, uint64_t> {
        const UopKind kind = kind_col[i];
        const uint32_t dst = dst_col[i];
        uint64_t release = present;

        if (kind == UopKind::VSetVl) {
            // Decode-stage handling with a short interlock before the
            // new VL takes effect for the following vector ops.
            sregs.setReady(dst, present + 2);
            return {present + 1, present + 2};
        }

        const uint32_t src0 = src0_col[i];
        const uint32_t src1 = src1_col[i];
        const uint32_t src2 = src2_col[i];

        // Queue back-pressure: frontend blocks when the vector unit
        // already holds vqDepth undrained instructions.
        while (!st.inFlight.empty() && st.inFlight.front() <= present)
            st.inFlight.popFront();
        if (static_cast<int>(st.inFlight.size()) >= cfg_.vqDepth) {
            uint64_t drain = st.inFlight.front();
            st.stallQueueFull += drain - present;
            release = drain;
            st.inFlight.popFront();
        }

        uint64_t start = std::max(present, release);
        // Chaining: wait for the first elements of vector operands.
        for (uint32_t src : {src0, src1, src2}) {
            if (src != isa::kNoReg && isa::Program::isVReg(src))
                start = std::max(start, st.chainReady.readyTime(src));
        }

        uint64_t beats = beats_of(i);
        uint64_t completion = 0;

        switch (kind) {
          case UopKind::VLoad:
          case UopKind::VLoadStrided: {
            start = std::max(start, st.vluFree);
            uint64_t lat = static_cast<uint64_t>(cfg_.memLat);
            uint64_t occ = kind == UopKind::VLoadStrided
                               ? std::max<uint64_t>(vl_col[i], 1)
                               : beats;
            st.vluFree = start + occ;
            completion = start + lat + occ;
            st.chainReady.setReady(dst, start + lat + 1);
            vregs.setReady(dst, completion);
            break;
          }
          case UopKind::VStore: {
            start = std::max(start, st.vsuFree);
            // Stores need full operand data, not just the head.
            for (uint32_t src : {src0, src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            st.vsuFree = start + beats;
            completion = start + beats + 1;
            break;
          }
          case UopKind::VArith:
          case UopKind::VFma: {
            start = std::max(start, st.vxuFree);
            st.vxuFree = start + beats;
            completion =
                start + static_cast<uint64_t>(cfg_.pipeLat) + beats;
            st.chainReady.setReady(dst,
                                   start + cfg_.pipeLat + cfg_.chainLat);
            vregs.setReady(dst, completion);
            break;
          }
          case UopKind::VRed: {
            start = std::max(start, st.vxuFree);
            // Reductions cannot chain out: full tree latency.
            for (uint32_t src : {src0, src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            // Ordered FP reductions are slow on short-vector
            // machines: a multi-pass lane tree plus pipeline drain.
            uint64_t tree = 12;
            st.vxuFree = start + beats + tree;
            completion = start + cfg_.pipeLat + beats + tree +
                         static_cast<uint64_t>(cfg_.scalarMoveLat);
            sregs.setReady(dst, completion);
            break;
          }
          case UopKind::VMove: {
            // vfmv.f.s: scalar destination, waits for full vreg.
            uint64_t src_ready = 0;
            if (src0 != isa::kNoReg && isa::Program::isVReg(src0))
                src_ready = vregs.readyTime(src0);
            start = std::max(start, src_ready);
            completion =
                start + static_cast<uint64_t>(cfg_.scalarMoveLat);
            if (isa::Program::isVReg(dst)) {
                vregs.setReady(dst, completion);
                st.chainReady.setReady(dst, completion);
            } else {
                sregs.setReady(dst, completion);
            }
            break;
          }
          default:
            rtoc_panic("saturn '%s': unsupported coprocessor uop %s",
                       cfg_.name.c_str(), isa::uopName(kind));
        }

        st.inFlight.pushBack(completion);
        ++st.vinstrs;
        return {release, completion};
    };

    cpu::TimingResult result =
        frontend.runStreamWithCoproc(view, coproc);
    result.stats.set(saturnIds().vinstrs, st.vinstrs);
    result.stats.set(saturnIds().stall_vq, st.stallQueueFull);
    return result;
}

std::vector<cpu::TimingResult>
SaturnModel::runStreamBatch(
    const isa::UopStreamView &view,
    const std::vector<const cpu::TimingModel *> &models) const
{
    using isa::UopKind;

    std::vector<cpu::InOrderConfig> frontends;
    std::vector<const SaturnConfig *> cfgs;
    frontends.reserve(models.size());
    cfgs.reserve(models.size());
    for (const cpu::TimingModel *m : models) {
        const auto *sat = dynamic_cast<const SaturnModel *>(m);
        if (!sat)
            return TimingModel::runStreamBatch(view, models);
        frontends.push_back(sat->config().frontend);
        cfgs.push_back(&sat->config());
    }

    // Lane-major SoA vector-unit state: every per-lane quantity the
    // old per-lane VectorUnitState held now lives in a flat array
    // indexed by lane, so each per-kind lane loop below streams
    // contiguous memory and vectorizes under RTOC_NATIVE. The batched
    // coprocessor contract (one callback per uop, not per (lane,
    // uop)) lets the kind switch, operand-row resolution and the
    // beats branch hoist out of the lane loops; per-lane semantics
    // are verbatim from the single-lane coproc above, so results stay
    // bit-identical (pinned by tests and bench_sweep_scale).
    const size_t L = models.size();
    std::vector<uint64_t> vxu_free(L, 0), vlu_free(L, 0),
        vsu_free(L, 0), stall_q(L, 0);
    std::vector<uint64_t> vq_depth(L), pipe_lat(L), chain_lat(L),
        mem_lat(L), sm_lat(L), dlen(L), vlen(L);
    std::vector<uint64_t> beats(L), start_v(L);
    std::vector<int> dlen_shift(L);
    std::vector<uint8_t> dlen_pow2(L);
    for (size_t l = 0; l < L; ++l) {
        const SaturnConfig &c = *cfgs[l];
        vq_depth[l] = static_cast<uint64_t>(c.vqDepth);
        pipe_lat[l] = static_cast<uint64_t>(c.pipeLat);
        chain_lat[l] = static_cast<uint64_t>(c.chainLat);
        mem_lat[l] = static_cast<uint64_t>(c.memLat);
        sm_lat[l] = static_cast<uint64_t>(c.scalarMoveLat);
        dlen[l] = static_cast<uint64_t>(c.dlen);
        vlen[l] = static_cast<uint64_t>(c.vlen);
        dlen_pow2[l] = dlen[l] != 0 && (dlen[l] & (dlen[l] - 1)) == 0;
        dlen_shift[l] = dlen_pow2[l] ? __builtin_ctzll(dlen[l]) : 0;
    }

    // Lane-major in-flight queue. Every lane sees every vector op and
    // pushes exactly one completion per queue-pushing op (everything
    // but VSetVl), in stream order — so the FIFO collapses to a
    // per-lane head index into a lane-major completion history:
    // occupancy of lane l is vi - head[l], the front is
    // hist[head[l]*L + l], a pop is ++head[l], and the push is the
    // completion store the kind loops make anyway. No ring arithmetic
    // and no separate push pass. The history is thread-local scratch
    // so repeated batch calls never re-fault its pages.
    size_t npush = 0;
    for (size_t i = 0; i < view.n; ++i)
        if (!(view.cls[i] & isa::kClsScalar) &&
            view.kind[i] != UopKind::VSetVl)
            ++npush;
    static thread_local std::vector<uint64_t> comp_hist;
    comp_hist.resize(npush * L);
    std::vector<uint64_t> head(L, 0);
    size_t vi = 0; ///< pushes so far; lane occupancy = vi - head[l]

    // Lane-interleaved chaining file (first-element availability),
    // sized from the program's vector-register counter; reads of
    // unwritten/out-of-range ids fall back to a zero row and writes
    // of non-vreg destinations to a sink row, matching RegReadyFile.
    const uint32_t nvreg = view.program->vectorRegCount();
    std::vector<uint64_t> chain(static_cast<size_t>(nvreg) * L, 0);
    std::vector<uint64_t> chain_zero(L, 0), chain_sink(L, 0);
    auto chain_row = [&](uint32_t reg) -> const uint64_t * {
        const uint32_t idx = reg & 0x7fffffffu;
        if (reg == isa::kNoReg || idx >= nvreg)
            return chain_zero.data();
        return chain.data() + static_cast<size_t>(idx) * L;
    };
    auto chain_row_w = [&](uint32_t reg) -> uint64_t * {
        const uint32_t idx = reg & 0x7fffffffu;
        if (reg == isa::kNoReg || idx >= nvreg)
            return chain_sink.data();
        return chain.data() + static_cast<size_t>(idx) * L;
    };

    uint64_t vinstrs = 0; ///< lane-invariant (every lane sees each op)

    const UopKind *const kind_col = view.kind;
    const uint32_t *const dst_col = view.dst;
    const uint32_t *const src0_col = view.src0;
    const uint32_t *const src1_col = view.src1;
    const uint32_t *const src2_col = view.src2;
    const uint32_t *const vl_col = view.vl;
    const uint16_t *const sew_col = view.sew;
    const uint16_t *const lmul8_col = view.lmul8;

    auto coproc = [&](const isa::UopStreamView &, size_t i,
                      const uint64_t *present, uint64_t *release,
                      uint64_t *done, const cpu::BatchRegFiles &rf) {
        const UopKind kind = kind_col[i];
        const uint32_t dst = dst_col[i];

        if (kind == UopKind::VSetVl) {
            uint64_t *sd = rf.srowW(dst);
            for (size_t l = 0; l < L; ++l) {
                sd[l] = present[l] + 2;
                release[l] = present[l] + 1;
                done[l] = present[l] + 2;
            }
            return;
        }

        const uint32_t src0 = src0_col[i];
        const uint32_t src1 = src1_col[i];
        const uint32_t src2 = src2_col[i];
        const bool v0 = src0 != isa::kNoReg && isa::Program::isVReg(src0);
        const bool v1 = src1 != isa::kNoReg && isa::Program::isVReg(src1);
        const bool v2 = src2 != isa::kNoReg && isa::Program::isVReg(src2);
        const uint64_t *c0 = v0 ? chain_row(src0) : chain_zero.data();
        const uint64_t *c1 = v1 ? chain_row(src1) : chain_zero.data();
        const uint64_t *c2 = v2 ? chain_row(src2) : chain_zero.data();

        // Shared prologue, split so the serial queue walk never
        // blocks vectorization of the start-cycle maxes: first the
        // drain + back-pressure per lane, then the chained start
        // cycle (zero-row fallbacks keep it branchless).
        const uint64_t *const hist = comp_hist.data();
        for (size_t l = 0; l < L; ++l) {
            const uint64_t p = present[l];
            uint64_t h = head[l];
            while (h < vi && hist[h * L + l] <= p)
                ++h;
            uint64_t rel = p;
            if (vi - h >= vq_depth[l]) {
                const uint64_t drain = hist[h * L + l];
                stall_q[l] += drain - p;
                rel = drain;
                ++h;
            }
            head[l] = h;
            release[l] = rel;
        }
        for (size_t l = 0; l < L; ++l) {
            uint64_t start = std::max(present[l], release[l]);
            start = std::max(start, c0[l]);
            start = std::max(start, c1[l]);
            start = std::max(start, c2[l]);
            start_v[l] = start;
        }

        // Beats: the LMUL-group branch is lane-invariant, so it
        // hoists; only the datapath width differs per lane. VMove
        // never sequences beats, so it skips the pass entirely.
        const uint16_t ulm = lmul8_col[i];
        if (kind == UopKind::VMove) {
            // no beats
        } else if (ulm > 8) {
            for (size_t l = 0; l < L; ++l) {
                const uint64_t group_bits =
                    static_cast<uint64_t>(ulm) * vlen[l] / 8;
                const uint64_t x = group_bits + dlen[l] - 1;
                beats[l] = std::max<uint64_t>(
                    1, dlen_pow2[l] ? x >> dlen_shift[l] : x / dlen[l]);
            }
        } else {
            const uint64_t live_bits =
                static_cast<uint64_t>(vl_col[i]) *
                static_cast<uint64_t>(sew_col[i]);
            for (size_t l = 0; l < L; ++l) {
                const uint64_t x = live_bits + dlen[l] - 1;
                beats[l] = std::max<uint64_t>(
                    1, dlen_pow2[l] ? x >> dlen_shift[l] : x / dlen[l]);
            }
        }

        // Queue push: the kind loops below store each completion into
        // the history row for this op as well as done[] — that store
        // IS the push (see the queue comment above).
        uint64_t *const hrow = comp_hist.data() + vi * L;

        switch (kind) {
          case UopKind::VLoad:
          case UopKind::VLoadStrided: {
            uint64_t *ch_d = chain_row_w(dst);
            uint64_t *vr_d = rf.vrowW(dst);
            const bool strided = kind == UopKind::VLoadStrided;
            const uint64_t strided_occ =
                std::max<uint64_t>(vl_col[i], 1);
            for (size_t l = 0; l < L; ++l) {
                const uint64_t start =
                    std::max(start_v[l], vlu_free[l]);
                const uint64_t occ = strided ? strided_occ : beats[l];
                vlu_free[l] = start + occ;
                const uint64_t completion = start + mem_lat[l] + occ;
                ch_d[l] = start + mem_lat[l] + 1;
                vr_d[l] = completion;
                hrow[l] = completion;
                done[l] = completion;
            }
            break;
          }
          case UopKind::VStore: {
            const uint64_t *r0 = v0 ? rf.vrow(src0) : chain_zero.data();
            const uint64_t *r1 = v1 ? rf.vrow(src1) : chain_zero.data();
            for (size_t l = 0; l < L; ++l) {
                // Stores need full operand data, not just the head.
                uint64_t start = std::max(start_v[l], vsu_free[l]);
                start = std::max(start, r0[l]);
                start = std::max(start, r1[l]);
                vsu_free[l] = start + beats[l];
                const uint64_t completion = start + beats[l] + 1;
                hrow[l] = completion;
                done[l] = completion;
            }
            break;
          }
          case UopKind::VArith:
          case UopKind::VFma: {
            uint64_t *ch_d = chain_row_w(dst);
            uint64_t *vr_d = rf.vrowW(dst);
            for (size_t l = 0; l < L; ++l) {
                const uint64_t start =
                    std::max(start_v[l], vxu_free[l]);
                vxu_free[l] = start + beats[l];
                const uint64_t completion =
                    start + pipe_lat[l] + beats[l];
                ch_d[l] = start + pipe_lat[l] + chain_lat[l];
                vr_d[l] = completion;
                hrow[l] = completion;
                done[l] = completion;
            }
            break;
          }
          case UopKind::VRed: {
            // Reductions cannot chain out: full tree latency.
            const uint64_t *r0 = v0 ? rf.vrow(src0) : chain_zero.data();
            const uint64_t *r1 = v1 ? rf.vrow(src1) : chain_zero.data();
            uint64_t *sd = rf.srowW(dst);
            constexpr uint64_t tree = 12;
            for (size_t l = 0; l < L; ++l) {
                uint64_t start = std::max(start_v[l], vxu_free[l]);
                start = std::max(start, r0[l]);
                start = std::max(start, r1[l]);
                vxu_free[l] = start + beats[l] + tree;
                const uint64_t completion =
                    start + pipe_lat[l] + beats[l] + tree + sm_lat[l];
                sd[l] = completion;
                hrow[l] = completion;
                done[l] = completion;
            }
            break;
          }
          case UopKind::VMove: {
            const uint64_t *r0 = v0 ? rf.vrow(src0) : chain_zero.data();
            if (isa::Program::isVReg(dst)) {
                uint64_t *ch_d = chain_row_w(dst);
                uint64_t *vr_d = rf.vrowW(dst);
                for (size_t l = 0; l < L; ++l) {
                    const uint64_t start = std::max(start_v[l], r0[l]);
                    const uint64_t completion = start + sm_lat[l];
                    vr_d[l] = completion;
                    ch_d[l] = completion;
                    hrow[l] = completion;
                    done[l] = completion;
                }
            } else {
                // vfmv.f.s: scalar destination, waits for full vreg.
                uint64_t *sd = rf.srowW(dst);
                for (size_t l = 0; l < L; ++l) {
                    const uint64_t start = std::max(start_v[l], r0[l]);
                    const uint64_t completion = start + sm_lat[l];
                    sd[l] = completion;
                    hrow[l] = completion;
                    done[l] = completion;
                }
            }
            break;
          }
          default:
            rtoc_panic("saturn '%s': unsupported coprocessor uop %s",
                       cfgs[0]->name.c_str(), isa::uopName(kind));
        }

        ++vi;
        ++vinstrs;
    };

    std::vector<cpu::TimingResult> out =
        cpu::runInOrderStreamBatchWithCoproc(view, frontends, coproc);
    for (size_t l = 0; l < out.size(); ++l) {
        out[l].stats.set(saturnIds().vinstrs, vinstrs);
        out[l].stats.set(saturnIds().stall_vq, stall_q[l]);
    }
    return out;
}

std::string
SaturnModel::cacheKey() const
{
    return csprintf("saturn:%s:v%d:d%d:vq%d:pl%d:cl%d:ml%d:sm%d|%s",
                    cfg_.name.c_str(), cfg_.vlen, cfg_.dlen,
                    cfg_.vqDepth, cfg_.pipeLat, cfg_.chainLat,
                    cfg_.memLat, cfg_.scalarMoveLat,
                    cpu::InOrderCore(cfg_.frontend).cacheKey().c_str());
}

cpu::TimingResult
SaturnModel::runAos(const isa::Program &prog) const
{
    using isa::Uop;
    using isa::UopKind;

    static thread_local VectorUnitState st;
    st.reset();
    cpu::InOrderCore frontend(cfg_.frontend);

    auto beats_of = [&](const Uop &u) -> uint64_t {
        // A grouped instruction sequences the whole register group;
        // an ungrouped one only the live elements.
        uint64_t dlen = static_cast<uint64_t>(cfg_.dlen);
        if (u.lmul8 > 8) {
            uint64_t group_bits = static_cast<uint64_t>(u.lmul8) *
                                  static_cast<uint64_t>(cfg_.vlen) / 8;
            return std::max<uint64_t>(1, (group_bits + dlen - 1) / dlen);
        }
        uint64_t live_bits =
            static_cast<uint64_t>(u.vl) * static_cast<uint64_t>(u.sew);
        return std::max<uint64_t>(1, (live_bits + dlen - 1) / dlen);
    };

    auto coproc = [&](const Uop &u, uint64_t present,
                      cpu::RegReadyFile &sregs, cpu::RegReadyFile &vregs)
        -> std::pair<uint64_t, uint64_t> {
        uint64_t release = present;

        if (u.kind == UopKind::VSetVl) {
            // Decode-stage handling with a short interlock before the
            // new VL takes effect for the following vector ops.
            sregs.setReady(u.dst, present + 2);
            return {present + 1, present + 2};
        }

        // Queue back-pressure: frontend blocks when the vector unit
        // already holds vqDepth undrained instructions.
        while (!st.inFlight.empty() && st.inFlight.front() <= present)
            st.inFlight.popFront();
        if (static_cast<int>(st.inFlight.size()) >= cfg_.vqDepth) {
            uint64_t drain = st.inFlight.front();
            st.stallQueueFull += drain - present;
            release = drain;
            st.inFlight.popFront();
        }

        uint64_t start = std::max(present, release);
        // Chaining: wait for the first elements of vector operands.
        for (uint32_t src : {u.src0, u.src1, u.src2}) {
            if (src != isa::kNoReg && isa::Program::isVReg(src))
                start = std::max(start, st.chainReady.readyTime(src));
        }

        uint64_t beats = beats_of(u);
        uint64_t completion = 0;

        switch (u.kind) {
          case UopKind::VLoad:
          case UopKind::VLoadStrided: {
            start = std::max(start, st.vluFree);
            uint64_t lat = static_cast<uint64_t>(cfg_.memLat);
            uint64_t occ = u.kind == UopKind::VLoadStrided
                               ? std::max<uint64_t>(u.vl, 1) // 1 elem/cyc
                               : beats;
            st.vluFree = start + occ;
            completion = start + lat + occ;
            st.chainReady.setReady(u.dst, start + lat + 1);
            vregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VStore: {
            start = std::max(start, st.vsuFree);
            // Stores need full operand data, not just the head.
            for (uint32_t src : {u.src0, u.src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            st.vsuFree = start + beats;
            completion = start + beats + 1;
            break;
          }
          case UopKind::VArith:
          case UopKind::VFma: {
            start = std::max(start, st.vxuFree);
            st.vxuFree = start + beats;
            completion =
                start + static_cast<uint64_t>(cfg_.pipeLat) + beats;
            st.chainReady.setReady(u.dst,
                                   start + cfg_.pipeLat + cfg_.chainLat);
            vregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VRed: {
            start = std::max(start, st.vxuFree);
            // Reductions cannot chain out: full tree latency.
            for (uint32_t src : {u.src0, u.src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            // Ordered FP reductions are slow on short-vector
            // machines: a multi-pass lane tree plus pipeline drain.
            uint64_t tree = 12;
            st.vxuFree = start + beats + tree;
            completion = start + cfg_.pipeLat + beats + tree +
                         static_cast<uint64_t>(cfg_.scalarMoveLat);
            sregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VMove: {
            // vfmv.f.s: scalar destination, waits for full vreg.
            uint64_t src_ready = 0;
            if (u.src0 != isa::kNoReg && isa::Program::isVReg(u.src0))
                src_ready = vregs.readyTime(u.src0);
            start = std::max(start, src_ready);
            completion =
                start + static_cast<uint64_t>(cfg_.scalarMoveLat);
            if (isa::Program::isVReg(u.dst)) {
                vregs.setReady(u.dst, completion);
                st.chainReady.setReady(u.dst, completion);
            } else {
                sregs.setReady(u.dst, completion);
            }
            break;
          }
          default:
            rtoc_panic("saturn '%s': unsupported coprocessor uop %s",
                       cfg_.name.c_str(), isa::uopName(u.kind));
        }

        st.inFlight.pushBack(completion);
        ++st.vinstrs;
        return {release, completion};
    };

    cpu::TimingResult result = frontend.runWithCoproc(prog, coproc);
    result.stats.set(saturnIds().vinstrs, st.vinstrs);
    result.stats.set(saturnIds().stall_vq, st.stallQueueFull);
    return result;
}

} // namespace rtoc::vector
