#include "saturn.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/ring_fifo.hh"

namespace rtoc::vector {

namespace {

/** Interned stat ids (one-time; per-run sets index by id). */
struct SaturnIds
{
    StatId vinstrs = internStat("vector_instrs");
    StatId stall_vq = internStat("stall_vq_full");
};

const SaturnIds &
saturnIds()
{
    static const SaturnIds ids;
    return ids;
}

} // namespace

SaturnConfig
SaturnConfig::make(int vlen, int dlen, bool shuttle_frontend)
{
    SaturnConfig c;
    c.vlen = vlen;
    c.dlen = dlen;
    c.frontend = shuttle_frontend ? cpu::InOrderConfig::shuttle()
                                  : cpu::InOrderConfig::rocket();
    c.name = "saturn-v" + std::to_string(vlen) + "d" +
             std::to_string(dlen) + "-" + c.frontend.name;
    return c;
}

namespace {

/** Mutable vector-unit state threaded through the frontend loop. */
struct VectorUnitState
{
    uint64_t vxuFree = 0; ///< arithmetic pipe next-free cycle
    uint64_t vluFree = 0; ///< load pipe
    uint64_t vsuFree = 0; ///< store pipe
    RingFifo inFlight;             ///< completion times, FIFO
    cpu::RegReadyFile chainReady;  ///< first-element availability
    uint64_t vinstrs = 0;
    uint64_t stallQueueFull = 0;

    /** Rearm for a new run; buffers keep their capacity. */
    void
    reset()
    {
        vxuFree = vluFree = vsuFree = 0;
        inFlight.clear();
        chainReady.reset();
        vinstrs = 0;
        stallQueueFull = 0;
    }
};

} // namespace

cpu::TimingResult
SaturnModel::runStream(const isa::UopStreamView &view) const
{
    using isa::UopKind;

    static thread_local VectorUnitState st;
    st.reset();
    cpu::InOrderCore frontend(cfg_.frontend);

    // Columnar twin of the AoS coproc below: reads only the columns a
    // vector op consumes (kind, registers, vl/sew/lmul8), through
    // pointers hoisted out of the per-op call. Any change here must
    // be mirrored there — the SoA-vs-AoS pinning tests hold the two
    // bit-identical.
    const UopKind *const kind_col = view.kind;
    const uint32_t *const dst_col = view.dst;
    const uint32_t *const src0_col = view.src0;
    const uint32_t *const src1_col = view.src1;
    const uint32_t *const src2_col = view.src2;
    const uint32_t *const vl_col = view.vl;
    const uint16_t *const sew_col = view.sew;
    const uint16_t *const lmul8_col = view.lmul8;

    // Datapath widths are powers of two on every real configuration;
    // folding the per-op ceil-divide into a shift removes a 64-bit
    // divider from the vector-op hot path (results are identical —
    // the non-power-of-two fallback keeps the division).
    const uint64_t dlen = static_cast<uint64_t>(cfg_.dlen);
    const bool dlen_pow2 = dlen != 0 && (dlen & (dlen - 1)) == 0;
    const int dlen_shift =
        dlen_pow2 ? __builtin_ctzll(dlen) : 0;
    auto div_dlen = [&](uint64_t x) -> uint64_t {
        return dlen_pow2 ? x >> dlen_shift : x / dlen;
    };

    auto beats_of = [&](size_t i) -> uint64_t {
        if (lmul8_col[i] > 8) {
            uint64_t group_bits = static_cast<uint64_t>(lmul8_col[i]) *
                                  static_cast<uint64_t>(cfg_.vlen) / 8;
            return std::max<uint64_t>(1, div_dlen(group_bits + dlen - 1));
        }
        uint64_t live_bits = static_cast<uint64_t>(vl_col[i]) *
                             static_cast<uint64_t>(sew_col[i]);
        return std::max<uint64_t>(1, div_dlen(live_bits + dlen - 1));
    };

    auto coproc = [&](const isa::UopStreamView &, size_t i,
                      uint64_t present, cpu::RegReadyFile &sregs,
                      cpu::RegReadyFile &vregs)
        -> std::pair<uint64_t, uint64_t> {
        const UopKind kind = kind_col[i];
        const uint32_t dst = dst_col[i];
        uint64_t release = present;

        if (kind == UopKind::VSetVl) {
            // Decode-stage handling with a short interlock before the
            // new VL takes effect for the following vector ops.
            sregs.setReady(dst, present + 2);
            return {present + 1, present + 2};
        }

        const uint32_t src0 = src0_col[i];
        const uint32_t src1 = src1_col[i];
        const uint32_t src2 = src2_col[i];

        // Queue back-pressure: frontend blocks when the vector unit
        // already holds vqDepth undrained instructions.
        while (!st.inFlight.empty() && st.inFlight.front() <= present)
            st.inFlight.popFront();
        if (static_cast<int>(st.inFlight.size()) >= cfg_.vqDepth) {
            uint64_t drain = st.inFlight.front();
            st.stallQueueFull += drain - present;
            release = drain;
            st.inFlight.popFront();
        }

        uint64_t start = std::max(present, release);
        // Chaining: wait for the first elements of vector operands.
        for (uint32_t src : {src0, src1, src2}) {
            if (src != isa::kNoReg && isa::Program::isVReg(src))
                start = std::max(start, st.chainReady.readyTime(src));
        }

        uint64_t beats = beats_of(i);
        uint64_t completion = 0;

        switch (kind) {
          case UopKind::VLoad:
          case UopKind::VLoadStrided: {
            start = std::max(start, st.vluFree);
            uint64_t lat = static_cast<uint64_t>(cfg_.memLat);
            uint64_t occ = kind == UopKind::VLoadStrided
                               ? std::max<uint64_t>(vl_col[i], 1)
                               : beats;
            st.vluFree = start + occ;
            completion = start + lat + occ;
            st.chainReady.setReady(dst, start + lat + 1);
            vregs.setReady(dst, completion);
            break;
          }
          case UopKind::VStore: {
            start = std::max(start, st.vsuFree);
            // Stores need full operand data, not just the head.
            for (uint32_t src : {src0, src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            st.vsuFree = start + beats;
            completion = start + beats + 1;
            break;
          }
          case UopKind::VArith:
          case UopKind::VFma: {
            start = std::max(start, st.vxuFree);
            st.vxuFree = start + beats;
            completion =
                start + static_cast<uint64_t>(cfg_.pipeLat) + beats;
            st.chainReady.setReady(dst,
                                   start + cfg_.pipeLat + cfg_.chainLat);
            vregs.setReady(dst, completion);
            break;
          }
          case UopKind::VRed: {
            start = std::max(start, st.vxuFree);
            // Reductions cannot chain out: full tree latency.
            for (uint32_t src : {src0, src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            // Ordered FP reductions are slow on short-vector
            // machines: a multi-pass lane tree plus pipeline drain.
            uint64_t tree = 12;
            st.vxuFree = start + beats + tree;
            completion = start + cfg_.pipeLat + beats + tree +
                         static_cast<uint64_t>(cfg_.scalarMoveLat);
            sregs.setReady(dst, completion);
            break;
          }
          case UopKind::VMove: {
            // vfmv.f.s: scalar destination, waits for full vreg.
            uint64_t src_ready = 0;
            if (src0 != isa::kNoReg && isa::Program::isVReg(src0))
                src_ready = vregs.readyTime(src0);
            start = std::max(start, src_ready);
            completion =
                start + static_cast<uint64_t>(cfg_.scalarMoveLat);
            if (isa::Program::isVReg(dst)) {
                vregs.setReady(dst, completion);
                st.chainReady.setReady(dst, completion);
            } else {
                sregs.setReady(dst, completion);
            }
            break;
          }
          default:
            rtoc_panic("saturn '%s': unsupported coprocessor uop %s",
                       cfg_.name.c_str(), isa::uopName(kind));
        }

        st.inFlight.pushBack(completion);
        ++st.vinstrs;
        return {release, completion};
    };

    cpu::TimingResult result =
        frontend.runStreamWithCoproc(view, coproc);
    result.stats.set(saturnIds().vinstrs, st.vinstrs);
    result.stats.set(saturnIds().stall_vq, st.stallQueueFull);
    return result;
}

std::vector<cpu::TimingResult>
SaturnModel::runStreamBatch(
    const isa::UopStreamView &view,
    const std::vector<const cpu::TimingModel *> &models) const
{
    using isa::UopKind;

    std::vector<cpu::InOrderConfig> frontends;
    std::vector<const SaturnConfig *> cfgs;
    frontends.reserve(models.size());
    cfgs.reserve(models.size());
    for (const cpu::TimingModel *m : models) {
        const auto *sat = dynamic_cast<const SaturnModel *>(m);
        if (!sat)
            return TimingModel::runStreamBatch(view, models);
        frontends.push_back(sat->config().frontend);
        cfgs.push_back(&sat->config());
    }

    // Per-lane vector-unit state plus the hoisted datapath constants
    // (shift-folded power-of-two divides, exactly as the single-lane
    // loop computes them).
    struct LaneConsts
    {
        uint64_t dlen = 1;
        int dlenShift = 0;
        bool dlenPow2 = false;
        uint64_t vlen = 0;
    };
    std::vector<VectorUnitState> sts(models.size());
    std::vector<LaneConsts> consts(models.size());
    for (size_t L = 0; L < cfgs.size(); ++L) {
        const SaturnConfig &c = *cfgs[L];
        LaneConsts &k = consts[L];
        k.dlen = static_cast<uint64_t>(c.dlen);
        k.dlenPow2 = k.dlen != 0 && (k.dlen & (k.dlen - 1)) == 0;
        k.dlenShift = k.dlenPow2 ? __builtin_ctzll(k.dlen) : 0;
        k.vlen = static_cast<uint64_t>(c.vlen);
    }

    const UopKind *const kind_col = view.kind;
    const uint32_t *const dst_col = view.dst;
    const uint32_t *const src0_col = view.src0;
    const uint32_t *const src1_col = view.src1;
    const uint32_t *const src2_col = view.src2;
    const uint32_t *const vl_col = view.vl;
    const uint16_t *const sew_col = view.sew;
    const uint16_t *const lmul8_col = view.lmul8;

    auto coproc = [&](size_t L, const isa::UopStreamView &, size_t i,
                      uint64_t present, auto &sregs,
                      auto &vregs) -> std::pair<uint64_t, uint64_t> {
        const SaturnConfig &cfg = *cfgs[L];
        const LaneConsts &k = consts[L];
        VectorUnitState &st = sts[L];

        auto div_dlen = [&](uint64_t x) -> uint64_t {
            return k.dlenPow2 ? x >> k.dlenShift : x / k.dlen;
        };
        auto beats_of = [&](size_t j) -> uint64_t {
            if (lmul8_col[j] > 8) {
                uint64_t group_bits =
                    static_cast<uint64_t>(lmul8_col[j]) * k.vlen / 8;
                return std::max<uint64_t>(
                    1, div_dlen(group_bits + k.dlen - 1));
            }
            uint64_t live_bits = static_cast<uint64_t>(vl_col[j]) *
                                 static_cast<uint64_t>(sew_col[j]);
            return std::max<uint64_t>(
                1, div_dlen(live_bits + k.dlen - 1));
        };

        const UopKind kind = kind_col[i];
        const uint32_t dst = dst_col[i];
        uint64_t release = present;

        if (kind == UopKind::VSetVl) {
            sregs.setReady(dst, present + 2);
            return {present + 1, present + 2};
        }

        const uint32_t src0 = src0_col[i];
        const uint32_t src1 = src1_col[i];
        const uint32_t src2 = src2_col[i];

        while (!st.inFlight.empty() && st.inFlight.front() <= present)
            st.inFlight.popFront();
        if (static_cast<int>(st.inFlight.size()) >= cfg.vqDepth) {
            uint64_t drain = st.inFlight.front();
            st.stallQueueFull += drain - present;
            release = drain;
            st.inFlight.popFront();
        }

        uint64_t start = std::max(present, release);
        for (uint32_t src : {src0, src1, src2}) {
            if (src != isa::kNoReg && isa::Program::isVReg(src))
                start = std::max(start, st.chainReady.readyTime(src));
        }

        uint64_t beats = beats_of(i);
        uint64_t completion = 0;

        switch (kind) {
          case UopKind::VLoad:
          case UopKind::VLoadStrided: {
            start = std::max(start, st.vluFree);
            uint64_t lat = static_cast<uint64_t>(cfg.memLat);
            uint64_t occ = kind == UopKind::VLoadStrided
                               ? std::max<uint64_t>(vl_col[i], 1)
                               : beats;
            st.vluFree = start + occ;
            completion = start + lat + occ;
            st.chainReady.setReady(dst, start + lat + 1);
            vregs.setReady(dst, completion);
            break;
          }
          case UopKind::VStore: {
            start = std::max(start, st.vsuFree);
            for (uint32_t src : {src0, src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            st.vsuFree = start + beats;
            completion = start + beats + 1;
            break;
          }
          case UopKind::VArith:
          case UopKind::VFma: {
            start = std::max(start, st.vxuFree);
            st.vxuFree = start + beats;
            completion =
                start + static_cast<uint64_t>(cfg.pipeLat) + beats;
            st.chainReady.setReady(dst,
                                   start + cfg.pipeLat + cfg.chainLat);
            vregs.setReady(dst, completion);
            break;
          }
          case UopKind::VRed: {
            start = std::max(start, st.vxuFree);
            for (uint32_t src : {src0, src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            uint64_t tree = 12;
            st.vxuFree = start + beats + tree;
            completion = start + cfg.pipeLat + beats + tree +
                         static_cast<uint64_t>(cfg.scalarMoveLat);
            sregs.setReady(dst, completion);
            break;
          }
          case UopKind::VMove: {
            uint64_t src_ready = 0;
            if (src0 != isa::kNoReg && isa::Program::isVReg(src0))
                src_ready = vregs.readyTime(src0);
            start = std::max(start, src_ready);
            completion =
                start + static_cast<uint64_t>(cfg.scalarMoveLat);
            if (isa::Program::isVReg(dst)) {
                vregs.setReady(dst, completion);
                st.chainReady.setReady(dst, completion);
            } else {
                sregs.setReady(dst, completion);
            }
            break;
          }
          default:
            rtoc_panic("saturn '%s': unsupported coprocessor uop %s",
                       cfg.name.c_str(), isa::uopName(kind));
        }

        st.inFlight.pushBack(completion);
        ++st.vinstrs;
        return {release, completion};
    };

    std::vector<cpu::TimingResult> out =
        cpu::runInOrderStreamBatchWithCoproc(view, frontends, coproc);
    for (size_t L = 0; L < out.size(); ++L) {
        out[L].stats.set(saturnIds().vinstrs, sts[L].vinstrs);
        out[L].stats.set(saturnIds().stall_vq, sts[L].stallQueueFull);
    }
    return out;
}

std::string
SaturnModel::cacheKey() const
{
    return csprintf("saturn:%s:v%d:d%d:vq%d:pl%d:cl%d:ml%d:sm%d|%s",
                    cfg_.name.c_str(), cfg_.vlen, cfg_.dlen,
                    cfg_.vqDepth, cfg_.pipeLat, cfg_.chainLat,
                    cfg_.memLat, cfg_.scalarMoveLat,
                    cpu::InOrderCore(cfg_.frontend).cacheKey().c_str());
}

cpu::TimingResult
SaturnModel::runAos(const isa::Program &prog) const
{
    using isa::Uop;
    using isa::UopKind;

    static thread_local VectorUnitState st;
    st.reset();
    cpu::InOrderCore frontend(cfg_.frontend);

    auto beats_of = [&](const Uop &u) -> uint64_t {
        // A grouped instruction sequences the whole register group;
        // an ungrouped one only the live elements.
        uint64_t dlen = static_cast<uint64_t>(cfg_.dlen);
        if (u.lmul8 > 8) {
            uint64_t group_bits = static_cast<uint64_t>(u.lmul8) *
                                  static_cast<uint64_t>(cfg_.vlen) / 8;
            return std::max<uint64_t>(1, (group_bits + dlen - 1) / dlen);
        }
        uint64_t live_bits =
            static_cast<uint64_t>(u.vl) * static_cast<uint64_t>(u.sew);
        return std::max<uint64_t>(1, (live_bits + dlen - 1) / dlen);
    };

    auto coproc = [&](const Uop &u, uint64_t present,
                      cpu::RegReadyFile &sregs, cpu::RegReadyFile &vregs)
        -> std::pair<uint64_t, uint64_t> {
        uint64_t release = present;

        if (u.kind == UopKind::VSetVl) {
            // Decode-stage handling with a short interlock before the
            // new VL takes effect for the following vector ops.
            sregs.setReady(u.dst, present + 2);
            return {present + 1, present + 2};
        }

        // Queue back-pressure: frontend blocks when the vector unit
        // already holds vqDepth undrained instructions.
        while (!st.inFlight.empty() && st.inFlight.front() <= present)
            st.inFlight.popFront();
        if (static_cast<int>(st.inFlight.size()) >= cfg_.vqDepth) {
            uint64_t drain = st.inFlight.front();
            st.stallQueueFull += drain - present;
            release = drain;
            st.inFlight.popFront();
        }

        uint64_t start = std::max(present, release);
        // Chaining: wait for the first elements of vector operands.
        for (uint32_t src : {u.src0, u.src1, u.src2}) {
            if (src != isa::kNoReg && isa::Program::isVReg(src))
                start = std::max(start, st.chainReady.readyTime(src));
        }

        uint64_t beats = beats_of(u);
        uint64_t completion = 0;

        switch (u.kind) {
          case UopKind::VLoad:
          case UopKind::VLoadStrided: {
            start = std::max(start, st.vluFree);
            uint64_t lat = static_cast<uint64_t>(cfg_.memLat);
            uint64_t occ = u.kind == UopKind::VLoadStrided
                               ? std::max<uint64_t>(u.vl, 1) // 1 elem/cyc
                               : beats;
            st.vluFree = start + occ;
            completion = start + lat + occ;
            st.chainReady.setReady(u.dst, start + lat + 1);
            vregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VStore: {
            start = std::max(start, st.vsuFree);
            // Stores need full operand data, not just the head.
            for (uint32_t src : {u.src0, u.src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            st.vsuFree = start + beats;
            completion = start + beats + 1;
            break;
          }
          case UopKind::VArith:
          case UopKind::VFma: {
            start = std::max(start, st.vxuFree);
            st.vxuFree = start + beats;
            completion =
                start + static_cast<uint64_t>(cfg_.pipeLat) + beats;
            st.chainReady.setReady(u.dst,
                                   start + cfg_.pipeLat + cfg_.chainLat);
            vregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VRed: {
            start = std::max(start, st.vxuFree);
            // Reductions cannot chain out: full tree latency.
            for (uint32_t src : {u.src0, u.src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            // Ordered FP reductions are slow on short-vector
            // machines: a multi-pass lane tree plus pipeline drain.
            uint64_t tree = 12;
            st.vxuFree = start + beats + tree;
            completion = start + cfg_.pipeLat + beats + tree +
                         static_cast<uint64_t>(cfg_.scalarMoveLat);
            sregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VMove: {
            // vfmv.f.s: scalar destination, waits for full vreg.
            uint64_t src_ready = 0;
            if (u.src0 != isa::kNoReg && isa::Program::isVReg(u.src0))
                src_ready = vregs.readyTime(u.src0);
            start = std::max(start, src_ready);
            completion =
                start + static_cast<uint64_t>(cfg_.scalarMoveLat);
            if (isa::Program::isVReg(u.dst)) {
                vregs.setReady(u.dst, completion);
                st.chainReady.setReady(u.dst, completion);
            } else {
                sregs.setReady(u.dst, completion);
            }
            break;
          }
          default:
            rtoc_panic("saturn '%s': unsupported coprocessor uop %s",
                       cfg_.name.c_str(), isa::uopName(u.kind));
        }

        st.inFlight.pushBack(completion);
        ++st.vinstrs;
        return {release, completion};
    };

    cpu::TimingResult result = frontend.runWithCoproc(prog, coproc);
    result.stats.set(saturnIds().vinstrs, st.vinstrs);
    result.stats.set(saturnIds().stall_vq, st.stallQueueFull);
    return result;
}

} // namespace rtoc::vector
