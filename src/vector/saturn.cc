#include "saturn.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/ring_fifo.hh"

namespace rtoc::vector {

SaturnConfig
SaturnConfig::make(int vlen, int dlen, bool shuttle_frontend)
{
    SaturnConfig c;
    c.vlen = vlen;
    c.dlen = dlen;
    c.frontend = shuttle_frontend ? cpu::InOrderConfig::shuttle()
                                  : cpu::InOrderConfig::rocket();
    c.name = "saturn-v" + std::to_string(vlen) + "d" +
             std::to_string(dlen) + "-" + c.frontend.name;
    return c;
}

namespace {

/** Mutable vector-unit state threaded through the frontend loop. */
struct VectorUnitState
{
    uint64_t vxuFree = 0; ///< arithmetic pipe next-free cycle
    uint64_t vluFree = 0; ///< load pipe
    uint64_t vsuFree = 0; ///< store pipe
    RingFifo inFlight;             ///< completion times, FIFO
    cpu::RegReadyFile chainReady;  ///< first-element availability
    uint64_t vinstrs = 0;
    uint64_t stallQueueFull = 0;

    /** Rearm for a new run; buffers keep their capacity. */
    void
    reset()
    {
        vxuFree = vluFree = vsuFree = 0;
        inFlight.clear();
        chainReady.reset();
        vinstrs = 0;
        stallQueueFull = 0;
    }
};

} // namespace

cpu::TimingResult
SaturnModel::run(const isa::Program &prog) const
{
    using isa::Uop;
    using isa::UopKind;

    static thread_local VectorUnitState st;
    st.reset();
    cpu::InOrderCore frontend(cfg_.frontend);

    auto beats_of = [&](const Uop &u) -> uint64_t {
        // A grouped instruction sequences the whole register group;
        // an ungrouped one only the live elements.
        uint64_t dlen = static_cast<uint64_t>(cfg_.dlen);
        if (u.lmul8 > 8) {
            uint64_t group_bits = static_cast<uint64_t>(u.lmul8) *
                                  static_cast<uint64_t>(cfg_.vlen) / 8;
            return std::max<uint64_t>(1, (group_bits + dlen - 1) / dlen);
        }
        uint64_t live_bits =
            static_cast<uint64_t>(u.vl) * static_cast<uint64_t>(u.sew);
        return std::max<uint64_t>(1, (live_bits + dlen - 1) / dlen);
    };

    auto coproc = [&](const Uop &u, uint64_t present,
                      cpu::RegReadyFile &sregs, cpu::RegReadyFile &vregs)
        -> std::pair<uint64_t, uint64_t> {
        uint64_t release = present;

        if (u.kind == UopKind::VSetVl) {
            // Decode-stage handling with a short interlock before the
            // new VL takes effect for the following vector ops.
            sregs.setReady(u.dst, present + 2);
            return {present + 1, present + 2};
        }

        // Queue back-pressure: frontend blocks when the vector unit
        // already holds vqDepth undrained instructions.
        while (!st.inFlight.empty() && st.inFlight.front() <= present)
            st.inFlight.popFront();
        if (static_cast<int>(st.inFlight.size()) >= cfg_.vqDepth) {
            uint64_t drain = st.inFlight.front();
            st.stallQueueFull += drain - present;
            release = drain;
            st.inFlight.popFront();
        }

        uint64_t start = std::max(present, release);
        // Chaining: wait for the first elements of vector operands.
        for (uint32_t src : {u.src0, u.src1, u.src2}) {
            if (src != isa::kNoReg && isa::Program::isVReg(src))
                start = std::max(start, st.chainReady.readyTime(src));
        }

        uint64_t beats = beats_of(u);
        uint64_t completion = 0;

        switch (u.kind) {
          case UopKind::VLoad:
          case UopKind::VLoadStrided: {
            start = std::max(start, st.vluFree);
            uint64_t lat = static_cast<uint64_t>(cfg_.memLat);
            uint64_t occ = u.kind == UopKind::VLoadStrided
                               ? std::max<uint64_t>(u.vl, 1) // 1 elem/cyc
                               : beats;
            st.vluFree = start + occ;
            completion = start + lat + occ;
            st.chainReady.setReady(u.dst, start + lat + 1);
            vregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VStore: {
            start = std::max(start, st.vsuFree);
            // Stores need full operand data, not just the head.
            for (uint32_t src : {u.src0, u.src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            st.vsuFree = start + beats;
            completion = start + beats + 1;
            break;
          }
          case UopKind::VArith:
          case UopKind::VFma: {
            start = std::max(start, st.vxuFree);
            st.vxuFree = start + beats;
            completion =
                start + static_cast<uint64_t>(cfg_.pipeLat) + beats;
            st.chainReady.setReady(u.dst,
                                   start + cfg_.pipeLat + cfg_.chainLat);
            vregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VRed: {
            start = std::max(start, st.vxuFree);
            // Reductions cannot chain out: full tree latency.
            for (uint32_t src : {u.src0, u.src1}) {
                if (src != isa::kNoReg && isa::Program::isVReg(src))
                    start = std::max(start, vregs.readyTime(src));
            }
            // Ordered FP reductions are slow on short-vector
            // machines: a multi-pass lane tree plus pipeline drain.
            uint64_t tree = 12;
            st.vxuFree = start + beats + tree;
            completion = start + cfg_.pipeLat + beats + tree +
                         static_cast<uint64_t>(cfg_.scalarMoveLat);
            sregs.setReady(u.dst, completion);
            break;
          }
          case UopKind::VMove: {
            // vfmv.f.s: scalar destination, waits for full vreg.
            uint64_t src_ready = 0;
            if (u.src0 != isa::kNoReg && isa::Program::isVReg(u.src0))
                src_ready = vregs.readyTime(u.src0);
            start = std::max(start, src_ready);
            completion =
                start + static_cast<uint64_t>(cfg_.scalarMoveLat);
            if (isa::Program::isVReg(u.dst)) {
                vregs.setReady(u.dst, completion);
                st.chainReady.setReady(u.dst, completion);
            } else {
                sregs.setReady(u.dst, completion);
            }
            break;
          }
          default:
            rtoc_panic("saturn '%s': unsupported coprocessor uop %s",
                       cfg_.name.c_str(), isa::uopName(u.kind));
        }

        st.inFlight.pushBack(completion);
        ++st.vinstrs;
        return {release, completion};
    };

    cpu::TimingResult result = frontend.runWithCoproc(prog, coproc);
    result.stats.set("vector_instrs", st.vinstrs);
    result.stats.set("stall_vq_full", st.stallQueueFull);
    return result;
}

} // namespace rtoc::vector
