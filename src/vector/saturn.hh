/**
 * @file
 * Timing model of a Saturn-like short-vector RVV unit attached to an
 * in-order scalar frontend (Rocket or Shuttle), per §4.1/§5.1.2.
 *
 * Modelled mechanisms, each needed by a paper finding:
 *  - frontend coupling: every vector instruction consumes a scalar
 *    issue slot, so a single-issue Rocket frontend starves the vector
 *    unit on short-vector kernels (Fig. 11);
 *  - instruction occupancy in datapath beats: ceil(VL*SEW/DLEN) for a
 *    partially-filled register, but a grouped (LMUL>1) instruction
 *    walks the whole register group, which is why LMUL helps large
 *    elementwise kernels yet hurts the short GEMVs of the iterative
 *    passes (Fig. 4);
 *  - chaining between producer/consumer vector instructions;
 *  - a bounded in-flight vector queue providing back-pressure;
 *  - scalar-read-of-vector synchronization (reductions, vfmv.f.s).
 */

#ifndef RTOC_VECTOR_SATURN_HH
#define RTOC_VECTOR_SATURN_HH

#include <string>

#include "cpu/inorder.hh"

namespace rtoc::vector {

/** Saturn configuration: vector lengths plus frontend choice. */
struct SaturnConfig
{
    std::string name = "saturn-v512d256-rocket";
    int vlen = 512;        ///< architectural vector length (bits)
    int dlen = 256;        ///< datapath width (bits/cycle)
    int vqDepth = 8;       ///< in-flight vector instructions
    int pipeLat = 4;       ///< dispatch-to-first-result latency
    int chainLat = 2;      ///< extra beats before a consumer may chain
    int memLat = 6;        ///< vector load fixed latency
    int scalarMoveLat = 3; ///< vector->scalar transfer latency
    cpu::InOrderConfig frontend = cpu::InOrderConfig::rocket();

    /** Named configuration helper, e.g. saturn(512, 256, shuttle). */
    static SaturnConfig make(int vlen, int dlen, bool shuttle_frontend);
};

/** Saturn vector machine: in-order frontend + decoupled vector unit. */
class SaturnModel : public cpu::CoreModel
{
  public:
    explicit SaturnModel(SaturnConfig cfg) : cfg_(std::move(cfg)) {}

    cpu::TimingResult
    runStream(const isa::UopStreamView &view) const override;

    cpu::TimingResult runAos(const isa::Program &prog) const override;

    /**
     * Fused vector-machine lane loop: one column pass advances one
     * (frontend scoreboard + vector-unit state) pair per SaturnModel
     * in @p models — lanes may differ in VLEN/DLEN/queue depth AND
     * frontend. Bit-identical to sequential runStream; falls back to
     * the sequential base when a foreign model appears in the group.
     */
    std::vector<cpu::TimingResult>
    runStreamBatch(const isa::UopStreamView &view,
                   const std::vector<const cpu::TimingModel *> &models)
        const override;

    std::string name() const override { return cfg_.name; }

    std::string cacheKey() const override;

    const SaturnConfig &config() const { return cfg_; }

    /** Maximum elements per vector register for @p sew bits. */
    int vlmax(int sew = 32) const { return cfg_.vlen / sew; }

  private:
    SaturnConfig cfg_;
};

} // namespace rtoc::vector

#endif // RTOC_VECTOR_SATURN_HH
