#include "matlib/fixed.hh"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace rtoc::matlib {

const char *
formatName(NumericFormat f)
{
    switch (f) {
      case NumericFormat::F32: return "f32";
      case NumericFormat::I16: return "i16";
      case NumericFormat::I32: return "i32";
      case NumericFormat::BF16: return "bf16";
    }
    rtoc_panic("formatName: bad format %d", static_cast<int>(f));
}

int
formatSewBits(NumericFormat f)
{
    switch (f) {
      case NumericFormat::F32: return 32;
      case NumericFormat::I16: return 16;
      case NumericFormat::I32: return 32;
      case NumericFormat::BF16: return 16;
    }
    rtoc_panic("formatSewBits: bad format %d", static_cast<int>(f));
}

int
formatElemBytes(NumericFormat f)
{
    return formatSewBits(f) / 8;
}

std::string
formatKeySuffix(NumericFormat f)
{
    if (f == NumericFormat::F32)
        return "";
    return std::string("|fmt:") + formatName(f);
}

NumericFormat
parseFormat(const std::string &name)
{
    if (name == "f32")
        return NumericFormat::F32;
    if (name == "i16")
        return NumericFormat::I16;
    if (name == "i32")
        return NumericFormat::I32;
    if (name == "bf16")
        return NumericFormat::BF16;
    rtoc_fatal("unknown numeric format '%s' (want f32|i16|i32|bf16)",
               name.c_str());
}

NumericFormat
defaultFormat()
{
    static NumericFormat cached = [] {
        const char *env = std::getenv("RTOC_FORMAT");
        if (!env || !*env)
            return NumericFormat::F32;
        return parseFormat(env);
    }();
    return cached;
}

namespace fx {

float
toBf16(float v)
{
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    // Round to nearest even on the truncated 16 mantissa bits; NaN
    // payloads are forced to a quiet pattern instead of rounding.
    if ((bits & 0x7f800000u) == 0x7f800000u && (bits & 0x007fffffu)) {
        bits = (bits & 0xffff0000u) | 0x00400000u;
    } else {
        bits += 0x7fffu + ((bits >> 16) & 1u);
        bits &= 0xffff0000u;
    }
    float out;
    std::memcpy(&out, &bits, sizeof(out));
    return out;
}

namespace {

/** Raw element bits available below the sign bit. */
int
magnitudeBits(NumericFormat f)
{
    return f == NumericFormat::I16 ? 15 : 31;
}

/** Fraction bits that keep |v| <= range representable. */
int
fracBitsFor(NumericFormat f, double range)
{
    // Headroom of 2x over the calibrated range before the quantizer
    // clamps; the saturating datapath absorbs (and counts) the rest.
    double bound = std::max(range, 1e-6) * 2.0;
    int int_bits = std::max(0, static_cast<int>(
        std::ceil(std::log2(bound))));
    return std::max(0, std::min(magnitudeBits(f) - 1 - int_bits,
                                magnitudeBits(f) - 1));
}

/** Quantize @p v onto a 2^-frac grid, clamping to the element range. */
int64_t
quantizeSat(NumericFormat f, float v, int frac, uint64_t &sat_count)
{
    const int64_t lim = (int64_t{1} << magnitudeBits(f)) - 1;
    double scaled = static_cast<double>(v) * std::ldexp(1.0, frac);
    if (!std::isfinite(scaled)) {
        ++sat_count;
        return scaled > 0 ? lim : -lim - 1;
    }
    if (scaled >= static_cast<double>(lim)) {
        if (scaled > static_cast<double>(lim))
            ++sat_count;
        return lim;
    }
    if (scaled <= static_cast<double>(-lim - 1)) {
        if (scaled < static_cast<double>(-lim - 1))
            ++sat_count;
        return -lim - 1;
    }
    return std::llround(scaled);
}

float
dequantize(int64_t q, int frac)
{
    return static_cast<float>(std::ldexp(static_cast<double>(q), -frac));
}

/**
 * Saturating accumulator add: i16 datapaths accumulate in int32
 * (products are 16x16 -> 32 bit, sums clamp at int32), i32 datapaths
 * in int64 with overflow clamping.
 */
int64_t
accAddSat(NumericFormat f, int64_t acc, int64_t prod, uint64_t &sat_count)
{
    if (f == NumericFormat::I16) {
        const int64_t lim = INT32_MAX;
        int64_t sum = acc + prod;
        if (sum > lim) {
            ++sat_count;
            return lim;
        }
        if (sum < -lim - 1) {
            ++sat_count;
            return -lim - 1;
        }
        return sum;
    }
    int64_t sum;
    if (__builtin_add_overflow(acc, prod, &sum)) {
        ++sat_count;
        return acc > 0 ? INT64_MAX : INT64_MIN;
    }
    return sum;
}

/**
 * Round-shift a double-width accumulator (at a_frac + x_frac) onto the
 * @p out_frac output grid with saturation — the per-kernel shift
 * schedule of the fixed-point MAC.
 */
int64_t
shiftRoundSat(NumericFormat f, int64_t acc, int shift, uint64_t &sat_count)
{
    int64_t v = acc;
    if (shift > 0) {
        const int64_t half = int64_t{1} << (shift - 1);
        // Round half away from zero, matching llround in the quantizer.
        v = v >= 0 ? (v + half) >> shift : -((-v + half) >> shift);
    } else if (shift < 0) {
        v <<= -shift;
    }
    const int64_t lim = (int64_t{1} << magnitudeBits(f)) - 1;
    if (v > lim) {
        ++sat_count;
        return lim;
    }
    if (v < -lim - 1) {
        ++sat_count;
        return -lim - 1;
    }
    return v;
}

/** One fixed-point dot product of a matrix row against x. */
float
fxDot(NumericFormat f, const KernelSpec &s, Counters &c, const Mat &a,
      int row, Mat x, bool transposed)
{
    const int n = x.cols;
    int64_t acc = 0;
    for (int j = 0; j < n; ++j) {
        float av = transposed ? a.at(j, row) : a.at(row, j);
        int64_t qa = quantizeSat(f, av, s.aFrac, c.quantSats);
        int64_t qx = quantizeSat(f, x[j], s.xFrac, c.quantSats);
        acc = accAddSat(f, acc, qa * qx, c.accSats);
    }
    int64_t q = shiftRoundSat(f, acc, s.aFrac + s.xFrac - s.outFrac,
                              c.accSats);
    return dequantize(q, s.outFrac);
}

/** Scale-and-store onto the output grid (alpha/beta folding). */
float
fxStore(NumericFormat f, const KernelSpec &s, Counters &c, float v)
{
    return dequantize(quantizeSat(f, v, s.outFrac, c.quantSats),
                      s.outFrac);
}

/** bfloat16 dot: bf16 operands, float32 accumulate. */
float
bfDot(const Mat &a, int row, Mat x, bool transposed)
{
    const int n = x.cols;
    float acc = 0.0f;
    for (int j = 0; j < n; ++j) {
        float av = transposed ? a.at(j, row) : a.at(row, j);
        acc += toBf16(av) * toBf16(x[j]);
    }
    return acc;
}

void
gemvAny(NumericFormat f, const Scaling &sc, Counters &c, Mat y,
        const Mat &a, Mat x, float alpha, float beta, bool transposed)
{
    const KernelSpec &s = transposed ? sc.gemvT : sc.gemv;
    const int m = y.cols;
    for (int i = 0; i < m; ++i) {
        if (f == NumericFormat::BF16) {
            float dot = bfDot(a, i, x, transposed);
            y[i] = toBf16(alpha * dot + beta * toBf16(y[i]));
        } else {
            float dot = fxDot(f, s, c, a, i, x, transposed);
            y[i] = fxStore(f, s, c, alpha * dot + beta * y[i]);
        }
    }
}

} // namespace

Scaling
Scaling::forRanges(NumericFormat f, double mat_range, double vec_range,
                   double acc_range)
{
    Scaling sc;
    if (f == NumericFormat::F32 || f == NumericFormat::BF16)
        return sc; // bf16 carries its own exponent; no shift schedule
    int a_frac = fracBitsFor(f, mat_range);
    int x_frac = fracBitsFor(f, vec_range);
    int out_frac = fracBitsFor(f, acc_range);
    sc.gemv = {a_frac, x_frac, out_frac};
    sc.gemvT = {a_frac, x_frac, out_frac};
    // saxpby combines two vector-range operands onto the vector grid.
    sc.saxpby = {x_frac, x_frac, out_frac};
    return sc;
}

void
gemv(NumericFormat f, const Scaling &s, Counters &c, Mat y, const Mat &a,
     Mat x, float alpha, float beta)
{
    gemvAny(f, s, c, y, a, x, alpha, beta, false);
}

void
gemvT(NumericFormat f, const Scaling &s, Counters &c, Mat y, const Mat &a,
      Mat x, float alpha, float beta)
{
    gemvAny(f, s, c, y, a, x, alpha, beta, true);
}

void
saxpby(NumericFormat f, const Scaling &s, Counters &c, Mat out, float sa,
       const Mat &a, float sb, const Mat &b)
{
    const int n = out.size();
    Mat af(a.data, 1, n), bf(b.data, 1, n), of(out.data, 1, n);
    for (int i = 0; i < n; ++i) {
        if (f == NumericFormat::BF16) {
            of[i] = toBf16(sa * toBf16(af[i]) + sb * toBf16(bf[i]));
        } else {
            float av = dequantize(
                quantizeSat(f, af[i], s.saxpby.aFrac, c.quantSats),
                s.saxpby.aFrac);
            float bv = dequantize(
                quantizeSat(f, bf[i], s.saxpby.xFrac, c.quantSats),
                s.saxpby.xFrac);
            of[i] = fxStore(f, s.saxpby, c, sa * av + sb * bv);
        }
    }
}

void
gemvSaxpby(NumericFormat f, const Scaling &s, Counters &c, Mat y,
           const Mat &a, Mat x, float alpha, float beta, float sa,
           float sb, const Mat &b)
{
    gemv(f, s, c, y, a, x, alpha, beta);
    saxpby(f, s, c, y, sa, y, sb, b);
}

} // namespace fx

} // namespace rtoc::matlib
