#include "gemmini_backend.hh"

#include <algorithm>

namespace rtoc::matlib {

using isa::kNoReg;
using isa::Uop;
using isa::UopKind;

GemminiMapping
GemminiMapping::baseline()
{
    return GemminiMapping{};
}

GemminiMapping
GemminiMapping::staticMapped()
{
    GemminiMapping m;
    m.staticSchedule = true;
    m.unroll = true;
    return m;
}

GemminiMapping
GemminiMapping::fullyOptimized()
{
    GemminiMapping m;
    m.staticSchedule = true;
    m.unroll = true;
    m.fineGrained = true;
    m.spadResident = true;
    m.useElementwise = true;
    m.usePooling = true;
    return m;
}

GemminiBackend::GemminiBackend(GemminiMapping mapping)
    : mapping_(mapping)
{
    if (mapping_.spadResident && !mapping_.fineGrained) {
        rtoc_fatal("Gemmini CISC instructions require operands in "
                   "memory; scratchpad residency needs the "
                   "fine-grained ISA (paper §4.2.3)");
    }
}

std::string
GemminiBackend::name() const
{
    if (mapping_.spadResident && mapping_.usePooling)
        return "gemmini-opt-pool";
    if (mapping_.spadResident && mapping_.useElementwise)
        return "gemmini-opt-ewise";
    if (mapping_.spadResident)
        return "gemmini-spad";
    if (mapping_.staticSchedule)
        return "gemmini-static";
    return "gemmini-baseline";
}

std::string
GemminiBackend::cacheKey() const
{
    // name() collapses some option combinations; spell them all out.
    return std::string("gemmini") +
           (mapping_.staticSchedule ? ":static" : "") +
           (mapping_.unroll ? ":unroll" : "") +
           (mapping_.fineGrained ? ":fine" : ":cisc") +
           (mapping_.spadResident ? ":spad" : "") +
           (mapping_.useElementwise ? ":ewise" : "") +
           (mapping_.usePooling ? ":pool" : "") + ":mesh" +
           std::to_string(mapping_.meshDim) + formatKeySuffix(format());
}

void
GemminiBackend::emitCmdConstruction()
{
    if (!emitting())
        return;
    if (mapping_.staticSchedule) {
        // Precomputed arguments: one immediate materialization.
        prog_->push(Uop::scalar(UopKind::IntAlu, prog_->newReg()));
    } else {
        // Dynamic tiling/indexing: the scalar CPU packs two 64-bit
        // RoCC operands with shifts/ors plus an index multiply.
        for (int i = 0; i < 6; ++i)
            prog_->push(Uop::scalar(UopKind::IntAlu, prog_->newReg()));
        prog_->push(Uop::scalar(UopKind::IntMul, prog_->newReg()));
    }
}

void
GemminiBackend::emitLoopOverhead()
{
    if (!emitting() || mapping_.unroll)
        return;
    prog_->push(Uop::scalar(UopKind::IntAlu, prog_->newReg()));
    Uop br = Uop::scalar(UopKind::Branch, kNoReg);
    br.taken = 1;
    prog_->push(br);
}

void
GemminiBackend::emitCmd(UopKind kind, int rows, int cols, int bytes,
                        bool pooled)
{
    if (!emitting())
        return;
    emitCmdConstruction();
    emitLoopOverhead();
    Uop u = Uop::rocc(kind, static_cast<uint16_t>(rows),
                      static_cast<uint16_t>(cols),
                      static_cast<uint32_t>(bytes));
    u.taken = pooled ? 1 : 0;
    prog_->push(u);
}

int
GemminiBackend::tiles(int r, int c) const
{
    int d = effMeshDim();
    return ((r + d - 1) / d) * ((c + d - 1) / d);
}

void
GemminiBackend::initResident(std::initializer_list<const Mat *> mats)
{
    // Per-solver-session reset: residency and config-elision state
    // must not leak across sessions. A fresh workspace can heap-reuse
    // the addresses of a destroyed one, and a ProgramCache hit can
    // skip an earlier emission entirely, so carried state would make
    // the emitted stream depend on allocation and cache history
    // instead of only on (mapping, shape, iters).
    resident_.clear();
    config_valid_ = false;
    last_cfg_rows_ = -1;
    last_cfg_cols_ = -1;
    if (!mapping_.spadResident)
        return;
    // One-time staging of the solver workspace plus utility matrices
    // (identity, negated identity, rho-scaled identities) into
    // scratchpad bank 0 (paper Fig. 8).
    for (const Mat *m : mats) {
        resident_.insert(m->data);
        emitCmd(UopKind::RoccMvin, m->rows, m->cols, m->size() * 4);
    }
    for (int util = 0; util < 4; ++util) {
        emitCmd(UopKind::RoccMvin, effMeshDim(), effMeshDim(),
                effMeshDim() * effMeshDim() * 4);
    }
}

void
GemminiBackend::stage(const Mat &m)
{
    if (mapping_.spadResident && resident_.count(m.data))
        return;
    if (mapping_.spadResident) {
        // First touch: move in and keep (results of prior Gemmini ops
        // are already marked resident by retire()).
        resident_.insert(m.data);
    }
    bool column = m.isVec();
    // Vectors land in a single scratchpad column: one element per
    // cycle (§4.2.4).
    if (column)
        emitCmd(UopKind::RoccMvin, m.size(), 1, m.size() * 4);
    else
        emitCmd(UopKind::RoccMvin, m.rows, m.cols, m.size() * 4);
}

void
GemminiBackend::retire(const Mat &m)
{
    if (mapping_.spadResident) {
        resident_.insert(m.data);
        return; // stays in scratchpad; no mvout, no fence
    }
    bool column = m.isVec();
    if (column)
        emitCmd(UopKind::RoccMvout, m.size(), 1, m.size() * 4);
    else
        emitCmd(UopKind::RoccMvout, m.rows, m.cols, m.size() * 4);
    // Library-style mapping: the CPU reads results right after the
    // call, so a fence must order the mvout against scalar loads.
    emitCmd(UopKind::RoccFence, 0, 0);
}

void
GemminiBackend::emitMeshEwise(int n, int passes)
{
    // Elementwise strip on the mesh: operands packed across
    // scratchpad rows in meshDim-wide tiles.
    int d = effMeshDim();
    int tile_count = (n + d * d - 1) / (d * d);
    for (int p = 0; p < passes; ++p) {
        if (!config_valid_) {
            emitCmd(UopKind::RoccConfig, 0, 0);
            config_valid_ = true;
        }
        for (int t = 0; t < tile_count; ++t) {
            emitCmd(UopKind::RoccPreload, d, d);
            emitCmd(UopKind::RoccCompute, d, d);
        }
    }
}

void
GemminiBackend::emitCpuFallback(int n, int fp_per_elem)
{
    // Results must round-trip through memory: mvout, fence, scalar
    // loop, mvin of the produced values.
    emitCmd(UopKind::RoccMvout, n, 1, n * 4);
    emitCmd(UopKind::RoccFence, 0, 0);
    if (emitting()) {
        for (int i = 0; i < n; ++i) {
            uint32_t v = prog_->newReg();
            prog_->push(Uop::mem(UopKind::Load, v, kNoReg));
            uint32_t cur = v;
            for (int f = 0; f < fp_per_elem; ++f) {
                uint32_t nv = prog_->newReg();
                prog_->push(Uop::scalar(UopKind::FpMinMax, nv, cur));
                cur = nv;
            }
            prog_->push(Uop::mem(UopKind::Store, kNoReg, cur));
            prog_->push(Uop::scalar(UopKind::IntAlu, prog_->newReg()));
            Uop br = Uop::scalar(UopKind::Branch, kNoReg);
            br.taken = i + 1 < n;
            prog_->push(br);
        }
    }
    emitCmd(UopKind::RoccMvin, n, 1, n * 4);
}

void
GemminiBackend::gemv(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    computeGemv(y, a, x, alpha, beta);
    if (!emitting())
        return;

    int d = effMeshDim();
    int tm = (a.rows + d - 1) / d;
    int tn = (a.cols + d - 1) / d;

    if (!mapping_.fineGrained) {
        // CISC tiled matmul: several config commands, operands in
        // DRAM, hardware sequencing of the (few) fine-grained ops.
        for (int c = 0; c < 5; ++c)
            emitCmd(UopKind::RoccConfig, 0, 0);
        emitCmd(UopKind::RoccMvin, a.rows, a.cols, a.size() * 4);
        emitCmd(UopKind::RoccMvin, x.size(), 1, x.size() * 4);
        for (int t = 0; t < tm * tn; ++t) {
            emitCmd(UopKind::RoccPreload, d, d);
            emitCmd(UopKind::RoccCompute, d, d);
        }
        emitCmd(UopKind::RoccMvout, y.size(), 1, y.size() * 4);
        emitCmd(UopKind::RoccFence, 0, 0);
        return;
    }

    // Reuse the execute configuration across same-shape operations
    // (§4.2.2 redundant-configuration elimination).
    if (!config_valid_ || last_cfg_rows_ != a.rows ||
        last_cfg_cols_ != a.cols) {
        emitCmd(UopKind::RoccConfig, 0, 0);
        config_valid_ = true;
        last_cfg_rows_ = a.rows;
        last_cfg_cols_ = a.cols;
    }

    stage(a);
    stage(x);
    if (beta != 0.0f)
        stage(y);

    // Output-stationary tiles: preload the output tile (bias or
    // zero), stream matrix rows through the mesh.
    for (int t = 0; t < tm * tn; ++t) {
        emitCmd(UopKind::RoccPreload, d, d);
        emitCmd(UopKind::RoccCompute, d, std::min(a.cols, d));
    }
    // Scaling fused via a rho/alpha-scaled identity pass when the
    // elementwise engine is in play and alpha != 1.
    if (alpha != 1.0f && mapping_.useElementwise)
        emitMeshEwise(y.size(), 1);
    retire(y);
}

void
GemminiBackend::gemvT(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    computeGemvT(y, a, x, alpha, beta);
    if (!emitting())
        return;
    // Same tile walk with transposed roles.
    Mat fake(const_cast<float *>(a.data), a.cols, a.rows);
    int d = effMeshDim();
    int tm = (fake.rows + d - 1) / d;
    int tn = (fake.cols + d - 1) / d;
    if (!config_valid_ || last_cfg_rows_ != fake.rows ||
        last_cfg_cols_ != fake.cols) {
        emitCmd(UopKind::RoccConfig, 0, 0);
        config_valid_ = true;
        last_cfg_rows_ = fake.rows;
        last_cfg_cols_ = fake.cols;
    }
    stage(a);
    stage(x);
    if (beta != 0.0f)
        stage(y);
    for (int t = 0; t < tm * tn; ++t) {
        emitCmd(UopKind::RoccPreload, d, d);
        emitCmd(UopKind::RoccCompute, d, std::min(fake.cols, d));
    }
    if (alpha != 1.0f && mapping_.useElementwise)
        emitMeshEwise(y.size(), 1);
    retire(y);
}

void
GemminiBackend::gemm(Mat c, const Mat &a, const Mat &b)
{
    ref::gemm(c, a, b);
    if (!emitting())
        return;
    int d = effMeshDim();
    int t = tiles(c.rows, c.cols) * ((a.cols + d - 1) / d);
    if (!config_valid_) {
        emitCmd(UopKind::RoccConfig, 0, 0);
        config_valid_ = true;
    }
    stage(a);
    stage(b);
    for (int i = 0; i < t; ++i) {
        emitCmd(UopKind::RoccPreload, d, d);
        emitCmd(UopKind::RoccCompute, d, d);
    }
    retire(c);
}

void
GemminiBackend::saxpby(Mat out, float sa, const Mat &a, float sb,
                       const Mat &b)
{
    computeSaxpby(out, sa, a, sb, b);
    if (!emitting())
        return;
    stage(a);
    stage(b);
    if (mapping_.useElementwise) {
        // Additions run on the mesh against the (±/scaled) identity
        // utility matrices; one pass per operand.
        emitMeshEwise(out.size(), 2);
        retire(out);
    } else {
        emitCpuFallback(out.size(), 2);
    }
}

void
GemminiBackend::scale(Mat out, const Mat &a, float s)
{
    ref::scale(out, a, s);
    if (!emitting())
        return;
    stage(a);
    if (mapping_.useElementwise) {
        emitMeshEwise(out.size(), 1); // s*I utility matrix multiply
        retire(out);
    } else {
        emitCpuFallback(out.size(), 1);
    }
}

void
GemminiBackend::accumDiff(Mat acc, const Mat &a, const Mat &b)
{
    ref::accumDiff(acc, a, b);
    if (!emitting())
        return;
    stage(a);
    stage(b);
    stage(acc);
    if (mapping_.useElementwise) {
        emitMeshEwise(acc.size(), 2);
        retire(acc);
    } else {
        emitCpuFallback(acc.size(), 2);
    }
}

void
GemminiBackend::axpyDiff(Mat acc, float s, const Mat &a, const Mat &b)
{
    ref::axpyDiff(acc, s, a, b);
    if (!emitting())
        return;
    stage(a);
    stage(b);
    stage(acc);
    if (mapping_.useElementwise) {
        emitMeshEwise(acc.size(), 2); // diff pass + scaled-I accumulate
        retire(acc);
    } else {
        emitCpuFallback(acc.size(), 2);
    }
}

void
GemminiBackend::rowScaleNeg(Mat out, const Mat &a, const Mat &diag)
{
    ref::rowScaleNeg(out, a, diag);
    if (!emitting())
        return;
    stage(a);
    stage(diag);
    if (mapping_.useElementwise) {
        emitMeshEwise(out.size(), 1); // multiply against diag tile
        retire(out);
    } else {
        emitCpuFallback(out.size(), 1);
    }
}

void
GemminiBackend::clampVec(Mat out, const Mat &a, const Mat &lo,
                         const Mat &hi)
{
    ref::clampVec(out, a, lo, hi);
    if (!emitting())
        return;
    stage(a);
    stage(lo);
    stage(hi);
    if (mapping_.useElementwise) {
        // clip_low(x,min)=ReLU(x-min)+min; clip_high analogous
        // (Equations 2 and 3): two ReLU passes plus two adds.
        emitMeshEwise(out.size(), 4);
        retire(out);
    } else {
        emitCpuFallback(out.size(), 2);
    }
}

void
GemminiBackend::clampConst(Mat out, const Mat &a, float lo, float hi)
{
    ref::clampConst(out, a, lo, hi);
    if (!emitting())
        return;
    stage(a);
    if (mapping_.useElementwise) {
        emitMeshEwise(out.size(), 4);
        retire(out);
    } else {
        emitCpuFallback(out.size(), 2);
    }
}

float
GemminiBackend::absMaxDiff(const Mat &a, const Mat &b)
{
    float r = ref::absMaxDiff(a, b);
    if (!emitting())
        return r;
    stage(a);
    stage(b);
    int n = a.size();
    if (mapping_.useElementwise) {
        // abs(x) = ReLU(x) + ReLU(-x): difference pass + two ReLU
        // passes on the mesh (Equation 1).
        emitMeshEwise(n, 3);
    } else {
        emitCpuFallback(n, 3);
        n = 0; // fallback already reduced on CPU
    }

    int cpu_elems = n;
    if (n > 0 && mapping_.usePooling) {
        // Max-pool on mvout reduces four scratchpad rows per output
        // (§4.2.6): the CPU only reduces the pooled remainder.
        emitCmd(UopKind::RoccMvout, n, 1, n * 4, /*pooled=*/true);
        emitCmd(UopKind::RoccFence, 0, 0);
        cpu_elems = (n + 3) / 4;
    } else if (n > 0) {
        emitCmd(UopKind::RoccMvout, n, 1, n * 4);
        emitCmd(UopKind::RoccFence, 0, 0);
    }
    // Final scalar reduction.
    uint32_t acc = prog_->newReg();
    prog_->push(Uop::scalar(UopKind::FpMove, acc));
    for (int i = 0; i < cpu_elems; ++i) {
        uint32_t v = prog_->newReg();
        prog_->push(Uop::mem(UopKind::Load, v, kNoReg));
        uint32_t nacc = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::FpMinMax, nacc, v, acc));
        acc = nacc;
        Uop br = Uop::scalar(UopKind::Branch, kNoReg);
        br.taken = i + 1 < cpu_elems;
        prog_->push(br);
    }
    return r;
}

void
GemminiBackend::copy(Mat out, const Mat &a)
{
    ref::copy(out, a);
    if (!emitting())
        return;
    stage(a);
    if (mapping_.spadResident) {
        // Identity multiply moves data within the scratchpad.
        emitMeshEwise(out.size(), 1);
        retire(out);
    } else {
        emitCmd(UopKind::RoccMvout, out.size(), 1, out.size() * 4);
        emitCmd(UopKind::RoccFence, 0, 0);
    }
}

void
GemminiBackend::fill(Mat out, float s)
{
    ref::fill(out, s);
    if (!emitting())
        return;
    if (mapping_.spadResident) {
        emitMeshEwise(out.size(), 1);
        resident_.insert(out.data);
    } else {
        emitCmd(UopKind::RoccMvin, out.size(), 1, out.size() * 4);
    }
}

void
GemminiBackend::sync()
{
    if (!emitting())
        return;
    emitCmd(UopKind::RoccFence, 0, 0);
    // Conservatively invalidate layout assumptions after an external
    // synchronization point.
    config_valid_ = false;
}

} // namespace rtoc::matlib
