/**
 * @file
 * Scalar backends.
 *
 * Flavor::Naive models the reference matlib C code: every operation
 * is a function call with per-element loops — per element it pays
 * index arithmetic, a loop branch, and all loads/stores.
 *
 * Flavor::Optimized models well-tuned scalar code (the paper's Eigen
 * baseline): loops fully unrolled for the small fixed sizes found in
 * TinyMPC, operands held in registers across the kernel, address
 * arithmetic hoisted, and GEMV scheduled with interleaved accumulator
 * chains so an OoO core can extract ILP.
 */

#ifndef RTOC_MATLIB_SCALAR_BACKEND_HH
#define RTOC_MATLIB_SCALAR_BACKEND_HH

#include "matlib/backend.hh"

namespace rtoc::matlib {

/** Software-quality flavor of the scalar mapping. */
enum class ScalarFlavor { Naive, Optimized };

/** Scalar-ISA backend for any CPU model (Rocket/Shuttle/BOOM). */
class ScalarBackend : public Backend
{
  public:
    explicit ScalarBackend(ScalarFlavor flavor) : flavor_(flavor) {}

    std::string
    name() const override
    {
        return flavor_ == ScalarFlavor::Naive ? "scalar-matlib"
                                              : "scalar-eigen";
    }

    void gemv(Mat y, const Mat &a, Mat x, float alpha,
              float beta) override;
    void gemvT(Mat y, const Mat &a, Mat x, float alpha,
               float beta) override;
    void gemm(Mat c, const Mat &a, const Mat &b) override;
    void saxpby(Mat out, float sa, const Mat &a, float sb,
                const Mat &b) override;
    void scale(Mat out, const Mat &a, float s) override;
    void accumDiff(Mat acc, const Mat &a, const Mat &b) override;
    void axpyDiff(Mat acc, float s, const Mat &a, const Mat &b) override;
    void rowScaleNeg(Mat out, const Mat &a, const Mat &diag) override;
    void clampVec(Mat out, const Mat &a, const Mat &lo,
                  const Mat &hi) override;
    void clampConst(Mat out, const Mat &a, float lo, float hi) override;
    float absMaxDiff(const Mat &a, const Mat &b) override;
    void copy(Mat out, const Mat &a) override;
    void fill(Mat out, float s) override;

    ScalarFlavor flavor() const { return flavor_; }

  private:
    /** Function-call prologue/epilogue cost of the naive library. */
    void emitCallOverhead();

    /** Elementwise loop skeleton shared by the map-style ops:
     *  emits @p n iterations with @p loads loads, @p fp_ops
     *  floating-point uops of kind @p k, and one store. */
    void emitEwiseLoop(int n, int loads, int fp_ops, isa::UopKind k);

    /** Emit a GEMV micro-op stream (transpose selects column walk). */
    void emitGemv(int m, int n, bool accumulate_into_y, bool scaled);

    ScalarFlavor flavor_;
};

} // namespace rtoc::matlib

#endif // RTOC_MATLIB_SCALAR_BACKEND_HH
