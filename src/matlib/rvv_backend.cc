#include "rvv_backend.hh"

#include <algorithm>
#include <vector>

namespace rtoc::matlib {

using isa::kNoReg;
using isa::Uop;
using isa::UopKind;

RvvMapping
RvvMapping::library(int lmul)
{
    RvvMapping m;
    m.lmul = lmul;
    return m;
}

RvvMapping
RvvMapping::handOptimized(int lmul)
{
    RvvMapping m;
    m.lmul = lmul;
    m.unroll = true;
    m.fuse = true;
    m.transposedLayout = true;
    return m;
}

RvvBackend::RvvBackend(int vlen, RvvMapping mapping)
    : vlen_(vlen), mapping_(mapping)
{
    if (mapping_.lmul != 1 && mapping_.lmul != 2 && mapping_.lmul != 4 &&
        mapping_.lmul != 8) {
        rtoc_fatal("RVV LMUL must be 1/2/4/8, got %d", mapping_.lmul);
    }
}

std::string
RvvBackend::name() const
{
    std::string n = "rvv";
    if (mapping_.fuse || mapping_.unroll)
        n += "-opt";
    else
        n += "-matlib";
    if (mapping_.lmul > 1)
        n += "-m" + std::to_string(mapping_.lmul);
    return n;
}

std::string
RvvBackend::cacheKey() const
{
    // Every knob that changes the emitted stream: VLEN (strip sizes),
    // LMUL, unrolling, fusion, and the transposed cache-matrix layout
    // (name() omits vlen and the layout flag).
    return "rvv:v" + std::to_string(vlen_) + ":m" +
           std::to_string(mapping_.lmul) +
           (mapping_.unroll ? ":unroll" : "") +
           (mapping_.fuse ? ":fuse" : "") +
           (mapping_.transposedLayout ? ":xpose" : "") +
           formatKeySuffix(format());
}

void
RvvBackend::emitLibCallOverhead()
{
    // Library mode pays a real function call per matlib operation:
    // argument marshalling plus the call/return redirect. The fused
    // hand-optimized implementation is a single function and pays
    // nothing per operator (§4.1.2).
    if (!emitting() || mapping_.fuse)
        return;
    for (int i = 0; i < 6; ++i)
        prog_->push(Uop::scalar(UopKind::IntAlu, prog_->newReg()));
    Uop call = Uop::scalar(UopKind::Branch, kNoReg);
    call.taken = 1;
    prog_->push(call);
}

void
RvvBackend::emitVsetvl(int vl)
{
    if (!emitting())
        return;
    Uop u;
    u.kind = UopKind::VSetVl;
    u.dst = prog_->newReg();
    u.vl = static_cast<uint32_t>(vl);
    u.lmul8 = lmul8();
    prog_->push(u);
}

uint32_t
RvvBackend::loadVec(const Mat &v)
{
    rtoc_assert(emitting());
    if (fusing_) {
        auto it = fused_.find(v.data);
        if (it != fused_.end())
            return it->second.vreg;
    }
    uint32_t addr = prog_->newReg();
    prog_->push(Uop::scalar(UopKind::IntAlu, addr));
    uint32_t vreg = prog_->newVReg();
    Uop ld = Uop::vec(UopKind::VLoad, vreg, addr, kNoReg,
                      static_cast<uint32_t>(v.size()), lmul8());
    ld.bytes = static_cast<uint32_t>(v.size()) * 4;
    prog_->push(ld);
    if (fusing_ && v.size() <= stripElems()) {
        if (!fused_.count(v.data))
            fuse_order_.push_back(v.data);
        fused_[v.data] = {vreg, v.size(), false};
    }
    return vreg;
}

void
RvvBackend::storeVec(const Mat &v, uint32_t vreg)
{
    rtoc_assert(emitting());
    if (fusing_ && v.size() <= stripElems()) {
        if (!fused_.count(v.data))
            fuse_order_.push_back(v.data);
        fused_[v.data] = {vreg, v.size(), true};
        return;
    }
    uint32_t addr = prog_->newReg();
    prog_->push(Uop::scalar(UopKind::IntAlu, addr));
    Uop st = Uop::vec(UopKind::VStore, kNoReg, vreg, addr,
                      static_cast<uint32_t>(v.size()), lmul8());
    st.bytes = static_cast<uint32_t>(v.size()) * 4;
    prog_->push(st);
}

void
RvvBackend::flushVec(const float *key)
{
    if (!emitting())
        return;
    auto it = fused_.find(key);
    if (it == fused_.end() || !it->second.dirty)
        return;
    uint32_t addr = prog_->newReg();
    prog_->push(Uop::scalar(UopKind::IntAlu, addr));
    Uop st = Uop::vec(UopKind::VStore, kNoReg, it->second.vreg, addr,
                      static_cast<uint32_t>(it->second.len), lmul8());
    st.bytes = static_cast<uint32_t>(it->second.len) * 4;
    prog_->push(st);
    it->second.dirty = false;
}

void
RvvBackend::beginFuse()
{
    if (!mapping_.fuse)
        return;
    fusing_ = true;
}

void
RvvBackend::endFuse()
{
    if (!fusing_)
        return;
    if (emitting()) {
        // Writeback in insertion order: deterministic regardless of
        // heap layout (pointer values must not affect timing).
        for (const float *key : fuse_order_) {
            auto &fv = fused_.at(key);
            if (!fv.dirty)
                continue;
            uint32_t addr = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::IntAlu, addr));
            Uop st = Uop::vec(UopKind::VStore, kNoReg, fv.vreg, addr,
                              static_cast<uint32_t>(fv.len), lmul8());
            st.bytes = static_cast<uint32_t>(fv.len) * 4;
            prog_->push(st);
        }
    }
    fused_.clear();
    fuse_order_.clear();
    fusing_ = false;
}

template <typename BodyFn>
void
RvvBackend::ewise(const Mat &out, std::initializer_list<const Mat *> ins,
                  BodyFn &&body)
{
    if (!emitting())
        return;

    // Whole vector register-resident (fusion fast path).
    if (fusing_ && out.size() <= stripElems()) {
        emitVsetvl(out.size());
        std::vector<uint32_t> in_regs;
        for (const Mat *m : ins)
            in_regs.push_back(loadVec(*m));
        uint32_t result = body(out.size(), in_regs);
        storeVec(out, result);
        return;
    }

    // Library strip-mine loop.
    int remaining = out.size();
    bool first = true;
    while (remaining > 0) {
        int vl = std::min(remaining, stripElems());
        emitVsetvl(vl);
        std::vector<uint32_t> in_regs;
        for (const Mat *m : ins) {
            (void)m;
            uint32_t addr = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::IntAlu, addr));
            uint32_t vreg = prog_->newVReg();
            prog_->push(Uop::vec(UopKind::VLoad, vreg, addr, kNoReg,
                                 static_cast<uint32_t>(vl), lmul8()));
            in_regs.push_back(vreg);
        }
        uint32_t result = body(vl, in_regs);
        uint32_t addr = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::IntAlu, addr));
        prog_->push(Uop::vec(UopKind::VStore, kNoReg, result, addr,
                             static_cast<uint32_t>(vl), lmul8()));
        remaining -= vl;
        if (remaining > 0 || !first) {
            Uop br = Uop::scalar(UopKind::Branch, kNoReg);
            br.taken = remaining > 0;
            prog_->push(br);
        }
        first = false;
    }
}

void
RvvBackend::emitGemvStream(int m, int n, bool accumulate, bool scaled,
                           const float *y_key)
{
    if (!emitting())
        return;

    if (!mapping_.transposedLayout && !mapping_.unroll) {
        // Out-of-box vectorized matlib: row-wise dot products. Each
        // output element costs a row vload, a multiply, and a full
        // vector reduction whose result synchronizes back to the
        // scalar core -- the mapping of §4.1.1 improves on this by
        // switching to the vfmacc.vf column form.
        emitVsetvl(n);
        for (int i = 0; i < m; ++i) {
            uint32_t addr = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::IntAlu, addr));
            uint32_t row = prog_->newVReg();
            prog_->push(Uop::vec(UopKind::VLoad, row, addr, kNoReg,
                                 static_cast<uint32_t>(n), lmul8()));
            uint32_t xv = prog_->newVReg();
            prog_->push(Uop::vec(UopKind::VLoad, xv, addr, kNoReg,
                                 static_cast<uint32_t>(n), lmul8()));
            uint32_t prod = prog_->newVReg();
            prog_->push(Uop::vec(UopKind::VArith, prod, row, xv,
                                 static_cast<uint32_t>(n), lmul8()));
            uint32_t acc = prog_->newReg();
            prog_->push(Uop::vec(UopKind::VRed, acc, prod, kNoReg,
                                 static_cast<uint32_t>(n), lmul8()));
            if (scaled) {
                uint32_t sc = prog_->newReg();
                prog_->push(Uop::scalar(UopKind::FpMul, sc, acc));
                acc = sc;
            }
            if (accumulate) {
                uint32_t yold = prog_->newReg();
                prog_->push(Uop::mem(UopKind::Load, yold, kNoReg));
                uint32_t sum = prog_->newReg();
                prog_->push(Uop::scalar(UopKind::FpAdd, sum, acc, yold));
                acc = sum;
            }
            prog_->push(Uop::mem(UopKind::Store, kNoReg, acc));
            Uop br = Uop::scalar(UopKind::Branch, kNoReg);
            br.taken = i + 1 < m;
            prog_->push(br);
        }
        return;
    }

    emitVsetvl(m);

    // Accumulator: start from y (accumulate) or zero.
    uint32_t acc0 = prog_->newVReg();
    uint32_t acc1 = kNoReg;
    if (accumulate) {
        uint32_t addr = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::IntAlu, addr));
        if (fusing_ && y_key) {
            auto it = fused_.find(y_key);
            if (it != fused_.end()) {
                acc0 = it->second.vreg;
            } else {
                prog_->push(Uop::vec(UopKind::VLoad, acc0, addr, kNoReg,
                                     static_cast<uint32_t>(m), lmul8()));
            }
        } else {
            prog_->push(Uop::vec(UopKind::VLoad, acc0, addr, kNoReg,
                                 static_cast<uint32_t>(m), lmul8()));
        }
    } else {
        prog_->push(Uop::vec(UopKind::VMove, acc0, kNoReg, kNoReg,
                             static_cast<uint32_t>(m), lmul8()));
    }
    int chains = mapping_.unroll ? 2 : 1;
    if (chains == 2) {
        acc1 = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VMove, acc1, kNoReg, kNoReg,
                             static_cast<uint32_t>(m), lmul8()));
    }

    uint32_t accs[2] = {acc0, acc1};
    for (int j = 0; j < n; ++j) {
        // Scalar load of x[j] (vfmacc.vf form).
        uint32_t xj = prog_->newReg();
        prog_->push(Uop::mem(UopKind::Load, xj, kNoReg));

        // Matrix column: unit-stride when the layout is transposed,
        // element-per-cycle strided otherwise.
        uint32_t col = prog_->newVReg();
        uint32_t addr = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::IntAlu, addr));
        UopKind lk = mapping_.transposedLayout ? UopKind::VLoad
                                               : UopKind::VLoadStrided;
        prog_->push(Uop::vec(lk, col, addr, kNoReg,
                             static_cast<uint32_t>(m), lmul8()));

        int c = j % chains;
        uint32_t nacc = prog_->newVReg();
        Uop fma = Uop::vec(UopKind::VFma, nacc, col, accs[c],
                           static_cast<uint32_t>(m), lmul8());
        fma.src2 = xj;
        prog_->push(fma);
        accs[c] = nacc;

        if (!mapping_.unroll) {
            // Rolled column loop: per-iteration bookkeeping.
            uint32_t idx = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::IntAlu, idx));
            Uop br = Uop::scalar(UopKind::Branch, kNoReg);
            br.taken = j + 1 < n;
            prog_->push(br);
        }
    }

    uint32_t result = accs[0];
    if (chains == 2) {
        uint32_t sum = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VArith, sum, accs[0], accs[1],
                             static_cast<uint32_t>(m), lmul8()));
        result = sum;
    }
    if (scaled) {
        uint32_t scaled_reg = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VArith, scaled_reg, result, kNoReg,
                             static_cast<uint32_t>(m), lmul8()));
        result = scaled_reg;
    }

    // Write back (register-resident inside a fusion region).
    if (fusing_ && y_key && m <= stripElems()) {
        if (!fused_.count(y_key))
            fuse_order_.push_back(y_key);
        fused_[y_key] = {result, m, true};
    } else {
        uint32_t addr = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::IntAlu, addr));
        prog_->push(Uop::vec(UopKind::VStore, kNoReg, result, addr,
                             static_cast<uint32_t>(m), lmul8()));
    }
}

void
RvvBackend::gemv(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    emitLibCallOverhead();
    if (emitting())
        flushVec(x.data); // scalar loads of x[j] need memory current
    computeGemv(y, a, x, alpha, beta);
    emitGemvStream(a.rows, a.cols, beta != 0.0f, alpha != 1.0f, y.data);
}

void
RvvBackend::gemvT(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    emitLibCallOverhead();
    if (emitting())
        flushVec(x.data);
    computeGemvT(y, a, x, alpha, beta);
    // The transpose of a row-major matrix is column-contiguous, so the
    // roles of the layout flag invert; hand-tuned code keeps both
    // layouts in the cache (KinfT etc.), so charge the same stream.
    emitGemvStream(a.cols, a.rows, beta != 0.0f, alpha != 1.0f, y.data);
}

void
RvvBackend::gemm(Mat c, const Mat &a, const Mat &b)
{
    ref::gemm(c, a, b);
    for (int j = 0; j < b.cols; ++j)
        emitGemvStream(a.rows, a.cols, false, false, nullptr);
}

void
RvvBackend::saxpby(Mat out, float sa, const Mat &a, float sb,
                   const Mat &b)
{
    emitLibCallOverhead();
    computeSaxpby(out, sa, a, sb, b);
    bool general = sa != 1.0f && sa != -1.0f;
    ewise(out, {&a, &b}, [&](int vl, const std::vector<uint32_t> &in) {
        uint32_t r = prog_->newVReg();
        UopKind k = general ? UopKind::VFma : UopKind::VArith;
        prog_->push(Uop::vec(k, r, in[0], in[1],
                             static_cast<uint32_t>(vl), lmul8()));
        if (sb != 1.0f && sb != -1.0f && general) {
            uint32_t r2 = prog_->newVReg();
            prog_->push(Uop::vec(UopKind::VFma, r2, r, kNoReg,
                                 static_cast<uint32_t>(vl), lmul8()));
            r = r2;
        }
        return r;
    });
}

void
RvvBackend::scale(Mat out, const Mat &a, float s)
{
    emitLibCallOverhead();
    ref::scale(out, a, s);
    ewise(out, {&a}, [&](int vl, const std::vector<uint32_t> &in) {
        uint32_t r = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VArith, r, in[0], kNoReg,
                             static_cast<uint32_t>(vl), lmul8()));
        return r;
    });
}

void
RvvBackend::accumDiff(Mat acc, const Mat &a, const Mat &b)
{
    emitLibCallOverhead();
    ref::accumDiff(acc, a, b);
    ewise(acc, {&acc, &a, &b},
          [&](int vl, const std::vector<uint32_t> &in) {
              uint32_t d = prog_->newVReg();
              prog_->push(Uop::vec(UopKind::VArith, d, in[1], in[2],
                                   static_cast<uint32_t>(vl), lmul8()));
              uint32_t r = prog_->newVReg();
              prog_->push(Uop::vec(UopKind::VArith, r, in[0], d,
                                   static_cast<uint32_t>(vl), lmul8()));
              return r;
          });
}

void
RvvBackend::axpyDiff(Mat acc, float s, const Mat &a, const Mat &b)
{
    emitLibCallOverhead();
    ref::axpyDiff(acc, s, a, b);
    ewise(acc, {&acc, &a, &b},
          [&](int vl, const std::vector<uint32_t> &in) {
              uint32_t d = prog_->newVReg();
              prog_->push(Uop::vec(UopKind::VArith, d, in[1], in[2],
                                   static_cast<uint32_t>(vl), lmul8()));
              uint32_t r = prog_->newVReg();
              prog_->push(Uop::vec(UopKind::VFma, r, d, in[0],
                                   static_cast<uint32_t>(vl), lmul8()));
              return r;
          });
}

void
RvvBackend::rowScaleNeg(Mat out, const Mat &a, const Mat &diag)
{
    emitLibCallOverhead();
    ref::rowScaleNeg(out, a, diag);
    // Per row: elementwise multiply against the (register-cached)
    // diagonal, with sign inversion folded into the multiply.
    for (int i = 0; i < out.rows; ++i) {
        Mat orow = out.row(i);
        Mat arow(const_cast<float *>(a.data) +
                     static_cast<size_t>(i) * a.cols,
                 1, a.cols);
        ewise(orow, {&arow, &diag},
              [&](int vl, const std::vector<uint32_t> &in) {
                  uint32_t r = prog_->newVReg();
                  prog_->push(Uop::vec(UopKind::VArith, r, in[0], in[1],
                                       static_cast<uint32_t>(vl),
                                       lmul8()));
                  return r;
              });
    }
}

void
RvvBackend::clampVec(Mat out, const Mat &a, const Mat &lo, const Mat &hi)
{
    emitLibCallOverhead();
    ref::clampVec(out, a, lo, hi);
    ewise(out, {&a, &lo, &hi},
          [&](int vl, const std::vector<uint32_t> &in) {
              uint32_t mx = prog_->newVReg();
              prog_->push(Uop::vec(UopKind::VArith, mx, in[0], in[1],
                                   static_cast<uint32_t>(vl), lmul8()));
              uint32_t mn = prog_->newVReg();
              prog_->push(Uop::vec(UopKind::VArith, mn, mx, in[2],
                                   static_cast<uint32_t>(vl), lmul8()));
              return mn;
          });
}

void
RvvBackend::clampConst(Mat out, const Mat &a, float lo, float hi)
{
    emitLibCallOverhead();
    ref::clampConst(out, a, lo, hi);
    ewise(out, {&a}, [&](int vl, const std::vector<uint32_t> &in) {
        uint32_t mx = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VArith, mx, in[0], kNoReg,
                             static_cast<uint32_t>(vl), lmul8()));
        uint32_t mn = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VArith, mn, mx, kNoReg,
                             static_cast<uint32_t>(vl), lmul8()));
        return mn;
    });
}

float
RvvBackend::absMaxDiff(const Mat &a, const Mat &b)
{
    emitLibCallOverhead();
    float result = ref::absMaxDiff(a, b);
    if (!emitting())
        return result;

    // Per strip: diff, abs, vector max-reduce to scalar, then scalar
    // combine across strips.
    int remaining = a.size();
    uint32_t best = prog_->newReg();
    prog_->push(Uop::scalar(UopKind::FpMove, best));
    while (remaining > 0) {
        int vl = std::min(remaining, stripElems());
        emitVsetvl(vl);
        uint32_t va = prog_->newVReg();
        uint32_t vb = prog_->newVReg();
        uint32_t addr = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::IntAlu, addr));
        prog_->push(Uop::vec(UopKind::VLoad, va, addr, kNoReg,
                             static_cast<uint32_t>(vl), lmul8()));
        prog_->push(Uop::vec(UopKind::VLoad, vb, addr, kNoReg,
                             static_cast<uint32_t>(vl), lmul8()));
        uint32_t d = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VArith, d, va, vb,
                             static_cast<uint32_t>(vl), lmul8()));
        uint32_t ad = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VArith, ad, d, kNoReg,
                             static_cast<uint32_t>(vl), lmul8()));
        uint32_t red = prog_->newReg();
        prog_->push(Uop::vec(UopKind::VRed, red, ad, kNoReg,
                             static_cast<uint32_t>(vl), lmul8()));
        uint32_t nbest = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::FpMinMax, nbest, red, best));
        best = nbest;
        remaining -= vl;
        Uop br = Uop::scalar(UopKind::Branch, kNoReg);
        br.taken = remaining > 0;
        prog_->push(br);
    }
    return result;
}

void
RvvBackend::copy(Mat out, const Mat &a)
{
    emitLibCallOverhead();
    ref::copy(out, a);
    ewise(out, {&a}, [&](int, const std::vector<uint32_t> &in) {
        return in[0];
    });
}

void
RvvBackend::fill(Mat out, float s)
{
    emitLibCallOverhead();
    ref::fill(out, s);
    if (!emitting())
        return;
    int remaining = out.size();
    while (remaining > 0) {
        int vl = std::min(remaining, stripElems());
        emitVsetvl(vl);
        uint32_t v = prog_->newVReg();
        prog_->push(Uop::vec(UopKind::VMove, v, kNoReg, kNoReg,
                             static_cast<uint32_t>(vl), lmul8()));
        uint32_t addr = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::IntAlu, addr));
        prog_->push(Uop::vec(UopKind::VStore, kNoReg, v, addr,
                             static_cast<uint32_t>(vl), lmul8()));
        remaining -= vl;
    }
}

} // namespace rtoc::matlib
