#include "scalar_backend.hh"

#include <algorithm>
#include <vector>

namespace rtoc::matlib {

using isa::kNoReg;
using isa::Uop;
using isa::UopKind;

void
ScalarBackend::emitCallOverhead()
{
    if (!emitting() || flavor_ != ScalarFlavor::Naive)
        return;
    // Argument marshalling, stack frame, callee-saved spill of the
    // C library entry point.
    for (int i = 0; i < 6; ++i)
        prog_->push(Uop::scalar(UopKind::IntAlu, prog_->newReg()));
    Uop call = Uop::scalar(UopKind::Branch, kNoReg);
    call.taken = 1;
    prog_->push(call);
}

void
ScalarBackend::emitEwiseLoop(int n, int loads, int fp_ops, UopKind k)
{
    if (!emitting())
        return;
    if (flavor_ == ScalarFlavor::Naive) {
        uint32_t idx = prog_->newReg();
        for (int i = 0; i < n; ++i) {
            uint32_t addr = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::IntAlu, addr, idx));
            uint32_t val = kNoReg;
            for (int l = 0; l < loads; ++l) {
                val = prog_->newReg();
                prog_->push(Uop::mem(UopKind::Load, val, addr));
            }
            for (int f = 0; f < fp_ops; ++f) {
                uint32_t nv = prog_->newReg();
                prog_->push(Uop::scalar(k, nv, val));
                val = nv;
            }
            prog_->push(Uop::mem(UopKind::Store, kNoReg, val));
            uint32_t nidx = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::IntAlu, nidx, idx));
            idx = nidx;
            Uop br = Uop::scalar(UopKind::Branch, kNoReg, idx);
            br.taken = i + 1 < n;
            prog_->push(br);
        }
    } else {
        // Unrolled by 4: loop overhead amortized; independent element
        // chains expose ILP.
        for (int i = 0; i < n; ++i) {
            uint32_t val = kNoReg;
            for (int l = 0; l < loads; ++l) {
                val = prog_->newReg();
                prog_->push(Uop::mem(UopKind::Load, val, kNoReg));
            }
            for (int f = 0; f < fp_ops; ++f) {
                uint32_t nv = prog_->newReg();
                prog_->push(Uop::scalar(k, nv, val));
                val = nv;
            }
            prog_->push(Uop::mem(UopKind::Store, kNoReg, val));
            if (i % 4 == 3) {
                uint32_t idx = prog_->newReg();
                prog_->push(Uop::scalar(UopKind::IntAlu, idx));
                Uop br = Uop::scalar(UopKind::Branch, kNoReg, idx);
                br.taken = i + 1 < n;
                prog_->push(br);
            }
        }
    }
}

void
ScalarBackend::emitGemv(int m, int n, bool accumulate_into_y, bool scaled)
{
    if (!emitting())
        return;
    if (flavor_ == ScalarFlavor::Naive) {
        // Row loop with a serial accumulator chain; x reloaded every
        // row (the library cannot know x fits in registers).
        for (int i = 0; i < m; ++i) {
            prog_->push(Uop::scalar(UopKind::IntAlu, prog_->newReg()));
            uint32_t acc = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::FpMove, acc));
            for (int j = 0; j < n; ++j) {
                uint32_t addr = prog_->newReg();
                prog_->push(Uop::scalar(UopKind::IntAlu, addr));
                uint32_t aij = prog_->newReg();
                prog_->push(Uop::mem(UopKind::Load, aij, addr));
                uint32_t xj = prog_->newReg();
                prog_->push(Uop::mem(UopKind::Load, xj, addr));
                uint32_t nacc = prog_->newReg();
                prog_->push(
                    Uop::scalar(UopKind::FpFma, nacc, aij, xj, acc));
                acc = nacc;
                Uop br = Uop::scalar(UopKind::Branch, kNoReg);
                br.taken = j + 1 < n;
                prog_->push(br);
            }
            if (scaled) {
                uint32_t s = prog_->newReg();
                prog_->push(Uop::scalar(UopKind::FpMul, s, acc));
                acc = s;
            }
            if (accumulate_into_y) {
                uint32_t yold = prog_->newReg();
                prog_->push(Uop::mem(UopKind::Load, yold, kNoReg));
                uint32_t sum = prog_->newReg();
                prog_->push(Uop::scalar(UopKind::FpAdd, sum, acc, yold));
                acc = sum;
            }
            prog_->push(Uop::mem(UopKind::Store, kNoReg, acc));
            Uop br = Uop::scalar(UopKind::Branch, kNoReg);
            br.taken = i + 1 < m;
            prog_->push(br);
        }
    } else {
        // Eigen-style: x kept in registers (n loads once), rows
        // processed in pairs with two accumulator chains each, fully
        // unrolled, addresses hoisted.
        std::vector<uint32_t> xregs(static_cast<size_t>(n));
        for (int j = 0; j < n; ++j) {
            xregs[j] = prog_->newReg();
            prog_->push(Uop::mem(UopKind::Load, xregs[j], kNoReg));
        }
        for (int i = 0; i < m; i += 2) {
            int rows_here = std::min(2, m - i);
            // Two chains per row: acc[row][chain].
            uint32_t acc[2][2] = {{kNoReg, kNoReg}, {kNoReg, kNoReg}};
            for (int j = 0; j < n; ++j) {
                for (int r = 0; r < rows_here; ++r) {
                    uint32_t aij = prog_->newReg();
                    prog_->push(Uop::mem(UopKind::Load, aij, kNoReg));
                    int chain = j & 1;
                    uint32_t nacc = prog_->newReg();
                    prog_->push(Uop::scalar(UopKind::FpFma, nacc, aij,
                                            xregs[j], acc[r][chain]));
                    acc[r][chain] = nacc;
                }
            }
            for (int r = 0; r < rows_here; ++r) {
                uint32_t sum = prog_->newReg();
                prog_->push(Uop::scalar(UopKind::FpAdd, sum, acc[r][0],
                                        acc[r][1]));
                if (scaled) {
                    uint32_t s = prog_->newReg();
                    prog_->push(Uop::scalar(UopKind::FpMul, s, sum));
                    sum = s;
                }
                if (accumulate_into_y) {
                    uint32_t yold = prog_->newReg();
                    prog_->push(Uop::mem(UopKind::Load, yold, kNoReg));
                    uint32_t t = prog_->newReg();
                    prog_->push(
                        Uop::scalar(UopKind::FpAdd, t, sum, yold));
                    sum = t;
                }
                prog_->push(Uop::mem(UopKind::Store, kNoReg, sum));
            }
        }
    }
}

void
ScalarBackend::gemv(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    computeGemv(y, a, x, alpha, beta);
    emitCallOverhead();
    emitGemv(a.rows, a.cols, beta != 0.0f, alpha != 1.0f);
}

void
ScalarBackend::gemvT(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    computeGemvT(y, a, x, alpha, beta);
    emitCallOverhead();
    // Column walk of a row-major matrix: same op counts, worse
    // locality; the scalar model charges it as a plain GEMV (cache
    // effects at these sizes fit L1 either way).
    emitGemv(a.cols, a.rows, beta != 0.0f, alpha != 1.0f);
}

void
ScalarBackend::gemm(Mat c, const Mat &a, const Mat &b)
{
    ref::gemm(c, a, b);
    emitCallOverhead();
    for (int j = 0; j < b.cols; ++j)
        emitGemv(a.rows, a.cols, false, false);
}

void
ScalarBackend::saxpby(Mat out, float sa, const Mat &a, float sb,
                      const Mat &b)
{
    computeSaxpby(out, sa, a, sb, b);
    emitCallOverhead();
    // load a, load b, one or two multiplies + add; the optimized
    // flavor folds +-1 scales into a single add/sub.
    bool general = sa != 1.0f && sa != -1.0f;
    int fp = flavor_ == ScalarFlavor::Naive ? 2 : (general ? 2 : 1);
    emitEwiseLoop(out.size(), 2, fp, UopKind::FpFma);
}

void
ScalarBackend::scale(Mat out, const Mat &a, float s)
{
    ref::scale(out, a, s);
    emitCallOverhead();
    emitEwiseLoop(out.size(), 1, 1, UopKind::FpMul);
}

void
ScalarBackend::accumDiff(Mat acc, const Mat &a, const Mat &b)
{
    ref::accumDiff(acc, a, b);
    emitCallOverhead();
    emitEwiseLoop(acc.size(), 3, 2, UopKind::FpAdd);
}

void
ScalarBackend::axpyDiff(Mat acc, float s, const Mat &a, const Mat &b)
{
    ref::axpyDiff(acc, s, a, b);
    emitCallOverhead();
    emitEwiseLoop(acc.size(), 3, 2, UopKind::FpFma);
}

void
ScalarBackend::rowScaleNeg(Mat out, const Mat &a, const Mat &diag)
{
    ref::rowScaleNeg(out, a, diag);
    emitCallOverhead();
    emitEwiseLoop(out.size(), 2, 1, UopKind::FpMul);
}

void
ScalarBackend::clampVec(Mat out, const Mat &a, const Mat &lo,
                        const Mat &hi)
{
    ref::clampVec(out, a, lo, hi);
    emitCallOverhead();
    emitEwiseLoop(out.size(), 3, 2, UopKind::FpMinMax);
}

void
ScalarBackend::clampConst(Mat out, const Mat &a, float lo, float hi)
{
    ref::clampConst(out, a, lo, hi);
    emitCallOverhead();
    int loads = flavor_ == ScalarFlavor::Naive ? 1 : 1;
    emitEwiseLoop(out.size(), loads, 2, UopKind::FpMinMax);
}

float
ScalarBackend::absMaxDiff(const Mat &a, const Mat &b)
{
    float r = ref::absMaxDiff(a, b);
    emitCallOverhead();
    if (emitting()) {
        // Serial max-reduction chain: load a, load b, sub, abs, max.
        uint32_t acc = prog_->newReg();
        prog_->push(Uop::scalar(UopKind::FpMove, acc));
        int n = a.size();
        for (int i = 0; i < n; ++i) {
            uint32_t av = prog_->newReg();
            prog_->push(Uop::mem(UopKind::Load, av, kNoReg));
            uint32_t bv = prog_->newReg();
            prog_->push(Uop::mem(UopKind::Load, bv, kNoReg));
            uint32_t d = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::FpAdd, d, av, bv));
            uint32_t ad = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::FpAbs, ad, d));
            uint32_t nacc = prog_->newReg();
            prog_->push(Uop::scalar(UopKind::FpMinMax, nacc, ad, acc));
            acc = nacc;
            if (flavor_ == ScalarFlavor::Naive || i % 4 == 3) {
                Uop br = Uop::scalar(UopKind::Branch, kNoReg);
                br.taken = i + 1 < n;
                prog_->push(br);
            }
        }
    }
    return r;
}

void
ScalarBackend::copy(Mat out, const Mat &a)
{
    ref::copy(out, a);
    emitCallOverhead();
    emitEwiseLoop(out.size(), 1, 0, UopKind::IntAlu);
}

void
ScalarBackend::fill(Mat out, float s)
{
    ref::fill(out, s);
    emitCallOverhead();
    if (emitting()) {
        for (int i = 0; i < out.size(); ++i) {
            prog_->push(Uop::mem(UopKind::Store, kNoReg, kNoReg));
            if (flavor_ == ScalarFlavor::Naive || i % 4 == 3) {
                Uop br = Uop::scalar(UopKind::Branch, kNoReg);
                br.taken = i + 1 < out.size();
                prog_->push(br);
            }
        }
    }
}

} // namespace rtoc::matlib
