/**
 * @file
 * Float32 matrix/vector views and functional reference kernels.
 *
 * This reproduces the paper's `matlib`: a lightweight C-style linear
 * algebra interface for embedded optimization (§3.2). A Mat is a
 * non-owning view over row-major float32 storage; TinyMPC's workspace
 * owns the buffers. The `ref` namespace holds the *functional*
 * implementations — every backend computes identical float32 results
 * and differs only in the micro-op stream it emits, so software-
 * mapping optimizations can never change solver semantics (a property
 * the test suite checks bit-exactly).
 */

#ifndef RTOC_MATLIB_MAT_HH
#define RTOC_MATLIB_MAT_HH

#include <cmath>
#include <cstddef>

#include "common/logging.hh"

namespace rtoc::matlib {

/** Non-owning row-major float32 matrix view. */
struct Mat
{
    float *data = nullptr;
    int rows = 0;
    int cols = 0;

    Mat() = default;

    Mat(float *d, int r, int c) : data(d), rows(r), cols(c) {}

    /** Element access. */
    float &
    at(int r, int c) const
    {
        rtoc_assert(r >= 0 && r < rows && c >= 0 && c < cols);
        return data[static_cast<size_t>(r) * cols + c];
    }

    /** Contiguous row view (length == cols). */
    Mat
    row(int r) const
    {
        rtoc_assert(r >= 0 && r < rows);
        return Mat(data + static_cast<size_t>(r) * cols, 1, cols);
    }

    /** Total elements. */
    int size() const { return rows * cols; }

    /** True for 1 x n views used as vectors. */
    bool isVec() const { return rows == 1; }

    /** Vector element access. */
    float &
    operator[](int i) const
    {
        rtoc_assert(rows == 1 && i >= 0 && i < cols);
        return data[i];
    }
};

/** Functional float32 kernels shared by all backends. */
namespace ref {

/** y = alpha * A x + beta * y; A is m x n, x len n, y len m. */
void gemv(Mat y, const Mat &a, Mat x, float alpha, float beta);

/** y = alpha * Aᵀ x + beta * y; A is m x n, x len m, y len n. */
void gemvT(Mat y, const Mat &a, Mat x, float alpha, float beta);

/**
 * Fused forward/backward-pass pair: y = sa·(alpha·A x + beta·y) +
 * sb·b in one pass over the rows. Bit-identical to gemv(y, a, x,
 * alpha, beta) followed by saxpby(y, sa, y, sb, b) — the per-element
 * operation sequence is unchanged, only the memory round trip of the
 * intermediate y is removed. Falls back to the exact two-call
 * sequence when operands alias.
 */
void gemvSaxpby(Mat y, const Mat &a, Mat x, float alpha, float beta,
                float sa, float sb, const Mat &b);

/** C = A B. */
void gemm(Mat c, const Mat &a, const Mat &b);

/** out = sa * a + sb * b (elementwise; covers add/sub/axpy). */
void saxpby(Mat out, float sa, const Mat &a, float sb, const Mat &b);

/** out = a * s. */
void scale(Mat out, const Mat &a, float s);

/** acc += a - b (elementwise; the ADMM dual update shape). */
void accumDiff(Mat acc, const Mat &a, const Mat &b);

/** acc += s * (a - b) (the ADMM linear-cost update shape). */
void axpyDiff(Mat acc, float s, const Mat &a, const Mat &b);

/** out[i][j] = -a[i][j] * diag[j] (reference-cost row scaling). */
void rowScaleNeg(Mat out, const Mat &a, const Mat &diag);

/** out = min(hi, max(lo, a)) with vector bounds. */
void clampVec(Mat out, const Mat &a, const Mat &lo, const Mat &hi);

/** out = min(hi, max(lo, a)) with scalar bounds. */
void clampConst(Mat out, const Mat &a, float lo, float hi);

/** max_i |a_i - b_i| (the ADMM residual reduction). */
float absMaxDiff(const Mat &a, const Mat &b);

/** out = a. */
void copy(Mat out, const Mat &a);

/** out = s everywhere. */
void fill(Mat out, float s);

} // namespace ref

} // namespace rtoc::matlib

#endif // RTOC_MATLIB_MAT_HH
