/**
 * @file
 * RVV backend for Saturn-like vector machines.
 *
 * The mapping knobs correspond one-to-one to the optimizations of
 * §4.1:
 *  - lmul: register grouping (Fig. 4). Elementwise strips grow to
 *    lmul x VLEN/32 elements per instruction; short GEMV operands gain
 *    nothing and pay whole-group sequencing.
 *  - unroll: software loop unrolling of the GEMV column loop into two
 *    independent accumulator chains (§4.1.1's "aggressive software
 *    loop unrolling better exploits scalar variation").
 *  - fuse: operator fusion (§4.1.2). Inside beginFuse()/endFuse(),
 *    small vectors live in vector registers: repeated store/load round
 *    trips between library calls disappear.
 *  - transposedLayout: cache matrices stored column-contiguous so GEMV
 *    columns are unit-stride vloads instead of element-per-cycle
 *    strided loads (the data-layout optimization the paper applies in
 *    its hand-tuned kernels).
 */

#ifndef RTOC_MATLIB_RVV_BACKEND_HH
#define RTOC_MATLIB_RVV_BACKEND_HH

#include <cstdint>
#include <map>
#include <vector>

#include "matlib/backend.hh"

namespace rtoc::matlib {

/** Software-mapping configuration for the RVV backend. */
struct RvvMapping
{
    int lmul = 1;                 ///< register grouping (1,2,4,8)
    bool unroll = false;          ///< GEMV dual accumulator chains
    bool fuse = false;            ///< operator fusion across calls
    bool transposedLayout = false;///< column-contiguous cache matrices

    /** Out-of-box vectorized matlib (library mode). */
    static RvvMapping library(int lmul = 1);

    /** Final hand-optimized mapping. */
    static RvvMapping handOptimized(int lmul = 1);
};

/** RVV backend emitting Saturn vector instruction streams. */
class RvvBackend : public Backend
{
  public:
    /** @param vlen architectural VLEN in bits (for strip sizing). */
    RvvBackend(int vlen, RvvMapping mapping);

    std::string name() const override;

    std::string cacheKey() const override;

    void gemv(Mat y, const Mat &a, Mat x, float alpha,
              float beta) override;
    void gemvT(Mat y, const Mat &a, Mat x, float alpha,
               float beta) override;
    void gemm(Mat c, const Mat &a, const Mat &b) override;
    void saxpby(Mat out, float sa, const Mat &a, float sb,
                const Mat &b) override;
    void scale(Mat out, const Mat &a, float s) override;
    void accumDiff(Mat acc, const Mat &a, const Mat &b) override;
    void axpyDiff(Mat acc, float s, const Mat &a, const Mat &b) override;
    void rowScaleNeg(Mat out, const Mat &a, const Mat &diag) override;
    void clampVec(Mat out, const Mat &a, const Mat &lo,
                  const Mat &hi) override;
    void clampConst(Mat out, const Mat &a, float lo, float hi) override;
    float absMaxDiff(const Mat &a, const Mat &b) override;
    void copy(Mat out, const Mat &a) override;
    void fill(Mat out, float s) override;

    void beginFuse() override;
    void endFuse() override;

    const RvvMapping &mapping() const { return mapping_; }

    /** Reconfigure the mapping (used by the codegen emitter to apply
     *  per-statement schedule attributes). Must not be called inside
     *  an open fusion region with a different fuse setting. */
    void
    setMapping(const RvvMapping &m)
    {
        mapping_ = m;
    }

    /** Elements per strip for elementwise kernels: narrower elements
     *  pack more lanes into one vector register group. */
    int stripElems() const { return vlen_ / sewBits() * mapping_.lmul; }

  private:
    struct FusedVec
    {
        uint32_t vreg = 0;
        int len = 0;
        bool dirty = false;
    };

    /** LMUL in eighths for emitted uops. */
    uint16_t lmul8() const
    {
        return static_cast<uint16_t>(8 * mapping_.lmul);
    }

    /** Emit vsetvli. */
    void emitVsetvl(int vl);

    /** Obtain a vreg holding vector @p v (load unless fused-resident).
     *  Vector must fit a single strip to be fusion-eligible. */
    uint32_t loadVec(const Mat &v);

    /** Bind @p vreg as the current value of @p v; stores immediately
     *  unless inside a fusion region. */
    void storeVec(const Mat &v, uint32_t vreg);

    /** Write back a fused vector if dirty (needed before scalar
     *  access to its memory, e.g. GEMV scalar-operand loads). */
    void flushVec(const float *key);

    /** Shared elementwise skeleton: emits strip loops calling
     *  @p emit_body(vl) per strip with loads/stores handled. */
    template <typename BodyFn>
    void ewise(const Mat &out, std::initializer_list<const Mat *> ins,
               BodyFn &&body);

    /** GEMV stream shared by gemv/gemvT/gemm. */
    void emitGemvStream(int m, int n, bool accumulate, bool scaled,
                        const float *y_key);

    /** Per-library-call overhead (argument setup + call). */
    void emitLibCallOverhead();

    int vlen_;
    RvvMapping mapping_;
    bool fusing_ = false;
    std::map<const float *, FusedVec> fused_;
    std::vector<const float *> fuse_order_; ///< insertion order
};

} // namespace rtoc::matlib

#endif // RTOC_MATLIB_RVV_BACKEND_HH
