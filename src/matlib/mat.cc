#include "mat.hh"

namespace rtoc::matlib::ref {

void
gemv(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    rtoc_assert(y.isVec() && x.isVec());
    rtoc_assert(a.rows == y.cols && a.cols == x.cols);
    for (int i = 0; i < a.rows; ++i) {
        float acc = 0.0f;
        for (int j = 0; j < a.cols; ++j)
            acc += a.at(i, j) * x[j];
        y[i] = alpha * acc + beta * y[i];
    }
}

void
gemvT(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    rtoc_assert(y.isVec() && x.isVec());
    rtoc_assert(a.cols == y.cols && a.rows == x.cols);
    for (int j = 0; j < a.cols; ++j) {
        float acc = 0.0f;
        for (int i = 0; i < a.rows; ++i)
            acc += a.at(i, j) * x[i];
        y[j] = alpha * acc + beta * y[j];
    }
}

void
gemm(Mat c, const Mat &a, const Mat &b)
{
    rtoc_assert(a.cols == b.rows);
    rtoc_assert(c.rows == a.rows && c.cols == b.cols);
    for (int i = 0; i < c.rows; ++i) {
        for (int j = 0; j < c.cols; ++j) {
            float acc = 0.0f;
            for (int k = 0; k < a.cols; ++k)
                acc += a.at(i, k) * b.at(k, j);
            c.at(i, j) = acc;
        }
    }
}

void
saxpby(Mat out, float sa, const Mat &a, float sb, const Mat &b)
{
    rtoc_assert(out.size() == a.size() && out.size() == b.size());
    for (int i = 0; i < out.size(); ++i)
        out.data[i] = sa * a.data[i] + sb * b.data[i];
}

void
scale(Mat out, const Mat &a, float s)
{
    rtoc_assert(out.size() == a.size());
    for (int i = 0; i < out.size(); ++i)
        out.data[i] = a.data[i] * s;
}

void
accumDiff(Mat acc, const Mat &a, const Mat &b)
{
    rtoc_assert(acc.size() == a.size() && acc.size() == b.size());
    for (int i = 0; i < acc.size(); ++i)
        acc.data[i] += a.data[i] - b.data[i];
}

void
axpyDiff(Mat acc, float s, const Mat &a, const Mat &b)
{
    rtoc_assert(acc.size() == a.size() && acc.size() == b.size());
    for (int i = 0; i < acc.size(); ++i)
        acc.data[i] += s * (a.data[i] - b.data[i]);
}

void
rowScaleNeg(Mat out, const Mat &a, const Mat &diag)
{
    rtoc_assert(out.rows == a.rows && out.cols == a.cols);
    rtoc_assert(diag.isVec() && diag.cols == a.cols);
    for (int i = 0; i < out.rows; ++i)
        for (int j = 0; j < out.cols; ++j)
            out.at(i, j) = -a.at(i, j) * diag[j];
}

void
clampVec(Mat out, const Mat &a, const Mat &lo, const Mat &hi)
{
    rtoc_assert(out.size() == a.size());
    rtoc_assert(out.size() == lo.size() && out.size() == hi.size());
    for (int i = 0; i < out.size(); ++i) {
        float v = a.data[i];
        v = std::fmax(v, lo.data[i]);
        v = std::fmin(v, hi.data[i]);
        out.data[i] = v;
    }
}

void
clampConst(Mat out, const Mat &a, float lo, float hi)
{
    rtoc_assert(out.size() == a.size());
    for (int i = 0; i < out.size(); ++i) {
        float v = a.data[i];
        v = std::fmax(v, lo);
        v = std::fmin(v, hi);
        out.data[i] = v;
    }
}

float
absMaxDiff(const Mat &a, const Mat &b)
{
    rtoc_assert(a.size() == b.size());
    float m = 0.0f;
    for (int i = 0; i < a.size(); ++i)
        m = std::fmax(m, std::fabs(a.data[i] - b.data[i]));
    return m;
}

void
copy(Mat out, const Mat &a)
{
    rtoc_assert(out.size() == a.size());
    for (int i = 0; i < out.size(); ++i)
        out.data[i] = a.data[i];
}

void
fill(Mat out, float s)
{
    for (int i = 0; i < out.size(); ++i)
        out.data[i] = s;
}

} // namespace rtoc::matlib::ref
