#include "mat.hh"

#include <cstdint>

namespace rtoc::matlib::ref {

/*
 * Hot-path structure shared by the kernels below: every per-tick ADMM
 * solve funnels through these float32 loops, so each kernel has a
 * `__restrict` unit-stride fast path taken when the operand ranges
 * are provably disjoint. The fast paths keep the reference loop
 * structure and accumulation order EXACTLY — reductions stay one
 * serial chain, elementwise bodies stay per-index — so results are
 * bit-identical to the reference loops (pinned by the kernel-tuning
 * bench and the golden figure outputs). What `restrict` buys is the
 * compiler's cross-output vectorization (independent output chains of
 * gemv/gemvT packed into SIMD lanes — legal without reassociating any
 * single chain) and the removal of runtime alias-versioning checks in
 * the elementwise kernels. A hand-unrolled 4-wide variant was tried
 * and LOST to this form: manual unrolling of the reduction dimension
 * blocks exactly that cross-output vectorization (bench_sweep_scale
 * is the referee). Aliased calls (e.g. saxpby(u, 1, u, -1, d)) fall
 * back to the reference loop, whose in-order semantics they rely on.
 */

namespace {

/** True when [p, p+n) and [q, q+m) do not overlap. */
inline bool
disjoint(const float *p, int n, const float *q, int m)
{
    auto pb = reinterpret_cast<uintptr_t>(p);
    auto qb = reinterpret_cast<uintptr_t>(q);
    return pb + static_cast<uintptr_t>(n) * sizeof(float) <= qb ||
           qb + static_cast<uintptr_t>(m) * sizeof(float) <= pb;
}

} // namespace

void
gemv(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    rtoc_assert(y.isVec() && x.isVec());
    rtoc_assert(a.rows == y.cols && a.cols == x.cols);
    const int m = a.rows;
    const int n = a.cols;
    if (disjoint(y.data, m, a.data, m * n) &&
        disjoint(y.data, m, x.data, n)) {
        const float *__restrict ap = a.data;
        const float *__restrict xp = x.data;
        float *__restrict yp = y.data;
        for (int i = 0; i < m; ++i) {
            float acc = 0.0f;
            for (int j = 0; j < n; ++j)
                acc += ap[static_cast<size_t>(i) * n + j] * xp[j];
            yp[i] = alpha * acc + beta * yp[i];
        }
        return;
    }
    for (int i = 0; i < a.rows; ++i) {
        float acc = 0.0f;
        for (int j = 0; j < a.cols; ++j)
            acc += a.at(i, j) * x[j];
        y[i] = alpha * acc + beta * y[i];
    }
}

void
gemvT(Mat y, const Mat &a, Mat x, float alpha, float beta)
{
    rtoc_assert(y.isVec() && x.isVec());
    rtoc_assert(a.cols == y.cols && a.rows == x.cols);
    const int m = a.rows;
    const int n = a.cols;
    if (disjoint(y.data, n, a.data, m * n) &&
        disjoint(y.data, n, x.data, m)) {
        // Column walk of a row-major matrix: the compiler vectorizes
        // across the n output columns (contiguous row loads), each
        // column's chain staying in row order.
        const float *__restrict ap = a.data;
        const float *__restrict xp = x.data;
        float *__restrict yp = y.data;
        for (int j = 0; j < n; ++j) {
            float acc = 0.0f;
            for (int i = 0; i < m; ++i)
                acc += ap[static_cast<size_t>(i) * n + j] * xp[i];
            yp[j] = alpha * acc + beta * yp[j];
        }
        return;
    }
    for (int j = 0; j < a.cols; ++j) {
        float acc = 0.0f;
        for (int i = 0; i < a.rows; ++i)
            acc += a.at(i, j) * x[i];
        y[j] = alpha * acc + beta * y[j];
    }
}

void
gemvSaxpby(Mat y, const Mat &a, Mat x, float alpha, float beta, float sa,
           float sb, const Mat &b)
{
    rtoc_assert(y.isVec() && x.isVec() && b.isVec());
    rtoc_assert(a.rows == y.cols && a.cols == x.cols);
    rtoc_assert(b.cols == y.cols);
    const int m = a.rows;
    const int n = a.cols;
    if (disjoint(y.data, m, a.data, m * n) &&
        disjoint(y.data, m, x.data, n) &&
        disjoint(y.data, m, b.data, m) &&
        disjoint(b.data, m, a.data, m * n) &&
        disjoint(b.data, m, x.data, n)) {
        // One pass over the rows: the gemv result never round-trips
        // through memory before the saxpby consumes it. Per-element
        // op sequence matches the two-call reference exactly.
        const float *__restrict ap = a.data;
        const float *__restrict xp = x.data;
        const float *__restrict bp = b.data;
        float *__restrict yp = y.data;
        for (int i = 0; i < m; ++i) {
            float acc = 0.0f;
            for (int j = 0; j < n; ++j)
                acc += ap[static_cast<size_t>(i) * n + j] * xp[j];
            float t = alpha * acc + beta * yp[i];
            yp[i] = sa * t + sb * bp[i];
        }
        return;
    }
    // Aliased operands: the exact two-call sequence.
    gemv(y, a, x, alpha, beta);
    saxpby(y, sa, y, sb, b);
}

void
gemm(Mat c, const Mat &a, const Mat &b)
{
    rtoc_assert(a.cols == b.rows);
    rtoc_assert(c.rows == a.rows && c.cols == b.cols);
    const int m = a.rows;
    const int k = a.cols;
    const int n = b.cols;
    if (disjoint(c.data, m * n, a.data, m * k) &&
        disjoint(c.data, m * n, b.data, k * n)) {
        const float *__restrict ap = a.data;
        const float *__restrict bp = b.data;
        float *__restrict cp = c.data;
        for (int i = 0; i < m; ++i) {
            for (int j = 0; j < n; ++j) {
                float acc = 0.0f;
                for (int l = 0; l < k; ++l) {
                    acc += ap[static_cast<size_t>(i) * k + l] *
                           bp[static_cast<size_t>(l) * n + j];
                }
                cp[static_cast<size_t>(i) * n + j] = acc;
            }
        }
        return;
    }
    for (int i = 0; i < c.rows; ++i) {
        for (int j = 0; j < c.cols; ++j) {
            float acc = 0.0f;
            for (int l = 0; l < a.cols; ++l)
                acc += a.at(i, l) * b.at(l, j);
            c.at(i, j) = acc;
        }
    }
}

void
saxpby(Mat out, float sa, const Mat &a, float sb, const Mat &b)
{
    rtoc_assert(out.size() == a.size() && out.size() == b.size());
    const int n = out.size();
    if (disjoint(out.data, n, a.data, n) &&
        disjoint(out.data, n, b.data, n)) {
        const float *__restrict ap = a.data;
        const float *__restrict bp = b.data;
        float *__restrict op = out.data;
        for (int i = 0; i < n; ++i)
            op[i] = sa * ap[i] + sb * bp[i];
        return;
    }
    for (int i = 0; i < n; ++i)
        out.data[i] = sa * a.data[i] + sb * b.data[i];
}

void
scale(Mat out, const Mat &a, float s)
{
    rtoc_assert(out.size() == a.size());
    const int n = out.size();
    if (disjoint(out.data, n, a.data, n)) {
        const float *__restrict ap = a.data;
        float *__restrict op = out.data;
        for (int i = 0; i < n; ++i)
            op[i] = ap[i] * s;
        return;
    }
    for (int i = 0; i < n; ++i)
        out.data[i] = a.data[i] * s;
}

void
accumDiff(Mat acc, const Mat &a, const Mat &b)
{
    rtoc_assert(acc.size() == a.size() && acc.size() == b.size());
    const int n = acc.size();
    if (disjoint(acc.data, n, a.data, n) &&
        disjoint(acc.data, n, b.data, n)) {
        const float *__restrict ap = a.data;
        const float *__restrict bp = b.data;
        float *__restrict cp = acc.data;
        for (int i = 0; i < n; ++i)
            cp[i] += ap[i] - bp[i];
        return;
    }
    for (int i = 0; i < n; ++i)
        acc.data[i] += a.data[i] - b.data[i];
}

void
axpyDiff(Mat acc, float s, const Mat &a, const Mat &b)
{
    rtoc_assert(acc.size() == a.size() && acc.size() == b.size());
    const int n = acc.size();
    if (disjoint(acc.data, n, a.data, n) &&
        disjoint(acc.data, n, b.data, n)) {
        const float *__restrict ap = a.data;
        const float *__restrict bp = b.data;
        float *__restrict cp = acc.data;
        for (int i = 0; i < n; ++i)
            cp[i] += s * (ap[i] - bp[i]);
        return;
    }
    for (int i = 0; i < n; ++i)
        acc.data[i] += s * (a.data[i] - b.data[i]);
}

void
rowScaleNeg(Mat out, const Mat &a, const Mat &diag)
{
    rtoc_assert(out.rows == a.rows && out.cols == a.cols);
    rtoc_assert(diag.isVec() && diag.cols == a.cols);
    const int rows = out.rows;
    const int cols = out.cols;
    if (disjoint(out.data, rows * cols, a.data, rows * cols) &&
        disjoint(out.data, rows * cols, diag.data, cols)) {
        const float *__restrict ap = a.data;
        const float *__restrict dp = diag.data;
        float *__restrict op = out.data;
        for (int i = 0; i < rows; ++i)
            for (int j = 0; j < cols; ++j) {
                op[static_cast<size_t>(i) * cols + j] =
                    -ap[static_cast<size_t>(i) * cols + j] * dp[j];
            }
        return;
    }
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j)
            out.at(i, j) = -a.at(i, j) * diag[j];
}

void
clampVec(Mat out, const Mat &a, const Mat &lo, const Mat &hi)
{
    rtoc_assert(out.size() == a.size());
    rtoc_assert(out.size() == lo.size() && out.size() == hi.size());
    const int n = out.size();
    if (disjoint(out.data, n, lo.data, n) &&
        disjoint(out.data, n, hi.data, n)) {
        // out may alias a (the solver clamps in place): per-index
        // read-then-write keeps that exact.
        const float *__restrict lp = lo.data;
        const float *__restrict hp = hi.data;
        for (int i = 0; i < n; ++i) {
            float v = a.data[i];
            v = std::fmax(v, lp[i]);
            v = std::fmin(v, hp[i]);
            out.data[i] = v;
        }
        return;
    }
    for (int i = 0; i < n; ++i) {
        float v = a.data[i];
        v = std::fmax(v, lo.data[i]);
        v = std::fmin(v, hi.data[i]);
        out.data[i] = v;
    }
}

void
clampConst(Mat out, const Mat &a, float lo, float hi)
{
    rtoc_assert(out.size() == a.size());
    const int n = out.size();
    // Per-index read-then-write: exact under out==a aliasing too.
    for (int i = 0; i < n; ++i) {
        float v = a.data[i];
        v = std::fmax(v, lo);
        v = std::fmin(v, hi);
        out.data[i] = v;
    }
}

float
absMaxDiff(const Mat &a, const Mat &b)
{
    rtoc_assert(a.size() == b.size());
    const int n = a.size();
    const float *__restrict ap = a.data;
    const float *__restrict bp = b.data;
    // Serial max chain in reference order (fmax is not freely
    // reassociable in the presence of NaNs).
    float m = 0.0f;
    for (int i = 0; i < n; ++i)
        m = std::fmax(m, std::fabs(ap[i] - bp[i]));
    return m;
}

void
copy(Mat out, const Mat &a)
{
    rtoc_assert(out.size() == a.size());
    const int n = out.size();
    if (disjoint(out.data, n, a.data, n)) {
        const float *__restrict ap = a.data;
        float *__restrict op = out.data;
        for (int i = 0; i < n; ++i)
            op[i] = ap[i];
        return;
    }
    for (int i = 0; i < n; ++i)
        out.data[i] = a.data[i];
}

void
fill(Mat out, float s)
{
    float *__restrict op = out.data;
    const int n = out.size();
    for (int i = 0; i < n; ++i)
        op[i] = s;
}

} // namespace rtoc::matlib::ref
