/**
 * @file
 * Backend interface: functional compute plus micro-op emission.
 *
 * A Backend is handed to the TinyMPC solver (and to the code
 * generator). Each operation computes the reference float32 result
 * *and* appends the micro-op stream of its software mapping to the
 * attached Program. Passing a null Program turns a backend into a
 * pure functional library (used to cross-check results).
 *
 * Fusion scopes model §4.1.2: between beginFuse()/endFuse(), backends
 * that support register-resident temporaries (the RVV backend, and
 * the Gemmini backend's scratchpad residency) skip the store/load
 * round trips that separate library calls would require.
 */

#ifndef RTOC_MATLIB_BACKEND_HH
#define RTOC_MATLIB_BACKEND_HH

#include <string>

#include "isa/program.hh"
#include "matlib/fixed.hh"
#include "matlib/mat.hh"

namespace rtoc::matlib {

/** Abstract compute+emit backend. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Short name for tables. */
    virtual std::string name() const = 0;

    /**
     * Key identifying the emitted stream: every knob that changes the
     * micro-op sequence (flavor, vlen, mapping options, ...) must be
     * encoded here. Backends whose name() already captures the whole
     * configuration can rely on this default. Used by the
     * ProgramCache: two backends with equal cacheKey() emit
     * bit-identical streams for the same solve shape.
     */
    virtual std::string cacheKey() const
    {
        return name() + matlib::formatKeySuffix(fmt_);
    }

    /**
     * Attach/detach the emission target. The program inherits the
     * backend's element width: pushed uops carry the format's sew and
     * width-scaled byte counts, so narrow-format streams are distinct
     * (and distinctly priced) programs.
     */
    void
    setProgram(isa::Program *prog)
    {
        prog_ = prog;
        if (prog_)
            prog_->setEmitWidth(static_cast<uint16_t>(sewBits()));
    }
    isa::Program *program() const { return prog_; }

    // --- numeric-format axis (default F32: bit-identical baseline) ---

    /** Datapath element format of the MAC kernels. */
    NumericFormat format() const { return fmt_; }

    /** Select the datapath format (F32 restores the exact baseline). */
    void setFormat(NumericFormat f) { fmt_ = f; }

    /** Per-kernel fixed-point shift schedule (I16/I32 only). */
    void setFixedScaling(const fx::Scaling &s) { scaling_ = s; }
    const fx::Scaling &fixedScaling() const { return scaling_; }

    /** Element width in bits of emitted uops for this format. */
    int sewBits() const { return formatSewBits(fmt_); }

    /** Element width in bytes (payload/DMA sizing). */
    int elemBytes() const { return formatElemBytes(fmt_); }

    /** Saturation telemetry accumulated by the fx kernels. */
    const fx::Counters &fxCounters() const { return fxCounters_; }
    void resetFxCounters() { fxCounters_ = fx::Counters(); }

    // --- operations (see ref:: for semantics) ---
    virtual void gemv(Mat y, const Mat &a, Mat x, float alpha = 1.0f,
                      float beta = 0.0f) = 0;
    virtual void gemvT(Mat y, const Mat &a, Mat x, float alpha = 1.0f,
                       float beta = 0.0f) = 0;
    virtual void gemm(Mat c, const Mat &a, const Mat &b) = 0;
    virtual void saxpby(Mat out, float sa, const Mat &a, float sb,
                        const Mat &b) = 0;
    virtual void scale(Mat out, const Mat &a, float s) = 0;
    virtual void accumDiff(Mat acc, const Mat &a, const Mat &b) = 0;
    virtual void axpyDiff(Mat acc, float s, const Mat &a,
                          const Mat &b) = 0;
    virtual void rowScaleNeg(Mat out, const Mat &a, const Mat &diag) = 0;
    virtual void clampVec(Mat out, const Mat &a, const Mat &lo,
                          const Mat &hi) = 0;
    virtual void clampConst(Mat out, const Mat &a, float lo,
                            float hi) = 0;
    virtual float absMaxDiff(const Mat &a, const Mat &b) = 0;
    virtual void copy(Mat out, const Mat &a) = 0;
    virtual void fill(Mat out, float s) = 0;

    /** Convenience wrappers expressed via the primitives above. */
    void add(Mat out, const Mat &a, const Mat &b)
    {
        saxpby(out, 1.0f, a, 1.0f, b);
    }
    void sub(Mat out, const Mat &a, const Mat &b)
    {
        saxpby(out, 1.0f, a, -1.0f, b);
    }

    /**
     * Fused gemv→saxpby pair (y = sa·(alpha·A x + beta·y) + sb·b),
     * the shape of the solver's forward/backward passes. While
     * emitting, this is EXACTLY the historical two-call sequence —
     * the micro-op stream (and every cache key derived from it) is
     * unchanged. On the non-emitting per-tick hot path it runs the
     * one-pass fused reference kernel, which is bit-identical to the
     * pair (see ref::gemvSaxpby).
     */
    void
    gemvSaxpby(Mat y, const Mat &a, Mat x, float alpha, float beta,
               float sa, float sb, const Mat &b)
    {
        if (emitting()) {
            gemv(y, a, x, alpha, beta);
            saxpby(y, sa, y, sb, b);
        } else if (fmt_ == NumericFormat::F32) {
            ref::gemvSaxpby(y, a, x, alpha, beta, sa, sb, b);
        } else {
            fx::gemvSaxpby(fmt_, scaling_, fxCounters_, y, a, x, alpha,
                           beta, sa, sb, b);
        }
    }

    /**
     * Whether the backend can *emit* the hand-optimized Fused mapping
     * structure (§4.1.2). Backends whose ISA cannot realize
     * register-resident per-step fusion (Gemmini's CISC/RoCC
     * constraints) return false, and the solver rejects Fused-style
     * emission on them with a fatal error.
     */
    virtual bool supportsFusedEmission() const { return true; }

    /** Open a fusion region (default: no effect). */
    virtual void beginFuse() {}

    /** Close a fusion region, writing back dirty temporaries. */
    virtual void endFuse() {}

    /** Make all results CPU-visible (Gemmini: fence; others: no-op). */
    virtual void sync() {}

  protected:
    /** True when emission is active. */
    bool emitting() const { return prog_ != nullptr; }

    /**
     * Format-dispatched MAC kernels for the concrete backends' compute
     * halves: exact ref:: float32 at the default, fx:: quantized
     * datapaths otherwise. Emission is unaffected — only the computed
     * values (and the saturation counters) change with the format.
     */
    void
    computeGemv(Mat y, const Mat &a, Mat x, float alpha, float beta)
    {
        if (fmt_ == NumericFormat::F32)
            ref::gemv(y, a, x, alpha, beta);
        else
            fx::gemv(fmt_, scaling_, fxCounters_, y, a, x, alpha, beta);
    }

    void
    computeGemvT(Mat y, const Mat &a, Mat x, float alpha, float beta)
    {
        if (fmt_ == NumericFormat::F32)
            ref::gemvT(y, a, x, alpha, beta);
        else
            fx::gemvT(fmt_, scaling_, fxCounters_, y, a, x, alpha, beta);
    }

    void
    computeSaxpby(Mat out, float sa, const Mat &a, float sb, const Mat &b)
    {
        if (fmt_ == NumericFormat::F32)
            ref::saxpby(out, sa, a, sb, b);
        else
            fx::saxpby(fmt_, scaling_, fxCounters_, out, sa, a, sb, b);
    }

    isa::Program *prog_ = nullptr;
    NumericFormat fmt_ = NumericFormat::F32;
    fx::Scaling scaling_;
    fx::Counters fxCounters_;
};

} // namespace rtoc::matlib

#endif // RTOC_MATLIB_BACKEND_HH
