/**
 * @file
 * Gemmini backend: maps matlib operations onto RoCC command streams.
 *
 * Mapping knobs correspond to the optimizations of §4.2:
 *  - staticSchedule: addresses/tiling computed at compile time, so a
 *    RoCC command costs one immediate materialization instead of a
 *    run of shifts/ors/multiplies on the scalar core (§4.2.1, Fig. 6);
 *  - unroll: command loops software-unrolled (no per-command loop
 *    bookkeeping on the CPU);
 *  - fineGrained: individual mvin/preload/compute commands instead of
 *    CISC tiled-matmul macros; CISC pays multi-command configuration
 *    and forbids scratchpad-resident operands (§4.2.3);
 *  - spadResident: the whole TinyMPC workspace lives in scratchpad
 *    bank 0 with utility matrices (identity, -identity, rho-scaled
 *    identities); intermediate results are written to the scratchpad
 *    and reused without mvout/mvin round trips or fences (§4.2.4,
 *    Fig. 7/8);
 *  - useElementwise: abs/clip computed on the mesh via ReLU identities
 *    (Equations 1-3) and scalar multiples via preloaded s*I, instead
 *    of falling back to the CPU (§4.2.6);
 *  - usePooling: residual max-reductions use the max-pool engine on
 *    mvout, cutting the CPU-side reduction by the pool factor
 *    (§4.2.6).
 */

#ifndef RTOC_MATLIB_GEMMINI_BACKEND_HH
#define RTOC_MATLIB_GEMMINI_BACKEND_HH

#include <set>

#include "matlib/backend.hh"

namespace rtoc::matlib {

/** Software-mapping configuration for the Gemmini backend. */
struct GemminiMapping
{
    bool staticSchedule = false;
    bool unroll = false;
    bool fineGrained = true;
    bool spadResident = false;
    bool useElementwise = false;
    bool usePooling = false;
    int meshDim = 4;

    /** Naive dynamic mapping (library-style). */
    static GemminiMapping baseline();

    /** Static scheduling + unrolling (Fig. 6 end point). */
    static GemminiMapping staticMapped();

    /** Full §4.2 optimization stack (Fig. 12 "pool" series). */
    static GemminiMapping fullyOptimized();
};

/** Gemmini backend emitting RoCC command streams. */
class GemminiBackend : public Backend
{
  public:
    explicit GemminiBackend(GemminiMapping mapping);

    std::string name() const override;

    std::string cacheKey() const override;

    /**
     * Declare workspace buffers scratchpad-resident and emit the
     * one-time mvin of matrices + utility identities (solver setup).
     */
    void initResident(std::initializer_list<const Mat *> mats);

    void gemv(Mat y, const Mat &a, Mat x, float alpha,
              float beta) override;
    void gemvT(Mat y, const Mat &a, Mat x, float alpha,
               float beta) override;
    void gemm(Mat c, const Mat &a, const Mat &b) override;
    void saxpby(Mat out, float sa, const Mat &a, float sb,
                const Mat &b) override;
    void scale(Mat out, const Mat &a, float s) override;
    void accumDiff(Mat acc, const Mat &a, const Mat &b) override;
    void axpyDiff(Mat acc, float s, const Mat &a, const Mat &b) override;
    void rowScaleNeg(Mat out, const Mat &a, const Mat &diag) override;
    void clampVec(Mat out, const Mat &a, const Mat &lo,
                  const Mat &hi) override;
    void clampConst(Mat out, const Mat &a, float lo, float hi) override;
    float absMaxDiff(const Mat &a, const Mat &b) override;
    void copy(Mat out, const Mat &a) override;
    void fill(Mat out, float s) override;

    /**
     * The Gemmini backend does not support MappingStyle::Fused
     * emission: CISC configuration overhead and the scratchpad
     * staging discipline make the hand-optimized per-step fusion
     * structure unrealizable on the RoCC command stream (ROADMAP open
     * item, resolved as an explicit rejection — the solver fatals
     * when asked to *emit* a Fused-style solve on this backend;
     * purely functional fused solves remain legal).
     */
    bool supportsFusedEmission() const override { return false; }

    void sync() override;

    const GemminiMapping &mapping() const { return mapping_; }

  private:
    /** CPU-side cost of constructing one RoCC command. */
    void emitCmdConstruction();

    /** Loop bookkeeping between commands when not unrolled. */
    void emitLoopOverhead();

    /** Emit one RoCC command with construction cost. */
    void emitCmd(isa::UopKind kind, int rows, int cols, int bytes = 0,
                 bool pooled = false);

    /** Ensure operand @p m is in the scratchpad; mvin if not. */
    void stage(const Mat &m);

    /** Result handling: stays in scratchpad or mvout+fence. */
    void retire(const Mat &m);

    /** Number of mesh tiles covering r x c. */
    int tiles(int r, int c) const;

    /** Mesh dimension at the current element width: each fp32 PE
     *  processes two 16-bit lanes per cycle (real Gemmini runs narrow
     *  precisions at proportionally higher throughput), so 16-bit
     *  tiles cover twice the rows/cols. float32 (and int32) keep
     *  meshDim — and the emitted stream — exactly as before. */
    int effMeshDim() const { return mapping_.meshDim * 32 / sewBits(); }

    /** Elementwise mesh pass over @p n elements (ReLU/scale). */
    void emitMeshEwise(int n, int passes);

    /** CPU fallback elementwise (mvout, fence, scalar loop, mvin). */
    void emitCpuFallback(int n, int fp_per_elem);

    GemminiMapping mapping_;
    std::set<const float *> resident_;
    bool config_valid_ = false; ///< redundant-config elimination
    int last_cfg_rows_ = -1;
    int last_cfg_cols_ = -1;
};

} // namespace rtoc::matlib

#endif // RTOC_MATLIB_GEMMINI_BACKEND_HH
