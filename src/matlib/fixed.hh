/**
 * @file
 * Numeric-format axis of the matlib backends: float32 (the paper's
 * datapath), int16/int32 fixed-point with per-kernel static scaling
 * (Jerez et al., "Embedded Online Optimization for MPC at Megahertz
 * Rates": certified fixed-point ADMM datapaths), and bfloat16.
 *
 * Storage stays float32 — the workspace, the solver and every backend
 * view are unchanged. A non-float format changes what the MAC kernels
 * *compute*: operands are quantized onto the format's grid, the dot
 * products run as integer MACs with a saturating accumulator (int32
 * accumulator for int16 elements, int64 for int32) and a per-kernel
 * shift schedule, and results are rounded back onto the output grid
 * before being dequantized into the float storage. The emitted uop
 * streams carry the element width (Program::setEmitWidth), so narrow
 * formats are distinct cached programs whose replay prices the
 * narrower datapath (wider effective Saturn lanes, cheaper Gemmini
 * DMA, faster scalar FPU ops).
 *
 * Saturation events are counted per backend (quantizer clamps and
 * accumulator clamps separately) — the telemetry the precision Pareto
 * bench reports next to divergence rates.
 */

#ifndef RTOC_MATLIB_FIXED_HH
#define RTOC_MATLIB_FIXED_HH

#include <cstdint>
#include <string>

#include "matlib/mat.hh"

namespace rtoc::matlib {

/** Element format of a backend's datapath. */
enum class NumericFormat : uint8_t {
    F32,  ///< float32 (default; bit-identical historical path)
    I16,  ///< Q-format int16 fixed point (16-bit datapath)
    I32,  ///< Q-format int32 fixed point (32-bit datapath)
    BF16, ///< bfloat16 storage/operands, float32 accumulate
};

/** Short name: "f32", "i16", "i32", "bf16". */
const char *formatName(NumericFormat f);

/** Element width in bits as carried by emitted uops (32 or 16). */
int formatSewBits(NumericFormat f);

/** Element width in bytes (UART payloads, DMA traffic). */
int formatElemBytes(NumericFormat f);

/**
 * Cache-identity suffix: empty for F32 (every historical key is
 * untouched), "|fmt:i16" style otherwise. I32 streams are
 * byte-identical to F32 streams (same element width) but the computed
 * values differ, so I32 is suffixed too — narrow-format calibrations
 * and cells never alias float32 blobs.
 */
std::string formatKeySuffix(NumericFormat f);

/** Parse "f32"/"i16"/"i32"/"bf16" (fatal on anything else). */
NumericFormat parseFormat(const std::string &name);

/** Process default: RTOC_FORMAT when set, else F32 (read once). */
NumericFormat defaultFormat();

namespace fx {

/** Truncate @p v to bfloat16 (round-to-nearest-even). */
float toBf16(float v);

/**
 * Per-kernel Q-format schedule: fraction bits of the matrix operand,
 * the vector operand and the stored result. The accumulator runs at
 * aFrac + xFrac and the output shift is (aFrac + xFrac - outFrac).
 */
struct KernelSpec
{
    int aFrac = 10;   ///< matrix / first-operand fraction bits
    int xFrac = 10;   ///< vector / second-operand fraction bits
    int outFrac = 10; ///< result fraction bits
};

/**
 * Static per-kernel scaling derived from calibrated ranges (the gain
 * matrices are known offline; trajectory ranges come from the bound
 * boxes and references with headroom). One schedule per MAC kernel.
 */
struct Scaling
{
    KernelSpec gemv;
    KernelSpec gemvT;
    KernelSpec saxpby;

    /**
     * Derive a schedule from the calibrated operand ranges: fraction
     * bits = (format bits - 1) - integer bits needed for
     * (range * headroom), floored at 0. @p mat_range bounds the gain/
     * dynamics matrix entries, @p vec_range the trajectory/slack
     * vectors, @p acc_range the dot-product magnitudes.
     */
    static Scaling forRanges(NumericFormat f, double mat_range,
                             double vec_range, double acc_range);
};

/** Saturation telemetry of one backend's fixed-point datapath. */
struct Counters
{
    uint64_t quantSats = 0; ///< operand/result quantizer clamps
    uint64_t accSats = 0;   ///< saturating-accumulator clamps
};

/** y = alpha * A x + beta * y on the @p f datapath. */
void gemv(NumericFormat f, const Scaling &s, Counters &c, Mat y,
          const Mat &a, Mat x, float alpha, float beta);

/** y = alpha * A^T x + beta * y on the @p f datapath. */
void gemvT(NumericFormat f, const Scaling &s, Counters &c, Mat y,
           const Mat &a, Mat x, float alpha, float beta);

/** out = sa * a + sb * b on the @p f datapath. */
void saxpby(NumericFormat f, const Scaling &s, Counters &c, Mat out,
            float sa, const Mat &a, float sb, const Mat &b);

/** Fused gemv -> saxpby pair (the solver's pass shape). */
void gemvSaxpby(NumericFormat f, const Scaling &s, Counters &c, Mat y,
                const Mat &a, Mat x, float alpha, float beta, float sa,
                float sb, const Mat &b);

} // namespace fx

} // namespace rtoc::matlib

#endif // RTOC_MATLIB_FIXED_HH
