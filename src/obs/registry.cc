#include "registry.hh"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/thread_pool.hh"
#include "isa/disk_cache.hh"

namespace rtoc::obs {

namespace {

constexpr size_t kShardChunk = 256; ///< counter slots per shard chunk

/**
 * One thread's counter shard: chunked arrays of relaxed atomics
 * indexed by StatId. The owning thread is the only incrementer;
 * snapshot() reads the atomics cross-thread. Chunks never move once
 * allocated; `grow_mu` serializes allocation against snapshot's
 * chunk-list walk (same discipline as the trace buffers).
 */
struct Shard
{
    std::mutex grow_mu;
    std::deque<std::unique_ptr<std::atomic<uint64_t>[]>> chunks;

    void
    add(StatId id, uint64_t delta)
    {
        size_t chunk = id / kShardChunk;
        if (chunk >= chunks.size()) {
            std::lock_guard<std::mutex> lk(grow_mu);
            while (chunks.size() <= chunk)
                chunks.emplace_back(
                    new std::atomic<uint64_t>[kShardChunk]());
        }
        chunks[chunk][id % kShardChunk].fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Cross-thread read; takes grow_mu so the chunk-list walk never
     *  races the owner's chunk allocation. */
    uint64_t
    read(StatId id)
    {
        std::lock_guard<std::mutex> lk(grow_mu);
        size_t chunk = id / kShardChunk;
        if (chunk >= chunks.size())
            return 0;
        return chunks[chunk][id % kShardChunk].load(
            std::memory_order_relaxed);
    }
};

struct RegState
{
    mutable std::mutex mu; ///< shards list, registered ids, gauges
    std::vector<Shard *> shards; ///< leaked on purpose: counts from
                                 ///< exited threads must survive
    std::map<StatId, bool> registered; ///< id -> unstable flag
    std::map<std::string, std::function<uint64_t()>> gauges;
};

RegState &
regState()
{
    static RegState *s = new RegState; // leaked: usable at exit
    return *s;
}

/** Copy the shard list under the registry lock (cold paths). */
std::vector<Shard *>
lockedShards(const RegState &s)
{
    std::lock_guard<std::mutex> lk(s.mu);
    return s.shards;
}

thread_local Shard *t_shard = nullptr;

Shard &
threadShard()
{
    if (!t_shard) {
        auto *sh = new Shard; // leaked on purpose (see above)
        RegState &s = regState();
        std::lock_guard<std::mutex> lk(s.mu);
        s.shards.push_back(sh);
        t_shard = sh;
    }
    return *t_shard;
}

/** Sum counter @p id across all shards (caller holds no locks). */
uint64_t
sumCounter(StatId id, const std::vector<Shard *> &shards)
{
    uint64_t total = 0;
    for (Shard *sh : shards)
        total += sh->read(id);
    return total;
}

void
appendJsonEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char hex[8];
            snprintf(hex, sizeof(hex), "\\u%04x", c);
            out += hex;
        } else {
            out += c;
        }
    }
}

/**
 * The RTOC_* knobs recorded in the manifest. RTOC_TRACE and RTOC_LOG
 * are deliberately absent: both are output-neutral by contract, and
 * recording them would break the traced-vs-untraced byte-identity of
 * golden artifacts.
 */
const char *const kManifestKnobs[] = {
    "RTOC_THREADS",       "RTOC_GRAIN",        "RTOC_CACHE",
    "RTOC_CACHE_DIR",     "RTOC_CELL_MEMO",    "RTOC_CELL_MEMO_CAP",
    "RTOC_DSE_MEMO_CAP",  "RTOC_SCHED",        "RTOC_SCHED_CAP",
    "RTOC_FORMAT",        "RTOC_FAULT",
};

} // namespace

uint64_t
Snapshot::get(const std::string &name) const
{
    auto it = vals_.find(name);
    return it == vals_.end() ? 0 : it->second;
}

std::map<std::string, uint64_t>
Snapshot::diff(const Snapshot &base) const
{
    std::map<std::string, uint64_t> d;
    for (const auto &kv : vals_) {
        uint64_t before = base.get(kv.first);
        d[kv.first] = kv.second >= before ? kv.second - before : 0;
    }
    return d;
}

Registry &
Registry::global()
{
    static Registry *r = new Registry; // leaked: usable at exit
    return *r;
}

StatId
Registry::counter(const std::string &name, bool unstable)
{
    StatId id = internStat(name);
    RegState &s = regState();
    std::lock_guard<std::mutex> lk(s.mu);
    auto it = s.registered.find(id);
    if (it == s.registered.end())
        s.registered.emplace(id, unstable);
    else if (unstable)
        it->second = true;
    return id;
}

void
Registry::inc(StatId id, uint64_t delta)
{
    threadShard().add(id, delta);
}

void
Registry::gauge(const std::string &name, std::function<uint64_t()> fn)
{
    RegState &s = regState();
    std::lock_guard<std::mutex> lk(s.mu);
    s.gauges[name] = std::move(fn);
}

uint64_t
Registry::value(StatId id) const
{
    return sumCounter(id, lockedShards(regState()));
}

Snapshot
Registry::snapshot() const
{
    RegState &s = regState();
    std::vector<Shard *> shards = lockedShards(s);
    std::map<StatId, bool> registered;
    std::map<std::string, std::function<uint64_t()>> gauges;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        registered = s.registered;
        gauges = s.gauges;
    }
    Snapshot snap;
    for (const auto &kv : registered)
        snap.vals_[statName(kv.first)] = sumCounter(kv.first, shards);
    for (const auto &kv : gauges)
        snap.vals_[kv.first] = kv.second();
    return snap;
}

void
Registry::resetForTest()
{
    RegState &s = regState();
    std::lock_guard<std::mutex> lk(s.mu);
    for (Shard *sh : s.shards) {
        std::lock_guard<std::mutex> glk(sh->grow_mu);
        for (auto &chunk : sh->chunks)
            for (size_t i = 0; i < kShardChunk; ++i)
                chunk[i].store(0, std::memory_order_relaxed);
    }
    s.gauges.clear();
}

void
Registry::writeJsonSections(FILE *f) const
{
    RegState &s = regState();
    std::vector<Shard *> shards = lockedShards(s);
    std::map<StatId, bool> registered;
    std::map<std::string, std::function<uint64_t()>> gauges;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        registered = s.registered;
        gauges = s.gauges;
    }
    // Name-sorted stable counters + gauges.
    std::map<std::string, uint64_t> vals;
    for (const auto &kv : registered)
        if (!kv.second)
            vals[statName(kv.first)] = sumCounter(kv.first, shards);
    for (const auto &kv : gauges)
        vals[kv.first] = kv.second();

    std::string out = "  \"metrics\": {";
    bool first = true;
    char num[64];
    for (const auto &kv : vals) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"";
        appendJsonEscaped(out, kv.first);
        snprintf(num, sizeof(num), "\": %llu",
                 static_cast<unsigned long long>(kv.second));
        out += num;
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"manifest\": ";
    out += manifestJson();
    out += ",\n";
    std::fputs(out.c_str(), f);
}

std::string
manifestJson()
{
    std::string out = "{\n    \"build\": \"";
    appendJsonEscaped(out, isa::buildFingerprint());
    out += "\",\n";
    char num[64];
    snprintf(num, sizeof(num), "    \"threads\": %d,\n",
             ThreadPool::global().threads());
    out += num;
    out += "    \"cache_mode\": \"";
    out += isa::DiskCache::global().enabled() ? "disk" : "off";
    out += "\",\n    \"env\": {";
    bool first = true;
    for (const char *knob : kManifestKnobs) {
        const char *v = std::getenv(knob);
        if (!v)
            continue;
        out += first ? "\n" : ",\n";
        first = false;
        out += "      \"";
        out += knob;
        out += "\": \"";
        appendJsonEscaped(out, v);
        out += '"';
    }
    out += first ? "}\n  }" : "\n    }\n  }";
    return out;
}

} // namespace rtoc::obs
