/**
 * @file
 * RegionProfile: aggregates the per-kernel-region cycle attribution
 * that every TimingResult already carries (via cpu::RegionAttributor)
 * into region × backend × plant distributions across a sweep, and
 * renders the paper-Fig-12-style "where do the cycles go" breakdown
 * table. Surfaced by `--profile` on bench_cross_plant / bench_relin
 * and exported into the trace as counter tracks.
 *
 * Determinism: a profile is pure aggregation over deterministic
 * TimingResults, so the table is byte-identical run to run (and is
 * printed after the golden tables so their bytes never move).
 */

#ifndef RTOC_OBS_REGION_PROFILE_HH
#define RTOC_OBS_REGION_PROFILE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "isa/program.hh"

namespace rtoc::obs {

/** Aggregated cycles for one kernel region on one backend. */
struct RegionRow
{
    std::string backend;
    std::string region;
    uint64_t cycles = 0;      ///< total attributed cycles, all plants
    uint64_t invocations = 0; ///< region entries, all plants
    double share = 0.0;       ///< of the backend's attributed total
    DistSummary perPlant;     ///< per-plant cycle distribution
};

/** Region × backend × plant cycle aggregation (see file comment). */
class RegionProfile
{
  public:
    /**
     * Fold one plant's per-name kernel breakdown (e.g.
     * TimingResult::kernelBreakdown) for @p backend into the profile.
     */
    void add(const std::string &backend, const std::string &plant,
             const std::vector<isa::KernelCycles> &kernels);

    /** True when nothing has been added. */
    bool empty() const { return cells_.empty(); }

    /** Total attributed cycles across every backend and plant. */
    uint64_t totalCycles() const;

    /** Total attributed cycles for one backend. */
    uint64_t backendCycles(const std::string &backend) const;

    /**
     * All rows: backends in first-add order, regions within a backend
     * by descending cycle total (name-ordered on ties).
     */
    std::vector<RegionRow> rows() const;

    /**
     * Render the Fig-12-style breakdown table: one block per backend,
     * one row per region with total cycles, share of the backend, and
     * the per-plant distribution (median / IQR).
     */
    std::string table() const;

    /**
     * Emit one trace counter sample per (backend, region) named
     * "region/<backend>/<region>" carrying the total cycles. No-op
     * when tracing is disabled.
     */
    void exportTraceCounters() const;

  private:
    struct Cell
    {
        uint64_t cycles = 0;
        uint64_t invocations = 0;
        Distribution perPlant; ///< one sample per plant
    };

    /** (backend, region) -> aggregate. */
    std::map<std::pair<std::string, std::string>, Cell> cells_;
    std::vector<std::string> backend_order_; ///< first-add order
};

} // namespace rtoc::obs

#endif // RTOC_OBS_REGION_PROFILE_HH
