/**
 * @file
 * Trace spans: Chrome trace-event / Perfetto-compatible tracing of
 * the runtime's own hot seams (episode ticks, emission vs. cached
 * replay, batch column passes, pool claim/steal/drain, explorer
 * stages).
 *
 * The source paper is a characterization study; this is the same
 * discipline applied to the reproduction itself. Set
 * RTOC_TRACE=<path> to record a trace: every thread appends events to
 * its own chunked buffer (owner-only writes, a light mutex only on
 * chunk growth), and the process flushes one JSON file at exit —
 * load it at https://ui.perfetto.dev or chrome://tracing.
 *
 * Cost discipline: when tracing is off (the default), RTOC_SPAN
 * compiles down to a single predictable branch on a process-wide
 * bool — no clock reads, no stores, no allocation — so every golden
 * figure/bench output is byte-identical with tracing off and on
 * (pinned by tests and the acceptance sweeps). Timestamps only ever
 * land in the trace file, never in stdout or JSON artifacts.
 *
 * Span names and categories must be string literals or otherwise
 * process-lifetime-stable strings (interned kernel/stat names
 * qualify); dynamic names go through TraceWriter::internString.
 */

#ifndef RTOC_OBS_TRACE_HH
#define RTOC_OBS_TRACE_HH

#include <cstdint>
#include <string>

namespace rtoc::obs {

namespace detail {
/**
 * Process-wide trace switch. Written only by TraceWriter::enable /
 * disable (at static init from RTOC_TRACE, or from tests before
 * spawning traced work); read unsynchronized on every span — the one
 * predictable branch the macro pays when tracing is off.
 */
extern bool g_trace_on;
} // namespace detail

/** True when a trace destination is armed. */
inline bool
traceEnabled()
{
    return __builtin_expect(detail::g_trace_on, 0);
}

/** Monotonic nanoseconds since process trace epoch. */
uint64_t traceNowNs();

/**
 * Process-wide trace sink (see file comment). All methods are safe to
 * call with tracing disabled (they no-op), so instrumentation sites
 * never need their own guards beyond the span macro's.
 */
class TraceWriter
{
  public:
    /** The singleton sink (armed from RTOC_TRACE on first use). */
    static TraceWriter &global();

    /**
     * Arm tracing to @p path (tests; RTOC_TRACE does this at
     * startup). Clears any buffered events and re-opens the flush
     * window.
     */
    void enable(const std::string &path);

    /** Flush (if armed) and disarm. */
    void disable();

    /** Destination path ("" when disarmed). */
    std::string path() const;

    /**
     * Record a completed span on the calling thread.
     * @p name/@p cat/@p arg keys must be lifetime-stable strings.
     * Pass nargs in [0,2].
     */
    void completeEvent(const char *name, const char *cat,
                       uint64_t ts_ns, uint64_t dur_ns, int nargs = 0,
                       const char *k0 = nullptr, uint64_t v0 = 0,
                       const char *k1 = nullptr, uint64_t v1 = 0);

    /** Record an instant event (thread scope). */
    void instant(const char *name, const char *cat);

    /** Record a counter sample on its own Perfetto counter track. */
    void counter(const char *name, double value);

    /**
     * Copy @p s into the writer's string pool and return a
     * process-lifetime-stable pointer (for composed counter-track
     * names; cold path).
     */
    const char *internString(const std::string &s);

    /**
     * Write the JSON trace file from every thread's buffer.
     * Registered atexit when armed; idempotent until re-enabled.
     * Events recorded while a flush runs may be dropped (exit-time
     * stragglers), never torn.
     */
    void flush();

    /** Events currently buffered across all threads (tests). */
    size_t bufferedEvents() const;

  private:
    TraceWriter();
};

/**
 * RAII span: records a completeEvent from construction to
 * destruction. Disabled construction costs one branch; destruction
 * one more.
 */
class Span
{
  public:
    explicit Span(const char *name, const char *cat = "rtoc")
    {
        if (traceEnabled()) {
            name_ = name;
            cat_ = cat;
            t0_ = traceNowNs();
        }
    }

    /** Attach a numeric arg (kept on the span's trace event; up to
     *  two, extras dropped). No-op on a disabled span. */
    void
    arg(const char *key, uint64_t value)
    {
        if (name_ && nargs_ < 2) {
            k_[nargs_] = key;
            v_[nargs_] = value;
            ++nargs_;
        }
    }

    ~Span()
    {
        if (name_) {
            TraceWriter::global().completeEvent(
                name_, cat_, t0_, traceNowNs() - t0_, nargs_, k_[0],
                v_[0], k_[1], v_[1]);
        }
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    const char *name_ = nullptr; ///< nullptr = disabled span
    const char *cat_ = nullptr;
    uint64_t t0_ = 0;
    int nargs_ = 0;
    const char *k_[2] = {nullptr, nullptr};
    uint64_t v_[2] = {0, 0};
};

#define RTOC_OBS_CONCAT2(a, b) a##b
#define RTOC_OBS_CONCAT(a, b) RTOC_OBS_CONCAT2(a, b)

/** Anonymous RAII span over the enclosing scope. */
#define RTOC_SPAN(name, cat)                                            \
    ::rtoc::obs::Span RTOC_OBS_CONCAT(rtoc_span_, __LINE__)(name, cat)

/** Named RAII span, for sites that attach args before scope exit. */
#define RTOC_SPAN_NAMED(var, name, cat) ::rtoc::obs::Span var(name, cat)

} // namespace rtoc::obs

#endif // RTOC_OBS_TRACE_HH
