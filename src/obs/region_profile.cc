#include "region_profile.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/trace.hh"

namespace rtoc::obs {

void
RegionProfile::add(const std::string &backend, const std::string &plant,
                   const std::vector<isa::KernelCycles> &kernels)
{
    (void)plant; // one add() call per plant; the name itself is not
                 // stored, only the per-plant sample boundaries
    bool seen = false;
    for (const std::string &b : backend_order_)
        if (b == backend)
            seen = true;
    if (!seen)
        backend_order_.push_back(backend);
    for (const isa::KernelCycles &k : kernels) {
        Cell &c = cells_[{backend, k.name}];
        c.cycles += k.cycles;
        c.invocations += k.invocations;
        c.perPlant.add(static_cast<double>(k.cycles));
    }
}

uint64_t
RegionProfile::totalCycles() const
{
    uint64_t total = 0;
    for (const auto &kv : cells_)
        total += kv.second.cycles;
    return total;
}

uint64_t
RegionProfile::backendCycles(const std::string &backend) const
{
    uint64_t total = 0;
    for (const auto &kv : cells_)
        if (kv.first.first == backend)
            total += kv.second.cycles;
    return total;
}

std::vector<RegionRow>
RegionProfile::rows() const
{
    std::vector<RegionRow> out;
    for (const std::string &backend : backend_order_) {
        uint64_t btotal = backendCycles(backend);
        std::vector<RegionRow> block;
        for (const auto &kv : cells_) {
            if (kv.first.first != backend)
                continue;
            RegionRow r;
            r.backend = backend;
            r.region = kv.first.second;
            r.cycles = kv.second.cycles;
            r.invocations = kv.second.invocations;
            r.share = btotal
                          ? static_cast<double>(kv.second.cycles) /
                                static_cast<double>(btotal)
                          : 0.0;
            r.perPlant = kv.second.perPlant.summarize();
            block.push_back(std::move(r));
        }
        std::sort(block.begin(), block.end(),
                  [](const RegionRow &a, const RegionRow &b) {
                      if (a.cycles != b.cycles)
                          return a.cycles > b.cycles;
                      return a.region < b.region;
                  });
        for (RegionRow &r : block)
            out.push_back(std::move(r));
    }
    return out;
}

std::string
RegionProfile::table() const
{
    std::ostringstream os;
    char line[256];
    os << "region profile (attributed cycles; per-plant median [p25, "
          "p75])\n";
    std::string cur;
    for (const RegionRow &r : rows()) {
        if (r.backend != cur) {
            cur = r.backend;
            snprintf(line, sizeof(line), "backend %-10s total %llu\n",
                     cur.c_str(),
                     static_cast<unsigned long long>(
                         backendCycles(cur)));
            os << line;
            snprintf(line, sizeof(line), "  %-22s %12s %7s %7s %s\n",
                     "region", "cycles", "share", "invocs",
                     "per-plant");
            os << line;
        }
        snprintf(line, sizeof(line),
                 "  %-22s %12llu %6.1f%% %7llu %.0f [%.0f, %.0f]\n",
                 r.region.c_str(),
                 static_cast<unsigned long long>(r.cycles),
                 100.0 * r.share,
                 static_cast<unsigned long long>(r.invocations),
                 r.perPlant.median, r.perPlant.p25, r.perPlant.p75);
        os << line;
    }
    return os.str();
}

void
RegionProfile::exportTraceCounters() const
{
    if (!traceEnabled())
        return;
    TraceWriter &tw = TraceWriter::global();
    for (const RegionRow &r : rows()) {
        const char *name =
            tw.internString("region/" + r.backend + "/" + r.region);
        tw.counter(name, static_cast<double>(r.cycles));
    }
}

} // namespace rtoc::obs
