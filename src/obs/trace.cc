#include "trace.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "common/logging.hh"

namespace rtoc::obs {

namespace detail {
bool g_trace_on = false;
} // namespace detail

namespace {

/** One buffered trace event (see Chrome trace-event format docs). */
struct Event
{
    const char *name; ///< lifetime-stable
    const char *cat;  ///< lifetime-stable
    uint64_t ts_ns;
    uint64_t dur_ns; ///< 'X' only
    char ph;         ///< 'X' complete, 'i' instant, 'C' counter
    uint8_t nargs;
    const char *k[2];
    uint64_t v[2];
    double cval; ///< 'C' only
};

constexpr size_t kChunkEvents = 4096;

/**
 * Per-thread event buffer. The owning thread is the only writer; it
 * appends into the current chunk and publishes the new count with a
 * release store. The flusher reads counts with acquire loads. Chunks
 * are allocated once and never move (deque of unique_ptr to fixed
 * arrays), so the flusher can read earlier chunks while the owner
 * appends to the last one; `grow_mu` serializes only chunk allocation
 * against flush's chunk-list walk.
 */
struct ThreadBuffer
{
    std::mutex grow_mu;
    std::deque<std::unique_ptr<Event[]>> chunks;
    std::atomic<size_t> count{0}; ///< total events across chunks
    uint64_t tid;

    void
    push(const Event &e)
    {
        size_t n = count.load(std::memory_order_relaxed);
        if (n == chunks.size() * kChunkEvents) {
            std::lock_guard<std::mutex> lk(grow_mu);
            chunks.emplace_back(new Event[kChunkEvents]);
        }
        chunks[n / kChunkEvents][n % kChunkEvents] = e;
        count.store(n + 1, std::memory_order_release);
    }
};

struct WriterState
{
    mutable std::mutex mu; ///< path, buffer list, string pool, epoch
    std::string path;
    std::vector<ThreadBuffer *> buffers; ///< leaked on purpose: events
                                         ///< from exited threads must
                                         ///< survive to flush
    std::deque<std::string> pool;        ///< interned dynamic names
    uint64_t next_tid = 1;
    uint64_t generation = 0; ///< bumped by enable(); stale buffers
                             ///< (armed under an older generation)
                             ///< are reset lazily
    bool atexit_armed = false;
};

WriterState &
state()
{
    static WriterState *s = new WriterState; // leaked: usable at exit
    return *s;
}

thread_local ThreadBuffer *t_buf = nullptr;
thread_local uint64_t t_gen = 0;

ThreadBuffer &
threadBuffer()
{
    WriterState &s = state();
    if (!t_buf) {
        auto *b = new ThreadBuffer; // leaked on purpose (see above)
        std::lock_guard<std::mutex> lk(s.mu);
        b->tid = s.next_tid++;
        s.buffers.push_back(b);
        t_buf = b;
        t_gen = s.generation;
    } else {
        std::lock_guard<std::mutex> lk(s.mu);
        if (t_gen != s.generation) {
            // Re-enabled since this thread last traced: drop events
            // from the previous trace window.
            t_buf->count.store(0, std::memory_order_release);
            t_gen = s.generation;
        }
    }
    return *t_buf;
}

void
flushAtExit()
{
    TraceWriter::global().flush();
}

/** JSON-escape a name/category string into @p out. */
void
appendEscaped(std::string &out, const char *s)
{
    for (; *s; ++s) {
        char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char hex[8];
            snprintf(hex, sizeof(hex), "\\u%04x", c);
            out += hex;
        } else {
            out += c;
        }
    }
}

} // namespace

uint64_t
traceNowNs()
{
    // steady_clock: spans must nest even if the wall clock steps.
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

TraceWriter::TraceWriter()
{
    const char *env = std::getenv("RTOC_TRACE");
    if (env && *env)
        enable(env);
}

TraceWriter &
TraceWriter::global()
{
    static TraceWriter *w = new TraceWriter; // leaked: usable at exit
    return *w;
}

namespace {

// The span macros' disabled fast path reads only detail::g_trace_on;
// nothing else constructs the writer, so arm it (parsing RTOC_TRACE)
// before main(). This TU is always linked: every instrumented seam
// references TraceWriter symbols.
[[maybe_unused]] const TraceWriter &g_env_arm = TraceWriter::global();

} // namespace

void
TraceWriter::enable(const std::string &path)
{
    WriterState &s = state();
    bool arm = false;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        s.path = path;
        ++s.generation;
        for (ThreadBuffer *b : s.buffers)
            b->count.store(0, std::memory_order_release);
        if (!s.atexit_armed) {
            s.atexit_armed = true;
            arm = true;
        }
    }
    if (t_buf)
        t_gen = s.generation;
    detail::g_trace_on = true;
    if (arm)
        std::atexit(flushAtExit);
}

void
TraceWriter::disable()
{
    flush();
    detail::g_trace_on = false;
    WriterState &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    s.path.clear();
}

std::string
TraceWriter::path() const
{
    WriterState &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    return s.path;
}

void
TraceWriter::completeEvent(const char *name, const char *cat,
                           uint64_t ts_ns, uint64_t dur_ns, int nargs,
                           const char *k0, uint64_t v0, const char *k1,
                           uint64_t v1)
{
    if (!traceEnabled())
        return;
    Event e{};
    e.name = name;
    e.cat = cat;
    e.ts_ns = ts_ns;
    e.dur_ns = dur_ns;
    e.ph = 'X';
    e.nargs = static_cast<uint8_t>(nargs < 0 ? 0 : (nargs > 2 ? 2 : nargs));
    e.k[0] = k0;
    e.v[0] = v0;
    e.k[1] = k1;
    e.v[1] = v1;
    threadBuffer().push(e);
}

void
TraceWriter::instant(const char *name, const char *cat)
{
    if (!traceEnabled())
        return;
    Event e{};
    e.name = name;
    e.cat = cat;
    e.ts_ns = traceNowNs();
    e.ph = 'i';
    threadBuffer().push(e);
}

void
TraceWriter::counter(const char *name, double value)
{
    if (!traceEnabled())
        return;
    Event e{};
    e.name = name;
    e.cat = "counter";
    e.ts_ns = traceNowNs();
    e.ph = 'C';
    e.cval = value;
    threadBuffer().push(e);
}

const char *
TraceWriter::internString(const std::string &str)
{
    WriterState &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    for (const std::string &p : s.pool)
        if (p == str)
            return p.c_str();
    s.pool.push_back(str);
    return s.pool.back().c_str();
}

size_t
TraceWriter::bufferedEvents() const
{
    WriterState &s = state();
    std::lock_guard<std::mutex> lk(s.mu);
    size_t n = 0;
    for (ThreadBuffer *b : s.buffers)
        n += b->count.load(std::memory_order_acquire);
    return n;
}

void
TraceWriter::flush()
{
    WriterState &s = state();
    std::string path;
    std::vector<ThreadBuffer *> buffers;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        path = s.path;
        buffers = s.buffers;
    }
    if (path.empty())
        return;

    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        rtoc_warn("RTOC_TRACE: cannot open '%s' for writing",
                  path.c_str());
        return;
    }

    std::string out;
    out.reserve(1 << 16);
    std::fputs("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n", f);
    bool first = true;
    char num[256];
    for (ThreadBuffer *b : buffers) {
        // Snapshot the published count and the chunk pointers under
        // the growth mutex (the owner may allocate a new chunk
        // concurrently); the Event arrays themselves never move, and
        // events below the acquired count are fully written.
        size_t n;
        std::vector<const Event *> chunk_ptrs;
        {
            std::lock_guard<std::mutex> lk(b->grow_mu);
            n = b->count.load(std::memory_order_acquire);
            chunk_ptrs.reserve(b->chunks.size());
            for (const auto &c : b->chunks)
                chunk_ptrs.push_back(c.get());
        }
        if (n == 0)
            continue;
        // Per-thread metadata record so Perfetto names the track.
        snprintf(num, sizeof(num),
                 "%s{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%llu,\"args\":{\"name\":\"rtoc-%llu\"}}",
                 first ? "" : ",\n",
                 static_cast<unsigned long long>(b->tid),
                 static_cast<unsigned long long>(b->tid));
        first = false;
        std::fputs(num, f);
        for (size_t i = 0; i < n; ++i) {
            const Event &e = chunk_ptrs[i / kChunkEvents][i % kChunkEvents];
            out.clear();
            out += ",\n{\"name\":\"";
            appendEscaped(out, e.name);
            out += "\",\"cat\":\"";
            appendEscaped(out, e.cat ? e.cat : "rtoc");
            out += "\",\"ph\":\"";
            out += e.ph;
            out += '"';
            // ts/dur are microseconds with ns precision kept as
            // fractional digits (format spec: doubles in us).
            snprintf(num, sizeof(num), ",\"ts\":%llu.%03llu",
                     static_cast<unsigned long long>(e.ts_ns / 1000),
                     static_cast<unsigned long long>(e.ts_ns % 1000));
            out += num;
            if (e.ph == 'X') {
                snprintf(num, sizeof(num), ",\"dur\":%llu.%03llu",
                         static_cast<unsigned long long>(e.dur_ns / 1000),
                         static_cast<unsigned long long>(e.dur_ns % 1000));
                out += num;
            }
            if (e.ph == 'i')
                out += ",\"s\":\"t\"";
            snprintf(num, sizeof(num), ",\"pid\":1,\"tid\":%llu",
                     static_cast<unsigned long long>(b->tid));
            out += num;
            if (e.ph == 'C') {
                snprintf(num, sizeof(num), ",\"args\":{\"value\":%.17g}",
                         e.cval);
                out += num;
            } else if (e.nargs > 0) {
                out += ",\"args\":{";
                for (int a = 0; a < e.nargs; ++a) {
                    if (a)
                        out += ',';
                    out += '"';
                    appendEscaped(out, e.k[a] ? e.k[a] : "arg");
                    snprintf(num, sizeof(num), "\":%llu",
                             static_cast<unsigned long long>(e.v[a]));
                    out += num;
                }
                out += '}';
            }
            out += '}';
            std::fputs(out.c_str(), f);
        }
    }
    std::fputs("\n]}\n", f);
    std::fclose(f);
}

} // namespace rtoc::obs
