/**
 * @file
 * Process-wide metrics registry: one home for the runtime's own
 * counters (memo hits, cache emissions, pool steals, ...), replacing
 * the five ad-hoc stat structs that grew around individual caches.
 *
 * Counters are identified by interned StatId (common/stats.hh) and
 * stored in per-thread shards of relaxed atomics, so hot-path
 * increments are a vector index + one uncontended atomic add — safe
 * under the work-stealing pool without a lock. snapshot() sums across
 * shards (including shards of exited threads, which are kept alive
 * for the life of the process); Snapshot::diff supports
 * before/after-style accounting in tests and benches.
 *
 * Counters flagged *unstable* (scheduling-dependent, e.g. pool
 * steals) are reported by snapshot() but excluded from
 * writeMetricsJson, so bench `--json` artifacts stay byte-identical
 * run-to-run. Gauges are polled at snapshot time (for values owned by
 * a mutex-guarded structure, e.g. LRU occupancy).
 *
 * The registry also renders the run manifest — build fingerprint,
 * RTOC_* knob values, thread count, cache mode — written into every
 * bench `--json` artifact so the file records how it was produced.
 * RTOC_TRACE and RTOC_LOG are deliberately excluded: both are
 * output-neutral by contract (golden artifacts must be byte-identical
 * with tracing off and on), so they must not leak into the artifact.
 */

#ifndef RTOC_OBS_REGISTRY_HH
#define RTOC_OBS_REGISTRY_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <string>

#include "common/stats.hh"

namespace rtoc::obs {

/** A summed point-in-time view of every registry counter and gauge. */
class Snapshot
{
  public:
    /** Value of @p name (0 when absent). */
    uint64_t get(const std::string &name) const;

    /** All values, name-sorted (includes unstable counters). */
    const std::map<std::string, uint64_t> &values() const
    {
        return vals_;
    }

    /**
     * Per-counter difference `this - base` (counters are monotonic, so
     * this is the activity between the two snapshots; names absent
     * from @p base count from zero, and zero deltas are kept so
     * round-trip tests can see every registered name).
     */
    std::map<std::string, uint64_t> diff(const Snapshot &base) const;

  private:
    friend class Registry;
    std::map<std::string, uint64_t> vals_;
};

/** Process-wide counter registry (see file comment). */
class Registry
{
  public:
    static Registry &global();

    /**
     * Register (or look up) counter @p name. Idempotent; the returned
     * StatId is the handle for inc(). @p unstable marks
     * scheduling-dependent counters excluded from metrics JSON.
     */
    StatId counter(const std::string &name, bool unstable = false);

    /** Add @p delta to counter @p id on this thread's shard. */
    void inc(StatId id, uint64_t delta = 1);

    /**
     * Register gauge @p name, polled at snapshot time. Re-registering
     * replaces the callback (callers own any referenced state).
     */
    void gauge(const std::string &name, std::function<uint64_t()> fn);

    /** Summed view of all counters + polled gauges. */
    Snapshot snapshot() const;

    /** Summed value of one counter (0 when never incremented). */
    uint64_t value(StatId id) const;

    /**
     * Reset every counter shard to zero and drop gauges (tests only —
     * production code treats counters as monotonic).
     */
    void resetForTest();

    /**
     * Append the unified `"metrics"` + `"manifest"` sections emitted
     * into every bench `--json` artifact, e.g.:
     *
     *   "metrics": { "cell_memo.hits": 12, ... },
     *   "manifest": { "build": "...", "threads": 4,
     *                 "cache_mode": "auto",
     *                 "env": { "RTOC_THREADS": "4", ... } },
     *
     * Caller is mid-object: the text ends with a trailing comma so it
     * can be inserted right after the artifact's opening `{`.
     * Unstable counters and zero-valued counters whose name was only
     * registered (never incremented) are included — the section must
     * be deterministic, not minimal.
     */
    void writeJsonSections(FILE *f) const;

  private:
    Registry() = default;
};

/** Convenience: one-line counter bump via the global registry. */
inline void
count(StatId id, uint64_t delta = 1)
{
    Registry::global().inc(id, delta);
}

/**
 * Render the run manifest by itself (tests): build fingerprint,
 * thread count, cache mode, and the RTOC_* env knobs (minus
 * RTOC_TRACE / RTOC_LOG — see file comment).
 */
std::string manifestJson();

} // namespace rtoc::obs

#endif // RTOC_OBS_REGISTRY_HH
