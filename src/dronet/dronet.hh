/**
 * @file
 * DroNet workload model for the concurrent-task study (§5.3).
 *
 * DroNet (Loquercio et al., RA-L 2018) is an 8-layer residual CNN
 * taking a 200x200 grayscale frame and producing steering +
 * collision-probability outputs. We model it layer by layer (conv
 * MAC counts, pooling, dense) and map it onto the same core models
 * used for MPC: a vectorized conv kernel sustains a calibrated
 * fraction of the datapath's peak MACs/cycle, plus per-layer
 * invocation overhead. The paper runs DroNet as a background Zephyr
 * thread under a 50 Hz TinyMPC task on a 100 MHz RVV core.
 */

#ifndef RTOC_DRONET_DRONET_HH
#define RTOC_DRONET_DRONET_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rtoc::dronet {

/** One layer of the network. */
struct Layer
{
    std::string name;
    int inH = 0, inW = 0, inC = 0;
    int outC = 0;
    int kernel = 3;
    int stride = 1;
    bool dense = false;

    /** Output spatial dims. */
    int outH() const { return dense ? 1 : (inH + stride - 1) / stride; }
    int outW() const { return dense ? 1 : (inW + stride - 1) / stride; }

    /** Multiply-accumulates for this layer. */
    double macs() const;
};

/** The DroNet topology (conv stem, 3 residual blocks, 2 heads). */
std::vector<Layer> dronetLayers();

/** Total MACs of the network. */
double dronetTotalMacs();

/** Cost model of running the network on a core. */
struct CnnCostModel
{
    double macsPerCycle = 4.4;   ///< sustained (8-lane RVV conv)
    double layerOverheadCycles = 30000.0; ///< im2col/bookkeeping

    /** Cycles for one inference. */
    double cyclesPerFrame() const;

    /** Vectorized mapping on a DLEN-bit datapath. */
    static CnnCostModel vectorized(int dlen_bits);

    /** Scalar mapping (for comparison). */
    static CnnCostModel scalar();
};

} // namespace rtoc::dronet

#endif // RTOC_DRONET_DRONET_HH
