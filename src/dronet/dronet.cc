#include "dronet.hh"

namespace rtoc::dronet {

double
Layer::macs() const
{
    if (dense) {
        return static_cast<double>(inH) * inW * inC * outC;
    }
    double positions = static_cast<double>(outH()) * outW();
    return positions * kernel * kernel * inC * outC;
}

std::vector<Layer>
dronetLayers()
{
    // DroNet: 200x200x1 input, 5x5/2 conv stem + 3x3/2 maxpool, then
    // three ResNet blocks (two 3x3 convs each, strided entry, 1x1
    // shortcut), then dense heads for steering and collision.
    std::vector<Layer> layers;
    layers.push_back({"conv_stem", 200, 200, 1, 32, 5, 2, false});
    // After stem + pool: 50x50x32.
    layers.push_back({"res1_conv1", 50, 50, 32, 32, 3, 2, false});
    layers.push_back({"res1_conv2", 25, 25, 32, 32, 3, 1, false});
    layers.push_back({"res1_short", 50, 50, 32, 32, 1, 2, false});
    layers.push_back({"res2_conv1", 25, 25, 32, 64, 3, 2, false});
    layers.push_back({"res2_conv2", 13, 13, 64, 64, 3, 1, false});
    layers.push_back({"res2_short", 25, 25, 32, 64, 1, 2, false});
    layers.push_back({"res3_conv1", 13, 13, 64, 128, 3, 2, false});
    layers.push_back({"res3_conv2", 7, 7, 128, 128, 3, 1, false});
    layers.push_back({"res3_short", 13, 13, 64, 128, 1, 2, false});
    layers.push_back({"fc_steer", 7, 7, 128, 1, 1, 1, true});
    layers.push_back({"fc_coll", 7, 7, 128, 1, 1, 1, true});
    return layers;
}

double
dronetTotalMacs()
{
    double total = 0.0;
    for (const Layer &l : dronetLayers())
        total += l.macs();
    return total;
}

double
CnnCostModel::cyclesPerFrame() const
{
    double cycles = 0.0;
    for (const Layer &l : dronetLayers())
        cycles += l.macs() / macsPerCycle + layerOverheadCycles;
    return cycles;
}

CnnCostModel
CnnCostModel::vectorized(int dlen_bits)
{
    CnnCostModel m;
    int lanes = dlen_bits / 32;
    // ~55% sustained efficiency of the FMA datapath on 3x3 convs.
    m.macsPerCycle = lanes * 0.55;
    m.layerOverheadCycles = 30000.0;
    return m;
}

CnnCostModel
CnnCostModel::scalar()
{
    CnnCostModel m;
    m.macsPerCycle = 0.35; // load + fma + indexing per MAC, in-order
    m.layerOverheadCycles = 15000.0;
    return m;
}

} // namespace rtoc::dronet
