/**
 * @file
 * Plant abstraction: everything the HIL/sweep stack needs to fly an
 * arbitrary linearizable plant through the closed-loop MPC pipeline.
 *
 * A Plant bundles two coupled views of one physical system:
 *  - the *simulation* view: a nonlinear stepper (RK4 inside the
 *    concrete plants), actuator limits with trim, a crash predicate
 *    and actuation-energy accounting — the role gym-pybullet-drones
 *    plays for the paper's quadrotor;
 *  - the *controller* view: an nx-dimensional MPC model with
 *    continuous dynamics around a trim point, linearized analytically
 *    (plants override linearize()) or by central finite differences
 *    (the fdLinearize default), packed into a ready-to-solve TinyMPC
 *    workspace of runtime (nx, nu) shape.
 *
 * Waypoints are task-space Vec3 targets; each plant maps them to an
 * MPC reference and a scalar tracking distance, so the same episode
 * runner, sweep engine and benches amortize across every registered
 * plant. Plants are cloneable prototypes: parallel sweeps clone one
 * instance per episode, never sharing mutable state.
 */

#ifndef RTOC_PLANT_PLANT_HH
#define RTOC_PLANT_PLANT_HH

#include <memory>
#include <string>
#include <vector>

#include "numerics/dare.hh"
#include "plant/scenario.hh"
#include "tinympc/workspace.hh"

namespace rtoc::plant {

/** Continuous + ZOH-discretized model around the trim point. */
struct LinearModel
{
    numerics::DMatrix ac; ///< nx x nx continuous
    numerics::DMatrix bc; ///< nx x nu continuous
    numerics::DMatrix ad; ///< nx x nx discrete (ZOH)
    numerics::DMatrix bd; ///< nx x nu discrete
    double dt = 0.02;
};

/** LQR weights of a plant's tracking task. */
struct Weights
{
    std::vector<double> qDiag; ///< nx state cost diagonal
    std::vector<double> rDiag; ///< nu input cost diagonal
    double rho = 5.0;          ///< ADMM penalty
};

/**
 * One classic RK4 step of ds/dt = f(s), shared by the concrete
 * plants' nonlinear simulators (actuator/lag state is held constant
 * across the step by the callers).
 */
template <size_t N, typename DerivFn>
std::array<double, N>
rk4Step(const std::array<double, N> &s, double dt, DerivFn &&f)
{
    auto add = [](const std::array<double, N> &a,
                  const std::array<double, N> &b, double h) {
        std::array<double, N> r;
        for (size_t i = 0; i < N; ++i)
            r[i] = a[i] + h * b[i];
        return r;
    };
    std::array<double, N> k1 = f(s);
    std::array<double, N> k2 = f(add(s, k1, dt / 2));
    std::array<double, N> k3 = f(add(s, k2, dt / 2));
    std::array<double, N> k4 = f(add(s, k3, dt));
    std::array<double, N> out = s;
    for (size_t i = 0; i < N; ++i)
        out[i] += dt / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
    return out;
}

/** Fill @p m's ad/bd by ZOH-discretizing its ac/bc with @p dt. */
void discretizeInPlace(LinearModel &m, double dt);

/** Abstract linearizable plant. */
class Plant
{
  public:
    virtual ~Plant() = default;

    // --- identity / problem shape ---

    /** Short name for tables and registry ids. */
    virtual std::string name() const = 0;

    /**
     * Key identifying the plant *configuration* for memoization
     * (runCell memo, calibration memo): every parameter that changes
     * closed-loop behaviour must be encoded. Defaults to name();
     * parameterized plants must append their knobs.
     */
    virtual std::string cacheKey() const { return name(); }

    /** MPC state dimension. */
    virtual int nx() const = 0;

    /** MPC input dimension. */
    virtual int nu() const = 0;

    /** Fresh copy with reset simulation state (prototype pattern). */
    virtual std::unique_ptr<Plant> clone() const = 0;

    // --- nonlinear simulation ---

    /** Reset to the nominal start state; zero time and energy. */
    virtual void reset() = 0;

    /** Advance @p dt seconds under actuator command @p cmd (size nu;
     *  concrete plants clamp to the actuator envelope). */
    virtual void step(const std::vector<double> &cmd, double dt) = 0;

    /** Simulated time since reset (s). */
    virtual double timeS() const = 0;

    /** True when the plant has entered an unrecoverable state. */
    virtual bool crashed() const = 0;

    /** Actuation energy consumed since reset (J). */
    virtual double actuationEnergyJ() const = 0;

    // --- actuators ---

    /** Command that holds the trim/equilibrium condition (size nu). */
    virtual std::vector<double> trimCommand() const = 0;

    /** Per-actuator lower command limits (size nu). */
    virtual std::vector<double> commandMin() const = 0;

    /** Per-actuator upper command limits (size nu). */
    virtual std::vector<double> commandMax() const = 0;

    /**
     * Absolute actuator command from the solver's first input (nu
     * deltas from trim), clamped to the actuator envelope.
     */
    virtual std::vector<double> commandFromDelta(const float *du) const;

    // --- MPC model ---

    /** Model-space trim state the linearization expands around
     *  (size nx; defaults to the origin). */
    virtual std::vector<double> trimState() const;

    /**
     * Continuous dynamics of the nx-dimensional MPC model:
     * dxdt = f(x, du) with @p du the nu input deltas from trim. For
     * plants whose simulation state is richer than the model (the
     * quadrotor's quaternion vs its small-angle rpy model) this is
     * the *model*, not the simulator.
     */
    virtual void modelDeriv(const double *x, const double *du,
                            double *dxdt) const = 0;

    /**
     * Linearize around (trimState, 0) and ZOH-discretize with @p dt.
     * Default: central finite differences of modelDeriv (fdLinearize);
     * plants with analytic Jacobians override.
     */
    virtual LinearModel linearize(double dt) const;

    /** Tracking-cost weights. */
    virtual Weights mpcWeights() const = 0;

    /**
     * Build a ready-to-solve TinyMPC workspace: linearized model,
     * Riccati cache, input box from the actuator envelope minus trim,
     * reference at the home waypoint.
     */
    virtual tinympc::Workspace buildWorkspace(double dt,
                                              int horizon) const;

    /** Pack the current simulation state into nx MPC coordinates. */
    virtual void packState(float *x) const = 0;

    /** MPC reference (size nx) tracking task-space waypoint @p wp. */
    virtual std::vector<float> reference(const Vec3 &wp) const = 0;

    // --- task space ---

    /** Nominal start / hold waypoint (where reset() puts the plant). */
    virtual Vec3 home() const = 0;

    /** Task-space distance from the current state to @p wp. */
    virtual double distanceTo(const Vec3 &wp) const = 0;

    /** Radius within which a waypoint counts as reached (m). */
    virtual double reachRadius() const { return 0.12; }

    /** Hold time at the final waypoint for mission success (s). */
    virtual double settleS() const { return 0.2; }

    // --- scenarios ---

    /** Per-difficulty waypoint-generation parameters. */
    virtual DifficultySpec difficultySpec(Difficulty d) const = 0;

    /** Deterministically generate scenario @p index of @p d. */
    virtual Scenario makeScenario(Difficulty d, int index) const = 0;

    /**
     * Episodes per sweep cell the registry records for this plant's
     * scenario specs. Plants whose episodes are long or whose success
     * metric converges slowly may override the historical default;
     * sweep drivers (bench_cross_plant) read the per-spec count
     * instead of one global n.
     */
    virtual int defaultEpisodes() const { return 6; }
};

/**
 * Central-difference linearization of @p plant's modelDeriv around
 * (trimState, 0), ZOH-discretized with @p dt — the default behind
 * Plant::linearize and the reference the analytic Jacobians are
 * validated against in the tests.
 */
LinearModel fdLinearize(const Plant &plant, double dt);

} // namespace rtoc::plant

#endif // RTOC_PLANT_PLANT_HH
