/**
 * @file
 * Plant abstraction: everything the HIL/sweep stack needs to fly an
 * arbitrary linearizable plant through the closed-loop MPC pipeline.
 *
 * A Plant bundles two coupled views of one physical system:
 *  - the *simulation* view: a nonlinear stepper (RK4 inside the
 *    concrete plants), actuator limits with trim, a crash predicate
 *    and actuation-energy accounting — the role gym-pybullet-drones
 *    plays for the paper's quadrotor;
 *  - the *controller* view: an nx-dimensional MPC model with
 *    continuous dynamics around a trim point, linearized analytically
 *    (plants override linearize()) or by central finite differences
 *    (the fdLinearize default), packed into a ready-to-solve TinyMPC
 *    workspace of runtime (nx, nu) shape.
 *
 * Waypoints are task-space Vec3 targets; each plant maps them to an
 * MPC reference and a scalar tracking distance, so the same episode
 * runner, sweep engine and benches amortize across every registered
 * plant. Plants are cloneable prototypes: parallel sweeps clone one
 * instance per episode, never sharing mutable state.
 */

#ifndef RTOC_PLANT_PLANT_HH
#define RTOC_PLANT_PLANT_HH

#include <memory>
#include <string>
#include <vector>

#include "numerics/dare.hh"
#include "plant/scenario.hh"
#include "tinympc/workspace.hh"

namespace rtoc::plant {

/**
 * Continuous + ZOH-discretized model around a linearization point.
 * Trim linearizations expand around an equilibrium, so the affine
 * residual is zero and cc/cd stay empty; linearizeAt() at an off-trim
 * point carries the residual c = f(x0,u0) - Ac x0 - Bc u0 so that
 * dx/dt = Ac x + Bc u + cc holds in absolute model coordinates (and
 * x+ = Ad x + Bd u + cd after ZOH discretization).
 */
struct LinearModel
{
    numerics::DMatrix ac; ///< nx x nx continuous
    numerics::DMatrix bc; ///< nx x nu continuous
    numerics::DMatrix ad; ///< nx x nx discrete (ZOH)
    numerics::DMatrix bd; ///< nx x nu discrete
    std::vector<double> cc; ///< continuous affine residual (empty = 0)
    std::vector<double> cd; ///< discrete affine residual (empty = 0)
    double dt = 0.02;
};

/** LQR weights of a plant's tracking task. */
struct Weights
{
    std::vector<double> qDiag; ///< nx state cost diagonal
    std::vector<double> rDiag; ///< nu input cost diagonal
    double rho = 5.0;          ///< ADMM penalty
};

/**
 * One classic RK4 step of ds/dt = f(s), shared by the concrete
 * plants' nonlinear simulators (actuator/lag state is held constant
 * across the step by the callers).
 */
template <size_t N, typename DerivFn>
std::array<double, N>
rk4Step(const std::array<double, N> &s, double dt, DerivFn &&f)
{
    auto add = [](const std::array<double, N> &a,
                  const std::array<double, N> &b, double h) {
        std::array<double, N> r;
        for (size_t i = 0; i < N; ++i)
            r[i] = a[i] + h * b[i];
        return r;
    };
    std::array<double, N> k1 = f(s);
    std::array<double, N> k2 = f(add(s, k1, dt / 2));
    std::array<double, N> k3 = f(add(s, k2, dt / 2));
    std::array<double, N> k4 = f(add(s, k3, dt));
    std::array<double, N> out = s;
    for (size_t i = 0; i < N; ++i)
        out[i] += dt / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] + k4[i]);
    return out;
}

/** Fill @p m's ad/bd (and cd when cc is set) by ZOH-discretizing its
 *  ac/bc/cc with @p dt. */
void discretizeInPlace(LinearModel &m, double dt);

/** Abstract linearizable plant. */
class Plant
{
  public:
    virtual ~Plant() = default;

    // --- identity / problem shape ---

    /** Short name for tables and registry ids. */
    virtual std::string name() const = 0;

    /**
     * Key identifying the plant *configuration* for memoization
     * (runCell memo, calibration memo): every parameter that changes
     * closed-loop behaviour must be encoded. Defaults to name();
     * parameterized plants must append their knobs.
     */
    virtual std::string cacheKey() const { return name(); }

    /** MPC state dimension. */
    virtual int nx() const = 0;

    /** MPC input dimension. */
    virtual int nu() const = 0;

    /** Fresh copy with reset simulation state (prototype pattern). */
    virtual std::unique_ptr<Plant> clone() const = 0;

    // --- nonlinear simulation ---

    /** Reset to the nominal start state; zero time and energy. */
    virtual void reset() = 0;

    /** Advance @p dt seconds under actuator command @p cmd (size nu;
     *  concrete plants clamp to the actuator envelope). */
    virtual void step(const std::vector<double> &cmd, double dt) = 0;

    /** Simulated time since reset (s). */
    virtual double timeS() const = 0;

    /** True when the plant has entered an unrecoverable state. */
    virtual bool crashed() const = 0;

    /** Actuation energy consumed since reset (J). */
    virtual double actuationEnergyJ() const = 0;

    // --- external disturbances ---

    /** Whether applyWrench has any effect on this plant. */
    virtual bool supportsWrench() const { return false; }

    /**
     * Hold external wrench @p w across subsequent step() calls (until
     * replaced; pass a zero wrench to clear). Plants fold the force/
     * torque into their derivative — the quadrotor via the historical
     * quad::ExternalWrench path, ground/planar plants by projecting
     * onto their actuated axes. The default ignores the wrench
     * (supportsWrench() == false).
     */
    virtual void applyWrench(const Wrench &w) { (void)w; }

    // --- actuators ---

    /** Command that holds the trim/equilibrium condition (size nu). */
    virtual std::vector<double> trimCommand() const = 0;

    /** Per-actuator lower command limits (size nu). */
    virtual std::vector<double> commandMin() const = 0;

    /** Per-actuator upper command limits (size nu). */
    virtual std::vector<double> commandMax() const = 0;

    /**
     * Absolute actuator command from the solver's first input (nu
     * deltas from trim), clamped to the actuator envelope.
     */
    virtual std::vector<double> commandFromDelta(const float *du) const;

    /**
     * Solver input box in delta-from-trim coordinates (the actuator
     * envelope minus the current trim), shared by buildWorkspace and
     * the session's post-refresh bound update so both always agree.
     */
    void inputBoundDeltas(std::vector<float> &lo,
                          std::vector<float> &hi) const;

    // --- MPC model ---

    /** Model-space trim state the linearization expands around
     *  (size nx; defaults to the origin). */
    virtual std::vector<double> trimState() const;

    /**
     * Continuous dynamics of the nx-dimensional MPC model:
     * dxdt = f(x, du) with @p du the nu input deltas from trim. For
     * plants whose simulation state is richer than the model (the
     * quadrotor's quaternion vs its small-angle rpy model) this is
     * the *model*, not the simulator.
     */
    virtual void modelDeriv(const double *x, const double *du,
                            double *dxdt) const = 0;

    /**
     * Linearize around (trimState, 0) and ZOH-discretize with @p dt.
     * Default: central finite differences of modelDeriv (fdLinearize);
     * plants with analytic Jacobians override.
     */
    virtual LinearModel linearize(double dt) const;

    /**
     * Linearize around an arbitrary point (@p x, @p du) — the
     * real-time-iteration refresh used by warm-start incremental
     * relinearization — carrying the affine residual
     * c = f(x, du) - Ac x - Bc du in LinearModel::cc/cd. Default:
     * central finite differences of modelDeriv (fdLinearizeAt);
     * plants whose Jacobians are cheap analytically override.
     */
    virtual LinearModel linearizeAt(const double *x, const double *du,
                                    double dt) const;

    /** Tracking-cost weights. */
    virtual Weights mpcWeights() const = 0;

    /**
     * Build a ready-to-solve TinyMPC workspace: linearized model,
     * Riccati cache, input box from the actuator envelope minus trim,
     * reference at the home waypoint.
     */
    virtual tinympc::Workspace buildWorkspace(double dt,
                                              int horizon) const;

    /** Pack the current simulation state into nx MPC coordinates. */
    virtual void packState(float *x) const = 0;

    /** MPC reference (size nx) tracking task-space waypoint @p wp. */
    virtual std::vector<float> reference(const Vec3 &wp) const = 0;

    // --- task space ---

    /** Nominal start / hold waypoint (where reset() puts the plant). */
    virtual Vec3 home() const = 0;

    /** Task-space distance from the current state to @p wp. */
    virtual double distanceTo(const Vec3 &wp) const = 0;

    /** Radius within which a waypoint counts as reached (m). */
    virtual double reachRadius() const { return 0.12; }

    /** Hold time at the final waypoint for mission success (s). */
    virtual double settleS() const { return 0.2; }

    // --- scenarios ---

    /** Per-difficulty waypoint-generation parameters. */
    virtual DifficultySpec difficultySpec(Difficulty d) const = 0;

    /** Deterministically generate scenario @p index of @p d. */
    virtual Scenario makeScenario(Difficulty d, int index) const = 0;

    /**
     * Episodes per sweep cell the registry records for this plant's
     * scenario specs. Plants whose episodes are long or whose success
     * metric converges slowly may override the historical default;
     * sweep drivers (bench_cross_plant) read the per-spec count
     * instead of one global n.
     */
    virtual int defaultEpisodes() const { return 6; }
};

/**
 * Central-difference linearization of @p plant's modelDeriv around
 * (trimState, 0), ZOH-discretized with @p dt — the default behind
 * Plant::linearize and the reference the analytic Jacobians are
 * validated against in the tests.
 */
LinearModel fdLinearize(const Plant &plant, double dt);

/**
 * Central-difference linearization of @p plant's modelDeriv around an
 * arbitrary (@p x, @p du), including the affine residual, ZOH-
 * discretized with @p dt — the default behind Plant::linearizeAt and
 * the reference the analytic off-trim Jacobians are validated
 * against.
 */
LinearModel fdLinearizeAt(const Plant &plant, const double *x,
                          const double *du, double dt);

/**
 * Fill @p m.cc with the affine residual c = f(x, du) - Ac x - Bc du
 * (f from @p plant's modelDeriv), making the continuous model exact
 * at the expansion point in absolute coordinates — call after
 * filling ac/bc and before discretizeInPlace. Shared by
 * fdLinearizeAt and the analytic linearizeAt overrides (including
 * regularized Jacobians like the rover's coupling-speed floor, whose
 * slope tweak the residual absorbs).
 */
void computeAffineResidual(LinearModel &m, const Plant &plant,
                           const double *x, const double *du);

} // namespace rtoc::plant

#endif // RTOC_PLANT_PLANT_HH
