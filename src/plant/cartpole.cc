#include "cartpole.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace rtoc::plant {

namespace {
constexpr double kG = 9.81;
} // namespace

CartPolePlant::CartPolePlant(CartPoleParams params)
    : params_(std::move(params))
{
    CartPolePlant::reset();
}

std::string
CartPolePlant::name() const
{
    return "cartpole-" + params_.name;
}

std::string
CartPolePlant::cacheKey() const
{
    return csprintf("cartpole:%s:M%.17g:m%.17g:l%.17g:cx%.17g:cp%.17g:F%.17g:track%.17g",
                    params_.name.c_str(), params_.cartMassKg,
                    params_.poleMassKg, params_.poleHalfLenM,
                    params_.cartDamp, params_.poleDamp,
                    params_.maxForceN, params_.trackHalfM);
}

std::unique_ptr<Plant>
CartPolePlant::clone() const
{
    return std::make_unique<CartPolePlant>(params_);
}

void
CartPolePlant::reset()
{
    state_ = {0, 0, 0, 0};
    wrench_ = Wrench();
    time_s_ = 0.0;
    energy_j_ = 0.0;
}

void
CartPolePlant::setState(double x, double xdot, double phi, double phidot)
{
    state_ = {x, xdot, phi, phidot};
}

std::array<double, 4>
CartPolePlant::deriv(const std::array<double, 4> &s, double force,
                     const Wrench *w) const
{
    // Coupled dynamics, phi measured from upright:
    //   (M+m) xdd + m l phidd cos(phi) = F - c_x xd + m l phid^2 sin(phi)
    //   m l xdd cos(phi) + (I + m l^2) phidd = m g l sin(phi) - c_p phid
    double M = params_.cartMassKg;
    double m = params_.poleMassKg;
    double l = params_.poleHalfLenM;
    double It = params_.poleInertia() + m * l * l;
    double phi = s[2], xd = s[1], pd = s[3];
    double c = std::cos(phi), sn = std::sin(phi);

    double a11 = M + m, a12 = m * l * c;
    double a21 = m * l * c, a22 = It;
    double b1 = force - params_.cartDamp * xd + m * l * pd * pd * sn;
    double b2 = m * kG * l * sn - params_.poleDamp * pd;
    if (w != nullptr && !w->zero()) {
        // x-axis force pushes the cart; pitch torque twists the pole
        // about its pivot.
        b1 += w->forceN[0];
        b2 += w->torqueNm[1];
    }

    double det = a11 * a22 - a12 * a21;
    rtoc_assert(std::fabs(det) > 1e-12);
    double xdd = (a22 * b1 - a12 * b2) / det;
    double phidd = (a11 * b2 - a21 * b1) / det;
    return {xd, xdd, pd, phidd};
}

void
CartPolePlant::step(const std::vector<double> &cmd, double dt)
{
    rtoc_assert(cmd.size() == 1);
    double f = std::clamp(cmd[0], -params_.maxForceN, params_.maxForceN);

    state_ = rk4Step(state_, dt, [&](const std::array<double, 4> &x) {
        return deriv(x, f, &wrench_);
    });

    energy_j_ += (std::fabs(f * state_[1]) + params_.idleW) * dt;
    time_s_ += dt;
}

bool
CartPolePlant::crashed() const
{
    return std::fabs(state_[2]) > params_.maxTiltRad ||
           std::fabs(state_[0]) > params_.trackHalfM ||
           std::fabs(state_[1]) > 10.0;
}

std::vector<double>
CartPolePlant::trimCommand() const
{
    return {0.0};
}

std::vector<double>
CartPolePlant::commandMin() const
{
    return {-params_.maxForceN};
}

std::vector<double>
CartPolePlant::commandMax() const
{
    return {params_.maxForceN};
}

void
CartPolePlant::modelDeriv(const double *x, const double *du,
                          double *dxdt) const
{
    auto d = deriv({x[0], x[1], x[2], x[3]}, du[0]);
    for (int i = 0; i < 4; ++i)
        dxdt[i] = d[i];
}

LinearModel
CartPolePlant::linearize(double dt) const
{
    // Upright linearization: cos -> 1, sin(phi) -> phi, phid^2 -> 0.
    double M = params_.cartMassKg;
    double m = params_.poleMassKg;
    double l = params_.poleHalfLenM;
    double It = params_.poleInertia() + m * l * l;
    double det = (M + m) * It - m * m * l * l;

    LinearModel lm;
    lm.ac = numerics::DMatrix(4, 4);
    lm.bc = numerics::DMatrix(4, 1);
    lm.ac(0, 1) = 1.0;
    lm.ac(2, 3) = 1.0;
    // xdd = (It (F - c_x xd) - m l (m g l phi - c_p pd)) / det
    lm.ac(1, 1) = -It * params_.cartDamp / det;
    lm.ac(1, 2) = -m * m * kG * l * l / det;
    lm.ac(1, 3) = m * l * params_.poleDamp / det;
    lm.bc(1, 0) = It / det;
    // phidd = (-m l (F - c_x xd) + (M+m)(m g l phi - c_p pd)) / det
    lm.ac(3, 1) = m * l * params_.cartDamp / det;
    lm.ac(3, 2) = (M + m) * m * kG * l / det;
    lm.ac(3, 3) = -(M + m) * params_.poleDamp / det;
    lm.bc(3, 0) = -m * l / det;

    discretizeInPlace(lm, dt);
    return lm;
}

Weights
CartPolePlant::mpcWeights() const
{
    return {{60, 6, 40, 4}, {0.5}, 5.0};
}

void
CartPolePlant::packState(float *x) const
{
    for (int i = 0; i < 4; ++i)
        x[i] = static_cast<float>(state_[i]);
}

std::vector<float>
CartPolePlant::reference(const Vec3 &wp) const
{
    std::vector<float> xr(4, 0.0f);
    xr[0] = static_cast<float>(wp[0]);
    return xr;
}

double
CartPolePlant::distanceTo(const Vec3 &wp) const
{
    return std::fabs(state_[0] - wp[0]);
}

DifficultySpec
CartPolePlant::difficultySpec(Difficulty d) const
{
    switch (d) {
      case Difficulty::Easy:
        return {"easy", 4, 1.5, 0.5};
      case Difficulty::Medium:
        return {"medium", 6, 1.2, 0.7};
      case Difficulty::Hard:
        return {"hard", 8, 1.0, 0.9};
    }
    rtoc_panic("bad difficulty");
}

Scenario
CartPolePlant::makeScenario(Difficulty d, int index) const
{
    DifficultySpec spec = difficultySpec(d);
    Scenario sc;
    sc.difficulty = d;
    sc.seed = index;
    sc.intervalS = spec.timeBetweenS;
    sc.graceS = 2.0;

    Rng rng(0xCA87ull * (static_cast<uint64_t>(d) + 1) +
            static_cast<uint64_t>(index) * 6803ull);

    // Random walk of track positions, clamped well inside the rails.
    double limit = params_.trackHalfM - 1.0;
    double cur = 0.0;
    for (int i = 0; i < spec.waypointCount; ++i) {
        for (int attempt = 0; attempt < 64; ++attempt) {
            double hop = spec.avgDistanceM * rng.uniform(0.7, 1.3);
            double next = cur + (rng.uniform() < 0.5 ? -hop : hop);
            if (std::fabs(next) < limit) {
                cur = next;
                break;
            }
            if (attempt == 63)
                cur = 0.0;
        }
        sc.waypoints.push_back({cur, 0.0, 0.0});
    }
    return sc;
}

} // namespace rtoc::plant
