/**
 * @file
 * Declarative scenario registry: name -> (plant prototype, difficulty,
 * waypoint generator, disturbance profile). The registry enumerates
 * every runnable scenario spec so sweep benches (bench_cross_plant)
 * and examples fan "all registered workloads x all backends" without
 * hardwiring plant types — the paper's quadrotor becomes one row of a
 * family of control workloads sharing the trace-cached solve pipeline.
 *
 * Built-in plants (quadrotor, rocket lander, rover, cart-pole) are
 * registered lazily on first access of global(); additional plants
 * can be registered at runtime. Plant prototypes are immutable and
 * cloned per episode, so specs are safe to share across sweep threads.
 */

#ifndef RTOC_PLANT_REGISTRY_HH
#define RTOC_PLANT_REGISTRY_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "plant/plant.hh"

namespace rtoc::plant {

/** One runnable scenario family: plant x difficulty x disturbance. */
struct ScenarioSpec
{
    std::string id;        ///< "rover-rover/medium+gusty"
    std::string plantName; ///< prototype Plant::name()
    Difficulty difficulty = Difficulty::Easy;
    DisturbanceProfile disturbance;
    /** Relinearization axis: sweep drivers propagate this into
     *  HilConfig::relin. Defaults to fixed trim, so the built-in
     *  specs keep their historical ids and behaviour. */
    RelinearizePolicy relin;
    std::shared_ptr<const Plant> prototype;
    /** Episodes per sweep cell (from Plant::defaultEpisodes unless a
     *  spec overrides it); sweep drivers read this instead of one
     *  global n. */
    int episodes = 6;

    /** Scenario @p index of this spec: the plant's deterministic
     *  waypoints with the spec's disturbance profile applied. */
    Scenario makeScenario(int index) const;

    /** Fresh mutable plant for one episode. */
    std::unique_ptr<Plant> makePlant() const
    {
        return prototype->clone();
    }
};

/** Process-wide registry of plants and their scenario specs. */
class ScenarioRegistry
{
  public:
    /** Global registry, built-in plants registered on first use. */
    static ScenarioRegistry &global();

    /**
     * Register @p proto: adds one clean spec per difficulty plus a
     * gusty medium spec (disturbance-profile coverage).
     */
    void registerPlant(std::shared_ptr<const Plant> proto);

    /** Register a single explicit spec (id derived when empty). */
    void addSpec(ScenarioSpec spec);

    /** All registered specs, registration order. */
    std::vector<ScenarioSpec> specs() const;

    /** Spec by id; nullptr when unknown. */
    std::unique_ptr<ScenarioSpec> find(const std::string &id) const;

    /** Distinct registered plant names, registration order. */
    std::vector<std::string> plantNames() const;

    /** Fresh plant by name; nullptr when unknown. */
    std::unique_ptr<Plant> makePlant(const std::string &name) const;

  private:
    mutable std::mutex mu_;
    std::vector<ScenarioSpec> specs_;
};

} // namespace rtoc::plant

#endif // RTOC_PLANT_REGISTRY_HH
