/**
 * @file
 * Plant-agnostic scenario vocabulary for the HIL stack.
 *
 * A scenario is a sequence of task-space waypoints revealed at a fixed
 * interval (the paper's Figure 15 protocol), plus an optional
 * disturbance profile. Every plant interprets a waypoint in its own
 * task space — 3-D position for the quadrotor and rocket, a 2-D
 * ground-plane target for the rover, a track position for the
 * cart-pole — so one episode runner drives them all.
 *
 * quad::Difficulty / quad::DifficultySpec are aliases of the types
 * here; the quadrotor keeps its historical Figure 15 table while
 * other plants declare their own per-difficulty parameters.
 */

#ifndef RTOC_PLANT_SCENARIO_HH
#define RTOC_PLANT_SCENARIO_HH

#include <array>
#include <string>
#include <vector>

namespace rtoc::plant {

/** 3-vector helper (same underlying type as quad::Vec3). */
using Vec3 = std::array<double, 3>;

/** Scenario difficulty category (the paper's Easy/Medium/Hard). */
enum class Difficulty { Easy, Medium, Hard };

/** Per-difficulty waypoint-generation parameters. */
struct DifficultySpec
{
    const char *name;
    int waypointCount;
    double timeBetweenS;
    double avgDistanceM;
};

/** All difficulties, for sweep loops. */
inline const Difficulty kAllDifficulties[] = {
    Difficulty::Easy, Difficulty::Medium, Difficulty::Hard};

/** Printable difficulty name (plant-independent). */
const char *difficultyName(Difficulty d);

/**
 * Actuation-noise disturbance profile, applied by the episode runner
 * uniformly across plants: each physics step multiplies every
 * actuator command by (1 + sigma * N(0,1)). A zero sigma draws no
 * random numbers, so clean episodes are bit-identical to the
 * pre-profile code path.
 */
struct DisturbanceProfile
{
    const char *name = "clean";
    double cmdNoiseSigma = 0.0;

    static DisturbanceProfile clean() { return {}; }

    /** Gusty actuation: 5% multiplicative command noise. */
    static DisturbanceProfile gusty() { return {"gusty", 0.05}; }
};

/**
 * External force/torque disturbance, the plant-generic analogue of
 * quad::ExternalWrench: a world-frame force plus a body-frame torque
 * held constant across step() calls until changed. Plants that
 * support it (Plant::supportsWrench) fold the wrench into their
 * derivative; the Fig. 17 step/impulse profiles drive it.
 */
struct Wrench
{
    Vec3 forceN{0, 0, 0};   ///< world-frame force
    Vec3 torqueNm{0, 0, 0}; ///< body-frame torque

    bool zero() const
    {
        for (int i = 0; i < 3; ++i) {
            if (forceN[i] != 0.0 || torqueNm[i] != 0.0)
                return false;
        }
        return true;
    }
};

/**
 * When and how the control session re-linearizes its MPC model
 * around the current state (real-time-iteration style, Verschueren et
 * al.) instead of flying the fixed trim model for the whole episode.
 * The default (K=0, no threshold) is the historical fixed-trim path,
 * bit-identical to the pre-session episode runner.
 */
struct RelinearizePolicy
{
    /** Re-linearize every K control ticks; 0 = never (fixed trim). */
    int everyK = 0;

    /**
     * Additionally refresh whenever the model state drifts further
     * than this (2-norm, model coordinates) from the last
     * linearization point; 0 disables the trigger.
     */
    double stateDeltaThreshold = 0.0;

    /** True for the historical fixed-trim configuration. */
    bool fixedTrim() const
    {
        return everyK == 0 && stateDeltaThreshold <= 0.0;
    }

    /** Memo/cache key fragment (every knob that changes behaviour). */
    std::string cacheKey() const;

    /** Short printable form ("trim", "K5", "K5/d0.4"). */
    std::string label() const;
};

/** One waypoint-tracking scenario, plant-agnostic. */
struct Scenario
{
    Difficulty difficulty = Difficulty::Easy;
    int seed = 0;
    double intervalS = 0.5;      ///< time between waypoint reveals
    double graceS = 1.5;         ///< settling grace after last reveal
    std::vector<Vec3> waypoints; ///< revealed sequentially
    DisturbanceProfile disturbance;

    /** Mission time limit: reveals plus settling grace. */
    double timeLimitS() const
    {
        return intervalS * static_cast<double>(waypoints.size()) +
               graceS;
    }
};

} // namespace rtoc::plant

#endif // RTOC_PLANT_SCENARIO_HH
