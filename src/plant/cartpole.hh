/**
 * @file
 * Cart-pole stabilization plant: balance an inverted pendulum while
 * sliding the cart through revealed track-position waypoints. The
 * simulation integrates the full nonlinear cart-pole equations
 * (coupled 2x2 mass matrix solved per derivative call) under RK4; the
 * MPC model is the classic upright linearization. The tiny problem
 * shape (nx=4, nu=1) exercises the dimension-generic solver at the
 * opposite end of the spectrum from the quadrotor's 12x4.
 */

#ifndef RTOC_PLANT_CARTPOLE_HH
#define RTOC_PLANT_CARTPOLE_HH

#include "plant/plant.hh"

namespace rtoc::plant {

/** Physical description of the cart-pole. */
struct CartPoleParams
{
    std::string name = "cartpole";
    double cartMassKg = 1.0;
    double poleMassKg = 0.12;
    double poleHalfLenM = 0.35;  ///< pivot to pole COM
    double cartDamp = 0.5;       ///< cart viscous friction (N/(m/s))
    double poleDamp = 0.002;     ///< pivot friction (N m/(rad/s))
    double maxForceN = 12.0;
    double trackHalfM = 2.8;     ///< usable track half-length
    double maxTiltRad = 0.85;    ///< pole-drop crash threshold
    double idleW = 0.5;

    /** Pole moment of inertia about its COM (uniform rod). */
    double poleInertia() const
    {
        return poleMassKg * poleHalfLenM * poleHalfLenM / 3.0;
    }
};

/** Cart-pole stabilization plant (nx=4, nu=1). */
class CartPolePlant : public Plant
{
  public:
    explicit CartPolePlant(CartPoleParams params = CartPoleParams());

    std::string name() const override;
    std::string cacheKey() const override;
    int nx() const override { return 4; }
    int nu() const override { return 1; }
    std::unique_ptr<Plant> clone() const override;

    void reset() override;
    void step(const std::vector<double> &cmd, double dt) override;
    double timeS() const override { return time_s_; }
    bool crashed() const override;
    double actuationEnergyJ() const override { return energy_j_; }

    std::vector<double> trimCommand() const override;
    std::vector<double> commandMin() const override;
    std::vector<double> commandMax() const override;

    bool supportsWrench() const override { return true; }
    void applyWrench(const Wrench &w) override { wrench_ = w; }

    void modelDeriv(const double *x, const double *du,
                    double *dxdt) const override;
    LinearModel linearize(double dt) const override;
    Weights mpcWeights() const override;
    void packState(float *x) const override;
    std::vector<float> reference(const Vec3 &wp) const override;

    Vec3 home() const override { return {0, 0, 0}; }
    double distanceTo(const Vec3 &wp) const override;
    double reachRadius() const override { return 0.08; }
    double settleS() const override { return 0.30; }

    DifficultySpec difficultySpec(Difficulty d) const override;
    Scenario makeScenario(Difficulty d, int index) const override;

    const CartPoleParams &params() const { return params_; }

    /** Perturbation helper for predicate tests (phi from upright). */
    void setState(double x, double xdot, double phi, double phidot);

  private:
    /** Continuous derivative of [x, xdot, phi, phidot]; @p w (when
     *  non-null and nonzero) adds an x-axis cart force and a pole
     *  pivot torque. */
    std::array<double, 4> deriv(const std::array<double, 4> &s,
                                double force,
                                const Wrench *w = nullptr) const;

    CartPoleParams params_;
    std::array<double, 4> state_{}; ///< x, xdot, phi, phidot
    Wrench wrench_;                 ///< held across step() calls
    double time_s_ = 0.0;
    double energy_j_ = 0.0;
};

} // namespace rtoc::plant

#endif // RTOC_PLANT_CARTPOLE_HH
