#include "quad_plant.hh"

#include <cmath>

#include "common/logging.hh"
#include "quad/linearize.hh"

namespace rtoc::plant {

QuadrotorPlant::QuadrotorPlant(quad::DroneParams params)
    : params_(std::move(params)), sim_(params_)
{}

std::string
QuadrotorPlant::name() const
{
    return "quad-" + params_.name;
}

std::string
QuadrotorPlant::cacheKey() const
{
    return csprintf("quad:%s:m%.17g:prop%.17g:arm%.17g:kv%.17g:cells%d:ct%.17g:"
                    "load%.17g:kt%.17g:tau%.17g:drag%.17g",
                    params_.name.c_str(), params_.massKg,
                    params_.propDiameterM, params_.armLengthM,
                    params_.motorKvRpmPerV, params_.batteryCells,
                    params_.thrustCoeff, params_.rpmLoadFactor,
                    params_.torqueCoeff, params_.motorTauS,
                    params_.dragCoeff);
}

std::unique_ptr<Plant>
QuadrotorPlant::clone() const
{
    return std::make_unique<QuadrotorPlant>(params_);
}

void
QuadrotorPlant::reset()
{
    sim_.resetHover({0, 0, 1.0});
    wrench_ = quad::ExternalWrench();
}

void
QuadrotorPlant::step(const std::vector<double> &cmd, double dt)
{
    rtoc_assert(cmd.size() == 4);
    // The held wrench is zero unless applyWrench set one, and QuadSim
    // always integrates its wrench argument, so undisturbed episodes
    // are bit-identical to the historical default-argument call.
    sim_.step({cmd[0], cmd[1], cmd[2], cmd[3]}, dt, wrench_);
}

void
QuadrotorPlant::applyWrench(const Wrench &w)
{
    wrench_.forceN = w.forceN;
    wrench_.torqueNm = w.torqueNm;
}

std::vector<double>
QuadrotorPlant::trimCommand() const
{
    double hover = params_.hoverThrustPerMotorN();
    return {hover, hover, hover, hover};
}

std::vector<double>
QuadrotorPlant::commandMin() const
{
    return {0.0, 0.0, 0.0, 0.0};
}

std::vector<double>
QuadrotorPlant::commandMax() const
{
    double tmax = params_.maxThrustPerMotorN();
    return {tmax, tmax, tmax, tmax};
}

void
QuadrotorPlant::modelDeriv(const double *x, const double *du,
                           double *dxdt) const
{
    // The 12-state small-angle hover model of quad::linearizeHover:
    // [pos, rpy, vel, omega], inputs per-motor thrust deltas.
    double m = params_.massKg;
    double kd_over_m = params_.dragCoeff / m;
    for (int i = 0; i < 3; ++i) {
        dxdt[i] = x[6 + i];     // pos_dot = vel
        dxdt[3 + i] = x[9 + i]; // rpy_dot = omega
    }
    double du_sum = du[0] + du[1] + du[2] + du[3];
    dxdt[6] = quad::kGravity * x[4] - kd_over_m * x[6];
    dxdt[7] = -quad::kGravity * x[3] - kd_over_m * x[7];
    dxdt[8] = -kd_over_m * x[8] + du_sum / m;

    double l = params_.momentArmM();
    double kt = params_.torqueCoeff;
    auto inertia = params_.inertiaDiag();
    const double mix[3][4] = {
        {-l, -l, l, l},    // roll torque
        {-l, l, l, -l},    // pitch torque
        {kt, -kt, kt, -kt} // yaw torque
    };
    for (int axis = 0; axis < 3; ++axis) {
        double t = 0.0;
        for (int j = 0; j < 4; ++j)
            t += mix[axis][j] * du[j];
        dxdt[9 + axis] = t / inertia[axis];
    }
}

LinearModel
QuadrotorPlant::linearize(double dt) const
{
    quad::LinearModel qm = quad::linearizeHover(params_, dt);
    LinearModel m;
    m.ac = qm.ac;
    m.bc = qm.bc;
    m.ad = qm.ad;
    m.bd = qm.bd;
    m.dt = qm.dt;
    return m;
}

LinearModel
QuadrotorPlant::linearizeAt(const double *x, const double *du,
                            double dt) const
{
    // The small-angle hover model is linear in (x, du) with
    // f(0, 0) = 0, so the Jacobians are state-independent and the
    // affine residual vanishes: relinearization is an exact no-op for
    // the quadrotor (the paper's fixed-trim §5.2 setup is optimal
    // for its own model class).
    (void)x;
    (void)du;
    return linearize(dt);
}

Weights
QuadrotorPlant::mpcWeights() const
{
    quad::MpcWeights w = quad::MpcWeights::forDrone(params_);
    return {w.qDiag, w.rDiag, w.rho};
}

tinympc::Workspace
QuadrotorPlant::buildWorkspace(double dt, int horizon) const
{
    // Delegate to the historical path: identical float rounding to
    // the pre-Plant episode runner.
    return quad::buildQuadWorkspace(params_, dt, horizon);
}

void
QuadrotorPlant::packState(float *x) const
{
    quad::packMpcState(sim_.state(), x);
}

std::vector<float>
QuadrotorPlant::reference(const Vec3 &wp) const
{
    return quad::hoverReference(wp);
}

double
QuadrotorPlant::distanceTo(const Vec3 &wp) const
{
    const Vec3 &p = sim_.state().pos;
    double dx = p[0] - wp[0];
    double dy = p[1] - wp[1];
    double dz = p[2] - wp[2];
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

DifficultySpec
QuadrotorPlant::difficultySpec(Difficulty d) const
{
    return quad::difficultySpec(d);
}

Scenario
QuadrotorPlant::makeScenario(Difficulty d, int index) const
{
    quad::Scenario qs = quad::makeScenario(d, index);
    Scenario sc;
    sc.difficulty = qs.difficulty;
    sc.seed = qs.seed;
    sc.intervalS = qs.intervalS;
    sc.waypoints = qs.waypoints;
    return sc;
}

} // namespace rtoc::plant
