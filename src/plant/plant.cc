#include "plant.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace rtoc::plant {

using numerics::DMatrix;

std::vector<double>
Plant::commandFromDelta(const float *du) const
{
    std::vector<double> trim = trimCommand();
    std::vector<double> lo = commandMin();
    std::vector<double> hi = commandMax();
    std::vector<double> cmd(static_cast<size_t>(nu()));
    for (int i = 0; i < nu(); ++i) {
        cmd[i] = std::clamp(trim[i] + static_cast<double>(du[i]),
                            lo[i], hi[i]);
    }
    return cmd;
}

void
Plant::inputBoundDeltas(std::vector<float> &flo,
                        std::vector<float> &fhi) const
{
    std::vector<double> trim = trimCommand();
    std::vector<double> lo = commandMin();
    std::vector<double> hi = commandMax();
    flo.resize(static_cast<size_t>(nu()));
    fhi.resize(static_cast<size_t>(nu()));
    for (int i = 0; i < nu(); ++i) {
        flo[i] = static_cast<float>(lo[i] - trim[i]);
        fhi[i] = static_cast<float>(hi[i] - trim[i]);
    }
}

std::vector<double>
Plant::trimState() const
{
    return std::vector<double>(static_cast<size_t>(nx()), 0.0);
}

LinearModel
Plant::linearize(double dt) const
{
    return fdLinearize(*this, dt);
}

LinearModel
Plant::linearizeAt(const double *x, const double *du, double dt) const
{
    return fdLinearizeAt(*this, x, du, dt);
}

void
discretizeInPlace(LinearModel &m, double dt)
{
    const int nx = m.ac.rows();
    const int nu = m.bc.cols();
    m.dt = dt;
    if (m.cc.empty()) {
        // Equilibrium linearization: the historical path, bit-exact.
        DMatrix adbd = numerics::zohDiscretize(m.ac, m.bc, dt);
        m.ad = DMatrix(nx, nx);
        m.bd = DMatrix(nx, nu);
        for (int i = 0; i < nx; ++i) {
            for (int j = 0; j < nx; ++j)
                m.ad(i, j) = adbd(i, j);
            for (int j = 0; j < nu; ++j)
                m.bd(i, j) = adbd(i, nx + j);
        }
        m.cd.clear();
        return;
    }
    // Affine residual: ZOH treats c as one extra constant input, so
    // discretizing (Ac, [Bc | cc]) yields [Ad | Bd | cd] in one pass.
    rtoc_assert(static_cast<int>(m.cc.size()) == nx);
    DMatrix bc_aug(nx, nu + 1);
    for (int i = 0; i < nx; ++i) {
        for (int j = 0; j < nu; ++j)
            bc_aug(i, j) = m.bc(i, j);
        bc_aug(i, nu) = m.cc[static_cast<size_t>(i)];
    }
    DMatrix adbd = numerics::zohDiscretize(m.ac, bc_aug, dt);
    m.ad = DMatrix(nx, nx);
    m.bd = DMatrix(nx, nu);
    m.cd.assign(static_cast<size_t>(nx), 0.0);
    for (int i = 0; i < nx; ++i) {
        for (int j = 0; j < nx; ++j)
            m.ad(i, j) = adbd(i, j);
        for (int j = 0; j < nu; ++j)
            m.bd(i, j) = adbd(i, nx + j);
        m.cd[static_cast<size_t>(i)] = adbd(i, nx + nu);
    }
}

LinearModel
fdLinearize(const Plant &plant, double dt)
{
    const int nx = plant.nx();
    const int nu = plant.nu();
    LinearModel m;
    m.dt = dt;
    m.ac = DMatrix(nx, nx);
    m.bc = DMatrix(nx, nu);

    std::vector<double> x0 = plant.trimState();
    std::vector<double> u0(static_cast<size_t>(nu), 0.0);
    std::vector<double> fp(static_cast<size_t>(nx));
    std::vector<double> fm(static_cast<size_t>(nx));

    const double h = 1e-6;
    for (int j = 0; j < nx; ++j) {
        std::vector<double> xp = x0, xm = x0;
        xp[j] += h;
        xm[j] -= h;
        plant.modelDeriv(xp.data(), u0.data(), fp.data());
        plant.modelDeriv(xm.data(), u0.data(), fm.data());
        for (int i = 0; i < nx; ++i)
            m.ac(i, j) = (fp[i] - fm[i]) / (2.0 * h);
    }
    for (int j = 0; j < nu; ++j) {
        std::vector<double> up = u0, um = u0;
        up[j] += h;
        um[j] -= h;
        plant.modelDeriv(x0.data(), up.data(), fp.data());
        plant.modelDeriv(x0.data(), um.data(), fm.data());
        for (int i = 0; i < nx; ++i)
            m.bc(i, j) = (fp[i] - fm[i]) / (2.0 * h);
    }

    discretizeInPlace(m, dt);
    return m;
}

LinearModel
fdLinearizeAt(const Plant &plant, const double *x, const double *du,
              double dt)
{
    const int nx = plant.nx();
    const int nu = plant.nu();
    LinearModel m;
    m.dt = dt;
    m.ac = DMatrix(nx, nx);
    m.bc = DMatrix(nx, nu);

    std::vector<double> x0(x, x + nx);
    std::vector<double> u0(du, du + nu);
    std::vector<double> fp(static_cast<size_t>(nx));
    std::vector<double> fm(static_cast<size_t>(nx));

    const double h = 1e-6;
    for (int j = 0; j < nx; ++j) {
        std::vector<double> xp = x0, xm = x0;
        xp[j] += h;
        xm[j] -= h;
        plant.modelDeriv(xp.data(), u0.data(), fp.data());
        plant.modelDeriv(xm.data(), u0.data(), fm.data());
        for (int i = 0; i < nx; ++i)
            m.ac(i, j) = (fp[i] - fm[i]) / (2.0 * h);
    }
    for (int j = 0; j < nu; ++j) {
        std::vector<double> up = u0, um = u0;
        up[j] += h;
        um[j] -= h;
        plant.modelDeriv(x0.data(), up.data(), fp.data());
        plant.modelDeriv(x0.data(), um.data(), fm.data());
        for (int i = 0; i < nx; ++i)
            m.bc(i, j) = (fp[i] - fm[i]) / (2.0 * h);
    }

    computeAffineResidual(m, plant, x, du);
    discretizeInPlace(m, dt);
    return m;
}

void
computeAffineResidual(LinearModel &m, const Plant &plant,
                      const double *x, const double *du)
{
    const int nx = plant.nx();
    const int nu = plant.nu();
    std::vector<double> f0(static_cast<size_t>(nx));
    plant.modelDeriv(x, du, f0.data());
    m.cc.assign(static_cast<size_t>(nx), 0.0);
    for (int i = 0; i < nx; ++i) {
        double c = f0[static_cast<size_t>(i)];
        for (int j = 0; j < nx; ++j)
            c -= m.ac(i, j) * x[j];
        for (int j = 0; j < nu; ++j)
            c -= m.bc(i, j) * du[j];
        m.cc[static_cast<size_t>(i)] = c;
    }
}

tinympc::Workspace
Plant::buildWorkspace(double dt, int horizon) const
{
    LinearModel model = linearize(dt);
    Weights w = mpcWeights();
    rtoc_assert(static_cast<int>(w.qDiag.size()) == nx());
    rtoc_assert(static_cast<int>(w.rDiag.size()) == nu());

    DMatrix q = DMatrix::diag(w.qDiag);
    DMatrix r = DMatrix::diag(w.rDiag);
    numerics::LqrCache cache =
        numerics::solveDare(model.ad, model.bd, q, r, w.rho);

    tinympc::Workspace ws =
        tinympc::Workspace::allocate(nx(), nu(), horizon);
    ws.settings.rho = static_cast<float>(w.rho);
    ws.loadCache(model.ad, model.bd, cache, w.qDiag);

    std::vector<float> flo, fhi;
    inputBoundDeltas(flo, fhi);
    ws.setInputBounds(flo, fhi);
    ws.setReferenceAll(reference(home()));
    return ws;
}

} // namespace rtoc::plant
