#include "rover.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace rtoc::plant {

RoverPlant::RoverPlant(RoverParams params) : params_(std::move(params))
{
    // Fixed slalom of pillars flanking the corridor, alternating
    // sides; part of the plant, not the scenario, so the crash
    // predicate is self-contained.
    for (int i = 0; i < params_.obstacleCount; ++i) {
        Obstacle ob;
        ob.x = 2.0 + params_.obstacleSpacingM * static_cast<double>(i);
        ob.y = (i % 2 == 0) ? params_.obstacleOffsetM
                            : -params_.obstacleOffsetM;
        ob.radius = params_.obstacleRadiusM;
        obstacles_.push_back(ob);
    }
    RoverPlant::reset();
}

std::string
RoverPlant::name() const
{
    return "rover-" + params_.name;
}

std::string
RoverPlant::cacheKey() const
{
    return csprintf("rover:%s:m%.17g:Iz%.17g:ht%.17g:cd%.17g:cw%.17g:F%.17g:v%.17g:"
                    "obs%dx%.17g@%.17g/r%.17g",
                    params_.name.c_str(), params_.massKg,
                    params_.inertiaZ, params_.halfTrackM,
                    params_.dragPerMps, params_.yawDamp,
                    params_.maxDriveN, params_.cruiseMps,
                    params_.obstacleCount, params_.obstacleSpacingM,
                    params_.obstacleOffsetM, params_.obstacleRadiusM);
}

std::unique_ptr<Plant>
RoverPlant::clone() const
{
    return std::make_unique<RoverPlant>(params_);
}

void
RoverPlant::reset()
{
    state_ = {0, 0, 0, params_.cruiseMps, 0};
    wrench_ = Wrench();
    time_s_ = 0.0;
    energy_j_ = 0.0;
}

void
RoverPlant::setPose(double x, double y, double theta)
{
    state_[0] = x;
    state_[1] = y;
    state_[2] = theta;
}

std::array<double, 5>
RoverPlant::deriv(const std::array<double, 5> &s, double ul, double ur,
                  const Wrench *w) const
{
    double theta = s[2], v = s[3], omega = s[4];
    std::array<double, 5> d = {
        v * std::cos(theta),
        v * std::sin(theta),
        omega,
        (ul + ur - params_.dragPerMps * v) / params_.massKg,
        ((ur - ul) * params_.halfTrackM - params_.yawDamp * omega) /
            params_.inertiaZ,
    };
    if (w != nullptr && !w->zero()) {
        // World force projected onto the drive axis (the wheels hold
        // the lateral direction) plus yaw torque about z.
        d[3] += (w->forceN[0] * std::cos(theta) +
                 w->forceN[1] * std::sin(theta)) /
                params_.massKg;
        d[4] += w->torqueNm[2] / params_.inertiaZ;
    }
    return d;
}

void
RoverPlant::step(const std::vector<double> &cmd, double dt)
{
    rtoc_assert(cmd.size() == 2);
    double fmax = params_.maxDriveN;
    double ul = std::clamp(cmd[0], -fmax, fmax);
    double ur = std::clamp(cmd[1], -fmax, fmax);

    state_ = rk4Step(state_, dt, [&](const std::array<double, 5> &x) {
        return deriv(x, ul, ur, &wrench_);
    });

    // Traction power per wheel plus electronics idle.
    double v = state_[3];
    energy_j_ += (std::fabs(ul * v) + std::fabs(ur * v) +
                  params_.idleW) * dt;
    time_s_ += dt;
}

bool
RoverPlant::crashed() const
{
    double x = state_[0], y = state_[1];
    if (std::fabs(y) > 6.0 || x < -3.0 || x > 80.0)
        return true;
    if (std::fabs(state_[3]) > 8.0) // runaway speed
        return true;
    for (const Obstacle &ob : obstacles_) {
        double dx = x - ob.x;
        double dy = y - ob.y;
        if (dx * dx + dy * dy < ob.radius * ob.radius)
            return true;
    }
    return false;
}

std::vector<double>
RoverPlant::trimCommand() const
{
    // Holds cruise speed: drag force split across the two wheels.
    double u0 = params_.dragPerMps * params_.cruiseMps / 2.0;
    return {u0, u0};
}

std::vector<double>
RoverPlant::commandMin() const
{
    return {-params_.maxDriveN, -params_.maxDriveN};
}

std::vector<double>
RoverPlant::commandMax() const
{
    return {params_.maxDriveN, params_.maxDriveN};
}

std::vector<double>
RoverPlant::trimState() const
{
    return {0, 0, 0, params_.cruiseMps, 0};
}

void
RoverPlant::modelDeriv(const double *x, const double *du,
                       double *dxdt) const
{
    double u0 = params_.dragPerMps * params_.cruiseMps / 2.0;
    auto d = deriv({x[0], x[1], x[2], x[3], x[4]}, u0 + du[0],
                   u0 + du[1]);
    for (int i = 0; i < 5; ++i)
        dxdt[i] = d[i];
}

LinearModel
RoverPlant::linearize(double dt) const
{
    // Around (theta=0, v=v0, omega=0): dy/dt = v0 * dtheta couples the
    // lateral channel to heading.
    LinearModel m;
    m.ac = numerics::DMatrix(5, 5);
    m.bc = numerics::DMatrix(5, 2);
    double v0 = params_.cruiseMps;
    m.ac(0, 3) = 1.0;                                // dx/dt = dv
    m.ac(1, 2) = v0;                                 // dy/dt = v0 dth
    m.ac(2, 4) = 1.0;                                // dth/dt = dw
    m.ac(3, 3) = -params_.dragPerMps / params_.massKg;
    m.ac(4, 4) = -params_.yawDamp / params_.inertiaZ;
    m.bc(3, 0) = 1.0 / params_.massKg;
    m.bc(3, 1) = 1.0 / params_.massKg;
    m.bc(4, 0) = -params_.halfTrackM / params_.inertiaZ;
    m.bc(4, 1) = params_.halfTrackM / params_.inertiaZ;

    discretizeInPlace(m, dt);
    return m;
}

LinearModel
RoverPlant::linearizeAt(const double *x, const double *du,
                        double dt) const
{
    // Analytic Jacobian at an arbitrary (theta, v, omega): the
    // kinematic rows rotate with heading — exactly the terms the
    // fixed cruise-trim model gets wrong on aggressive weaves.
    //
    // The heading->lateral coupling dy/dt ~ v dtheta vanishes as the
    // rover slows, and a diff-drive linearized at v = 0 loses lateral
    // controllability entirely (the nonholonomic degeneracy): the
    // Riccati gains for y collapse and station-keeping falls apart.
    // Clamp the *coupling* speed to half cruise — the affine residual
    // is computed against the clamped Jacobian, so the model stays
    // exact at the expansion point; only the local slope is
    // regularized toward a controllable pair.
    double theta = x[2], v = x[3];
    double v_floor = 0.5 * params_.cruiseMps;
    double v_eff = std::fabs(v) < v_floor
                       ? (v < 0.0 ? -v_floor : v_floor)
                       : v;
    double c = std::cos(theta), sn = std::sin(theta);

    LinearModel m;
    m.ac = numerics::DMatrix(5, 5);
    m.bc = numerics::DMatrix(5, 2);
    m.ac(0, 2) = -v_eff * sn;                        // dx/dt = v cos th
    m.ac(0, 3) = c;
    m.ac(1, 2) = v_eff * c;                          // dy/dt = v sin th
    m.ac(1, 3) = sn;
    m.ac(2, 4) = 1.0;
    m.ac(3, 3) = -params_.dragPerMps / params_.massKg;
    m.ac(4, 4) = -params_.yawDamp / params_.inertiaZ;
    m.bc(3, 0) = 1.0 / params_.massKg;
    m.bc(3, 1) = 1.0 / params_.massKg;
    m.bc(4, 0) = -params_.halfTrackM / params_.inertiaZ;
    m.bc(4, 1) = params_.halfTrackM / params_.inertiaZ;

    // Affine residual keeps the model exact at the expansion point
    // (absorbing the v_eff slope regularization above).
    computeAffineResidual(m, *this, x, du);
    discretizeInPlace(m, dt);
    return m;
}

Weights
RoverPlant::mpcWeights() const
{
    return {{30, 30, 8, 4, 2}, {0.08, 0.08}, 5.0};
}

void
RoverPlant::packState(float *x) const
{
    for (int i = 0; i < 5; ++i)
        x[i] = static_cast<float>(state_[i]);
}

std::vector<float>
RoverPlant::reference(const Vec3 &wp) const
{
    // Settle at the waypoint: heading straight, stopped.
    std::vector<float> xr(5, 0.0f);
    xr[0] = static_cast<float>(wp[0]);
    xr[1] = static_cast<float>(wp[1]);
    return xr;
}

double
RoverPlant::distanceTo(const Vec3 &wp) const
{
    double dx = state_[0] - wp[0];
    double dy = state_[1] - wp[1];
    return std::sqrt(dx * dx + dy * dy);
}

DifficultySpec
RoverPlant::difficultySpec(Difficulty d) const
{
    switch (d) {
      case Difficulty::Easy:
        return {"easy", 5, 1.6, 1.4};
      case Difficulty::Medium:
        return {"medium", 7, 1.3, 1.8};
      case Difficulty::Hard:
        return {"hard", 10, 1.0, 2.2};
    }
    rtoc_panic("bad difficulty");
}

Scenario
RoverPlant::makeScenario(Difficulty d, int index) const
{
    DifficultySpec spec = difficultySpec(d);
    Scenario sc;
    sc.difficulty = d;
    sc.seed = index;
    sc.intervalS = spec.timeBetweenS;
    sc.graceS = 2.0;

    Rng rng(0xD01F7ull * (static_cast<uint64_t>(d) + 1) +
            static_cast<uint64_t>(index) * 7907ull);

    // Corridor waypoints advancing +x with bounded lateral weave, so
    // the small-heading linearization stays valid and the path threads
    // between the alternating pillars at |y| = obstacleOffset.
    double max_y = params_.obstacleOffsetM - params_.obstacleRadiusM -
                   reachRadius();
    Vec3 cur = home();
    for (int i = 0; i < spec.waypointCount; ++i) {
        double dist = spec.avgDistanceM * rng.uniform(0.75, 1.25);
        double y = rng.uniform(-max_y, max_y);
        cur = {cur[0] + dist, std::clamp(y, -max_y, max_y), 0.0};
        sc.waypoints.push_back(cur);
    }
    return sc;
}

} // namespace rtoc::plant
