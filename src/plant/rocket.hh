/**
 * @file
 * 3-DoF rocket soft-landing plant: a thrust-vectoring point-mass
 * lander descending through revealed waypoints to a hover above the
 * pad. The simulation integrates translational dynamics with
 * quadratic aerodynamic drag and a first-order engine lag under RK4;
 * the MPC model is the double integrator with gravity-compensating
 * trim thrust, linearized analytically. Actuation energy follows the
 * jet-power model P = |T| * ve_eff (thrust times effective velocity
 * scale), the rocket analogue of the quadrotor's momentum-theory
 * Equation 4.
 */

#ifndef RTOC_PLANT_ROCKET_HH
#define RTOC_PLANT_ROCKET_HH

#include "plant/plant.hh"

namespace rtoc::plant {

/** Physical description of the lander. */
struct RocketParams
{
    std::string name = "lander";
    double massKg = 1.5;        ///< wet mass at reset
    double maxThrustN = 30.0;   ///< main engine (vertical) limit
    double maxLateralN = 8.0;   ///< thrust-vectoring lateral authority
    double dragCoeff = 0.08;    ///< quadratic drag, N per (m/s)^2
    double engineTauS = 0.10;   ///< first-order thrust-response lag
    double jetVelocity = 40.0;  ///< effective exhaust-power scale (m/s)
    double startAltitudeM = 12.0;

    // Fidelity knobs, both disabled by default so the default lander
    // keeps the historical (massless-propellant, box-limited) flight
    // envelope bit-identically.
    /** Propellant budget; 0 disables mass depletion. Burn rate is
     *  proportional to thrust impulse: mdot = |T| / exhaustVelocity,
     *  and an exhausted tank starves the engine. */
    double propellantKg = 0.0;
    /** Effective exhaust velocity for the burn rate (m/s). */
    double exhaustVelocityMps = 900.0;
    /** Thrust-vector tilt limit: lateral thrust magnitude is capped
     *  at maxTiltRatio x (vertical thrust), i.e. tan(max gimbal
     *  angle). 0 disables (legacy independent box limits). */
    double maxTiltRatio = 0.0;

    /** Hover (trim) thrust at wet mass: weight. */
    double hoverThrustN() const;

    /** Thrust-to-weight sanity metric. */
    double thrustToWeight() const;

    /** A depleting, gimbal-limited variant of the default lander. */
    static RocketParams fueled();
};

/** Rocket soft-landing plant (nx=6, nu=3). */
class RocketPlant : public Plant
{
  public:
    explicit RocketPlant(RocketParams params = RocketParams());

    std::string name() const override;
    std::string cacheKey() const override;
    int nx() const override { return 6; }
    int nu() const override { return 3; }
    std::unique_ptr<Plant> clone() const override;

    void reset() override;
    void step(const std::vector<double> &cmd, double dt) override;
    double timeS() const override { return time_s_; }
    bool crashed() const override;
    double actuationEnergyJ() const override { return energy_j_; }

    bool supportsWrench() const override { return true; }
    void applyWrench(const Wrench &w) override { wrench_ = w; }

    std::vector<double> trimCommand() const override;
    std::vector<double> commandMin() const override;
    std::vector<double> commandMax() const override;

    void modelDeriv(const double *x, const double *du,
                    double *dxdt) const override;
    LinearModel linearize(double dt) const override;
    LinearModel linearizeAt(const double *x, const double *du,
                            double dt) const override;
    Weights mpcWeights() const override;
    void packState(float *x) const override;
    std::vector<float> reference(const Vec3 &wp) const override;

    Vec3 home() const override;
    double distanceTo(const Vec3 &wp) const override;
    double reachRadius() const override { return 0.35; }
    double settleS() const override { return 0.25; }

    DifficultySpec difficultySpec(Difficulty d) const override;
    Scenario makeScenario(Difficulty d, int index) const override;

    const RocketParams &params() const { return params_; }
    const Vec3 &position() const { return pos_; }
    const Vec3 &velocity() const { return vel_; }
    /** Current (depleting) vehicle mass. */
    double massKg() const { return mass_; }
    /** Propellant remaining (== budget while depletion is off). */
    double propellantKg() const { return propellant_; }

  private:
    /** Continuous derivative of [pos, vel] with thrust held; @p w
     *  (when non-null and nonzero) adds an external world force. */
    std::array<double, 6> deriv(const std::array<double, 6> &s,
                                const Vec3 &thrust,
                                const Wrench *w = nullptr) const;

    RocketParams params_;
    Vec3 pos_{0, 0, 0};
    Vec3 vel_{0, 0, 0};
    Vec3 thrust_{0, 0, 0}; ///< actual engine output (lagged)
    Wrench wrench_;        ///< held across step() calls
    double mass_ = 0.0;    ///< current mass; set from params by reset()
    double propellant_ = 0.0; ///< propellant remaining; set by reset()
    double time_s_ = 0.0;
    double energy_j_ = 0.0;
};

} // namespace rtoc::plant

#endif // RTOC_PLANT_ROCKET_HH
