/**
 * @file
 * 3-DoF rocket soft-landing plant: a thrust-vectoring point-mass
 * lander descending through revealed waypoints to a hover above the
 * pad. The simulation integrates translational dynamics with
 * quadratic aerodynamic drag and a first-order engine lag under RK4;
 * the MPC model is the double integrator with gravity-compensating
 * trim thrust, linearized analytically. Actuation energy follows the
 * jet-power model P = |T| * ve_eff (thrust times effective velocity
 * scale), the rocket analogue of the quadrotor's momentum-theory
 * Equation 4.
 */

#ifndef RTOC_PLANT_ROCKET_HH
#define RTOC_PLANT_ROCKET_HH

#include "plant/plant.hh"

namespace rtoc::plant {

/** Physical description of the lander. */
struct RocketParams
{
    std::string name = "lander";
    double massKg = 1.5;
    double maxThrustN = 30.0;   ///< main engine (vertical) limit
    double maxLateralN = 8.0;   ///< thrust-vectoring lateral authority
    double dragCoeff = 0.08;    ///< quadratic drag, N per (m/s)^2
    double engineTauS = 0.10;   ///< first-order thrust-response lag
    double jetVelocity = 40.0;  ///< effective exhaust-power scale (m/s)
    double startAltitudeM = 12.0;

    /** Hover (trim) thrust: weight. */
    double hoverThrustN() const;

    /** Thrust-to-weight sanity metric. */
    double thrustToWeight() const;
};

/** Rocket soft-landing plant (nx=6, nu=3). */
class RocketPlant : public Plant
{
  public:
    explicit RocketPlant(RocketParams params = RocketParams());

    std::string name() const override;
    std::string cacheKey() const override;
    int nx() const override { return 6; }
    int nu() const override { return 3; }
    std::unique_ptr<Plant> clone() const override;

    void reset() override;
    void step(const std::vector<double> &cmd, double dt) override;
    double timeS() const override { return time_s_; }
    bool crashed() const override;
    double actuationEnergyJ() const override { return energy_j_; }

    std::vector<double> trimCommand() const override;
    std::vector<double> commandMin() const override;
    std::vector<double> commandMax() const override;

    void modelDeriv(const double *x, const double *du,
                    double *dxdt) const override;
    LinearModel linearize(double dt) const override;
    Weights mpcWeights() const override;
    void packState(float *x) const override;
    std::vector<float> reference(const Vec3 &wp) const override;

    Vec3 home() const override;
    double distanceTo(const Vec3 &wp) const override;
    double reachRadius() const override { return 0.35; }
    double settleS() const override { return 0.25; }

    DifficultySpec difficultySpec(Difficulty d) const override;
    Scenario makeScenario(Difficulty d, int index) const override;

    const RocketParams &params() const { return params_; }
    const Vec3 &position() const { return pos_; }
    const Vec3 &velocity() const { return vel_; }

  private:
    /** Continuous derivative of [pos, vel] with thrust held. */
    std::array<double, 6> deriv(const std::array<double, 6> &s,
                                const Vec3 &thrust) const;

    RocketParams params_;
    Vec3 pos_{0, 0, 0};
    Vec3 vel_{0, 0, 0};
    Vec3 thrust_{0, 0, 0}; ///< actual engine output (lagged)
    double time_s_ = 0.0;
    double energy_j_ = 0.0;
};

} // namespace rtoc::plant

#endif // RTOC_PLANT_ROCKET_HH
