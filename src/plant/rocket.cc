#include "rocket.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace rtoc::plant {

namespace {
constexpr double kG = 9.81;
} // namespace

double
RocketParams::hoverThrustN() const
{
    return massKg * kG;
}

double
RocketParams::thrustToWeight() const
{
    return maxThrustN / hoverThrustN();
}

RocketParams
RocketParams::fueled()
{
    RocketParams p;
    p.name = "fueled";
    // ~27% of the wet mass is propellant; a typical descent burns a
    // third to a half of it, so trim thrust visibly drifts and a
    // stale wet-mass model overthrusts late in the mission.
    p.propellantKg = 0.4;
    p.exhaustVelocityMps = 900.0;
    p.maxTiltRatio = 0.35; // ~19 degree gimbal
    return p;
}

RocketPlant::RocketPlant(RocketParams params) : params_(std::move(params))
{
    if (params_.thrustToWeight() < 1.2) {
        rtoc_fatal("rocket '%s' cannot hover: thrust/weight = %.2f",
                   params_.name.c_str(), params_.thrustToWeight());
    }
    RocketPlant::reset();
}

std::string
RocketPlant::name() const
{
    return "rocket-" + params_.name;
}

std::string
RocketPlant::cacheKey() const
{
    return csprintf("rocket:%s:m%.17g:T%.17g:lat%.17g:cd%.17g:tau%.17g:ve%.17g:z%.17g:"
                    "prop%.17g:vex%.17g:tilt%.17g",
                    params_.name.c_str(), params_.massKg,
                    params_.maxThrustN, params_.maxLateralN,
                    params_.dragCoeff, params_.engineTauS,
                    params_.jetVelocity, params_.startAltitudeM,
                    params_.propellantKg, params_.exhaustVelocityMps,
                    params_.maxTiltRatio);
}

std::unique_ptr<Plant>
RocketPlant::clone() const
{
    return std::make_unique<RocketPlant>(params_);
}

void
RocketPlant::reset()
{
    pos_ = {0, 0, params_.startAltitudeM};
    vel_ = {0, 0, 0};
    thrust_ = {0, 0, params_.hoverThrustN()};
    wrench_ = Wrench();
    mass_ = params_.massKg;
    propellant_ = params_.propellantKg;
    time_s_ = 0.0;
    energy_j_ = 0.0;
}

std::array<double, 6>
RocketPlant::deriv(const std::array<double, 6> &s, const Vec3 &thrust,
                   const Wrench *w) const
{
    double m = mass_;
    double cd = params_.dragCoeff;
    std::array<double, 6> d;
    for (int i = 0; i < 3; ++i)
        d[i] = s[3 + i];
    for (int i = 0; i < 3; ++i) {
        double v = s[3 + i];
        d[3 + i] = (thrust[i] - cd * std::fabs(v) * v) / m;
    }
    d[5] -= kG;
    if (w != nullptr && !w->zero()) {
        for (int i = 0; i < 3; ++i)
            d[3 + i] += w->forceN[i] / m; // point mass: force only
    }
    return d;
}

void
RocketPlant::step(const std::vector<double> &cmd, double dt)
{
    rtoc_assert(cmd.size() == 3);
    // Engine lag toward the clamped command.
    double lat = params_.maxLateralN;
    double alpha = 1.0 - std::exp(-dt / params_.engineTauS);
    Vec3 target = {std::clamp(cmd[0], -lat, lat),
                   std::clamp(cmd[1], -lat, lat),
                   std::clamp(cmd[2], 0.0, params_.maxThrustN)};
    if (params_.maxTiltRatio > 0.0) {
        // Thrust-vector gimbal: lateral thrust rides on the vertical
        // jet, so its magnitude is capped at tan(max tilt) x Tz.
        double allowed = params_.maxTiltRatio * target[2];
        double lat_mag = std::sqrt(target[0] * target[0] +
                                   target[1] * target[1]);
        if (lat_mag > allowed) {
            double scale = lat_mag > 0.0 ? allowed / lat_mag : 0.0;
            target[0] *= scale;
            target[1] *= scale;
        }
    }
    if (params_.propellantKg > 0.0 && propellant_ <= 0.0)
        target = {0.0, 0.0, 0.0}; // dry tank starves the engine
    for (int i = 0; i < 3; ++i)
        thrust_[i] += alpha * (target[i] - thrust_[i]);

    std::array<double, 6> s = {pos_[0], pos_[1], pos_[2],
                               vel_[0], vel_[1], vel_[2]};
    s = rk4Step(s, dt, [&](const std::array<double, 6> &x) {
        return deriv(x, thrust_, &wrench_);
    });

    pos_ = {s[0], s[1], s[2]};
    vel_ = {s[3], s[4], s[5]};

    double tmag = std::sqrt(thrust_[0] * thrust_[0] +
                            thrust_[1] * thrust_[1] +
                            thrust_[2] * thrust_[2]);
    if (params_.propellantKg > 0.0) {
        // Burn proportional to thrust impulse: mdot = |T| / ve.
        double burn = tmag / params_.exhaustVelocityMps * dt;
        propellant_ = std::max(0.0, propellant_ - burn);
        mass_ = params_.massKg -
                (params_.propellantKg - propellant_);
    }
    energy_j_ += tmag * params_.jetVelocity * dt;
    time_s_ += dt;
}

bool
RocketPlant::crashed() const
{
    if (pos_[2] < 0.05) // ground strike (missions hover at >= 0.6 m)
        return true;
    if (std::fabs(pos_[0]) > 30.0 || std::fabs(pos_[1]) > 30.0 ||
        pos_[2] > 60.0)
        return true;
    double v2 = vel_[0] * vel_[0] + vel_[1] * vel_[1] +
                vel_[2] * vel_[2];
    return v2 > 30.0 * 30.0; // runaway descent/ascent
}

std::vector<double>
RocketPlant::trimCommand() const
{
    // Hover thrust at the *current* mass: a depleting lander's trim
    // drifts down as propellant burns (equal to the wet-mass hover
    // while depletion is off).
    return {0.0, 0.0, mass_ * kG};
}

std::vector<double>
RocketPlant::commandMin() const
{
    double lat = params_.maxLateralN;
    if (params_.maxTiltRatio > 0.0)
        lat = std::min(lat, params_.maxTiltRatio * mass_ * kG);
    return {-lat, -lat, 0.0};
}

std::vector<double>
RocketPlant::commandMax() const
{
    double lat = params_.maxLateralN;
    if (params_.maxTiltRatio > 0.0)
        lat = std::min(lat, params_.maxTiltRatio * mass_ * kG);
    return {lat, lat, params_.maxThrustN};
}

void
RocketPlant::modelDeriv(const double *x, const double *du,
                        double *dxdt) const
{
    // MPC model state [pos, vel]; thrust = trim + du, quadratic drag.
    // Mass and trim track the depleting vehicle.
    double m = mass_;
    double cd = params_.dragCoeff;
    for (int i = 0; i < 3; ++i)
        dxdt[i] = x[3 + i];
    for (int i = 0; i < 3; ++i) {
        double v = x[3 + i];
        double trim = i == 2 ? mass_ * kG : 0.0;
        dxdt[3 + i] = (trim + du[i] - cd * std::fabs(v) * v) / m;
    }
    dxdt[5] -= kG;
}

LinearModel
RocketPlant::linearize(double dt) const
{
    // Double integrator: drag has zero slope at the v=0 trim.
    LinearModel m;
    m.ac = numerics::DMatrix(6, 6);
    m.bc = numerics::DMatrix(6, 3);
    for (int i = 0; i < 3; ++i) {
        m.ac(i, 3 + i) = 1.0;
        m.bc(3 + i, i) = 1.0 / mass_;
    }
    discretizeInPlace(m, dt);
    return m;
}

LinearModel
RocketPlant::linearizeAt(const double *x, const double *du,
                         double dt) const
{
    // Analytic off-trim Jacobian: quadratic drag has slope
    // -2 cd |v| / m away from rest, and the input gain tracks the
    // current (depleted) mass.
    LinearModel m;
    m.ac = numerics::DMatrix(6, 6);
    m.bc = numerics::DMatrix(6, 3);
    for (int i = 0; i < 3; ++i) {
        double v = x[3 + i];
        m.ac(i, 3 + i) = 1.0;
        m.ac(3 + i, 3 + i) =
            -2.0 * params_.dragCoeff * std::fabs(v) / mass_;
        m.bc(3 + i, i) = 1.0 / mass_;
    }

    computeAffineResidual(m, *this, x, du);
    discretizeInPlace(m, dt);
    return m;
}

Weights
RocketPlant::mpcWeights() const
{
    return {{8, 8, 12, 4, 4, 5}, {0.05, 0.05, 0.02}, 5.0};
}

void
RocketPlant::packState(float *x) const
{
    for (int i = 0; i < 3; ++i) {
        x[i] = static_cast<float>(pos_[i]);
        x[3 + i] = static_cast<float>(vel_[i]);
    }
}

std::vector<float>
RocketPlant::reference(const Vec3 &wp) const
{
    std::vector<float> xr(6, 0.0f);
    for (int i = 0; i < 3; ++i)
        xr[i] = static_cast<float>(wp[i]);
    return xr;
}

Vec3
RocketPlant::home() const
{
    return {0, 0, params_.startAltitudeM};
}

double
RocketPlant::distanceTo(const Vec3 &wp) const
{
    double dx = pos_[0] - wp[0];
    double dy = pos_[1] - wp[1];
    double dz = pos_[2] - wp[2];
    return std::sqrt(dx * dx + dy * dy + dz * dz);
}

DifficultySpec
RocketPlant::difficultySpec(Difficulty d) const
{
    switch (d) {
      case Difficulty::Easy:
        return {"easy", 4, 1.2, 2.0};
      case Difficulty::Medium:
        return {"medium", 6, 1.0, 3.0};
      case Difficulty::Hard:
        return {"hard", 8, 0.8, 4.0};
    }
    rtoc_panic("bad difficulty");
}

Scenario
RocketPlant::makeScenario(Difficulty d, int index) const
{
    DifficultySpec spec = difficultySpec(d);
    Scenario sc;
    sc.difficulty = d;
    sc.seed = index;
    sc.intervalS = spec.timeBetweenS;
    sc.graceS = 2.5;

    Rng rng(0x50C4E7ull * (static_cast<uint64_t>(d) + 1) +
            static_cast<uint64_t>(index) * 6151ull);

    // Descent profile: each hop drops a deterministic share of the
    // remaining altitude toward a hover 0.8 m above the pad, with a
    // randomized lateral excursion that shrinks as altitude does.
    Vec3 cur = home();
    const double final_z = 0.8;
    for (int i = 0; i < spec.waypointCount; ++i) {
        int remaining = spec.waypointCount - i;
        double dz = (cur[2] - final_z) / static_cast<double>(remaining);
        double lateral =
            spec.avgDistanceM * rng.uniform(0.3, 0.8) *
            std::min(1.0, cur[2] / params_.startAltitudeM + 0.25);
        double az = rng.uniform(0.0, 2.0 * M_PI);
        Vec3 next = {
            std::clamp(cur[0] + lateral * std::cos(az), -8.0, 8.0),
            std::clamp(cur[1] + lateral * std::sin(az), -8.0, 8.0),
            std::max(final_z, cur[2] - dz),
        };
        if (i + 1 == spec.waypointCount)
            next = {0.0, 0.0, final_z}; // the pad hover point
        cur = next;
        sc.waypoints.push_back(cur);
    }
    return sc;
}

} // namespace rtoc::plant
