/**
 * @file
 * The quadrotor as a registered Plant: a thin adapter over QuadSim,
 * quad::linearizeHover and quad::makeScenario. Every method delegates
 * to the historical quad:: code paths so episodes flown through the
 * Plant interface are bit-identical to the pre-abstraction HIL stack
 * (pinned by the fig15–18 byte-identity requirement).
 */

#ifndef RTOC_PLANT_QUAD_PLANT_HH
#define RTOC_PLANT_QUAD_PLANT_HH

#include "plant/plant.hh"
#include "quad/dynamics.hh"
#include "quad/scenario.hh"

namespace rtoc::plant {

/** Quadrotor waypoint-tracking plant (nx=12, nu=4). */
class QuadrotorPlant : public Plant
{
  public:
    explicit QuadrotorPlant(
        quad::DroneParams params = quad::DroneParams::crazyflie());

    std::string name() const override;
    std::string cacheKey() const override;
    int nx() const override { return 12; }
    int nu() const override { return 4; }
    std::unique_ptr<Plant> clone() const override;

    void reset() override;
    void step(const std::vector<double> &cmd, double dt) override;
    double timeS() const override { return sim_.timeS(); }
    bool crashed() const override { return sim_.crashed(); }
    double actuationEnergyJ() const override
    {
        return sim_.rotorEnergyJ();
    }

    bool supportsWrench() const override { return true; }
    void applyWrench(const Wrench &w) override;

    std::vector<double> trimCommand() const override;
    std::vector<double> commandMin() const override;
    std::vector<double> commandMax() const override;

    void modelDeriv(const double *x, const double *du,
                    double *dxdt) const override;
    LinearModel linearize(double dt) const override;
    LinearModel linearizeAt(const double *x, const double *du,
                            double dt) const override;
    Weights mpcWeights() const override;
    tinympc::Workspace buildWorkspace(double dt,
                                      int horizon) const override;
    void packState(float *x) const override;
    std::vector<float> reference(const Vec3 &wp) const override;

    Vec3 home() const override { return {0, 0, 1.0}; }
    double distanceTo(const Vec3 &wp) const override;

    DifficultySpec difficultySpec(Difficulty d) const override;
    Scenario makeScenario(Difficulty d, int index) const override;

    const quad::DroneParams &params() const { return params_; }
    quad::QuadSim &sim() { return sim_; }

  private:
    quad::DroneParams params_;
    quad::QuadSim sim_;
    quad::ExternalWrench wrench_; ///< held across step() calls
};

} // namespace rtoc::plant

#endif // RTOC_PLANT_QUAD_PLANT_HH
