/**
 * @file
 * Differential-drive rover plant: a corridor-following ground vehicle
 * weaving waypoints between fixed obstacle pillars. The simulation
 * integrates the nonlinear unicycle-with-mass dynamics (heading, body
 * speed, yaw rate, per-wheel drive forces) under RK4; the MPC model
 * linearizes around straight-line cruise at v0, which gives the
 * lateral channel its authority (dy/dt = v0 * dtheta) — the standard
 * small-heading trick for differential-drive tracking.
 *
 * The obstacle field is part of the plant configuration (a fixed
 * slalom of pillars along the corridor), so the crash predicate needs
 * no scenario context; waypoint generation routes between the pillars
 * and sloppy low-rate control clips them.
 */

#ifndef RTOC_PLANT_ROVER_HH
#define RTOC_PLANT_ROVER_HH

#include "plant/plant.hh"

namespace rtoc::plant {

/** Circular obstacle pillar on the ground plane. */
struct Obstacle
{
    double x = 0.0;
    double y = 0.0;
    double radius = 0.3;
};

/** Physical description of the rover. */
struct RoverParams
{
    std::string name = "rover";
    double massKg = 8.0;
    double inertiaZ = 0.3;       ///< yaw inertia (kg m^2)
    double halfTrackM = 0.2;     ///< half wheel-to-wheel distance
    double dragPerMps = 6.0;     ///< linear longitudinal drag (N/(m/s))
    double yawDamp = 0.8;        ///< yaw damping (N m / (rad/s))
    double maxDriveN = 20.0;     ///< per-wheel drive force limit
    double cruiseMps = 1.0;      ///< linearization trim speed v0
    double idleW = 3.0;          ///< electronics idle power
    double obstacleSpacingM = 3.0;
    double obstacleOffsetM = 0.95;
    double obstacleRadiusM = 0.30;
    int obstacleCount = 14;
};

/** Differential-drive rover plant (nx=5, nu=2). */
class RoverPlant : public Plant
{
  public:
    explicit RoverPlant(RoverParams params = RoverParams());

    std::string name() const override;
    std::string cacheKey() const override;
    int nx() const override { return 5; }
    int nu() const override { return 2; }
    std::unique_ptr<Plant> clone() const override;

    void reset() override;
    void step(const std::vector<double> &cmd, double dt) override;
    double timeS() const override { return time_s_; }
    bool crashed() const override;
    double actuationEnergyJ() const override { return energy_j_; }

    std::vector<double> trimCommand() const override;
    std::vector<double> commandMin() const override;
    std::vector<double> commandMax() const override;

    bool supportsWrench() const override { return true; }
    void applyWrench(const Wrench &w) override { wrench_ = w; }

    void modelDeriv(const double *x, const double *du,
                    double *dxdt) const override;
    LinearModel linearize(double dt) const override;
    LinearModel linearizeAt(const double *x, const double *du,
                            double dt) const override;
    Weights mpcWeights() const override;
    std::vector<double> trimState() const override;
    void packState(float *x) const override;
    std::vector<float> reference(const Vec3 &wp) const override;

    Vec3 home() const override { return {0, 0, 0}; }
    double distanceTo(const Vec3 &wp) const override;
    double reachRadius() const override { return 0.30; }
    double settleS() const override { return 0.25; }

    DifficultySpec difficultySpec(Difficulty d) const override;
    Scenario makeScenario(Difficulty d, int index) const override;

    const RoverParams &params() const { return params_; }
    const std::vector<Obstacle> &obstacles() const { return obstacles_; }

    /** Teleport helper for predicate tests. */
    void setPose(double x, double y, double theta);

  private:
    /** Continuous derivative of [x, y, theta, v, omega]; @p w (when
     *  non-null and nonzero) folds an external wrench in — world
     *  force projected on the body axis plus yaw torque. */
    std::array<double, 5> deriv(const std::array<double, 5> &s,
                                double ul, double ur,
                                const Wrench *w = nullptr) const;

    RoverParams params_;
    std::vector<Obstacle> obstacles_;
    std::array<double, 5> state_{}; ///< x, y, theta, v, omega
    Wrench wrench_;                 ///< held across step() calls
    double time_s_ = 0.0;
    double energy_j_ = 0.0;
};

} // namespace rtoc::plant

#endif // RTOC_PLANT_ROVER_HH
