#include "scenario.hh"

#include "common/logging.hh"

namespace rtoc::plant {

std::string
RelinearizePolicy::cacheKey() const
{
    return csprintf("relinK%d|relinTh%.17g", everyK,
                    stateDeltaThreshold);
}

std::string
RelinearizePolicy::label() const
{
    if (fixedTrim())
        return "trim";
    std::string s = everyK > 0 ? csprintf("K%d", everyK) : "K-";
    if (stateDeltaThreshold > 0.0)
        s += csprintf("/d%g", stateDeltaThreshold);
    return s;
}

const char *
difficultyName(Difficulty d)
{
    switch (d) {
      case Difficulty::Easy:
        return "easy";
      case Difficulty::Medium:
        return "medium";
      case Difficulty::Hard:
        return "hard";
    }
    rtoc_panic("bad difficulty");
}

} // namespace rtoc::plant
