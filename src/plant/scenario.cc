#include "scenario.hh"

#include "common/logging.hh"

namespace rtoc::plant {

const char *
difficultyName(Difficulty d)
{
    switch (d) {
      case Difficulty::Easy:
        return "easy";
      case Difficulty::Medium:
        return "medium";
      case Difficulty::Hard:
        return "hard";
    }
    rtoc_panic("bad difficulty");
}

} // namespace rtoc::plant
