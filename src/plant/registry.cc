#include "registry.hh"

#include "common/logging.hh"
#include "plant/cartpole.hh"
#include "plant/quad_plant.hh"
#include "plant/rocket.hh"
#include "plant/rover.hh"

namespace rtoc::plant {

Scenario
ScenarioSpec::makeScenario(int index) const
{
    Scenario sc = prototype->makeScenario(difficulty, index);
    sc.disturbance = disturbance;
    return sc;
}

namespace {

std::string
specId(const Plant &proto, Difficulty d,
       const DisturbanceProfile &profile,
       const RelinearizePolicy &relin = {})
{
    std::string id = proto.name() + "/" + difficultyName(d);
    if (profile.cmdNoiseSigma > 0.0)
        id += std::string("+") + profile.name;
    if (!relin.fixedTrim())
        id += "+" + relin.label();
    return id;
}

} // namespace

ScenarioRegistry &
ScenarioRegistry::global()
{
    static ScenarioRegistry *reg = [] {
        auto *r = new ScenarioRegistry();
        r->registerPlant(std::make_shared<QuadrotorPlant>());
        r->registerPlant(std::make_shared<RocketPlant>());
        r->registerPlant(std::make_shared<RoverPlant>());
        r->registerPlant(std::make_shared<CartPolePlant>());
        return r;
    }();
    return *reg;
}

void
ScenarioRegistry::registerPlant(std::shared_ptr<const Plant> proto)
{
    rtoc_assert(proto != nullptr);
    const int episodes = proto->defaultEpisodes();
    for (Difficulty d : kAllDifficulties) {
        ScenarioSpec spec;
        spec.plantName = proto->name();
        spec.difficulty = d;
        spec.disturbance = DisturbanceProfile::clean();
        spec.prototype = proto;
        spec.id = specId(*proto, d, spec.disturbance);
        spec.episodes = episodes;
        addSpec(std::move(spec));
    }
    // One disturbed family per plant: gusty actuation at medium.
    ScenarioSpec gusty;
    gusty.plantName = proto->name();
    gusty.difficulty = Difficulty::Medium;
    gusty.disturbance = DisturbanceProfile::gusty();
    gusty.prototype = std::move(proto);
    gusty.id = specId(*gusty.prototype, gusty.difficulty,
                      gusty.disturbance);
    gusty.episodes = episodes;
    addSpec(std::move(gusty));
}

void
ScenarioRegistry::addSpec(ScenarioSpec spec)
{
    rtoc_assert(spec.prototype != nullptr);
    if (spec.id.empty())
        spec.id = specId(*spec.prototype, spec.difficulty,
                         spec.disturbance, spec.relin);
    std::lock_guard<std::mutex> lk(mu_);
    for (const ScenarioSpec &s : specs_) {
        if (s.id == spec.id)
            rtoc_fatal("duplicate scenario spec '%s'", spec.id.c_str());
    }
    specs_.push_back(std::move(spec));
}

std::vector<ScenarioSpec>
ScenarioRegistry::specs() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return specs_;
}

std::unique_ptr<ScenarioSpec>
ScenarioRegistry::find(const std::string &id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const ScenarioSpec &s : specs_) {
        if (s.id == id)
            return std::make_unique<ScenarioSpec>(s);
    }
    return nullptr;
}

std::vector<std::string>
ScenarioRegistry::plantNames() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::string> names;
    for (const ScenarioSpec &s : specs_) {
        bool seen = false;
        for (const std::string &n : names)
            seen = seen || n == s.plantName;
        if (!seen)
            names.push_back(s.plantName);
    }
    return names;
}

std::unique_ptr<Plant>
ScenarioRegistry::makePlant(const std::string &name) const
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const ScenarioSpec &s : specs_) {
        if (s.plantName == name)
            return s.prototype->clone();
    }
    return nullptr;
}

} // namespace rtoc::plant
