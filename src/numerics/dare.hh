/**
 * @file
 * Infinite-horizon discrete LQR via fixed-point iteration of the
 * discrete algebraic Riccati equation. TinyMPC pre-computes exactly
 * this cache (Kinf, Pinf, Quu_inv, AmBKt) offline; see Nguyen et al.,
 * "TinyMPC: Model-Predictive Control on Resource-Constrained
 * Microcontrollers" (ICRA 2024).
 */

#ifndef RTOC_NUMERICS_DARE_HH
#define RTOC_NUMERICS_DARE_HH

#include <optional>

#include "numerics/dmatrix.hh"

namespace rtoc::numerics {

/** Result of the infinite-horizon Riccati recursion. */
struct LqrCache
{
    DMatrix kinf;   ///< Optimal feedback gain (nu x nx).
    DMatrix pinf;   ///< Riccati cost-to-go (nx x nx).
    DMatrix quuInv; ///< (R + rho·I + Bᵀ P B)⁻¹ (nu x nu).
    DMatrix amBKt;  ///< (A - B·Kinf)ᵀ (nx x nx).
    int iterations = 0;   ///< Riccati iterations until convergence.
    double residual = 0.0; ///< Final max-abs P update.
};

/**
 * Iterate P ← Q + Aᵀ P A − Aᵀ P B (R + Bᵀ P B)⁻¹ Bᵀ P A to a fixed
 * point and derive the TinyMPC cache terms.
 *
 * The ADMM penalty rho is folded into the cost exactly as TinyMPC
 * does: Q ← Q + rho·I, R ← R + rho·I, because the solver's backward
 * pass uses the rho-augmented cost.
 *
 * @param a   discrete state matrix (nx x nx)
 * @param b   discrete input matrix (nx x nu)
 * @param q   state cost diagonal-heavy SPD matrix (nx x nx)
 * @param r   input cost SPD matrix (nu x nu)
 * @param rho ADMM penalty parameter
 * @param tol convergence tolerance on max-abs change of Kinf
 * @param max_iters iteration bound; fatal() if exceeded
 */
LqrCache solveDare(const DMatrix &a, const DMatrix &b, const DMatrix &q,
                   const DMatrix &r, double rho, double tol = 1e-10,
                   int max_iters = 10000);

/**
 * Non-fatal solveDare with an optional warm start: seed the fixed-
 * point iteration from @p p_warm (the Pinf of a nearby model) instead
 * of the rho-augmented Q. Incremental relinearization refreshes call
 * this with the previous cache's Pinf, converging in a handful of
 * iterations when (A, B) moved a little; a diverging off-trim model
 * returns nullopt instead of aborting the process, letting the caller
 * keep the stale cache.
 */
std::optional<LqrCache>
trySolveDare(const DMatrix &a, const DMatrix &b, const DMatrix &q,
             const DMatrix &r, double rho, const DMatrix *p_warm,
             double tol = 1e-10, int max_iters = 10000);

} // namespace rtoc::numerics

#endif // RTOC_NUMERICS_DARE_HH
