#include "dmatrix.hh"

#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace rtoc::numerics {

DMatrix::DMatrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0)
{
    if (rows < 0 || cols < 0)
        rtoc_panic("negative matrix dimension %dx%d", rows, cols);
}

DMatrix::DMatrix(int rows, int cols, std::initializer_list<double> vals)
    : DMatrix(rows, cols)
{
    if (vals.size() != data_.size()) {
        rtoc_panic("initializer size %zu != %dx%d", vals.size(), rows,
                   cols);
    }
    size_t i = 0;
    for (double v : vals)
        data_[i++] = v;
}

DMatrix
DMatrix::identity(int n)
{
    DMatrix m(n, n);
    for (int i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

DMatrix
DMatrix::diag(const std::vector<double> &d)
{
    DMatrix m(static_cast<int>(d.size()), static_cast<int>(d.size()));
    for (size_t i = 0; i < d.size(); ++i)
        m(static_cast<int>(i), static_cast<int>(i)) = d[i];
    return m;
}

DMatrix
DMatrix::colVec(std::initializer_list<double> vals)
{
    DMatrix m(static_cast<int>(vals.size()), 1);
    int i = 0;
    for (double v : vals)
        m(i++, 0) = v;
    return m;
}

double &
DMatrix::operator()(int r, int c)
{
    rtoc_assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
}

double
DMatrix::operator()(int r, int c) const
{
    rtoc_assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
}

DMatrix
DMatrix::operator+(const DMatrix &o) const
{
    rtoc_assert(rows_ == o.rows_ && cols_ == o.cols_);
    DMatrix r(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        r.data_[i] = data_[i] + o.data_[i];
    return r;
}

DMatrix
DMatrix::operator-(const DMatrix &o) const
{
    rtoc_assert(rows_ == o.rows_ && cols_ == o.cols_);
    DMatrix r(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        r.data_[i] = data_[i] - o.data_[i];
    return r;
}

DMatrix
DMatrix::operator*(const DMatrix &o) const
{
    rtoc_assert(cols_ == o.rows_);
    DMatrix r(rows_, o.cols_);
    for (int i = 0; i < rows_; ++i) {
        for (int k = 0; k < cols_; ++k) {
            double a = (*this)(i, k);
            if (a == 0.0)
                continue;
            for (int j = 0; j < o.cols_; ++j)
                r(i, j) += a * o(k, j);
        }
    }
    return r;
}

DMatrix
DMatrix::operator*(double s) const
{
    DMatrix r(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        r.data_[i] = data_[i] * s;
    return r;
}

DMatrix
DMatrix::operator-() const
{
    return (*this) * -1.0;
}

DMatrix &
DMatrix::operator+=(const DMatrix &o)
{
    rtoc_assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

DMatrix &
DMatrix::operator-=(const DMatrix &o)
{
    rtoc_assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] -= o.data_[i];
    return *this;
}

DMatrix &
DMatrix::operator*=(double s)
{
    for (double &v : data_)
        v *= s;
    return *this;
}

DMatrix &
DMatrix::addInPlace(const DMatrix &o)
{
    return *this += o;
}

DMatrix &
DMatrix::subInPlace(const DMatrix &o)
{
    return *this -= o;
}

DMatrix &
DMatrix::gemmInto(const DMatrix &a, const DMatrix &b)
{
    rtoc_assert(a.cols_ == b.rows_);
    rtoc_assert(this != &a && this != &b);
    rows_ = a.rows_;
    cols_ = b.cols_;
    // assign() zeroes while keeping capacity: no allocation once the
    // loop's shapes have stabilized.
    data_.assign(static_cast<size_t>(rows_) * cols_, 0.0);
    for (int i = 0; i < rows_; ++i) {
        for (int k = 0; k < a.cols_; ++k) {
            double v = a(i, k);
            if (v == 0.0)
                continue;
            for (int j = 0; j < cols_; ++j)
                (*this)(i, j) += v * b(k, j);
        }
    }
    return *this;
}

DMatrix
DMatrix::transpose() const
{
    DMatrix r(cols_, rows_);
    for (int i = 0; i < rows_; ++i)
        for (int j = 0; j < cols_; ++j)
            r(j, i) = (*this)(i, j);
    return r;
}

double
DMatrix::maxAbsDiff(const DMatrix &o) const
{
    rtoc_assert(rows_ == o.rows_ && cols_ == o.cols_);
    double m = 0.0;
    for (size_t i = 0; i < data_.size(); ++i)
        m = std::max(m, std::fabs(data_[i] - o.data_[i]));
    return m;
}

double
DMatrix::maxAbs() const
{
    double m = 0.0;
    for (double v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

double
DMatrix::frobenius() const
{
    double s = 0.0;
    for (double v : data_)
        s += v * v;
    return std::sqrt(s);
}

std::string
DMatrix::str(int precision) const
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed;
    for (int i = 0; i < rows_; ++i) {
        os << (i == 0 ? "[" : " ");
        for (int j = 0; j < cols_; ++j)
            os << (j ? " " : "") << (*this)(i, j);
        os << (i + 1 == rows_ ? "]" : ";") << "\n";
    }
    return os.str();
}

DMatrix
luSolve(const DMatrix &a, const DMatrix &b)
{
    rtoc_assert(a.rows() == a.cols());
    rtoc_assert(a.rows() == b.rows());
    int n = a.rows();
    int m = b.cols();

    DMatrix lu = a;
    DMatrix x = b;
    std::vector<int> piv(n);
    for (int i = 0; i < n; ++i)
        piv[i] = i;

    for (int k = 0; k < n; ++k) {
        // Partial pivot.
        int p = k;
        double best = std::fabs(lu(k, k));
        for (int i = k + 1; i < n; ++i) {
            double v = std::fabs(lu(i, k));
            if (v > best) {
                best = v;
                p = i;
            }
        }
        if (best < 1e-14)
            rtoc_fatal("luSolve: singular %dx%d matrix (pivot %g)", n, n,
                       best);
        if (p != k) {
            for (int j = 0; j < n; ++j)
                std::swap(lu(k, j), lu(p, j));
            for (int j = 0; j < m; ++j)
                std::swap(x(k, j), x(p, j));
        }
        for (int i = k + 1; i < n; ++i) {
            double f = lu(i, k) / lu(k, k);
            lu(i, k) = f;
            for (int j = k + 1; j < n; ++j)
                lu(i, j) -= f * lu(k, j);
            for (int j = 0; j < m; ++j)
                x(i, j) -= f * x(k, j);
        }
    }
    // Back substitution.
    for (int k = n - 1; k >= 0; --k) {
        for (int j = 0; j < m; ++j) {
            double s = x(k, j);
            for (int i = k + 1; i < n; ++i)
                s -= lu(k, i) * x(i, j);
            x(k, j) = s / lu(k, k);
        }
    }
    return x;
}

DMatrix
inverse(const DMatrix &a)
{
    return luSolve(a, DMatrix::identity(a.rows()));
}

DMatrix
cholesky(const DMatrix &a)
{
    rtoc_assert(a.rows() == a.cols());
    int n = a.rows();
    DMatrix l(n, n);
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j <= i; ++j) {
            double s = a(i, j);
            for (int k = 0; k < j; ++k)
                s -= l(i, k) * l(j, k);
            if (i == j) {
                if (s <= 0.0)
                    rtoc_fatal("cholesky: matrix not SPD (d[%d]=%g)", i, s);
                l(i, j) = std::sqrt(s);
            } else {
                l(i, j) = s / l(j, j);
            }
        }
    }
    return l;
}

DMatrix
expm(const DMatrix &a)
{
    rtoc_assert(a.rows() == a.cols());
    int n = a.rows();

    // Scale down so the series converges fast, then square back up.
    double norm = a.maxAbs() * n;
    int squarings = 0;
    DMatrix scaled = a;
    while (norm > 0.5 && squarings < 30) {
        scaled *= 0.5;
        norm *= 0.5;
        ++squarings;
    }

    DMatrix result = DMatrix::identity(n);
    DMatrix term = DMatrix::identity(n);
    for (int k = 1; k <= 16; ++k) {
        term = term * scaled;
        term *= 1.0 / static_cast<double>(k);
        result += term;
        if (term.maxAbs() < 1e-18)
            break;
    }
    for (int s = 0; s < squarings; ++s)
        result = result * result;
    return result;
}

DMatrix
zohDiscretize(const DMatrix &ac, const DMatrix &bc, double dt)
{
    rtoc_assert(ac.rows() == ac.cols());
    rtoc_assert(bc.rows() == ac.rows());
    int nx = ac.rows();
    int nu = bc.cols();

    // exp([A B; 0 0] * dt) = [Ad Bd; 0 I]
    DMatrix aug(nx + nu, nx + nu);
    for (int i = 0; i < nx; ++i) {
        for (int j = 0; j < nx; ++j)
            aug(i, j) = ac(i, j) * dt;
        for (int j = 0; j < nu; ++j)
            aug(i, nx + j) = bc(i, j) * dt;
    }
    DMatrix e = expm(aug);

    DMatrix out(nx, nx + nu);
    for (int i = 0; i < nx; ++i)
        for (int j = 0; j < nx + nu; ++j)
            out(i, j) = e(i, j);
    return out;
}

} // namespace rtoc::numerics
