/**
 * @file
 * Small dense double-precision matrix type for *offline* computation:
 * model linearization, discretization, and Riccati recursion that
 * produce the TinyMPC cache. This deliberately mirrors the split in the
 * paper's artifact: the solver itself runs in float32 on the embedded
 * target, while the cache (Kinf, Pinf, Quu_inv, AmBKt) is computed
 * ahead of time on the host in double precision.
 *
 * Row-major storage; dimensions are runtime values because the state
 * dimension differs between kernels (nx=12, nu=4, horizon slices).
 */

#ifndef RTOC_NUMERICS_DMATRIX_HH
#define RTOC_NUMERICS_DMATRIX_HH

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace rtoc::numerics {

/** Dense row-major double matrix with value semantics. */
class DMatrix
{
  public:
    /** Empty 0x0 matrix. */
    DMatrix() = default;

    /** rows x cols matrix initialized to zero. */
    DMatrix(int rows, int cols);

    /** rows x cols matrix filled from row-major initializer data. */
    DMatrix(int rows, int cols, std::initializer_list<double> vals);

    /** Identity matrix of size n. */
    static DMatrix identity(int n);

    /** Diagonal matrix from a vector of diagonal entries. */
    static DMatrix diag(const std::vector<double> &d);

    /** Column vector from values. */
    static DMatrix colVec(std::initializer_list<double> vals);

    int rows() const { return rows_; }
    int cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    /** Element access (bounds-checked via assert in debug paths). */
    double &operator()(int r, int c);
    double operator()(int r, int c) const;

    /** Raw row-major data. */
    const double *data() const { return data_.data(); }
    double *data() { return data_.data(); }

    DMatrix operator+(const DMatrix &o) const;
    DMatrix operator-(const DMatrix &o) const;
    DMatrix operator*(const DMatrix &o) const;
    DMatrix operator*(double s) const;
    DMatrix operator-() const;

    DMatrix &operator+=(const DMatrix &o);
    DMatrix &operator-=(const DMatrix &o);
    DMatrix &operator*=(double s);

    /**
     * Allocation-free elementwise update: this += o / this -= o.
     * Identical arithmetic to `x = x + o` (FP addition is
     * commutative), so hot loops can drop the temporary without
     * moving a bit — the warm-DARE iteration relies on this (pinned
     * by tests).
     */
    DMatrix &addInPlace(const DMatrix &o);
    DMatrix &subInPlace(const DMatrix &o);

    /**
     * this = a·b, reusing this matrix's storage when the shape
     * already matches (no allocation after the first iteration of a
     * fixed-shape loop). Accumulation order is identical to
     * operator* — including its zero-row skip — so results are
     * bit-identical. this must not alias a or b.
     */
    DMatrix &gemmInto(const DMatrix &a, const DMatrix &b);

    /** Transpose copy. */
    DMatrix transpose() const;

    /** Max |a_ij - b_ij|; matrices must be the same shape. */
    double maxAbsDiff(const DMatrix &o) const;

    /** Max |a_ij|. */
    double maxAbs() const;

    /** Frobenius norm. */
    double frobenius() const;

    /** Human-readable dump for debugging. */
    std::string str(int precision = 4) const;

  private:
    int rows_ = 0;
    int cols_ = 0;
    std::vector<double> data_;
};

/**
 * Solve A·X = B by LU decomposition with partial pivoting.
 * @param a square, non-singular matrix
 * @param b right-hand side (may have multiple columns)
 * @return X such that A·X = B; fatal() on singular A
 */
DMatrix luSolve(const DMatrix &a, const DMatrix &b);

/** Matrix inverse via luSolve against the identity. */
DMatrix inverse(const DMatrix &a);

/**
 * Cholesky factor L of a symmetric positive-definite matrix
 * (A = L·Lᵀ, L lower-triangular). Used both offline and as the model
 * for the solver's Cholesky flops. fatal() when A is not SPD.
 */
DMatrix cholesky(const DMatrix &a);

/**
 * Matrix exponential by scaling-and-squaring with a Taylor series,
 * adequate for the small, well-conditioned A·dt blocks used in
 * zero-order-hold discretization of the drone dynamics.
 */
DMatrix expm(const DMatrix &a);

/**
 * Zero-order-hold discretization of a continuous-time LTI system
 * (Ac, Bc) with step dt, via the augmented-matrix exponential trick.
 * @return pair stored as {Ad | Bd} horizontally concatenated in one
 *         matrix of shape nx x (nx + nu).
 */
DMatrix zohDiscretize(const DMatrix &ac, const DMatrix &bc, double dt);

} // namespace rtoc::numerics

#endif // RTOC_NUMERICS_DMATRIX_HH
