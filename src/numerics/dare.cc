#include "dare.hh"

#include "common/logging.hh"

namespace rtoc::numerics {

std::optional<LqrCache>
trySolveDare(const DMatrix &a, const DMatrix &b, const DMatrix &q,
             const DMatrix &r, double rho, const DMatrix *p_warm,
             double tol, int max_iters)
{
    int nx = a.rows();
    int nu = b.cols();
    rtoc_assert(a.cols() == nx && b.rows() == nx);
    rtoc_assert(q.rows() == nx && q.cols() == nx);
    rtoc_assert(r.rows() == nu && r.cols() == nu);

    // rho-augmented costs (TinyMPC folds the ADMM penalty in here).
    DMatrix q_rho = q + DMatrix::identity(nx) * rho;
    DMatrix r_rho = r + DMatrix::identity(nu) * rho;

    DMatrix at = a.transpose();
    DMatrix bt = b.transpose();

    DMatrix p = p_warm != nullptr ? *p_warm : q_rho;
    rtoc_assert(p.rows() == nx && p.cols() == nx);
    DMatrix kinf(nu, nx);
    LqrCache cache;

    // Per-iteration scratch hoisted out of the loop: after the first
    // iteration every gemmInto/addInPlace/subInPlace reuses the same
    // storage, so the session-refresh hot path (warm starts converge
    // in a handful of iterations) allocates only inside luSolve. Each
    // expression keeps the operator-chain evaluation order of the
    // historical allocating form (the in-place adds commute bitwise),
    // so Pinf/Kinf are bit-identical (pinned by tests).
    DMatrix btp, quu, ba, bk, abk, atp, p_new;
    for (int it = 0; it < max_iters; ++it) {
        btp.gemmInto(bt, p);   // nu x nx
        quu.gemmInto(btp, b);  // nu x nu
        quu.addInPlace(r_rho); // == r_rho + btp·b
        ba.gemmInto(btp, a);
        DMatrix k_new = luSolve(quu, ba);
        // Joseph-free update p_new = q_rho + at·p·(a - b·k_new).
        bk.gemmInto(b, k_new);
        abk = a;
        abk.subInPlace(bk);
        atp.gemmInto(at, p);
        p_new.gemmInto(atp, abk);
        p_new.addInPlace(q_rho);

        double dk = k_new.maxAbsDiff(kinf);
        kinf = k_new;
        double dp = p_new.maxAbsDiff(p);
        p = p_new;
        cache.iterations = it + 1;
        cache.residual = dp;
        if (dk < tol && it > 1) {
            DMatrix quu_final = r_rho + bt * p * b;
            cache.kinf = kinf;
            cache.pinf = p;
            cache.quuInv = inverse(quu_final);
            cache.amBKt = (a - b * kinf).transpose();
            return cache;
        }
    }
    return std::nullopt;
}

LqrCache
solveDare(const DMatrix &a, const DMatrix &b, const DMatrix &q,
          const DMatrix &r, double rho, double tol, int max_iters)
{
    std::optional<LqrCache> cache =
        trySolveDare(a, b, q, r, rho, nullptr, tol, max_iters);
    if (!cache) {
        rtoc_fatal("solveDare: no convergence after %d iterations",
                   max_iters);
    }
    return *cache;
}

} // namespace rtoc::numerics
